package tracing

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/obs"
)

const (
	ms = int64(time.Millisecond)
	tr = "0123456789abcdef0123456789abcdef"
	sp = "00000000000000a1"
)

// daemonChain builds a daemon-side lease chain: queue-wait, remote-run
// (grant at grantMS), upload ending at endMS.
func daemonChain(hash, span, peer string, attempt int, grantMS, endMS int64) obs.JobSpans {
	return obs.JobSpans{
		Name: "job-" + hash, Hash: hash, Worker: 0, Status: "ok",
		Trace: tr, Span: span, Origin: OriginDaemon, Peer: peer, Attempt: attempt,
		Phases: []obs.PhaseSpan{
			{Phase: obs.PhaseQueueWait, StartNS: 0, EndNS: grantMS * ms},
			{Phase: obs.PhaseRemoteRun, StartNS: grantMS * ms, EndNS: (endMS - 1) * ms},
			{Phase: obs.PhaseUpload, StartNS: (endMS - 1) * ms, EndNS: endMS * ms},
		},
	}
}

// workerChain builds a worker-side chain on the worker's own timeline
// (starting near zero), totalling totalMS of wall time.
func workerChain(hash, span, origin string, attempt int, totalMS int64) obs.JobSpans {
	return obs.JobSpans{
		Name: "job-" + hash, Hash: hash, Worker: 0, Status: "ok",
		Trace: tr, Span: span, Origin: origin, Attempt: attempt,
		Phases: []obs.PhaseSpan{
			{Phase: obs.PhasePrepare, StartNS: 0, EndNS: totalMS * ms / 2},
			{Phase: obs.PhaseRun, StartNS: totalMS * ms / 2, EndNS: totalMS * ms},
		},
	}
}

// TestWriteStitched pins the multi-process shape: one daemon process, one
// process per worker origin, worker chains re-anchored onto the daemon
// timeline at the lease grant, and chains from other traces excluded.
func TestWriteStitched(t *testing.T) {
	jobs := []obs.JobSpans{
		daemonChain("aaaa", sp, "w1", 1, 10, 110),
		workerChain("aaaa", sp, "w1", 1, 90),
		daemonChain("bbbb", "00000000000000b2", "w2", 1, 20, 220),
		workerChain("bbbb", "00000000000000b2", "w2", 1, 180),
		// A chain from another trace must not appear.
		{Name: "other", Hash: "cccc", Trace: "ffffffffffffffffffffffffffffffff",
			Origin: OriginDaemon, Phases: []obs.PhaseSpan{{Phase: obs.PhaseQueueWait, EndNS: ms}}},
	}

	var buf bytes.Buffer
	if err := WriteStitched(&buf, tr, jobs); err != nil {
		t.Fatalf("WriteStitched: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("stitched output is not JSON: %v", err)
	}

	procs := map[string]float64{} // process name -> pid
	var jobSpans, phaseSpans int
	runStarts := map[float64]bool{} // worker-side run-phase start instants (µs)
	sawOtherTrace := false
	for _, e := range doc.TraceEvents {
		if e["ph"] == "M" && e["name"] == "process_name" {
			args := e["args"].(map[string]any)
			procs[args["name"].(string)] = e["pid"].(float64)
		}
		if e["ph"] == "X" {
			switch e["cat"] {
			case "job":
				jobSpans++
				args := e["args"].(map[string]any)
				if args["trace"] != tr {
					sawOtherTrace = true
				}
			case "phase":
				phaseSpans++
				if e["name"] == "run" && e["pid"].(float64) > 0 {
					runStarts[e["ts"].(float64)] = true
				}
			}
		}
	}

	if _, ok := procs["daemon"]; !ok {
		t.Error("no daemon process lane")
	}
	if _, ok := procs["worker w1"]; !ok {
		t.Errorf("no process lane for worker w1 (procs %v)", procs)
	}
	if _, ok := procs["worker w2"]; !ok {
		t.Errorf("no process lane for worker w2 (procs %v)", procs)
	}
	if procs["worker w1"] == procs["worker w2"] || procs["worker w1"] == 0 {
		t.Errorf("worker processes not distinct from each other and the daemon: %v", procs)
	}
	if jobSpans != 4 {
		t.Errorf("job spans = %d, want 4 (other-trace chain excluded)", jobSpans)
	}
	if sawOtherTrace {
		t.Error("a chain from another trace leaked into the stitched output")
	}
	if phaseSpans != 10 {
		t.Errorf("phase spans = %d, want 10", phaseSpans)
	}
	// Worker chains are re-anchored onto the daemon timeline at their lease
	// grants: w1's run phase starts at 10ms + 45ms = 55_000µs, w2's at
	// 20ms + 90ms = 110_000µs.
	if !runStarts[55_000] || !runStarts[110_000] || len(runStarts) != 2 {
		t.Errorf("worker run-phase starts = %v µs, want {55000, 110000} (re-anchored)", runStarts)
	}
}

// TestReconcileTelescoping pins the invariant check: matching totals pass,
// a worker total past tolerance fails, an abandoned daemon chain is
// skipped, and a worker chain with no daemon partner is an orphan.
func TestReconcileTelescoping(t *testing.T) {
	tol := 50 * time.Millisecond

	// Lease held 100ms (grant 10 to end 110), worker spent 90ms: within tol.
	ok := []obs.JobSpans{
		daemonChain("aaaa", sp, "w1", 1, 10, 110),
		workerChain("aaaa", sp, "w1", 1, 90),
	}
	if bad := Reconcile(ok, tol); len(bad) != 0 {
		t.Fatalf("clean pair reported mismatches: %+v", bad)
	}

	// Worker claims 300ms inside a 100ms lease: a violation.
	over := []obs.JobSpans{
		daemonChain("aaaa", sp, "w1", 1, 10, 110),
		workerChain("aaaa", sp, "w1", 1, 300),
	}
	bad := Reconcile(over, tol)
	if len(bad) != 1 || bad[0].Hash != "aaaa" || bad[0].LeaseHeldNS != 100*ms || bad[0].WorkerNS != 300*ms {
		t.Fatalf("overrun not caught: %+v", bad)
	}

	// An abandoned daemon chain (expired lease) has no partner and is
	// skipped; the successful retry still reconciles.
	abandoned := daemonChain("aaaa", "00000000000000c3", "w1", 1, 10, 60)
	abandoned.Status = "abandoned"
	crash := []obs.JobSpans{
		abandoned,
		daemonChain("aaaa", sp, "w2", 2, 70, 170),
		workerChain("aaaa", sp, "w2", 2, 95),
	}
	if bad := Reconcile(crash, tol); len(bad) != 0 {
		t.Fatalf("crash-retry run reported mismatches: %+v", bad)
	}

	// A worker chain whose span matches no daemon chain is an orphan.
	orphan := Reconcile([]obs.JobSpans{workerChain("dddd", "00000000000000d4", "w9", 1, 10)}, tol)
	if len(orphan) != 1 || orphan[0].LeaseHeldNS != -1 {
		t.Fatalf("orphan not reported: %+v", orphan)
	}
}
