// dsre-sim runs one workload on the simulated EDGE machine and prints the
// run's statistics.  Every run is verified against the architectural
// emulator before results are reported.
//
// Usage:
//
//	dsre-sim -workload histogram -scheme dsre
//	dsre-sim -workload bank -scheme storeset+flush -frames 16 -size 8192
//	dsre-sim -workload bank -json out.json -trace-out trace.json \
//	         -samples-csv samples.csv -sample-every 100
//	dsre-sim -list
//
// -json writes a dsre-report/v1 run report, -trace-out a Chrome
// trace-event (chrome://tracing) JSON, and -samples-csv the telemetry
// time series recorded every -sample-every cycles (see README
// "Observability").
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro"
	"repro/internal/telemetry"
)

func main() {
	var cfg repro.Config
	list := flag.Bool("list", false, "list workloads and schemes, then exit")
	all := flag.Bool("all-schemes", false, "run every scheme on the workload")
	flag.StringVar(&cfg.Workload, "workload", "", "kernel to run (see -list)")
	flag.StringVar(&cfg.Scheme, "scheme", "dsre", "speculation scheme (see -list)")
	flag.IntVar(&cfg.Size, "size", 0, "workload size (0 = default)")
	flag.IntVar(&cfg.Unroll, "unroll", 0, "iterations per block (0 = default)")
	seed := flag.Uint64("seed", 0, "workload seed (0 = default)")
	flag.IntVar(&cfg.Frames, "frames", 0, "in-flight blocks (0 = default 8)")
	flag.IntVar(&cfg.HopLatency, "hop", 0, "mesh hop latency (0 = default 1)")
	flag.IntVar(&cfg.MemLatency, "memlat", 0, "DRAM latency (0 = default 100)")
	flag.BoolVar(&cfg.CommitTokensFree, "free-commit", false, "commit tokens bypass the network")
	flag.BoolVar(&cfg.NoSuppressIdentical, "no-suppress", false, "disable identical-value wave suppression")
	flag.BoolVar(&cfg.PerfectBlockPred, "perfect-bp", false, "perfect next-block prediction")
	flag.StringVar(&cfg.BlockPredictor, "bpred", "", "next-block predictor: twolevel, last, perfect")
	flag.StringVar(&cfg.Placement, "placement", "", "instruction placement: roundrobin, chain")
	flag.IntVar(&cfg.DTileBanks, "dbanks", 0, "D-tile memory ports (0 = default)")
	flag.IntVar(&cfg.LSQCapacity, "lsqcap", 0, "LSQ entry capacity (0 = unbounded)")
	flag.BoolVar(&cfg.ValuePredict, "vp", false, "stride load-value prediction (repaired by DSRE waves)")
	timeline := flag.Bool("timeline", false, "render an execution timeline and wave report")
	jsonOut := flag.String("json", "", "write the machine-readable run report to this file")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event (chrome://tracing) JSON to this file")
	samplesCSV := flag.String("samples-csv", "", "write the telemetry time series as CSV to this file")
	flag.IntVar(&cfg.SampleEvery, "sample-every", 0, "record a telemetry sample every N cycles (0 = off)")
	flag.Parse()
	cfg.Seed = *seed
	if (*traceOut != "" || *samplesCSV != "") && cfg.SampleEvery == 0 {
		// Trace and CSV exports want the counter time series too.
		cfg.SampleEvery = 1000
	}

	if *list {
		fmt.Println("workloads:")
		for _, w := range repro.Workloads() {
			fmt.Printf("  %-10s %s\n", w, repro.WorkloadAnalog(w))
		}
		fmt.Printf("schemes: %s\n", strings.Join(repro.Schemes(), ", "))
		return
	}
	if cfg.Workload == "" {
		fmt.Fprintln(os.Stderr, "dsre-sim: -workload required (try -list)")
		os.Exit(2)
	}

	schemes := []string{cfg.Scheme}
	if *all {
		schemes = repro.Schemes()
	}
	cfg.Trace = *timeline || *traceOut != ""
	for _, s := range schemes {
		cfg.Scheme = s
		simStart := time.Now()
		res, err := repro.Run(cfg)
		simWall := time.Since(simStart)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsre-sim: %v\n", err)
			os.Exit(1)
		}
		report(res)
		if simWall > 0 {
			fmt.Printf("  host: %v wall, %.1f Mcycles/s\n",
				simWall.Round(time.Millisecond), float64(res.Cycles)/1e6/simWall.Seconds())
		}
		if len(res.Samples) > 0 {
			fmt.Printf("  telemetry: %d sample windows (every %d cycles)\n",
				len(res.Samples), cfg.SampleEvery)
		}
		if res.Trace != nil && *timeline {
			fmt.Print(res.Trace.Timeline(72))
			fmt.Print(res.Trace.WaveReport(5))
		}
		if *jsonOut != "" {
			path := schemePath(*jsonOut, s, *all)
			rep := res.Report()
			rep.StampWall(simWall)
			if err := rep.WriteFile(path); err != nil {
				fmt.Fprintf(os.Stderr, "dsre-sim: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("  wrote run report to %s\n", path)
		}
		if *traceOut != "" {
			path := schemePath(*traceOut, s, *all)
			if err := writeTrace(path, res); err != nil {
				fmt.Fprintf(os.Stderr, "dsre-sim: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("  wrote Chrome trace (%d events, %d spans) to %s — open in chrome://tracing\n",
				len(res.Trace.Events), len(res.Trace.Spans), path)
		}
		if *samplesCSV != "" {
			path := schemePath(*samplesCSV, s, *all)
			if err := writeSamplesCSV(path, res); err != nil {
				fmt.Fprintf(os.Stderr, "dsre-sim: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("  wrote %d sample windows to %s\n", len(res.Samples), path)
		}
	}
}

// schemePath inserts the scheme name before the extension when -all-schemes
// would otherwise make every scheme overwrite one output file.
func schemePath(path, scheme string, all bool) string {
	if !all {
		return path
	}
	ext := filepath.Ext(path)
	safe := strings.ReplaceAll(scheme, "+", "-")
	return strings.TrimSuffix(path, ext) + "." + safe + ext
}

func writeTrace(path string, res *repro.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteChromeTrace(f, res.Trace, res.Samples); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeSamplesCSV(path string, res *repro.Result) error {
	s := telemetry.NewSampler(len(res.Samples) + 1)
	for _, v := range res.Samples {
		s.Sample(v)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func report(r *repro.Result) {
	fmt.Printf("== %s / %s ==\n", r.Workload, r.Scheme)
	fmt.Printf("  IPC %.3f  (%d instructions over %d cycles, %d blocks)\n",
		r.IPC, r.Insts, r.Cycles, r.Blocks)
	fmt.Printf("  violations %d  flushes %d  corrections %d  waves %d  re-execs %d\n",
		r.Violations, r.Flushes, r.Corrections, r.Waves, r.Reexecs)
	fmt.Printf("  verified against the architectural emulator: OK\n")
	fmt.Printf("%s\n", indent(r.Sim.String(), "  "))
	if loads := r.Sim.Forensics.Loads; len(loads) > 0 {
		if len(loads) > 3 {
			loads = loads[:3]
		}
		fmt.Printf("  hottest violating loads (see dsre-explain for the full audit):\n")
		for _, p := range loads {
			fmt.Printf("    %-10s repairs %-5d reexecs %-5d wasted %d\n",
				p.LoadPC, p.Events, p.Reexecs, p.Wasted)
		}
	}
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n")
}
