// Package trace records and renders simulator execution events: what fired
// when, which executions were speculative-wave re-executions, and where
// blocks committed or squashed.  It exists for the wave-visualisation
// example and for debugging protocol behaviour; collection is off unless a
// Collector is attached to the machine.
package trace

import (
	"fmt"
	"strings"
)

// Kind classifies an event.
type Kind uint8

// Event kinds.
const (
	KindExec        Kind = iota // first execution of an instruction instance
	KindReexec                  // re-execution (a speculative wave re-firing)
	KindCorrection              // corrected load value injected (wave origin)
	KindBlockCommit             // block retired architecturally
	KindBlockSquash             // block discarded (flush or branch squash)
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindExec:
		return "exec"
	case KindReexec:
		return "reexec"
	case KindCorrection:
		return "correction"
	case KindBlockCommit:
		return "commit"
	case KindBlockSquash:
		return "squash"
	}
	return "?"
}

// Event is one recorded occurrence.
type Event struct {
	Cycle int64
	Kind  Kind
	Seq   int64 // dynamic block sequence
	Idx   int   // instruction index within the block (execution events)
	Tag   uint64
}

// SpanKind classifies a duration span recorded alongside point events.
type SpanKind uint8

// Span kinds: the pipeline stages a block (or one execution) moves through.
const (
	SpanFetch SpanKind = iota // block fetch+map pipeline: fetch issue → mapped
	SpanBlock                 // block residency: mapped → committed or squashed
	SpanExec                  // one ALU execution: issue → completion
	SpanWave                  // recovery-wave lifetime (derived by exporters)
)

// String names the span kind.
func (k SpanKind) String() string {
	switch k {
	case SpanFetch:
		return "fetch"
	case SpanBlock:
		return "block"
	case SpanExec:
		return "exec"
	case SpanWave:
		return "wave"
	}
	return "?"
}

// Span is one recorded duration: a pipeline stage with start and end cycles.
// For SpanBlock, Tag 1 marks a squashed (rather than committed) block and
// Idx holds the static block ID; for SpanExec, Idx is the instruction index
// and Tag the wave tag of the execution's output.
type Span struct {
	Kind       SpanKind
	Seq        int64
	Idx        int
	Tag        uint64
	Start, End int64
}

// Collector implements the simulator's tracer hook, keeping up to Cap
// events and Cap spans (zero means DefaultCap).
type Collector struct {
	Cap    int
	Events []Event
	Spans  []Span
	// Dropped and SpansDropped count records beyond Cap.
	Dropped      int64
	SpansDropped int64
}

// DefaultCap bounds collection when Cap is zero.
const DefaultCap = 1 << 20

// limit returns the effective capacity.
func (c *Collector) limit() int {
	if c.Cap == 0 {
		return DefaultCap
	}
	return c.Cap
}

// Record appends an event, honouring the cap.
func (c *Collector) Record(cycle int64, kind Kind, seq int64, idx int, tag uint64) {
	if len(c.Events) >= c.limit() {
		c.Dropped++
		return
	}
	c.Events = append(c.Events, Event{Cycle: cycle, Kind: kind, Seq: seq, Idx: idx, Tag: tag})
}

// RecordSpan appends a duration span, honouring the cap.
func (c *Collector) RecordSpan(kind SpanKind, seq int64, idx int, tag uint64, start, end int64) {
	if len(c.Spans) >= c.limit() {
		c.SpansDropped++
		return
	}
	c.Spans = append(c.Spans, Span{Kind: kind, Seq: seq, Idx: idx, Tag: tag, Start: start, End: end})
}

// Reset discards all recorded events and spans but keeps the allocated
// backing arrays, so long-running tools can reuse one collector across runs
// without reallocating.
func (c *Collector) Reset() {
	c.Events = c.Events[:0]
	c.Spans = c.Spans[:0]
	c.Dropped = 0
	c.SpansDropped = 0
}

// Counts tallies events by kind.
func (c *Collector) Counts() map[Kind]int {
	m := make(map[Kind]int)
	for _, e := range c.Events {
		m[e.Kind]++
	}
	return m
}

// Timeline renders an ASCII activity profile: one row per event kind,
// cycles bucketed into width columns, glyph intensity by count.
func (c *Collector) Timeline(width int) string {
	if len(c.Events) == 0 {
		return "(no events)\n"
	}
	if width <= 0 {
		width = 72
	}
	lo, hi := c.Events[0].Cycle, c.Events[0].Cycle
	for _, e := range c.Events {
		if e.Cycle < lo {
			lo = e.Cycle
		}
		if e.Cycle > hi {
			hi = e.Cycle
		}
	}
	span := hi - lo + 1
	bucket := func(cyc int64) int {
		b := int((cyc - lo) * int64(width) / span)
		if b >= width {
			b = width - 1
		}
		return b
	}
	kinds := []Kind{KindExec, KindReexec, KindCorrection, KindBlockCommit, KindBlockSquash}
	counts := make(map[Kind][]int, len(kinds))
	for _, k := range kinds {
		counts[k] = make([]int, width)
	}
	for _, e := range c.Events {
		counts[e.Kind][bucket(e.Cycle)]++
	}
	glyphs := []rune(" .:-=+*#%@")
	var sb strings.Builder
	fmt.Fprintf(&sb, "cycles %d..%d (%d per column)\n", lo, hi, (span+int64(width)-1)/int64(width))
	for _, k := range kinds {
		row := counts[k]
		max := 0
		total := 0
		for _, n := range row {
			if n > max {
				max = n
			}
			total += n
		}
		if total == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%-10s |", k)
		for _, n := range row {
			g := 0
			if max > 0 && n > 0 {
				g = 1 + n*(len(glyphs)-2)/max
			}
			sb.WriteRune(glyphs[g])
		}
		fmt.Fprintf(&sb, "| %d\n", total)
	}
	return sb.String()
}

// WaveReport summarises the first few recovery waves: origin cycle and the
// re-executions attributed to each wave tag.
func (c *Collector) WaveReport(max int) string {
	type wave struct {
		start   int64
		seq     int64
		reexecs int
	}
	byTag := make(map[uint64]*wave)
	var order []uint64
	for _, e := range c.Events {
		switch e.Kind {
		case KindCorrection:
			if _, ok := byTag[e.Tag]; !ok {
				byTag[e.Tag] = &wave{start: e.Cycle, seq: e.Seq}
				order = append(order, e.Tag)
			}
		case KindReexec:
			if w, ok := byTag[e.Tag]; ok {
				w.reexecs++
			}
		}
	}
	if len(order) == 0 {
		return "(no recovery waves)\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d recovery waves; first %d:\n", len(order), min(max, len(order)))
	for i, tag := range order {
		if i >= max {
			break
		}
		w := byTag[tag]
		fmt.Fprintf(&sb, "  wave tag=%-6d cycle=%-8d block=%-5d re-executions=%d\n",
			tag, w.start, w.seq, w.reexecs)
	}
	return sb.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
