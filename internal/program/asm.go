package program

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Parse reads a textual EDGE program in the exact format produced by
// isa.Program.String(), so that disassembly round-trips:
//
//	program "name": 2 blocks, entry 0
//	block 0 "loop"  (34 insts, 3 reads, 2 writes)
//	  R0   read r1 -> i0.a,i1.a
//	  i0   mov -> i6.a
//	  i5   ld #8 [lsid 0] -> i7.b
//	  i9   bro_t #0
//	  W0   write r1
//
// The counts in headers are ignored (they are recomputed); the parsed
// program is validated before being returned.
func Parse(src string) (*isa.Program, error) {
	p := &isa.Program{}
	var cur *isa.Block
	sc := bufio.NewScanner(strings.NewReader(src))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") || strings.HasPrefix(line, "#") {
			continue
		}
		var err error
		switch {
		case strings.HasPrefix(line, "program "):
			err = parseProgramHeader(p, line)
		case strings.HasPrefix(line, "block "):
			cur, err = parseBlockHeader(p, line)
		case strings.HasPrefix(line, "R"):
			err = parseRead(cur, line)
		case strings.HasPrefix(line, "W"):
			err = parseWrite(cur, line)
		case strings.HasPrefix(line, "i"):
			err = parseInst(cur, line)
		default:
			err = fmt.Errorf("unrecognised line %q", line)
		}
		if err != nil {
			return nil, fmt.Errorf("asm: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	if err := Validate(p); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return p, nil
}

func parseProgramHeader(p *isa.Program, line string) error {
	// program "name": N blocks, entry E
	rest := strings.TrimPrefix(line, "program ")
	name, rest, err := parseQuoted(rest)
	if err != nil {
		return err
	}
	p.Name = name
	if i := strings.Index(rest, "entry "); i >= 0 {
		e, err := strconv.Atoi(strings.TrimSpace(rest[i+len("entry "):]))
		if err != nil {
			return fmt.Errorf("bad entry: %w", err)
		}
		p.Entry = e
	}
	return nil
}

func parseBlockHeader(p *isa.Program, line string) (*isa.Block, error) {
	// block N "name"  (...)
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return nil, fmt.Errorf("malformed block header %q", line)
	}
	id, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, fmt.Errorf("bad block id: %w", err)
	}
	name, _, err := parseQuoted(strings.Join(fields[2:], " "))
	if err != nil {
		return nil, err
	}
	if id != len(p.Blocks) {
		return nil, fmt.Errorf("block %d out of order (expected %d)", id, len(p.Blocks))
	}
	b := &isa.Block{ID: id, Name: name}
	p.Blocks = append(p.Blocks, b)
	return b, nil
}

func parseQuoted(s string) (string, string, error) {
	i := strings.IndexByte(s, '"')
	if i < 0 {
		return "", "", fmt.Errorf("missing opening quote in %q", s)
	}
	j := strings.IndexByte(s[i+1:], '"')
	if j < 0 {
		return "", "", fmt.Errorf("missing closing quote in %q", s)
	}
	return s[i+1 : i+1+j], s[i+j+2:], nil
}

func parseRead(b *isa.Block, line string) error {
	if b == nil {
		return fmt.Errorf("read outside a block")
	}
	// R0   read r1 -> i0.a,i1.a
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[1] != "read" {
		return fmt.Errorf("malformed read %q", line)
	}
	idx, err := strconv.Atoi(strings.TrimPrefix(fields[0], "R"))
	if err != nil || idx != len(b.Reads) {
		return fmt.Errorf("read slot %q out of order", fields[0])
	}
	reg, err := parseReg(fields[2])
	if err != nil {
		return err
	}
	ts, err := parseTargets(fields[3:])
	if err != nil {
		return err
	}
	b.Reads = append(b.Reads, isa.RegRead{Reg: reg, Targets: ts})
	return nil
}

func parseWrite(b *isa.Block, line string) error {
	if b == nil {
		return fmt.Errorf("write outside a block")
	}
	// W0   write r1
	fields := strings.Fields(line)
	if len(fields) != 3 || fields[1] != "write" {
		return fmt.Errorf("malformed write %q", line)
	}
	idx, err := strconv.Atoi(strings.TrimPrefix(fields[0], "W"))
	if err != nil || idx != len(b.Writes) {
		return fmt.Errorf("write slot %q out of order", fields[0])
	}
	reg, err := parseReg(fields[2])
	if err != nil {
		return err
	}
	b.Writes = append(b.Writes, isa.RegWrite{Reg: reg})
	return nil
}

func parseReg(s string) (uint8, error) {
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("expected register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parseInst(b *isa.Block, line string) error {
	if b == nil {
		return fmt.Errorf("instruction outside a block")
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return fmt.Errorf("malformed instruction %q", line)
	}
	idx, err := strconv.Atoi(strings.TrimPrefix(fields[0], "i"))
	if err != nil || idx != len(b.Insts) {
		return fmt.Errorf("instruction %q out of order", fields[0])
	}

	in := isa.Inst{LSID: isa.NoLSID}
	mnem := fields[1]
	switch {
	case strings.HasSuffix(mnem, "_t"):
		in.Pred = isa.PredTrue
		mnem = strings.TrimSuffix(mnem, "_t")
	case strings.HasSuffix(mnem, "_f"):
		in.Pred = isa.PredFalse
		mnem = strings.TrimSuffix(mnem, "_f")
	}
	op, ok := isa.ParseOpcode(mnem)
	if !ok {
		return fmt.Errorf("unknown opcode %q", mnem)
	}
	in.Op = op

	rest := fields[2:]
	for len(rest) > 0 {
		switch {
		case strings.HasPrefix(rest[0], "#"):
			v, err := strconv.ParseInt(rest[0][1:], 10, 64)
			if err != nil {
				return fmt.Errorf("bad immediate %q", rest[0])
			}
			in.Imm = v
			rest = rest[1:]
		case rest[0] == "[lsid":
			if len(rest) < 2 {
				return fmt.Errorf("truncated lsid in %q", line)
			}
			n, err := strconv.Atoi(strings.TrimSuffix(rest[1], "]"))
			if err != nil {
				return fmt.Errorf("bad lsid %q", rest[1])
			}
			in.LSID = int8(n)
			rest = rest[2:]
		case rest[0] == "->":
			ts, err := parseTargets(rest)
			if err != nil {
				return err
			}
			in.Targets = ts
			rest = nil
		default:
			return fmt.Errorf("unexpected token %q", rest[0])
		}
	}
	b.Insts = append(b.Insts, in)
	return nil
}

// parseTargets parses ["->", "i0.a,i1.b"].
func parseTargets(fields []string) ([]isa.Target, error) {
	if len(fields) == 0 || fields[0] != "->" {
		return nil, fmt.Errorf("expected '->', got %v", fields)
	}
	if len(fields) != 2 {
		return nil, fmt.Errorf("malformed target list %v", fields)
	}
	var ts []isa.Target
	for _, part := range strings.Split(fields[1], ",") {
		t, err := parseTarget(part)
		if err != nil {
			return nil, err
		}
		ts = append(ts, t)
	}
	return ts, nil
}

func parseTarget(s string) (isa.Target, error) {
	if strings.HasPrefix(s, "w") {
		n, err := strconv.Atoi(s[1:])
		if err != nil || n < 0 || n > 255 {
			return isa.Target{}, fmt.Errorf("bad write target %q", s)
		}
		return isa.Target{Kind: isa.TargetWrite, Index: uint8(n)}, nil
	}
	if !strings.HasPrefix(s, "i") {
		return isa.Target{}, fmt.Errorf("bad target %q", s)
	}
	dot := strings.IndexByte(s, '.')
	if dot < 0 {
		return isa.Target{}, fmt.Errorf("target %q missing slot", s)
	}
	n, err := strconv.Atoi(s[1:dot])
	if err != nil || n < 0 || n > 255 {
		return isa.Target{}, fmt.Errorf("bad target index %q", s)
	}
	var slot isa.Slot
	switch s[dot+1:] {
	case "a":
		slot = isa.SlotA
	case "b":
		slot = isa.SlotB
	case "p":
		slot = isa.SlotP
	default:
		return isa.Target{}, fmt.Errorf("bad slot in %q", s)
	}
	return isa.Target{Kind: isa.TargetInst, Index: uint8(n), Slot: slot}, nil
}
