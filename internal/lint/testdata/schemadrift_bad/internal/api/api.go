// Package api grew a wire field without regenerating its golden or
// bumping the schema constant: the failing schemadrift fixture.
package api

// JobSchema versions the Job wire format.
const JobSchema = "demo-job/v1"

// Job is the wire form of one queued job.  Tries is the new field the
// committed golden does not know about.
type Job struct {
	ID    string `json:"id"`
	Tries int    `json:"tries"`
}
