// Package repro reproduces "Scalable selective re-execution for EDGE
// architectures" (Desikan, Sethumadhavan, Burger, Keckler — ASPLOS 2004):
// a cycle-level simulator of a TRIPS-like EDGE processor whose load-store
// dependence mis-speculations are repaired either by conventional pipeline
// flushes or by the paper's distributed selective re-execution (DSRE)
// protocol.
//
// The package is a façade over the building blocks in internal/: the EDGE
// ISA and program builder, the architectural emulator (golden model), the
// benchmark kernels, and the simulator with its substrates (tiles, operand
// mesh, caches, LSQ, dependence predictors).
//
// The one-call entry point is Run:
//
//	res, err := repro.Run(repro.Config{Workload: "histogram", Scheme: "dsre"})
//	fmt.Println(res.IPC)
//
// Every Run double-checks the simulated machine against the architectural
// emulator: a result is returned only if the final registers and memory
// match the golden model exactly, so mis-speculation recovery can never
// silently corrupt an experiment.
package repro

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config selects a workload, a speculation scheme and machine parameters.
// Zero values mean defaults (the TRIPS-like machine of the paper's
// configuration table).
type Config struct {
	// Workload is a kernel name from Workloads().
	Workload string
	// Size scales the workload (elements/iterations); zero = kernel default.
	Size int
	// Unroll is the loop unrolling factor (block size); zero = default.
	Unroll int
	// Seed drives workload data; zero = 1.
	Seed uint64

	// Scheme is a name from Schemes(): how loads speculate and how
	// mis-speculation recovers.  Empty means "dsre".
	Scheme string

	// Frames is the number of in-flight blocks (window = Frames × 128).
	Frames int
	// GridWidth and GridHeight size the execution-tile grid.
	GridWidth, GridHeight int
	// HopLatency and LinkBandwidth parameterise the operand mesh.
	HopLatency, LinkBandwidth int

	// CommitTokensFree delivers pure commit-wave tokens without consuming
	// network bandwidth (ablation E6).
	CommitTokensFree bool
	// NoSuppressIdentical disables identical-value wave suppression
	// (ablation E7).
	NoSuppressIdentical bool
	// PerfectBlockPred drives fetch from a perfect next-block trace,
	// isolating memory-speculation effects from control speculation.
	PerfectBlockPred bool
	// BlockPredictor selects the next-block predictor: "twolevel"
	// (default), "last" or "perfect".
	BlockPredictor string
	// Placement selects instruction-to-tile mapping: "roundrobin"
	// (default) or "chain" (dependence-following).
	Placement string
	// StoreSetSize overrides the SSIT size (power of two).
	StoreSetSize int
	// MemLatency overrides the DRAM latency in cycles.
	MemLatency int
	// DTileBanks overrides the number of data-tile ports (0 = default 4;
	// 1 = a single hot LSQ port — ablation E14).
	DTileBanks int
	// LSQCapacity bounds resident load/store queue entries; block mapping
	// stalls when a block's memory ops would not fit (0 = unbounded).
	LSQCapacity int
	// ValuePredict enables stride load-value prediction with DSRE repair
	// of mis-predictions (extension E16).
	ValuePredict bool
	// Trace attaches an execution-event collector; the Result's Trace field
	// can then render timelines and wave reports (see internal/trace) or
	// export a Chrome trace (see internal/telemetry).
	Trace bool
	// SampleEvery enables per-cycle telemetry sampling: every N cycles the
	// machine records a window (IPC, occupancies, wave and miss rates) into
	// the Result's Samples.  Zero disables sampling — the simulator hot
	// path then pays only a nil check.
	SampleEvery int
	// SlowTick disables the simulator's event-driven fast paths and steps
	// every structure every cycle.  Results are byte-identical either way
	// (the fast paths are differentially tested against this flag); it
	// exists for correctness triage and does not enter sweep cache keys.
	SlowTick bool
}

// Result is the outcome of one verified run.
type Result struct {
	Workload string
	Scheme   string
	// Size, Unroll and Seed are the workload's effective parameters (the
	// kernel defaults when the Config left them zero), so artifacts are
	// self-describing when many sweep points share a workload name.
	Size   int
	Unroll int
	Seed   uint64

	Cycles int64
	Insts  int64 // architecturally committed instructions (golden count)
	IPC    float64
	Blocks int64

	Violations  int64 // load-store ordering violations detected
	Flushes     int64 // pipeline flushes taken (flush recovery)
	Corrections int64 // selective corrections injected (DSRE recovery)
	Reexecs     int64 // instruction re-executions
	Waves       int64 // recovery waves injected

	// Sim exposes the full simulator statistics for detailed analysis.
	Sim sim.Stats
	// Trace holds execution events when Config.Trace was set.
	Trace *trace.Collector
	// Samples holds the telemetry time series when Config.SampleEvery was
	// set, in chronological order.
	Samples []sim.Sample
}

// Report converts the result into its machine-readable run report
// (telemetry.ReportSchema), ready for WriteFile.
func (r *Result) Report() *telemetry.Report {
	return &telemetry.Report{
		Schema:      telemetry.ReportSchema,
		Workload:    r.Workload,
		Scheme:      r.Scheme,
		Size:        r.Size,
		Unroll:      r.Unroll,
		Seed:        r.Seed,
		Cycles:      r.Cycles,
		Insts:       r.Insts,
		IPC:         r.IPC,
		Blocks:      r.Blocks,
		Violations:  r.Violations,
		Flushes:     r.Flushes,
		Corrections: r.Corrections,
		Reexecs:     r.Reexecs,
		Waves:       r.Waves,
		Stats:       r.Sim,
		Samples:     r.Samples,
	}
}

// Schemes returns the recognised scheme names, in the order the evaluation
// reports them.
func Schemes() []string {
	return []string{
		"conservative",     // loads wait for all older stores; never speculates
		"aggressive+flush", // speculate always; flush on violation
		"storeset+flush",   // store-set predictor; flush on violation
		"dsre",             // speculate always; selective re-execution (the paper's protocol)
		"storeset+dsre",    // store-set predictor; selective re-execution
		"oracle",           // perfect dependence oracle (upper bound)
	}
}

// ParseScheme maps a scheme name to its (policy, recovery) pair.
func ParseScheme(name string) (core.IssuePolicy, core.RecoveryScheme, error) {
	switch name {
	case "conservative", "conservative+flush":
		return core.IssueConservative, core.RecoverFlush, nil
	case "conservative+dsre":
		return core.IssueConservative, core.RecoverDSRE, nil
	case "aggressive+flush":
		return core.IssueAggressive, core.RecoverFlush, nil
	case "storeset+flush", "storeset":
		return core.IssueStoreSet, core.RecoverFlush, nil
	case "dsre", "aggressive+dsre", "":
		return core.IssueAggressive, core.RecoverDSRE, nil
	case "storeset+dsre":
		return core.IssueStoreSet, core.RecoverDSRE, nil
	case "oracle", "oracle+dsre":
		return core.IssueOracle, core.RecoverDSRE, nil
	}
	return 0, 0, fmt.Errorf("unknown scheme %q (have %v)", name, Schemes())
}

// CanonicalScheme resolves a scheme name (including aliases and the empty
// default) to the canonical name reported by Schemes().  Two names that
// select the same (policy, recovery) pair canonicalise identically, which
// is what makes scheme names safe inside content-addressed cache keys.
func CanonicalScheme(name string) (string, error) {
	policy, recovery, err := ParseScheme(name)
	if err != nil {
		return "", err
	}
	switch {
	case policy == core.IssueConservative && recovery == core.RecoverFlush:
		return "conservative", nil
	case policy == core.IssueConservative && recovery == core.RecoverDSRE:
		return "conservative+dsre", nil
	case policy == core.IssueAggressive && recovery == core.RecoverFlush:
		return "aggressive+flush", nil
	case policy == core.IssueAggressive && recovery == core.RecoverDSRE:
		return "dsre", nil
	case policy == core.IssueStoreSet && recovery == core.RecoverFlush:
		return "storeset+flush", nil
	case policy == core.IssueStoreSet && recovery == core.RecoverDSRE:
		return "storeset+dsre", nil
	case policy == core.IssueOracle:
		return "oracle", nil
	}
	return "", fmt.Errorf("repro: no canonical name for scheme %q", name)
}

// Workloads returns the registered kernel names.
func Workloads() []string { return workload.Names() }

// WorkloadAnalog describes which SPEC-2000 class a kernel stands in for.
func WorkloadAnalog(name string) string { return workload.Analog(name) }

// DefaultMachine returns the baseline machine configuration (experiment E1).
func DefaultMachine() sim.Config { return sim.DefaultConfig() }

// Run builds the workload, runs the golden-model emulator, simulates the
// configured machine, verifies the architectural results match, and returns
// the measurements.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run under a context: cancellation or a deadline stops an
// in-flight simulation at a cycle boundary (see sim.Machine.RunContext).
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	scheme, policy, recovery, err := schemeOf(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Workload == "" {
		return nil, fmt.Errorf("repro: no workload selected (have %v)", Workloads())
	}
	w, err := workload.Build(cfg.Workload, workload.Params{Size: cfg.Size, Unroll: cfg.Unroll, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}

	opts := emu.Options{CollectOracle: policy == core.IssueOracle}
	if cfg.PerfectBlockPred || cfg.BlockPredictor == "perfect" {
		opts.TraceBlocks = 1 << 30
	}
	golden, err := w.RunEmulator(opts)
	if err != nil {
		return nil, err
	}
	return runVerified(ctx, cfg, scheme, policy, recovery, w, golden)
}

// Prepared is a built workload plus its golden-model run, collected with
// both the dependence oracle and the committed block trace so that every
// scheme and block predictor can simulate from it.  A Prepared is
// read-only once built (the emulator and simulator clone all mutable
// state), so one Prepared may back many concurrent RunPrepared calls —
// the sweep engine memoizes them so the schemes of one experiment share a
// single program build and emulator run.
type Prepared struct {
	Workload *workload.Workload
	Golden   *emu.Result
}

// Prepare builds a workload and runs the golden model once, for reuse
// across many RunPrepared calls.  Size, unroll and seed follow Config
// semantics (zero means the kernel default).
func Prepare(name string, size, unroll int, seed uint64) (*Prepared, error) {
	if name == "" {
		return nil, fmt.Errorf("repro: no workload selected (have %v)", Workloads())
	}
	w, err := workload.Build(name, workload.Params{Size: size, Unroll: unroll, Seed: seed})
	if err != nil {
		return nil, err
	}
	golden, err := w.RunEmulator(emu.Options{CollectOracle: true, TraceBlocks: 1 << 30})
	if err != nil {
		return nil, err
	}
	return &Prepared{Workload: w, Golden: golden}, nil
}

// RunPrepared simulates cfg against an already-prepared workload.  The
// prepared workload must have been built from the same kernel and
// parameters as cfg; mismatches are rejected rather than silently
// measuring the wrong point.
func RunPrepared(ctx context.Context, cfg Config, p *Prepared) (*Result, error) {
	scheme, policy, recovery, err := schemeOf(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Workload != p.Workload.Name {
		return nil, fmt.Errorf("repro: prepared workload %q does not match config workload %q", p.Workload.Name, cfg.Workload)
	}
	wp := p.Workload.Params
	if cfg.Size != 0 && cfg.Size != wp.Size {
		return nil, fmt.Errorf("repro: prepared %s size %d does not match config size %d", p.Workload.Name, wp.Size, cfg.Size)
	}
	// An over-large requested unroll is clamped by the kernel builder, so
	// the prepared unroll may legitimately sit below the requested one —
	// only a larger prepared unroll proves a mismatch.
	if cfg.Unroll != 0 && wp.Unroll > cfg.Unroll {
		return nil, fmt.Errorf("repro: prepared %s unroll %d does not match config unroll %d", p.Workload.Name, wp.Unroll, cfg.Unroll)
	}
	if cfg.Seed != 0 && cfg.Seed != wp.Seed {
		return nil, fmt.Errorf("repro: prepared %s seed %d does not match config seed %d", p.Workload.Name, wp.Seed, cfg.Seed)
	}
	return runVerified(ctx, cfg, scheme, policy, recovery, p.Workload, p.Golden)
}

// schemeOf resolves the Config's scheme name to its (policy, recovery).
func schemeOf(cfg Config) (string, core.IssuePolicy, core.RecoveryScheme, error) {
	scheme := cfg.Scheme
	if scheme == "" {
		scheme = "dsre"
	}
	policy, recovery, err := ParseScheme(scheme)
	if err != nil {
		return "", 0, 0, err
	}
	return scheme, policy, recovery, nil
}

// MachineConfig derives the simulator configuration this Config selects:
// the default TRIPS-like machine with the Config's overrides applied.
// Together with sim.Config.Canonical this gives the sweep engine a stable,
// fully-explicit machine description to hash.
func (cfg Config) MachineConfig() (sim.Config, error) {
	policy, recovery, err := ParseScheme(cfg.Scheme)
	if err != nil {
		return sim.Config{}, err
	}
	sc := sim.DefaultConfig()
	sc.Policy = policy
	sc.Recovery = recovery
	if cfg.Frames > 0 {
		sc.Frames = cfg.Frames
	}
	if cfg.GridWidth > 0 {
		sc.GridWidth = cfg.GridWidth
	}
	if cfg.GridHeight > 0 {
		sc.GridHeight = cfg.GridHeight
	}
	if cfg.HopLatency > 0 {
		sc.HopLatency = cfg.HopLatency
	}
	if cfg.LinkBandwidth > 0 {
		sc.LinkBandwidth = cfg.LinkBandwidth
	}
	if cfg.StoreSetSize > 0 {
		sc.StoreSet.SSITSize = cfg.StoreSetSize
	}
	if cfg.MemLatency > 0 {
		sc.Hier.MemLatency = cfg.MemLatency
	}
	if cfg.DTileBanks > 0 {
		sc.DTileBanks = cfg.DTileBanks
	}
	if cfg.LSQCapacity > 0 {
		sc.LSQCapacity = cfg.LSQCapacity
	}
	sc.ValuePredict = cfg.ValuePredict
	sc.CommitTokensFree = cfg.CommitTokensFree
	sc.SuppressIdenticalValues = !cfg.NoSuppressIdentical
	sc.PerfectBlockPred = cfg.PerfectBlockPred
	sc.SlowTick = cfg.SlowTick
	switch cfg.Placement {
	case "", "roundrobin":
		sc.Placement = sim.PlaceRoundRobin
	case "chain":
		sc.Placement = sim.PlaceChain
	default:
		return sim.Config{}, fmt.Errorf("repro: unknown placement %q (roundrobin, chain)", cfg.Placement)
	}
	switch cfg.BlockPredictor {
	case "", "twolevel":
		sc.BlockPred = sim.PredTwoLevel
	case "last":
		sc.BlockPred = sim.PredLastTarget
	case "perfect":
		sc.BlockPred = sim.PredPerfect
		sc.PerfectBlockPred = true
	default:
		return sim.Config{}, fmt.Errorf("repro: unknown block predictor %q (twolevel, last, perfect)", cfg.BlockPredictor)
	}
	return sc, nil
}

// runVerified simulates one configuration against a built workload and its
// golden-model run, verifies the architectural results match, and returns
// the measurements.
func runVerified(ctx context.Context, cfg Config, scheme string, policy core.IssuePolicy, recovery core.RecoveryScheme, w *workload.Workload, golden *emu.Result) (*Result, error) {
	sc, err := cfg.MachineConfig()
	if err != nil {
		return nil, err
	}
	sc.Policy = policy
	sc.Recovery = recovery

	mc, err := sim.New(sc, w.Program, &w.Regs, w.Mem, golden.Oracle, golden.BlockTrace)
	if err != nil {
		return nil, err
	}
	// Cycle accounting + forensics are always on for verified runs: the
	// overhead is a few counter compares per cycle, and every
	// dsre-report/v1 gets a CPI stack and per-load audit for free.
	mc.EnableAccounting()
	var collector *trace.Collector
	if cfg.Trace {
		collector = &trace.Collector{}
		mc.SetTracer(collector)
	}
	var sampler *telemetry.Sampler
	if cfg.SampleEvery > 0 {
		sampler = telemetry.NewSampler(0)
		mc.SetSampler(int64(cfg.SampleEvery), sampler)
	}
	sr, err := mc.RunContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("repro: %s/%s: %w", cfg.Workload, scheme, err)
	}

	// Verify against the golden model: the whole point of a recovery
	// protocol is that speculation never changes architectural results.
	if sr.Blocks != golden.Blocks {
		return nil, fmt.Errorf("repro: %s/%s: committed %d blocks, golden model %d", cfg.Workload, scheme, sr.Blocks, golden.Blocks)
	}
	if sr.Regs != golden.Regs {
		return nil, fmt.Errorf("repro: %s/%s: architectural registers diverged from golden model", cfg.Workload, scheme)
	}
	if !sr.Mem.Equal(golden.Mem) {
		addr, _ := sr.Mem.FirstDiff(golden.Mem)
		return nil, fmt.Errorf("repro: %s/%s: memory diverged from golden model at %#x", cfg.Workload, scheme, addr)
	}
	if w.Check != nil {
		if err := w.Check(&sr.Regs, sr.Mem); err != nil {
			return nil, fmt.Errorf("repro: %s/%s: workload check: %w", cfg.Workload, scheme, err)
		}
	}

	res := &Result{
		Workload:    cfg.Workload,
		Scheme:      scheme,
		Size:        w.Params.Size,
		Unroll:      w.Params.Unroll,
		Seed:        w.Params.Seed,
		Cycles:      sr.Stats.Cycles,
		Insts:       golden.Insts,
		IPC:         float64(golden.Insts) / float64(sr.Stats.Cycles),
		Blocks:      sr.Blocks,
		Violations:  sr.Stats.LSQ.Violations,
		Flushes:     sr.Stats.Flushes,
		Corrections: sr.Stats.DSRECorrections,
		Reexecs:     sr.Stats.Reexecs,
		Waves:       sr.Stats.WaveCount,
		Sim:         sr.Stats,
		Trace:       collector,
	}
	if sampler != nil {
		res.Samples = sampler.Samples()
	}
	return res, nil
}
