package account

import (
	"fmt"
	"strings"
)

// DefaultFlightDepth is the ring size used by the machine's flight
// recorder: deep enough to cover a deadlock window's tail, small enough to
// record every cycle for free.
const DefaultFlightDepth = 128

// Snapshot is one per-cycle machine snapshot kept in the flight recorder.
type Snapshot struct {
	Cycle      int64
	Attributed Bucket
	Window     int   // blocks in flight
	LSQ        int   // load/store-queue occupancy
	NoC        int   // operand-network messages pending
	Committed  int64 // blocks committed so far
	FetchBusy  bool  // a block fetch is outstanding
}

// FlightRecorder is a fixed-size ring of recent per-cycle snapshots,
// dumped on deadlock and on dsre_assert failures so the last moments
// before a wedge are visible without re-running under a tracer.
type FlightRecorder struct {
	buf []Snapshot
	n   int // total snapshots ever recorded
}

func NewFlightRecorder(depth int) *FlightRecorder {
	if depth <= 0 {
		depth = DefaultFlightDepth
	}
	return &FlightRecorder{buf: make([]Snapshot, depth)}
}

// Record overwrites the oldest slot with s.
func (fr *FlightRecorder) Record(s Snapshot) {
	fr.buf[fr.n%len(fr.buf)] = s
	fr.n++
}

// Len is the number of snapshots currently held (<= the ring depth).
func (fr *FlightRecorder) Len() int {
	if fr.n < len(fr.buf) {
		return fr.n
	}
	return len(fr.buf)
}

// Snapshots returns the held snapshots oldest-first.
func (fr *FlightRecorder) Snapshots() []Snapshot {
	held := fr.Len()
	out := make([]Snapshot, 0, held)
	for i := fr.n - held; i < fr.n; i++ {
		out = append(out, fr.buf[i%len(fr.buf)])
	}
	return out
}

// Dump renders the ring oldest-first, one line per cycle.
func (fr *FlightRecorder) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "flight recorder (last %d cycles):\n", fr.Len())
	for _, s := range fr.Snapshots() {
		fetch := "idle"
		if s.FetchBusy {
			fetch = "busy"
		}
		fmt.Fprintf(&sb, "  cycle=%-8d bucket=%-9s window=%-3d lsq=%-4d noc=%-4d committed=%-6d fetch=%s\n",
			s.Cycle, s.Attributed, s.Window, s.LSQ, s.NoC, s.Committed, fetch)
	}
	return sb.String()
}
