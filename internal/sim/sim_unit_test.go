package sim

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.GridWidth = 0 },
		func(c *Config) { c.Frames = 1 },
		func(c *Config) { c.HopLatency = 0 },
		func(c *Config) { c.LinkBandwidth = 0 },
		func(c *Config) { c.ALULatency = 0 },
		func(c *Config) { c.FetchCycles = 0 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestNewRequiresOracleTable(t *testing.T) {
	w := workload.MustBuild("vecsum", workload.Params{Size: 16})
	cfg := DefaultConfig()
	cfg.Policy = core.IssueOracle
	if _, err := New(cfg, w.Program, &w.Regs, w.Mem, nil, nil); err == nil {
		t.Error("oracle policy without table accepted")
	}
	cfg = DefaultConfig()
	cfg.PerfectBlockPred = true
	if _, err := New(cfg, w.Program, &w.Regs, w.Mem, nil, nil); err == nil {
		t.Error("perfect prediction without trace accepted")
	}
}

// TestBranchMispredictionRecovery uses a two-phase program whose control
// pattern defeats the self-loop heuristic at the phase change; correctness
// must survive the squash-and-refetch.
func TestBranchMispredictionRecovery(t *testing.T) {
	w := workload.MustBuild("matmul", workload.Params{Size: 8})
	cfg := DefaultConfig()
	cfg.BlockPred = PredLastTarget
	_, sr := runBoth(t, w, cfg)
	if sr.Stats.BranchSquashes == 0 {
		t.Error("expected branch mispredictions on nested loops with a last-target predictor")
	}
	if sr.Stats.SquashedBlocks == 0 {
		t.Error("branch squashes reported but no blocks squashed")
	}
}

func TestPerfectPredictionEliminatesBranchSquashes(t *testing.T) {
	w := workload.MustBuild("matmul", workload.Params{Size: 8})
	cfg := DefaultConfig()
	cfg.PerfectBlockPred = true
	_, sr := runBoth(t, w, cfg)
	if sr.Stats.BranchSquashes != 0 {
		t.Errorf("perfect prediction squashed %d times", sr.Stats.BranchSquashes)
	}
}

func TestTwoLevelBeatsLastTargetOnAlternation(t *testing.T) {
	// spmv alternates inner...inner/rownext periodically: history helps.
	w := workload.MustBuild("spmv", workload.Params{Size: 128})
	er, _ := emu.Run(w.Program, &w.Regs, w.Mem, emu.Options{})
	ipc := func(kind BlockPredKind) float64 {
		cfg := DefaultConfig()
		cfg.BlockPred = kind
		mc, err := New(cfg, w.Program, &w.Regs, w.Mem, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		r, err := mc.Run()
		if err != nil {
			t.Fatal(err)
		}
		return float64(er.Insts) / float64(r.Stats.Cycles)
	}
	last, two := ipc(PredLastTarget), ipc(PredTwoLevel)
	if two <= last {
		t.Errorf("two-level %.3f not above last-target %.3f on spmv", two, last)
	}
}

func TestPlacementPolicies(t *testing.T) {
	// Both placements must be architecturally correct; chain placement must
	// reduce operand network hops on a chain-heavy kernel.
	w := workload.MustBuild("vecsum", workload.Params{Size: 256})
	cfg := DefaultConfig()
	_, rr := runBoth(t, w, cfg)
	w2 := workload.MustBuild("vecsum", workload.Params{Size: 256})
	cfg.Placement = PlaceChain
	_, ch := runBoth(t, w2, cfg)
	if ch.Stats.Net.Hops >= rr.Stats.Net.Hops {
		t.Errorf("chain placement hops %d not below round-robin %d",
			ch.Stats.Net.Hops, rr.Stats.Net.Hops)
	}
}

func TestChainPlacementRespectsCapacity(t *testing.T) {
	w := workload.MustBuild("stencil", workload.Params{})
	place, err := computePlacement(PlaceChain, w.Program, 16)
	if err != nil {
		t.Fatal(err)
	}
	capPerTile := (isa.MaxInsts + 15) / 16
	for bi, p := range place {
		counts := make(map[int]int)
		for _, tile := range p {
			counts[tile]++
			if tile < 0 || tile >= 16 {
				t.Fatalf("block %d: tile %d out of range", bi, tile)
			}
		}
		for tile, n := range counts {
			if n > capPerTile {
				t.Errorf("block %d tile %d holds %d insts (cap %d)", bi, tile, n, capPerTile)
			}
		}
	}
}

func TestTracerReceivesEvents(t *testing.T) {
	w := workload.MustBuild("cursor", workload.Params{Size: 64})
	cfg := DefaultConfig()
	cfg.Policy = core.IssueAggressive
	cfg.Recovery = core.RecoverDSRE
	mc, err := New(cfg, w.Program, &w.Regs, w.Mem, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	col := &trace.Collector{}
	mc.SetTracer(col)
	if _, err := mc.Run(); err != nil {
		t.Fatal(err)
	}
	counts := col.Counts()
	if counts[trace.KindExec] == 0 || counts[trace.KindBlockCommit] == 0 {
		t.Errorf("missing basic events: %v", counts)
	}
	if counts[trace.KindCorrection] == 0 || counts[trace.KindReexec] == 0 {
		t.Errorf("cursor under aggressive DSRE must produce waves: %v", counts)
	}
}

// TestTinyGrid exercises a degenerate 1x1 grid (every instruction on one
// tile) — placement, routing and commit must still be correct.
func TestTinyGrid(t *testing.T) {
	w := workload.MustBuild("histogram", workload.Params{Size: 64})
	cfg := DefaultConfig()
	cfg.GridWidth, cfg.GridHeight = 1, 1
	runBoth(t, w, cfg)
}

// TestWideGrid exercises an 8x8 grid.
func TestWideGrid(t *testing.T) {
	w := workload.MustBuild("histogram", workload.Params{Size: 64})
	cfg := DefaultConfig()
	cfg.GridWidth, cfg.GridHeight = 8, 8
	runBoth(t, w, cfg)
}

// TestManyFrames exercises a 64-block (8192-instruction) window.
func TestManyFrames(t *testing.T) {
	w := workload.MustBuild("bank", workload.Params{Size: 256})
	cfg := DefaultConfig()
	cfg.Frames = 64
	runBoth(t, w, cfg)
}

func TestStatsString(t *testing.T) {
	w := workload.MustBuild("stencil", workload.Params{Size: 64})
	cfg := DefaultConfig()
	cfg.Policy = core.IssueAggressive
	_, sr := runBoth(t, w, cfg)
	s := sr.Stats.String()
	for _, want := range []string{"cycles=", "violations=", "net:"} {
		if !strings.Contains(s, want) {
			t.Errorf("stats string missing %q:\n%s", want, s)
		}
	}
}


// TestValuePredictionCorrectness runs every kernel with map-time value
// prediction enabled under both aggressive and conservative issue: wrong
// guesses must always be repaired exactly.
func TestValuePredictionCorrectness(t *testing.T) {
	for _, name := range workload.Names() {
		for _, policy := range []core.IssuePolicy{core.IssueAggressive, core.IssueConservative} {
			w := workload.MustBuild(name, smallParams(name))
			cfg := DefaultConfig()
			cfg.Policy = policy
			cfg.Recovery = core.RecoverDSRE
			cfg.ValuePredict = true
			runBoth(t, w, cfg)
		}
	}
}

// TestValuePredictionHelpsConservativeQueue pins the E16 headline: on the
// in-memory ring buffer, value prediction recovers parallelism a
// conservative machine cannot otherwise reach.
func TestValuePredictionHelpsConservativeQueue(t *testing.T) {
	ipc := func(vp bool) float64 {
		w := workload.MustBuild("queue", workload.Params{Size: 512})
		er, _ := emu.Run(w.Program, &w.Regs, w.Mem, emu.Options{})
		cfg := DefaultConfig()
		cfg.Policy = core.IssueConservative
		cfg.Recovery = core.RecoverDSRE
		cfg.ValuePredict = vp
		mc, err := New(cfg, w.Program, &w.Regs, w.Mem, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		r, err := mc.Run()
		if err != nil {
			t.Fatal(err)
		}
		return float64(er.Insts) / float64(r.Stats.Cycles)
	}
	off, on := ipc(false), ipc(true)
	if on < 1.2*off {
		t.Errorf("value prediction gain %.3f -> %.3f below 1.2x", off, on)
	}
}

// TestIndirectBranchDispatch runs a bytecode-interpreter-style dispatch
// loop through indirect branches: block 0 dispatches on a state register to
// blocks 1..3, which mutate the state and return — the hardest case for
// next-block prediction and the only consumer of OpBri in the simulator.
func TestIndirectBranchDispatch(t *testing.T) {
	b := program.New("dispatch")

	d := b.NewBlock("dispatch")
	{
		state := d.Read(1)   // next handler block id (1..3), or 0 to halt
		n := d.Read(2)       // iterations left
		pz := d.Op(isa.OpTgt, n, d.Const(0))
		tgt := d.Select(pz, state, d.Const(-1)) // halt when done
		d.Write(1, state)
		d.BranchInd(tgt)
	}
	// Handlers cycle 1 -> 2 -> 3 -> 1 and accumulate distinct amounts.
	for h := 1; h <= 3; h++ {
		blk := b.NewBlock(fmt.Sprintf("h%d", h))
		acc := blk.Read(3)
		n := blk.Read(2)
		next := h%3 + 1
		blk.Write(3, blk.Op(isa.OpAdd, acc, blk.Const(int64(h*10))))
		blk.Write(2, blk.Op(isa.OpSub, n, blk.Const(1)))
		blk.Write(1, blk.Const(int64(next)))
		blk.Branch("dispatch")
	}
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	var regs [isa.NumRegs]int64
	regs[1], regs[2] = 1, 30 // 10 full cycles of handlers 1,2,3
	m := mem.New()
	golden, err := emu.Run(prog, &regs, m, emu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if golden.Regs[3] != 10*(10+20+30) {
		t.Fatalf("golden accumulator = %d", golden.Regs[3])
	}
	for _, rec := range []core.RecoveryScheme{core.RecoverFlush, core.RecoverDSRE} {
		cfg := DefaultConfig()
		cfg.Recovery = rec
		mc, err := New(cfg, prog, &regs, m, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := mc.Run()
		if err != nil {
			t.Fatalf("%s: %v", rec, err)
		}
		if sr.Regs != golden.Regs {
			t.Fatalf("%s: registers diverged", rec)
		}
	}
}

// collectSink gathers samples for the in-package sampler tests.
type collectSink struct{ samples []Sample }

func (c *collectSink) Sample(s Sample) { c.samples = append(c.samples, s) }

func TestSamplerWindowsAndDebugDump(t *testing.T) {
	w := workload.MustBuild("vecsum", workload.Params{Size: 128})
	cfg := DefaultConfig()
	cfg.Policy = core.IssueAggressive
	mc, err := New(cfg, w.Program, &w.Regs, w.Mem, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{}
	mc.SetSampler(100, sink)
	res, err := mc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.samples) == 0 {
		t.Fatal("no samples collected")
	}
	var blocks int64
	for _, s := range sink.samples {
		blocks += s.CommittedBlocks
	}
	if blocks != res.Blocks {
		t.Errorf("windowed commits sum %d, run committed %d", blocks, res.Blocks)
	}
	// Deadlock diagnostics must carry the occupancy picture of the last
	// window so "no commit for N cycles" errors show the collapse.
	dump := mc.debugDump()
	if !strings.Contains(dump, "telemetry last window:") {
		t.Errorf("debugDump missing telemetry window:\n%s", dump)
	}
}

func TestSamplerDetached(t *testing.T) {
	w := workload.MustBuild("vecsum", workload.Params{Size: 64})
	cfg := DefaultConfig()
	cfg.Policy = core.IssueAggressive
	mc, err := New(cfg, w.Program, &w.Regs, w.Mem, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{}
	mc.SetSampler(100, sink)
	mc.SetSampler(0, nil) // detach again
	if _, err := mc.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sink.samples) != 0 {
		t.Errorf("detached sampler still received %d samples", len(sink.samples))
	}
	if strings.Contains(mc.debugDump(), "telemetry last window:") {
		t.Error("debugDump shows a window with sampling off")
	}
}
