package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

const statscoverageName = "statscoverage"

// statscoverage keeps every sim.Stats counter observable: each field must
// survive JSON into the dsre-report/v1 payload, the telemetry Report must
// carry the Stats struct wholesale, and the simulator must actually write
// each counter (a field nothing touches is a measurement that silently
// reads zero forever).
func statscoverage(p *pass) {
	simPkg := p.mod.Lookup(p.cfg.SimPkg)
	if simPkg == nil {
		return // recorded by confighash
	}
	stats := lookupNamed(simPkg, p.cfg.StatsType)
	if stats == nil {
		p.missingAnchor(p.cfg.SimPkg + "." + p.cfg.StatsType)
		return
	}
	p.checkJSONStruct(statscoverageName, "the dsre-report/v1 run report", p.cfg.StatsType, stats, nil)
	p.checkReportCarriesStats(stats)
	p.checkStatsReferenced(simPkg, stats)
}

// checkReportCarriesStats requires the telemetry report to hold a field of
// type sim.Stats, so new counters flow into reports without wiring.
func (p *pass) checkReportCarriesStats(stats *types.Named) {
	telPkg := p.mod.Lookup(p.cfg.TelemetryPkg)
	if telPkg == nil {
		p.missingAnchor("package " + p.cfg.TelemetryPkg)
		return
	}
	report := lookupNamed(telPkg, p.cfg.ReportType)
	if report == nil {
		p.missingAnchor(p.cfg.TelemetryPkg + "." + p.cfg.ReportType)
		return
	}
	st, ok := report.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if ptr, ok := types.Unalias(ft).(*types.Pointer); ok {
			ft = ptr.Elem()
		}
		if types.Identical(ft, stats) {
			return
		}
	}
	p.reportf(statscoverageName, report.Obj().Pos(),
		"%s has no field of type %s.%s — simulator counters would not reach the run report",
		p.cfg.ReportType, p.cfg.SimPkg, p.cfg.StatsType)
}

// checkStatsReferenced flags Stats fields (including those of anonymous
// sub-structs) that no non-test file of the sim package ever selects.
func (p *pass) checkStatsReferenced(simPkg *Package, stats *types.Named) {
	tracked := map[*types.Var]bool{}
	var collect func(st *types.Struct)
	collect = func(st *types.Struct) {
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			tracked[f] = false
			// Recurse only through anonymous structs: fields of named types
			// from other packages are that package's concern.
			if sub, ok := types.Unalias(f.Type()).(*types.Struct); ok {
				collect(sub)
			}
		}
	}
	st, ok := stats.Underlying().(*types.Struct)
	if !ok {
		return
	}
	collect(st)
	for _, f := range simPkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var obj types.Object
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if s, ok := p.mod.Info.Selections[n]; ok {
					obj = s.Obj()
				}
			case *ast.Ident:
				// Composite-literal keys (Stats{Cycles: ...}) resolve through
				// Uses, not Selections.
				obj = p.mod.Info.Uses[n]
			}
			if v, ok := obj.(*types.Var); ok {
				if _, t := tracked[v]; t {
					tracked[v] = true
				}
			}
			return true
		})
	}
	var dead []*types.Var
	for v, used := range tracked {
		if !used {
			dead = append(dead, v)
		}
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i].Pos() < dead[j].Pos() })
	for _, v := range dead {
		p.reportf(statscoverageName, v.Pos(),
			"%s field %s is never written by the simulator — the report would carry a counter that always reads zero",
			p.cfg.StatsType, v.Name())
	}
}
