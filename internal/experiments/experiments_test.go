package experiments

import (
	"strings"
	"testing"

	"repro"
)

func TestE1ConfigTable(t *testing.T) {
	s := E1ConfigTable().String()
	for _, want := range []string{"execution grid", "4x4", "window 1024", "store-set", "L2"} {
		if !strings.Contains(s, want) {
			t.Errorf("config table missing %q:\n%s", want, s)
		}
	}
}

func TestKernelsNonEmpty(t *testing.T) {
	ks := Kernels()
	if len(ks) < 10 {
		t.Fatalf("only %d kernels", len(ks))
	}
	for k := range ConflictKernels {
		found := false
		for _, n := range ks {
			if n == k {
				found = true
			}
		}
		if !found {
			t.Errorf("conflict kernel %q not registered", k)
		}
	}
}

// TestQuickSizesTerminate ensures every kernel's quick size produces a
// bounded run (matmul's size is a matrix dimension — cubic work — and has
// burned us before).
func TestQuickSizesTerminate(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every kernel once")
	}
	o := Opts{Quick: true}
	for _, k := range Kernels() {
		r := run(repro.Config{Workload: k, Scheme: "dsre", Size: o.sizeFor(k)})
		if r.Blocks <= 0 {
			t.Errorf("%s: no blocks committed", k)
		}
	}
}
