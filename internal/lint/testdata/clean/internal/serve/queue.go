// Package serve holds a concurrency-correct queue: the passing fixture
// for lockcheck, atomiccheck and ctxcheck.
package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Queue is a minimal leased-work queue.
type Queue struct {
	mu      sync.Mutex
	pending []string // guarded by mu
	leased  int      // guarded by mu

	served atomic.Int64
}

// Push appends a job under the lock.
func (q *Queue) Push(hash string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.pending = append(q.pending, hash)
}

// Lease pops one job, or returns false when idle.
func (q *Queue) Lease() (string, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.pending) == 0 {
		return "", false
	}
	h := q.pending[0]
	q.pending = q.pending[1:]
	q.leased++
	q.served.Add(1)
	return h, true
}

// sizeLocked reports the backlog.  Callers hold q.mu.
func (q *Queue) sizeLocked() int { return len(q.pending) + q.leased }

// Size snapshots the backlog.
func (q *Queue) Size() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.sizeLocked()
}

// Served reports jobs handed out, through the atomic API only.
func (q *Queue) Served() int64 { return q.served.Load() }

// Drain polls the queue until empty or cancelled.
func (q *Queue) Drain(ctx context.Context) bool {
	t := time.NewTicker(10 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if q.Size() == 0 {
				return true
			}
		case <-ctx.Done():
			return false
		}
	}
}
