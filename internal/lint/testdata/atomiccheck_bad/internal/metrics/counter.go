// Package metrics mixes atomic and plain access: the atomiccheck
// fixture.  The analyzer is module-wide, so this package deliberately
// sits outside the lockcheck/ctxcheck package lists.
package metrics

import "sync/atomic"

// Counter tracks request totals.
type Counter struct {
	hits int64
	done atomic.Bool
}

// Inc publishes through the atomic API.
func (c *Counter) Inc() { atomic.AddInt64(&c.hits, 1) }

// Read loads hits without the atomic API: finding.
func (c *Counter) Read() int64 { return c.hits }

// Reset stores plainly against an atomically-written field: finding.
func (c *Counter) Reset() { c.hits = 0 }

// Snapshot copies the typed atomic by value: finding.
func (c *Counter) Snapshot() atomic.Bool { return c.done }

// Finished uses the typed API: clean.
func (c *Counter) Finished() bool { return c.done.Load() }
