package obs

import "time"

// RateWindow estimates a completion rate from the most recent N events
// instead of the whole-run cumulative mean, so a sweep that warms up (cold
// cache, first-touch workload builds) converges to the steady-state rate
// instead of being skewed by its start.  It is not synchronised: callers
// (sweep.Reporter, SweepObs) hold their own locks.
type RateWindow struct {
	samples []int64 // unix nanos, ring buffer
	n, next int
}

// NewRateWindow returns a window over the last capacity completions
// (minimum 2).
func NewRateWindow(capacity int) *RateWindow {
	if capacity < 2 {
		capacity = 2
	}
	return &RateWindow{samples: make([]int64, capacity)}
}

// Observe records one completion at t.
func (w *RateWindow) Observe(t time.Time) {
	w.samples[w.next] = t.UnixNano()
	w.next = (w.next + 1) % len(w.samples)
	if w.n < len(w.samples) {
		w.n++
	}
}

// Rate returns completions per second over the window, measured from the
// oldest retained completion to now — anchoring on "now" lets the
// estimate decay during a stall instead of freezing at the last burst.
// It reports false until two completions are in the window.
func (w *RateWindow) Rate(now time.Time) (float64, bool) {
	if w.n < 2 {
		return 0, false
	}
	oldest := w.samples[(w.next-w.n+len(w.samples))%len(w.samples)]
	span := now.UnixNano() - oldest
	if span <= 0 {
		return 0, false
	}
	return float64(w.n-1) / (float64(span) / float64(time.Second)), true
}

// Len returns how many completions the window currently holds.
func (w *RateWindow) Len() int { return w.n }
