// Benchmark harness: one testing.B benchmark per evaluation artifact
// (experiments E2..E16 from DESIGN.md; E1 is the static configuration
// table).  Each benchmark iteration is one complete verified simulation;
// the evaluation metric (IPC, i.e. simulated instructions per simulated
// cycle) is reported alongside Go's wall-clock numbers via ReportMetric.
//
// Regenerate the full evaluation with:
//
//	go test -bench=. -benchmem
//	go run ./cmd/dsre-bench        # the same experiments as tables
package repro_test

import (
	"fmt"
	"testing"

	"repro"
)

// benchSize keeps one benchmark iteration well under a second.
func benchSize(kernel string) int {
	switch kernel {
	case "matmul":
		return 16
	case "sort":
		return 64
	case "treewalk":
		return 512
	default:
		return 1024
	}
}

// conflictKernels are the workloads with in-window store→load dependences,
// where speculation policy and recovery actually differentiate.
var conflictKernels = []string{"histogram", "bank", "hashmap", "stencil", "cursor"}

func runOnce(b *testing.B, cfg repro.Config) *repro.Result {
	b.Helper()
	r, err := repro.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkE2SpeedupPerScheme regenerates the main figure: IPC of every
// scheme on every kernel.
func BenchmarkE2SpeedupPerScheme(b *testing.B) {
	for _, k := range repro.Workloads() {
		for _, s := range repro.Schemes() {
			b.Run(k+"/"+s, func(b *testing.B) {
				var r *repro.Result
				for i := 0; i < b.N; i++ {
					r = runOnce(b, repro.Config{Workload: k, Scheme: s, Size: benchSize(k)})
				}
				b.ReportMetric(r.IPC, "IPC")
				b.ReportMetric(float64(r.Violations), "violations")
			})
		}
	}
}

// BenchmarkE3OracleFraction reports DSRE's fraction of oracle performance
// per kernel (the abstract's 82% claim).
func BenchmarkE3OracleFraction(b *testing.B) {
	for _, k := range conflictKernels {
		b.Run(k, func(b *testing.B) {
			var frac float64
			for i := 0; i < b.N; i++ {
				d := runOnce(b, repro.Config{Workload: k, Scheme: "dsre", Size: benchSize(k)})
				o := runOnce(b, repro.Config{Workload: k, Scheme: "oracle", Size: benchSize(k)})
				frac = d.IPC / o.IPC
			}
			b.ReportMetric(frac, "of-oracle")
		})
	}
}

// BenchmarkE4WindowScaling regenerates the window-size scaling figure.
func BenchmarkE4WindowScaling(b *testing.B) {
	for _, k := range []string{"histogram", "stencil", "bank"} {
		for _, s := range []string{"storeset+flush", "dsre"} {
			for _, frames := range []int{2, 8, 32} {
				b.Run(fmt.Sprintf("%s/%s/frames=%d", k, s, frames), func(b *testing.B) {
					var r *repro.Result
					for i := 0; i < b.N; i++ {
						r = runOnce(b, repro.Config{Workload: k, Scheme: s, Size: benchSize(k), Frames: frames})
					}
					b.ReportMetric(r.IPC, "IPC")
				})
			}
		}
	}
}

// BenchmarkE5Misspec reports the re-execution and squash volumes behind the
// mis-speculation statistics table.
func BenchmarkE5Misspec(b *testing.B) {
	for _, k := range conflictKernels {
		for _, s := range []string{"aggressive+flush", "dsre"} {
			b.Run(k+"/"+s, func(b *testing.B) {
				var r *repro.Result
				for i := 0; i < b.N; i++ {
					r = runOnce(b, repro.Config{Workload: k, Scheme: s, Size: benchSize(k)})
				}
				b.ReportMetric(float64(r.Sim.SquashedExecs), "squashed-execs")
				b.ReportMetric(float64(r.Reexecs), "re-execs")
			})
		}
	}
}

// BenchmarkE6CommitWave regenerates the commit-wave cost ablation.
func BenchmarkE6CommitWave(b *testing.B) {
	for _, k := range conflictKernels {
		for _, free := range []bool{false, true} {
			name := k + "/charged"
			if free {
				name = k + "/free"
			}
			b.Run(name, func(b *testing.B) {
				var r *repro.Result
				for i := 0; i < b.N; i++ {
					r = runOnce(b, repro.Config{Workload: k, Scheme: "dsre", Size: benchSize(k), CommitTokensFree: free})
				}
				b.ReportMetric(r.IPC, "IPC")
			})
		}
	}
}

// BenchmarkE7Suppression regenerates the identical-value suppression
// ablation.
func BenchmarkE7Suppression(b *testing.B) {
	for _, k := range []string{"stencil", "histogram", "cursor"} {
		for _, off := range []bool{false, true} {
			name := k + "/suppress"
			if off {
				name = k + "/no-suppress"
			}
			b.Run(name, func(b *testing.B) {
				var r *repro.Result
				for i := 0; i < b.N; i++ {
					r = runOnce(b, repro.Config{Workload: k, Scheme: "dsre", Size: benchSize(k), NoSuppressIdentical: off})
				}
				b.ReportMetric(r.IPC, "IPC")
				b.ReportMetric(float64(r.Reexecs), "re-execs")
			})
		}
	}
}

// BenchmarkE8WaveSizes reports wave-size characterisation.
func BenchmarkE8WaveSizes(b *testing.B) {
	for _, k := range conflictKernels {
		b.Run(k, func(b *testing.B) {
			var r *repro.Result
			for i := 0; i < b.N; i++ {
				r = runOnce(b, repro.Config{Workload: k, Scheme: "dsre", Size: benchSize(k)})
			}
			h := r.Sim.WaveSizeHist
			b.ReportMetric(float64(r.Waves), "waves")
			b.ReportMetric(h.Mean(), "mean-wave-size")
		})
	}
}

// BenchmarkE9HopLatency regenerates the network-latency sensitivity study.
func BenchmarkE9HopLatency(b *testing.B) {
	for _, k := range []string{"histogram", "vecsum"} {
		for _, s := range []string{"storeset+flush", "dsre"} {
			for _, hop := range []int{1, 2, 4} {
				b.Run(fmt.Sprintf("%s/%s/hop=%d", k, s, hop), func(b *testing.B) {
					var r *repro.Result
					for i := 0; i < b.N; i++ {
						r = runOnce(b, repro.Config{Workload: k, Scheme: s, Size: benchSize(k), HopLatency: hop})
					}
					b.ReportMetric(r.IPC, "IPC")
				})
			}
		}
	}
}

// BenchmarkE10StoreSetSize regenerates the predictor capacity study.
func BenchmarkE10StoreSetSize(b *testing.B) {
	for _, k := range []string{"histogram", "hashmap", "stencil"} {
		for _, n := range []int{256, 4096, 16384} {
			b.Run(fmt.Sprintf("%s/ssit=%d", k, n), func(b *testing.B) {
				var r *repro.Result
				for i := 0; i < b.N; i++ {
					r = runOnce(b, repro.Config{Workload: k, Scheme: "storeset+dsre", Size: benchSize(k), StoreSetSize: n})
				}
				b.ReportMetric(r.IPC, "IPC")
			})
		}
	}
}

// BenchmarkE11BlockPredictors regenerates the next-block predictor study.
func BenchmarkE11BlockPredictors(b *testing.B) {
	for _, k := range []string{"treewalk", "spmv", "matmul"} {
		for _, bp := range []string{"last", "twolevel", "perfect"} {
			b.Run(k+"/"+bp, func(b *testing.B) {
				var r *repro.Result
				for i := 0; i < b.N; i++ {
					r = runOnce(b, repro.Config{Workload: k, Scheme: "dsre", Size: benchSize(k), BlockPredictor: bp})
				}
				b.ReportMetric(r.IPC, "IPC")
			})
		}
	}
}

// BenchmarkE12WorkBreakdown regenerates the speculative-work economy study.
func BenchmarkE12WorkBreakdown(b *testing.B) {
	for _, k := range conflictKernels {
		for _, s := range []string{"aggressive+flush", "dsre"} {
			b.Run(k+"/"+s, func(b *testing.B) {
				var r *repro.Result
				for i := 0; i < b.N; i++ {
					r = runOnce(b, repro.Config{Workload: k, Scheme: s, Size: benchSize(k)})
				}
				useful := float64(r.Sim.CommittedExecs)
				total := float64(r.Sim.Executed)
				b.ReportMetric(100*(total-useful)/total, "overhead-%")
			})
		}
	}
}

// BenchmarkE13Placement regenerates the instruction-placement study.
func BenchmarkE13Placement(b *testing.B) {
	for _, k := range []string{"vecsum", "histogram", "matmul"} {
		for _, pl := range []string{"roundrobin", "chain"} {
			b.Run(k+"/"+pl, func(b *testing.B) {
				var r *repro.Result
				for i := 0; i < b.N; i++ {
					r = runOnce(b, repro.Config{Workload: k, Scheme: "dsre", Size: benchSize(k), Placement: pl})
				}
				b.ReportMetric(r.IPC, "IPC")
				b.ReportMetric(float64(r.Sim.Net.Hops), "hops")
			})
		}
	}
}

// BenchmarkE14DTileBanks regenerates the D-tile port study.
func BenchmarkE14DTileBanks(b *testing.B) {
	for _, k := range []string{"histogram", "queue"} {
		for _, banks := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/banks=%d", k, banks), func(b *testing.B) {
				var r *repro.Result
				for i := 0; i < b.N; i++ {
					r = runOnce(b, repro.Config{Workload: k, Scheme: "dsre", Size: benchSize(k), DTileBanks: banks})
				}
				b.ReportMetric(r.IPC, "IPC")
			})
		}
	}
}

// BenchmarkE15LSQCapacity regenerates the LSQ-sizing study.
func BenchmarkE15LSQCapacity(b *testing.B) {
	for _, k := range []string{"histogram", "queue"} {
		for _, cap := range []int{32, 128} {
			b.Run(fmt.Sprintf("%s/lsq=%d", k, cap), func(b *testing.B) {
				var r *repro.Result
				for i := 0; i < b.N; i++ {
					r = runOnce(b, repro.Config{Workload: k, Scheme: "dsre", Size: benchSize(k), LSQCapacity: cap})
				}
				b.ReportMetric(r.IPC, "IPC")
			})
		}
	}
}

// BenchmarkE16ValuePrediction regenerates the value-prediction study.
func BenchmarkE16ValuePrediction(b *testing.B) {
	for _, k := range []string{"queue", "cursor"} {
		for _, vp := range []bool{false, true} {
			name := k + "/vp=off"
			if vp {
				name = k + "/vp=on"
			}
			b.Run(name, func(b *testing.B) {
				var r *repro.Result
				for i := 0; i < b.N; i++ {
					r = runOnce(b, repro.Config{Workload: k, Scheme: "conservative+dsre", Size: benchSize(k), ValuePredict: vp})
				}
				b.ReportMetric(r.IPC, "IPC")
			})
		}
	}
}
