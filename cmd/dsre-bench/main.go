// dsre-bench regenerates the tables and figures of the paper's evaluation
// (experiments E1..E16, indexed in DESIGN.md).  Every experiment it runs
// also drops a machine-readable BENCH_<id>.json artifact so CI can track
// the performance trajectory, and profiling hooks expose the harness's own
// hot paths.
//
// Usage:
//
//	dsre-bench                 # run everything at full size
//	dsre-bench -quick          # small sizes, for smoke runs
//	dsre-bench -only E2,E4     # a subset of experiments
//	dsre-bench -outdir out     # where BENCH_<id>.json artifacts go
//	dsre-bench -jobs 8         # parallel simulations (default GOMAXPROCS)
//	dsre-bench -cache .dsre-cache  # reuse cached results across runs
//	dsre-bench -progress       # per-simulation progress lines on stderr
//	dsre-bench -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//	dsre-bench -pprof localhost:6060   # live net/http/pprof listener
//
// Experiments run through the sweep engine (internal/sweep): the grid
// points of each experiment execute on a bounded worker pool, one program
// build and golden-model run is shared across the schemes of each kernel,
// and -cache replays unchanged points from the content-addressed store.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/obs/status"
	"repro/internal/stats"
)

// artifactSchema identifies the BENCH_<id>.json wire format.
const artifactSchema = "dsre-bench/v1"

// artifact is one experiment's machine-readable result.
type artifact struct {
	Schema    string             `json:"schema"`
	ID        string             `json:"id"`
	Quick     bool               `json:"quick"`
	Tables    []*stats.Table     `json:"tables"`
	Headlines map[string]float64 `json:"headlines,omitempty"`
	ElapsedMS int64              `json:"elapsed_ms"`
	// Simulator throughput attributed to this experiment: live (non-cached)
	// simulated cycles and wall time since the previous artifact, and their
	// quotient.  A fully cached group records zeros and omits the rate —
	// the figures measure the harness, so -baseline never compares them.
	SimCycles     int64   `json:"sim_cycles"`
	SimWallMS     float64 `json:"sim_wall_ms"`
	McyclesPerSec float64 `json:"mcycles_per_sec,omitempty"`
}

func main() {
	quick := flag.Bool("quick", false, "use small workload sizes")
	only := flag.String("only", "", "comma-separated experiment IDs (e.g. E2,E4); empty runs all")
	outdir := flag.String("outdir", ".", "directory for BENCH_<id>.json artifacts (empty disables)")
	jobs := flag.Int("jobs", 0, "concurrent simulations (0 = GOMAXPROCS)")
	cache := flag.String("cache", "", "content-addressed result cache directory (empty disables)")
	progress := flag.Bool("progress", false, "stream per-simulation progress to stderr")
	baseline := flag.String("baseline", "", "compare against prior BENCH_<id>.json artifacts (a file or a directory of them)")
	tolerance := flag.Float64("tolerance", 0.05, "relative IPC/speedup change -baseline accepts before exiting 3")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	statusAddr := flag.String("status", "", "serve /metrics, /healthz, /progress and /debug/pprof on this address (empty disables)")
	eventsPath := flag.String("events", "", "write a dsre-events/v2 JSONL lifecycle log to this path (empty disables)")
	flag.Parse()

	// SIGINT and SIGTERM drain the harness: in-flight simulations finish,
	// queued grid points are abandoned, profiles below still flush.  The
	// experiment helpers panic on an interrupted sweep; the recover turns
	// that into a clean drain exit after the profile defers (LIFO) ran.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	defer func() {
		if r := recover(); r != nil {
			if ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "dsre-bench: drained: %v\n", ctx.Err())
				os.Exit(1)
			}
			panic(r)
		}
	}()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "dsre-bench: pprof listener: %v\n", err)
			}
		}()
		fmt.Printf("pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsre-bench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dsre-bench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dsre-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "dsre-bench: %v\n", err)
			}
		}()
	}

	o := experiments.Opts{Quick: *quick, Jobs: *jobs, CacheDir: *cache, Ctx: ctx}
	if *progress {
		o.Progress = os.Stderr
	}

	// Fleet observability (opt-in): one observer spans every experiment, so
	// /metrics and the event log see the whole harness run as one fleet.
	if *eventsPath != "" || *statusAddr != "" {
		var sink obs.EventSink
		if *eventsPath != "" {
			f, err := os.Create(*eventsPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dsre-bench: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			sink = obs.NewJSONLSink(f)
		}
		o.Obs = obs.NewSweepObs(time.Now(), sink, nil)
	}
	if *statusAddr != "" {
		observer := o.Obs
		srv, err := status.Serve(*statusAddr, status.Options{
			Registry: observer.Reg,
			Progress: func() obs.ProgressView { return observer.Progress(time.Now()) },
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsre-bench: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "dsre-bench: status server on http://%s\n", srv.Addr())
	}
	// One engine across every experiment so workload builds and golden-model
	// runs memoize across experiment boundaries, not just within one.
	eng, err := experiments.NewEngine(o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dsre-bench: %v\n", err)
		os.Exit(1)
	}
	o.Engine = eng
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "dsre-bench: %v\n", err)
			os.Exit(1)
		}
	}

	start := time.Now()
	ran := 0
	regressions := 0
	var tallyCycles int64
	var tallyWall time.Duration
	// emit prints an experiment's tables, writes its BENCH artifact, and
	// (under -baseline) diffs the run against the recorded artifact.
	emit := func(id string, headlines map[string]float64, tables ...*stats.Table) {
		for _, t := range tables {
			fmt.Println(t)
		}
		ran++
		// Experiment arguments are evaluated before emit runs, so the tally
		// delta since the last artifact is this experiment's live simulation
		// work (for shared runs like E2/E3, the first artifact carries it).
		cyc, wall := eng.Tally()
		dCycles, dWall := cyc-tallyCycles, wall-tallyWall
		tallyCycles, tallyWall = cyc, wall
		a := artifact{
			Schema: artifactSchema, ID: id, Quick: *quick,
			Tables: tables, Headlines: headlines,
			ElapsedMS: time.Since(start).Milliseconds(),
			SimCycles: dCycles, SimWallMS: float64(dWall.Microseconds()) / 1e3,
		}
		if dWall > 0 {
			a.McyclesPerSec = float64(dCycles) / 1e6 / dWall.Seconds()
		}
		if *baseline != "" {
			base, err := loadBaseline(*baseline, id)
			switch {
			case err != nil:
				fmt.Fprintf(os.Stderr, "dsre-bench: baseline %s: %v\n", id, err)
				os.Exit(1)
			case base == nil:
				fmt.Printf("baseline %s: no artifact to compare\n\n", id)
			default:
				comps := compareArtifacts(base, &a)
				if len(comps) == 0 {
					fmt.Printf("baseline %s: no shared metrics\n\n", id)
				} else {
					fmt.Printf("baseline %s (tolerance %.1f%%):\n", id, 100**tolerance)
					regressions += reportComparisons(os.Stdout, comps, *tolerance)
					fmt.Println()
				}
			}
		}
		if *outdir == "" {
			return
		}
		data, err := json.MarshalIndent(&a, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "dsre-bench: marshal %s: %v\n", id, err)
			os.Exit(1)
		}
		path := filepath.Join(*outdir, "BENCH_"+id+".json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dsre-bench: %v\n", err)
			os.Exit(1)
		}
	}

	if sel("E1") {
		emit("E1", nil, experiments.E1ConfigTable())
	}
	if sel("E2") || sel("E3") {
		e2, e3, sum := experiments.E2E3Speedup(o)
		headlines := map[string]float64{
			"dsre_over_storeset_geomean":          sum.DSREOverStoreSet,
			"dsre_over_storeset_conflict_geomean": sum.DSREOverStoreSetConflict,
			"dsre_of_oracle_geomean":              sum.DSREOfOracle,
		}
		if sel("E2") {
			emit("E2", headlines, e2)
		}
		if sel("E3") {
			emit("E3", headlines, e3)
		}
		fmt.Printf("headline: DSRE vs storeset+flush geomean speedup = %.2fx all kernels, %.2fx conflict kernels (paper: 1.17x on SPEC)\n",
			sum.DSREOverStoreSet, sum.DSREOverStoreSetConflict)
		fmt.Printf("headline: DSRE reaches %.0f%% of oracle (paper: 82%%)\n\n", 100*sum.DSREOfOracle)
	}
	if sel("E4") {
		emit("E4", nil, experiments.E4WindowScaling(o))
	}
	if sel("E5") {
		emit("E5", nil, experiments.E5Misspec(o))
	}
	if sel("E6") {
		emit("E6", nil, experiments.E6CommitWave(o))
	}
	if sel("E7") {
		emit("E7", nil, experiments.E7Suppression(o))
	}
	if sel("E8") {
		emit("E8", nil, experiments.E8WaveSizes(o))
	}
	if sel("E9") {
		emit("E9", nil, experiments.E9HopLatency(o))
	}
	if sel("E10") {
		emit("E10", nil, experiments.E10StoreSetSize(o))
	}
	if sel("E11") {
		emit("E11", nil, experiments.E11BlockPredictors(o))
	}
	if sel("E12") {
		emit("E12", nil, experiments.E12WorkBreakdown(o))
	}
	if sel("E13") {
		emit("E13", nil, experiments.E13Placement(o))
	}
	if sel("E14") {
		emit("E14", nil, experiments.E14DTileBanks(o))
	}
	if sel("E15") {
		emit("E15", nil, experiments.E15LSQCapacity(o))
	}
	if sel("E16") {
		emit("E16", nil, experiments.E16ValuePrediction(o))
	}

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched %q (have %s)\n",
			*only, strings.Join(experiments.IDs(), ","))
		os.Exit(1)
	}
	if totCycles, totWall := eng.Tally(); totWall > 0 {
		fmt.Printf("(%d experiment groups in %v; %.0fM cycles simulated at %.1f Mcycles/s)\n",
			ran, time.Since(start).Round(time.Millisecond),
			float64(totCycles)/1e6, float64(totCycles)/1e6/totWall.Seconds())
	} else {
		fmt.Printf("(%d experiment groups in %v; all points cached)\n", ran, time.Since(start).Round(time.Millisecond))
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "dsre-bench: %d metrics moved beyond -tolerance %.1f%% vs %s\n",
			regressions, 100**tolerance, *baseline)
		os.Exit(3)
	}
}

// loadBaseline resolves the -baseline flag for one experiment: a directory
// holds one BENCH_<id>.json per experiment; a single file compares only the
// experiment it records.  (nil, nil) means nothing to compare.
func loadBaseline(path, id string) (*artifact, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if info.IsDir() {
		p := filepath.Join(path, "BENCH_"+id+".json")
		if _, err := os.Stat(p); err != nil {
			return nil, nil
		}
		return readArtifact(p)
	}
	a, err := readArtifact(path)
	if err != nil {
		return nil, err
	}
	if a.ID != id {
		return nil, nil
	}
	return a, nil
}
