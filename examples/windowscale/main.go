// Window scaling: how flush-based recovery and DSRE behave as the
// instruction window grows from 256 to 4096 instructions (the paper's
// scalability argument: flushes discard ever more work, selective
// re-execution does not).
//
//	go run ./examples/windowscale
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/stats"
)

func main() {
	const kernel = "histogram"
	frames := []int{2, 4, 8, 16, 32}

	t := stats.NewTable(
		fmt.Sprintf("%s: IPC vs window size", kernel),
		"frames", "window (insts)", "storeset+flush", "dsre", "dsre advantage")
	for _, f := range frames {
		fl, err := repro.Run(repro.Config{Workload: kernel, Scheme: "storeset+flush", Frames: f})
		if err != nil {
			log.Fatal(err)
		}
		ds, err := repro.Run(repro.Config{Workload: kernel, Scheme: "dsre", Frames: f})
		if err != nil {
			log.Fatal(err)
		}
		t.Row(f, f*128, fl.IPC, ds.IPC, fmt.Sprintf("%.2fx", ds.IPC/fl.IPC))
	}
	fmt.Println(t)
	fmt.Println("Larger windows expose more speculation; DSRE's repair cost stays")
	fmt.Println("proportional to the mis-speculated dataflow slice, not the window.")
}
