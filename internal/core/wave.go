package core

import (
	"slices"

	"repro/internal/stats"
)

// WaveStats attributes re-executed instructions to the mis-speculation wave
// that caused them.  Because instruction outputs carry the maximum of their
// input tags, the tag value itself identifies the dominating wave origin:
// every re-execution triggered (directly or transitively) by violation wave
// T carries tag T until a newer wave overtakes it.
type WaveStats struct {
	// perWave counts re-executed instructions by wave tag.
	perWave map[Tag]int64
	// Reexecs is the total number of instruction re-executions (executions
	// beyond the first for a given instruction instance).
	Reexecs int64
	// Waves is the number of recovery waves injected (violations repaired).
	Waves int64
}

// NewWaveStats returns empty accounting.
func NewWaveStats() *WaveStats {
	return &WaveStats{perWave: make(map[Tag]int64)}
}

// WaveStarted records the injection of a recovery wave with the given tag.
// Registering the origin (even if nothing downstream re-fires) makes
// zero-length waves visible in the size histogram.
func (w *WaveStats) WaveStarted(tag Tag) {
	w.Waves++
	w.perWave[tag] += 0
}

// Reexecuted records one instruction re-execution attributed to wave tag.
func (w *WaveStats) Reexecuted(tag Tag) {
	w.Reexecs++
	w.perWave[tag]++
}

// WaveSize returns the number of re-executions attributed to wave tag
// (zero for an unknown tag), for per-wave forensics.
func (w *WaveStats) WaveSize(tag Tag) int64 { return w.perWave[tag] }

// SizeHist returns the histogram of wave sizes (re-executed instructions
// per injected wave).
func (w *WaveStats) SizeHist() *stats.Hist {
	sizes := make([]int64, 0, len(w.perWave))
	for _, n := range w.perWave { //lint:ordered — appends to sizes, which is sorted below
		sizes = append(sizes, n)
	}
	slices.Sort(sizes)
	h := &stats.Hist{}
	for _, n := range sizes {
		h.Add(n)
	}
	return h
}

// MeanSize returns the average wave size.
func (w *WaveStats) MeanSize() float64 {
	if len(w.perWave) == 0 {
		return 0
	}
	return float64(w.Reexecs) / float64(len(w.perWave))
}
