package tracing

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/obs"
)

// RequestBounds are the fixed latency buckets (seconds) for the per-route
// request histograms: 0.5ms up to 10s.
var RequestBounds = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// RED instruments an HTTP surface with the classic Rate/Errors/Duration
// trio plus trace-context handling: a per-route request counter split by
// status class, a per-route fixed-bucket latency histogram, an in-flight
// gauge, one structured http_request event per request carrying its trace
// ID, and a slow_request event past a configurable threshold.  Requests
// arriving without a valid traceparent header get a freshly minted
// context; either way the context rides the request's context.Context so
// handlers can stamp it onto responses and error envelopes.
type RED struct {
	requests *obs.CounterVec
	latency  *obs.HistogramVec
	inflight *obs.Gauge
	slow     *obs.Counter
	sink     obs.EventSink
	minter   *Minter
	now      func() time.Time
	slowNS   int64
}

// NewRED registers the RED metric families in reg.  now is required (this
// package never reads a clock itself); sink may be nil to disable request
// logs; slowThreshold <= 0 disables slow_request events.
func NewRED(reg *obs.Registry, sink obs.EventSink, minter *Minter, now func() time.Time, slowThreshold time.Duration) *RED {
	if now == nil {
		panic("tracing: RED needs an injected clock")
	}
	if minter == nil {
		minter = NewMinter(0)
	}
	return &RED{
		requests: reg.CounterVec("dsre_http_requests_total", "HTTP requests served, by route and status class.", "route", "class"),
		latency:  reg.HistogramVec("dsre_http_request_seconds", "HTTP request latency, by route.", RequestBounds, "route"),
		inflight: reg.Gauge("dsre_http_requests_in_flight", "HTTP requests currently being served."),
		slow:     reg.Counter("dsre_http_slow_requests_total", "HTTP requests slower than the -slow-request threshold."),
		sink:     sink,
		minter:   minter,
		now:      now,
		slowNS:   slowThreshold.Nanoseconds(),
	}
}

// statusWriter captures the response status code (200 when the handler
// never calls WriteHeader).
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Wrap instruments one route.  route is the pattern string the metrics
// and request logs report (e.g. "POST /v1/sweeps") — passed explicitly so
// the label set stays programmer-bounded.
func (m *RED) Wrap(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := m.now()
		tc, ok := FromHeader(r.Header)
		if !ok {
			tc = Context{Trace: m.minter.NextTrace(), Span: m.minter.NextSpan()}
		}
		r = r.WithContext(WithContext(r.Context(), tc))

		m.inflight.Add(1)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		m.inflight.Add(-1)

		end := m.now()
		elapsed := end.Sub(start)
		m.requests.With(route, fmt.Sprintf("%dxx", sw.code/100)).Inc()
		m.latency.With(route).Observe(elapsed.Seconds())
		slow := m.slowNS > 0 && elapsed.Nanoseconds() > m.slowNS
		if slow {
			m.slow.Inc()
		}
		if m.sink != nil {
			e := obs.Event{
				Kind: obs.EventHTTPRequest, TimeMS: end.UnixMilli(),
				Route: route, Code: sw.code, Trace: tc.Trace.String(), Span: tc.Span.String(),
				DurationUS: elapsed.Microseconds(),
			}
			m.sink.Emit(e)
			if slow {
				e.Kind = obs.EventSlowRequest
				m.sink.Emit(e)
			}
		}
	}
}
