package sim

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/workload"
)

// benchMachine is the shared body of the throughput benchmarks: one kernel,
// event-driven or dense reference ticking, reporting simulated megacycles
// per wall second (the headline CI tracks) alongside the per-run counters.
func benchMachine(b *testing.B, kernel string, slowTick bool) {
	w := workload.MustBuild(kernel, workload.Params{Size: 1024})
	er, _ := emu.Run(w.Program, &w.Regs, w.Mem, emu.Options{})
	var cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.Policy = core.IssueAggressive
		cfg.Recovery = core.RecoverDSRE
		cfg.SlowTick = slowTick
		mc, err := New(cfg, w.Program, &w.Regs, w.Mem, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		r, err := mc.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles = r.Stats.Cycles
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(cycles)*float64(b.N)/1e6/sec, "mcycles/s")
	}
	b.ReportMetric(float64(cycles), "sim-cycles/run")
	b.ReportMetric(float64(er.Insts), "sim-insts/run")
}

// BenchmarkMachine measures whole-machine simulation throughput in
// simulated cycles per wall second on the event-driven core.
func BenchmarkMachine(b *testing.B) {
	for _, k := range []string{"histogram", "vecsum"} {
		b.Run(k, func(b *testing.B) { benchMachine(b, k, false) })
	}
}

// BenchmarkMachineDense runs the same kernels under Config.SlowTick — every
// structure stepped every cycle, the pre-event-core behaviour — so the
// event-driven speedup is a single benchstat (or mcycles/s ratio) away.
func BenchmarkMachineDense(b *testing.B) {
	for _, k := range []string{"histogram", "vecsum"} {
		b.Run(k, func(b *testing.B) { benchMachine(b, k, true) })
	}
}

// discardSink measures pure sampling overhead without collection cost.
type discardSink struct{ n int }

func (d *discardSink) Sample(Sample) { d.n++ }

// BenchmarkMachineSampler measures telemetry sampling overhead against the
// plain machine: "off" is the disabled hot path (one nil check per cycle),
// the numeric variants attach a sink at that window size.  DESIGN.md
// records the measured regression budget (<2%).
func BenchmarkMachineSampler(b *testing.B) {
	w := workload.MustBuild("histogram", workload.Params{Size: 1024})
	for _, every := range []int64{0, 1000, 100, 10} {
		name := "off"
		if every > 0 {
			name = fmt.Sprintf("every%d", every)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig()
				cfg.Policy = core.IssueAggressive
				cfg.Recovery = core.RecoverDSRE
				mc, err := New(cfg, w.Program, &w.Regs, w.Mem, nil, nil)
				if err != nil {
					b.Fatal(err)
				}
				if every > 0 {
					mc.SetSampler(every, &discardSink{})
				}
				if _, err := mc.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
