package sim

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/account"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/workload"
)

// fastpathScheme is one (policy, recovery) point of the differential matrix.
type fastpathScheme struct {
	name     string
	policy   core.IssuePolicy
	recovery core.RecoveryScheme
}

var fastpathSchemes = []fastpathScheme{
	{"storeset+flush", core.IssueStoreSet, core.RecoverFlush},
	{"dsre", core.IssueAggressive, core.RecoverDSRE},
	{"oracle", core.IssueOracle, core.RecoverDSRE},
}

// runTickVariant runs one kernel under one scheme with the event-driven
// fast path (slow=false) or the dense reference path (slow=true), with
// accounting and sampling optionally attached.  The workload is rebuilt
// fresh for every call so both arms start from identical state.
func runTickVariant(t *testing.T, kernel string, size int, s fastpathScheme, slow, acct bool, sampleEvery int64) (*Result, []Sample) {
	t.Helper()
	w := workload.MustBuild(kernel, workload.Params{Size: size})
	var oracle map[emu.MemRef]emu.MemRef
	if s.policy == core.IssueOracle {
		gw := workload.MustBuild(kernel, workload.Params{Size: size})
		golden, err := emu.Run(gw.Program, &gw.Regs, gw.Mem, emu.Options{CollectOracle: true})
		if err != nil {
			t.Fatal(err)
		}
		oracle = golden.Oracle
	}
	cfg := DefaultConfig()
	cfg.Policy = s.policy
	cfg.Recovery = s.recovery
	cfg.SlowTick = slow
	mc, err := New(cfg, w.Program, &w.Regs, w.Mem, oracle, nil)
	if err != nil {
		t.Fatal(err)
	}
	if acct {
		mc.EnableAccounting()
	}
	var samples []Sample
	if sampleEvery > 0 {
		mc.SetSampler(sampleEvery, sampleFunc(func(s Sample) { samples = append(samples, s) }))
	}
	r, err := mc.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r, samples
}

type sampleFunc func(Sample)

func (f sampleFunc) Sample(s Sample) { f(s) }

// TestFastPathByteIdentical is the PR's central differential contract: the
// event-driven core (active-router network ticking, active-tile worklists,
// scheduled injections, idle-gap fast-forward, object pooling) must produce
// results byte-identical to stepping every structure every cycle — same
// architectural state, same cycle count, same statistics to the last
// counter, same telemetry windows, same CPI stack.  Any divergence means a
// fast path changed machine semantics instead of skipping provable no-ops.
func TestFastPathByteIdentical(t *testing.T) {
	for _, kernel := range []string{"histogram", "vecsum", "listsum"} {
		for _, s := range fastpathSchemes {
			for _, acct := range []bool{false, true} {
				name := kernel + "/" + s.name
				if acct {
					name += "/acct"
				}
				t.Run(name, func(t *testing.T) {
					const sampleEvery = 100
					fast, fastSamples := runTickVariant(t, kernel, 256, s, false, acct, sampleEvery)
					slow, slowSamples := runTickVariant(t, kernel, 256, s, true, acct, sampleEvery)

					if fast.Regs != slow.Regs {
						t.Error("architectural registers diverged")
					}
					if !fast.Mem.Equal(slow.Mem) {
						addr, _ := fast.Mem.FirstDiff(slow.Mem)
						t.Errorf("memory diverged at %#x", addr)
					}
					if fast.Blocks != slow.Blocks {
						t.Errorf("blocks: fast %d, slow %d", fast.Blocks, slow.Blocks)
					}
					if !reflect.DeepEqual(fast.Stats, slow.Stats) {
						fj, _ := json.Marshal(fast.Stats)
						sj, _ := json.Marshal(slow.Stats)
						t.Errorf("stats diverged:\nfast: %s\nslow: %s", fj, sj)
					}
					// Byte identity of the serialized form, which is what
					// lands in dsre-report/v1 artifacts.
					fj, err := json.Marshal(fast.Stats)
					if err != nil {
						t.Fatal(err)
					}
					sj, err := json.Marshal(slow.Stats)
					if err != nil {
						t.Fatal(err)
					}
					if string(fj) != string(sj) {
						t.Error("stats JSON not byte-identical")
					}
					if !reflect.DeepEqual(fastSamples, slowSamples) {
						t.Errorf("telemetry windows diverged: fast %d samples, slow %d",
							len(fastSamples), len(slowSamples))
					}
					if acct {
						// CPI conservation must hold on the fast path even
						// though most cycles were never individually stepped.
						if got, want := fast.Stats.Acct.Total(), fast.Stats.Cycles*account.SlotsPerCycle; got != want {
							t.Errorf("fast-path CPI buckets sum to %d, want %d (cycles %d)",
								got, want, fast.Stats.Cycles)
						}
					}
				})
			}
		}
	}
}

// TestDeadlockUnderFastPath pins that idle-gap fast-forward does not skip
// over the deadlock detector: a machine that stops committing must trip the
// watchdog at exactly the same cycle as the dense reference, with the dump
// disclosing how many of those cycles were fast-forwarded.
func TestDeadlockUnderFastPath(t *testing.T) {
	run := func(slow bool) error {
		w := workload.MustBuild("histogram", workload.Params{Size: 64})
		cfg := DefaultConfig()
		cfg.Policy = core.IssueAggressive
		cfg.Recovery = core.RecoverDSRE
		cfg.DeadlockCycles = 8 // no block can commit this early
		cfg.SlowTick = slow
		mc, err := New(cfg, w.Program, &w.Regs, w.Mem, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		_, err = mc.Run()
		return err
	}
	fastErr, slowErr := run(false), run(true)
	if fastErr == nil || slowErr == nil {
		t.Fatalf("expected deadlock on both paths (fast=%v slow=%v)", fastErr, slowErr)
	}
	firstLine := func(err error) string {
		return strings.SplitN(err.Error(), "\n", 2)[0]
	}
	if firstLine(fastErr) != firstLine(slowErr) {
		t.Errorf("deadlock fired differently:\nfast: %s\nslow: %s",
			firstLine(fastErr), firstLine(slowErr))
	}
	if !strings.Contains(fastErr.Error(), "idle-skipped=") {
		t.Errorf("fast-path deadlock dump does not disclose fast-forwarded cycles:\n%s", fastErr)
	}
	if strings.Contains(slowErr.Error(), "idle-skipped=") {
		t.Errorf("slow-path dump claims fast-forwarded cycles:\n%s", slowErr)
	}
}

// TestMaxCyclesUnderFastPath pins the other run-loop boundary: fast-forward
// must not jump past the cycle budget, and both paths must give up at the
// same cycle.
func TestMaxCyclesUnderFastPath(t *testing.T) {
	run := func(slow bool) error {
		w := workload.MustBuild("histogram", workload.Params{Size: 1024})
		cfg := DefaultConfig()
		cfg.Policy = core.IssueAggressive
		cfg.Recovery = core.RecoverDSRE
		cfg.MaxCycles = 500
		cfg.SlowTick = slow
		mc, err := New(cfg, w.Program, &w.Regs, w.Mem, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		_, err = mc.Run()
		return err
	}
	fastErr, slowErr := run(false), run(true)
	if fastErr == nil || slowErr == nil {
		t.Fatalf("expected budget exhaustion on both paths (fast=%v slow=%v)", fastErr, slowErr)
	}
	if fastErr.Error() != slowErr.Error() {
		t.Errorf("budget exhaustion differs:\nfast: %s\nslow: %s", fastErr, slowErr)
	}
}

// TestSteadyStateZeroAllocs is the allocation guard for the simulator hot
// loop: once warmed (scratch buffers grown, pools primed), stepping the
// machine with telemetry off must not allocate at all, and a 100-cycle
// sampling window must stay within a documented small budget (the sampler
// appends one Sample per window; everything per-cycle is allocation-free).
func TestSteadyStateZeroAllocs(t *testing.T) {
	warm := func(sampleEvery int64) *Machine {
		// vecsum under aggressive+DSRE is violation-free: no wave-tag map
		// growth, so steady state is genuinely steady.
		w := workload.MustBuild("vecsum", workload.Params{Size: 4096})
		cfg := DefaultConfig()
		cfg.Policy = core.IssueAggressive
		cfg.Recovery = core.RecoverDSRE
		mc, err := New(cfg, w.Program, &w.Regs, w.Mem, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if sampleEvery > 0 {
			mc.SetSampler(sampleEvery, &discardSink{})
		}
		for i := 0; i < 20000 && !mc.done; i++ {
			mc.step()
		}
		if mc.done {
			t.Fatal("workload finished during warmup; grow it")
		}
		return mc
	}

	t.Run("telemetry-off", func(t *testing.T) {
		mc := warm(0)
		avg := testing.AllocsPerRun(2000, func() {
			if !mc.done {
				mc.step()
			}
		})
		if avg != 0 {
			t.Errorf("steady-state step allocates %.3f objects/cycle, want 0", avg)
		}
	})
	t.Run("sampling-on", func(t *testing.T) {
		mc := warm(100)
		// Budget: ≤0.05 allocs/cycle, i.e. a handful of allocations per
		// 100-cycle window (sampler bookkeeping), none in the cycle path.
		avg := testing.AllocsPerRun(2000, func() {
			if !mc.done {
				mc.step()
			}
		})
		if avg > 0.05 {
			t.Errorf("sampling-on step allocates %.3f objects/cycle, budget 0.05", avg)
		}
	})
}
