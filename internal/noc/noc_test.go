package noc

import (
	"testing"
	"testing/quick"
)

type rec struct {
	now  int64
	node int
	msg  int
}

func newTestNet(t *testing.T, cfg Config) (*Network[int], *[]rec) {
	t.Helper()
	var got []rec
	n, err := New[int](cfg, func(now int64, node int, msg int) {
		got = append(got, rec{now, node, msg})
	})
	if err != nil {
		t.Fatal(err)
	}
	// The callback closes over got's address via the returned pointer.
	_ = n
	return n, &got
}

func run(n *Network[int], from, to int64) {
	for c := from; c <= to; c++ {
		n.Tick(c)
	}
}

func TestDeliveryLatencyMatchesDistance(t *testing.T) {
	cfg := Config{Width: 4, Height: 4, HopLatency: 1, LinkBandwidth: 1, LocalLatency: 1}
	n, got := newTestNet(t, cfg)
	src := n.Node(0, 0)
	dst := n.Node(3, 2)
	n.Send(0, src, dst, 7)
	run(n, 0, 20)
	if len(*got) != 1 {
		t.Fatalf("deliveries = %v", *got)
	}
	d := (*got)[0]
	if d.node != dst || d.msg != 7 {
		t.Fatalf("delivery = %+v", d)
	}
	// 5 hops at latency 1; the message transmits on the Tick after Send.
	if want := int64(n.Distance(src, dst)); d.now != want {
		t.Errorf("arrival at %d, want %d", d.now, want)
	}
	if n.Pending() != 0 {
		t.Error("network not quiet")
	}
}

func TestLocalDelivery(t *testing.T) {
	cfg := Config{Width: 2, Height: 2, HopLatency: 1, LinkBandwidth: 1, LocalLatency: 1}
	n, got := newTestNet(t, cfg)
	n.Send(0, 3, 3, 9)
	run(n, 0, 3)
	if len(*got) != 1 || (*got)[0].now != 1 {
		t.Fatalf("got = %v", *got)
	}
}

func TestHopLatencyScales(t *testing.T) {
	for _, hop := range []int{1, 2, 4} {
		cfg := Config{Width: 4, Height: 1, HopLatency: hop, LinkBandwidth: 4, LocalLatency: 1}
		n, got := newTestNet(t, cfg)
		n.Send(0, 0, 3, 1)
		run(n, 0, 50)
		if len(*got) != 1 {
			t.Fatalf("hop=%d: got %v", hop, *got)
		}
		if want := int64(3 * hop); (*got)[0].now != want {
			t.Errorf("hop=%d: arrival %d, want %d", hop, (*got)[0].now, want)
		}
	}
}

func TestFIFOOrderOnSameRoute(t *testing.T) {
	cfg := Config{Width: 4, Height: 1, HopLatency: 1, LinkBandwidth: 1, LocalLatency: 1}
	n, got := newTestNet(t, cfg)
	for i := 0; i < 5; i++ {
		n.Send(0, 0, 3, i)
	}
	run(n, 0, 30)
	if len(*got) != 5 {
		t.Fatalf("got = %v", *got)
	}
	for i, d := range *got {
		if d.msg != i {
			t.Fatalf("out of order: %v", *got)
		}
		if i > 0 && d.now < (*got)[i-1].now {
			t.Fatalf("time went backwards: %v", *got)
		}
	}
}

func TestBandwidthContention(t *testing.T) {
	// 10 messages across one link at bandwidth 1 vs bandwidth 4.
	arrivalSpan := func(bw int) int64 {
		cfg := Config{Width: 2, Height: 1, HopLatency: 1, LinkBandwidth: bw, LocalLatency: 1}
		var last int64
		n, _ := New[int](cfg, func(now int64, node int, msg int) { last = now })
		for i := 0; i < 10; i++ {
			n.Send(0, 0, 1, i)
		}
		for c := int64(0); c <= 40; c++ {
			n.Tick(c)
		}
		if n.Pending() != 0 {
			t.Fatalf("bw=%d: network not drained", bw)
		}
		return last
	}
	if narrow, wide := arrivalSpan(1), arrivalSpan(4); narrow <= wide {
		t.Errorf("bandwidth 1 finished at %d, not slower than bandwidth 4 at %d", narrow, wide)
	}
}

// TestAllPairsDelivery property: any (src, dst) pair delivers exactly once,
// to the right node, within (distance × hop) + slack cycles.
func TestAllPairsDelivery(t *testing.T) {
	cfg := Config{Width: 5, Height: 3, HopLatency: 2, LinkBandwidth: 2, LocalLatency: 1}
	f := func(s, d uint8) bool {
		src := int(s) % (cfg.Width * cfg.Height)
		dst := int(d) % (cfg.Width * cfg.Height)
		var deliveries []rec
		n, _ := New[int](cfg, func(now int64, node int, msg int) {
			deliveries = append(deliveries, rec{now, node, msg})
		})
		n.Send(0, src, dst, 1)
		for c := int64(0); c <= 100; c++ {
			n.Tick(c)
		}
		if len(deliveries) != 1 || deliveries[0].node != dst {
			return false
		}
		wantMax := int64(n.Distance(src, dst)*cfg.HopLatency) + 2
		return deliveries[0].now <= wantMax && n.Pending() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Width: 0, Height: 1, HopLatency: 1, LinkBandwidth: 1, LocalLatency: 1},
		{Width: 1, Height: 1, HopLatency: 0, LinkBandwidth: 1, LocalLatency: 1},
		{Width: 1, Height: 1, HopLatency: 1, LinkBandwidth: 0, LocalLatency: 1},
		{Width: 1, Height: 1, HopLatency: 1, LinkBandwidth: 1, LocalLatency: 0},
	}
	for _, cfg := range bad {
		if _, err := New[int](cfg, func(int64, int, int) {}); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

// TestSendDuringLocalDelivery is the regression test for a lost-message
// bug: a handler that Sends to its own node while a local delivery is being
// processed must not have that message dropped by the pending-list filter.
func TestSendDuringLocalDelivery(t *testing.T) {
	cfg := Config{Width: 2, Height: 2, HopLatency: 1, LinkBandwidth: 1, LocalLatency: 1}
	var got []int
	var n *Network[int]
	n, _ = New[int](cfg, func(now int64, node int, msg int) {
		got = append(got, msg)
		if msg < 3 {
			n.Send(now, node, node, msg+1) // chain of self-sends
		}
	})
	n.Send(0, 2, 2, 0)
	for c := int64(0); c <= 20; c++ {
		n.Tick(c)
	}
	if len(got) != 4 || n.Pending() != 0 {
		t.Fatalf("got %v, pending %d; chained self-sends were lost", got, n.Pending())
	}
}

// BenchmarkMeshThroughput measures steady-state message delivery on the
// default-sized mesh.
func BenchmarkMeshThroughput(b *testing.B) {
	cfg := Config{Width: 5, Height: 5, HopLatency: 1, LinkBandwidth: 4, LocalLatency: 1}
	n, _ := New[int](cfg, func(int64, int, int) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cyc := int64(i)
		n.Send(cyc, i%25, (i*7)%25, i)
		n.Tick(cyc)
	}
	// Drain so Pending doesn't grow unboundedly across -benchtime runs.
	for c := int64(b.N); n.Pending() > 0; c++ {
		n.Tick(c)
	}
}
