// Command dsre-lint runs the repository's static-analysis suite (package
// internal/lint): determinism, confighash, statscoverage and exhaustive.
//
// Usage:
//
//	dsre-lint [-C dir] [-json] [./...]
//
// Exit status: 0 when the tree is clean, 1 when diagnostics were found (or
// a configured anchor is missing, which would silently disable a check),
// 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

// Schema identifies the -json wire format.
const Schema = "dsre-lint/v1"

type jsonOutput struct {
	Schema  string      `json:"schema"`
	Diags   []lint.Diag `json:"diagnostics"`
	Missing []string    `json:"missing_anchors,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dsre-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "directory inside the module to lint")
	jsonOut := fs.Bool("json", false, "emit machine-readable "+Schema+" JSON")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: dsre-lint [-C dir] [-json] [./...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	for _, pat := range fs.Args() {
		// The suite always audits the whole module; only whole-module
		// patterns are meaningful.
		if pat != "./..." && pat != "." && pat != "all" {
			fmt.Fprintf(stderr, "dsre-lint: unsupported pattern %q (the suite lints the whole module; use ./...)\n", pat)
			return 2
		}
	}
	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "dsre-lint: %v\n", err)
		return 2
	}
	mod, err := lint.Load(root)
	if err != nil {
		fmt.Fprintf(stderr, "dsre-lint: %v\n", err)
		return 2
	}
	res := lint.Run(mod, lint.DefaultConfig())
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonOutput{Schema: Schema, Diags: res.Diags, Missing: res.Missing}); err != nil {
			fmt.Fprintf(stderr, "dsre-lint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range res.Diags {
			fmt.Fprintln(stdout, d)
		}
		for _, m := range res.Missing {
			fmt.Fprintf(stderr, "dsre-lint: missing anchor: %s (its checks were skipped)\n", m)
		}
	}
	if len(res.Diags) > 0 || len(res.Missing) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot walks up from dir to the nearest directory with a go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found in or above %s", abs)
		}
		d = parent
	}
}
