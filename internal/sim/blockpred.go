package sim

import (
	"fmt"

	"repro/internal/isa"
)

// BlockPredKind selects the next-block predictor, the EDGE analogue of a
// branch predictor: blocks have a single exit whose target must be guessed
// to keep fetch ahead of execution.
type BlockPredKind int

// Next-block predictor kinds.
const (
	// PredLastTarget predicts the most recent committed successor of the
	// block (untrained blocks predict a self-loop, the dominant hyperblock
	// pattern) — a minimal BTB.
	PredLastTarget BlockPredKind = iota
	// PredTwoLevel hashes the block ID with a global history of recent
	// committed successors, capturing alternating and periodic exit
	// patterns (inner/outer loop boundaries) — modelled on the TRIPS exit
	// predictor.
	PredTwoLevel
	// PredPerfect follows the golden block trace (requires a trace).
	PredPerfect
)

// String names the predictor kind.
func (k BlockPredKind) String() string {
	switch k {
	case PredLastTarget:
		return "last-target"
	case PredTwoLevel:
		return "two-level"
	case PredPerfect:
		return "perfect"
	}
	return "unknown"
}

// nextBlockPred is the predictor interface used by the fetch engine.
type nextBlockPred interface {
	predict(blockID int) int
	train(blockID, actual int)
}

// lastTargetPred is the minimal BTB.
type lastTargetPred struct {
	m map[int]int
}

func newLastTargetPred() *lastTargetPred { return &lastTargetPred{m: make(map[int]int)} }

func (p *lastTargetPred) predict(blockID int) int {
	if t, ok := p.m[blockID]; ok {
		return t
	}
	return blockID // static self-loop heuristic
}

func (p *lastTargetPred) train(blockID, actual int) { p.m[blockID] = actual }

// twoLevelPred folds a global history of committed successors into the
// table index.  History is committed (not speculative), so deep windows
// predict with slightly stale history — a fidelity-neutral simplification.
type twoLevelPred struct {
	hist  uint32
	table []int32
	mask  uint32
	fallback *lastTargetPred
}

func newTwoLevelPred(bits int) *twoLevelPred {
	size := 1 << bits
	t := &twoLevelPred{
		table:    make([]int32, size),
		mask:     uint32(size - 1),
		fallback: newLastTargetPred(),
	}
	for i := range t.table {
		t.table[i] = -1
	}
	return t
}

func (p *twoLevelPred) index(blockID int) uint32 {
	h := uint32(blockID)*2654435761 ^ p.hist*40503
	return h & p.mask
}

func (p *twoLevelPred) predict(blockID int) int {
	if t := p.table[p.index(blockID)]; t >= 0 {
		return int(t)
	}
	return p.fallback.predict(blockID)
}

func (p *twoLevelPred) train(blockID, actual int) {
	if actual >= 0 {
		p.table[p.index(blockID)] = int32(actual)
	}
	p.fallback.train(blockID, actual)
	p.hist = p.hist<<3 ^ uint32(actual+1)&7
}

// perfectPred replays the golden committed block trace by sequence number;
// the fetch engine passes the dynamic sequence via predictSeq.
type perfectPred struct {
	trace []int
	// seq is set by the fetch engine before each query.
	seq int64
}

func (p *perfectPred) predict(blockID int) int {
	if p.seq < int64(len(p.trace)) {
		return p.trace[p.seq]
	}
	return isa.HaltTarget
}

func (p *perfectPred) train(int, int) {}

// newBlockPred builds the configured predictor.
func newBlockPred(kind BlockPredKind, bits int, trace []int) (nextBlockPred, error) {
	switch kind {
	case PredLastTarget:
		return newLastTargetPred(), nil
	case PredTwoLevel:
		if bits <= 0 || bits > 24 {
			return nil, fmt.Errorf("sim: two-level predictor with %d index bits", bits)
		}
		return newTwoLevelPred(bits), nil
	case PredPerfect:
		if trace == nil {
			return nil, fmt.Errorf("sim: perfect block prediction requires a block trace")
		}
		return &perfectPred{trace: trace}, nil
	}
	return nil, fmt.Errorf("sim: unknown block predictor %d", kind)
}
