package sim

import (
	"fmt"

	"repro/internal/core"
)

// msgKind enumerates the traffic classes on the operand network.
type msgKind uint8

const (
	// msgOperand delivers a value to an instruction operand slot.  With
	// committed set it is (also) a commit-wave token: the value is final.
	msgOperand msgKind = iota
	// msgWrite delivers a value to a block register-write slot at a
	// register tile; committed marks it final.
	msgWrite
	// msgLoadReq carries a load's address to the LSQ; committed means the
	// address operands are final.
	msgLoadReq
	// msgStoreReq carries a store's address and data to the LSQ; committed
	// means both are final.
	msgStoreReq
	// msgStoreNull tells the LSQ a predicated store resolved to not
	// execute; committed means the predicate is final.
	msgStoreNull
	// msgBranch carries a branch outcome to the global control tile;
	// committed marks it final.
	msgBranch
)

func (k msgKind) String() string {
	switch k {
	case msgOperand:
		return "operand"
	case msgWrite:
		return "write"
	case msgLoadReq:
		return "loadreq"
	case msgStoreReq:
		return "storereq"
	case msgStoreNull:
		return "storenull"
	case msgBranch:
		return "branch"
	}
	return "?"
}

// message is the operand-network payload.  Every message names the dynamic
// block instance it belongs to by (frame, gen); messages whose generation
// no longer matches the frame are stale remnants of a squashed block and
// are dropped on arrival.
// Fields are ordered widest-first and the frame index is 32-bit so the
// struct packs into 56 bytes: the network copies messages on every hop, so
// payload size is directly hop cost (see BenchmarkMeshThroughput).
type message struct {
	seq   int64
	value int64 // operand/write/branch value, store data
	addr  uint64
	tag   core.Tag
	frame int32
	gen   uint32
	kind  msgKind
	idx   uint8 // instruction index (msgOperand), write slot (msgWrite)
	slot  uint8 // operand slot (msgOperand)
	lsid  int8  // memory ops

	committed bool
	// Store-only partial commit flags: the commit wave reached the address
	// and/or data operand (committed == both, or committed null).
	addrCom bool
	dataCom bool
}

func (m message) String() string {
	return fmt.Sprintf("%s seq=%d idx=%d slot=%d v=%d tag=%d c=%v",
		m.kind, m.seq, m.idx, m.slot, m.value, m.tag, m.committed)
}
