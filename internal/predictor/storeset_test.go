package predictor

import "testing"

func TestUntrainedLoadIsFree(t *testing.T) {
	s := MustNew(DefaultConfig())
	if ref := s.LoadDependence(MakePC(1, 2)); ref.Valid() {
		t.Fatalf("untrained load waits for %v", ref)
	}
	if s.LoadFrees != 1 {
		t.Errorf("LoadFrees = %d", s.LoadFrees)
	}
}

func TestViolationCreatesDependence(t *testing.T) {
	s := MustNew(DefaultConfig())
	loadPC, storePC := MakePC(3, 7), MakePC(3, 2)
	s.Violation(loadPC, storePC)

	// A new dynamic instance of the store enters the window...
	ref := DynRef{Seq: 10, LSID: 1}
	s.StoreFetched(storePC, ref)
	// ...and the load must now wait for exactly that instance.
	if got := s.LoadDependence(loadPC); got != ref {
		t.Fatalf("LoadDependence = %v, want %v", got, ref)
	}
	// Once the store executes, the load is free.
	s.StoreDone(storePC, ref)
	if got := s.LoadDependence(loadPC); got.Valid() {
		t.Fatalf("load still waits for %v", got)
	}
}

func TestStoreDoneClearsOnlyMatchingInstance(t *testing.T) {
	s := MustNew(DefaultConfig())
	loadPC, storePC := MakePC(1, 1), MakePC(1, 0)
	s.Violation(loadPC, storePC)
	first := DynRef{Seq: 5, LSID: 0}
	second := DynRef{Seq: 6, LSID: 0}
	s.StoreFetched(storePC, first)
	s.StoreFetched(storePC, second) // newer instance overwrites LFST
	s.StoreDone(storePC, first)     // stale completion must not clear it
	if got := s.LoadDependence(loadPC); got != second {
		t.Fatalf("LoadDependence = %v, want %v", got, second)
	}
}

func TestSetMergingRules(t *testing.T) {
	s := MustNew(DefaultConfig())
	l1, st1 := MakePC(1, 4), MakePC(1, 1)
	l2, st2 := MakePC(2, 4), MakePC(2, 1)
	s.Violation(l1, st1) // new set A
	s.Violation(l2, st2) // new set B
	// Cross violation merges: l1 now shares a set with st2.
	s.Violation(l1, st2)
	ref := DynRef{Seq: 20, LSID: 3}
	s.StoreFetched(st2, ref)
	dep1 := s.LoadDependence(l1)
	if dep1 != ref {
		t.Fatalf("after merge, l1 waits for %v, want %v", dep1, ref)
	}
	if s.Merges != 3 {
		t.Errorf("Merges = %d", s.Merges)
	}
}

func TestCyclicClearing(t *testing.T) {
	s := MustNew(Config{SSITSize: 256, ClearInterval: 10})
	loadPC, storePC := MakePC(1, 1), MakePC(1, 0)
	s.Violation(loadPC, storePC)
	ref := DynRef{Seq: 1, LSID: 0}
	s.StoreFetched(storePC, ref)
	if !s.LoadDependence(loadPC).Valid() {
		t.Fatal("dependence lost before clearing")
	}
	for i := 0; i < 20; i++ {
		s.LoadDependence(MakePC(9, uint8max(i)))
	}
	if s.Clears == 0 {
		t.Fatal("no cyclic clear after interval")
	}
	if s.LoadDependence(loadPC).Valid() {
		t.Fatal("dependence survived clearing")
	}
}

func uint8max(i int) int { return i & 0x7f }

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{SSITSize: 100}); err == nil {
		t.Error("non-power-of-two SSIT accepted")
	}
	if _, err := New(Config{SSITSize: 0}); err == nil {
		t.Error("zero SSIT accepted")
	}
}

func TestOracle(t *testing.T) {
	deps := map[DynRef]DynRef{
		{Seq: 4, LSID: 2}: {Seq: 3, LSID: 1},
	}
	o := NewOracle(deps)
	if got := o.LoadDependence(DynRef{Seq: 4, LSID: 2}); got != (DynRef{Seq: 3, LSID: 1}) {
		t.Errorf("dependence = %v", got)
	}
	if got := o.LoadDependence(DynRef{Seq: 9, LSID: 0}); got.Valid() {
		t.Errorf("phantom dependence = %v", got)
	}
}

func TestPCString(t *testing.T) {
	if got := MakePC(5, 17).String(); got != "b5.i17" {
		t.Errorf("PC string = %q", got)
	}
}

// BenchmarkStoreSetOps measures the predictor's per-event cost.
func BenchmarkStoreSetOps(b *testing.B) {
	s := MustNew(DefaultConfig())
	for i := 0; i < b.N; i++ {
		pc := MakePC(i&0xff, i&0x7f)
		switch i % 4 {
		case 0:
			s.StoreFetched(pc, DynRef{Seq: int64(i), LSID: 0})
		case 1:
			s.LoadDependence(pc)
		case 2:
			s.StoreDone(pc, DynRef{Seq: int64(i - 2), LSID: 0})
		case 3:
			s.Violation(pc, MakePC(i&0xff, (i+1)&0x7f))
		}
	}
}

func TestStrideValuePredictor(t *testing.T) {
	p := NewStrideValue()
	pc := MakePC(1, 4)
	if _, ok := p.Predict(pc); ok {
		t.Fatal("untrained predictor confident")
	}
	// Strided stream: 10, 18, 26, ... — confident after the stride repeats.
	for i, v := range []int64{10, 18, 26, 34} {
		p.Train(pc, v)
		_ = i
	}
	got, ok := p.Predict(pc)
	if !ok || got != 42 {
		t.Fatalf("Predict = %d, %v; want 42, true", got, ok)
	}
	// Last-value behaviour: constant stream locks stride at zero.
	pc2 := MakePC(2, 0)
	for i := 0; i < 4; i++ {
		p.Train(pc2, 7)
	}
	if got, ok := p.Predict(pc2); !ok || got != 7 {
		t.Fatalf("last-value Predict = %d, %v", got, ok)
	}
	// A broken stride loses confidence.
	p.Train(pc, 1000)
	p.Train(pc, 2)
	if _, ok := p.Predict(pc); ok {
		t.Fatal("predictor still confident after erratic values")
	}
}
