// dsre-serve runs the sweep engine as a long-lived service.
//
// Daemon mode (the default) accepts sweep grids over HTTP/JSON
// (dsre-serve/v1), dedups submitted points into content-addressed unique
// jobs, executes them on an in-process engine and/or a fleet of remote
// workers, and serves result artifacts, live progress and Prometheus
// metrics:
//
//	dsre-serve -addr :8177 -cache .dsre-cache -local-workers 4
//	dsre-serve -addr :8177 -cache .dsre-cache -local-workers 0   # fleet-only
//
// Worker mode joins a daemon's fleet: lease a job, heartbeat while it
// runs, upload the sealed result, repeat.  Workers are stateless — kill
// one mid-job and the daemon's lease expiry requeues the work elsewhere:
//
//	dsre-serve -worker -join http://daemon:8177 -id w1 -jobs 2
//
// SIGTERM drains gracefully: submits and leases are refused, in-flight
// work finishes, every sweep's manifest flushes to -manifest-dir, the
// structured serve_drain event is emitted, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/sweep"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dsre-serve: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	// Daemon flags.
	addr := flag.String("addr", ":8177", "daemon listen address")
	cache := flag.String("cache", ".dsre-cache", "content-addressed result cache directory")
	localWorkers := flag.Int("local-workers", runtime.GOMAXPROCS(0), "in-process execution workers (0 = fleet-only daemon)")
	batch := flag.Int("batch", 8, "max jobs per local engine batch")
	batchLinger := flag.Duration("batch-linger", 25*time.Millisecond, "wait after first queued job so a burst coalesces into one batch")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "fleet lease heartbeat deadline")
	maxAttempts := flag.Int("max-attempts", 3, "lease grants per job before it fails terminally")
	quotaRate := flag.Float64("quota-rate", 0, "per-tenant submitted-specs-per-second quota (0 = unlimited)")
	quotaBurst := flag.Float64("quota-burst", 0, "per-tenant quota burst (0 = one second of rate)")
	manifestDir := flag.String("manifest-dir", "", "write one sweep manifest per sweep here on drain (empty disables)")
	eventsPath := flag.String("events", "", "write a dsre-events/v2 JSONL lifecycle log (empty disables)")
	spanTrace := flag.String("span-trace", "", "write lifecycle spans as a Chrome trace on exit (empty disables)")
	slowRequest := flag.Duration("slow-request", 0, "emit a slow_request event for HTTP requests slower than this (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight work")

	// Execution flags shared by both modes.
	timeout := flag.Duration("timeout", 0, "per-job wall-clock budget (0 = none)")
	retries := flag.Int("retries", 0, "engine-level extra attempts per failed job")

	// Worker-mode flags.
	worker := flag.Bool("worker", false, "run as a fleet worker instead of a daemon")
	join := flag.String("join", "", "daemon base URL to join (worker mode)")
	id := flag.String("id", "", "worker name (default host-pid)")
	jobs := flag.Int("jobs", 1, "concurrent jobs per worker (worker mode)")
	poll := flag.Duration("poll", 200*time.Millisecond, "idle lease-poll interval (worker mode)")
	flag.Parse()
	if flag.NArg() > 0 {
		fatalf("unexpected arguments %q", flag.Args())
	}

	if *worker {
		runWorker(*join, *id, *jobs, *poll, *timeout, *retries)
		return
	}
	runDaemon(daemonConfig{
		addr: *addr, cache: *cache, localWorkers: *localWorkers,
		batch: *batch, batchLinger: *batchLinger,
		leaseTTL: *leaseTTL, maxAttempts: *maxAttempts,
		quotaRate: *quotaRate, quotaBurst: *quotaBurst,
		manifestDir: *manifestDir, eventsPath: *eventsPath, spanTrace: *spanTrace,
		slowRequest:  *slowRequest,
		drainTimeout: *drainTimeout, timeout: *timeout, retries: *retries,
	})
}

type daemonConfig struct {
	addr, cache           string
	localWorkers, batch   int
	batchLinger           time.Duration
	leaseTTL              time.Duration
	maxAttempts           int
	quotaRate, quotaBurst float64
	manifestDir           string
	eventsPath, spanTrace string
	slowRequest           time.Duration
	drainTimeout, timeout time.Duration
	retries               int
}

func runDaemon(c daemonConfig) {
	store, err := sweep.OpenStore(c.cache)
	if err != nil {
		fatalf("%v", err)
	}

	start := time.Now()
	reg := obs.NewRegistry()
	var sink obs.EventSink
	var jsonl *obs.JSONLSink
	var eventsFile *os.File
	if c.eventsPath != "" {
		f, ferr := os.Create(c.eventsPath)
		if ferr != nil {
			fatalf("%v", ferr)
		}
		eventsFile = f
		jsonl = obs.NewJSONLSink(f)
		sink = jsonl
	}
	// The span log is always on in daemon mode: it feeds the stitched
	// GET /v1/sweeps/{id}/trace endpoint.  -span-trace only controls the
	// exit-time Chrome-trace file export.
	spans := obs.NewSpanLog()

	// One registry, one event stream, one span log for both layers: the
	// engine's job lifecycle and the daemon's queue/lease/upload protocol.
	engObs := obs.NewSweepObsInto(reg, start, sink, spans)
	srvObs := obs.NewServeObs(reg, start, sink, spans, maxInt(c.localWorkers, 0))

	var engine *sweep.Engine
	if c.localWorkers > 0 {
		engine = sweep.New(sweep.Options{
			Workers: c.localWorkers, Timeout: c.timeout, Retries: c.retries,
			Store: store, Obs: engObs,
		})
	}

	srv, err := serve.New(serve.Config{
		Store: store, Obs: srvObs, Engine: engine, EngineObs: engObs,
		LeaseTTL: c.leaseTTL, MaxAttempts: c.maxAttempts,
		BatchMax: c.batch, BatchLinger: c.batchLinger,
		QuotaRate: c.quotaRate, QuotaBurst: c.quotaBurst,
		ManifestDir: c.manifestDir,
		Sink:        sink, SlowRequest: c.slowRequest,
	})
	if err != nil {
		fatalf("%v", err)
	}
	srv.Start()

	ln, err := net.Listen("tcp", c.addr)
	if err != nil {
		fatalf("%v", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	httpDone := make(chan error, 1)
	go func() { httpDone <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "dsre-serve: daemon on http://%s (cache %s, local workers %d, lease ttl %s)\n",
		ln.Addr(), c.cache, c.localWorkers, c.leaseTTL)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "dsre-serve: %s, draining (up to %s)\n", sig, c.drainTimeout)
	case err := <-httpDone:
		fatalf("http server: %v", err)
	}

	// Drain with the HTTP surface still up: in-flight fleet uploads and
	// final /progress scrapes land during the window.  Then stop serving.
	abandoned := srv.Drain("sigterm", c.drainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "dsre-serve: shutdown: %v\n", err)
	}

	if c.spanTrace != "" {
		if f, ferr := os.Create(c.spanTrace); ferr == nil {
			_ = spans.WriteChromeTrace(f)
			_ = f.Close()
		}
	}
	if eventsFile != nil {
		if jerr := jsonl.Err(); jerr != nil {
			fmt.Fprintf(os.Stderr, "dsre-serve: event log degraded: %v\n", jerr)
		}
		_ = eventsFile.Close()
	}
	fmt.Fprintf(os.Stderr, "dsre-serve: drained (%d queued jobs abandoned)\n", abandoned)
}

func runWorker(join, id string, jobs int, poll, timeout time.Duration, retries int) {
	if join == "" {
		fatalf("-worker needs -join http://daemon:port")
	}
	if id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	// The worker records its own span chains (queue-wait, prepare, run
	// attempts, upload) and ships them to the daemon with each completed
	// job for cross-process trace stitching.
	wspans := obs.NewSpanLog()
	wobs := obs.NewSweepObsInto(obs.NewRegistry(), time.Now(), nil, wspans)
	engine := sweep.New(sweep.Options{Workers: jobs, Timeout: timeout, Retries: retries, Obs: wobs})
	w, err := serve.NewWorker(serve.WorkerOptions{
		BaseURL: join, ID: id, Engine: engine, Concurrency: jobs, Poll: poll, Spans: wspans,
	})
	if err != nil {
		fatalf("%v", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if hv, herr := w.DaemonHealth(ctx); herr == nil {
		fmt.Fprintf(os.Stderr, "dsre-serve: daemon at %s runs sim %s (%s)\n", join, hv.SimVersion, hv.GoVersion)
		if hv.SimVersion != "" && hv.SimVersion != sim.Version {
			fmt.Fprintf(os.Stderr, "dsre-serve: WARNING: version skew — worker runs sim %s; uploads will be rejected\n", sim.Version)
		}
	} else {
		fmt.Fprintf(os.Stderr, "dsre-serve: healthz probe failed (%v); joining anyway\n", herr)
	}
	fmt.Fprintf(os.Stderr, "dsre-serve: worker %s joined %s (%d jobs)\n", id, join, jobs)
	if err := w.Run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "dsre-serve: worker %s: %v\n", id, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "dsre-serve: worker %s exiting after %d jobs\n", id, w.JobsDone())
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
