package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

const lockcheckName = "lockcheck"

// lockcheck audits the mutex discipline of the service-layer packages
// (Config.LockPkgs):
//
//   - guarded fields — inferred from `// guarded by <mu>` field comments
//     plus the struct-local convention that the contiguous field group
//     directly below a sync.Mutex/RWMutex field is guarded by it (a blank
//     line ends the group) — must only be touched inside a critical
//     section of that mutex, from a method whose name ends in "Locked"
//     (caller holds the lock), or under a //lint:lockcheck escape;
//   - lock-bearing structs must not be copied (value receivers, by-value
//     parameters and results; plain assignment copies are go vet's
//     copylocks domain);
//   - the per-module lock-acquisition graph (which mutexes are taken while
//     which are held, propagated through the call graph) must be acyclic —
//     a cycle, including the self-cycle of re-locking a held mutex, is a
//     deadlock waiting for the right interleaving.
//
// The critical-section analysis is positional, not path-sensitive: a
// Lock/Unlock pair (or the tiny lock()/unlock() wrapper methods, or a
// deferred unlock) covers the source span between them.  Unlocks whose next
// statement leaves the function (return/branch/panic) close an early-exit
// path, not the fall-through span, and are ignored.
func lockcheck(p *pass) {
	lc := &lockChecker{
		p:        p,
		mutexes:  map[*types.Var]*mutexField{},
		guards:   map[*types.Var]*mutexField{},
		wrappers: map[*types.Func]*wrapperInfo{},
		direct:   map[*types.Func]map[*mutexField]bool{},
		calls:    map[*types.Func][]*types.Func{},
		hasLock:  map[types.Type]bool{},
	}
	var pkgs []*Package
	for _, rel := range p.cfg.LockPkgs {
		pkg := p.mod.Lookup(rel)
		if pkg == nil {
			p.missingAnchor("package " + rel)
			continue
		}
		pkgs = append(pkgs, pkg)
	}
	for _, pkg := range pkgs {
		lc.discoverStructs(pkg)
	}
	for _, pkg := range pkgs {
		lc.discoverWrappers(pkg)
	}
	for _, pkg := range pkgs {
		lc.analyzePackage(pkg)
	}
	lc.checkLockOrder()
}

// mutexField is one sync.Mutex/RWMutex struct field under audit; it is the
// node of the lock-order graph.
type mutexField struct {
	owner *types.Named
	field *types.Var
	rw    bool
	id    string // "relpkg.Owner.field"
}

type wrapperInfo struct {
	mf *mutexField
	op string // "Lock", "Unlock", "RLock", "RUnlock"
}

// lockEvent is one Lock/Unlock-shaped call in a function body.
type lockEvent struct {
	pos      token.Pos
	base     string // types.ExprString of the expression holding the mutex
	mf       *mutexField
	op       string
	deferred bool
	earlyOut bool // unlock directly followed by return/branch/panic
}

type callSite struct {
	pos    token.Pos
	callee *types.Func
}

type guardedAccess struct {
	sel   *ast.SelectorExpr
	base  string
	mf    *mutexField
	field *types.Var
	write bool
}

// interval is one covered span of a critical section.
type interval struct {
	start, end token.Pos
	write      bool // covered by a write lock (Lock, not RLock)
}

type funcInfo struct {
	name      string
	events    []lockEvent
	calls     []callSite
	intervals map[string]map[*mutexField][]interval // base -> mutex -> spans
}

type lockChecker struct {
	p        *pass
	mutexes  map[*types.Var]*mutexField
	guards   map[*types.Var]*mutexField // guarded field -> its mutex
	wrappers map[*types.Func]*wrapperInfo
	direct   map[*types.Func]map[*mutexField]bool // direct acquisitions
	calls    map[*types.Func][]*types.Func        // module-local call graph
	infos    []*funcInfo
	hasLock  map[types.Type]bool
}

var guardedByRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// isMutexType reports sync.Mutex / sync.RWMutex (write = full Mutex).
func isMutexType(t types.Type) (rw, ok bool) {
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false, false
	}
	switch named.Obj().Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

// discoverStructs finds the mutex fields of pkg's struct types and the
// fields they guard.
func (lc *lockChecker) discoverStructs(pkg *Package) {
	fset := lc.p.mod.Fset
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				tn, ok := lc.p.mod.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				named, ok := tn.Type().(*types.Named)
				if !ok {
					continue
				}
				lc.discoverFields(pkg, fset, named, st)
			}
		}
	}
}

func (lc *lockChecker) discoverFields(pkg *Package, fset *token.FileSet, named *types.Named, st *ast.StructType) {
	type fieldAt struct {
		field   *ast.Field
		name    *ast.Ident
		obj     *types.Var
		topLine int // first line of the field incl. its doc comment
		endLine int
	}
	var fields []fieldAt
	for _, fd := range st.Fields.List {
		top := fset.Position(fd.Pos()).Line
		if fd.Doc != nil {
			top = fset.Position(fd.Doc.Pos()).Line
		}
		end := fset.Position(fd.End()).Line
		if fd.Comment != nil {
			end = fset.Position(fd.Comment.End()).Line
		}
		for _, name := range fd.Names {
			obj, _ := lc.p.mod.Info.Defs[name].(*types.Var)
			fields = append(fields, fieldAt{field: fd, name: name, obj: obj, topLine: top, endLine: end})
		}
		if len(fd.Names) == 0 { // embedded field: never a guard target here
			fields = append(fields, fieldAt{field: fd, topLine: top, endLine: end})
		}
	}
	// Pass 1: register the mutex fields.
	byName := map[string]*mutexField{}
	for _, fa := range fields {
		if fa.obj == nil {
			continue
		}
		if rw, ok := isMutexType(fa.obj.Type()); ok {
			mf := &mutexField{
				owner: named, field: fa.obj, rw: rw,
				id: lockNodeID(pkg, named, fa.obj),
			}
			lc.mutexes[fa.obj] = mf
			byName[fa.obj.Name()] = mf
		}
	}
	if len(byName) == 0 {
		return
	}
	// Pass 2: explicit `// guarded by <mu>` comments win; otherwise the
	// contiguous group below a mutex field is guarded by it.
	var current *mutexField
	prevEnd := -2
	for _, fa := range fields {
		if fa.obj == nil {
			current = nil
			prevEnd = fa.endLine
			continue
		}
		if _, isMu := lc.mutexes[fa.obj]; isMu {
			current = lc.mutexes[fa.obj]
			prevEnd = fa.endLine
			continue
		}
		if m := guardedByRE.FindStringSubmatch(fieldCommentText(fa.field)); m != nil {
			if mf := byName[m[1]]; mf != nil {
				lc.guards[fa.obj] = mf
			} else {
				lc.p.reportf(lockcheckName, fa.field.Pos(),
					"field %s.%s is annotated `guarded by %s` but %s has no mutex field %s",
					named.Obj().Name(), fa.obj.Name(), m[1], named.Obj().Name(), m[1])
			}
			current = nil // an explicit guard ends the positional group
			prevEnd = fa.endLine
			continue
		}
		if current != nil && fa.topLine == prevEnd+1 {
			lc.guards[fa.obj] = current
		} else {
			current = nil
		}
		prevEnd = fa.endLine
	}
}

func fieldCommentText(fd *ast.Field) string {
	var b strings.Builder
	if fd.Doc != nil {
		b.WriteString(fd.Doc.Text())
	}
	if fd.Comment != nil {
		b.WriteString(fd.Comment.Text())
	}
	return b.String()
}

func lockNodeID(pkg *Package, named *types.Named, field *types.Var) string {
	rel := pkg.RelPath
	if rel == "" {
		rel = pkg.Name
	}
	return rel + "." + named.Obj().Name() + "." + field.Name()
}

// discoverWrappers finds methods whose whole body is a single Lock-shaped
// call on a receiver mutex (e.g. Queue.lock / Queue.unlock), so calling
// them counts as the underlying operation.
func (lc *lockChecker) discoverWrappers(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Body.List) != 1 {
				continue
			}
			es, ok := fd.Body.List[0].(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			mf, op, ok := lc.directLockCall(call)
			if !ok {
				continue
			}
			if fn, ok := lc.p.mod.Info.Defs[fd.Name].(*types.Func); ok {
				lc.wrappers[fn] = &wrapperInfo{mf: mf, op: op}
			}
		}
	}
}

// directLockCall matches `base.mu.Lock()`-shaped calls on a discovered
// mutex field, returning the mutex and operation.
func (lc *lockChecker) directLockCall(call *ast.CallExpr) (*mutexField, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, "", false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	s, ok := lc.p.mod.Info.Selections[inner]
	if !ok || s.Kind() != types.FieldVal {
		return nil, "", false
	}
	obj, ok := s.Obj().(*types.Var)
	if !ok {
		return nil, "", false
	}
	mf, ok := lc.mutexes[obj]
	if !ok {
		return nil, "", false
	}
	return mf, op, true
}

// analyzePackage walks every function body (function literals are analyzed
// as independent functions: a closure runs on its own goroutine's schedule
// and cannot rely on its creator's critical section).
func (lc *lockChecker) analyzePackage(pkg *Package) {
	for _, f := range pkg.Files {
		anns := lc.p.annotationsFor(f, "lockcheck")
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := lc.p.mod.Info.Defs[fd.Name].(*types.Func)
			lc.checkCopyByValue(pkg, fd)
			lc.analyzeFunc(pkg, fd, fn, anns)
		}
	}
}

// checkCopyByValue flags lock-bearing structs passed by value through a
// receiver, parameter or result.
func (lc *lockChecker) checkCopyByValue(pkg *Package, fd *ast.FuncDecl) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, fld := range fl.List {
			tv, ok := lc.p.mod.Info.Types[fld.Type]
			if !ok {
				continue
			}
			if lc.typeHasLock(tv.Type) {
				p := fld.Type.Pos()
				lc.p.reportf(lockcheckName, p,
					"%s %s of %s is passed by value, copying its mutex — use a pointer", what,
					types.TypeString(tv.Type, types.RelativeTo(pkg.Types)), fd.Name.Name)
			}
		}
	}
	check(fd.Recv, "receiver")
	check(fd.Type.Params, "parameter")
	check(fd.Type.Results, "result")
}

// typeHasLock reports whether t (a value of it) contains a mutex, walking
// named structs and arrays but not references.
func (lc *lockChecker) typeHasLock(t types.Type) bool {
	if v, ok := lc.hasLock[t]; ok {
		return v
	}
	lc.hasLock[t] = false // breaks recursive types
	v := false
	switch u := t.(type) {
	case *types.Named:
		if _, ok := isMutexType(u); ok {
			v = true
		} else {
			v = lc.typeHasLock(u.Underlying())
		}
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lc.typeHasLock(u.Field(i).Type()) {
				v = true
				break
			}
		}
	case *types.Array:
		v = lc.typeHasLock(u.Elem())
	}
	lc.hasLock[t] = v
	return v
}

// analyzeFunc drives the per-function critical-section analysis and
// records the function's lock summary for the order graph.
func (lc *lockChecker) analyzeFunc(pkg *Package, fd *ast.FuncDecl, fn *types.Func, anns []*annotation) {
	var recvName string
	var recvType *types.Named
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		recvName = fd.Recv.List[0].Names[0].Name
		if tv, ok := lc.p.mod.Info.Types[fd.Recv.List[0].Type]; ok {
			t := tv.Type
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			recvType, _ = t.(*types.Named)
		}
	}
	isWrapper := fn != nil && lc.wrappers[fn] != nil
	lc.analyzeBody(pkg, funcDisplayName(pkg, fd), fn, fd.Body, anns, func(a guardedAccess, covered, writeCovered bool) bool {
		if isWrapper {
			return true
		}
		if covered && (!a.write || writeCovered) {
			return true
		}
		// A *Locked method asserts its caller holds the receiver's lock.
		if recvType != nil && a.mf.owner.Obj() == recvType.Obj() &&
			a.base == recvName && strings.HasSuffix(fd.Name.Name, "Locked") {
			return true
		}
		return false
	})
}

func funcDisplayName(pkg *Package, fd *ast.FuncDecl) string {
	if fd.Recv != nil {
		return recvTypeName(fd) + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// analyzeBody collects the lock events, guarded accesses and call sites of
// one body (recursing into function literals as separate bodies), builds
// the covered intervals, and reports uncovered accesses.  allow is the
// enclosing declaration's extra exemptions.
func (lc *lockChecker) analyzeBody(pkg *Package, name string, fn *types.Func, body *ast.BlockStmt,
	anns []*annotation, allow func(a guardedAccess, covered, writeCovered bool) bool) {

	info := &funcInfo{name: name, intervals: map[string]map[*mutexField][]interval{}}
	var accesses []guardedAccess
	var lits []*ast.FuncLit
	writeTargets := map[ast.Expr]bool{}

	markWrite := func(e ast.Expr) {
		for {
			switch x := e.(type) {
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.ParenExpr:
				e = x.X
			default:
				writeTargets[e] = true
				return
			}
		}
	}

	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				lits = append(lits, n)
				return false
			case *ast.DeferStmt:
				walkCallStmt(lc, info, n.Call, true)
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					lits = append(lits, lit)
				}
				for _, arg := range n.Call.Args {
					walk(arg, inDefer)
				}
				return false
			case *ast.GoStmt:
				// The spawned call runs concurrently: it is neither inside
				// this critical section nor ordered after it.
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					lits = append(lits, lit)
				}
				for _, arg := range n.Call.Args {
					walk(arg, inDefer)
				}
				return false
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					markWrite(lhs)
				}
			case *ast.IncDecStmt:
				markWrite(n.X)
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					markWrite(n.X) // the pointee escapes; treat as a write
				}
			case *ast.CallExpr:
				walkCallStmt(lc, info, n, false)
			case *ast.SelectorExpr:
				if s, ok := lc.p.mod.Info.Selections[n]; ok && s.Kind() == types.FieldVal {
					if obj, ok := s.Obj().(*types.Var); ok {
						if mf, guarded := lc.guards[obj]; guarded {
							accesses = append(accesses, guardedAccess{
								sel: n, base: types.ExprString(n.X), mf: mf, field: obj,
								write: writeTargets[n],
							})
						}
					}
				}
			}
			return true
		})
	}
	walk(body, false)
	markEarlyOuts(info, body)
	buildIntervals(info, body.End())

	for _, a := range accesses {
		covered, writeCovered := coveredAt(info, a.base, a.mf, a.sel.Pos())
		if allow(a, covered, writeCovered) {
			continue
		}
		line := lc.p.mod.Position(a.sel.Pos()).Line
		if suppressed(anns, line) {
			continue
		}
		verb := "read"
		if a.write {
			verb = "write"
		}
		if covered && a.write && !writeCovered {
			lc.p.reportf(lockcheckName, a.sel.Pos(),
				"%s of %s.%s under RLock in %s — guarded writes need the full %s",
				verb, a.mf.owner.Obj().Name(), a.field.Name(), name, a.mf.id)
			continue
		}
		lc.p.reportf(lockcheckName, a.sel.Pos(),
			"%s of %s.%s outside %s in %s — hold the lock, move this into a *Locked method, or annotate //lint:lockcheck with a justification",
			verb, a.mf.owner.Obj().Name(), a.field.Name(), a.mf.id, name)
	}

	// Record the summary inputs for the lock-order graph.  Function
	// literals have no callable identity: their events still contribute
	// intra-body edges, but nothing propagates to callers.
	lc.infos = append(lc.infos, info)
	if fn != nil {
		d := lc.direct[fn]
		if d == nil {
			d = map[*mutexField]bool{}
			lc.direct[fn] = d
		}
		for _, ev := range info.events {
			if ev.op == "Lock" || ev.op == "RLock" {
				d[ev.mf] = true
			}
		}
		for _, cs := range info.calls {
			lc.calls[fn] = append(lc.calls[fn], cs.callee)
		}
	}

	for _, lit := range lits {
		lc.analyzeBody(pkg, name+".func", nil, lit.Body, anns,
			func(a guardedAccess, covered, writeCovered bool) bool {
				return covered && (!a.write || writeCovered)
			})
	}
}

// walkCallStmt classifies one call: a lock event (direct or via wrapper) or
// a plain call site feeding the order graph.
func walkCallStmt(lc *lockChecker, info *funcInfo, call *ast.CallExpr, deferred bool) {
	if mf, op, ok := lc.directLockCall(call); ok {
		sel := call.Fun.(*ast.SelectorExpr).X.(*ast.SelectorExpr)
		info.events = append(info.events, lockEvent{
			pos: call.Pos(), base: types.ExprString(sel.X), mf: mf, op: op, deferred: deferred,
		})
		return
	}
	callee := calledFunc(lc.p.mod.Info, call)
	if callee == nil {
		return
	}
	if w := lc.wrappers[callee]; w != nil {
		base := ""
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			base = types.ExprString(sel.X)
		}
		info.events = append(info.events, lockEvent{
			pos: call.Pos(), base: base, mf: w.mf, op: w.op, deferred: deferred,
		})
		return
	}
	info.calls = append(info.calls, callSite{pos: call.Pos(), callee: callee})
}

// calledFunc resolves a call expression to its *types.Func, if any.
func calledFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// markEarlyOuts flags unlock events whose next sibling statement leaves the
// function: they close an early-exit path, and treating them as the end of
// the fall-through critical section would split it spuriously.
func markEarlyOuts(info *funcInfo, body *ast.BlockStmt) {
	unlockAt := map[token.Pos]*lockEvent{}
	for i := range info.events {
		ev := &info.events[i]
		if !ev.deferred && (ev.op == "Unlock" || ev.op == "RUnlock") {
			unlockAt[ev.pos] = ev
		}
	}
	if len(unlockAt) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for i, st := range list {
			es, ok := st.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			ev, ok := unlockAt[call.Pos()]
			if !ok || i+1 >= len(list) {
				continue
			}
			switch next := list[i+1].(type) {
			case *ast.ReturnStmt, *ast.BranchStmt:
				ev.earlyOut = true
			case *ast.ExprStmt:
				if c, ok := next.X.(*ast.CallExpr); ok {
					if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "panic" {
						ev.earlyOut = true
					}
				}
			}
		}
		return true
	})
}

// buildIntervals turns the position-ordered lock events into covered spans
// per (base expression, mutex).
func buildIntervals(info *funcInfo, bodyEnd token.Pos) {
	type key struct {
		base string
		mf   *mutexField
	}
	byKey := map[key][]lockEvent{}
	for _, ev := range info.events {
		k := key{ev.base, ev.mf}
		byKey[k] = append(byKey[k], ev)
	}
	for k, evs := range byKey {
		sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
		var spans []interval
		depth, writeDepth := 0, 0
		var start token.Pos
		deferredOpen := false
		for _, ev := range evs {
			switch ev.op {
			case "Lock", "RLock":
				if ev.deferred {
					continue // defer mu.Lock() is a bug, not a section
				}
				if depth == 0 {
					start = ev.pos
				}
				depth++
				if ev.op == "Lock" {
					writeDepth++
				}
			case "Unlock", "RUnlock":
				if ev.deferred {
					deferredOpen = true
					continue
				}
				if ev.earlyOut {
					continue
				}
				if depth > 0 {
					depth--
					if ev.op == "Unlock" && writeDepth > 0 {
						writeDepth--
					}
					if depth == 0 {
						spans = append(spans, interval{start: start, end: ev.pos, write: writeDepth >= 0 && spanHadWrite(evs, start, ev.pos)})
					}
				}
			}
		}
		if depth > 0 || deferredOpen && depth == 0 && len(evs) > 0 && anyLock(evs) {
			// Locked with a deferred (or missing) unlock: covered to the end.
			if depth == 0 {
				// Only a deferred unlock was seen; find the first lock.
				for _, ev := range evs {
					if !ev.deferred && (ev.op == "Lock" || ev.op == "RLock") {
						start = ev.pos
						break
					}
				}
				if start == token.NoPos {
					continue
				}
			}
			spans = append(spans, interval{start: start, end: bodyEnd, write: spanHadWrite(evs, start, bodyEnd)})
		}
		m := info.intervals[k.base]
		if m == nil {
			m = map[*mutexField][]interval{}
			info.intervals[k.base] = m
		}
		m[k.mf] = spans
	}
}

func anyLock(evs []lockEvent) bool {
	for _, ev := range evs {
		if !ev.deferred && (ev.op == "Lock" || ev.op == "RLock") {
			return true
		}
	}
	return false
}

// spanHadWrite reports whether a full (non-R) Lock opened within the span.
func spanHadWrite(evs []lockEvent, start, end token.Pos) bool {
	for _, ev := range evs {
		if !ev.deferred && ev.op == "Lock" && ev.pos >= start && ev.pos <= end {
			return true
		}
	}
	return false
}

func coveredAt(info *funcInfo, base string, mf *mutexField, pos token.Pos) (covered, write bool) {
	for _, iv := range info.intervals[base][mf] {
		if pos >= iv.start && pos <= iv.end {
			covered = true
			if iv.write {
				write = true
			}
		}
	}
	return covered, write
}

// checkLockOrder propagates lock acquisitions through the call graph and
// reports cycles in the while-holding graph.
func (lc *lockChecker) checkLockOrder() {
	// Fixpoint: summary(fn) = direct(fn) ∪ summary(callees).
	summary := map[*types.Func]map[*mutexField]bool{}
	for fn, d := range lc.direct {
		s := map[*mutexField]bool{}
		for mf := range d {
			s[mf] = true
		}
		summary[fn] = s
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range lc.calls {
			s := summary[fn]
			if s == nil {
				s = map[*mutexField]bool{}
				summary[fn] = s
			}
			for _, callee := range callees {
				for mf := range summary[callee] {
					if !s[mf] {
						s[mf] = true
						changed = true
					}
				}
			}
		}
	}

	// Edges: B acquired (directly or via a call) while an interval of A is
	// open.  The event that opens the interval itself is not an edge.
	type edge struct{ from, to string }
	witnesses := map[edge]token.Pos{}
	adj := map[string]map[string]bool{}
	addEdge := func(from, to *mutexField, pos token.Pos) {
		e := edge{from.id, to.id}
		if w, ok := witnesses[e]; !ok || pos < w {
			witnesses[e] = pos
		}
		if adj[e.from] == nil {
			adj[e.from] = map[string]bool{}
		}
		adj[e.from][e.to] = true
	}
	for _, info := range lc.infos {
		for _, byMF := range info.intervals {
			for mf, spans := range byMF {
				for _, iv := range spans {
					for _, ev := range info.events {
						if ev.pos > iv.start && ev.pos <= iv.end &&
							(ev.op == "Lock" || ev.op == "RLock") && ev.mf != mf {
							addEdge(mf, ev.mf, ev.pos)
						}
					}
					for _, cs := range info.calls {
						if cs.pos <= iv.start || cs.pos > iv.end {
							continue
						}
						for acq := range summary[cs.callee] {
							addEdge(mf, acq, cs.pos)
						}
					}
				}
			}
		}
	}

	// Report one diagnostic per cycle, deterministically: walk nodes in
	// sorted order and report the first cycle each node closes.
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	reported := map[string]bool{}
	for _, n := range nodes {
		// Self-cycles first: re-acquiring a held mutex needs no partner.
		if adj[n][n] {
			lc.p.reportf(lockcheckName, witnesses[edge{n, n}],
				"lock-order cycle: %s → %s — re-acquiring a mutex already held deadlocks (sync.Mutex is not reentrant)", n, n)
		}
		cycle := findCycle(adj, n)
		if cycle == nil {
			continue
		}
		key := strings.Join(cycle, "→")
		if reported[key] {
			continue
		}
		reported[key] = true
		e := edge{cycle[0], cycle[1%len(cycle)]}
		if len(cycle) == 1 {
			e = edge{cycle[0], cycle[0]}
		}
		lc.p.reportf(lockcheckName, witnesses[e],
			"lock-order cycle: %s — a matching interleaving deadlocks; acquire these mutexes in one global order",
			strings.Join(append(cycle, cycle[0]), " → "))
	}
}

// findCycle returns a cycle through start (canonicalised to start at its
// lexicographically smallest node), or nil.
func findCycle(adj map[string]map[string]bool, start string) []string {
	var path []string
	onPath := map[string]bool{}
	visited := map[string]bool{}
	var found []string
	var dfs func(n string) bool
	dfs = func(n string) bool {
		path = append(path, n)
		onPath[n] = true
		visited[n] = true
		tos := make([]string, 0, len(adj[n]))
		for to := range adj[n] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			if to == n {
				continue // self-cycles are reported separately
			}
			if to == start && onPath[start] {
				found = append([]string(nil), path...)
				return true
			}
			if !visited[to] {
				if dfs(to) {
					return true
				}
			}
		}
		path = path[:len(path)-1]
		onPath[n] = false
		return false
	}
	if dfs(start) {
		// Canonicalise: rotate so the smallest node leads.
		min := 0
		for i, n := range found {
			if n < found[min] {
				min = i
			}
		}
		return append(found[min:], found[:min]...)
	}
	return nil
}
