package sim

import (
	"fmt"

	"repro/internal/isa"
)

// PlacementKind selects how a block's instructions map onto execution
// tiles — the scheduler decision the TRIPS compiler made spatially.
type PlacementKind int

// Placement policies.
const (
	// PlaceRoundRobin strides instructions across tiles by index: perfect
	// load balance, oblivious to communication.
	PlaceRoundRobin PlacementKind = iota
	// PlaceChain puts an instruction on its first producer's tile when the
	// tile still has frame slots, turning dependence chains into tile-local
	// (bypass) operand hops at some load-balance cost.
	PlaceChain
)

// String names the placement policy.
func (k PlacementKind) String() string {
	switch k {
	case PlaceRoundRobin:
		return "round-robin"
	case PlaceChain:
		return "chain"
	}
	return "unknown"
}

// computePlacement maps every instruction of every static block to a tile,
// honouring the per-tile frame capacity (instruction slots per tile per
// block).
func computePlacement(kind PlacementKind, prog *isa.Program, tiles int) ([][]int, error) {
	capPerTile := (isa.MaxInsts + tiles - 1) / tiles
	place := make([][]int, len(prog.Blocks))
	for bi, b := range prog.Blocks {
		p := make([]int, len(b.Insts))
		switch kind {
		case PlaceRoundRobin:
			for i := range b.Insts {
				p[i] = i % tiles
			}
		case PlaceChain:
			load := make([]int, tiles)
			// producer[i] = instruction index feeding i's A slot, or -1.
			producer := make([]int, len(b.Insts))
			for i := range producer {
				producer[i] = -1
			}
			for i := range b.Insts {
				for _, t := range b.Insts[i].Targets {
					if t.Kind == isa.TargetInst && t.Slot == isa.SlotA && producer[t.Index] < 0 {
						producer[t.Index] = i
					}
				}
			}
			rr := 0
			for i := range b.Insts {
				tile := -1
				if pr := producer[i]; pr >= 0 && load[p[pr]] < capPerTile {
					tile = p[pr]
				}
				if tile < 0 {
					// Least-loaded fallback starting from a rotating cursor.
					tile = rr % tiles
					for probe := 0; probe < tiles; probe++ {
						cand := (rr + probe) % tiles
						if load[cand] < load[tile] {
							tile = cand
						}
					}
					rr++
				}
				p[i] = tile
				load[tile]++
			}
		default:
			return nil, fmt.Errorf("sim: unknown placement policy %d", kind)
		}
		place[bi] = p
	}
	return place, nil
}
