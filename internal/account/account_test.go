package account

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/predictor"
)

func TestBucketStringsDistinct(t *testing.T) {
	seen := map[string]Bucket{}
	for b := Bucket(0); b < NumBuckets; b++ {
		s := b.String()
		if s == "" || strings.HasPrefix(s, "bucket(") {
			t.Fatalf("bucket %d has no name: %q", b, s)
		}
		if prev, ok := seen[s]; ok {
			t.Fatalf("buckets %d and %d share name %q", prev, b, s)
		}
		seen[s] = b
	}
	if got := NumBuckets.String(); !strings.HasPrefix(got, "bucket(") {
		t.Fatalf("sentinel String() = %q", got)
	}
}

func TestCPIStackAddGetTotalSub(t *testing.T) {
	var c CPIStack
	for b := Bucket(0); b < NumBuckets; b++ {
		c.Add(b, int64(b)+1)
	}
	for b := Bucket(0); b < NumBuckets; b++ {
		if got := c.Get(b); got != int64(b)+1 {
			t.Fatalf("Get(%s) = %d, want %d", b, got, int64(b)+1)
		}
	}
	// 1+2+...+8 = 36
	if got := c.Total(); got != 36 {
		t.Fatalf("Total() = %d, want 36", got)
	}
	prev := c
	c.Add(BucketWave, 5)
	d := c.Sub(prev)
	if d.Wave != 5 || d.Total() != 5 {
		t.Fatalf("Sub delta = %+v, want only wave=5", d)
	}
	// Sentinel Add/Get are inert.
	before := c
	c.Add(NumBuckets, 99)
	if c != before || c.Get(NumBuckets) != 0 {
		t.Fatalf("sentinel bucket mutated the stack")
	}
}

func TestCPIStackString(t *testing.T) {
	var c CPIStack
	if got := c.String(); got != "(empty)" {
		t.Fatalf("empty String() = %q", got)
	}
	c.Add(BucketCommit, 3)
	c.Add(BucketFetch, 1)
	got := c.String()
	if !strings.Contains(got, "commit=3 (75.0%)") || !strings.Contains(got, "fetch=1 (25.0%)") {
		t.Fatalf("String() = %q", got)
	}
}

func TestCPIStackJSONRoundTrip(t *testing.T) {
	c := CPIStack{Commit: 1, Wave: 2, BPred: 3, Fetch: 4, Drain: 5, CacheMiss: 6, Issue: 7, NoC: 8}
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var back CPIStack
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != c {
		t.Fatalf("round trip: got %+v want %+v", back, c)
	}
}

func TestFlightRecorderWraps(t *testing.T) {
	fr := NewFlightRecorder(4)
	for i := int64(0); i < 10; i++ {
		fr.Record(Snapshot{Cycle: i, Attributed: BucketFetch})
	}
	if fr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", fr.Len())
	}
	snaps := fr.Snapshots()
	for i, s := range snaps {
		if want := int64(6 + i); s.Cycle != want {
			t.Fatalf("snapshot %d cycle = %d, want %d", i, s.Cycle, want)
		}
	}
	dump := fr.Dump()
	if !strings.Contains(dump, "flight recorder (last 4 cycles):") {
		t.Fatalf("dump header missing: %q", dump)
	}
	if strings.Contains(dump, "cycle=5 ") || !strings.Contains(dump, "cycle=9 ") {
		t.Fatalf("dump window wrong:\n%s", dump)
	}
}

func TestForensicsDepthWastedAndProfiles(t *testing.T) {
	f := NewForensics()
	loadA := predictor.MakePC(3, 1)
	loadB := predictor.MakePC(7, 2)
	store1 := predictor.MakePC(2, 0)
	store2 := predictor.MakePC(2, 4)

	// Wave 10 repairs load A (store un-speculative): depth 1.
	f.Record(EventWave, 100, 1, loadA, store1, core.Tag(10), 0, 40)
	// Wave 11 repairs load B, triggered by a store running under wave 10:
	// depth 2.
	f.Record(EventWave, 101, 2, loadB, store2, core.Tag(11), core.Tag(10), 30)
	// Load A (same dynamic instance) re-violates: the first wave's work was
	// wasted.
	f.Record(EventWave, 100, 1, loadA, store2, core.Tag(12), 0, 20)
	// A flush repair and a VP repair round out the kinds.
	f.Record(EventFlush, 102, 1, loadA, store1, core.Tag(13), 0, 15)
	f.Record(EventVP, 103, 3, loadB, 0, core.Tag(14), 0, 0)

	sizes := map[core.Tag]int64{10: 4, 11: 3, 12: 2, 14: 1}
	waveSize := func(t core.Tag) int64 { return sizes[t] }

	s := f.Summarize(waveSize, 12, 10)
	if s.Events != 5 || s.FlushEvents != 1 || s.WaveEvents != 3 || s.VPEvents != 1 {
		t.Fatalf("event counts: %+v", s)
	}
	// Waves 10,11,12 and VP wave 14 are audited: 4+3+2+1 = 10 of 12 total.
	if s.WaveReexecs != 10 || s.UnattributedReexecs != 2 {
		t.Fatalf("reexec attribution: %+v", s)
	}
	if s.WastedReexecs != 4 { // wave 10 was superseded
		t.Fatalf("WastedReexecs = %d, want 4", s.WastedReexecs)
	}
	if s.MaxDepth != 2 {
		t.Fatalf("MaxDepth = %d, want 2", s.MaxDepth)
	}
	if s.SquashCost != 40+30+20+15 {
		t.Fatalf("SquashCost = %d", s.SquashCost)
	}
	if len(s.Loads) != 2 {
		t.Fatalf("Loads = %+v", s.Loads)
	}
	// Load A has 3 events, B has 2: A first.
	a, b := s.Loads[0], s.Loads[1]
	if a.LoadPC != loadA.String() || b.LoadPC != loadB.String() {
		t.Fatalf("profile order: %q then %q", a.LoadPC, b.LoadPC)
	}
	if a.Events != 3 || a.Flushes != 1 || a.Waves != 2 || a.Wasted != 4 {
		t.Fatalf("load A profile: %+v", a)
	}
	if b.Events != 2 || b.Waves != 1 || b.VPRepairs != 1 || b.MaxDepth != 2 {
		t.Fatalf("load B profile: %+v", b)
	}
	// Load A conflicted with store1 twice and store2 once.
	if len(a.TopStores) != 2 || a.TopStores[0].StorePC != store1.String() || a.TopStores[0].Count != 2 {
		t.Fatalf("load A top stores: %+v", a.TopStores)
	}
	// VP events carry no store PC.
	if len(b.TopStores) != 1 || b.TopStores[0].StorePC != store2.String() {
		t.Fatalf("load B top stores: %+v", b.TopStores)
	}
}

func TestForensicsTopTruncation(t *testing.T) {
	f := NewForensics()
	for i := 0; i < 6; i++ {
		load := predictor.MakePC(i, 0)
		for j := 0; j <= i; j++ {
			f.Record(EventFlush, int64(100*i+j), 0, load, predictor.MakePC(50+j, 0), 0, 0, 1)
		}
	}
	s := f.Summarize(func(core.Tag) int64 { return 0 }, 0, 2)
	if len(s.Loads) != 2 {
		t.Fatalf("top truncation: %d loads", len(s.Loads))
	}
	// Hottest load is block 5 (6 events) then block 4 (5 events).
	if s.Loads[0].LoadPC != predictor.MakePC(5, 0).String() || s.Loads[0].Events != 6 {
		t.Fatalf("hottest load: %+v", s.Loads[0])
	}
	if len(s.Loads[1].TopStores) != 2 {
		t.Fatalf("store truncation: %+v", s.Loads[1].TopStores)
	}
	// Totals still cover the whole log, not just the shown top-N.
	if s.Events != 6+5+4+3+2+1 || s.FlushEvents != s.Events {
		t.Fatalf("totals truncated: %+v", s)
	}
}
