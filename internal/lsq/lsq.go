// Package lsq implements the load/store queue of the simulated EDGE
// machine: the structure that gives dataflow execution conventional
// sequential memory semantics (the central difficulty the paper's abstract
// calls out versus single-assignment dataflow machines).
//
// Responsibilities:
//
//   - total memory order: dynamic memory operations are ordered by
//     (block sequence, load/store ID);
//   - store→load forwarding with byte-granularity reconstruction: a load's
//     value is assembled byte-by-byte from the youngest older executed
//     store covering each byte, falling back to committed memory;
//   - load issue policy: conservative, aggressive, store-set-predicted or
//     oracle-directed deferral of loads (the policies the paper compares);
//   - violation detection: whenever a store executes, re-executes with a
//     changed address/data, or nullifies, every younger issued load whose
//     reconstructed value changes is reported for recovery (flush or DSRE);
//   - the memory leg of the commit wave: a load certifies (may send commit
//     tokens) only when its address is final and every older store is
//     committed.
package lsq

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/predictor"
)

// Key orders dynamic memory operations: block sequence first, then LSID.
type Key struct {
	Seq  int64
	LSID int8
}

// Less reports whether k is older than o in memory order.
func (k Key) Less(o Key) bool {
	if k.Seq != o.Seq {
		return k.Seq < o.Seq
	}
	return k.LSID < o.LSID
}

// String renders the key.
func (k Key) String() string { return fmt.Sprintf("b%d.ls%d", k.Seq, k.LSID) }

// OpInfo declares one memory operation at block map time.
type OpInfo struct {
	LSID    int8
	IsStore bool
	Size    int
	PC      predictor.PC
}

// Violation reports a load whose previously returned value is stale.
type Violation struct {
	Load    Key
	Addr    uint64 // the load's address (for D-tile bank routing)
	Value   int64  // corrected value
	Tag     core.Tag
	LoadPC  predictor.PC
	StorePC predictor.PC
	// StoreTag is the wave tag the conflicting store executed under (zero
	// if it ran un-speculatively), so forensics can chain wave depths.
	StoreTag core.Tag
}

// ReadyLoad is a load whose value is (now) available.
type ReadyLoad struct {
	Load Key
	Addr uint64
	Res  LoadResult
}

// DeferReason says why a load could not issue, for statistics.
type DeferReason int

// Deferral reasons.
const (
	DeferNone DeferReason = iota
	DeferPolicy
	DeferMSHR
)

// Stats counts LSQ events.
type Stats struct {
	Loads           int64
	Stores          int64
	Forwards        int64 // loads fully satisfied by forwarding
	PartialForwards int64 // loads mixing store bytes and memory bytes
	Violations      int64
	SilentStoreHits int64 // store updates that changed no load's value
	DeferredPolicy  int64
	DeferredMSHR    int64
	GuardedLoads    int64
	PeakOccupancy   int
}

// Config parameterises the queue.
type Config struct {
	Policy core.IssuePolicy
	// ForwardLatency is the store→load forwarding latency in cycles.
	ForwardLatency int
	// ViolationLatency is the delay before a corrected value is
	// re-broadcast after a violation is detected.
	ViolationLatency int
}

type entry struct {
	key     Key
	pc      predictor.PC
	isStore bool
	size    int

	// Dynamic state (latest execution).
	hasExec bool
	null    bool
	addr    uint64
	data    int64 // store data, or the load's last returned value
	tag     core.Tag

	// Load state.
	issued          bool
	deferred        bool
	waitFor         predictor.DynRef
	waitValid       bool // waitFor was captured
	inputsCommitted bool
	certified       bool

	// Store commit state.  addrCommitted/dataCommitted arrive separately
	// (the commit wave reaches the address and data operands independently);
	// committed means both, or a committed null.
	addrCommitted bool
	dataCommitted bool
	committed     bool
}

type blockOps struct {
	seq               int64
	ops               []entry // indexed by LSID (dense from validator)
	uncommittedStores int
}

// Queue is the load/store queue.
type Queue struct {
	cfg    Config
	mem    *mem.Memory
	hier   *cache.Hierarchy
	tags   *core.TagSource
	ss     *predictor.StoreSet
	oracle *predictor.Oracle

	blocks   []*blockOps // ascending seq
	bySeq    map[int64]*blockOps
	resident int // entries across blocks, maintained incrementally (occupancy is read every cycle)
	// free recycles drained/squashed blockOps (and their entry arrays) so
	// steady-state block turnover does not allocate.
	free []*blockOps

	deferred []Key // parked loads, re-evaluated when dirty
	dirty    bool
	mshrWait bool // some load parked on MSHR pressure; retry every cycle

	// certDirty gates TakeCertifiable's scan: a parked certification
	// candidate can only become certifiable when a store commits, executes,
	// nullifies or leaves the window, a load issues, or a new candidate
	// arrives — every such mutation sets it.  A scan that yields nothing has
	// no side effects, so skipping it while the flag is clear is
	// behaviour-identical and avoids an O(loads × stores) rescan per cycle.
	certDirty bool

	// guard holds dynamic loads that violated and were flushed: their
	// refetched instances (same key) replay conservatively, which is what
	// keeps flush recovery livelock-free when a load conflicts with a
	// store in its own block.
	guard map[Key]bool

	certCand []Key // loads awaiting certification

	// ValidateDrain, when set (tests), is called for every drained store
	// with its final address and data; an error aborts the run loudly.
	ValidateDrain func(k Key, addr uint64, data int64, size int) error

	Stats Stats
}

// New builds a queue.  mem holds committed state; hier provides data-side
// timing; tags allocates violation wave tags; ss and oracle may be nil when
// the policy does not use them.
func New(cfg Config, m *mem.Memory, hier *cache.Hierarchy, tags *core.TagSource, ss *predictor.StoreSet, oracle *predictor.Oracle) *Queue {
	if cfg.ForwardLatency <= 0 {
		cfg.ForwardLatency = 1
	}
	if cfg.ViolationLatency <= 0 {
		cfg.ViolationLatency = 1
	}
	return &Queue{
		cfg:    cfg,
		mem:    m,
		hier:   hier,
		tags:   tags,
		ss:     ss,
		oracle: oracle,
		bySeq:  make(map[int64]*blockOps),
		guard:  make(map[Key]bool),
	}
}

// takeBlockOps pops a recycled blockOps (or allocates one) with a cleared
// entry slice of length n.
func (q *Queue) takeBlockOps(n int) *blockOps {
	if len(q.free) == 0 {
		return &blockOps{ops: make([]entry, n)}
	}
	b := q.free[len(q.free)-1]
	q.free[len(q.free)-1] = nil
	q.free = q.free[:len(q.free)-1]
	if cap(b.ops) < n {
		b.ops = make([]entry, n)
	} else {
		b.ops = b.ops[:n]
		clear(b.ops)
	}
	b.uncommittedStores = 0
	return b
}

func (q *Queue) releaseBlockOps(b *blockOps) {
	q.free = append(q.free, b)
}

// RegisterBlock reserves entries for a block's memory operations at map
// time.  Blocks must be registered in ascending sequence order.
func (q *Queue) RegisterBlock(seq int64, ops []OpInfo) {
	if len(q.blocks) > 0 && q.blocks[len(q.blocks)-1].seq >= seq {
		panic(fmt.Sprintf("lsq: block %d registered after %d", seq, q.blocks[len(q.blocks)-1].seq))
	}
	b := q.takeBlockOps(len(ops))
	b.seq = seq
	for i, op := range ops {
		if int(op.LSID) != i {
			panic(fmt.Sprintf("lsq: block %d ops not dense at %d", seq, i))
		}
		e := entry{key: Key{seq, op.LSID}, pc: op.PC, isStore: op.IsStore, size: op.Size}
		ref := predictor.DynRef{Seq: seq, LSID: op.LSID}
		// Dependence capture happens here, in LSID (dispatch) order, so a
		// load's LFST lookup sees exactly the stores older than it — the
		// in-order dispatch semantics of the store-set design.
		switch {
		case op.IsStore:
			b.uncommittedStores++
			if q.ss != nil {
				q.ss.StoreFetched(op.PC, ref)
			}
		case q.cfg.Policy == core.IssueStoreSet && q.ss != nil:
			e.waitFor = q.ss.LoadDependence(op.PC)
			e.waitValid = true
		case q.cfg.Policy == core.IssueOracle && q.oracle != nil:
			e.waitFor = q.oracle.LoadDependence(ref)
			e.waitValid = true
		}
		b.ops[i] = e
	}
	q.blocks = append(q.blocks, b)
	q.bySeq[seq] = b
	q.resident += len(b.ops)
	if q.resident > q.Stats.PeakOccupancy {
		q.Stats.PeakOccupancy = q.resident
	}
}

func (q *Queue) occupancy() int { return q.resident }

func (q *Queue) get(k Key) *entry {
	b := q.bySeq[k.Seq]
	if b == nil || int(k.LSID) >= len(b.ops) {
		return nil
	}
	return &b.ops[k.LSID]
}

// SquashFrom removes every block with sequence >= seq.
func (q *Queue) SquashFrom(seq int64) {
	kept := q.blocks[:0]
	for _, b := range q.blocks {
		if b.seq >= seq {
			delete(q.bySeq, b.seq)
			q.resident -= len(b.ops)
			q.releaseBlockOps(b)
		} else {
			kept = append(kept, b)
		}
	}
	for i := len(kept); i < len(q.blocks); i++ {
		q.blocks[i] = nil
	}
	q.blocks = kept
	q.filterKeys(&q.deferred, seq)
	q.filterKeys(&q.certCand, seq)
	q.dirty = true
	q.certDirty = true
}

func (q *Queue) filterKeys(keys *[]Key, fromSeq int64) {
	kept := (*keys)[:0]
	for _, k := range *keys {
		if k.Seq < fromSeq {
			kept = append(kept, k)
		}
	}
	*keys = kept
}

// overlap reports whether [a, a+as) and [b, b+bs) intersect.
func overlap(a uint64, as int, b uint64, bs int) bool {
	return a < b+uint64(bs) && b < a+uint64(as)
}
