package tracing

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// memSink collects emitted events for assertions.
type memSink struct {
	mu     sync.Mutex
	events []obs.Event
}

func (s *memSink) Emit(e obs.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, e)
}

func (s *memSink) byKind(k obs.EventKind) []obs.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []obs.Event
	for _, e := range s.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// fakeClock is a deterministic injected clock advancing a fixed step per
// reading, so request latency is exact.
type fakeClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.step)
	return c.now
}

// TestREDMiddleware pins the full RED contract: per-route counters by
// status class, latency observations, request events carrying the trace
// context, propagation of an incoming traceparent, and minting when absent.
func TestREDMiddleware(t *testing.T) {
	reg := obs.NewRegistry()
	sink := &memSink{}
	clock := &fakeClock{now: time.UnixMilli(1_000_000), step: 10 * time.Millisecond}
	red := NewRED(reg, sink, NewMinter(9), clock.Now, 0)

	var gotCtx Context
	var haveCtx bool
	h := red.Wrap("GET /v1/thing", func(w http.ResponseWriter, r *http.Request) {
		gotCtx, haveCtx = FromContext(r.Context())
		w.WriteHeader(http.StatusOK)
	})
	notFound := red.Wrap("GET /v1/missing", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
	})

	// Request without a traceparent: a context is minted.
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodGet, "/v1/thing", nil))
	if !haveCtx || !gotCtx.Valid() {
		t.Fatalf("handler saw no minted trace context (have=%v ctx=%+v)", haveCtx, gotCtx)
	}
	minted := gotCtx

	// Request with a traceparent: the incoming context propagates as-is.
	inbound := Context{Trace: NewMinter(77).NextTrace(), Span: NewMinter(77).NextSpan()}
	req := httptest.NewRequest(http.MethodGet, "/v1/thing", nil)
	inbound.SetHeader(req.Header)
	h(httptest.NewRecorder(), req)
	if gotCtx != inbound {
		t.Fatalf("inbound traceparent not propagated: got %+v want %+v", gotCtx, inbound)
	}

	// A 404 route lands in a different status class.
	notFound(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/v1/missing", nil))

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`dsre_http_requests_total{route="GET /v1/thing",class="2xx"} 2`,
		`dsre_http_requests_total{route="GET /v1/missing",class="4xx"} 1`,
		`dsre_http_request_seconds_count{route="GET /v1/thing"} 2`,
		`dsre_http_requests_in_flight 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics page missing %q\n%s", want, text)
		}
	}

	logs := sink.byKind(obs.EventHTTPRequest)
	if len(logs) != 3 {
		t.Fatalf("http_request events = %d, want 3", len(logs))
	}
	if logs[0].Trace != minted.Trace.String() || logs[0].Span != minted.Span.String() {
		t.Errorf("first request log trace/span = %s/%s, want the minted context", logs[0].Trace, logs[0].Span)
	}
	if logs[1].Trace != inbound.Trace.String() {
		t.Errorf("second request log trace = %s, want the inbound %s", logs[1].Trace, inbound.Trace)
	}
	for _, e := range logs {
		if e.Route == "" || e.Code == 0 || e.DurationUS <= 0 {
			t.Errorf("request log incomplete: %+v", e)
		}
	}
	// The injected clock steps 10ms per reading, so every request measures
	// exactly one step.
	if logs[0].DurationUS != 10_000 {
		t.Errorf("request duration = %dµs, want 10000 (injected clock)", logs[0].DurationUS)
	}
}

// TestREDSlowRequest pins the slow-request path: past the threshold a
// request increments the slow counter and emits a dedicated event.
func TestREDSlowRequest(t *testing.T) {
	reg := obs.NewRegistry()
	sink := &memSink{}
	clock := &fakeClock{now: time.UnixMilli(0), step: 30 * time.Millisecond}
	red := NewRED(reg, sink, nil, clock.Now, 20*time.Millisecond)

	h := red.Wrap("GET /slow", func(w http.ResponseWriter, r *http.Request) {})
	h(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/slow", nil))

	slow := sink.byKind(obs.EventSlowRequest)
	if len(slow) != 1 {
		t.Fatalf("slow_request events = %d, want 1", len(slow))
	}
	if slow[0].Route != "GET /slow" || slow[0].DurationUS != 30_000 {
		t.Errorf("slow event = %+v", slow[0])
	}
	var buf strings.Builder
	_ = reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), "dsre_http_slow_requests_total 1") {
		t.Error("slow counter not incremented")
	}
}
