package workload

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

func init() {
	register("queue", "perlbmk/gap (ring buffer with head/tail pointers in memory)", buildQueue)
	register("spmv", "ammp/art (CSR sparse matrix-vector gather)", buildSPMV)
	register("sort", "bzip2 (odd-even transposition sort, in-place compare-swap)", buildSort)
}

// Queue memory layout.
const (
	qHeadCell = 0x9000 // consumer index
	qTailCell = 0x9008 // producer index
	qBufSlots = 256    // power of two
)

// buildQueue drives a ring buffer whose head and tail indices live in
// memory: every iteration pushes one element and pops one element, so four
// of its six memory operations are read-modify-writes of the same two
// cells, and popped data was pushed (and forwarded) a few iterations
// earlier.  This is the software-queue pattern interpreters and allocators
// produce, and the richest source of short-distance dependences in the
// suite.  mem[ResultBase] = checksum of popped values.
func buildQueue(p Params) (*Workload, error) {
	p = p.withDefaults(4096, 2).clampUnroll(4)
	iters := roundUp(p.Size, p.Unroll)
	const prefill = 16

	b := program.New("queue")
	loop := b.NewBlock("loop")
	it := loop.Read(rIter2)
	sum := loop.Read(rAcc)
	headp := loop.Const(qHeadCell)
	tailp := loop.Const(qTailCell)
	buf := loop.Read(rBase2)
	mask := loop.Const(qBufSlots - 1)
	three := loop.Const(3)
	one := loop.Const(1)
	for k := 0; k < p.Unroll; k++ {
		// Push: buf[tail & mask] = tail*3 (a value derived from the index),
		// tail++ — both through memory.
		t := loop.Load(tailp, 0)
		slot := loop.Op(isa.OpAdd, buf, loop.Op(isa.OpShl, loop.Op(isa.OpAnd, t, mask), three))
		loop.Store(slot, 0, loop.Op(isa.OpMul, t, three))
		loop.Store(tailp, 0, loop.Op(isa.OpAdd, t, one))
		// Pop: v = buf[head & mask], head++.
		h := loop.Load(headp, 0)
		pslot := loop.Op(isa.OpAdd, buf, loop.Op(isa.OpShl, loop.Op(isa.OpAnd, h, mask), three))
		v := loop.Load(pslot, 0)
		loop.Store(headp, 0, loop.Op(isa.OpAdd, h, one))
		sum = loop.Op(isa.OpAdd, sum, v)
	}
	it2 := loop.Op(isa.OpSub, it, loop.Const(int64(p.Unroll)))
	loop.Write(rIter2, it2)
	loop.Write(rAcc, sum)
	more := loop.Op(isa.OpTgt, it2, loop.Const(0))
	loop.BranchIf(more, "loop", "done")

	done := b.NewBlock("done")
	res := done.Read(rAcc)
	done.Store(done.Const(ResultBase), 0, res)
	done.Halt()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	w := &Workload{Description: fmt.Sprintf("%d push/pop pairs through a %d-slot in-memory ring, unroll %d", iters, qBufSlots, p.Unroll), Params: p, Program: prog, Mem: mem.New()}
	// Pre-fill so pops always find data: head starts at 0, tail at prefill.
	ring := make([]int64, qBufSlots)
	seed := p.Seed
	for i := 0; i < prefill; i++ {
		ring[i] = int64(splitmix64(&seed) % 100000)
		w.Mem.Write(DataBase+uint64(8*i), ring[i], 8)
	}
	w.Mem.Write(qHeadCell, 0, 8)
	w.Mem.Write(qTailCell, prefill, 8)
	w.Regs[rIter2] = int64(iters)
	w.Regs[rBase2] = DataBase

	// Go reference replay.
	head, tail := int64(0), int64(prefill)
	var want int64
	for i := 0; i < iters; i++ {
		ring[tail&(qBufSlots-1)] = tail * 3
		tail++
		want += ring[head&(qBufSlots-1)]
		head++
	}
	w.Check = func(regs *[isa.NumRegs]int64, m *mem.Memory) error {
		if err := checkU64(m, ResultBase, want, "queue checksum"); err != nil {
			return err
		}
		if err := checkU64(m, qHeadCell, head, "queue head"); err != nil {
			return err
		}
		return checkU64(m, qTailCell, tail, "queue tail")
	}
	return w, nil
}

// Registers for the kernels in this file (distinct from other files' consts).
const (
	rIter2 = 1
	rBase2 = 6
	// spmv
	rRow   = 1
	rAcc2  = 2
	rNnzP  = 3
	rColP  = 4
	rValP  = 5
	rXBase = 6
	rYBase = 7
	rNRows = 8
	// sort
	rPass = 2
	rABase = 6
)

// buildSPMV computes y = A·x for a CSR sparse matrix with a fixed number of
// non-zeros per row: indirect gathers of x through the column-index array.
// No store→load aliasing — a pure memory-level-parallelism kernel where all
// speculation schemes should tie and conservative loses badly.
// Size is the number of rows.
func buildSPMV(p Params) (*Workload, error) {
	p = p.withDefaults(1024, 4).clampUnroll(6)
	const nnzPerRow = 8
	rows := p.Size
	cols := nextPow2(rows)

	// The row loop processes nnzPerRow entries per block iteration; with
	// unroll u the inner loop is u gathers.  nnzPerRow must divide evenly.
	u := p.Unroll
	for nnzPerRow%u != 0 {
		u--
	}
	p.Unroll = u

	b := program.New("spmv")

	inner := b.NewBlock("inner")
	{
		acc := inner.Read(rAcc2)
		cp := inner.Read(rColP)
		vp := inner.Read(rValP)
		xb := inner.Read(rXBase)
		three := inner.Const(3)
		for k := 0; k < u; k++ {
			col := inner.Load(cp, int64(8*k))
			xv := inner.Load(inner.Op(isa.OpAdd, xb, inner.Op(isa.OpShl, col, three)), 0)
			av := inner.Load(vp, int64(8*k))
			acc = inner.Op(isa.OpAdd, acc, inner.Op(isa.OpMul, av, xv))
		}
		step := inner.Const(int64(8 * u))
		cp2 := inner.Op(isa.OpAdd, cp, step)
		vp2 := inner.Op(isa.OpAdd, vp, step)
		nnz := inner.Read(rNnzP) // remaining nnz in this row
		nnz2 := inner.Op(isa.OpSub, nnz, inner.Const(int64(u)))
		inner.Write(rColP, cp2)
		inner.Write(rValP, vp2)
		inner.Write(rAcc2, acc)
		inner.Write(rNnzP, nnz2)
		more := inner.Op(isa.OpTgt, nnz2, inner.Const(0))
		inner.BranchIf(more, "inner", "rownext")
	}

	rn := b.NewBlock("rownext")
	{
		row := rn.Read(rRow)
		acc := rn.Read(rAcc2)
		yb := rn.Read(rYBase)
		n := rn.Read(rNRows)
		three := rn.Const(3)
		rn.Store(rn.Op(isa.OpAdd, yb, rn.Op(isa.OpShl, row, three)), 0, acc)
		row2 := rn.Op(isa.OpAdd, row, rn.Const(1))
		rn.Write(rRow, row2)
		rn.Write(rAcc2, rn.Const(0))
		rn.Write(rNnzP, rn.Const(nnzPerRow))
		more := rn.Op(isa.OpTlt, row2, n)
		rn.BranchIf(more, "inner", "@halt")
	}

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	w := &Workload{Description: fmt.Sprintf("%d-row CSR SpMV, %d nnz/row, inner unroll %d", rows, nnzPerRow, u), Params: p, Program: prog, Mem: mem.New()}
	seed := p.Seed
	x := make([]int64, cols)
	for i := range x {
		x[i] = int64(splitmix64(&seed) % 1000)
		w.Mem.Write(DataBase+uint64(8*i), x[i], 8) // x vector
	}
	want := make([]int64, rows)
	for r := 0; r < rows; r++ {
		for j := 0; j < nnzPerRow; j++ {
			idx := r*nnzPerRow + j
			col := int64(splitmix64(&seed) % uint64(cols))
			val := int64(splitmix64(&seed) % 100)
			w.Mem.Write(DataBase2+uint64(8*idx), col, 8) // column indices
			w.Mem.Write(DataBase3+uint64(8*idx), val, 8) // values
			want[r] += val * x[col]
		}
	}
	const yBase = 0xC00000
	w.Regs[rRow] = 0
	w.Regs[rNnzP] = nnzPerRow
	w.Regs[rColP] = DataBase2
	w.Regs[rValP] = DataBase3
	w.Regs[rXBase] = DataBase
	w.Regs[rYBase] = yBase
	w.Regs[rNRows] = int64(rows)
	w.Check = func(regs *[isa.NumRegs]int64, m *mem.Memory) error {
		for r := 0; r < rows; r++ {
			if err := checkU64(m, yBase+uint64(8*r), want[r], fmt.Sprintf("spmv y[%d]", r)); err != nil {
				return err
			}
		}
		return nil
	}
	return w, nil
}

// buildSort runs odd-even transposition sort over a small array: each pass
// compare-and-swaps adjacent pairs in place using selects, so consecutive
// passes' loads alias the previous pass's stores at unit distance — dense,
// fully predictable conflicts (the store-set-friendly regime).
// Size is the element count (kept small; the algorithm is O(n²)).
func buildSort(p Params) (*Workload, error) {
	p = p.withDefaults(96, 4).clampUnroll(6)
	n := p.Size
	if n < 4 {
		n = 4
	}
	if n&1 == 1 {
		n++
	}
	passes := n

	b := program.New("sort")

	// Two blocks: even pass (pairs 0-1, 2-3, ...) and odd pass (1-2, 3-4, ...).
	// Each block walks its pairs with an in-register pointer, unrolled.
	for bi, name := range []string{"even", "odd"} {
		blk := b.NewBlock(name)
		ptr := blk.Read(rPtr)
		pass := blk.Read(rPass)
		base := blk.Read(rABase)
		for k := 0; k < p.Unroll; k++ {
			off := int64(16 * k)
			a := blk.Load(ptr, off)
			c := blk.Load(ptr, off+8)
			swap := blk.Op(isa.OpTgt, a, c)
			lo := blk.Select(swap, c, a)
			hi := blk.Select(swap, a, c)
			blk.Store(ptr, off, lo)
			blk.Store(ptr, off+8, hi)
		}
		ptr2 := blk.Op(isa.OpAdd, ptr, blk.Const(int64(16*p.Unroll)))
		blk.Write(rPtr, ptr2)
		// End of this pass?  The even pass covers n/2 pairs, the odd n/2-1.
		pairs := n / 2
		other := "odd"
		otherStart := int64(8) // odd pass starts at element 1
		if bi == 1 {
			pairs = n/2 - 1
			other = "even"
			otherStart = 0
		}
		endOff := blk.Op(isa.OpAdd, base, blk.Const(otherStartless(bi)+int64(16*pairs)))
		morePairs := blk.Op(isa.OpTltu, ptr2, endOff)

		// Pass accounting happens in a separate epilogue block to keep this
		// one simple: branch back for more pairs, else to the epilogue.
		blk.Write(rPass, pass) // carried through
		blk.Write(rABase, base)
		blk.BranchIf(morePairs, name, name+"done")
		_ = other
		_ = otherStart
	}

	for bi, name := range []string{"evendone", "odddone"} {
		blk := b.NewBlock(name)
		pass := blk.Read(rPass)
		base := blk.Read(rABase)
		pass2 := blk.Op(isa.OpSub, pass, blk.Const(1))
		blk.Write(rPass, pass2)
		blk.Write(rABase, base)
		next := "odd"
		nextStart := int64(8)
		if bi == 1 {
			next = "even"
			nextStart = 0
		}
		blk.Write(rPtr, blk.Op(isa.OpAdd, base, blk.Const(nextStart)))
		more := blk.Op(isa.OpTgt, pass2, blk.Const(0))
		blk.BranchIf(more, next, "@halt")
	}

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	w := &Workload{Description: fmt.Sprintf("odd-even transposition sort of %d elements (%d passes), unroll %d", n, passes, p.Unroll), Params: p, Program: prog, Mem: mem.New()}
	seed := p.Seed
	ref := make([]int64, n)
	for i := range ref {
		ref[i] = int64(splitmix64(&seed) % 100000)
		w.Mem.Write(DataBase+uint64(8*i), ref[i], 8)
	}
	w.Regs[rPass] = int64(passes)
	w.Regs[rABase] = DataBase
	w.Regs[rPtr] = DataBase

	// Replay the exact pass structure (the kernel may not fully sort if the
	// pair count is not a multiple of the unroll; mirror its behaviour).
	evenPairs := roundUp(n/2, p.Unroll)
	oddPairs := roundUp(n/2-1, p.Unroll)
	at := func(i int) int64 {
		if i < len(ref) {
			return ref[i]
		}
		return 0
	}
	set := func(i int, v int64) {
		if i < len(ref) {
			ref[i] = v
		}
	}
	overflow := make(map[int]int64) // cells past the array the kernel touches
	get := func(i int) int64 {
		if i < n {
			return at(i)
		}
		return overflow[i]
	}
	put := func(i int, v int64) {
		if i < n {
			set(i, v)
		} else {
			overflow[i] = v
		}
	}
	for pass := passes; pass > 0; pass-- {
		start, pairs := 0, evenPairs
		if (passes-pass)%2 == 1 {
			start, pairs = 1, oddPairs
		}
		for pr := 0; pr < pairs; pr++ {
			i := start + 2*pr
			a, c := get(i), get(i+1)
			if a > c {
				put(i, c)
				put(i+1, a)
			}
		}
	}
	w.Check = func(regs *[isa.NumRegs]int64, m *mem.Memory) error {
		for i := 0; i < n; i++ {
			if err := checkU64(m, DataBase+uint64(8*i), ref[i], fmt.Sprintf("sort[%d]", i)); err != nil {
				return err
			}
		}
		return nil
	}
	return w, nil
}

// otherStartless returns the starting byte offset of the pass bi runs.
func otherStartless(bi int) int64 {
	if bi == 1 {
		return 8
	}
	return 0
}
