package telemetry

import "m/internal/sim"

// Report carries the simulator counters wholesale.
type Report struct {
	Schema string    `json:"schema"`
	Stats  sim.Stats `json:"stats"`
}
