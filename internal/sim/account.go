package sim

import (
	"fmt"
	"os"

	"repro/internal/account"
	"repro/internal/isa"
)

// acctState is the machine's cycle-accounting and forensics state; nil when
// accounting is disabled, so the hot path pays one nil check.
type acctState struct {
	stack     account.CPIStack
	flight    *account.FlightRecorder
	forensics *account.Forensics

	startCycle int64

	// waveUntil extends BucketWave over a violation's repair latency, so
	// the dead cycles between detection and the corrected broadcast are
	// charged to the violation, not to whatever the machine happens to be
	// idle on.
	waveUntil int64
	// After a squash the fetch-starved refill cycles are the squash's
	// fault: refill names the bucket (BucketWave or BucketBPred) charged
	// while the window refills; refillActive clears at the next commit.
	refill       account.Bucket
	refillActive bool

	prev acctCounters
}

// acctCounters snapshots the event counters attribution diffs each cycle.
type acctCounters struct {
	committed      int64
	violations     int64
	flushes        int64
	corrections    int64
	vpCorrections  int64
	branchSquashes int64
	reexecs        int64
}

func (mc *Machine) acctCounters() acctCounters {
	return acctCounters{
		committed:      mc.committed,
		violations:     mc.q.Stats.Violations,
		flushes:        mc.stats.Flushes,
		corrections:    mc.stats.DSRECorrections,
		vpCorrections:  mc.stats.VPCorrections,
		branchSquashes: mc.stats.BranchSquashes,
		reexecs:        mc.stats.Reexecs,
	}
}

// EnableAccounting turns on per-cycle CPI accounting, violation forensics
// and the flight recorder for the rest of the run.  Cost is a few counter
// compares per cycle (see BenchmarkMachineAccounting); disabled it is a
// single nil check.
func (mc *Machine) EnableAccounting() {
	mc.acct = &acctState{
		flight:     account.NewFlightRecorder(account.DefaultFlightDepth),
		forensics:  account.NewForensics(),
		startCycle: mc.cycle,
		waveUntil:  -1,
	}
	mc.acct.prev = mc.acctCounters()
}

// AccountingEnabled reports whether EnableAccounting was called.
func (mc *Machine) AccountingEnabled() bool { return mc.acct != nil }

// FlightDump renders the flight-recorder ring ("" when accounting is off).
func (mc *Machine) FlightDump() string {
	if mc.acct == nil {
		return ""
	}
	return mc.acct.flight.Dump()
}

// accountCycle charges the just-finished cycle's commit-slot budget to
// exactly one bucket and snapshots the machine into the flight recorder.
// Runs after stepCommit, before the cycle counter advances.
func (mc *Machine) accountCycle() {
	a := mc.acct
	cur := mc.acctCounters()
	b := mc.attributeCycle(a, cur, a.prev)
	a.prev = cur
	a.stack.Add(b, account.SlotsPerCycle)
	a.flight.Record(account.Snapshot{
		Cycle:      mc.cycle,
		Attributed: b,
		Window:     len(mc.window),
		LSQ:        mc.q.Occupancy(),
		NoC:        mc.net.Pending(),
		Committed:  mc.committed,
		FetchBusy:  mc.fetch.active,
	})
}

// attributeCycle picks the bucket, in the priority order pinned by
// DESIGN.md "Cycle accounting": commit > wave > bpred > fetch (with squash
// shadows) > drain > cache miss > issue > noc.  Every input is read-only:
// attribution must never perturb the simulated numbers.
func (mc *Machine) attributeCycle(a *acctState, cur, prev acctCounters) account.Bucket {
	violated := cur.violations > prev.violations || cur.flushes > prev.flushes ||
		cur.corrections > prev.corrections || cur.vpCorrections > prev.vpCorrections
	if violated {
		if until := mc.cycle + int64(mc.cfg.ViolationLatency); until > a.waveUntil {
			a.waveUntil = until
		}
		if cur.flushes > prev.flushes {
			a.refill, a.refillActive = account.BucketWave, true
		}
	}
	if cur.branchSquashes > prev.branchSquashes {
		a.refill, a.refillActive = account.BucketBPred, true
	}
	if cur.committed > prev.committed {
		a.refillActive = false
		return account.BucketCommit
	}
	if violated || mc.cycle <= a.waveUntil || cur.reexecs > prev.reexecs {
		return account.BucketWave
	}
	if cur.branchSquashes > prev.branchSquashes {
		return account.BucketBPred
	}
	if len(mc.window) == 0 {
		if a.refillActive {
			return a.refill
		}
		return account.BucketFetch
	}
	// Fetch has stopped because the in-flight path ends at the halt target:
	// the remaining cycles are program wind-down, not a stall.
	if !mc.fetch.active {
		y := mc.window[len(mc.window)-1]
		if y.branch.Present && int(y.branch.Value) == isa.HaltTarget {
			return account.BucketDrain
		}
	}
	if mc.hier.OutstandingData(mc.cycle) > 0 {
		return account.BucketCacheMiss
	}
	for i := range mc.tiles {
		if mc.tiles[i].hasIssueWork() || len(mc.tiles[i].busy) > 0 {
			return account.BucketIssue
		}
	}
	return account.BucketNoC
}

// squashEquivCost is what a flush recovery at fromSeq would discard right
// now: every execution already fired in blocks at or younger than fromSeq.
// DSRE forensics records it per violation so the wave-vs-flush trade is
// measurable per static load.
func (mc *Machine) squashEquivCost(fromSeq int64) int64 {
	var n int64
	for _, b := range mc.window {
		if b.seq < fromSeq {
			continue
		}
		for i := range b.insts {
			n += b.insts[i].fired
		}
	}
	return n
}

// failAssert is assertFailf plus the flight recorder: the last recorded
// cycles go to stderr before the panic, so an invariant failure arrives
// with the machine's recent history attached.
func (mc *Machine) failAssert(format string, args ...any) {
	if mc.acct != nil {
		fmt.Fprint(os.Stderr, mc.acct.flight.Dump())
	}
	assertFailf(format, args...)
}
