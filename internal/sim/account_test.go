package sim

import (
	"strings"
	"testing"

	"repro/internal/account"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/workload"
)

// runAccounted runs a workload with cycle accounting enabled and returns
// the result.
func runAccounted(t *testing.T, kernel string, size int, rec core.RecoveryScheme) *Result {
	t.Helper()
	w := workload.MustBuild(kernel, workload.Params{Size: size})
	cfg := DefaultConfig()
	cfg.Policy = core.IssueAggressive
	cfg.Recovery = rec
	mc, err := New(cfg, w.Program, &w.Regs, w.Mem, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	mc.EnableAccounting()
	r, err := mc.Run()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestAccountingConservation checks the CPI-stack invariant directly on the
// machine: every simulated cycle lands in exactly one bucket, so the
// buckets sum to Cycles × SlotsPerCycle, and the forensic event log agrees
// with the machine's own recovery counters.
func TestAccountingConservation(t *testing.T) {
	for _, rec := range []core.RecoveryScheme{core.RecoverFlush, core.RecoverDSRE} {
		t.Run(rec.String(), func(t *testing.T) {
			r := runAccounted(t, "histogram", 256, rec)
			s := &r.Stats
			if got, want := s.Acct.Total(), s.Cycles*account.SlotsPerCycle; got != want {
				t.Fatalf("CPI buckets sum to %d, want %d (cycles %d)", got, want, s.Cycles)
			}
			if s.Acct.Commit == 0 {
				t.Error("commit bucket empty on a completing run")
			}
			f := &s.Forensics
			if got := f.FlushEvents + f.WaveEvents; got != s.LSQ.Violations {
				t.Errorf("flush+wave events = %d, LSQ violations = %d", got, s.LSQ.Violations)
			}
			if f.VPEvents != s.VPCorrections {
				t.Errorf("VP events = %d, VP corrections = %d", f.VPEvents, s.VPCorrections)
			}
			if got := f.WaveReexecs + f.UnattributedReexecs; got != s.Reexecs {
				t.Errorf("attributed %d + unattributed %d reexecs, stats %d",
					f.WaveReexecs, f.UnattributedReexecs, s.Reexecs)
			}
			if s.LSQ.Violations > 0 && len(f.Loads) == 0 {
				t.Error("violations occurred but no per-PC load profiles")
			}
		})
	}
}

// TestAccountingDisabledZero pins the zero-cost-when-off contract: a run
// without EnableAccounting must leave the accounting stats untouched.
func TestAccountingDisabledZero(t *testing.T) {
	w := workload.MustBuild("vecsum", workload.Params{Size: 64})
	cfg := DefaultConfig()
	cfg.Policy = core.IssueAggressive
	cfg.Recovery = core.RecoverDSRE
	mc, err := New(cfg, w.Program, &w.Regs, w.Mem, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mc.AccountingEnabled() {
		t.Fatal("accounting enabled by default")
	}
	r, err := mc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if tot := r.Stats.Acct.Total(); tot != 0 {
		t.Errorf("disabled accounting produced %d bucket slots", tot)
	}
	if r.Stats.Forensics.Events != 0 {
		t.Errorf("disabled accounting recorded %d forensic events", r.Stats.Forensics.Events)
	}
}

// TestAccountingMatchesEmulator ties the commit bucket to ground truth:
// with SlotsPerCycle == 1 and one block commit per cycle, the commit bucket
// equals the number of committed blocks, which the emulator pins.
func TestAccountingMatchesEmulator(t *testing.T) {
	w := workload.MustBuild("vecsum", workload.Params{Size: 128})
	er, err := emu.Run(w.Program, &w.Regs, w.Mem, emu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild: emu.Run consumed the register/memory state.
	w = workload.MustBuild("vecsum", workload.Params{Size: 128})
	cfg := DefaultConfig()
	cfg.Policy = core.IssueAggressive
	cfg.Recovery = core.RecoverDSRE
	mc, err := New(cfg, w.Program, &w.Regs, w.Mem, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	mc.EnableAccounting()
	r, err := mc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Acct.Commit != er.Blocks {
		t.Errorf("commit bucket = %d, emulator committed %d blocks",
			r.Stats.Acct.Commit, er.Blocks)
	}
}

// TestDeadlockDumpCarriesForensics forces a protocol "deadlock" with an
// absurdly small commit timeout and checks the diagnostic dump carries the
// flight-recorder ring, the partial CPI stack, and a flushed telemetry
// window — the three artifacts a post-mortem needs.
func TestDeadlockDumpCarriesForensics(t *testing.T) {
	w := workload.MustBuild("histogram", workload.Params{Size: 64})
	cfg := DefaultConfig()
	cfg.Policy = core.IssueAggressive
	cfg.Recovery = core.RecoverDSRE
	// The first block needs fetch + execution round trips, so no commit can
	// happen this early: the watchdog must fire.
	cfg.DeadlockCycles = 8
	mc, err := New(cfg, w.Program, &w.Regs, w.Mem, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	mc.EnableAccounting()
	sink := &discardSink{}
	mc.SetSampler(1000, sink)
	_, err = mc.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	msg := err.Error()
	for _, want := range []string{
		"protocol deadlock",
		"cycle accounting:",
		"flight recorder (last",
		"telemetry last window:",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("deadlock dump missing %q:\n%s", want, msg)
		}
	}
	if sink.n == 0 {
		t.Error("deadlock dump did not flush the partial telemetry window")
	}
}

// BenchmarkMachineAccounting measures the accounting hot path against the
// plain machine: "off" is the disabled path (one nil check per cycle), "on"
// attributes every cycle and feeds the flight recorder.  DESIGN.md records
// the budget (≤3% regression when on).
func BenchmarkMachineAccounting(b *testing.B) {
	w := workload.MustBuild("histogram", workload.Params{Size: 1024})
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig()
				cfg.Policy = core.IssueAggressive
				cfg.Recovery = core.RecoverDSRE
				mc, err := New(cfg, w.Program, &w.Regs, w.Mem, nil, nil)
				if err != nil {
					b.Fatal(err)
				}
				if on {
					mc.EnableAccounting()
				}
				if _, err := mc.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
