package sim

import (
	"repro/internal/account"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/lsq"
	"repro/internal/trace"
)

// commitSrc returns the network source for a commit-only token: the real
// producer node normally, or -1 (deliver locally at the destination,
// consuming no network bandwidth) under the CommitTokensFree ablation.
func (mc *Machine) commitSrc(src int) int {
	if mc.cfg.CommitTokensFree {
		return -1
	}
	return src
}

// deliver is the network's delivery callback: every message arriving at its
// destination's local port dispatches here.
func (mc *Machine) deliver(now int64, node int, m message) {
	switch m.kind {
	case msgOperand:
		mc.handleOperand(m)
	case msgWrite:
		mc.handleWrite(m)
	case msgBranch:
		mc.handleBranch(m)
	case msgLoadReq:
		mc.handleLoadReq(m)
	case msgStoreReq:
		mc.handleStoreReq(m)
	case msgStoreNull:
		mc.handleStoreNull(m)
	}
}

// handleOperand applies a data or commit message to an operand slot.
func (mc *Machine) handleOperand(m message) {
	b := mc.live(&m)
	if b == nil {
		mc.stats.StaleMsgs++
		return
	}
	st := &b.insts[m.idx]
	slot := b.slot(int(m.idx), isa.Slot(m.slot))
	var reexec bool
	if m.committed {
		if assertsEnabled && slot.Committed && slot.Value != m.value {
			mc.failAssert("operand slot double-commit with diverging values: seq %d inst %d slot %d holds %d, token carries %d",
				m.seq, m.idx, m.slot, slot.Value, m.value)
		}
		reexec = slot.DeliverCommit(m.value)
	} else {
		reexec = slot.Deliver(m.value, m.tag, mc.cfg.SuppressIdenticalValues)
	}
	if reexec {
		b.need.Set(int(m.idx))
		st.committedSent = false
		mc.enqueueReady(b, int(m.idx))
	}
	if isa.Slot(m.slot) == isa.SlotP {
		mc.maybeNullify(b, int(m.idx))
	}
	if m.committed && !reexec {
		mc.maybeEmitCommitOnly(b, int(m.idx))
		mc.maybeEmitStorePartial(b, int(m.idx))
	}
}

// handleWrite applies a value to a register write slot and relays it to
// every younger in-flight block whose matching read is bound here.
func (mc *Machine) handleWrite(m message) {
	b := mc.live(&m)
	if b == nil {
		mc.stats.StaleMsgs++
		return
	}
	ws := &b.writes[m.idx]
	reg := b.bdef.Writes[m.idx].Reg
	var changed bool
	if m.committed {
		if assertsEnabled && ws.slot.Committed && ws.slot.Value != m.value {
			mc.failAssert("register write slot double-commit with diverging values: seq %d write %d reg %d holds %d, token carries %d",
				m.seq, m.idx, reg, ws.slot.Value, m.value)
		}
		changed = ws.slot.DeliverCommit(m.value)
		if !ws.counted {
			ws.counted = true
			b.writesCommitted++
		}
	} else {
		changed = ws.slot.Deliver(m.value, m.tag, mc.cfg.SuppressIdenticalValues)
	}
	if !changed && !m.committed {
		return
	}
	// Push to younger bound readers.  Pure commit relays may use the free
	// path under the ablation; value changes are real operand traffic.
	src := mc.regNode(reg)
	if m.committed && !changed {
		src = mc.commitSrc(src)
	}
	for _, y := range mc.window {
		if y.seq <= b.seq {
			continue
		}
		r, ok := y.regRead[reg]
		if !ok || y.readBind[r] != b.seq {
			continue
		}
		mc.pushRead(y, r, ws.slot.Value, ws.slot.Tag, ws.slot.Committed, 0, src)
	}
}

// handleBranch applies a branch outcome to the block's control slot and
// validates the fetched successor against it.
func (mc *Machine) handleBranch(m message) {
	b := mc.live(&m)
	if b == nil {
		mc.stats.StaleMsgs++
		return
	}
	var changed bool
	if m.committed {
		changed = b.branch.DeliverCommit(m.value)
		b.branchCounted = true
	} else {
		changed = b.branch.Deliver(m.value, m.tag, mc.cfg.SuppressIdenticalValues)
	}
	if changed || m.committed {
		mc.checkSuccessor(b)
	}
}

// checkSuccessor squashes the fetched successor path when it disagrees with
// the block's (current) branch outcome.
func (mc *Machine) checkSuccessor(b *blockInst) {
	want := int(b.branch.Value)
	if next := mc.blockAt(b.seq + 1); next != nil {
		if next.blockID != want {
			mc.stats.BranchSquashes++
			mc.squashFrom(b.seq+1, want)
		}
		return
	}
	if mc.fetch.active && mc.fetch.seq == b.seq+1 && mc.fetch.blockID != want {
		mc.stats.BranchSquashes++
		mc.fetch.active = false
		mc.resumeIfEmpty(want)
	}
}

// resumeIfEmpty records where fetch should resume when the window has no
// youngest block to consult.
func (mc *Machine) resumeIfEmpty(blockID int) {
	mc.resumeID = blockID
}

// handleLoadReq processes a load address arriving at the LSQ.
func (mc *Machine) handleLoadReq(m message) {
	b := mc.live(&m)
	if b == nil {
		mc.stats.StaleMsgs++
		return
	}
	key := lsq.Key{Seq: m.seq, LSID: m.lsid}
	res := mc.q.LoadTry(mc.cycle, key, m.addr, m.tag)
	if m.committed {
		mc.q.LoadInputsCommitted(key)
	}
	if !res.Deferred {
		mc.emitLoadResult(b, int(m.idx), m.addr, res)
	}
}

// emitLoadResult broadcasts a load's reply.  Under value prediction the
// predictor trains on the actual value, and a reply disagreeing with the
// map-time prediction is promoted to a fresh DSRE wave so it overrides the
// predicted value at every consumer.
func (mc *Machine) emitLoadResult(b *blockInst, idx int, addr uint64, res lsq.LoadResult) {
	tag := res.Tag
	if mc.vp != nil {
		st := &b.insts[idx]
		if !st.vpTrained {
			st.vpTrained = true
			mc.vp.Train(res.PC, res.Value)
		}
		if st.vpValid {
			if st.vpValue != res.Value && tag == 0 {
				tag = mc.tags.Next()
				mc.wave.WaveStarted(tag)
				mc.stats.VPCorrections++
				if mc.acct != nil {
					in := &b.bdef.Insts[idx]
					mc.acct.forensics.Record(account.EventVP, b.seq, int(in.LSID),
						res.PC, 0, tag, 0, 0)
				}
			} else if st.vpValue == res.Value {
				mc.stats.VPHits++
			}
			st.vpValid = false
		}
	}
	mc.broadcastLoadReply(b, idx, addr, res.Value, tag, res.Latency, false)
}

// handleStoreReq processes a store execution (or re-execution) at the LSQ.
func (mc *Machine) handleStoreReq(m message) {
	b := mc.live(&m)
	if b == nil {
		mc.stats.StaleMsgs++
		return
	}
	key := lsq.Key{Seq: m.seq, LSID: m.lsid}
	vs := mc.q.StoreUpdate(key, m.addr, m.value, m.tag, m.addrCom, m.dataCom)
	if m.committed {
		mc.q.StoreCommitted(key)
		st := &b.insts[m.idx]
		if !st.storeCommitCounted {
			st.storeCommitCounted = true
			b.storesCommitted++
		}
	}
	mc.handleViolations(vs)
}

// handleStoreNull processes a nullified predicated store at the LSQ.
func (mc *Machine) handleStoreNull(m message) {
	b := mc.live(&m)
	if b == nil {
		mc.stats.StaleMsgs++
		return
	}
	key := lsq.Key{Seq: m.seq, LSID: m.lsid}
	vs := mc.q.StoreNullify(key)
	if m.committed {
		mc.q.StoreCommitted(key)
		st := &b.insts[m.idx]
		if !st.storeCommitCounted {
			st.storeCommitCounted = true
			b.storesCommitted++
		}
	}
	mc.handleViolations(vs)
}

// broadcastLoadReply delivers a load's value from the LSQ tile directly to
// the load's dataflow consumers (TRIPS-style D-tile delivery).  lat models
// the forwarding/cache latency before network injection.
func (mc *Machine) broadcastLoadReply(b *blockInst, idx int, addr uint64, v int64, tag core.Tag, lat int, committed bool) {
	in := &b.bdef.Insts[idx]
	src := mc.memNode(addr)
	if committed {
		src = mc.commitSrc(src)
	}
	for _, t := range in.Targets {
		mc.routeTarget(b, t, v, tag, committed, src, lat)
	}
}

// handleViolations applies the configured recovery to a batch of load-store
// ordering violations reported by the LSQ.
func (mc *Machine) handleViolations(vs []lsq.Violation) {
	if len(vs) == 0 {
		return
	}
	switch mc.cfg.Recovery {
	case core.RecoverFlush:
		// Squash from the oldest violated load's block and refetch it.
		min := vs[0].Load
		for _, v := range vs[1:] {
			if v.Load.Less(min) {
				min = v.Load
			}
		}
		b := mc.blockAt(min.Seq)
		if b == nil {
			mc.fail("sim: violation for unknown block %d", min.Seq)
			return
		}
		for _, v := range vs {
			mc.q.GuardLoad(v.Load)
		}
		mc.stats.Flushes++
		if mc.acct != nil {
			// Audit every violation; the squash's real cost lands on the
			// oldest (the one the flush restarts from), the rest ride along.
			cost := mc.squashEquivCost(min.Seq)
			for _, v := range vs {
				c := int64(0)
				if v.Load == min {
					c = cost
				}
				mc.acct.forensics.Record(account.EventFlush, v.Load.Seq, int(v.Load.LSID),
					v.LoadPC, v.StorePC, v.Tag, v.StoreTag, c)
			}
		}
		mc.squashFrom(min.Seq, b.blockID)
	case core.RecoverDSRE:
		for _, v := range vs {
			b := mc.blockAt(v.Load.Seq)
			if b == nil {
				mc.fail("sim: violation for unknown block %d", v.Load.Seq)
				return
			}
			mc.wave.WaveStarted(v.Tag)
			idx := mc.memIdx[b.blockID][v.Load.LSID]
			mc.stats.DSRECorrections++
			if mc.acct != nil {
				mc.acct.forensics.Record(account.EventWave, v.Load.Seq, int(v.Load.LSID),
					v.LoadPC, v.StorePC, v.Tag, v.StoreTag, mc.squashEquivCost(v.Load.Seq))
			}
			if mc.tracer != nil {
				mc.tracer.Record(mc.cycle, trace.KindCorrection, v.Load.Seq, idx, uint64(v.Tag))
			}
			// The corrected value re-enters the dataflow graph as a new
			// speculative wave after the violation-detection latency.
			mc.broadcastLoadReply(b, idx, v.Addr, v.Value, v.Tag, mc.cfg.ViolationLatency, false)
		}
	}
}
