package lsq

import (
	"repro/internal/core"
	"repro/internal/predictor"
)

// StoreUpdate records a store execution (or re-execution under DSRE: the
// same store arriving again with a possibly different address or data) and
// returns the violations it exposes: younger issued loads whose
// reconstructed value changed.  tag is the wave tag the store executed
// under (zero when un-speculative); violations it exposes carry it as
// StoreTag so forensics can chain wave depths.
func (q *Queue) StoreUpdate(k Key, addr uint64, data int64, tag core.Tag, addrCom, dataCom bool) []Violation {
	s, op := q.opSlot(k)
	if s < 0 || !q.stores[s].Test(op) {
		return nil // stale message for a squashed block
	}
	f := s*opStride + op
	first := !q.exec[s].Test(op)
	oldAddr, oldSize := q.addr[f], int(q.size[f])
	wasLive := q.exec[s].Test(op) && !q.null[s].Test(op)
	q.exec[s].Set(op)
	q.null[s].Clear(op)
	q.addr[f] = addr
	q.data[f] = data
	q.tag[f] = tag
	if addrCom {
		q.addrCom[s].Set(op)
	}
	if dataCom {
		q.dataCom[s].Set(op)
	}
	if q.addrCom[s].Test(op) && q.dataCom[s].Test(op) {
		q.markStoreCommitted(s, op)
	}
	if first {
		q.Stats.Stores++
		if q.ss != nil {
			q.ss.StoreDone(q.pc[f], predictor.DynRef{Seq: k.Seq, LSID: k.LSID})
		}
	}
	q.dirty = true
	q.certDirty = true

	// Affected range: where the store's bytes used to land plus where they
	// land now.
	size := int(q.size[f])
	var vs []Violation
	vs = q.recheckLoads(k, addr, size, vs)
	if wasLive && (oldAddr != addr || oldSize != size) {
		vs = q.recheckLoads(k, oldAddr, oldSize, vs)
	}
	if len(vs) == 0 && !first {
		q.Stats.SilentStoreHits++
	}
	return vs
}

// StoreNullify records that a predicated store resolved to not execute.
// Loads that had forwarded from a previous (mis-speculated) execution of
// this store must be re-checked.
func (q *Queue) StoreNullify(k Key) []Violation {
	s, op := q.opSlot(k)
	if s < 0 || !q.stores[s].Test(op) {
		return nil
	}
	f := s*opStride + op
	first := !q.exec[s].Test(op)
	oldAddr, oldSize := q.addr[f], int(q.size[f])
	wasLive := q.exec[s].Test(op) && !q.null[s].Test(op)
	q.exec[s].Set(op)
	q.null[s].Set(op)
	if first {
		q.Stats.Stores++
		if q.ss != nil {
			q.ss.StoreDone(q.pc[f], predictor.DynRef{Seq: k.Seq, LSID: k.LSID})
		}
	}
	q.dirty = true
	q.certDirty = true
	if wasLive {
		return q.recheckLoads(k, oldAddr, oldSize, nil)
	}
	return nil
}

// recheckLoads re-reconstructs every younger issued load overlapping
// [addr, addr+size) and emits violations for those whose value changed.
// Candidate loads per block are one mask expression (issued, not a store,
// younger than the store in its own block); the walk touches only set bits
// in ascending (violation-report) order.
func (q *Queue) recheckLoads(store Key, addr uint64, size int, vs []Violation) []Violation {
	if size == 0 {
		return vs
	}
	ss, sop := q.opSlot(store)
	sf := ss*opStride + sop
	storePC, storeTag := q.pc[sf], q.tag[sf]
	base := q.seqs[q.head]
	start := store.Seq - base
	if start < 0 {
		start = 0
	}
	for l := start; l < int64(q.n); l++ {
		s := (q.head + int(l)) & q.ringMask()
		cands := q.issued[s] &^ q.stores[s]
		if base+l == store.Seq {
			cands = cands.Above(int(store.LSID))
		}
		fb := s * opStride
		for m := cands; !m.Empty(); {
			i := m.Min()
			m.Clear(i)
			f := fb + i
			if !overlap(q.addr[f], int(q.size[f]), addr, size) {
				continue
			}
			lk := Key{Seq: base + l, LSID: int8(i)}
			v, _ := q.reconstruct(lk, q.addr[f], int(q.size[f]))
			if v == q.data[f] {
				continue
			}
			if q.certified[s].Test(i) {
				panic("lsq: certified load " + lk.String() + " violated by store " + store.String() + " (unsound certification)")
			}
			q.data[f] = v
			q.tag[f] = q.tags.Next()
			q.Stats.Violations++
			if q.ss != nil {
				q.ss.Violation(q.pc[f], storePC)
			}
			vs = append(vs, Violation{
				Load:     lk,
				Addr:     q.addr[f],
				Value:    v,
				Tag:      q.tag[f],
				LoadPC:   q.pc[f],
				StorePC:  storePC,
				StoreTag: storeTag,
			})
		}
	}
	return vs
}

// reconstruct assembles the value a load at key sees: for each byte, the
// youngest older live store covering it wins; uncovered bytes come from
// committed memory.  forwarded is the number of bytes supplied by stores.
// The youngest-first walk iterates live-store masks high-bit-first, so
// only executed, non-null stores are ever touched.
func (q *Queue) reconstruct(k Key, addr uint64, size int) (val int64, forwarded int) {
	var bytes [8]byte
	var have [8]bool
	remaining := size

	var base int64
	if q.n > 0 {
		base = q.seqs[q.head]
	}
	top := k.Seq - base
	if top >= int64(q.n) {
		top = int64(q.n) - 1
	}
	// Walk blocks youngest-to-oldest up to the load's block.
	for l := top; l >= 0 && remaining > 0; l-- {
		s := (q.head + int(l)) & q.ringMask()
		live := q.stores[s] & q.exec[s] &^ q.null[s]
		if base+l == k.Seq {
			live = live.Below(int(k.LSID))
		}
		fb := s * opStride
		for m := live; !m.Empty() && remaining > 0; {
			si := m.Max()
			m.Clear(si)
			f := fb + si
			saddr, ssize := q.addr[f], int(q.size[f])
			if !overlap(addr, size, saddr, ssize) {
				continue
			}
			sdata := uint64(q.data[f])
			for i := 0; i < size; i++ {
				if have[i] {
					continue
				}
				ba := addr + uint64(i)
				if ba >= saddr && ba < saddr+uint64(ssize) {
					bytes[i] = byte(sdata >> (8 * (ba - saddr)))
					have[i] = true
					remaining--
				}
			}
		}
	}
	var v uint64
	for i := 0; i < size; i++ {
		bv := bytes[i]
		if !have[i] {
			bv = q.mem.ByteAt(addr + uint64(i))
		}
		v |= uint64(bv) << (8 * i)
	}
	return int64(v), size - remaining
}

// StoreCommitted marks a store's output final (its operand inputs are
// committed and it has executed with them, or it is committed-null).  This
// is the memory leg of the commit wave: younger loads may certify once all
// their older stores are committed.
func (q *Queue) StoreCommitted(k Key) {
	s, op := q.opSlot(k)
	if s < 0 || !q.stores[s].Test(op) {
		return
	}
	q.markStoreCommitted(s, op)
}

func (q *Queue) markStoreCommitted(s, op int) {
	if q.committed[s].Test(op) {
		return
	}
	q.committed[s].Set(op)
	q.addrCom[s].Set(op)
	q.dataCom[s].Set(op)
	q.dirty = true
	q.certDirty = true
}

// Drain applies the oldest block's stores to committed memory in LSID
// order, removes the block's entries, and returns the number of memory
// writes performed (for cache-drain accounting by the caller).  Removal is
// O(1): the block ring's head advances; nothing is copied.
func (q *Queue) Drain(seq int64) int {
	s := q.slot(seq)
	if s < 0 {
		return 0
	}
	if s != q.head {
		panic("lsq: drain of non-oldest block")
	}
	writes := 0
	fb := s * opStride
	for m := q.stores[s]; !m.Empty(); {
		i := m.Min()
		m.Clear(i)
		if q.null[s].Test(i) {
			continue
		}
		k := Key{Seq: seq, LSID: int8(i)}
		if !q.exec[s].Test(i) {
			panic("lsq: drain of unexecuted store " + k.String())
		}
		f := fb + i
		if q.ValidateDrain != nil {
			if err := q.ValidateDrain(k, q.addr[f], q.data[f], int(q.size[f])); err != nil {
				panic(err)
			}
		}
		q.mem.Write(q.addr[f], q.data[f], int(q.size[f]))
		if q.hier != nil {
			q.hier.L1D.Access(q.addr[f], true)
		}
		writes++
	}
	// Map iteration order is irrelevant here: deletes are independent.
	for k := range q.guard {
		if k.Seq <= seq {
			delete(q.guard, k)
		}
	}
	q.resident -= int(q.nops[s])
	q.head = (q.head + 1) & q.ringMask()
	q.n--
	q.dirty = true
	q.certDirty = true
	return writes
}
