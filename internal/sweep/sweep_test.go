package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

func mustHash(t *testing.T, s JobSpec) string {
	t.Helper()
	h, err := s.Hash()
	if err != nil {
		t.Fatalf("hash %+v: %v", s, err)
	}
	return h
}

func TestHashCanonicalisesAliases(t *testing.T) {
	base := JobSpec{Workload: "vecsum"}
	aliases := []JobSpec{
		{Workload: "vecsum", Scheme: "dsre"},
		{Workload: "vecsum", Scheme: "aggressive+dsre"},
		{Workload: "vecsum", Seed: 1},                             // zero seed means 1
		{Workload: "vecsum", DTileBanks: 4},                       // explicit default
		{Workload: "vecsum", Frames: 8, HopLatency: 1},            // more explicit defaults
		{Workload: "vecsum", Placement: "roundrobin"},             // alias of ""
		{Workload: "vecsum", BlockPredictor: "twolevel", Size: 0}, // alias of ""
	}
	want := mustHash(t, base)
	for _, s := range aliases {
		if got := mustHash(t, s); got != want {
			t.Errorf("spec %+v hash %s, want %s (should canonicalise onto the default point)", s, got, want)
		}
	}

	different := []JobSpec{
		{Workload: "vecsum", Scheme: "storeset+flush"},
		{Workload: "vecsum", Frames: 16},
		{Workload: "vecsum", Seed: 2},
		{Workload: "vecsum", Size: 100},
		{Workload: "histogram"},
		{Workload: "vecsum", PerfectBlockPred: true},
		{Workload: "vecsum", SampleEvery: 100},
	}
	seen := map[string]string{want: "default"}
	for _, s := range different {
		h := mustHash(t, s)
		if prev, dup := seen[h]; dup {
			t.Errorf("spec %+v collides with %s", s, prev)
		}
		seen[h] = fmt.Sprintf("%+v", s)
	}
}

func TestHashCoversPerfectPredictorAlias(t *testing.T) {
	a := mustHash(t, JobSpec{Workload: "vecsum", PerfectBlockPred: true})
	b := mustHash(t, JobSpec{Workload: "vecsum", BlockPredictor: "perfect"})
	if a != b {
		t.Errorf("PerfectBlockPred and BlockPredictor=perfect should hash identically: %s vs %s", a, b)
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (JobSpec{}).Validate(); err == nil {
		t.Error("empty spec validated")
	}
	if err := (JobSpec{Workload: "nope"}).Validate(); err == nil {
		t.Error("unknown workload validated")
	}
	if err := (JobSpec{Workload: "vecsum", Scheme: "nope"}).Validate(); err == nil {
		t.Error("unknown scheme validated")
	}
	if err := (JobSpec{Workload: "vecsum", Size: -1}).Validate(); err == nil {
		t.Error("negative size validated")
	}
	err := (JobSpec{Workload: "vecsum", Frames: 1}).Validate()
	var ce *sim.ConfigError
	if !errors.As(err, &ce) {
		t.Errorf("1-frame machine: want *sim.ConfigError, got %v", err)
	}
	if err := (JobSpec{Workload: "vecsum", LSQCapacity: 8}).Validate(); err == nil {
		t.Error("LSQ smaller than one block's memory ops validated (would deadlock)")
	}
	if err := (JobSpec{Workload: "vecsum"}).Validate(); err != nil {
		t.Errorf("default spec rejected: %v", err)
	}
}

func fakeReport(spec JobSpec) *telemetry.Report {
	return &telemetry.Report{
		Schema:   telemetry.ReportSchema,
		Workload: spec.Workload,
		Scheme:   spec.Scheme,
		Cycles:   100,
		Insts:    int64(spec.Frames + 1), // spec-dependent payload
		IPC:      1.0,
	}
}

func TestStoreRoundTrip(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Workload: "vecsum", Frames: 4}
	h := mustHash(t, spec)

	if rec, err := st.Get(h); err != nil || rec != nil {
		t.Fatalf("empty store Get = (%v, %v), want miss", rec, err)
	}
	if err := st.Put(&Record{Hash: h, Spec: spec, Report: fakeReport(spec)}); err != nil {
		t.Fatal(err)
	}
	rec, err := st.Get(h)
	if err != nil || rec == nil {
		t.Fatalf("Get after Put = (%v, %v)", rec, err)
	}
	if rec.Report.Insts != 5 || rec.SimVersion != sim.Version || rec.Spec.Workload != "vecsum" {
		t.Errorf("record corrupted: %+v", rec)
	}
	if n, err := st.Len(); err != nil || n != 1 {
		t.Errorf("Len = (%d, %v), want 1", n, err)
	}

	// First write wins: a second Put must not rewrite the object's bytes.
	before, err := os.ReadFile(st.objectPath(h))
	if err != nil {
		t.Fatal(err)
	}
	alt := fakeReport(spec)
	alt.Cycles = 999999
	if err := st.Put(&Record{Hash: h, Spec: spec, Report: alt}); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(st.objectPath(h))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("Put rewrote an existing content-addressed object")
	}

	// Corruption is a miss, not an error.
	if err := os.WriteFile(st.objectPath(h), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if rec, err := st.Get(h); err != nil || rec != nil {
		t.Errorf("corrupt object Get = (%v, %v), want miss", rec, err)
	}
}

func TestStoreRejectsStaleSimVersion(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Workload: "vecsum"}
	h := mustHash(t, spec)
	if err := st.Put(&Record{Hash: h, Spec: spec, Report: fakeReport(spec)}); err != nil {
		t.Fatal(err)
	}
	// Rewrite the record with a stale version stamp.
	data, err := os.ReadFile(st.objectPath(h))
	if err != nil {
		t.Fatal(err)
	}
	stale := bytes.Replace(data, []byte(sim.Version), []byte("dsre-sim/v0"), 1)
	if bytes.Equal(stale, data) {
		t.Fatal("version stamp not found in record")
	}
	if err := os.WriteFile(st.objectPath(h), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	if rec, err := st.Get(h); err != nil || rec != nil {
		t.Errorf("stale-version record Get = (%v, %v), want miss", rec, err)
	}
}

// countingRunner returns fake reports and counts invocations per hash.
func countingRunner(t *testing.T, calls *sync.Map) Runner {
	return func(ctx context.Context, spec JobSpec) (*telemetry.Report, error) {
		h, err := spec.Hash()
		if err != nil {
			t.Errorf("runner got unhashable spec: %v", err)
			return nil, err
		}
		v, _ := calls.LoadOrStore(h, new(int64))
		atomic.AddInt64(v.(*int64), 1)
		return fakeReport(spec), nil
	}
}

func TestEngineCachesAcrossRuns(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	specs := []JobSpec{
		{Workload: "vecsum", Frames: 2},
		{Workload: "vecsum", Frames: 4},
		{Workload: "histogram", Frames: 2},
	}
	var calls sync.Map
	run := func() *Summary {
		eng := New(Options{Workers: 2, Store: st, Runner: countingRunner(t, &calls)})
		sum, err := eng.Run(context.Background(), specs)
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}

	first := run()
	if first.OK != 3 || first.CacheHits != 0 || first.Failed != 0 {
		t.Fatalf("first run: %+v", first)
	}
	second := run()
	if second.OK != 3 || second.CacheHits != 3 {
		t.Fatalf("second run should be all cache hits: OK=%d hits=%d", second.OK, second.CacheHits)
	}
	calls.Range(func(k, v any) bool {
		if n := atomic.LoadInt64(v.(*int64)); n != 1 {
			t.Errorf("job %v computed %d times, want 1", k, n)
		}
		return true
	})
	// Cached payloads replay exactly: same marshalled report bytes.
	for i := range first.Jobs {
		a, _ := json.Marshal(first.Jobs[i].Report)
		b, _ := json.Marshal(second.Jobs[i].Report)
		if !bytes.Equal(a, b) {
			t.Errorf("job %d: cached payload diverged:\n%s\n%s", i, a, b)
		}
	}
}

func TestEngineDeduplicatesIdenticalPoints(t *testing.T) {
	var calls sync.Map
	eng := New(Options{Workers: 4, Runner: countingRunner(t, &calls)})
	// Three spellings of one point plus one distinct point.
	specs := []JobSpec{
		{Workload: "vecsum"},
		{Workload: "vecsum", Scheme: "dsre"},
		{Workload: "vecsum", Scheme: "aggressive+dsre", Seed: 1},
		{Workload: "vecsum", Scheme: "oracle"},
	}
	sum, err := eng.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.OK != 4 {
		t.Fatalf("OK = %d, want 4 (%s)", sum.OK, sum.FirstError())
	}
	total := int64(0)
	calls.Range(func(k, v any) bool { total += atomic.LoadInt64(v.(*int64)); return true })
	if total != 2 {
		t.Errorf("computed %d unique jobs, want 2 (3 spellings collapse)", total)
	}
	if sum.CacheHits != 2 {
		t.Errorf("cache hits = %d, want 2 duplicate spellings accounted as hits", sum.CacheHits)
	}
}

func TestEnginePanicIsolation(t *testing.T) {
	eng := New(Options{Workers: 2, Runner: func(ctx context.Context, spec JobSpec) (*telemetry.Report, error) {
		if spec.Workload == "histogram" {
			panic("simulated protocol bug")
		}
		return fakeReport(spec), nil
	}})
	specs := []JobSpec{{Workload: "vecsum"}, {Workload: "histogram"}, {Workload: "matmul"}}
	sum, err := eng.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	if sum.OK != 2 || sum.Failed != 1 {
		t.Fatalf("OK=%d Failed=%d, want 2/1", sum.OK, sum.Failed)
	}
	bad := sum.Jobs[1]
	if bad.Status != StatusFailed || !strings.Contains(bad.Error, "simulated protocol bug") {
		t.Errorf("panicking job record: %+v", bad)
	}
	if bad.Spec.Workload != "histogram" {
		t.Errorf("failed record lost its spec: %+v", bad.Spec)
	}
	if _, err := sum.Reports(); err == nil {
		t.Error("Reports() should fail when a job failed")
	}
}

func TestEngineInvalidSpecFailsWithoutRunning(t *testing.T) {
	var calls sync.Map
	eng := New(Options{Runner: countingRunner(t, &calls)})
	sum, err := eng.Run(context.Background(), []JobSpec{
		{Workload: "vecsum"},
		{Workload: "vecsum", Frames: 1}, // rejected by sim.Config.Validate
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.OK != 1 || sum.Failed != 1 {
		t.Fatalf("OK=%d Failed=%d", sum.OK, sum.Failed)
	}
	if !strings.Contains(sum.Jobs[1].Error, "Frames") {
		t.Errorf("invalid spec error: %q", sum.Jobs[1].Error)
	}
}

func TestEngineRetries(t *testing.T) {
	var failedOnce atomic.Bool
	eng := New(Options{Retries: 1, Runner: func(ctx context.Context, spec JobSpec) (*telemetry.Report, error) {
		if failedOnce.CompareAndSwap(false, true) {
			return nil, errors.New("transient failure")
		}
		return fakeReport(spec), nil
	}})
	sum, err := eng.Run(context.Background(), []JobSpec{{Workload: "vecsum"}})
	if err != nil {
		t.Fatal(err)
	}
	if sum.OK != 1 || sum.Jobs[0].Attempts != 2 {
		t.Fatalf("retry: %+v", sum.Jobs[0])
	}
}

func TestEnginePerJobTimeout(t *testing.T) {
	eng := New(Options{Workers: 1, Timeout: 10 * time.Millisecond,
		Runner: func(ctx context.Context, spec JobSpec) (*telemetry.Report, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		}})
	sum, err := eng.Run(context.Background(), []JobSpec{{Workload: "vecsum"}})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 1 || !strings.Contains(sum.Jobs[0].Error, "deadline") {
		t.Fatalf("timeout job: %+v", sum.Jobs[0])
	}
}

func TestEngineSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	eng := New(Options{Workers: 1, Runner: func(ctx context.Context, spec JobSpec) (*telemetry.Report, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	go func() {
		<-started
		cancel()
	}()
	specs := []JobSpec{
		{Workload: "vecsum"}, {Workload: "histogram"}, {Workload: "matmul"},
	}
	sum, err := eng.Run(ctx, specs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	if sum.Failed == 0 {
		t.Error("cancelled sweep recorded no failures")
	}
	for _, j := range sum.Jobs {
		if j.Status == "" {
			t.Errorf("job %s has no recorded status after cancellation", j.Spec.Name())
		}
	}
}

func TestProgressReporter(t *testing.T) {
	var buf bytes.Buffer
	rep := NewReporter(&buf, 2)
	eng := New(Options{Workers: 2, Progress: rep, Runner: func(ctx context.Context, spec JobSpec) (*telemetry.Report, error) {
		if spec.Workload == "matmul" {
			return nil, errors.New("boom")
		}
		return fakeReport(spec), nil
	}})
	_, err := eng.Run(context.Background(), []JobSpec{{Workload: "vecsum"}, {Workload: "matmul"}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"sweep: 2 jobs", "vecsum/dsre", "FAIL", "boom", "1 failed"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	eng := New(Options{Runner: func(ctx context.Context, spec JobSpec) (*telemetry.Report, error) {
		return fakeReport(spec), nil
	}})
	specs := []JobSpec{{Workload: "vecsum", Frames: 4}, {Workload: "histogram"}}
	sum, err := eng.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sweep-manifest.json")
	if err := NewManifest(sum).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.SimVersion != sim.Version || m.Totals.Jobs != 2 || m.Totals.OK != 2 {
		t.Errorf("manifest: %+v", m.Totals)
	}
	got := m.Specs()
	if len(got) != 2 || got[0] != specs[0] || got[1] != specs[1] {
		t.Errorf("manifest specs round-trip: %+v", got)
	}
	// Manifests carry metadata, not payloads.
	data, _ := os.ReadFile(path)
	if strings.Contains(string(data), "\"stats\"") {
		t.Error("manifest contains report payloads")
	}
}

func TestGridExpand(t *testing.T) {
	g := Grid{
		Workloads: []string{"vecsum", "histogram"},
		Schemes:   []string{"dsre", "storeset+flush"},
		Frames:    []int{2, 4, 8},
		Specs:     []JobSpec{{Workload: "matmul", Scheme: "oracle"}},
	}
	specs, err := g.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2*2*3+1 {
		t.Fatalf("expanded %d specs, want 13", len(specs))
	}
	if specs[0] != (JobSpec{Workload: "vecsum", Scheme: "dsre", Frames: 2}) {
		t.Errorf("first spec: %+v", specs[0])
	}
	if specs[12] != (JobSpec{Workload: "matmul", Scheme: "oracle"}) {
		t.Errorf("explicit spec not appended: %+v", specs[12])
	}
	if _, err := (Grid{}).Expand(); err == nil {
		t.Error("empty grid expanded")
	}
}

func TestGridReadRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(path, []byte(`{"workloadz": ["vecsum"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadGrid(path); err == nil {
		t.Error("typoed grid field accepted")
	}
	if err := os.WriteFile(path, []byte(`{"workloads": ["vecsum"], "frames": [2, 4]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := ReadGrid(path)
	if err != nil {
		t.Fatal(err)
	}
	if specs, _ := g.Expand(); len(specs) != 2 {
		t.Errorf("expanded %d specs, want 2", len(specs))
	}
}
