// Package lint is a zero-dependency static-analysis suite for this
// repository, built directly on go/parser and go/types (no golang.org/x/
// tools, so it runs offline).  It enforces the invariants the reproduction
// rests on:
//
//   - determinism: simulator packages must be pure functions of
//     sim.Config + seed — no wall-clock reads, no unseeded math/rand, no
//     goroutines, no order-dependent iteration over maps;
//   - confighash: every sim.Config knob must reach the sweep engine's
//     content-addressed cache key, so a new field can never poison cached
//     results;
//   - statscoverage: every sim.Stats counter must survive into the
//     dsre-report/v1 run report, so measurements can't silently drop;
//   - exhaustive: switches over the protocol's enum sets (message kinds,
//     opcodes, recovery schemes, ...) must cover every declared constant
//     or carry an explicit default.
//
// The suite is exercised by cmd/dsre-lint and pinned by golden tests; a
// self-audit test keeps the shipped tree lint-clean.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"slices"
	"sort"
)

// Diag is one diagnostic, positioned relative to the module root.
type Diag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (d Diag) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Config anchors the analyzers to the types they audit.  Packages are named
// by module-relative path so the same configuration applies to the real
// tree and to the miniature fixture modules under testdata/.
type Config struct {
	// DeterminismPkgs lists the module-relative packages whose non-test
	// files must be deterministic (the simulator and its substrates).
	DeterminismPkgs []string

	// SimPkg.ConfigType is the machine configuration struct; its
	// CanonicalMethod must normalise it for hashing.
	SimPkg          string
	ConfigType      string
	CanonicalMethod string

	// SweepPkg.HashPayloadType is the struct hashed into the result-cache
	// key; it must carry the full machine configuration.  Every exported
	// field of SpecType must be folded into the hash via SpecFoldMethods.
	SweepPkg        string
	HashPayloadType string
	SpecType        string
	SpecFoldMethods []string

	// SimPkg.StatsType must be fully JSON-visible and must appear as a
	// field of TelemetryPkg.ReportType.
	StatsType    string
	TelemetryPkg string
	ReportType   string

	// EnumTypes lists "relpkg.TypeName" enum sets whose switches must be
	// exhaustive (or carry an explicit default).
	EnumTypes []string

	// LockPkgs lists the service-layer packages audited by lockcheck
	// (guarded-field discipline, lock copies, lock-order cycles).
	LockPkgs []string

	// CtxPkgs lists the packages whose blocking for-loops must observe
	// cancellation (ctxcheck), so a drain can never hang.
	CtxPkgs []string

	// SchemaDir is the module-relative directory holding the wire-schema
	// goldens that schemadrift checks (and -write-schemas regenerates).
	SchemaDir string
}

// DefaultConfig anchors the analyzers to this repository's layout.
func DefaultConfig() Config {
	return Config{
		DeterminismPkgs: []string{
			"internal/sim", "internal/core", "internal/lsq", "internal/noc",
			"internal/mem", "internal/predictor", "internal/cache", "internal/emu",
			"internal/account", "internal/sched", "internal/bitset",
			// The observability core must stay deterministic-when-off: it
			// takes every timestamp from its caller and never spawns
			// goroutines (the HTTP server lives in internal/obs/status,
			// outside this set precisely because servers need both).
			"internal/obs",
			// Trace/span IDs are minted from a hashed seed + counter, never
			// a clock or entropy source, so trace output replays bit-exactly.
			"internal/obs/tracing",
		},
		SimPkg:          "internal/sim",
		ConfigType:      "Config",
		CanonicalMethod: "Canonical",
		SweepPkg:        "internal/sweep",
		HashPayloadType: "hashPayload",
		SpecType:        "JobSpec",
		SpecFoldMethods: []string{"Config", "Hash", "Canonical"},
		StatsType:       "Stats",
		TelemetryPkg:    "internal/telemetry",
		ReportType:      "Report",
		EnumTypes: []string{
			"internal/sim.msgKind",
			"internal/sim.PlacementKind",
			"internal/sim.BlockPredKind",
			"internal/sim.fetchAction",
			"internal/isa.Opcode",
			"internal/isa.Slot",
			"internal/isa.TargetKind",
			"internal/isa.PredMode",
			"internal/core.RecoveryScheme",
			"internal/core.IssuePolicy",
			"internal/account.Bucket",
			"internal/account.EventKind",
			"internal/obs.EventKind",
			"internal/obs.Phase",
			"internal/serve.JobState",
		},
		// The concurrent service layer: mutex discipline and cancellation
		// are audited everywhere a lease, drain or heartbeat loop lives.
		LockPkgs: []string{
			"internal/serve", "internal/sweep", "internal/obs", "internal/obs/status",
			"internal/obs/tracing",
		},
		CtxPkgs: []string{
			"internal/serve", "internal/sweep", "internal/obs", "internal/obs/status",
			"internal/obs/tracing",
		},
		SchemaDir: "internal/lint/schemas",
	}
}

// Result is one lint run: the diagnostics plus any configured anchors the
// module simply does not have (absent anchors disable their checks, which
// is fine for fixture modules but must be caught on the real tree — the
// self-audit test asserts Missing is empty).
type Result struct {
	Diags   []Diag   `json:"diagnostics"`
	Missing []string `json:"missing_anchors,omitempty"`
}

type pass struct {
	mod     *Module
	cfg     *Config
	diags   []Diag
	missing []string

	// //lint: annotation state (see annotations.go): parsed escapes per
	// file, and which annotation names each file was consulted for.
	annFiles     map[*ast.File][]*annotation
	annConsulted map[*ast.File]map[string]bool
}

func (p *pass) reportf(analyzer string, pos token.Pos, format string, args ...any) {
	tp := p.mod.Position(pos)
	p.diags = append(p.diags, Diag{
		File: tp.Filename, Line: tp.Line, Col: tp.Column,
		Analyzer: analyzer, Message: fmt.Sprintf(format, args...),
	})
}

func (p *pass) missingAnchor(what string) {
	p.missing = append(p.missing, what)
}

// Run executes every analyzer over the module and returns the sorted
// diagnostics.
func Run(m *Module, cfg Config) *Result {
	p := &pass{mod: m, cfg: &cfg}
	determinism(p)
	confighash(p)
	statscoverage(p)
	exhaustive(p)
	lockcheck(p)
	atomiccheck(p)
	ctxcheck(p)
	schemadrift(p)
	annotationAudit(p) // last: analyzers mark the escapes they consumed
	sort.Slice(p.diags, func(i, j int) bool {
		a, b := p.diags[i], p.diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	sort.Strings(p.missing)
	p.missing = slices.Compact(p.missing)
	return &Result{Diags: p.diags, Missing: p.missing}
}
