// Dependence-speculation survey: run one conflict-heavy workload under
// every load-issue policy and recovery scheme the paper compares, printing
// the figure-style table.
//
//	go run ./examples/depspec [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/stats"
)

func main() {
	kernel := "bank"
	if len(os.Args) > 1 {
		kernel = os.Args[1]
	}

	t := stats.NewTable(
		fmt.Sprintf("%s — %s", kernel, repro.WorkloadAnalog(kernel)),
		"scheme", "IPC", "speedup", "violations", "flushes", "corrections", "re-execs")

	var base float64
	for _, scheme := range repro.Schemes() {
		r, err := repro.Run(repro.Config{Workload: kernel, Scheme: scheme})
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = r.IPC
		}
		t.Row(scheme, r.IPC, fmt.Sprintf("%.2fx", r.IPC/base),
			r.Violations, r.Flushes, r.Corrections, r.Reexecs)
	}
	fmt.Println(t)

	fmt.Println("Reading the table:")
	fmt.Println("  conservative      — loads wait for every older store: no violations, least parallelism")
	fmt.Println("  aggressive+flush  — speculate always, flush the window on each violation")
	fmt.Println("  storeset+flush    — Chrysos/Emer predictor: fewer violations, but false dependences serialise")
	fmt.Println("  dsre              — speculate always; violations repaired by selective re-execution")
	fmt.Println("  oracle            — perfect dependence knowledge: the upper bound")
}
