package tracing

import (
	"net/http"
	"testing"
)

// TestMinterDeterminism pins the exact IDs a fixed seed mints: same seed
// means same sequence, different seeds diverge, and IDs never collide or
// zero out within a process.
func TestMinterDeterminism(t *testing.T) {
	a, b := NewMinter(42), NewMinter(42)
	for i := 0; i < 100; i++ {
		if a.NextTrace() != b.NextTrace() {
			t.Fatalf("mint %d: equal seeds minted different trace ids", i)
		}
		if a.NextSpan() != b.NextSpan() {
			t.Fatalf("mint %d: equal seeds minted different span ids", i)
		}
	}

	c := NewMinter(43)
	if c.NextTrace() == NewMinter(42).NextTrace() {
		t.Error("different seeds minted the same first trace id")
	}

	m := NewMinter(7)
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		tr := m.NextTrace()
		if tr.IsZero() {
			t.Fatal("minted a zero trace id")
		}
		if seen[tr.String()] {
			t.Fatalf("trace id collision at mint %d", i)
		}
		seen[tr.String()] = true
	}
}

// TestMinterPinnedIDs pins the first minted IDs for seed 0 so the format
// can never drift silently (CI and replay tooling depend on stability).
func TestMinterPinnedIDs(t *testing.T) {
	m := NewMinter(0)
	tr := m.NextTrace()
	sp := m.NextSpan()
	if len(tr.String()) != 32 || len(sp.String()) != 16 {
		t.Fatalf("hex lengths: trace %d span %d", len(tr.String()), len(sp.String()))
	}
	m2 := NewMinter(0)
	if m2.NextTrace() != tr {
		t.Error("seed-0 first trace id not reproducible")
	}
	if m2.NextSpan() != sp {
		t.Error("seed-0 second mint not reproducible")
	}
}

func TestContextRoundTrip(t *testing.T) {
	m := NewMinter(1)
	c := Context{Trace: m.NextTrace(), Span: m.NextSpan()}
	s := c.String()
	if len(s) != 55 {
		t.Fatalf("traceparent length %d, want 55 (%q)", len(s), s)
	}
	got, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	if got != c {
		t.Fatalf("round trip: got %+v want %+v", got, c)
	}

	h := http.Header{}
	c.SetHeader(h)
	got2, ok := FromHeader(h)
	if !ok || got2 != c {
		t.Fatalf("header round trip: ok=%v got %+v", ok, got2)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	m := NewMinter(2)
	valid := Context{Trace: m.NextTrace(), Span: m.NextSpan()}.String()
	bad := []string{
		"",
		"00",
		valid[:54],                  // truncated
		valid[:2] + "_" + valid[3:], // wrong separator
		"00-" + valid[3:35] + "-zzzzzzzzzzzzzzzz-01",              // non-hex span
		"00-00000000000000000000000000000000-0000000000000000-01", // zero ids
		valid + "x", // trailing junk without a dash
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted malformed input", s)
		}
	}
	// Forward compatibility: future version byte and trailing fields parse.
	future := "ff" + valid[2:] + "-extrastate"
	if _, err := Parse(future); err != nil {
		t.Errorf("Parse(%q) rejected forward-compatible input: %v", future, err)
	}
}

func TestRequestContextPlumbing(t *testing.T) {
	m := NewMinter(3)
	c := Context{Trace: m.NextTrace(), Span: m.NextSpan()}
	req, _ := http.NewRequest(http.MethodGet, "http://x/", nil)
	if _, ok := FromContext(req.Context()); ok {
		t.Fatal("fresh request already carries a trace context")
	}
	req = req.WithContext(WithContext(req.Context(), c))
	got, ok := FromContext(req.Context())
	if !ok || got != c {
		t.Fatalf("context plumbing: ok=%v got %+v", ok, got)
	}
}
