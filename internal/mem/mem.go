// Package mem provides the sparse byte-addressable memory that backs both
// the architectural emulator and the cycle simulator.
//
// Values live here; timing lives in internal/cache.  The two are decoupled
// so that speculative timing models can never corrupt architectural state.
package mem

// pageBits selects a 4 KiB page granularity for the sparse map.
const pageBits = 12
const pageSize = 1 << pageBits
const pageMask = pageSize - 1

// Memory is a sparse little-endian 64-bit address space.  The zero value is
// not usable; call New.
type Memory struct {
	pages map[uint64]*[pageSize]byte
}

// New returns an empty memory.  Unwritten bytes read as zero.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

// Clone returns a deep copy, used to snapshot initial workload state so the
// emulator and the simulator can run from identical images.
func (m *Memory) Clone() *Memory {
	c := New()
	for k, p := range m.pages {
		np := *p
		c.pages[k] = &np
	}
	return c
}

// Equal reports whether two memories have identical contents.  Pages that
// are all zero on one side and absent on the other compare equal.
func (m *Memory) Equal(o *Memory) bool {
	return m.covers(o) && o.covers(m)
}

func (m *Memory) covers(o *Memory) bool {
	//lint:ordered — pure membership scan: the boolean result is the AND over all pages, order-invisible
	for k, p := range m.pages {
		op, ok := o.pages[k]
		if !ok {
			if !isZero(p) {
				return false
			}
			continue
		}
		if *p != *op {
			return false
		}
	}
	return true
}

// FirstDiff returns the lowest address at which the two memories differ and
// true, or 0 and false when they are equal.  Intended for test diagnostics.
func (m *Memory) FirstDiff(o *Memory) (uint64, bool) {
	best := uint64(0)
	found := false
	note := func(addr uint64) {
		if !found || addr < best {
			best, found = addr, true
		}
	}
	scan := func(a, b *Memory) {
		//lint:ordered — note() folds min(addr), which is commutative, so visit order cannot change the result
		for k, p := range a.pages {
			op := b.pages[k]
			for i := 0; i < pageSize; i++ {
				ob := byte(0)
				if op != nil {
					ob = op[i]
				}
				if p[i] != ob {
					note(k<<pageBits | uint64(i))
					break
				}
			}
		}
	}
	scan(m, o)
	scan(o, m)
	return best, found
}

func isZero(p *[pageSize]byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}

func (m *Memory) page(addr uint64, create bool) *[pageSize]byte {
	k := addr >> pageBits
	p := m.pages[k]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[k] = p
	}
	return p
}

// ByteAt returns the byte at addr.
func (m *Memory) ByteAt(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// SetByte stores b at addr.
func (m *Memory) SetByte(addr uint64, b byte) {
	m.page(addr, true)[addr&pageMask] = b
}

// Read returns size bytes at addr as a little-endian integer.
// size must be 1 or 8.
func (m *Memory) Read(addr uint64, size int) int64 {
	if size == 1 {
		return int64(m.ByteAt(addr))
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(m.ByteAt(addr+uint64(i))) << (8 * i)
	}
	return int64(v)
}

// Write stores the low size bytes of v at addr, little-endian.
// size must be 1 or 8.
func (m *Memory) Write(addr uint64, v int64, size int) {
	if size == 1 {
		m.SetByte(addr, byte(v))
		return
	}
	u := uint64(v)
	for i := 0; i < 8; i++ {
		m.SetByte(addr+uint64(i), byte(u>>(8*i)))
	}
}

// ReadU64 is a convenience unsigned 8-byte read.
func (m *Memory) ReadU64(addr uint64) uint64 { return uint64(m.Read(addr, 8)) }

// WriteU64 is a convenience unsigned 8-byte write.
func (m *Memory) WriteU64(addr uint64, v uint64) { m.Write(addr, int64(v), 8) }

// Footprint returns the number of resident pages, for stats and tests.
func (m *Memory) Footprint() int { return len(m.pages) }
