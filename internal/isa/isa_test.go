package isa

import (
	"testing"
	"testing/quick"
)

func TestOpcodeProperties(t *testing.T) {
	for op := OpNop; op < numOpcodes; op++ {
		if !op.Valid() {
			t.Errorf("%s: Valid() = false for defined opcode", op)
		}
		if op.IsLoad() && op.IsStore() {
			t.Errorf("%s: both load and store", op)
		}
		if op.IsMem() != (op.IsLoad() || op.IsStore()) {
			t.Errorf("%s: IsMem inconsistent", op)
		}
		if op.IsMem() && op.MemSize() != 1 && op.MemSize() != 8 {
			t.Errorf("%s: memory op with size %d", op, op.MemSize())
		}
		if !op.IsMem() && op.MemSize() != 0 {
			t.Errorf("%s: non-memory op with size %d", op, op.MemSize())
		}
		if n := op.NumDataOperands(); n < 0 || n > 2 {
			t.Errorf("%s: %d data operands", op, n)
		}
		if op.String() == "" {
			t.Errorf("opcode %d: empty name", op)
		}
	}
	if Opcode(200).Valid() {
		t.Error("Valid() = true for undefined opcode")
	}
}

func TestEvalSemantics(t *testing.T) {
	cases := []struct {
		op      Opcode
		a, b, i int64
		want    int64
	}{
		{OpMov, 7, 0, 0, 7},
		{OpMovi, 0, 0, -13, -13},
		{OpAdd, 3, 4, 0, 7},
		{OpSub, 3, 4, 0, -1},
		{OpMul, -3, 4, 0, -12},
		{OpDiv, 7, 2, 0, 3},
		{OpDiv, 7, 0, 0, 0},
		{OpDiv, -7, 2, 0, -3},
		{OpRem, 7, 3, 0, 1},
		{OpRem, 7, 0, 0, 0},
		{OpNeg, 5, 0, 0, -5},
		{OpAnd, 0b1100, 0b1010, 0, 0b1000},
		{OpOr, 0b1100, 0b1010, 0, 0b1110},
		{OpXor, 0b1100, 0b1010, 0, 0b0110},
		{OpNot, 0, 0, 0, -1},
		{OpShl, 1, 4, 0, 16},
		{OpShl, 1, 64, 0, 1}, // shift amounts wrap mod 64
		{OpShr, -1, 63, 0, 1},
		{OpSra, -8, 2, 0, -2},
		{OpTeq, 4, 4, 0, 1},
		{OpTne, 4, 4, 0, 0},
		{OpTlt, -1, 0, 0, 1},
		{OpTle, 0, 0, 0, 1},
		{OpTgt, 1, 0, 0, 1},
		{OpTge, -1, 0, 0, 0},
		{OpTltu, -1, 0, 0, 0}, // -1 is huge unsigned
	}
	for _, c := range cases {
		if got := Eval(c.op, c.a, c.b, c.i); got != c.want {
			t.Errorf("Eval(%s, %d, %d, %d) = %d, want %d", c.op, c.a, c.b, c.i, got, c.want)
		}
	}
}

// TestEvalTestOpsAreBoolean property-checks that comparison results are 0/1
// and complementary pairs disagree.
func TestEvalTestOpsAreBoolean(t *testing.T) {
	f := func(a, b int64) bool {
		for _, op := range []Opcode{OpTeq, OpTne, OpTlt, OpTle, OpTgt, OpTge, OpTltu} {
			v := Eval(op, a, b, 0)
			if v != 0 && v != 1 {
				return false
			}
		}
		return Eval(OpTeq, a, b, 0) != Eval(OpTne, a, b, 0) &&
			Eval(OpTlt, a, b, 0) != Eval(OpTge, a, b, 0) &&
			Eval(OpTle, a, b, 0) != Eval(OpTgt, a, b, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstNeedsSlot(t *testing.T) {
	st := Inst{Op: OpSt, Pred: PredTrue}
	if !st.NeedsSlot(SlotA) || !st.NeedsSlot(SlotB) || !st.NeedsSlot(SlotP) {
		t.Error("predicated store should need A, B and P")
	}
	if st.NumInputs() != 3 {
		t.Errorf("NumInputs = %d, want 3", st.NumInputs())
	}
	ld := Inst{Op: OpLd}
	if !ld.NeedsSlot(SlotA) || ld.NeedsSlot(SlotB) || ld.NeedsSlot(SlotP) {
		t.Error("load should need only A")
	}
	movi := Inst{Op: OpMovi}
	if movi.NumInputs() != 0 {
		t.Error("movi should need no inputs")
	}
}

func TestStrings(t *testing.T) {
	in := Inst{Op: OpLd, Imm: 8, LSID: 2, Targets: []Target{{Kind: TargetInst, Index: 5, Slot: SlotB}}}
	if got := in.String(); got != "ld #8 [lsid 2] -> i5.b" {
		t.Errorf("Inst.String() = %q", got)
	}
	w := Target{Kind: TargetWrite, Index: 3}
	if w.String() != "w3" {
		t.Errorf("Target.String() = %q", w.String())
	}
	if PredTrue.String() != "_t" || PredFalse.String() != "_f" || PredNone.String() != "" {
		t.Error("PredMode strings wrong")
	}
}
