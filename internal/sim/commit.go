package sim

import (
	"repro/internal/isa"
	"repro/internal/trace"
)

// reclaimReadyBits strips a dying (squashed or retiring) block's queued
// instructions out of its tiles' ready masks, converting each into a stale
// credit.  The dense reference scheduler left such entries in place and
// dropped one per cycle instead of issuing; the credits reproduce that
// cost exactly while keeping the mask invariant (set bits name only live
// blocks) that lets the bitmap path skip liveness checks.
func (mc *Machine) reclaimReadyBits(b *blockInst) {
	slot := int(b.seq) & mc.tileRingMask
	for q := b.queued; !q.Empty(); {
		i := q.Min()
		q.Clear(i)
		t := &mc.tiles[mc.instTile(b.blockID, i)]
		m := &t.ready[slot]
		m.Clear(i)
		if m.Empty() {
			t.readyBlocks.Clear(slot)
		}
		t.readyCount--
		t.staleCredits++
	}
	b.queued.Reset()
}

// squashFrom removes every in-flight block with sequence >= fromSeq and
// arranges for fetch to resume at resumeID.  Frame generations advance so
// that every message still in flight for a squashed block is dropped on
// arrival.
func (mc *Machine) squashFrom(fromSeq int64, resumeID int) {
	cut := len(mc.window)
	for i, b := range mc.window {
		if b.seq >= fromSeq {
			cut = i
			break
		}
	}
	for i, b := range mc.window[cut:] {
		if mc.tracer != nil {
			mc.tracer.Record(mc.cycle, trace.KindBlockSquash, b.seq, 0, 0)
		}
		if mc.spans != nil {
			mc.spans.RecordSpan(trace.SpanBlock, b.seq, b.blockID, 1, b.mapCycle, mc.cycle)
		}
		mc.frameBusy[b.frame] = false
		mc.frameGens[b.frame]++
		mc.stats.SquashedBlocks++
		for j := range b.insts {
			mc.stats.SquashedExecs += b.insts[j].fired
		}
		mc.reclaimReadyBits(b)
		// Recycle the block and nil the window tail so retired blocks are
		// unreachable.  A handler that squashed its own block may still hold
		// the pointer, but the pool only hands it out at the next map, after
		// the handler has returned (and (frame, gen) liveness rejects any
		// message still naming it).
		mc.releaseBlock(b)
		mc.window[cut+i] = nil
	}
	mc.window = mc.window[:cut]
	mc.q.SquashFrom(fromSeq)
	if mc.fetch.active && mc.fetch.seq >= fromSeq {
		mc.fetch.active = false
	}
	mc.nextSeq = fromSeq
	mc.resumeID = resumeID
}

// stepCommit retires the oldest block once its outputs are final: register
// writes drain to the architectural file, stores drain to memory, the next-
// block predictor trains, and the frame frees.  At most one block commits
// per cycle; the return reports whether one did.
func (mc *Machine) stepCommit() bool {
	if len(mc.window) == 0 {
		return false
	}
	b := mc.window[0]
	if assertsEnabled && b.seq >= mc.nextSeq {
		mc.failAssert("committing block seq %d that fetch has not issued yet (nextSeq %d, cycle %d)",
			b.seq, mc.nextSeq, mc.cycle)
	}
	if !b.outputsCommitted() {
		return false
	}
	target := int(b.branch.Value)

	// The committed branch already validated the successor path
	// (checkSuccessor), except for the halt case where nothing should
	// follow: clear any mispredicted younger blocks now.
	if target == isa.HaltTarget && (len(mc.window) > 1 || mc.fetch.active) {
		mc.squashFrom(b.seq+1, isa.HaltTarget)
	}

	for i := range b.writes {
		mc.arch[b.bdef.Writes[i].Reg] = b.writes[i].slot.Value
	}
	mc.stats.DrainedStores += int64(mc.q.Drain(b.seq))
	mc.trainPredictor(b.blockID, target)

	if mc.tracer != nil {
		mc.tracer.Record(mc.cycle, trace.KindBlockCommit, b.seq, 0, 0)
	}
	if mc.spans != nil {
		mc.spans.RecordSpan(trace.SpanBlock, b.seq, b.blockID, 0, b.mapCycle, mc.cycle)
	}
	mc.frameBusy[b.frame] = false
	mc.frameGens[b.frame]++
	// A block can retire with instructions still queued (e.g. a predicated
	// slot whose enable lapsed); reclaim their ready bits like a squash.
	mc.reclaimReadyBits(b)
	// Compact in place: reslicing away the head would leak the backing
	// array's capacity and make the steady-state append reallocate.
	m := copy(mc.window, mc.window[1:])
	mc.window[m] = nil
	mc.window = mc.window[:m]
	mc.committed++
	mc.lastCommitCycle = mc.cycle
	for i := range b.insts {
		if b.insts[i].fired > 0 {
			mc.stats.CommittedExecs++
		}
	}
	mc.releaseBlock(b)

	if target == isa.HaltTarget {
		mc.done = true
		return true
	}
	if len(mc.window) == 0 && !mc.fetch.active {
		mc.resumeID = target
	}
	return true
}
