package workload

import (
	"testing"

	"repro/internal/emu"
	"repro/internal/program"
)

// TestKernelsAgainstGoReference runs every kernel at default size through
// the architectural emulator and validates the final state against the
// workload's straight-line Go reference.  This is the ground-truth test for
// both the kernels and the emulator.
func TestKernelsAgainstGoReference(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := Build(name, Params{})
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			res, err := emu.Run(w.Program, &w.Regs, w.Mem, emu.Options{})
			if err != nil {
				t.Fatalf("emulate: %v", err)
			}
			if err := w.Check(&res.Regs, res.Mem); err != nil {
				t.Fatalf("check: %v", err)
			}
			if res.Blocks == 0 || res.Insts == 0 {
				t.Fatalf("degenerate run: %d blocks, %d insts", res.Blocks, res.Insts)
			}
			t.Logf("%s: %d blocks, %d insts, %d loads, %d stores",
				name, res.Blocks, res.Insts, res.Loads, res.Stores)
		})
	}
}

// TestKernelsSmallSizes exercises non-default sizes, unrolls and seeds so
// size-rounding and unroll edge cases are covered.
func TestKernelsSmallSizes(t *testing.T) {
	cases := []Params{
		{Size: 16, Unroll: 1, Seed: 7},
		{Size: 33, Unroll: 2, Seed: 42},
		{Size: 100, Unroll: 5, Seed: 3},
	}
	for _, name := range Names() {
		for _, p := range cases {
			w, err := Build(name, p)
			if err != nil {
				t.Fatalf("%s %+v: Build: %v", name, p, err)
			}
			res, err := emu.Run(w.Program, &w.Regs, w.Mem, emu.Options{})
			if err != nil {
				t.Fatalf("%s %+v: emulate: %v", name, p, err)
			}
			if err := w.Check(&res.Regs, res.Mem); err != nil {
				t.Fatalf("%s %+v: check: %v", name, p, err)
			}
		}
	}
}

// TestKernelsValidate re-validates every kernel program explicitly.
func TestKernelsValidate(t *testing.T) {
	for _, name := range Names() {
		w := MustBuild(name, Params{})
		if err := program.Validate(w.Program); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestOracleCollection checks that the oracle table is populated for
// kernels with store→load dependences and that distances look sane.
func TestOracleCollection(t *testing.T) {
	w := MustBuild("stencil", Params{Size: 256})
	res, err := emu.Run(w.Program, &w.Regs, w.Mem, emu.Options{CollectOracle: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Oracle) == 0 {
		t.Fatal("stencil produced no oracle entries despite loop-carried stores")
	}
	// Every stencil load of a[i-1] conflicts with the store from the
	// previous iteration: distance must be small.
	short := int64(0)
	for _, n := range res.DepDistance[:4] {
		short += n
	}
	if short == 0 {
		t.Errorf("expected short dependence distances, histogram %v", res.DepDistance)
	}

	w2 := MustBuild("vecsum", Params{Size: 256})
	res2, err := emu.Run(w2.Program, &w2.Regs, w2.Mem, emu.Options{CollectOracle: true})
	if err != nil {
		t.Fatal(err)
	}
	// vecsum's only store is the final result; loads never conflict.
	if len(res2.Oracle) != 0 {
		t.Errorf("vecsum should have no store→load dependences, got %d", len(res2.Oracle))
	}
}

// TestBuildUnknown covers the registry error path.
func TestBuildUnknown(t *testing.T) {
	if _, err := Build("no-such-kernel", Params{}); err == nil {
		t.Fatal("expected error for unknown kernel")
	}
}
