package mem

import (
	"testing"
	"testing/quick"
)

func TestReadWriteRoundTrip(t *testing.T) {
	m := New()
	m.Write(0x1000, -123456789, 8)
	if got := m.Read(0x1000, 8); got != -123456789 {
		t.Errorf("read back %d", got)
	}
	m.Write(0x2000, 0x1FF, 1) // only the low byte is stored
	if got := m.Read(0x2000, 1); got != 0xFF {
		t.Errorf("byte read back %#x", got)
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	m := New()
	if m.Read(0xDEAD_BEEF, 8) != 0 || m.ByteAt(42) != 0 {
		t.Error("unwritten memory must read zero")
	}
	if m.Footprint() != 0 {
		t.Error("reads must not allocate pages")
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m := New()
	m.Write(0x100, 0x0807060504030201, 8)
	for i := 0; i < 8; i++ {
		if got := m.ByteAt(0x100 + uint64(i)); got != byte(i+1) {
			t.Errorf("byte %d = %#x", i, got)
		}
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New()
	addr := uint64(0x1000 - 4) // straddles a 4K page boundary
	m.Write(addr, 0x1122334455667788, 8)
	if got := m.Read(addr, 8); got != 0x1122334455667788 {
		t.Errorf("cross-page read %#x", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := New()
	m.Write(0x100, 1, 8)
	c := m.Clone()
	c.Write(0x100, 2, 8)
	if m.Read(0x100, 8) != 1 {
		t.Error("clone aliases original")
	}
	if !m.Equal(m.Clone()) {
		t.Error("clone not equal to original")
	}
}

func TestEqualTreatsZeroPagesEqual(t *testing.T) {
	a, b := New(), New()
	a.Write(0x100, 0, 8) // allocates a page of zeros
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("zero page must equal absent page")
	}
	a.Write(0x100, 7, 8)
	if a.Equal(b) {
		t.Error("different contents compare equal")
	}
}

func TestFirstDiff(t *testing.T) {
	a, b := New(), New()
	a.Write(0x500, 1, 8)
	b.Write(0x500, 1, 8)
	if _, ok := a.FirstDiff(b); ok {
		t.Error("equal memories report a diff")
	}
	b.Write(0x700, 9, 8)
	addr, ok := a.FirstDiff(b)
	if !ok || addr != 0x700 {
		t.Errorf("FirstDiff = %#x, %v", addr, ok)
	}
}

// TestRoundTripProperty: any (addr, value) pair round-trips through an
// 8-byte write and read, and a 1-byte write preserves neighbours.
func TestRoundTripProperty(t *testing.T) {
	f := func(addr uint32, v int64, b byte) bool {
		m := New()
		a := uint64(addr)
		m.Write(a, v, 8)
		if m.Read(a, 8) != v {
			return false
		}
		m.SetByte(a+8, b)
		return m.Read(a, 8) == v && m.ByteAt(a+8) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
