package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// EventsSchema identifies the structured event-log wire format: one JSON
// object per line, every line stamped with this schema so concatenated or
// truncated logs stay self-describing.
const EventsSchema = "dsre-events/v2"

// EventKind classifies one job-lifecycle event.
type EventKind uint8

const (
	// EventSweepStart opens one engine Run (one grid).
	EventSweepStart EventKind = iota
	// EventJobStart marks a worker picking up one unique job.
	EventJobStart
	// EventJobDone closes a job: status, attempts, elapsed, copies covered.
	EventJobDone
	// EventCacheHit records spec-level cache hits: store replays and
	// in-sweep dedup copies.  Copies carries how many specs it covers.
	EventCacheHit
	// EventRetry records a failed attempt that will be retried.
	EventRetry
	// EventPanic records an attempt that panicked (isolated to its job).
	EventPanic
	// EventStoreWrite records a result written to (or refused by) the
	// content-addressed store.
	EventStoreWrite
	// EventDrain records a cancelled sweep draining: in-flight jobs finish,
	// queued jobs are abandoned.
	EventDrain
	// EventSweepDone closes one engine Run with its totals.
	EventSweepDone
	// EventStoreCorrupt records a cached record rejected by payload SHA-256
	// verification (read as a miss and recomputed).
	EventStoreCorrupt
	// EventSubmit records one grid submitted to a dsre-serve daemon.
	EventSubmit
	// EventLease records a fleet worker leasing one queued job.
	EventLease
	// EventLeaseExpired records a lease whose heartbeats stopped (worker
	// crash or partition); the job is requeued or failed.
	EventLeaseExpired
	// EventRequeue records a job returned to the queue for another attempt.
	EventRequeue
	// EventUpload records a fleet result upload: Status "ok"/"failed", or
	// "duplicate" when first-write-wins dedup dropped a second copy.
	EventUpload
	// EventServeDrain records a daemon draining on SIGTERM: in-flight jobs
	// finish, manifests flush, queued jobs are abandoned.
	EventServeDrain
	// EventHTTPRequest is one structured request-log line from the daemon's
	// instrumented HTTP surface: route, status code, latency and the
	// request's trace ID.
	EventHTTPRequest
	// EventSlowRequest flags a request whose latency crossed the daemon's
	// -slow-request threshold (emitted in addition to its http_request).
	EventSlowRequest
)

// String returns the wire spelling of the kind.
func (k EventKind) String() string {
	switch k {
	case EventSweepStart:
		return "sweep_start"
	case EventJobStart:
		return "job_start"
	case EventJobDone:
		return "job_done"
	case EventCacheHit:
		return "cache_hit"
	case EventRetry:
		return "retry"
	case EventPanic:
		return "panic"
	case EventStoreWrite:
		return "store_write"
	case EventDrain:
		return "drain"
	case EventSweepDone:
		return "sweep_done"
	case EventStoreCorrupt:
		return "store_corrupt"
	case EventSubmit:
		return "submit"
	case EventLease:
		return "lease"
	case EventLeaseExpired:
		return "lease_expired"
	case EventRequeue:
		return "requeue"
	case EventUpload:
		return "upload"
	case EventServeDrain:
		return "serve_drain"
	case EventHTTPRequest:
		return "http_request"
	case EventSlowRequest:
		return "slow_request"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// EventKinds lists every declared kind, in declaration order (the schema
// round-trip test and the CI validator enumerate it).
func EventKinds() []EventKind {
	return []EventKind{
		EventSweepStart, EventJobStart, EventJobDone, EventCacheHit, EventRetry,
		EventPanic, EventStoreWrite, EventDrain, EventSweepDone,
		EventStoreCorrupt, EventSubmit, EventLease, EventLeaseExpired,
		EventRequeue, EventUpload, EventServeDrain,
		EventHTTPRequest, EventSlowRequest,
	}
}

// ParseEventKind inverts String for the declared kinds.
func ParseEventKind(s string) (EventKind, error) {
	for _, k := range EventKinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("obs: unknown event kind %q", s)
}

// MarshalJSON writes the kind as its wire spelling.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON rejects unknown kinds, so log validation catches schema
// drift instead of silently zeroing it.
func (k *EventKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, err := ParseEventKind(s)
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// Event is one dsre-events/v2 record.  Seq is assigned by the sink and is
// strictly monotonic within one log; TimeMS is the emitting caller's
// wall clock (unix milliseconds) — the sink never reads a clock itself, so
// this package stays deterministic.
type Event struct {
	Schema string    `json:"schema"`
	Seq    int64     `json:"seq"`
	TimeMS int64     `json:"t_ms,omitempty"`
	Kind   EventKind `json:"kind"`

	Grid   string `json:"grid,omitempty"`
	Job    string `json:"job,omitempty"`  // spec hash (content address)
	Name   string `json:"name,omitempty"` // workload/scheme
	Worker int    `json:"worker,omitempty"`

	Attempt   int    `json:"attempt,omitempty"`
	Status    string `json:"status,omitempty"`
	CacheHit  bool   `json:"cache_hit,omitempty"`
	Copies    int    `json:"copies,omitempty"`
	ElapsedMS int64  `json:"elapsed_ms,omitempty"`
	Error     string `json:"error,omitempty"`

	// Service-level identity (dsre-serve): the submitting tenant, the
	// daemon-assigned sweep ID, the fleet worker's name, and the lease the
	// event belongs to.
	Tenant string `json:"tenant,omitempty"`
	Sweep  string `json:"sweep,omitempty"`
	Peer   string `json:"peer,omitempty"`
	Lease  string `json:"lease,omitempty"`

	// Distributed-trace identity (http_request / slow_request and every
	// lease-protocol event): the request's 32-hex trace ID, its 16-hex span
	// ID, the instrumented route pattern, the response status code and the
	// request latency in microseconds.
	Trace      string `json:"trace,omitempty"`
	Span       string `json:"span,omitempty"`
	Route      string `json:"route,omitempty"`
	Code       int    `json:"code,omitempty"`
	DurationUS int64  `json:"duration_us,omitempty"`

	// Sweep-level totals (sweep_start carries Total/Unique/Workers,
	// sweep_done the final fold).
	Total     int `json:"total,omitempty"`
	Unique    int `json:"unique,omitempty"`
	Workers   int `json:"workers,omitempty"`
	OK        int `json:"ok,omitempty"`
	Failed    int `json:"failed,omitempty"`
	CacheHits int `json:"cache_hits,omitempty"`
}

// EventSink receives lifecycle events.  Implementations must be safe for
// concurrent use: the sweep engine emits from every worker.
type EventSink interface {
	Emit(Event)
}

// JSONLSink writes events as JSON lines, assigning contiguous sequence
// numbers starting at 1.  Writes are serialised under a mutex so lines
// never interleave; the first write error is sticky and reported by Err
// (an observability failure must degrade the log, never the sweep).
type JSONLSink struct {
	mu  sync.Mutex
	w   io.Writer
	seq int64
	err error
}

// NewJSONLSink wraps a writer (the caller owns closing it).
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: w}
}

// Emit stamps schema and sequence number and writes one line.
func (s *JSONLSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.seq++
	e.Seq = s.seq
	e.Schema = EventsSchema
	data, err := json.Marshal(&e)
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(append(data, '\n')); err != nil {
		s.err = err
	}
}

// Err returns the first write or encode error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// ReadEvents parses a dsre-events/v2 JSONL stream, enforcing the schema
// stamp on every line, known kinds, and strictly increasing sequence
// numbers.  Blank lines are skipped.
func ReadEvents(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var events []Event
	lastSeq := int64(0)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(text, &e); err != nil {
			return nil, fmt.Errorf("obs: events line %d: %w", line, err)
		}
		if e.Schema != EventsSchema {
			return nil, fmt.Errorf("obs: events line %d: schema %q, want %q", line, e.Schema, EventsSchema)
		}
		if e.Seq <= lastSeq {
			return nil, fmt.Errorf("obs: events line %d: seq %d not after %d", line, e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: events scan: %w", err)
	}
	return events, nil
}
