package workload

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

func init() {
	register("vecsum", "swim/mgrid (unit-stride streaming reduce)", buildVecsum)
	register("dotprod", "art (two-stream multiply-accumulate)", buildDotprod)
	register("stencil", "mgrid (in-place stencil with loop-carried store→load)", buildStencil)
	register("strmatch", "parser (byte-granularity scan and transform)", buildStrmatch)
}

// Registers shared by the streaming kernels.
const (
	rPtr  = 1
	rAcc  = 2
	rEnd  = 3
	rPtr2 = 4
	rCnt  = 5
)

// buildVecsum sums Size int64 elements.  Pure streaming: no store→load
// aliasing, so aggressive load issue is always correct and conservative
// policies only lose.  mem[ResultBase] = sum.
func buildVecsum(p Params) (*Workload, error) {
	p = p.withDefaults(16384, 8).clampUnroll(16)
	n := roundUp(p.Size, p.Unroll)

	b := program.New("vecsum")
	loop := b.NewBlock("loop")
	ptr := loop.Read(rPtr)
	sum := loop.Read(rAcc)
	end := loop.Read(rEnd)
	for k := 0; k < p.Unroll; k++ {
		v := loop.Load(ptr, int64(8*k))
		sum = loop.Op(isa.OpAdd, sum, v)
	}
	ptr2 := loop.Op(isa.OpAdd, ptr, loop.Const(int64(8*p.Unroll)))
	loop.Write(rPtr, ptr2)
	loop.Write(rAcc, sum)
	more := loop.Op(isa.OpTltu, ptr2, end)
	loop.BranchIf(more, "loop", "done")

	done := b.NewBlock("done")
	res := done.Read(rAcc)
	done.Store(done.Const(ResultBase), 0, res)
	done.Halt()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	w := &Workload{Description: fmt.Sprintf("sum of %d int64 elements, unroll %d", n, p.Unroll), Params: p, Program: prog, Mem: mem.New()}
	seed := p.Seed
	var want int64
	for i := 0; i < n; i++ {
		v := int64(splitmix64(&seed) >> 16)
		w.Mem.Write(DataBase+uint64(8*i), v, 8)
		want += v
	}
	w.Regs[rPtr] = DataBase
	w.Regs[rEnd] = DataBase + int64(8*n)
	w.Check = func(regs *[isa.NumRegs]int64, m *mem.Memory) error {
		return checkU64(m, ResultBase, want, "vecsum")
	}
	return w, nil
}

// buildDotprod computes the dot product of two Size-element vectors.
// mem[ResultBase] = dot.
func buildDotprod(p Params) (*Workload, error) {
	p = p.withDefaults(8192, 8).clampUnroll(10)
	n := roundUp(p.Size, p.Unroll)

	b := program.New("dotprod")
	loop := b.NewBlock("loop")
	pa := loop.Read(rPtr)
	pb := loop.Read(rPtr2)
	acc := loop.Read(rAcc)
	end := loop.Read(rEnd)
	for k := 0; k < p.Unroll; k++ {
		va := loop.Load(pa, int64(8*k))
		vb := loop.Load(pb, int64(8*k))
		acc = loop.Op(isa.OpAdd, acc, loop.Op(isa.OpMul, va, vb))
	}
	step := loop.Const(int64(8 * p.Unroll))
	pa2 := loop.Op(isa.OpAdd, pa, step)
	pb2 := loop.Op(isa.OpAdd, pb, step)
	loop.Write(rPtr, pa2)
	loop.Write(rPtr2, pb2)
	loop.Write(rAcc, acc)
	more := loop.Op(isa.OpTltu, pa2, end)
	loop.BranchIf(more, "loop", "done")

	done := b.NewBlock("done")
	res := done.Read(rAcc)
	done.Store(done.Const(ResultBase), 0, res)
	done.Halt()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	w := &Workload{Description: fmt.Sprintf("dot product of two %d-element vectors, unroll %d", n, p.Unroll), Params: p, Program: prog, Mem: mem.New()}
	seed := p.Seed
	var want int64
	for i := 0; i < n; i++ {
		a := int64(splitmix64(&seed) % 100000)
		c := int64(splitmix64(&seed) % 100000)
		w.Mem.Write(DataBase+uint64(8*i), a, 8)
		w.Mem.Write(DataBase2+uint64(8*i), c, 8)
		want += a * c
	}
	w.Regs[rPtr] = DataBase
	w.Regs[rPtr2] = DataBase2
	w.Regs[rEnd] = DataBase + int64(8*n)
	w.Check = func(regs *[isa.NumRegs]int64, m *mem.Memory) error {
		return checkU64(m, ResultBase, want, "dotprod")
	}
	return w, nil
}

// buildStencil runs an in-place forward pass a[i] += a[i-1] over Size
// elements.  Every iteration loads the word the previous iteration stored
// (dependence distance of two memory operations), making it the
// predictable-conflict stress case: aggressive issue violates constantly,
// store-set prediction learns the single conflicting pair quickly, and DSRE
// repairs the misses it still takes.
func buildStencil(p Params) (*Workload, error) {
	p = p.withDefaults(8192, 4).clampUnroll(10)
	n := roundUp(p.Size, p.Unroll) + 1 // element 0 is read-only seed

	b := program.New("stencil")
	loop := b.NewBlock("loop")
	ptr := loop.Read(rPtr) // points at a[i]
	end := loop.Read(rEnd)
	for k := 0; k < p.Unroll; k++ {
		prev := loop.Load(ptr, int64(8*k)-8)
		v := loop.Load(ptr, int64(8*k))
		loop.Store(ptr, int64(8*k), loop.Op(isa.OpAdd, v, prev))
	}
	ptr2 := loop.Op(isa.OpAdd, ptr, loop.Const(int64(8*p.Unroll)))
	loop.Write(rPtr, ptr2)
	more := loop.Op(isa.OpTltu, ptr2, end)
	loop.BranchIf(more, "loop", "@halt")

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	w := &Workload{Description: fmt.Sprintf("in-place a[i] += a[i-1] over %d elements, unroll %d", n, p.Unroll), Params: p, Program: prog, Mem: mem.New()}
	seed := p.Seed
	ref := make([]int64, n)
	for i := 0; i < n; i++ {
		ref[i] = int64(splitmix64(&seed) % 1000)
		w.Mem.Write(DataBase+uint64(8*i), ref[i], 8)
	}
	for i := 1; i < n; i++ {
		ref[i] += ref[i-1]
	}
	w.Regs[rPtr] = DataBase + 8
	w.Regs[rEnd] = DataBase + int64(8*n)
	w.Check = func(regs *[isa.NumRegs]int64, m *mem.Memory) error {
		for i := 0; i < n; i++ {
			if err := checkU64(m, DataBase+uint64(8*i), ref[i], fmt.Sprintf("stencil[%d]", i)); err != nil {
				return err
			}
		}
		return nil
	}
	return w, nil
}

// buildStrmatch scans Size bytes, counting occurrences of 'a' and writing a
// transformed copy (c+1) to a second buffer.  Byte-granularity accesses
// exercise the 1-byte load/store paths; there is no aliasing.
// mem[ResultBase] = count of 'a' bytes.
func buildStrmatch(p Params) (*Workload, error) {
	p = p.withDefaults(8192, 8).clampUnroll(10)
	n := roundUp(p.Size, p.Unroll)

	b := program.New("strmatch")
	loop := b.NewBlock("loop")
	tp := loop.Read(rPtr)
	dp := loop.Read(rPtr2)
	cnt := loop.Read(rCnt)
	end := loop.Read(rEnd)
	one := loop.Const(1)
	lit := loop.Const('a')
	for k := 0; k < p.Unroll; k++ {
		c := loop.Load1(tp, int64(k))
		cnt = loop.Op(isa.OpAdd, cnt, loop.Op(isa.OpTeq, c, lit))
		loop.Store1(dp, int64(k), loop.Op(isa.OpAdd, c, one))
	}
	step := loop.Const(int64(p.Unroll))
	tp2 := loop.Op(isa.OpAdd, tp, step)
	dp2 := loop.Op(isa.OpAdd, dp, step)
	loop.Write(rPtr, tp2)
	loop.Write(rPtr2, dp2)
	loop.Write(rCnt, cnt)
	more := loop.Op(isa.OpTltu, tp2, end)
	loop.BranchIf(more, "loop", "done")

	done := b.NewBlock("done")
	res := done.Read(rCnt)
	done.Store(done.Const(ResultBase), 0, res)
	done.Halt()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	w := &Workload{Description: fmt.Sprintf("byte scan/transform over %d bytes, unroll %d", n, p.Unroll), Params: p, Program: prog, Mem: mem.New()}
	seed := p.Seed
	var want int64
	dst := make([]byte, n)
	for i := 0; i < n; i++ {
		c := byte('a' + splitmix64(&seed)%16)
		w.Mem.SetByte(DataBase+uint64(i), c)
		if c == 'a' {
			want++
		}
		dst[i] = c + 1
	}
	w.Regs[rPtr] = DataBase
	w.Regs[rPtr2] = DataBase2
	w.Regs[rEnd] = DataBase + int64(n)
	w.Check = func(regs *[isa.NumRegs]int64, m *mem.Memory) error {
		if err := checkU64(m, ResultBase, want, "strmatch count"); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if got := m.ByteAt(DataBase2 + uint64(i)); got != dst[i] {
				return fmt.Errorf("strmatch: dst[%d] = %d, want %d", i, got, dst[i])
			}
		}
		return nil
	}
	return w, nil
}

func roundUp(n, to int) int {
	if to <= 1 {
		return n
	}
	return ((n + to - 1) / to) * to
}
