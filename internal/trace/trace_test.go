package trace

import (
	"strings"
	"testing"
)

func TestCollectorRecordsAndCaps(t *testing.T) {
	c := &Collector{Cap: 3}
	for i := 0; i < 5; i++ {
		c.Record(int64(i), KindExec, 0, i, 0)
	}
	if len(c.Events) != 3 || c.Dropped != 2 {
		t.Fatalf("events=%d dropped=%d", len(c.Events), c.Dropped)
	}
}

func TestCounts(t *testing.T) {
	c := &Collector{}
	c.Record(1, KindExec, 0, 0, 0)
	c.Record(2, KindExec, 0, 1, 0)
	c.Record(3, KindReexec, 0, 0, 7)
	got := c.Counts()
	if got[KindExec] != 2 || got[KindReexec] != 1 {
		t.Errorf("counts = %v", got)
	}
}

func TestTimelineRendering(t *testing.T) {
	c := &Collector{}
	for i := int64(0); i < 100; i++ {
		c.Record(i, KindExec, 0, 0, 0)
	}
	c.Record(50, KindCorrection, 1, 2, 9)
	s := c.Timeline(40)
	if !strings.Contains(s, "exec") || !strings.Contains(s, "correction") {
		t.Errorf("timeline missing rows:\n%s", s)
	}
	if !strings.Contains(s, "cycles 0..99") {
		t.Errorf("timeline missing range:\n%s", s)
	}
	// Kinds with no events are omitted.
	if strings.Contains(s, "squash") {
		t.Errorf("empty kind rendered:\n%s", s)
	}
	if (&Collector{}).Timeline(40) != "(no events)\n" {
		t.Error("empty collector rendering")
	}
}

func TestWaveReport(t *testing.T) {
	c := &Collector{}
	c.Record(10, KindCorrection, 3, 5, 1)
	c.Record(11, KindReexec, 3, 6, 1)
	c.Record(12, KindReexec, 3, 7, 1)
	c.Record(20, KindCorrection, 4, 5, 2)
	s := c.WaveReport(10)
	if !strings.Contains(s, "2 recovery waves") {
		t.Errorf("report:\n%s", s)
	}
	if !strings.Contains(s, "re-executions=2") {
		t.Errorf("wave 1 attribution missing:\n%s", s)
	}
	if (&Collector{}).WaveReport(5) != "(no recovery waves)\n" {
		t.Error("empty wave report")
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindExec; k <= KindBlockSquash; k++ {
		if k.String() == "?" {
			t.Errorf("kind %d unnamed", k)
		}
	}
}
