package sweep

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/obs"
)

// Reporter streams per-job completions to a writer (stderr in the CLIs):
// running counts, cache-hit ratio, failures and an ETA extrapolated from a
// rolling window of recent completions, so long sweeps with warm-up phases
// (cold cache, first-touch workload builds) converge to the steady-state
// rate instead of dragging the start along forever.
type Reporter struct {
	w       io.Writer
	workers int

	mu        sync.Mutex
	total     int
	dups      int
	done      int
	hits      int
	fails     int
	computeNS int64 // total wall time of computed (non-hit) jobs
	computed  int
	window    *obs.RateWindow // recent computed completions (pool-wide rate)
	started   time.Time
}

// NewReporter creates a reporter writing to w; workers is the pool size
// used for the cold-start ETA fallback (<= 0 is treated as 1).
func NewReporter(w io.Writer, workers int) *Reporter {
	if workers <= 0 {
		workers = 1
	}
	return &Reporter{w: w, workers: workers, window: obs.NewRateWindow(32)}
}

func (r *Reporter) begin(total, dups int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total = total
	r.dups = dups
	r.done = 0
	r.hits = 0
	r.fails = 0
	r.computeNS = 0
	r.computed = 0
	r.window = obs.NewRateWindow(32)
	r.started = time.Now()
	if dups > 0 {
		fmt.Fprintf(r.w, "sweep: %d jobs (%d deduplicated onto identical points)\n", total, dups)
	} else {
		fmt.Fprintf(r.w, "sweep: %d jobs\n", total)
	}
}

// jobDone records one unique job's completion covering copies duplicates.
func (r *Reporter) jobDone(res JobResult, copies int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.done += copies
	switch {
	case res.Status != StatusOK:
		r.fails += copies
	case res.CacheHit:
		r.hits += copies
	default:
		r.hits += copies - 1 // duplicate spellings replay the computation
		r.computed++
		r.computeNS += res.Elapsed * int64(time.Millisecond)
		r.window.Observe(time.Now())
	}

	status := "run "
	switch {
	case res.Status != StatusOK:
		status = "FAIL"
	case res.CacheHit:
		status = "hit "
	}
	line := fmt.Sprintf("sweep: %*d/%d %s %-28s %8s", digits(r.total), r.done, r.total,
		status, res.Spec.Name(), fmtMS(res.Elapsed))
	if eta, ok := r.etaLocked(); ok {
		line += "  eta " + eta.Round(time.Second).String()
	}
	line += fmt.Sprintf("  (hits %d%%, failures %d)", 100*r.hits/max(r.done, 1), r.fails)
	if res.Status != StatusOK {
		line += "\n  " + firstLine(res.Error)
	}
	fmt.Fprintln(r.w, line)
}

// etaLocked (callers hold r.mu) extrapolates from the rolling
// completion-rate window when it has
// enough samples — the window sees pool-wide completions, so remaining/rate
// already accounts for parallelism.  Before the window fills (or when every
// job so far was a cache hit) it falls back to the cumulative mean of
// computed jobs divided across the pool.
func (r *Reporter) etaLocked() (time.Duration, bool) {
	remaining := r.total - r.done
	if remaining <= 0 || r.computed == 0 {
		return 0, remaining > 0
	}
	if rate, ok := r.window.Rate(time.Now()); ok && rate > 0 {
		return time.Duration(float64(remaining) / rate * float64(time.Second)), true
	}
	perJob := time.Duration(r.computeNS / int64(r.computed))
	return perJob * time.Duration(remaining) / time.Duration(r.workers), true
}

func (r *Reporter) finish(sum *Summary) {
	r.mu.Lock()
	defer r.mu.Unlock()
	hitPct := 0
	if n := len(sum.Jobs); n > 0 {
		hitPct = 100 * sum.CacheHits / n
	}
	fmt.Fprintf(r.w, "sweep: done: %d ok (%d cache hits, %d%%), %d failed in %v\n",
		sum.OK, sum.CacheHits, hitPct, sum.Failed, sum.Elapsed.Round(time.Millisecond))
}

func fmtMS(ms int64) string {
	return (time.Duration(ms) * time.Millisecond).String()
}

func digits(n int) int {
	d := 1
	for n >= 10 {
		n /= 10
		d++
	}
	return d
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
