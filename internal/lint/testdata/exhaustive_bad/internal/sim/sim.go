package sim

type msgKind uint8

const (
	msgOperand msgKind = iota
	msgWrite
	msgBranch
	numMsgKinds // sentinel, not a member
)

// deliver forgets msgBranch.  want: switch misses msgBranch
func deliver(k msgKind) int {
	switch k {
	case msgOperand:
		return 1
	case msgWrite:
		return 2
	}
	return 0
}

// withDefault opts out with an explicit default: no diagnostic.
func withDefault(k msgKind) int {
	switch k {
	case msgOperand:
		return 1
	default:
		return 0
	}
}
