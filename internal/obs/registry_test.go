package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestWritePrometheusGolden pins the text exposition byte-for-byte: HELP
// and TYPE lines, name-sorted ordering, cumulative histogram buckets with
// the trailing +Inf, and the _sum/_count pair.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	jobs := reg.Counter("dsre_test_jobs_total", "Jobs completed, any status.")
	queued := reg.Gauge("dsre_test_jobs_queued", "Jobs waiting for a worker.")
	lat := reg.Histogram("dsre_test_job_seconds", "Wall time of computed jobs.", []float64{0.01, 0.1, 1})
	// An empty-help metric must render with only a TYPE line.
	bare := reg.Counter("dsre_test_bare_total", "")

	jobs.Add(42)
	queued.Set(7)
	queued.Add(-3)
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		lat.Observe(v)
	}
	bare.Inc()

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}

	golden := filepath.Join("testdata", "prometheus.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestRegistryConcurrent hammers every metric type from many goroutines
// while snapshotting and scraping concurrently; run under -race this pins
// the lock-free update paths.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "c")
	g := reg.Gauge("g", "g")
	h := reg.Histogram("h_seconds", "h", DurationBounds)

	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(seed*iters+i) / 1000)
				if i%100 == 0 {
					_ = reg.Snapshot()
					_ = reg.WritePrometheus(&bytes.Buffer{})
				}
			}
		}(w)
	}
	wg.Wait()

	s := reg.Snapshot()
	if got := s.Counter("c_total"); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := s.Gauge("g"); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if len(s.Histograms) != 1 || s.Histograms[0].Count != workers*iters {
		t.Errorf("histogram count = %+v, want %d observations", s.Histograms, workers*iters)
	}
}

func TestRegistryRejectsBadRegistration(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ok_total", "")
	for name, fn := range map[string]func(){
		"duplicate":     func() { reg.Counter("ok_total", "") },
		"cross-kind":    func() { reg.Gauge("ok_total", "") },
		"leading-digit": func() { reg.Counter("0bad", "") },
		"bad-char":      func() { reg.Counter("bad-name", "") },
		"empty":         func() { reg.Counter("", "") },
		"no-bounds":     func() { reg.Histogram("h", "", nil) },
		"unsorted":      func() { reg.Histogram("h2", "", []float64{1, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: registration did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	c := NewRegistry().Counter("c_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestHistogramBuckets(t *testing.T) {
	h := NewRegistry().Histogram("h", "", []float64{1, 2})
	h.Observe(0.5) // bucket le=1
	h.Observe(1)   // boundary lands in le=1 (le is inclusive)
	h.Observe(1.5) // bucket le=2
	h.Observe(9)   // +Inf
	want := []int64{2, 1, 1}
	for i, n := range want {
		if got := h.counts[i].Load(); got != n {
			t.Errorf("bucket %d = %d, want %d", i, got, n)
		}
	}
}

// TestVecFamilies pins the labeled metric families: children render with
// declaration-order labels, values are escaped, keys are stable across
// renders, and arity mismatches panic.
func TestVecFamilies(t *testing.T) {
	reg := NewRegistry()
	cv := reg.CounterVec("req_total", "requests", "route", "class")
	hv := reg.HistogramVec("req_seconds", "latency", []float64{0.1, 1}, "route")

	cv.With("GET /b", "2xx").Add(2)
	cv.With("GET /a", "2xx").Inc()
	cv.With("GET /a", "5xx").Inc()
	if cv.With("GET /a", "2xx").Value() != 1 {
		t.Error("With did not return the same child for equal labels")
	}
	hv.With("GET /a").Observe(0.05)
	hv.With(`quote"and\slash`).Observe(2)

	var b1, b2 strings.Builder
	if err := reg.WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("vec rendering is not deterministic across renders")
	}
	text := b1.String()
	for _, want := range []string{
		"# TYPE req_total counter",
		`req_total{route="GET /a",class="2xx"} 1`,
		`req_total{route="GET /a",class="5xx"} 1`,
		`req_total{route="GET /b",class="2xx"} 2`,
		"# TYPE req_seconds histogram",
		`req_seconds_bucket{route="GET /a",le="0.1"} 1`,
		`req_seconds_bucket{route="GET /a",le="+Inf"} 1`,
		`req_seconds_count{route="GET /a"} 1`,
		`req_seconds_bucket{route="quote\"and\\slash",le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	// Children sort lexically by label key: GET /a before GET /b.
	if strings.Index(text, `route="GET /a",class="2xx"`) > strings.Index(text, `route="GET /b"`) {
		t.Error("vec children not rendered in sorted label order")
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Error("label arity mismatch did not panic")
			}
		}()
		cv.With("only-one")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate family registration did not panic")
			}
		}()
		reg.CounterVec("req_total", "dup", "x")
	}()
}
