// Package sweep turns the experiment grid into deterministic jobs and runs
// them on a bounded worker pool with content-addressed result caching.
//
// A JobSpec names one simulation point — workload, scheme, machine
// parameters, seed.  Its Hash is a SHA-256 over the canonical spec plus
// the simulator-version stamp (sim.Version), so a result cached on disk is
// replayed instantly on the next sweep and invalidated exactly when the
// modelled semantics change.  The Engine executes specs under per-job
// timeouts with panic isolation and bounded retry, memoizes workload
// builds so the schemes of one experiment share a single program and
// golden-model run, and streams progress plus a machine-readable
// sweep-manifest.json.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro"
	"repro/internal/sim"
)

// JobSpec is one deterministic simulation point.  Zero-valued fields mean
// "default" with exactly repro.Config's semantics; Canonical resolves the
// aliases that matter for hashing.
type JobSpec struct {
	Workload string `json:"workload"`
	Size     int    `json:"size,omitempty"`
	Unroll   int    `json:"unroll,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`
	Scheme   string `json:"scheme,omitempty"`

	Frames        int `json:"frames,omitempty"`
	GridWidth     int `json:"grid_width,omitempty"`
	GridHeight    int `json:"grid_height,omitempty"`
	HopLatency    int `json:"hop_latency,omitempty"`
	LinkBandwidth int `json:"link_bandwidth,omitempty"`

	CommitTokensFree    bool   `json:"commit_tokens_free,omitempty"`
	NoSuppressIdentical bool   `json:"no_suppress_identical,omitempty"`
	PerfectBlockPred    bool   `json:"perfect_block_pred,omitempty"`
	BlockPredictor      string `json:"block_predictor,omitempty"`
	Placement           string `json:"placement,omitempty"`
	StoreSetSize        int    `json:"store_set_size,omitempty"`
	MemLatency          int    `json:"mem_latency,omitempty"`
	DTileBanks          int    `json:"dtile_banks,omitempty"`
	LSQCapacity         int    `json:"lsq_capacity,omitempty"`
	ValuePredict        bool   `json:"value_predict,omitempty"`

	// SampleEvery enables per-cycle telemetry sampling in the point's
	// report (see repro.Config.SampleEvery).
	SampleEvery int `json:"sample_every,omitempty"`
}

// Config converts the spec to the repro façade's run configuration.
func (s JobSpec) Config() repro.Config {
	return repro.Config{
		Workload:            s.Workload,
		Size:                s.Size,
		Unroll:              s.Unroll,
		Seed:                s.Seed,
		Scheme:              s.Scheme,
		Frames:              s.Frames,
		GridWidth:           s.GridWidth,
		GridHeight:          s.GridHeight,
		HopLatency:          s.HopLatency,
		LinkBandwidth:       s.LinkBandwidth,
		CommitTokensFree:    s.CommitTokensFree,
		NoSuppressIdentical: s.NoSuppressIdentical,
		PerfectBlockPred:    s.PerfectBlockPred,
		BlockPredictor:      s.BlockPredictor,
		Placement:           s.Placement,
		StoreSetSize:        s.StoreSetSize,
		MemLatency:          s.MemLatency,
		DTileBanks:          s.DTileBanks,
		LSQCapacity:         s.LSQCapacity,
		ValuePredict:        s.ValuePredict,
		SampleEvery:         s.SampleEvery,
	}
}

// Canonical resolves scheme and seed aliases so that two specs selecting
// the same simulation canonicalise — and therefore hash — identically.
// Machine-parameter defaults are resolved separately by the hash through
// repro.Config.MachineConfig and sim.Config.Canonical.
func (s JobSpec) Canonical() (JobSpec, error) {
	scheme, err := repro.CanonicalScheme(s.Scheme)
	if err != nil {
		return JobSpec{}, err
	}
	s.Scheme = scheme
	if s.Seed == 0 {
		s.Seed = 1 // workload.Params treats zero as seed 1
	}
	if s.BlockPredictor == "perfect" {
		s.PerfectBlockPred = true
	}
	if s.PerfectBlockPred {
		s.BlockPredictor = "perfect"
	}
	return s, nil
}

// Validate rejects specs that cannot run: unknown workloads or schemes,
// negative scale parameters, and machine configurations the simulator
// itself rejects (sim.ConfigError).
func (s JobSpec) Validate() error {
	if s.Workload == "" {
		return fmt.Errorf("sweep: spec has no workload (have %v)", repro.Workloads())
	}
	found := false
	for _, w := range repro.Workloads() {
		if w == s.Workload {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("sweep: unknown workload %q (have %v)", s.Workload, repro.Workloads())
	}
	if s.Size < 0 || s.Unroll < 0 {
		return fmt.Errorf("sweep: %s: negative size %d / unroll %d", s.Workload, s.Size, s.Unroll)
	}
	if s.SampleEvery < 0 {
		return fmt.Errorf("sweep: %s: negative sample interval %d", s.Workload, s.SampleEvery)
	}
	if _, err := repro.CanonicalScheme(s.Scheme); err != nil {
		return err
	}
	mc, err := s.Config().MachineConfig()
	if err != nil {
		return err
	}
	return mc.Validate()
}

// hashPayload is the exact byte layout hashed into a job's cache key: the
// simulator-version stamp, the canonical workload point, and the fully
// canonical machine configuration (every default explicit).  Field order
// is fixed by this struct — changing it invalidates every cache, so don't.
type hashPayload struct {
	SimVersion  string     `json:"sim_version"`
	Workload    string     `json:"workload"`
	Size        int        `json:"size"`
	Unroll      int        `json:"unroll"`
	Seed        uint64     `json:"seed"`
	Scheme      string     `json:"scheme"`
	Machine     sim.Config `json:"machine"`
	SampleEvery int        `json:"sample_every"`
}

// Hash returns the spec's content address: hex SHA-256 over the canonical
// spec and machine configuration plus the sim.Version stamp.  Specs that
// differ only in alias spelling or in explicitly-written default values
// hash identically; any bump of sim.Version changes every hash.
func (s JobSpec) Hash() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	mc, err := c.Config().MachineConfig()
	if err != nil {
		return "", err
	}
	p := hashPayload{
		SimVersion:  sim.Version,
		Workload:    c.Workload,
		Size:        c.Size,
		Unroll:      c.Unroll,
		Seed:        c.Seed,
		Scheme:      c.Scheme,
		Machine:     mc.Canonical(),
		SampleEvery: c.SampleEvery,
	}
	b, err := json.Marshal(&p)
	if err != nil {
		return "", fmt.Errorf("sweep: hash %s/%s: %w", s.Workload, s.Scheme, err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Name renders the spec's human-readable identity for logs and manifests.
func (s JobSpec) Name() string {
	scheme := s.Scheme
	if scheme == "" {
		scheme = "dsre"
	}
	return s.Workload + "/" + scheme
}
