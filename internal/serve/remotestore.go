package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs/tracing"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// maxRecordBytes bounds a single result record on the wire (reports with
// dense sampling are large, but bounded).
const maxRecordBytes = 64 << 20

// RemoteStore is a sweep.Store backed by a dsre-serve daemon's artifact
// endpoints, so a dsre-sweep (or dsre-explain) anywhere on the network
// shares the daemon's content-addressed cache.  It enforces the same
// contract as the local DirStore: a missing, stale-versioned or corrupt
// object is a miss (nil, nil), never a wrong result — every payload is
// re-verified against its sealed SHA-256 on arrival, so a corrupted
// object served by a remote store is rejected client-side too.
type RemoteStore struct {
	base      string
	client    *http.Client
	onCorrupt func(hash, detail string)
	tc        tracing.Context
}

// NewRemoteStore builds a store talking to the daemon at base (e.g.
// "http://127.0.0.1:8177").  client may be nil for a defaulted one.
func NewRemoteStore(base string, client *http.Client) *RemoteStore {
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &RemoteStore{base: strings.TrimRight(base, "/"), client: client}
}

// SetOnCorrupt installs the corruption observer (the engine wires it to
// the store_corrupt event, exactly as for DirStore).
func (st *RemoteStore) SetOnCorrupt(fn func(hash, detail string)) { st.onCorrupt = fn }

// SetTraceContext makes every subsequent Get/Put carry tc as a
// traceparent header, so daemon-side request logs tie cache traffic to
// the run that caused it.  Call before sharing the store across
// goroutines (it is not synchronised).
func (st *RemoteStore) SetTraceContext(tc tracing.Context) { st.tc = tc }

// remoteError condenses a non-2xx response into an error, preferring the
// dsre-serve-error/v1 envelope's code/message/trace over the bare status.
func remoteError(op, hash string, resp *http.Response) error {
	var env ErrorResponse
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if jerr := json.Unmarshal(body, &env); jerr == nil && env.Schema == ErrorSchema && env.Code != "" {
		if env.Trace != "" {
			return fmt.Errorf("serve: store %s %s: HTTP %d %s: %s (trace %s)", op, hash, resp.StatusCode, env.Code, env.Message, env.Trace)
		}
		return fmt.Errorf("serve: store %s %s: HTTP %d %s: %s", op, hash, resp.StatusCode, env.Code, env.Message)
	}
	return fmt.Errorf("serve: store %s %s: HTTP %d", op, hash, resp.StatusCode)
}

// Get fetches and verifies the record for a hash.  404 is a miss; a
// record that fails schema, hash, version or payload verification is a
// miss too (reported through OnCorrupt when the payload hash lies).
// Transport errors are returned — the engine treats them as misses and
// recomputes.
func (st *RemoteStore) Get(hash string) (*sweep.Record, error) {
	req, err := http.NewRequest(http.MethodGet, st.base+"/v1/artifacts/"+hash, nil)
	if err != nil {
		return nil, fmt.Errorf("serve: store get %s: %w", hash, err)
	}
	if st.tc.Valid() {
		st.tc.SetHeader(req.Header)
	}
	resp, err := st.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("serve: store get %s: %w", hash, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, remoteError("get", hash, resp)
	}
	var rec sweep.Record
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxRecordBytes)).Decode(&rec); err != nil {
		return nil, fmt.Errorf("serve: store get %s: %w", hash, err)
	}
	if rec.Schema != sweep.RecordSchema || rec.Hash != hash || rec.SimVersion != sim.Version || rec.Report == nil {
		return nil, nil
	}
	if err := rec.VerifyPayload(); err != nil {
		if st.onCorrupt != nil {
			st.onCorrupt(hash, err.Error())
		}
		return nil, nil
	}
	return &rec, nil
}

// Put seals and uploads a record.  The daemon's write is first-write-wins,
// so concurrent writers of the same hash are safe.
func (st *RemoteStore) Put(rec *sweep.Record) error {
	if err := rec.Seal(); err != nil {
		return err
	}
	body, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: store put %s: %w", rec.Hash, err)
	}
	req, err := http.NewRequest(http.MethodPut, st.base+"/v1/artifacts/"+rec.Hash, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("serve: store put %s: %w", rec.Hash, err)
	}
	req.Header.Set("Content-Type", "application/json")
	if st.tc.Valid() {
		st.tc.SetHeader(req.Header)
	}
	resp, err := st.client.Do(req)
	if err != nil {
		return fmt.Errorf("serve: store put %s: %w", rec.Hash, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return remoteError("put", rec.Hash, resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}
