// Package api declares the demo wire schema whose golden is current:
// the passing schemadrift fixture.
package api

// JobSchema versions the Job wire format.
const JobSchema = "demo-job/v1"

// Job is the wire form of one queued job.
type Job struct {
	ID    string `json:"id"`
	Tries int    `json:"tries"`
}
