// Package sched provides the deterministic event scheduler of the
// event-driven simulation core: a slice-backed min-heap of payloads keyed
// by (cycle, insertion order).
//
// Two properties matter to the simulator and are pinned by tests:
//
//   - determinism: events scheduled for the same cycle pop in insertion
//     order (FIFO within a cycle), so replacing a map-of-slices schedule
//     with the heap is behaviour-preserving bit for bit;
//   - allocation-freedom in steady state: the backing array is retained
//     across Push/Pop cycles, so a machine whose event population has
//     reached its high-water mark schedules with zero heap allocations.
package sched

// Queue is a deterministic min-heap of events ordered by (At, insertion
// sequence).  The zero value is ready to use.
type Queue[T any] struct {
	items []item[T]
	seq   uint64
}

type item[T any] struct {
	at      int64
	seq     uint64
	payload T
}

// less orders the heap: earlier cycle first, then earlier insertion.
func (a item[T]) less(b item[T]) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Len returns the number of queued events.
func (q *Queue[T]) Len() int { return len(q.items) }

// MinAt returns the cycle of the earliest event; callers must check
// Len() > 0 first.
func (q *Queue[T]) MinAt() int64 { return q.items[0].at }

// Push schedules a payload for cycle at.
func (q *Queue[T]) Push(at int64, payload T) {
	q.items = append(q.items, item[T]{at: at, seq: q.seq, payload: payload})
	q.seq++
	q.up(len(q.items) - 1)
}

// Pop removes and returns the earliest event's payload and cycle; callers
// must check Len() > 0 first.
func (q *Queue[T]) Pop() (int64, T) {
	top := q.items[0]
	n := len(q.items) - 1
	q.items[0] = q.items[n]
	var zero item[T]
	q.items[n] = zero // release payload references for the GC
	q.items = q.items[:n]
	if n > 0 {
		q.down(0)
	}
	return top.at, top.payload
}

// Reset empties the queue, retaining the backing array.
func (q *Queue[T]) Reset() {
	var zero item[T]
	for i := range q.items {
		q.items[i] = zero
	}
	q.items = q.items[:0]
}

func (q *Queue[T]) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !q.items[i].less(q.items[p]) {
			return
		}
		q.items[i], q.items[p] = q.items[p], q.items[i]
		i = p
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && q.items[l].less(q.items[small]) {
			small = l
		}
		if r < n && q.items[r].less(q.items[small]) {
			small = r
		}
		if small == i {
			return
		}
		q.items[i], q.items[small] = q.items[small], q.items[i]
		i = small
	}
}
