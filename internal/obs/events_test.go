package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestEventKindRoundTrip pins that every declared kind survives
// String -> Parse and JSON marshal -> unmarshal unchanged, and that the
// wire spellings are unique.
func TestEventKindRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range EventKinds() {
		s := k.String()
		if strings.Contains(s, "EventKind(") {
			t.Fatalf("kind %d has no wire spelling", k)
		}
		if seen[s] {
			t.Fatalf("duplicate wire spelling %q", s)
		}
		seen[s] = true

		parsed, err := ParseEventKind(s)
		if err != nil || parsed != k {
			t.Errorf("ParseEventKind(%q) = %v, %v; want %v", s, parsed, err, k)
		}
		data, err := k.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal %v: %v", k, err)
		}
		var back EventKind
		if err := back.UnmarshalJSON(data); err != nil || back != k {
			t.Errorf("json round trip %v -> %s -> %v, err %v", k, data, back, err)
		}
	}
	if _, err := ParseEventKind("no_such_kind"); err == nil {
		t.Error("ParseEventKind accepted an unknown kind")
	}
	var k EventKind
	if err := k.UnmarshalJSON([]byte(`"no_such_kind"`)); err == nil {
		t.Error("UnmarshalJSON accepted an unknown kind")
	}
}

// TestJSONLSinkRoundTrip writes a representative event stream through the
// sink and reads it back through the validating reader: schema stamped on
// every line, contiguous seq from 1, all fields preserved.
func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	in := []Event{
		{Kind: EventSweepStart, Grid: "grid-1", Total: 4, Unique: 3, Workers: 2},
		{Kind: EventJobStart, Grid: "grid-1", Job: "abc123", Name: "deps-w4", Worker: 1, Copies: 2},
		{Kind: EventRetry, Grid: "grid-1", Job: "abc123", Attempt: 1, Error: "timeout"},
		{Kind: EventPanic, Grid: "grid-1", Job: "abc123", Attempt: 2, Error: "panic: boom"},
		{Kind: EventStoreWrite, Grid: "grid-1", Job: "abc123"},
		{Kind: EventCacheHit, Grid: "grid-1", Job: "abc123", Copies: 1},
		{Kind: EventJobDone, Grid: "grid-1", Job: "abc123", Status: "ok", Copies: 2, ElapsedMS: 12, TimeMS: 99},
		{Kind: EventDrain, Grid: "grid-1", Error: "context canceled"},
		{Kind: EventSweepDone, Grid: "grid-1", OK: 3, Failed: 1, CacheHits: 1, ElapsedMS: 40},
	}
	for _, e := range in {
		sink.Emit(e)
	}
	if err := sink.Err(); err != nil {
		t.Fatalf("sink error: %v", err)
	}

	out, err := ReadEvents(&buf)
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d events, want %d", len(out), len(in))
	}
	for i, e := range out {
		if e.Schema != EventsSchema {
			t.Errorf("event %d schema = %q", i, e.Schema)
		}
		if e.Seq != int64(i+1) {
			t.Errorf("event %d seq = %d, want %d", i, e.Seq, i+1)
		}
		want := in[i]
		want.Schema = EventsSchema
		want.Seq = int64(i + 1)
		if e != want {
			t.Errorf("event %d = %+v, want %+v", i, e, want)
		}
	}
}

// TestJSONLSinkConcurrent pins that concurrent emitters never interleave
// lines or skip sequence numbers.
func TestJSONLSinkConcurrent(t *testing.T) {
	var buf lockedBuffer
	sink := NewJSONLSink(&buf)
	var wg sync.WaitGroup
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sink.Emit(Event{Kind: EventJobDone, Worker: w, Status: "ok"})
			}
		}(w)
	}
	wg.Wait()
	events, err := ReadEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	if len(events) != workers*per {
		t.Fatalf("read %d events, want %d", len(events), workers*per)
	}
	if last := events[len(events)-1].Seq; last != int64(workers*per) {
		t.Errorf("final seq = %d, want %d", last, workers*per)
	}
}

func TestReadEventsRejectsMalformedStreams(t *testing.T) {
	cases := map[string]string{
		"bad schema":  `{"schema":"nope/v1","seq":1,"kind":"job_done"}`,
		"bad kind":    `{"schema":"dsre-events/v2","seq":1,"kind":"bogus"}`,
		"zero seq":    `{"schema":"dsre-events/v2","seq":0,"kind":"job_done"}`,
		"seq reorder": "{\"schema\":\"dsre-events/v2\",\"seq\":2,\"kind\":\"job_done\"}\n{\"schema\":\"dsre-events/v2\",\"seq\":1,\"kind\":\"job_done\"}",
		"not json":    `{`,
	}
	for name, in := range cases {
		if _, err := ReadEvents(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadEvents accepted the stream", name)
		}
	}
}

// lockedBuffer lets ReadEvents' writer side be driven from many goroutines
// in tests; the sink already serialises, but -race needs the buffer itself
// to be safe for the final read too.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}
