package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

// genProgram builds a random—but structurally valid—EDGE program: a ring of
// loop blocks full of random arithmetic, selects, predicated stores and
// memory traffic over a tiny address pool (maximum aliasing), driven by a
// counted loop so it always terminates.
func genProgram(r *rand.Rand) (*isa.Program, *[isa.NumRegs]int64, *mem.Memory) {
	const (
		memBase  = 0x10000
		memSlots = 16 // 16 8-byte cells: dense aliasing
		rCounter = 1
	)
	nBody := 1 + r.Intn(3)

	b := program.New("fuzz")
	labels := make([]string, nBody)
	for i := range labels {
		labels[i] = string(rune('a' + i))
	}
	// Declare all blocks first so branches can target any of them.
	blocks := make([]*program.BlockBuilder, nBody)
	for i, l := range labels {
		blocks[i] = b.NewBlock(l)
	}

	for i, blk := range blocks {
		// Value pool seeded from register reads and constants.
		pool := []program.Val{
			blk.Read(2), blk.Read(3), blk.Read(4),
			blk.Const(r.Int63n(1000) - 500),
		}
		pick := func() program.Val { return pool[r.Intn(len(pool))] }
		addr := func(v program.Val) program.Val {
			masked := blk.Op(isa.OpAnd, v, blk.Const(int64(memSlots-1)*8))
			return blk.Op(isa.OpAdd, masked, blk.Const(memBase))
		}

		nOps := 4 + r.Intn(10)
		for j := 0; j < nOps; j++ {
			switch r.Intn(10) {
			case 0, 1, 2, 3: // arithmetic
				ops := []isa.Opcode{isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpXor, isa.OpAnd, isa.OpOr, isa.OpTlt, isa.OpTeq, isa.OpShr, isa.OpDiv}
				pool = append(pool, blk.Op(ops[r.Intn(len(ops))], pick(), pick()))
			case 4, 5: // load
				pool = append(pool, blk.Load(addr(pick()), 0))
			case 6, 7: // store
				blk.Store(addr(pick()), 0, pick())
			case 8: // select
				pool = append(pool, blk.Select(blk.Op(isa.OpTlt, pick(), pick()), pick(), pick()))
			case 9: // predicated store
				blk.StoreIf(blk.Op(isa.OpTne, pick(), pick()), r.Intn(2) == 0, addr(pick()), 0, pick())
			}
		}

		// Fold every produced value into an accumulator so no instruction
		// is left without a consumer (the validator rejects dead values).
		acc := pool[0]
		for _, v := range pool[1:] {
			acc = blk.Op(isa.OpXor, acc, v)
		}
		blk.Write(5, acc)

		// Loop plumbing: decrement the counter, write back a few registers,
		// branch to a random body block or halt.
		c := blk.Read(rCounter)
		c2 := blk.Op(isa.OpSub, c, blk.Const(1))
		blk.Write(rCounter, c2)
		for _, reg := range []uint8{2, 3, 4}[:1+r.Intn(3)] {
			blk.Write(reg, pick())
		}
		next := labels[r.Intn(nBody)]
		more := blk.Op(isa.OpTgt, c2, blk.Const(0))
		blk.BranchIf(more, next, program.HaltLabel)
		_ = i
	}

	prog, err := b.Build()
	if err != nil {
		panic("fuzz generator produced invalid program: " + err.Error())
	}

	regs := &[isa.NumRegs]int64{}
	regs[rCounter] = 20 + r.Int63n(40)
	m := mem.New()
	for i := 0; i < memSlots; i++ {
		m.Write(memBase+uint64(8*i), r.Int63n(1000), 8)
	}
	for reg := 2; reg <= 4; reg++ {
		regs[reg] = r.Int63n(1 << 16)
	}
	return prog, regs, m
}

// TestFuzzProgramsAllSchemes property-checks the central invariant on
// randomized programs: whatever the program, policy and recovery scheme,
// the simulated machine's final architectural state equals the golden
// model's.
func TestFuzzProgramsAllSchemes(t *testing.T) {
	schemes := []struct {
		policy   core.IssuePolicy
		recovery core.RecoveryScheme
	}{
		{core.IssueAggressive, core.RecoverDSRE},
		{core.IssueAggressive, core.RecoverFlush},
		{core.IssueStoreSet, core.RecoverDSRE},
		{core.IssueConservative, core.RecoverFlush},
		{core.IssueOracle, core.RecoverDSRE},
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prog, regs, m := genProgram(r)
		golden, err := emu.Run(prog, regs, m, emu.Options{CollectOracle: true})
		if err != nil {
			t.Logf("seed %d: emulator rejected program: %v", seed, err)
			return false
		}
		for _, s := range schemes {
			cfg := DefaultConfig()
			cfg.Policy = s.policy
			cfg.Recovery = s.recovery
			cfg.Frames = 4 + r.Intn(8)
			cfg.ValuePredict = r.Intn(2) == 0
			cfg.DeadlockCycles = 100000
			mc, err := New(cfg, prog, regs, m, golden.Oracle, nil)
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			sr, err := mc.Run()
			if err != nil {
				t.Logf("seed %d %s+%s: %v", seed, s.policy, s.recovery, err)
				return false
			}
			if sr.Regs != golden.Regs || !sr.Mem.Equal(golden.Mem) {
				t.Logf("seed %d %s+%s: architectural divergence", seed, s.policy, s.recovery)
				return false
			}
			// Differential arm: the dense reference tick must reproduce the
			// event-driven run bit for bit, on every random program.
			scfg := cfg
			scfg.SlowTick = true
			smc, err := New(scfg, prog, regs, m, golden.Oracle, nil)
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			ssr, err := smc.Run()
			if err != nil {
				t.Logf("seed %d %s+%s slow-tick: %v", seed, s.policy, s.recovery, err)
				return false
			}
			if ssr.Regs != sr.Regs || !ssr.Mem.Equal(sr.Mem) || !reflect.DeepEqual(ssr.Stats, sr.Stats) {
				t.Logf("seed %d %s+%s: fast/slow tick divergence", seed, s.policy, s.recovery)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
