package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/workload"
)

// runScheme simulates a workload under one (policy, recovery) pair and
// returns its IPC (emulated instructions per simulated cycle).
func runScheme(t *testing.T, name string, size int, policy core.IssuePolicy, rec core.RecoveryScheme) (ipc float64, st *Stats) {
	t.Helper()
	w := workload.MustBuild(name, workload.Params{Size: size})
	er, err := emu.Run(w.Program, &w.Regs, w.Mem, emu.Options{CollectOracle: policy == core.IssueOracle})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Policy = policy
	cfg.Recovery = rec
	mc, err := New(cfg, w.Program, &w.Regs, w.Mem, er.Oracle, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := mc.Run()
	if err != nil {
		t.Fatalf("%s %s+%s: %v", name, policy, rec, err)
	}
	return float64(er.Insts) / float64(r.Stats.Cycles), &r.Stats
}

// TestPerformanceShape is the regression guard for the paper's qualitative
// claims: the scheme ordering must hold on the kernels that exhibit each
// behaviour, even as latencies and parameters evolve.
func TestPerformanceShape(t *testing.T) {
	const size = 1024

	t.Run("conservative is slowest on conflict-free streaming", func(t *testing.T) {
		cons, _ := runScheme(t, "listsum", size, core.IssueConservative, core.RecoverFlush)
		aggr, _ := runScheme(t, "listsum", size, core.IssueAggressive, core.RecoverDSRE)
		if cons >= aggr {
			t.Errorf("conservative %.3f >= aggressive+DSRE %.3f", cons, aggr)
		}
	})

	t.Run("flush collapses under dense true dependences", func(t *testing.T) {
		flush, fs := runScheme(t, "stencil", size, core.IssueAggressive, core.RecoverFlush)
		dsre, _ := runScheme(t, "stencil", size, core.IssueAggressive, core.RecoverDSRE)
		if fs.Flushes == 0 {
			t.Fatal("stencil under aggressive+flush produced no flushes")
		}
		if dsre < 1.5*flush {
			t.Errorf("DSRE %.3f not well above flush %.3f on stencil", dsre, flush)
		}
	})

	t.Run("DSRE beats store-set where the predictor over-serialises", func(t *testing.T) {
		ss, _ := runScheme(t, "histogram", size, core.IssueStoreSet, core.RecoverFlush)
		dsre, _ := runScheme(t, "histogram", size, core.IssueAggressive, core.RecoverDSRE)
		if dsre <= ss {
			t.Errorf("DSRE %.3f <= store-set %.3f on histogram", dsre, ss)
		}
	})

	t.Run("oracle bounds every scheme", func(t *testing.T) {
		for _, name := range []string{"histogram", "bank", "hashmap"} {
			oracle, os := runScheme(t, name, size, core.IssueOracle, core.RecoverDSRE)
			if os.LSQ.Violations != 0 {
				t.Errorf("%s: oracle mis-speculated %d times", name, os.LSQ.Violations)
			}
			dsre, _ := runScheme(t, name, size, core.IssueAggressive, core.RecoverDSRE)
			// DSRE must reach a large fraction of oracle performance (the
			// abstract claims 82% on SPEC; our kernels achieve more).
			if dsre < 0.75*oracle {
				t.Errorf("%s: DSRE %.3f below 75%% of oracle %.3f", name, dsre, oracle)
			}
		}
	})

	t.Run("store-set eliminates predictable violations", func(t *testing.T) {
		_, as := runScheme(t, "stencil", size, core.IssueAggressive, core.RecoverFlush)
		_, ss := runScheme(t, "stencil", size, core.IssueStoreSet, core.RecoverFlush)
		if ss.LSQ.Violations*10 >= as.LSQ.Violations {
			t.Errorf("store-set violations %d not well below aggressive %d",
				ss.LSQ.Violations, as.LSQ.Violations)
		}
	})

	t.Run("DSRE re-executes instead of flushing", func(t *testing.T) {
		_, st := runScheme(t, "stencil", size, core.IssueAggressive, core.RecoverDSRE)
		if st.Flushes != 0 {
			t.Errorf("DSRE flushed %d times", st.Flushes)
		}
		if st.DSRECorrections == 0 || st.Reexecs == 0 {
			t.Errorf("DSRE produced no selective re-execution (corr=%d reex=%d)",
				st.DSRECorrections, st.Reexecs)
		}
		if st.WaveCount == 0 {
			t.Error("no waves accounted")
		}
	})
}
