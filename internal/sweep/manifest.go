package sweep

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/sim"
)

// ManifestSchema identifies the sweep-manifest wire format.
const ManifestSchema = "dsre-sweep-manifest/v1"

// Manifest is the machine-readable account of one sweep: every job's spec,
// hash and outcome, without the result payloads (those live in the store,
// addressed by each job's hash).  A manifest is also a runnable grid:
// dsre-sweep -resume replays its specs, so finishing an interrupted or
// partially-failed sweep needs nothing but the manifest and the cache.
type Manifest struct {
	Schema     string      `json:"schema"`
	SimVersion string      `json:"sim_version"`
	Jobs       []JobResult `json:"jobs"`
	Totals     Totals      `json:"totals"`
}

// Totals summarises a manifest's jobs.
type Totals struct {
	Jobs      int   `json:"jobs"`
	OK        int   `json:"ok"`
	Failed    int   `json:"failed"`
	CacheHits int   `json:"cache_hits"`
	ElapsedMS int64 `json:"elapsed_ms"`
}

// NewManifest builds the manifest for a summary.
func NewManifest(sum *Summary) *Manifest {
	return &Manifest{
		Schema:     ManifestSchema,
		SimVersion: sim.Version,
		Jobs:       sum.Jobs,
		Totals: Totals{
			Jobs:      len(sum.Jobs),
			OK:        sum.OK,
			Failed:    sum.Failed,
			CacheHits: sum.CacheHits,
			ElapsedMS: sum.Elapsed.Milliseconds(),
		},
	}
}

// WriteFile writes the manifest as indented JSON.
func (m *Manifest) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("sweep: marshal manifest: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadManifest loads and schema-checks a manifest.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("sweep: parse manifest %s: %w", path, err)
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("sweep: manifest %s schema %q, want %q", path, m.Schema, ManifestSchema)
	}
	return &m, nil
}

// Specs returns the manifest's grid, in manifest order — the input for a
// resumed sweep.  Completed points replay from the cache; failed or
// never-run points recompute.
func (m *Manifest) Specs() []JobSpec {
	specs := make([]JobSpec, len(m.Jobs))
	for i := range m.Jobs {
		specs[i] = m.Jobs[i].Spec
	}
	return specs
}
