package sim

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
)

// newTestTile builds a bare tileState with a ready ring covering `frames`
// block slots, plus the matching ring index mask — the same wiring New does
// for each real tile.
func newTestTile(frames int) (*tileState, int) {
	t := &tileState{readyBlocks: bitset.NewRing(frames)}
	t.ready = make([]bitset.Mask128, t.readyBlocks.Size())
	return t, t.readyBlocks.Size() - 1
}

// enqueue mirrors enqueueReady's mask bookkeeping for a bare tile.
func (t *tileState) enqueue(seq int64, idx, ringMask int) {
	slot := int(seq) & ringMask
	m := &t.ready[slot]
	if m.Empty() {
		t.readyBlocks.Set(slot)
	}
	m.Set(idx)
	t.readyCount++
}

// reclaim mirrors reclaimReadyBits for one block: every queued bit becomes
// a stale credit.
func (t *tileState) reclaim(seq int64, ringMask int) {
	slot := int(seq) & ringMask
	m := &t.ready[slot]
	for !m.Empty() {
		m.Clear(m.Min())
		t.readyCount--
		t.staleCredits++
	}
	t.readyBlocks.Clear(slot)
}

// TestDequeueOldestFirstWithStaleCredits pins the shared dequeue helper's
// contract for both the dense and bitmap paths: stale credits (reclaimed
// entries from squashed blocks) each consume one issue slot before any real
// pop, and real pops come out oldest block first, lowest instruction index
// second — even when the reclaims interleave with live enqueues.
func TestDequeueOldestFirstWithStaleCredits(t *testing.T) {
	tl, mask := newTestTile(8)

	// Blocks 10..13 enqueue out of order; block 11 is then squashed,
	// interleaving its two stale credits between live entries.
	tl.enqueue(12, 7, mask)
	tl.enqueue(10, 40, mask)
	tl.enqueue(11, 3, mask)
	tl.enqueue(11, 99, mask)
	tl.enqueue(10, 5, mask)
	tl.reclaim(11, mask)
	tl.enqueue(13, 0, mask)

	if !tl.hasIssueWork() {
		t.Fatal("tile should have issue work")
	}
	// Two stale credits drain first, one per call, popping nothing.
	for i := 0; i < 2; i++ {
		seq, idx, stale, ok := tl.dequeueReady(10, mask)
		if !ok || !stale {
			t.Fatalf("call %d: want stale credit, got seq=%d idx=%d stale=%v ok=%v", i, seq, idx, stale, ok)
		}
	}
	// Then strict (seq, idx) order across the survivors.
	want := []struct {
		seq int64
		idx int
	}{{10, 5}, {10, 40}, {12, 7}, {13, 0}}
	for i, w := range want {
		seq, idx, stale, ok := tl.dequeueReady(10, mask)
		if !ok || stale || seq != w.seq || idx != w.idx {
			t.Fatalf("pop %d: got (%d,%d) stale=%v ok=%v, want (%d,%d)", i, seq, idx, stale, ok, w.seq, w.idx)
		}
	}
	if _, _, _, ok := tl.dequeueReady(10, mask); ok {
		t.Fatal("drained tile still dequeues")
	}
	if tl.hasIssueWork() {
		t.Fatal("drained tile claims issue work")
	}
}

// TestDequeueRingWraparound pins slot indexing when block sequences wrap
// the ready ring: with a 64-slot ring, blocks 62..66 occupy slots
// 62, 63, 0, 1, 2 and must still pop oldest-sequence-first from window
// base 62, including after a mid-range squash reclaims block 64.
func TestDequeueRingWraparound(t *testing.T) {
	tl, mask := newTestTile(8) // ring rounds up to 64 slots
	if mask != 63 {
		t.Fatalf("ring mask = %d, want 63", mask)
	}
	for _, e := range []struct {
		seq int64
		idx int
	}{{66, 1}, {62, 127}, {64, 2}, {63, 0}, {65, 64}} {
		tl.enqueue(e.seq, e.idx, mask)
	}
	tl.reclaim(64, mask)

	if seq, idx, stale, ok := tl.dequeueReady(62, mask); !ok || !stale || seq != 0 || idx != 0 {
		t.Fatalf("want the squashed block's stale credit first, got (%d,%d) stale=%v", seq, idx, stale)
	}
	want := []struct {
		seq int64
		idx int
	}{{62, 127}, {63, 0}, {65, 64}, {66, 1}}
	for i, w := range want {
		seq, idx, stale, ok := tl.dequeueReady(62, mask)
		if !ok || stale || seq != w.seq || idx != w.idx {
			t.Fatalf("pop %d: got (%d,%d) stale=%v ok=%v, want (%d,%d)", i, seq, idx, stale, ok, w.seq, w.idx)
		}
	}
}

// TestDequeueFullBlockMask pins the 128-instruction boundary: a block with
// every instruction bit set drains 0..127 in index order, and a single bit
// at each word boundary pops alone.
func TestDequeueFullBlockMask(t *testing.T) {
	tl, mask := newTestTile(4)
	for i := 0; i < 128; i++ {
		tl.enqueue(7, i, mask)
	}
	for i := 0; i < 128; i++ {
		seq, idx, stale, ok := tl.dequeueReady(7, mask)
		if !ok || stale || seq != 7 || idx != i {
			t.Fatalf("full-mask pop %d: got (%d,%d) stale=%v ok=%v", i, seq, idx, stale, ok)
		}
	}
	for _, bit := range []int{0, 63, 64, 127} {
		tl.enqueue(9, bit, mask)
		seq, idx, _, ok := tl.dequeueReady(9, mask)
		if !ok || seq != 9 || idx != bit {
			t.Fatalf("single bit %d: got (%d,%d) ok=%v", bit, seq, idx, ok)
		}
	}
}

// TestDequeueMatchesSliceScan fuzzes the bitmap pick-next against a plain
// slice-scan reference scheduler: random interleavings of enqueues, squash
// reclaims, and pops must produce identical issue streams.  The reference
// keeps an unordered entry slice and scans it for min (seq, idx) — the
// associative search the bitmaps replace — and models a reclaim exactly as
// the dense scheduler did: the entry becomes a dead slot that consumes one
// issue turn.
func TestDequeueMatchesSliceScan(t *testing.T) {
	type ent struct {
		seq  int64
		idx  int
		dead bool
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		tl, mask := newTestTile(8)
		var ref []ent
		base := int64(rng.Intn(1000))
		oldest := base
		live := map[int64][]int{} // seq -> enqueued idxs not yet popped
		youngest := base - 1

		popBoth := func() {
			// Reference: dead entries first (any one), else min (seq, idx).
			seq, idx, stale, ok := tl.dequeueReady(oldest, mask)
			ri := -1
			for i, e := range ref {
				if e.dead {
					ri = i
					break
				}
			}
			wantStale := ri >= 0
			if ri < 0 {
				for i, e := range ref {
					if ri < 0 || e.seq < ref[ri].seq || (e.seq == ref[ri].seq && e.idx < ref[ri].idx) {
						ri = i
					}
				}
			}
			if (ri >= 0) != ok {
				t.Fatalf("trial %d: ok=%v but reference has %d entries", trial, ok, len(ref))
			}
			if !ok {
				return
			}
			if stale != wantStale {
				t.Fatalf("trial %d: stale=%v, reference dead=%v", trial, stale, wantStale)
			}
			if !stale && (seq != ref[ri].seq || idx != ref[ri].idx) {
				t.Fatalf("trial %d: popped (%d,%d), reference (%d,%d)", trial, seq, idx, ref[ri].seq, ref[ri].idx)
			}
			if !stale {
				l := live[seq]
				for i, v := range l {
					if v == idx {
						live[seq] = append(l[:i], l[i+1:]...)
						break
					}
				}
			}
			ref = append(ref[:ri], ref[ri+1:]...)
		}

		for step := 0; step < 300; step++ {
			switch op := rng.Intn(10); {
			case op < 5: // enqueue on a block within the ring window
				seq := oldest + int64(rng.Intn(8))
				if seq > youngest {
					youngest = seq
				}
				idx := rng.Intn(128)
				dup := false
				for _, v := range live[seq] {
					if v == idx {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				tl.enqueue(seq, idx, mask)
				live[seq] = append(live[seq], idx)
				ref = append(ref, ent{seq: seq, idx: idx})
			case op < 8: // pop
				popBoth()
			default: // squash the youngest block holding entries
				var victim int64 = -1
				for seq, l := range live {
					if len(l) > 0 && seq > victim {
						victim = seq
					}
				}
				if victim < 0 {
					continue
				}
				tl.reclaim(victim, mask)
				for i := range ref {
					if ref[i].seq == victim {
						ref[i].dead = true
					}
				}
				live[victim] = nil
				// The window base may advance past fully-dead blocks; keep
				// it at the oldest block that still has live entries.
				for oldest <= youngest && len(live[oldest]) == 0 {
					oldest++
				}
			}
		}
		for tl.hasIssueWork() {
			popBoth()
		}
		if len(ref) != 0 {
			t.Fatalf("trial %d: reference still holds %d entries", trial, len(ref))
		}
	}
}
