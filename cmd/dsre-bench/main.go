// dsre-bench regenerates the tables and figures of the paper's evaluation
// (experiments E1..E10, indexed in DESIGN.md).
//
// Usage:
//
//	dsre-bench                 # run everything at full size
//	dsre-bench -quick          # small sizes, for smoke runs
//	dsre-bench -only E2,E4     # a subset of experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	quick := flag.Bool("quick", false, "use small workload sizes")
	only := flag.String("only", "", "comma-separated experiment IDs (e.g. E2,E4); empty runs all")
	flag.Parse()

	o := experiments.Opts{Quick: *quick}
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	start := time.Now()
	ran := 0
	show := func(t *stats.Table) {
		fmt.Println(t)
		ran++
	}

	if sel("E1") {
		show(experiments.E1ConfigTable())
	}
	if sel("E2") || sel("E3") {
		e2, e3, sum := experiments.E2E3Speedup(o)
		if sel("E2") {
			show(e2)
		}
		if sel("E3") {
			show(e3)
		}
		fmt.Printf("headline: DSRE vs storeset+flush geomean speedup = %.2fx all kernels, %.2fx conflict kernels (paper: 1.17x on SPEC)\n",
			sum.DSREOverStoreSet, sum.DSREOverStoreSetConflict)
		fmt.Printf("headline: DSRE reaches %.0f%% of oracle (paper: 82%%)\n\n", 100*sum.DSREOfOracle)
	}
	if sel("E4") {
		show(experiments.E4WindowScaling(o))
	}
	if sel("E5") {
		show(experiments.E5Misspec(o))
	}
	if sel("E6") {
		show(experiments.E6CommitWave(o))
	}
	if sel("E7") {
		show(experiments.E7Suppression(o))
	}
	if sel("E8") {
		show(experiments.E8WaveSizes(o))
	}
	if sel("E9") {
		show(experiments.E9HopLatency(o))
	}
	if sel("E10") {
		show(experiments.E10StoreSetSize(o))
	}
	if sel("E11") {
		show(experiments.E11BlockPredictors(o))
	}
	if sel("E12") {
		show(experiments.E12WorkBreakdown(o))
	}
	if sel("E13") {
		show(experiments.E13Placement(o))
	}
	if sel("E14") {
		show(experiments.E14DTileBanks(o))
	}
	if sel("E15") {
		show(experiments.E15LSQCapacity(o))
	}
	if sel("E16") {
		show(experiments.E16ValuePrediction(o))
	}

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched %q\n", *only)
		os.Exit(1)
	}
	fmt.Printf("(%d experiment groups in %v)\n", ran, time.Since(start).Round(time.Millisecond))
}
