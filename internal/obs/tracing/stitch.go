package tracing

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/telemetry"
)

// OriginDaemon is the chain origin the daemon stamps on its own queue-side
// span chains; every other non-empty origin is a fleet worker's ID.
const OriginDaemon = "daemon"

// WriteStitched renders every span chain belonging to one trace as a
// multi-process Chrome trace: process 0 is the daemon (one thread lane per
// lease holder), and each worker that shipped spans gets its own process
// with one thread lane per engine slot.  Worker chains carry offsets on
// the worker's local timeline; they are re-anchored onto the daemon
// timeline at the lease grant of the daemon chain sharing their span ID,
// so the stitched view reads as one coherent request tree.
func WriteStitched(w io.Writer, trace string, jobs []obs.JobSpans) error {
	var sel []obs.JobSpans
	for _, j := range jobs {
		if j.Trace == trace && len(j.Phases) > 0 {
			sel = append(sel, j)
		}
	}

	b := telemetry.NewTraceBuilder()
	b.SetMeta("source", "dsre-serve")
	b.SetMeta("trace", trace)
	b.SetMeta("time_unit", "wall microseconds (daemon timeline)")

	// Daemon chains anchor the timeline; index lease grants by span ID.
	grantNS := map[string]int64{}
	laneName := map[int]string{}
	origins := map[string]bool{}
	for _, j := range sel {
		if isDaemonChain(j) {
			if ns, ok := leaseGrantNS(j); ok {
				grantNS[j.Span] = ns
			}
			if j.Peer != "" {
				laneName[j.Worker] = j.Peer
			}
		} else {
			origins[j.Origin] = true
		}
	}

	b.Process(0, "daemon")
	lanes := make([]int, 0, len(laneName))
	for lane := range laneName { //lint:ordered — lanes are sorted immediately below
		lanes = append(lanes, lane)
	}
	sort.Ints(lanes)
	for _, lane := range lanes {
		b.Thread(0, lane, "lease "+laneName[lane])
	}

	workerPID := map[string]int{}
	names := make([]string, 0, len(origins))
	for o := range origins { //lint:ordered — names are sorted immediately below
		names = append(names, o)
	}
	sort.Strings(names)
	for i, o := range names {
		workerPID[o] = i + 1
		b.Process(i+1, "worker "+o)
	}

	slotSeen := map[[2]int]bool{}
	for _, j := range sel {
		pid, shift := 0, int64(0)
		if !isDaemonChain(j) {
			pid = workerPID[j.Origin]
			if anchor, ok := grantNS[j.Span]; ok {
				shift = anchor - j.Phases[0].StartNS
			}
			if key := [2]int{pid, j.Worker}; !slotSeen[key] {
				slotSeen[key] = true
				b.Thread(pid, j.Worker, fmt.Sprintf("slot %d", j.Worker))
			}
		}
		start := j.Phases[0].StartNS + shift
		end := j.Phases[len(j.Phases)-1].EndNS + shift
		b.Span(pid, j.Worker, j.Name, "job", start/1000, (end-start)/1000, map[string]any{
			"hash": j.Hash, "status": j.Status, "cache_hit": j.CacheHit,
			"trace": j.Trace, "span": j.Span, "origin": j.Origin, "attempt": j.Attempt,
		})
		for _, ph := range j.Phases {
			b.Span(pid, j.Worker, ph.Phase.String(), "phase",
				(ph.StartNS+shift)/1000, (ph.EndNS-ph.StartNS)/1000, nil)
		}
	}
	return b.Write(w)
}

func isDaemonChain(j obs.JobSpans) bool {
	return j.Origin == OriginDaemon || j.Origin == ""
}

// leaseGrantNS returns the daemon-side lease grant instant: the start of
// the chain's remote-run phase.
func leaseGrantNS(j obs.JobSpans) (int64, bool) {
	for _, ph := range j.Phases {
		if ph.Phase == obs.PhaseRemoteRun {
			return ph.StartNS, true
		}
	}
	return 0, false
}

// Mismatch is one telescoping-invariant violation found by Reconcile.
type Mismatch struct {
	Hash        string `json:"hash"`
	Span        string `json:"span"`
	LeaseHeldNS int64  `json:"lease_held_ns"` // -1 for an orphan worker chain
	WorkerNS    int64  `json:"worker_ns"`
	Detail      string `json:"detail"`
}

// Reconcile checks the fleet's telescoping invariant: for every daemon-side
// lease chain that a worker shipped spans for, the worker's span total must
// fit the daemon's observed lease-held wall time (lease grant to upload)
// within tol — the heartbeat tolerance.  Abandoned chains (expired leases)
// have no worker partner and are skipped; a worker chain whose span ID
// matches no daemon chain is reported as an orphan.
func Reconcile(jobs []obs.JobSpans, tol time.Duration) []Mismatch {
	held := map[string]int64{}
	for _, j := range jobs {
		if !isDaemonChain(j) || j.Span == "" || j.Status == "abandoned" {
			continue
		}
		if grant, ok := leaseGrantNS(j); ok {
			held[j.Span] = j.Phases[len(j.Phases)-1].EndNS - grant
		}
	}

	tolNS := tol.Nanoseconds()
	var bad []Mismatch
	for _, j := range jobs {
		if isDaemonChain(j) || j.Span == "" || len(j.Phases) == 0 {
			continue
		}
		workerNS := j.Phases[len(j.Phases)-1].EndNS - j.Phases[0].StartNS
		heldNS, ok := held[j.Span]
		if !ok {
			bad = append(bad, Mismatch{
				Hash: j.Hash, Span: j.Span, LeaseHeldNS: -1, WorkerNS: workerNS,
				Detail: "worker chain matches no daemon lease chain",
			})
			continue
		}
		if d := workerNS - heldNS; d > tolNS {
			bad = append(bad, Mismatch{
				Hash: j.Hash, Span: j.Span, LeaseHeldNS: heldNS, WorkerNS: workerNS,
				Detail: fmt.Sprintf("worker spans exceed lease-held wall time by %s", time.Duration(d)),
			})
		} else if d := heldNS - workerNS; d > tolNS {
			bad = append(bad, Mismatch{
				Hash: j.Hash, Span: j.Span, LeaseHeldNS: heldNS, WorkerNS: workerNS,
				Detail: fmt.Sprintf("lease-held wall time exceeds worker spans by %s", time.Duration(d)),
			})
		}
	}
	sort.Slice(bad, func(a, b int) bool {
		if bad[a].Hash != bad[b].Hash {
			return bad[a].Hash < bad[b].Hash
		}
		return bad[a].Span < bad[b].Span
	})
	return bad
}
