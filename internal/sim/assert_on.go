//go:build dsre_assert

package sim

// assertsEnabled turns on the runtime invariant checks (see assert.go).
const assertsEnabled = true
