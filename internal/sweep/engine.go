package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

// Job statuses recorded in results and manifests.
const (
	StatusOK     = "ok"
	StatusFailed = "failed"
)

// Runner executes one spec and returns its report.  The default runner
// simulates through the repro façade with memoized workload preparation;
// tests substitute their own.
type Runner func(ctx context.Context, spec JobSpec) (*telemetry.Report, error)

// Options configures an Engine.
type Options struct {
	// Workers bounds concurrent jobs; <= 0 means GOMAXPROCS.
	Workers int
	// Timeout bounds each job attempt; zero means no per-job timeout.
	Timeout time.Duration
	// Retries is how many extra attempts a failing job gets (transient
	// failures; a deterministic failure just fails that many times).
	Retries int
	// Store caches results content-addressed (a *DirStore on disk, a
	// serve.RemoteStore over HTTP); nil disables caching.
	Store Store
	// Progress receives per-job completion lines; nil is silent.
	Progress *Reporter
	// Runner overrides job execution (tests); nil selects the default
	// simulate-and-verify runner.
	Runner Runner
	// Obs receives fleet-level observability signals: metrics, lifecycle
	// events, per-job spans and live progress.  nil disables every hook at
	// the cost of one pointer compare — the zero-alloc fast path and
	// byte-identity pins run with Obs off.
	Obs *obs.SweepObs
}

// JobResult is the outcome of one job.  Report is carried in memory for
// folding into experiment tables but excluded from manifests — the store
// holds the payload, the manifest the metadata.
type JobResult struct {
	Spec     JobSpec `json:"spec"`
	Hash     string  `json:"hash"`
	Status   string  `json:"status"`
	CacheHit bool    `json:"cache_hit"`
	Attempts int     `json:"attempts"`
	Elapsed  int64   `json:"elapsed_ms"`
	Error    string  `json:"error,omitempty"`

	Report *telemetry.Report `json:"-"`
}

// Summary is one Engine.Run's outcome: per-job results in spec order plus
// the fold every consumer wants.
type Summary struct {
	Jobs      []JobResult
	OK        int
	Failed    int
	CacheHits int
	Elapsed   time.Duration
}

// FirstError returns the first failed job's error, or "".
func (s *Summary) FirstError() string {
	for _, j := range s.Jobs {
		if j.Status == StatusFailed {
			return fmt.Sprintf("%s: %s", j.Spec.Name(), j.Error)
		}
	}
	return ""
}

// Engine executes job specs on a bounded worker pool.  It may be used for
// several Run calls; the workload-preparation memo persists across them,
// so successive experiments over the same kernels share program builds and
// golden-model runs.
type Engine struct {
	opts Options

	// Live-run throughput tally (see Tally).  Atomics because the default
	// runner executes on the worker pool.
	simCycles     atomic.Int64
	simWallMicros atomic.Int64

	mu    sync.Mutex
	preps map[prepKey]*prepEntry
}

// Tally returns the cumulative simulated cycles and simulator wall time of
// every live (non-cached) run the default runner has executed on this
// engine.  Cache hits and replayed duplicates contribute nothing, so the
// quotient is a genuine simulation rate; dsre-bench diffs successive
// tallies to attribute throughput to each artifact.
func (e *Engine) Tally() (cycles int64, wall time.Duration) {
	return e.simCycles.Load(), time.Duration(e.simWallMicros.Load()) * time.Microsecond
}

// New creates an engine.  The zero Options value is usable: GOMAXPROCS
// workers, no timeout, no retries, no cache, silent.
func New(opts Options) *Engine {
	e := &Engine{opts: opts, preps: make(map[prepKey]*prepEntry)}
	if e.opts.Runner == nil {
		e.opts.Runner = e.simulate
	}
	// A store that can report payload corruption feeds the observer's
	// store_corrupt event; corruption stays a plain miss either way.
	if e.opts.Obs != nil && e.opts.Store != nil {
		if h, ok := e.opts.Store.(interface {
			SetOnCorrupt(func(hash, detail string))
		}); ok {
			obs := e.opts.Obs
			h.SetOnCorrupt(func(hash, detail string) {
				obs.StoreCorrupt(hash, detail, time.Now())
			})
		}
	}
	return e
}

// prepKey identifies a workload build: everything that determines the
// program, initial state and golden-model run.
type prepKey struct {
	workload     string
	size, unroll int
	seed         uint64
}

// prepEntry memoizes one repro.Prepare call; the Once gates concurrent
// jobs of one experiment onto a single build.
type prepEntry struct {
	once sync.Once
	p    *repro.Prepared
	err  error
}

// prepare returns the memoized workload+golden for a spec, building it at
// most once per engine even under concurrency.
func (e *Engine) prepare(s JobSpec) (*repro.Prepared, error) {
	k := prepKey{s.Workload, s.Size, s.Unroll, s.Seed}
	e.mu.Lock()
	en, ok := e.preps[k]
	if !ok {
		en = &prepEntry{}
		e.preps[k] = en
	}
	e.mu.Unlock()
	en.once.Do(func() {
		en.p, en.err = repro.Prepare(k.workload, k.size, k.unroll, k.seed)
	})
	return en.p, en.err
}

// spanCtxKey carries the job's *obs.JobObs through the runner context so
// the default runner can split the prepare phase out of the run span.
// Custom runners simply never look it up and fold prepare into run.
type spanCtxKey struct{}

// jobSpan returns the job observer threaded through the context, or nil.
func jobSpan(ctx context.Context) *obs.JobObs {
	jo, _ := ctx.Value(spanCtxKey{}).(*obs.JobObs)
	return jo
}

// simulate is the default runner: memoized prepare, then a verified
// simulation under the job's context.
func (e *Engine) simulate(ctx context.Context, spec JobSpec) (*telemetry.Report, error) {
	p, err := e.prepare(spec)
	if jo := jobSpan(ctx); jo != nil {
		jo.Mark(obs.PhasePrepare, time.Now())
	}
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := repro.RunPrepared(ctx, spec.Config(), p)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	e.simCycles.Add(res.Cycles)
	e.simWallMicros.Add(wall.Microseconds())
	if e.opts.Obs != nil {
		e.opts.Obs.AddSimCycles(res.Cycles)
	}
	rep := res.Report()
	rep.StampWall(wall)
	return rep, nil
}

// Run executes the specs and returns their results in spec order.  A
// failing, panicking or timed-out job yields a failed JobResult with the
// spec attached — never a dead sweep; the only error Run itself returns is
// the context's, after recording every job that did not get to run.
func (e *Engine) Run(ctx context.Context, specs []JobSpec) (*Summary, error) {
	start := time.Now()
	results := make([]JobResult, len(specs))

	// Hash everything up front: an unhashable spec is invalid and fails
	// without occupying a worker, and duplicate hashes collapse onto one
	// execution (distinct spellings of the same point are common — an
	// explicit default equals the implied one).
	type group struct{ indices []int }
	groups := make(map[string]*group)
	var order []string
	for i, s := range specs {
		h, err := s.Hash()
		if err == nil {
			err = s.Validate()
		}
		if err != nil {
			results[i] = JobResult{Spec: s, Status: StatusFailed, Attempts: 0, Error: err.Error()}
			continue
		}
		results[i].Spec = s
		results[i].Hash = h
		g, ok := groups[h]
		if !ok {
			g = &group{}
			groups[h] = g
			order = append(order, h)
		}
		g.indices = append(g.indices, i)
	}

	if e.opts.Progress != nil {
		e.opts.Progress.begin(len(specs), len(specs)-len(order))
	}

	workers := e.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(order) && len(order) > 0 {
		workers = len(order)
	}

	// One Grid handle per Run; nil when observability is off so every hook
	// below stays a single pointer compare.
	var grid *obs.Grid
	if e.opts.Obs != nil {
		grid = e.opts.Obs.GridBegin(len(specs), len(order), workers, time.Now())
	}

	jobs := make(chan string)
	var wg sync.WaitGroup
	var resMu sync.Mutex // guards results writes from workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for h := range jobs {
				g := groups[h]
				r := e.executeJob(ctx, specs[g.indices[0]], h, grid, worker, len(g.indices))
				resMu.Lock()
				for gi, idx := range g.indices {
					rr := r
					rr.Spec = specs[idx]
					// The extra spellings of a deduplicated point did not
					// recompute: account them as hits.
					if gi > 0 && rr.Status == StatusOK {
						rr.CacheHit = true
						rr.Elapsed = 0
					}
					results[idx] = rr
				}
				resMu.Unlock()
				if e.opts.Progress != nil {
					e.opts.Progress.jobDone(r, len(g.indices))
				}
			}
		}(w)
	}

feed:
	for _, h := range order {
		select {
		case jobs <- h:
		case <-ctx.Done():
			// The sweep is draining: in-flight jobs finish, the rest of the
			// queue is abandoned (and recorded as not-run below).
			if grid != nil {
				grid.Drain(ctx.Err(), time.Now())
			}
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	// Jobs the cancelled context never fed are recorded as failed, spec
	// attached, so a resumed sweep knows exactly what is left.
	if err := ctx.Err(); err != nil {
		for i := range results {
			if results[i].Status == "" {
				results[i].Status = StatusFailed
				results[i].Error = fmt.Sprintf("not run: %v", err)
			}
		}
	}

	sum := &Summary{Jobs: results, Elapsed: time.Since(start)}
	for i := range results {
		switch results[i].Status {
		case StatusOK:
			sum.OK++
			if results[i].CacheHit {
				sum.CacheHits++
			}
		default:
			sum.Failed++
		}
	}
	if grid != nil {
		grid.End(sum.OK, sum.Failed, sum.CacheHits, time.Now())
	}
	if e.opts.Progress != nil {
		e.opts.Progress.finish(sum)
	}
	return sum, ctx.Err()
}

// executeJob runs one unique job: cache probe, then bounded attempts with
// panic isolation and an optional per-attempt timeout.  When observability
// is on, the job's lifecycle is recorded as a contiguous span chain
// (queue-wait, cache-lookup, prepare, run, store-write) plus lifecycle
// events; copies is how many specs deduplicated onto this execution, so
// the observer's counters reconcile with the manifest totals.
func (e *Engine) executeJob(ctx context.Context, spec JobSpec, hash string, grid *obs.Grid, worker, copies int) (res JobResult) {
	res = JobResult{Spec: spec, Hash: hash}
	var jo *obs.JobObs
	if grid != nil {
		jo = grid.StartJob(worker, spec.Name(), hash, copies, time.Now())
		defer func() {
			jo.Done(res.Status, res.CacheHit, res.Attempts, res.Elapsed, time.Now())
		}()
		ctx = context.WithValue(ctx, spanCtxKey{}, jo)
	}

	if e.opts.Store != nil {
		rec, err := e.opts.Store.Get(hash)
		if jo != nil {
			jo.Mark(obs.PhaseCacheLookup, time.Now())
		}
		if err == nil && rec != nil {
			res.Status = StatusOK
			res.CacheHit = true
			res.Report = rec.Report
			return res
		}
	}

	start := time.Now()
	attempts := 1 + e.opts.Retries
	var lastErr error
	for a := 1; a <= attempts; a++ {
		res.Attempts = a
		rep, err := e.attempt(ctx, spec)
		if err == nil {
			if jo != nil {
				jo.Mark(obs.PhaseRun, time.Now())
			}
			res.Status = StatusOK
			res.Report = rep
			res.Elapsed = time.Since(start).Milliseconds()
			if e.opts.Store != nil {
				canon, cerr := spec.Canonical()
				if cerr != nil {
					canon = spec
				}
				perr := e.opts.Store.Put(&Record{Hash: hash, Spec: canon, Report: rep})
				if perr != nil {
					// A write failure degrades the cache, not the sweep.
					res.Error = fmt.Sprintf("cache write failed: %v", perr)
				}
				if jo != nil {
					jo.StoreWrite(perr == nil, time.Now())
				}
			}
			return res
		}
		lastErr = err
		if jo != nil {
			var pe *panicError
			if errors.As(err, &pe) {
				jo.Panic(a, err, time.Now())
			}
			if a < attempts && ctx.Err() == nil {
				jo.Retry(a, err, time.Now())
			}
		}
		if ctx.Err() != nil {
			// The sweep itself is over; don't burn retries on it.
			break
		}
	}
	if jo != nil {
		// Close the final failed attempt's run span.
		jo.Mark(obs.PhaseRun, time.Now())
	}
	res.Status = StatusFailed
	res.Error = lastErr.Error()
	res.Elapsed = time.Since(start).Milliseconds()
	return res
}

// panicError marks an attempt that died by panic rather than by returning
// an error, so the observer can distinguish a panic (its own counter and
// event) from an ordinary failure.  Error renders the same "panic: ..."
// message the engine always produced.
type panicError struct {
	val   any
	stack []byte
}

func (p *panicError) Error() string {
	return fmt.Sprintf("panic: %v\n%s", p.val, p.stack)
}

// attempt is one isolated execution: its own timeout, and a panic in the
// simulator surfaces as this job's error instead of killing the sweep.
func (e *Engine) attempt(ctx context.Context, spec JobSpec) (rep *telemetry.Report, err error) {
	if e.opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.opts.Timeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			rep = nil
			err = &panicError{val: r, stack: debug.Stack()}
		}
	}()
	return e.opts.Runner(ctx, spec)
}

// Reports unwraps a fully-successful summary into its reports, in spec
// order.  Any failed job is an error carrying the first failure — the
// convenience path for callers (the experiment harness) that treat a
// failed point as a broken build rather than a measurement.
func (s *Summary) Reports() ([]*telemetry.Report, error) {
	reps := make([]*telemetry.Report, len(s.Jobs))
	for i := range s.Jobs {
		if s.Jobs[i].Status != StatusOK {
			return nil, fmt.Errorf("sweep: job %s failed: %s", s.Jobs[i].Spec.Name(), s.Jobs[i].Error)
		}
		reps[i] = s.Jobs[i].Report
	}
	return reps, nil
}
