package sched

import "repro/internal/bitset"

// Wheel is a calendar queue with the same contract as Queue — events pop in
// (At, insertion order) — but O(1) push and pop instead of heap sifting: a
// power-of-two ring of per-cycle FIFO buckets, with a bitset.Ring occupancy
// mask so advancing to the next scheduled cycle is a rotate-and-CLZ instead
// of a scan.  The zero value is ready to use.
//
// The window invariant: every queued At lies in [min, min+size), where size
// is the bucket count.  Within that window the bucket index At&(size-1) is
// collision-free, so each bucket holds events of exactly one cycle and
// FIFO-per-bucket is FIFO-per-cycle.  A push outside the window grows the
// ring until it fits.
type Wheel[T any] struct {
	buckets [][]T
	// at[i] is the cycle bucket i currently holds (valid while occupied).
	at []int64
	// heads[i] indexes the first unpopped event of bucket i; the tail is
	// reset lazily when the bucket empties, retaining its backing array.
	heads []int
	occ   bitset.Ring
	count int
	// min/max bound the queued cycles (valid while count > 0).
	min, max int64
}

// Len returns the number of queued events.
func (w *Wheel[T]) Len() int { return w.count }

// MinAt returns the cycle of the earliest event; callers must check
// Len() > 0 first.
func (w *Wheel[T]) MinAt() int64 { return w.min }

// Push schedules a payload for cycle at.  Pushing a cycle earlier than an
// already-queued one is allowed as long as the spread still fits the window
// (it grows otherwise).
func (w *Wheel[T]) Push(at int64, payload T) {
	if w.buckets == nil {
		w.init(64)
	}
	lo, hi := at, at
	if w.count > 0 {
		if w.min < lo {
			lo = w.min
		}
		if w.max > hi {
			hi = w.max
		}
	}
	if hi-lo >= int64(len(w.buckets)) {
		w.grow(hi - lo + 1)
	}
	i := int(at) & (len(w.buckets) - 1)
	if len(w.buckets[i]) == w.heads[i] {
		w.buckets[i] = w.buckets[i][:0]
		w.heads[i] = 0
		w.at[i] = at
		w.occ.Set(i)
	}
	w.buckets[i] = append(w.buckets[i], payload)
	w.count++
	w.min, w.max = lo, hi
}

// Pop removes and returns the earliest event's payload and cycle; callers
// must check Len() > 0 first.
func (w *Wheel[T]) Pop() (int64, T) {
	i := int(w.min) & (len(w.buckets) - 1)
	b := w.buckets[i]
	payload := b[w.heads[i]]
	var zero T
	b[w.heads[i]] = zero // release payload references for the GC
	w.heads[i]++
	w.count--
	at := w.min
	if w.heads[i] == len(b) {
		w.buckets[i] = b[:0]
		w.heads[i] = 0
		w.occ.Clear(i)
		if w.count > 0 {
			j := w.occ.FirstFrom((i + 1) & (len(w.buckets) - 1))
			w.min = w.at[j]
		}
	}
	return at, payload
}

func (w *Wheel[T]) init(size int) {
	w.buckets = make([][]T, size)
	w.at = make([]int64, size)
	w.heads = make([]int, size)
	w.occ = bitset.NewRing(size)
}

// grow rebuilds the ring with at least `window` buckets.  Occupied buckets
// move wholesale — each holds a single cycle, so intra-cycle FIFO order is
// untouched — and the window invariant makes the new placement
// collision-free.
func (w *Wheel[T]) grow(window int64) {
	size := len(w.buckets)
	for int64(size) < window {
		size <<= 1
	}
	ob, oa, oh := w.buckets, w.at, w.heads
	occ := w.occ
	w.init(size)
	for i := range ob {
		if !occ.Test(i) {
			continue
		}
		j := int(oa[i]) & (size - 1)
		w.buckets[j], w.at[j], w.heads[j] = ob[i], oa[i], oh[i]
		w.occ.Set(j)
	}
}
