// Package telemetry is the simulator's observability layer: a ring-buffered
// per-cycle time-series sampler, a Chrome trace-event (catapult) exporter
// for trace collections, and machine-readable run reports.  The paper's
// claims are all dynamic behaviours — wave sizes, LSQ occupancy,
// re-execution bursts — so this package exists to make *when* and *why* a
// run diverges visible to humans (chrome://tracing, CSV) and to CI (JSON).
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
)

// DefaultSamplerCap bounds the ring buffer when NewSampler is given a
// non-positive capacity: at the default -sample-every of 1000 cycles this
// covers 65M cycles before the oldest windows are overwritten.
const DefaultSamplerCap = 1 << 16

// Sampler is a ring buffer of telemetry samples implementing sim.SampleSink.
// When the buffer fills, the oldest windows are overwritten (time-series
// tooling wants the most recent history; Overwritten reports the loss).
type Sampler struct {
	buf   []sim.Sample
	start int   // index of the oldest sample
	n     int   // samples currently held
	total int64 // samples ever recorded
}

// NewSampler returns a sampler holding up to cap windows (<=0 means
// DefaultSamplerCap).
func NewSampler(cap int) *Sampler {
	if cap <= 0 {
		cap = DefaultSamplerCap
	}
	return &Sampler{buf: make([]sim.Sample, 0, cap)}
}

// Sample records one window, overwriting the oldest when full.
func (s *Sampler) Sample(v sim.Sample) {
	s.total++
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, v)
		s.n++
		return
	}
	s.buf[s.start] = v
	s.start = (s.start + 1) % len(s.buf)
}

// Len returns the number of samples held.
func (s *Sampler) Len() int { return s.n }

// Overwritten returns how many samples were lost to ring wrap-around.
func (s *Sampler) Overwritten() int64 { return s.total - int64(s.n) }

// Last returns the most recent sample.
func (s *Sampler) Last() (sim.Sample, bool) {
	if s.n == 0 {
		return sim.Sample{}, false
	}
	return s.buf[(s.start+s.n-1)%len(s.buf)], true
}

// Samples returns the held windows in chronological order.
func (s *Sampler) Samples() []sim.Sample {
	out := make([]sim.Sample, 0, s.n)
	for i := 0; i < s.n; i++ {
		out = append(out, s.buf[(s.start+i)%len(s.buf)])
	}
	return out
}

// Reset discards all samples, keeping the allocation.
func (s *Sampler) Reset() {
	s.buf = s.buf[:0]
	s.start, s.n, s.total = 0, 0, 0
}

// csvHeader lists the CSV columns, matching the Sample JSON field names
// (the cpi_* columns flatten the nested windowed CPI stack).
var csvHeader = []string{
	"cycle", "window", "ipc", "committed_blocks", "in_flight_blocks",
	"window_insts", "lsq_occupancy", "noc_pending", "waves", "reexecs",
	"flushes", "l1d_miss_rate", "l2_miss_rate",
	"cpi_commit", "cpi_wave", "cpi_bpred", "cpi_fetch", "cpi_drain",
	"cpi_cache_miss", "cpi_issue", "cpi_noc",
}

// WriteCSV emits the held windows as CSV with a header row.
func (s *Sampler) WriteCSV(w io.Writer) error {
	for i, h := range csvHeader {
		sep := ","
		if i == len(csvHeader)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "%s%s", h, sep); err != nil {
			return err
		}
	}
	for _, v := range s.Samples() {
		_, err := fmt.Fprintf(w, "%d,%d,%.6f,%d,%d,%d,%d,%d,%d,%d,%d,%.6f,%.6f,%d,%d,%d,%d,%d,%d,%d,%d\n",
			v.Cycle, v.Window, v.IPC, v.CommittedBlocks, v.InFlightBlocks,
			v.WindowInsts, v.LSQOccupancy, v.NoCPending, v.Waves, v.Reexecs,
			v.Flushes, v.L1DMissRate, v.L2MissRate,
			v.CPI.Commit, v.CPI.Wave, v.CPI.BPred, v.CPI.Fetch, v.CPI.Drain,
			v.CPI.CacheMiss, v.CPI.Issue, v.CPI.NoC)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON emits the held windows as a JSON array.
func (s *Sampler) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(s.Samples())
}
