package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// memSink captures lifecycle events in memory for assertions.
type memSink struct {
	mu     sync.Mutex
	events []obs.Event
}

func (s *memSink) Emit(e obs.Event) {
	s.mu.Lock()
	s.events = append(s.events, e)
	s.mu.Unlock()
}

func (s *memSink) all() []obs.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]obs.Event(nil), s.events...)
}

func (s *memSink) count(kind obs.EventKind, match func(obs.Event) bool) int {
	n := 0
	for _, e := range s.all() {
		if e.Kind == kind && (match == nil || match(e)) {
			n++
		}
	}
	return n
}

// fakeRunner returns a deterministic spec-dependent report without touching
// the simulator.  It never stamps wall-clock fields, so reports (and the
// sealed records around them) are byte-stable across runs.
func fakeRunner(delay time.Duration) sweep.Runner {
	return func(ctx context.Context, spec sweep.JobSpec) (*telemetry.Report, error) {
		if delay > 0 {
			t := time.NewTimer(delay)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-t.C:
			}
		}
		c, err := spec.Canonical()
		if err != nil {
			return nil, err
		}
		return &telemetry.Report{
			Schema:   telemetry.ReportSchema,
			Workload: c.Workload,
			Scheme:   c.Scheme,
			Size:     c.Size,
			Cycles:   1000 + int64(c.Size),
			Insts:    500,
			IPC:      0.5,
			Blocks:   7,
		}, nil
	}
}

// daemon bundles one in-process dsre-serve daemon under httptest.
type daemon struct {
	srv   *serve.Server
	ts    *httptest.Server
	store *sweep.DirStore
	sink  *memSink
	spans *obs.SpanLog
}

// startDaemon builds and starts a daemon.  localWorkers > 0 wires a local
// engine driven by fakeRunner(runnerDelay); 0 runs fleet-only.
func startDaemon(t *testing.T, cfg serve.Config, localWorkers int, runnerDelay time.Duration) *daemon {
	t.Helper()
	store, err := sweep.OpenStore(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	sink := &memSink{}
	reg := obs.NewRegistry()
	start := time.Now()
	spans := obs.NewSpanLog()
	cfg.Store = store
	cfg.Obs = obs.NewServeObs(reg, start, sink, spans, localWorkers)
	cfg.Sink = sink
	if localWorkers > 0 {
		engObs := obs.NewSweepObsInto(reg, start, sink, spans)
		cfg.Engine = sweep.New(sweep.Options{
			Workers: localWorkers, Store: store, Obs: engObs, Runner: fakeRunner(runnerDelay),
		})
		cfg.EngineObs = engObs
	}
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Drain("test-cleanup", 2*time.Second)
		ts.Close()
	})
	return &daemon{srv: srv, ts: ts, store: store, sink: sink, spans: spans}
}

func (d *daemon) post(t *testing.T, path, tenant string, body any) (int, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, d.ts.URL+path, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-DSRE-Tenant", tenant)
	}
	resp, err := d.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

func (d *daemon) get(t *testing.T, path string, v any) int {
	t.Helper()
	resp, err := d.ts.Client().Get(d.ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

func (d *daemon) submit(t *testing.T, tenant string, grid *sweep.Grid) *serve.SweepView {
	t.Helper()
	code, body := d.post(t, "/v1/sweeps", tenant, serve.SubmitRequest{Schema: serve.SubmitSchema, Grid: grid})
	if code != http.StatusCreated {
		t.Fatalf("submit: HTTP %d: %s", code, body)
	}
	var v serve.SweepView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	return &v
}

func (d *daemon) waitFinished(t *testing.T, id string, deadline time.Duration) *serve.SweepView {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		var v serve.SweepView
		if code := d.get(t, "/v1/sweeps/"+id, &v); code != http.StatusOK {
			t.Fatalf("sweep %s: HTTP %d", id, code)
		}
		if v.Finished {
			return &v
		}
		if time.Now().After(stop) {
			t.Fatalf("sweep %s not finished after %s: %+v", id, deadline, v)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (d *daemon) progress(t *testing.T) *obs.ServeProgressView {
	t.Helper()
	var v obs.ServeProgressView
	if code := d.get(t, "/progress", &v); code != http.StatusOK {
		t.Fatalf("/progress: HTTP %d", code)
	}
	return &v
}

func testGrid() *sweep.Grid {
	return &sweep.Grid{Workloads: []string{"vecsum"}, Schemes: []string{"dsre", "oracle"}, Sizes: []int{32}}
}

// TestDaemonEndToEndLocal drives the full local-execution path over HTTP:
// submit, poll to completion, fetch manifest and per-artifact reports, and
// pin the served report bytes to what the runner produces directly.
func TestDaemonEndToEndLocal(t *testing.T) {
	d := startDaemon(t, serve.Config{BatchLinger: -1}, 2, 0)

	v := d.submit(t, "e2e", testGrid())
	if v.Total != 2 || v.Unique != 2 {
		t.Fatalf("submit view: total %d unique %d, want 2/2", v.Total, v.Unique)
	}
	v = d.waitFinished(t, v.Sweep, 5*time.Second)
	if v.Done != 2 || v.Failed != 0 || v.CacheHits != 0 {
		t.Fatalf("cold sweep: done %d failed %d hits %d, want 2/0/0", v.Done, v.Failed, v.CacheHits)
	}

	var m sweep.Manifest
	if code := d.get(t, "/v1/sweeps/"+v.Sweep+"/manifest", &m); code != http.StatusOK {
		t.Fatalf("manifest: HTTP %d", code)
	}
	if m.Schema != sweep.ManifestSchema || m.Totals.Jobs != 2 || m.Totals.OK != 2 {
		t.Fatalf("manifest: %+v", m.Totals)
	}

	// Every served report must be byte-identical to the runner's output for
	// the canonical spec — the serve path adds transport, not content.
	specs, err := testGrid().Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		canon, err := spec.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		h, err := spec.Hash()
		if err != nil {
			t.Fatal(err)
		}
		var got telemetry.Report
		if code := d.get(t, "/v1/artifacts/"+h+"/report", &got); code != http.StatusOK {
			t.Fatalf("report %s: HTTP %d", h, code)
		}
		want, err := fakeRunner(0)(context.Background(), canon)
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, _ := json.Marshal(&got)
		wantJSON, _ := json.Marshal(want)
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("%s: served report differs from direct run\n got: %s\nwant: %s", spec.Name(), gotJSON, wantJSON)
		}

		var rec sweep.Record
		if code := d.get(t, "/v1/artifacts/"+h, &rec); code != http.StatusOK {
			t.Fatalf("artifact %s: HTTP %d", h, code)
		}
		if err := rec.VerifyPayload(); err != nil {
			t.Errorf("served record fails integrity check: %v", err)
		}

		var doc map[string]any
		if code := d.get(t, "/v1/artifacts/"+h+"/explain", &doc); code != http.StatusOK {
			t.Fatalf("explain %s: HTTP %d", h, code)
		}
		if doc["schema"] != "dsre-explain/v1" {
			t.Errorf("explain schema = %v", doc["schema"])
		}
	}

	// A repeat submit resolves entirely from the store at submit time.
	v2 := d.submit(t, "e2e", testGrid())
	if !v2.Finished || v2.Done != 2 || v2.CacheHits != 2 {
		t.Fatalf("warm sweep: %+v, want finished with 2 hits", v2)
	}

	// Accounting identity: every submitted spec is either a cache hit or a
	// live execution.
	p := d.progress(t)
	tot := p.Totals
	if tot.Specs != 4 || tot.Executions != 2 || tot.CacheHits+tot.Executions != tot.Specs {
		t.Errorf("totals: specs %d = hits %d + executions %d expected", tot.Specs, tot.CacheHits, tot.Executions)
	}
	if tot.Queued != 0 || tot.Leased != 0 {
		t.Errorf("queue not drained: %+v", tot)
	}
	if p.Engine == nil {
		t.Error("progress: engine view missing on a local daemon")
	}
}

// TestConcurrentSubmitDedup submits the same grid from several clients at
// once and asserts content-addressed dedup: each unique point executes at
// most once, nothing is lost, and the event log reconciles with the
// submitted spec count.
func TestConcurrentSubmitDedup(t *testing.T) {
	d := startDaemon(t, serve.Config{}, 2, 30*time.Millisecond)

	const clients = 4
	views := make([]*serve.SweepView, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			views[i] = d.submit(t, fmt.Sprintf("c%d", i), testGrid())
		}(i)
	}
	wg.Wait()
	for _, v := range views {
		fin := d.waitFinished(t, v.Sweep, 10*time.Second)
		if fin.Done != 2 || fin.Failed != 0 {
			t.Fatalf("sweep %s: done %d failed %d, want 2/0", fin.Sweep, fin.Done, fin.Failed)
		}
	}

	p := d.progress(t)
	tot := p.Totals
	if tot.Executions != 2 {
		t.Errorf("executions = %d for 2 unique points (duplicated work)", tot.Executions)
	}
	if tot.UploadDuplicates != 0 {
		t.Errorf("upload duplicates = %d in a crash-free run", tot.UploadDuplicates)
	}
	if tot.Specs != clients*2 || tot.CacheHits+tot.Executions != tot.Specs || tot.Failed != 0 {
		t.Errorf("accounting: specs %d, hits %d, executions %d, failed %d", tot.Specs, tot.CacheHits, tot.Executions, tot.Failed)
	}

	// Event-log reconciliation: submitted spec copies == engine job_done
	// copies + cache-satisfied copies (metrics fold of submit hits and
	// dedup copies).
	submitted := 0
	for _, e := range d.sink.all() {
		if e.Kind == obs.EventSubmit && e.Sweep != "" {
			submitted += e.Total
		}
	}
	engineDone := d.sink.count(obs.EventJobDone, func(e obs.Event) bool { return e.Status == sweep.StatusOK })
	if submitted != clients*2 {
		t.Errorf("event log: %d submitted specs, want %d", submitted, clients*2)
	}
	if int64(engineDone) != tot.Executions {
		t.Errorf("event log: %d engine job_done events, metrics say %d executions", engineDone, tot.Executions)
	}
	if int64(submitted) != tot.CacheHits+int64(engineDone) {
		t.Errorf("event log: %d specs != %d cache hits + %d executions", submitted, tot.CacheHits, engineDone)
	}
}

// TestFleetWorkerCrashRequeue kills a worker mid-job through the
// crash-injection hook and asserts the lease expires, the job requeues,
// a second worker completes it, and manifest totals reconcile with the
// daemon's metrics.
func TestFleetWorkerCrashRequeue(t *testing.T) {
	d := startDaemon(t, serve.Config{LeaseTTL: 150 * time.Millisecond, MaxAttempts: 3}, 0, 0)

	grid := &sweep.Grid{Workloads: []string{"vecsum"}, Schemes: []string{"dsre"}, Sizes: []int{32}}
	v := d.submit(t, "fleet", grid)
	if v.Unique != 1 {
		t.Fatalf("submit: unique %d, want 1", v.Unique)
	}

	// Worker A leases the only job and dies on it.
	crash := fmt.Errorf("injected crash")
	wa, err := serve.NewWorker(serve.WorkerOptions{
		BaseURL: d.ts.URL, ID: "crashy",
		Engine:  sweep.New(sweep.Options{Workers: 1, Runner: fakeRunner(0)}),
		Poll:    10 * time.Millisecond,
		OnLease: func(hash string) error { return crash },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := wa.Run(context.Background()); err != crash {
		t.Fatalf("crashy worker Run = %v, want injected crash", err)
	}

	// Worker B picks the requeued job up once the lease expires.
	wb, err := serve.NewWorker(serve.WorkerOptions{
		BaseURL: d.ts.URL, ID: "steady",
		Engine: sweep.New(sweep.Options{Workers: 1, Runner: fakeRunner(0)}),
		Poll:   10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	wbDone := make(chan error, 1)
	go func() { wbDone <- wb.Run(ctx) }()

	fin := d.waitFinished(t, v.Sweep, 10*time.Second)
	cancel()
	if err := <-wbDone; err != nil {
		t.Fatalf("steady worker: %v", err)
	}
	if fin.Done != 1 || fin.Failed != 0 {
		t.Fatalf("sweep after crash: done %d failed %d, want 1/0", fin.Done, fin.Failed)
	}
	if wb.JobsDone() != 1 {
		t.Errorf("steady worker completed %d jobs, want 1", wb.JobsDone())
	}

	p := d.progress(t)
	tot := p.Totals
	if tot.LeaseExpiries < 1 || tot.Requeues < 1 {
		t.Errorf("expiries %d, requeues %d, want >= 1 each", tot.LeaseExpiries, tot.Requeues)
	}
	if tot.Done != 1 || tot.Failed != 0 || tot.Executions != 1 || tot.Uploads != 1 {
		t.Errorf("totals after crash: %+v", tot)
	}
	if tot.Queued != 0 || tot.Leased != 0 {
		t.Errorf("dangling queue state after recovery: %+v", tot)
	}

	// Manifest totals reconcile with the metrics.
	var m sweep.Manifest
	if code := d.get(t, "/v1/sweeps/"+v.Sweep+"/manifest", &m); code != http.StatusOK {
		t.Fatalf("manifest: HTTP %d", code)
	}
	if int64(m.Totals.OK) != tot.Done || int64(m.Totals.Failed) != tot.Failed {
		t.Errorf("manifest totals %+v do not reconcile with metrics %+v", m.Totals, tot)
	}

	// Event log shows the crash story in order: lease to crashy, expiry,
	// requeue, successful upload from steady.
	if n := d.sink.count(obs.EventLeaseExpired, func(e obs.Event) bool { return e.Peer == "crashy" }); n < 1 {
		t.Errorf("no lease_expired event for the crashed worker")
	}
	if n := d.sink.count(obs.EventRequeue, nil); n < 1 {
		t.Errorf("no requeue event after lease expiry")
	}
	if n := d.sink.count(obs.EventUpload, func(e obs.Event) bool {
		return e.Peer == "steady" && e.Status == sweep.StatusOK
	}); n != 1 {
		t.Errorf("uploads from steady = %d, want 1", n)
	}
}

// TestQuotaRejectsOverBudgetTenant pins the per-tenant token bucket: a
// tenant that exhausts its burst gets 429 + Retry-After while another
// tenant still submits.
func TestQuotaRejectsOverBudgetTenant(t *testing.T) {
	d := startDaemon(t, serve.Config{BatchLinger: -1, QuotaRate: 0.001, QuotaBurst: 2}, 1, 0)

	if v := d.submit(t, "greedy", testGrid()); v.Total != 2 {
		t.Fatalf("first submit: %+v", v)
	}
	code, body := d.post(t, "/v1/sweeps", "greedy", serve.SubmitRequest{Schema: serve.SubmitSchema, Grid: testGrid()})
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: HTTP %d (%s), want 429", code, body)
	}
	var er serve.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Schema != serve.ErrorSchema {
		t.Errorf("429 body: %s", body)
	}
	if v := d.submit(t, "patient", testGrid()); v.Total != 2 {
		t.Fatalf("other tenant blocked by greedy's quota: %+v", v)
	}
	if p := d.progress(t); p.Totals.QuotaRejections != 1 {
		t.Errorf("quota rejections = %d, want 1", p.Totals.QuotaRejections)
	}
}

// TestDrainFlushesManifests pins graceful shutdown: draining refuses new
// submits and leases, flushes one manifest per sweep, and emits the drain
// event.
func TestDrainFlushesManifests(t *testing.T) {
	dir := t.TempDir()
	d := startDaemon(t, serve.Config{BatchLinger: -1, ManifestDir: dir}, 1, 0)

	v := d.submit(t, "drain", testGrid())
	d.waitFinished(t, v.Sweep, 5*time.Second)
	d.srv.Drain("test", 3*time.Second)

	if code := d.get(t, "/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz after drain: HTTP %d", code)
	}
	if code, _ := d.post(t, "/v1/sweeps", "drain", serve.SubmitRequest{Schema: serve.SubmitSchema, Grid: testGrid()}); code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: HTTP %d, want 503", code)
	}
	req := serve.LeaseRequest{Schema: serve.LeaseSchema, Worker: "w"}
	if code, _ := d.post(t, "/v1/fleet/lease", "", req); code != http.StatusNoContent {
		t.Errorf("lease while draining: HTTP %d, want 204", code)
	}

	m, err := sweep.ReadManifest(filepath.Join(dir, v.Sweep+".json"))
	if err != nil {
		t.Fatalf("flushed manifest: %v", err)
	}
	if m.Totals.Jobs != 2 || m.Totals.OK != 2 {
		t.Errorf("flushed manifest totals: %+v", m.Totals)
	}
	if n := d.sink.count(obs.EventServeDrain, nil); n != 1 {
		t.Errorf("drain events = %d, want 1", n)
	}
}

// TestQueueFirstWriteWins exercises the lease table directly: a late
// upload from an expired lease still completes the job, and the current
// leaseholder's upload then drops as a duplicate.
func TestQueueFirstWriteWins(t *testing.T) {
	reg := obs.NewRegistry()
	o := obs.NewServeObs(reg, time.Now(), nil, nil, 0)
	q := serve.NewQueue(o, 100*time.Millisecond, 3, nil)

	spec := sweep.JobSpec{Workload: "vecsum", Scheme: "dsre", Size: 32}
	h, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	q.Submit("t", []sweep.JobSpec{spec}, []string{h}, nil, tracing.TraceID{}, now)

	// Worker 1 leases, then its lease expires; the job requeues and
	// worker 2 leases it.
	l1, ok := q.Lease("w1", false, now)
	if !ok {
		t.Fatal("no lease for queued job")
	}
	if n := q.ExpireLeases(now.Add(time.Second), false); n != 1 {
		t.Fatalf("expired %d leases, want 1", n)
	}
	l2, ok := q.Lease("w2", false, now.Add(time.Second))
	if !ok {
		t.Fatal("requeued job not leasable")
	}
	if l2.Attempt != 2 {
		t.Errorf("second lease attempt = %d, want 2", l2.Attempt)
	}

	// Worker 1's late upload (dead lease) wins first-write.
	res := sweep.JobResult{Hash: h, Status: sweep.StatusOK}
	acc, dup, state, err := q.Complete(l1.Lease, "w1", h, res, true, now.Add(2*time.Second))
	if err != nil || !acc || dup || state != serve.JobDone {
		t.Fatalf("late upload: acc=%v dup=%v state=%v err=%v", acc, dup, state, err)
	}
	// Worker 2's upload is now a duplicate.
	acc, dup, state, err = q.Complete(l2.Lease, "w2", h, res, true, now.Add(3*time.Second))
	if err != nil || acc || !dup || state != serve.JobDone {
		t.Fatalf("duplicate upload: acc=%v dup=%v state=%v err=%v", acc, dup, state, err)
	}
	if fin, ok := q.Finished("s-0001"); !ok || !fin {
		t.Errorf("sweep not finished after first write")
	}
	if q.QueuedLen() != 0 || q.FleetLeases() != 0 {
		t.Errorf("queue state leaked: queued %d leases %d", q.QueuedLen(), q.FleetLeases())
	}

	// Unknown hash is rejected.
	if _, _, _, err := q.Complete("", "w3", "feedbeef", res, true, now); err == nil {
		t.Error("completion for unknown job accepted")
	}
}

// TestQueueExhaustsAttempts pins terminal failure: after MaxAttempts
// failed uploads the job fails for good and the sweep finishes failed.
func TestQueueExhaustsAttempts(t *testing.T) {
	reg := obs.NewRegistry()
	o := obs.NewServeObs(reg, time.Now(), nil, nil, 0)
	q := serve.NewQueue(o, time.Second, 2, nil)

	spec := sweep.JobSpec{Workload: "vecsum", Scheme: "dsre", Size: 32}
	h, _ := spec.Hash()
	now := time.Now()
	id := q.Submit("t", []sweep.JobSpec{spec}, []string{h}, nil, tracing.TraceID{}, now)

	for i := 1; i <= 2; i++ {
		l, ok := q.Lease("w", false, now)
		if !ok {
			t.Fatalf("attempt %d: job not leasable", i)
		}
		res := sweep.JobResult{Hash: h, Status: sweep.StatusFailed, Error: "boom"}
		_, _, state, err := q.Complete(l.Lease, "w", h, res, true, now)
		if err != nil {
			t.Fatal(err)
		}
		if i < 2 && state != serve.JobQueued {
			t.Fatalf("attempt %d: state %v, want requeued", i, state)
		}
		if i == 2 && state != serve.JobFailed {
			t.Fatalf("final attempt: state %v, want failed", state)
		}
	}
	v, _ := q.View(id, true)
	if !v.Finished || v.Failed != 1 {
		t.Errorf("sweep after exhausted attempts: %+v", v)
	}
}

// TestRemoteStoreIntegrity pins the HTTP store client contract: a record
// whose payload hash does not verify reads as a miss and reports through
// the corruption hook; a missing record is a silent miss; a valid record
// round-trips.
func TestRemoteStoreIntegrity(t *testing.T) {
	spec := sweep.JobSpec{Workload: "vecsum", Scheme: "dsre", Size: 32}
	canon, err := spec.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	h, _ := spec.Hash()
	rep, err := fakeRunner(0)(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	good := &sweep.Record{Hash: h, Spec: canon, Report: rep}
	if err := good.Seal(); err != nil {
		t.Fatal(err)
	}
	tampered := *good
	tamperedRep := *rep
	tamperedRep.Cycles += 1 // flip the payload after sealing
	tampered.Report = &tamperedRep

	objects := map[string]*sweep.Record{"good": good, "bad": &tampered}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/artifacts/{key}", func(w http.ResponseWriter, r *http.Request) {
		rec, ok := objects[r.PathValue("key")]
		if !ok {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(rec)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	rs := serve.NewRemoteStore(ts.URL, nil)
	var corrupt []string
	rs.SetOnCorrupt(func(hash, detail string) { corrupt = append(corrupt, hash+": "+detail) })

	// The good object round-trips; the server addresses by key, but the
	// record's own Hash must match what the client asked for.
	objects[h] = good
	rec, err := rs.Get(h)
	if err != nil || rec == nil {
		t.Fatalf("valid record Get = (%v, %v)", rec, err)
	}
	if rec.Report.Cycles != rep.Cycles {
		t.Errorf("round-trip changed payload")
	}

	// The tampered object is a miss plus a corruption report, not an error.
	objects[h] = &tampered
	rec, err = rs.Get(h)
	if err != nil || rec != nil {
		t.Errorf("tampered record Get = (%v, %v), want miss", rec, err)
	}
	if len(corrupt) != 1 || !strings.Contains(corrupt[0], h) {
		t.Errorf("corruption hook calls: %v", corrupt)
	}

	// Missing is a silent miss.
	delete(objects, h)
	rec, err = rs.Get(h)
	if err != nil || rec != nil {
		t.Errorf("missing record Get = (%v, %v), want miss", rec, err)
	}
	if len(corrupt) != 1 {
		t.Errorf("missing record reported as corrupt: %v", corrupt)
	}
}

// TestRemoteStoreAgainstDaemon runs the client against a real daemon: Put
// uploads a sealed record, Get replays it, and an engine wired to the
// remote store resolves the point as a cache hit.
func TestRemoteStoreAgainstDaemon(t *testing.T) {
	d := startDaemon(t, serve.Config{BatchLinger: -1}, 1, 0)

	spec := sweep.JobSpec{Workload: "vecsum", Scheme: "dsre", Size: 32}
	canon, _ := spec.Canonical()
	h, _ := spec.Hash()
	rep, _ := fakeRunner(0)(context.Background(), spec)
	rec := &sweep.Record{Hash: h, Spec: canon, Report: rep}

	rs := serve.NewRemoteStore(d.ts.URL, nil)
	if err := rs.Put(rec); err != nil {
		t.Fatal(err)
	}
	got, err := rs.Get(h)
	if err != nil || got == nil {
		t.Fatalf("Get after Put = (%v, %v)", got, err)
	}

	// An engine with the remote store never runs the point.
	ran := false
	eng := sweep.New(sweep.Options{Workers: 1, Store: rs, Runner: func(ctx context.Context, s sweep.JobSpec) (*telemetry.Report, error) {
		ran = true
		return fakeRunner(0)(ctx, s)
	}})
	sum, err := eng.Run(context.Background(), []sweep.JobSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if ran || !sum.Jobs[0].CacheHit {
		t.Errorf("remote store did not satisfy the point: ran=%v result=%+v", ran, sum.Jobs[0])
	}
}

// TestArtifactPutRejections pins upload validation: wrong address, missing
// payload and version skew are refused with typed statuses.
func TestArtifactPutRejections(t *testing.T) {
	d := startDaemon(t, serve.Config{BatchLinger: -1}, 1, 0)

	spec := sweep.JobSpec{Workload: "vecsum", Scheme: "dsre", Size: 32}
	canon, _ := spec.Canonical()
	h, _ := spec.Hash()
	rep, _ := fakeRunner(0)(context.Background(), spec)
	rec := &sweep.Record{Hash: h, Spec: canon, Report: rep}
	if err := rec.Seal(); err != nil {
		t.Fatal(err)
	}

	put := func(path string, rec *sweep.Record) int {
		data, _ := json.Marshal(rec)
		req, err := http.NewRequest(http.MethodPut, d.ts.URL+path, bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := d.ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := put("/v1/artifacts/"+h, rec); code != http.StatusOK {
		t.Fatalf("valid upload: HTTP %d", code)
	}
	if code := put("/v1/artifacts/deadbeef", rec); code != http.StatusBadRequest {
		t.Errorf("address mismatch: HTTP %d, want 400", code)
	}
	skew := *rec
	skew.SimVersion = "dsre-sim/v999"
	if code := put("/v1/artifacts/"+h, &skew); code != http.StatusConflict {
		t.Errorf("version skew: HTTP %d, want 409", code)
	}
	hollow := *rec
	hollow.Report = nil
	if code := put("/v1/artifacts/"+h, &hollow); code != http.StatusBadRequest {
		t.Errorf("missing payload: HTTP %d, want 400", code)
	}
	flipped := *rec
	flippedRep := *rep
	flippedRep.Cycles++
	flipped.Report = &flippedRep
	if code := put("/v1/artifacts/"+h, &flipped); code != http.StatusBadRequest {
		t.Errorf("bad payload hash: HTTP %d, want 400", code)
	}
}

// TestWorkerFleetEndToEnd runs a fleet-only daemon with two healthy
// workers sharing a grid and pins clean-fleet accounting.
func TestWorkerFleetEndToEnd(t *testing.T) {
	d := startDaemon(t, serve.Config{LeaseTTL: time.Second}, 0, 0)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 2)
	for _, id := range []string{"w1", "w2"} {
		w, err := serve.NewWorker(serve.WorkerOptions{
			BaseURL: d.ts.URL, ID: id,
			Engine: sweep.New(sweep.Options{Workers: 1, Runner: fakeRunner(5 * time.Millisecond)}),
			Poll:   10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		go func() { done <- w.Run(ctx) }()
	}

	grid := &sweep.Grid{Workloads: []string{"vecsum"}, Schemes: []string{"dsre", "oracle", "conservative"}, Sizes: []int{32}}
	v := d.submit(t, "fleet", grid)
	fin := d.waitFinished(t, v.Sweep, 10*time.Second)
	if fin.Done != 3 || fin.Failed != 0 {
		t.Fatalf("fleet sweep: %+v", fin)
	}
	cancel()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}

	p := d.progress(t)
	tot := p.Totals
	if tot.Executions != 3 || tot.Uploads != 3 || tot.UploadDuplicates != 0 || tot.Failed != 0 {
		t.Errorf("fleet totals: %+v", tot)
	}
	if len(p.Workers) != 2 {
		t.Errorf("progress lists %d workers, want 2", len(p.Workers))
	}
	// Heartbeat path: with a 1s TTL and 5ms jobs there may be none, but the
	// daemon must never have expired a healthy worker's lease.
	if tot.LeaseExpiries != 0 || tot.Requeues != 0 {
		t.Errorf("healthy fleet saw expiries %d / requeues %d", tot.LeaseExpiries, tot.Requeues)
	}
}

// startTracedWorker runs a fleet worker whose engine records spans into its
// own local SpanLog, which the worker ships with every completion upload.
func startTracedWorker(t *testing.T, d *daemon, id string, delay time.Duration, onLease func(string) error) (cancel func(), done chan error) {
	t.Helper()
	wspans := obs.NewSpanLog()
	engObs := obs.NewSweepObsInto(obs.NewRegistry(), time.Now(), nil, wspans)
	w, err := serve.NewWorker(serve.WorkerOptions{
		BaseURL: d.ts.URL, ID: id,
		Engine:  sweep.New(sweep.Options{Workers: 1, Runner: fakeRunner(delay), Obs: engObs}),
		Poll:    5 * time.Millisecond,
		Spans:   wspans,
		OnLease: onLease,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, stop := context.WithCancel(context.Background())
	done = make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	return stop, done
}

// submitTraced submits a grid with an explicit traceparent header and
// returns the sweep view plus the context that was sent.
func (d *daemon) submitTraced(t *testing.T, tenant string, grid *sweep.Grid, tc tracing.Context) *serve.SweepView {
	t.Helper()
	data, err := json.Marshal(serve.SubmitRequest{Schema: serve.SubmitSchema, Grid: grid})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, d.ts.URL+"/v1/sweeps", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-DSRE-Tenant", tenant)
	tc.SetHeader(req.Header)
	resp, err := d.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("traced submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var v serve.SweepView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	return &v
}

// fetchStitched downloads and parses the stitched cross-process trace for a
// sweep.
func (d *daemon) fetchStitched(t *testing.T, sweepID string) []map[string]any {
	t.Helper()
	resp, err := d.ts.Client().Get(d.ts.URL + "/v1/sweeps/" + sweepID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint: HTTP %d: %s", resp.StatusCode, raw)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("stitched trace is not JSON: %v", err)
	}
	return doc.TraceEvents
}

// TestTraceEndToEnd drives a two-worker fleet under one client-supplied
// trace: the sweep adopts the inbound trace ID, every daemon- and
// worker-side chain carries it, the stitched trace shows both worker
// processes with a run span per executed job, and the telescoping invariant
// (worker wall time inside the daemon's lease-held window) reconciles.
func TestTraceEndToEnd(t *testing.T) {
	d := startDaemon(t, serve.Config{LeaseTTL: 5 * time.Second, TraceSeed: 99}, 0, 0)

	stopA, doneA := startTracedWorker(t, d, "w1", 40*time.Millisecond, nil)
	stopB, doneB := startTracedWorker(t, d, "w2", 40*time.Millisecond, nil)

	m := tracing.NewMinter(7)
	tc := tracing.Context{Trace: m.NextTrace(), Span: m.NextSpan()}
	grid := &sweep.Grid{Workloads: []string{"vecsum"}, Schemes: []string{"dsre", "oracle"}, Sizes: []int{32, 64}}
	v := d.submitTraced(t, "trace", grid, tc)
	if v.Trace != tc.Trace.String() {
		t.Fatalf("sweep trace = %q, want the submitted %q", v.Trace, tc.Trace)
	}

	fin := d.waitFinished(t, v.Sweep, 10*time.Second)
	stopA()
	stopB()
	if err := <-doneA; err != nil {
		t.Fatalf("worker w1: %v", err)
	}
	if err := <-doneB; err != nil {
		t.Fatalf("worker w2: %v", err)
	}
	if fin.Done != 4 || fin.Failed != 0 {
		t.Fatalf("fleet sweep: %+v", fin)
	}

	// Every recorded chain — daemon-side and shipped worker-side — carries
	// the client's trace ID.
	chains := d.spans.Jobs()
	workerOrigins := map[string]int{}
	for _, c := range chains {
		if c.Trace != tc.Trace.String() {
			t.Errorf("chain %s (origin %s) trace = %q, want %q", c.Hash, c.Origin, c.Trace, tc.Trace)
		}
		if c.Origin != tracing.OriginDaemon {
			workerOrigins[c.Origin]++
		}
	}
	if len(workerOrigins) != 2 {
		t.Fatalf("shipped chains from origins %v, want both w1 and w2", workerOrigins)
	}

	// The stitched trace has one process per party and one worker-side run
	// span per executed job.
	events := d.fetchStitched(t, v.Sweep)
	procs := map[string]bool{}
	workerJobHashes := map[string]bool{}
	runSpans := 0
	for _, e := range events {
		if e["ph"] == "M" && e["name"] == "process_name" {
			procs[e["args"].(map[string]any)["name"].(string)] = true
		}
		if e["ph"] != "X" {
			continue
		}
		switch e["cat"] {
		case "job":
			args := e["args"].(map[string]any)
			if args["trace"] != tc.Trace.String() {
				t.Errorf("stitched job span has foreign trace %v", args["trace"])
			}
			if args["origin"] != tracing.OriginDaemon {
				workerJobHashes[args["hash"].(string)] = true
			}
		case "phase":
			if e["name"] == "run" && e["pid"].(float64) > 0 {
				runSpans++
			}
		}
	}
	for _, p := range []string{"daemon", "worker w1", "worker w2"} {
		if !procs[p] {
			t.Errorf("stitched trace missing process %q (have %v)", p, procs)
		}
	}
	if len(workerJobHashes) != 4 {
		t.Errorf("worker-side job spans cover %d hashes, want all 4 executed jobs", len(workerJobHashes))
	}
	if runSpans < 4 {
		t.Errorf("worker-side run spans = %d, want >= 1 per executed job (4)", runSpans)
	}

	// Telescoping: each worker chain's wall time fits inside the daemon's
	// lease-held window within tolerance.
	if bad := tracing.Reconcile(chains, time.Second); len(bad) != 0 {
		t.Errorf("telescoping violations: %+v", bad)
	}
}

// TestWorkerCrashTraceStitching pins trace stitching across a crash-requeue:
// the abandoned attempt and the successful retry appear as separate chains
// under one trace with distinct span IDs, and the shipped worker chain
// matches the retry's span.
func TestWorkerCrashTraceStitching(t *testing.T) {
	d := startDaemon(t, serve.Config{LeaseTTL: 150 * time.Millisecond, MaxAttempts: 3, TraceSeed: 5}, 0, 0)

	grid := &sweep.Grid{Workloads: []string{"vecsum"}, Schemes: []string{"dsre"}, Sizes: []int{32}}
	v := d.submit(t, "fleet", grid)
	h, err := (sweep.JobSpec{Workload: "vecsum", Scheme: "dsre", Size: 32}).Hash()
	if err != nil {
		t.Fatal(err)
	}

	// Worker A leases the only job and dies on it; worker B completes the
	// requeued attempt.
	crash := fmt.Errorf("injected crash")
	wa, err := serve.NewWorker(serve.WorkerOptions{
		BaseURL: d.ts.URL, ID: "crashy",
		Engine:  sweep.New(sweep.Options{Workers: 1, Runner: fakeRunner(0)}),
		Poll:    10 * time.Millisecond,
		OnLease: func(string) error { return crash },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := wa.Run(context.Background()); err != crash {
		t.Fatalf("crashy worker Run = %v, want injected crash", err)
	}
	stopB, doneB := startTracedWorker(t, d, "steady", 0, nil)
	fin := d.waitFinished(t, v.Sweep, 10*time.Second)
	stopB()
	if err := <-doneB; err != nil {
		t.Fatalf("steady worker: %v", err)
	}
	if fin.Done != 1 || fin.Failed != 0 {
		t.Fatalf("sweep after crash: %+v", fin)
	}

	var abandoned, completed, shipped []obs.JobSpans
	for _, c := range d.spans.Jobs() {
		if c.Hash != h {
			continue
		}
		switch {
		case c.Origin != tracing.OriginDaemon:
			shipped = append(shipped, c)
		case c.Status == "abandoned":
			abandoned = append(abandoned, c)
		default:
			completed = append(completed, c)
		}
	}
	if len(abandoned) != 1 || len(completed) != 1 || len(shipped) != 1 {
		t.Fatalf("chains: %d abandoned, %d completed, %d shipped; want 1 each", len(abandoned), len(completed), len(shipped))
	}
	if abandoned[0].Trace != fin.Trace || completed[0].Trace != fin.Trace {
		t.Errorf("attempts do not share the sweep trace %q: %q / %q", fin.Trace, abandoned[0].Trace, completed[0].Trace)
	}
	if abandoned[0].Span == completed[0].Span || abandoned[0].Span == "" {
		t.Errorf("attempts share span ID %q; each lease attempt needs its own", abandoned[0].Span)
	}
	if abandoned[0].Peer != "crashy" || completed[0].Peer != "steady" {
		t.Errorf("attempt peers = %q / %q, want crashy then steady", abandoned[0].Peer, completed[0].Peer)
	}
	if shipped[0].Span != completed[0].Span || shipped[0].Origin != "steady" || shipped[0].Attempt != completed[0].Attempt {
		t.Errorf("shipped chain %+v does not match the completing attempt %+v", shipped[0], completed[0])
	}

	// Both attempts appear in the stitched trace, and the abandoned one
	// never picked up a worker-side chain; Reconcile skips it.
	daemonJobSpans := 0
	for _, e := range d.fetchStitched(t, v.Sweep) {
		if e["ph"] == "X" && e["cat"] == "job" {
			if e["args"].(map[string]any)["origin"] == tracing.OriginDaemon {
				daemonJobSpans++
			}
		}
	}
	if daemonJobSpans != 2 {
		t.Errorf("stitched daemon-side job spans = %d, want both attempts", daemonJobSpans)
	}
	if bad := tracing.Reconcile(d.spans.Jobs(), time.Second); len(bad) != 0 {
		t.Errorf("telescoping violations after crash-requeue: %+v", bad)
	}
}

// TestErrorEnvelope pins the JSON error contract: typed codes, the
// dsre-serve-error/v1 schema, and the caller's trace ID echoed back.
func TestErrorEnvelope(t *testing.T) {
	d := startDaemon(t, serve.Config{BatchLinger: -1}, 1, 0)

	m := tracing.NewMinter(11)
	tc := tracing.Context{Trace: m.NextTrace(), Span: m.NextSpan()}
	req, err := http.NewRequest(http.MethodGet, d.ts.URL+"/v1/sweeps/s-9999", nil)
	if err != nil {
		t.Fatal(err)
	}
	tc.SetHeader(req.Header)
	resp, err := d.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown sweep: HTTP %d", resp.StatusCode)
	}
	var er serve.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("404 body is not a JSON envelope: %s", body)
	}
	if er.Schema != serve.ErrorSchema || er.Code != serve.ErrCodeNotFound || er.Message == "" {
		t.Errorf("404 envelope: %+v", er)
	}
	if er.Trace != tc.Trace.String() {
		t.Errorf("404 envelope trace = %q, want the caller's %q", er.Trace, tc.Trace)
	}

	// A malformed submit gets bad_request with a minted (non-empty) trace.
	code, body := d.post(t, "/v1/sweeps", "t", map[string]string{"schema": "wrong"})
	if code != http.StatusBadRequest {
		t.Fatalf("malformed submit: HTTP %d", code)
	}
	if err := json.Unmarshal(body, &er); err != nil || er.Code != serve.ErrCodeBadRequest || er.Trace == "" {
		t.Errorf("400 envelope: %s", body)
	}

	// A completion against a dead lease 404s through the same envelope.
	code, body = d.post(t, "/v1/fleet/complete", "", serve.CompleteRequest{
		Schema: serve.CompleteSchema, Lease: "nope", Worker: "w", Hash: "feedbeef",
		Status: sweep.StatusFailed, Error: "boom",
	})
	if code != http.StatusNotFound {
		t.Fatalf("complete with dead lease: HTTP %d (%s)", code, body)
	}
	if err := json.Unmarshal(body, &er); err != nil || er.Code != serve.ErrCodeLeaseGone {
		t.Errorf("lease-gone envelope: %s", body)
	}
}

// TestHealthz pins the JSON health document: schema, simulator and Go
// runtime versions, start time, and the draining status flip.
func TestHealthz(t *testing.T) {
	d := startDaemon(t, serve.Config{BatchLinger: -1}, 1, 0)

	var h serve.HealthView
	if code := d.get(t, "/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", code)
	}
	if h.Schema != serve.HealthSchema || h.Status != "ok" {
		t.Errorf("health view: %+v", h)
	}
	if h.SimVersion != sim.Version {
		t.Errorf("sim version = %q, want %q", h.SimVersion, sim.Version)
	}
	if h.GoVersion == "" || h.StartTimeMS <= 0 {
		t.Errorf("runtime fields missing: %+v", h)
	}

	d.srv.Drain("test", time.Second)
	if code := d.get(t, "/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz after drain: HTTP %d", code)
	}
	if h.Status != "draining" {
		t.Errorf("status after drain = %q, want draining", h.Status)
	}
}
