package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

const ctxcheckName = "ctxcheck"

// ctxcheck guards the service layer's ability to shut down: every for-loop
// in Config.CtxPkgs that can block — time.Sleep, bare channel operations,
// single-case selects, HTTP round-trips, WaitGroup waits, ranging over a
// channel — must observe a cancellation signal somewhere in the loop: a use
// of a context.Context value (ctx.Done(), ctx.Err(), or passing ctx into a
// call that honours it), or a select with more than one way out (a second
// comm case or a default).  Loops that provably terminate some other way
// (a bounded retry, a producer-closed channel) carry a //lint:ctxcheck
// escape saying so.
func ctxcheck(p *pass) {
	for _, rel := range p.cfg.CtxPkgs {
		pkg := p.mod.Lookup(rel)
		if pkg == nil {
			p.missingAnchor("package " + rel)
			continue
		}
		for _, f := range pkg.Files {
			anns := p.annotationsFor(f, "ctxcheck")
			ast.Inspect(f, func(n ast.Node) bool {
				switch loop := n.(type) {
				case *ast.ForStmt:
					p.checkLoop(loop, loop.Body, anns)
				case *ast.RangeStmt:
					p.checkLoop(loop, loop.Body, anns)
				}
				return true
			})
		}
	}
}

// checkLoop classifies one loop.  The scan covers the whole loop statement
// (condition and post included) but not nested function literals: a closure
// handed to a goroutine blocks its own schedule, not this loop's.
func (p *pass) checkLoop(loop ast.Stmt, body *ast.BlockStmt, anns []*annotation) {
	blocking := ""
	observes := false

	// Ranging over a channel blocks in the loop header itself.
	if rs, ok := loop.(*ast.RangeStmt); ok {
		if tv, ok := p.mod.Info.Types[rs.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				blocking = "range over channel " + types.ExprString(rs.X)
			}
		}
	}

	// Select comm clauses are judged as selects, not as bare channel ops.
	commOps := map[ast.Node]bool{}
	ast.Inspect(loop, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cl := range sel.Body.List {
			cc := cl.(*ast.CommClause)
			switch c := cc.Comm.(type) {
			case *ast.SendStmt:
				commOps[c] = true
			case *ast.ExprStmt:
				commOps[c.X] = true
			case *ast.AssignStmt:
				for _, r := range c.Rhs {
					commOps[ast.Unparen(r)] = true
				}
			}
		}
		return true
	})

	ast.Inspect(loop, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt, *ast.DeferStmt:
			// The launched/deferred call does not block this iteration.
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, cl := range n.Body.List {
				if cl.(*ast.CommClause).Comm == nil {
					hasDefault = true
				}
			}
			if hasDefault || len(n.Body.List) >= 2 {
				observes = true // more than one way out of the wait
			} else if blocking == "" {
				blocking = "single-case select"
			}
		case *ast.SendStmt:
			if blocking == "" && !commOps[n] {
				blocking = "channel send"
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && blocking == "" && !commOps[ast.Node(n)] {
				blocking = "channel receive"
			}
		case *ast.CallExpr:
			if desc := p.blockingCall(n); desc != "" && blocking == "" {
				blocking = desc
			}
		case *ast.Ident:
			if p.isContextValue(n) {
				observes = true
			}
		case *ast.SelectorExpr:
			if p.isContextValue(n) {
				observes = true
			}
		}
		return true
	})

	if blocking == "" || observes {
		return
	}
	line := p.mod.Position(loop.Pos()).Line
	if suppressed(anns, line) {
		return
	}
	p.reportf(ctxcheckName, loop.Pos(),
		"loop blocks (%s) without observing cancellation — select on ctx.Done() or a stop channel, or annotate //lint:ctxcheck with why it terminates", blocking)
}

// blockingCall names calls that can block indefinitely.
func (p *pass) blockingCall(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := p.mod.Info.Uses[id].(*types.PkgName); ok {
			switch pn.Imported().Path() {
			case "time":
				if sel.Sel.Name == "Sleep" {
					return "time.Sleep"
				}
			case "net/http":
				switch sel.Sel.Name {
				case "Get", "Post", "Head", "PostForm":
					return "http." + sel.Sel.Name
				}
			}
			return ""
		}
	}
	if s, ok := p.mod.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		recv := s.Recv()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return ""
		}
		switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
		case "net/http.Client":
			switch sel.Sel.Name {
			case "Do", "Get", "Post", "Head", "PostForm":
				return "http.Client." + sel.Sel.Name
			}
		case "sync.WaitGroup":
			if sel.Sel.Name == "Wait" {
				return "WaitGroup.Wait"
			}
		}
	}
	return ""
}

// isContextValue reports an expression of type context.Context (the
// canonical cancellation carrier).  context.Background()/TODO() calls do
// not produce such an Ident or SelectorExpr node, so manufacturing a fresh
// root context inside the loop does not count as observing cancellation.
func (p *pass) isContextValue(e ast.Expr) bool {
	tv, ok := p.mod.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}
