package repro_test

import (
	"testing"

	"repro"
	"repro/internal/account"
)

// TestAccountingConservationMatrix is the end-to-end version of the CPI
// conservation invariant: across conflict-heavy and streaming kernels under
// the paper's three interesting schemes, every simulated cycle must land in
// exactly one bucket, and the forensic event log must agree with the
// simulator's own recovery counters.  The same invariant is enforced at run
// time under the dsre_assert build tag; this test keeps it on the default
// build too.
func TestAccountingConservationMatrix(t *testing.T) {
	kernels := []string{"vecsum", "histogram", "bank", "hashmap"}
	schemes := []string{"storeset+flush", "dsre", "oracle"}
	for _, k := range kernels {
		for _, s := range schemes {
			t.Run(k+"/"+s, func(t *testing.T) {
				res, err := repro.Run(repro.Config{Workload: k, Scheme: s, Size: 256})
				if err != nil {
					t.Fatal(err)
				}
				if got, want := res.Sim.Acct.Total(), res.Cycles*account.SlotsPerCycle; got != want {
					t.Fatalf("CPI buckets sum to %d, want %d (cycles %d × %d slots)",
						got, want, res.Cycles, account.SlotsPerCycle)
				}
				f := &res.Sim.Forensics
				if got := f.FlushEvents + f.WaveEvents; got != res.Sim.LSQ.Violations {
					t.Errorf("flush %d + wave %d events, LSQ violations %d",
						f.FlushEvents, f.WaveEvents, res.Sim.LSQ.Violations)
				}
				if f.VPEvents != res.Sim.VPCorrections {
					t.Errorf("VP events %d, VP corrections %d", f.VPEvents, res.Sim.VPCorrections)
				}
				if got := f.WaveReexecs + f.UnattributedReexecs; got != res.Sim.Reexecs {
					t.Errorf("wave reexecs %d + unattributed %d, stats reexecs %d",
						f.WaveReexecs, f.UnattributedReexecs, res.Sim.Reexecs)
				}
				if s == "dsre" {
					if got := f.WaveEvents + f.VPEvents; got != res.Sim.WaveCount {
						t.Errorf("wave %d + VP %d events, wave count %d",
							f.WaveEvents, f.VPEvents, res.Sim.WaveCount)
					}
				}
				if f.Events > 0 && f.MaxDepth < 1 {
					t.Errorf("%d forensic events but max depth %d", f.Events, f.MaxDepth)
				}
				var profiled int64
				for _, p := range f.Loads {
					profiled += p.Events
					if p.Events != p.Flushes+p.Waves+p.VPRepairs {
						t.Errorf("load %s: events %d != flushes %d + waves %d + vp %d",
							p.LoadPC, p.Events, p.Flushes, p.Waves, p.VPRepairs)
					}
				}
				if profiled > int64(f.Events) {
					t.Errorf("profiled events %d exceed total %d", profiled, f.Events)
				}
			})
		}
	}
}
