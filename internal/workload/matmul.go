package workload

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

func init() {
	register("matmul", "dense FP class (register-blocked matrix multiply)", buildMatmul)
}

// Registers used by matmul.
const (
	rI = 1
	rJ = 2
	rK = 3
	rC = 4
	rN = 5
	rA = 6
	rB = 7
	rCBase = 8
)

// buildMatmul computes C = A×B for Size×Size int64 matrices with the k loop
// unrolled.  Stores to C never alias in-flight loads of A/B, so this is the
// high-ILP, speculation-friendly dense kernel.
func buildMatmul(p Params) (*Workload, error) {
	p = p.withDefaults(20, 4).clampUnroll(8)
	n := roundUp(p.Size, p.Unroll)

	b := program.New("matmul")

	// kbody: c += A[i][k..k+U-1] * B[k..k+U-1][j]
	kb := b.NewBlock("kbody")
	{
		i := kb.Read(rI)
		j := kb.Read(rJ)
		k := kb.Read(rK)
		c := kb.Read(rC)
		nn := kb.Read(rN)
		ab := kb.Read(rA)
		bb := kb.Read(rB)
		three := kb.Const(3)
		iN := kb.Op(isa.OpMul, i, nn)
		arow := kb.Op(isa.OpAdd, ab, kb.Op(isa.OpShl, kb.Op(isa.OpAdd, iN, k), three))
		kN := kb.Op(isa.OpMul, k, nn)
		bcol := kb.Op(isa.OpAdd, bb, kb.Op(isa.OpShl, kb.Op(isa.OpAdd, kN, j), three))
		var nstride program.Val
		if p.Unroll > 1 {
			nstride = kb.Op(isa.OpShl, nn, three)
		}
		bp := bcol
		for u := 0; u < p.Unroll; u++ {
			va := kb.Load(arow, int64(8*u))
			vb := kb.Load(bp, 0)
			c = kb.Op(isa.OpAdd, c, kb.Op(isa.OpMul, va, vb))
			if u != p.Unroll-1 {
				bp = kb.Op(isa.OpAdd, bp, nstride)
			}
		}
		k2 := kb.Op(isa.OpAdd, k, kb.Const(int64(p.Unroll)))
		kb.Write(rK, k2)
		kb.Write(rC, c)
		more := kb.Op(isa.OpTlt, k2, nn)
		kb.BranchIf(more, "kbody", "jnext")
	}

	// jnext: store C[i][j], advance j, reset k and c.
	jn := b.NewBlock("jnext")
	{
		i := jn.Read(rI)
		j := jn.Read(rJ)
		c := jn.Read(rC)
		nn := jn.Read(rN)
		cb := jn.Read(rCBase)
		three := jn.Const(3)
		zero := jn.Const(0)
		iN := jn.Op(isa.OpMul, i, nn)
		caddr := jn.Op(isa.OpAdd, cb, jn.Op(isa.OpShl, jn.Op(isa.OpAdd, iN, j), three))
		jn.Store(caddr, 0, c)
		j2 := jn.Op(isa.OpAdd, j, jn.Const(1))
		jn.Write(rJ, j2)
		jn.Write(rK, zero)
		jn.Write(rC, zero)
		more := jn.Op(isa.OpTlt, j2, nn)
		jn.BranchIf(more, "kbody", "inext")
	}

	// inext: advance i, reset j.
	in := b.NewBlock("inext")
	{
		i := in.Read(rI)
		nn := in.Read(rN)
		zero := in.Const(0)
		i2 := in.Op(isa.OpAdd, i, in.Const(1))
		in.Write(rI, i2)
		in.Write(rJ, zero)
		more := in.Op(isa.OpTlt, i2, nn)
		in.BranchIf(more, "kbody", "@halt")
	}

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	w := &Workload{Description: fmt.Sprintf("%d×%d int64 matrix multiply, k-unroll %d", n, n, p.Unroll), Params: p, Program: prog, Mem: mem.New()}
	seed := p.Seed
	a := make([]int64, n*n)
	bm := make([]int64, n*n)
	for i := range a {
		a[i] = int64(splitmix64(&seed) % 100)
		bm[i] = int64(splitmix64(&seed) % 100)
		w.Mem.Write(DataBase+uint64(8*i), a[i], 8)
		w.Mem.Write(DataBase2+uint64(8*i), bm[i], 8)
	}
	w.Regs[rN] = int64(n)
	w.Regs[rA] = DataBase
	w.Regs[rB] = DataBase2
	w.Regs[rCBase] = DataBase3

	want := make([]int64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var c int64
			for k := 0; k < n; k++ {
				c += a[i*n+k] * bm[k*n+j]
			}
			want[i*n+j] = c
		}
	}
	w.Check = func(regs *[isa.NumRegs]int64, m *mem.Memory) error {
		for i := 0; i < n*n; i++ {
			if err := checkU64(m, DataBase3+uint64(8*i), want[i], fmt.Sprintf("matmul C[%d]", i)); err != nil {
				return err
			}
		}
		return nil
	}
	return w, nil
}
