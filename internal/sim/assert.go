package sim

import "fmt"

// Runtime invariant checks, enabled with `go test -tags dsre_assert`.
//
// The checks guard protocol invariants that no unit test can pin directly
// because they hold at every cycle of every run: a committed operand slot
// never sees a commit token with a different value (commit waves are
// architecturally final), message injection never targets a past cycle,
// and commit never outruns fetch.  With the tag off, assertsEnabled is a
// false constant and every check compiles away.

// assertFailf reports a violated dsre_assert invariant.  The simulator is
// single-threaded and deterministic, so a panic here reproduces exactly
// under the same Config + seed.
func assertFailf(format string, args ...any) {
	panic("dsre_assert: " + fmt.Sprintf(format, args...))
}
