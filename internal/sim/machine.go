package sim

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/lsq"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/predictor"
	"repro/internal/sched"
	"repro/internal/trace"
)

// aluJob is one execution in flight on a tile's (pipelined) ALU.
type aluJob struct {
	completeAt int64
	frame      int32
	gen        uint32
	seq        int64
	idx        int
}

// tileState is one execution tile: per-block ready bitmaps feeding a
// pipelined ALU.  Readiness is a ring of 128-bit instruction masks indexed
// by block sequence (modulo the ring size, which covers the frame count),
// plus a ring bitset naming the occupied slots; pick-next is "first live
// block slot at or after the window base, then lowest set instruction bit"
// — a pair of priority-encoder queries instead of an associative scan.
//
// Invariant: every set bit names a live (in-window) block.  Squash and
// commit eagerly reclaim a dying block's bits, converting each into a
// stale credit (see dequeueReady), so the masks never hold dangling
// entries and seq→slot indexing stays collision-free.
type tileState struct {
	node int
	// readyBlocks flags ring slots (seq & ringMask) of blocks with at least
	// one ready instruction here; ready[slot] is that block's mask.
	readyBlocks bitset.Ring
	ready       []bitset.Mask128
	// readyCount is the number of set bits across ready.
	readyCount int
	// staleCredits counts entries reclaimed from squashed or retired
	// blocks.  The dense reference scheduler dropped one stale queue entry
	// per cycle in place of an issue; each credit reproduces exactly that:
	// one no-issue cycle that still counts as progress.
	staleCredits int
	busy         []aluJob
}

// dequeueReady pops the tile's oldest ready instruction (lowest block seq,
// then lowest instruction index), or consumes one stale credit in place of
// an issue.  windowBase is the oldest in-flight block's sequence; ringMask
// is the tile ring's index mask.  ok is false when the tile has nothing
// queued; stale reports that this cycle's issue slot was consumed by a
// reclaimed entry and no instruction was popped.  Both the dense
// (SlowTick) and event-driven paths issue through this one helper.
func (t *tileState) dequeueReady(windowBase int64, ringMask int) (seq int64, idx int, stale, ok bool) {
	if t.staleCredits > 0 {
		t.staleCredits--
		return 0, 0, true, true
	}
	if t.readyCount == 0 {
		return 0, 0, false, false
	}
	base := int(windowBase) & ringMask
	slot := t.readyBlocks.FirstFrom(base)
	m := &t.ready[slot]
	idx = m.Min()
	m.Clear(idx)
	if m.Empty() {
		t.readyBlocks.Clear(slot)
	}
	t.readyCount--
	return windowBase + int64((slot-base)&ringMask), idx, false, true
}

// hasIssueWork reports whether the tile's issue stage has anything to do
// this cycle (a ready instruction, or a stale credit to consume).
func (t *tileState) hasIssueWork() bool {
	return t.readyCount > 0 || t.staleCredits > 0
}

// pendingFetch is the block fetch in progress.
type pendingFetch struct {
	active    bool
	seq       int64
	blockID   int
	readyAt   int64
	startedAt int64 // cycle the fetch issued, for the fetch stage span
}

type injection struct {
	src, dst int
	msg      message
}

// Machine is the simulated processor, configured for one program run.
type Machine struct {
	cfg  Config
	prog *isa.Program

	arch [isa.NumRegs]int64
	mem  *mem.Memory
	hier *cache.Hierarchy
	net  *noc.Network[message]
	q    *lsq.Queue
	tags core.TagSource
	wave *core.WaveStats
	ss   *predictor.StoreSet

	bpred nextBlockPred
	vp    *predictor.StrideValue // load-value predictor (ValuePredict)

	// memIdx[blockID][lsid] = instruction index, for LSQ-side broadcasts.
	memIdx [][]int
	// placement[blockID][instIdx] = execution tile.
	placement [][]int

	window    []*blockInst
	frameGens []uint32
	frameBusy []bool
	fetch     pendingFetch
	nextSeq   int64
	resumeID  int

	cycle int64
	// injq schedules structure-latency injections (cache replies, recovery
	// broadcasts) by cycle; FIFO within a cycle, so it reproduces the
	// retired delayed-map iteration bit for bit.
	injq  sched.Wheel[injection]
	tiles []tileState
	// tileRingMask indexes the tiles' ready rings: slot = seq & mask.  The
	// ring covers the frame count, so live blocks (whose seqs span less
	// than Frames) never collide.
	tileRingMask int
	// tileActive is a bitmask over tiles with resident work (non-empty
	// ready or busy queues); stepTiles visits only these, in ascending
	// order so issue arbitration matches the dense scan exactly.
	tileActive []uint64

	// lastFetch records what stepFetch did this cycle; during an idle-gap
	// fast-forward the same (state-stable) stall repeats every skipped
	// cycle and is replicated in bulk.
	lastFetch fetchAction
	// ffSkipped counts cycles the run loop fast-forwarded across provably
	// idle gaps (diagnostics only; never part of Stats).
	ffSkipped int64

	// Steady-state scratch, reused every cycle so the hot loop does not
	// allocate: LSQ take buffers, the map-time OpInfo staging slice, and
	// the retired-block pool.
	readyBuf  []lsq.ReadyLoad
	certBuf   []lsq.CertifiedLoad
	opsBuf    []lsq.OpInfo
	blockPool []*blockInst

	committed       int64
	lastCommitCycle int64
	done            bool
	finalTarget     int

	stats  Stats
	tracer Tracer
	spans  SpanRecorder
	err    error // fatal protocol error detected during a handler

	// Cycle accounting + forensics (see account.go); nil means off.
	acct *acctState

	// Telemetry sampling (see sampler.go); sampleSink == nil means off.
	sampleSink  SampleSink
	sampleEvery int64
	sampleAt    int64
	sampleBase  sampleOrigin
	lastSample  Sample
	haveSample  bool
}

// Tracer receives execution events when attached (see internal/trace).
type Tracer interface {
	Record(cycle int64, kind trace.Kind, seq int64, idx int, tag uint64)
}

// SpanRecorder is optionally implemented by tracers that also want
// per-stage duration spans (trace.Collector implements it).
type SpanRecorder interface {
	RecordSpan(kind trace.SpanKind, seq int64, idx int, tag uint64, start, end int64)
}

// SetTracer attaches an event tracer; nil detaches.  A tracer that also
// implements SpanRecorder receives fetch/block/exec stage spans.
func (mc *Machine) SetTracer(t Tracer) {
	mc.tracer = t
	mc.spans, _ = t.(SpanRecorder)
}

// New builds a machine for one run of prog from the given initial state.
// The oracle table (from an emulator pre-pass) is required only for
// IssueOracle; the perfect block trace only for PerfectBlockPred.
func New(cfg Config, prog *isa.Program, regs *[isa.NumRegs]int64, m *mem.Memory, oracleDeps map[emu.MemRef]emu.MemRef, trace []int) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == core.IssueOracle && oracleDeps == nil {
		return nil, fmt.Errorf("sim: oracle policy requires an oracle table")
	}
	hier, err := cache.NewHierarchy(cfg.Hier)
	if err != nil {
		return nil, err
	}
	kind := cfg.BlockPred
	if cfg.PerfectBlockPred {
		kind = PredPerfect
	}
	bpred, err := newBlockPred(kind, cfg.BlockPredBits, trace)
	if err != nil {
		return nil, err
	}
	mc := &Machine{
		cfg:       cfg,
		prog:      prog,
		mem:       m.Clone(),
		hier:      hier,
		wave:      core.NewWaveStats(),
		bpred:     bpred,
		frameGens: make([]uint32, cfg.Frames),
		frameBusy: make([]bool, cfg.Frames),
		resumeID:  prog.Entry,
	}
	if regs != nil {
		mc.arch = *regs
	}

	mc.net, err = noc.New[message](cfg.netConfig(), mc.deliver)
	if err != nil {
		return nil, err
	}

	var oracle *predictor.Oracle
	if cfg.Policy == core.IssueOracle {
		deps := make(map[predictor.DynRef]predictor.DynRef, len(oracleDeps))
		//lint:ordered — injective key-for-key map rebuild: the resulting map is the same set regardless of visit order
		for l, s := range oracleDeps {
			deps[predictor.DynRef{Seq: l.BlockSeq, LSID: l.LSID}] = predictor.DynRef{Seq: s.BlockSeq, LSID: s.LSID}
		}
		oracle = predictor.NewOracle(deps)
	}
	if cfg.Policy == core.IssueStoreSet {
		mc.ss, err = predictor.New(cfg.StoreSet)
		if err != nil {
			return nil, err
		}
	}
	mc.q = lsq.New(lsq.Config{
		Policy:           cfg.Policy,
		ForwardLatency:   cfg.ForwardLatency,
		ViolationLatency: cfg.ViolationLatency,
	}, mc.mem, hier, &mc.tags, mc.ss, oracle)

	mc.memIdx = make([][]int, len(prog.Blocks))
	for i, b := range prog.Blocks {
		idx := make([]int, 0, isa.MaxMemOps)
		for j := range b.Insts {
			if b.Insts[j].Op.IsMem() {
				idx = append(idx, j)
			}
		}
		mc.memIdx[i] = idx
	}

	nt := cfg.GridWidth * cfg.GridHeight
	mc.tiles = make([]tileState, nt)
	for i := range mc.tiles {
		mc.tiles[i].node = mc.execNode(i)
		mc.tiles[i].readyBlocks = bitset.NewRing(cfg.Frames)
		mc.tiles[i].ready = make([]bitset.Mask128, mc.tiles[i].readyBlocks.Size())
	}
	mc.tileRingMask = mc.tiles[0].readyBlocks.Size() - 1
	mc.tileActive = make([]uint64, (nt+63)/64)
	mc.placement, err = computePlacement(cfg.Placement, prog, nt)
	if err != nil {
		return nil, err
	}
	if cfg.ValuePredict {
		mc.vp = predictor.NewStrideValue()
	}
	return mc, nil
}

// Topology: column x=0 holds the global control tile (0,0) and the LSQ/data
// tile (0,1); row y=0 from x=1 holds register-file banks; the execution
// grid occupies x in [1, W], y in [1, H].

func (mc *Machine) ctrlNode() int { return mc.net.Node(0, 0) }

// memNode returns the D-tile port for an address: memory traffic is
// interleaved across the left mesh column by cache-line address.  The LSQ
// is logically unified; banking distributes its network ports (the TRIPS
// D-tile arrangement).
func (mc *Machine) memNode(addr uint64) int {
	banks := mc.cfg.DTileBanks
	if banks < 1 {
		banks = 1
	}
	if banks > mc.cfg.GridHeight {
		banks = mc.cfg.GridHeight
	}
	y := 1 + int((addr>>6)%uint64(banks))
	return mc.net.Node(0, y)
}

func (mc *Machine) regNode(reg uint8) int {
	return mc.net.Node(1+int(reg)%mc.cfg.GridWidth, 0)
}

func (mc *Machine) execNode(tile int) int {
	return mc.net.Node(1+tile%mc.cfg.GridWidth, 1+tile/mc.cfg.GridWidth)
}

// instTile maps an instruction of a block to its execution tile, per the
// configured placement policy.
func (mc *Machine) instTile(blockID, idx int) int {
	return mc.placement[blockID][idx]
}

// blockAt returns the in-flight block with the given sequence, or nil.
func (mc *Machine) blockAt(seq int64) *blockInst {
	if len(mc.window) == 0 {
		return nil
	}
	first := mc.window[0].seq
	i := seq - first
	if i < 0 || i >= int64(len(mc.window)) {
		return nil
	}
	return mc.window[i]
}

// live reports whether a message's (frame, gen) still names a live block.
func (mc *Machine) live(m *message) *blockInst {
	b := mc.blockAt(m.seq)
	if b == nil || b.frame != m.frame || b.gen != m.gen {
		return nil
	}
	return b
}

// send injects a message now.  A negative src delivers locally at dst
// (the free-commit-token ablation path: 1-cycle latency, no bandwidth).
func (mc *Machine) send(src, dst int, m message) {
	if src < 0 {
		src = dst
	}
	mc.net.Send(mc.cycle, src, dst, m)
}

// sendAfter injects a message after a delay (modelling structure latency
// before the network, e.g. cache access time).
func (mc *Machine) sendAfter(delay int, src, dst int, m message) {
	if assertsEnabled && delay < 0 {
		mc.failAssert("negative injection delay %d at cycle %d (kind %d seq %d)", delay, mc.cycle, m.kind, m.seq)
	}
	if delay <= 0 {
		mc.send(src, dst, m)
		return
	}
	mc.injq.Push(mc.cycle+int64(delay), injection{src: src, dst: dst, msg: m})
}

// markTileActive flags a tile as holding resident work so stepTiles visits
// it.  The bit is cleared by stepTiles itself when both queues drain.
func (mc *Machine) markTileActive(tile int) {
	mc.tileActive[tile>>6] |= 1 << (uint(tile) & 63)
}

// resliceCleared returns s resized to n with every element zeroed, reusing
// the backing array when it is large enough.
func resliceCleared[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// takeBlock pops a recycled blockInst (or allocates one).  The caller fills
// every field; recycled backing arrays (insts, writes, readBind, regRead)
// keep their capacity so steady-state block turnover does not allocate.
func (mc *Machine) takeBlock() *blockInst {
	if len(mc.blockPool) == 0 {
		return &blockInst{}
	}
	b := mc.blockPool[len(mc.blockPool)-1]
	mc.blockPool[len(mc.blockPool)-1] = nil
	mc.blockPool = mc.blockPool[:len(mc.blockPool)-1]
	return b
}

// releaseBlock recycles a retired (committed or squashed) blockInst.  Any
// in-flight message naming it is rejected by the (frame, gen) liveness check
// before the pool can hand it out again, because gens only move forward.
func (mc *Machine) releaseBlock(b *blockInst) {
	mc.blockPool = append(mc.blockPool, b)
}

// fail records a fatal protocol error; the run loop surfaces it.
func (mc *Machine) fail(format string, args ...any) {
	if mc.err == nil {
		mc.err = fmt.Errorf(format, args...)
	}
}
