package sim

// Config has three knobs that can never reach the sweep cache key.
type Config struct {
	Width    int
	hidden   int    // want: unexported, dropped by encoding/json
	Secret   int    `json:"-"` // want: excluded from the hash by its tag
	Callback func() // want: unencodable type
}

// Canonical is well-formed so only the field diagnostics fire.
func (c Config) Canonical() Config { return c }
