package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/sim"
)

// ReportSchema identifies the run-report wire format.  Bump on
// incompatible changes so CI consumers can reject reports they don't
// understand.
const ReportSchema = "dsre-report/v1"

// Report is the machine-readable form of one verified simulator run: the
// headline measurements, the full simulator statistics (histograms carry
// their percentiles — see stats.Hist.MarshalJSON), and the sampled
// time series when sampling was enabled.
type Report struct {
	Schema   string `json:"schema"`
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	// Size, Unroll and Seed are the workload's effective parameters, so a
	// directory of sweep-point reports is self-describing.  Omitted by
	// writers that predate them.
	Size   int    `json:"size,omitempty"`
	Unroll int    `json:"unroll,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`

	Cycles int64   `json:"cycles"`
	Insts  int64   `json:"insts"`
	IPC    float64 `json:"ipc"`
	Blocks int64   `json:"blocks"`

	Violations  int64 `json:"violations"`
	Flushes     int64 `json:"flushes"`
	Corrections int64 `json:"corrections"`
	Reexecs     int64 `json:"reexecs"`
	Waves       int64 `json:"waves"`

	// SimWallMS and McyclesPerSec measure the host-side cost of producing
	// this report: wall-clock milliseconds spent inside the simulator, and
	// millions of simulated cycles retired per wall second.  They describe
	// the harness, not the simulated machine, so Result.Report() never sets
	// them — writers (dsre-sim, the sweep engine) stamp them via StampWall,
	// and a cached sweep replay keeps the figures of the run that produced
	// it.
	SimWallMS     float64 `json:"sim_wall_ms,omitempty"`
	McyclesPerSec float64 `json:"mcycles_per_sec,omitempty"`

	Stats   sim.Stats    `json:"stats"`
	Samples []sim.Sample `json:"samples,omitempty"`
}

// StampWall records the host wall time that produced this report and the
// derived simulation rate.  A zero or negative wall (a clock step, or a
// report that never ran live) leaves both fields unset rather than
// dividing by zero.
func (r *Report) StampWall(wall time.Duration) {
	if wall <= 0 {
		return
	}
	r.SimWallMS = float64(wall.Microseconds()) / 1e3
	r.McyclesPerSec = float64(r.Cycles) / 1e6 / wall.Seconds()
}

// Marshal renders the report as indented, stable JSON.
func (r *Report) Marshal() ([]byte, error) {
	if r.Schema == "" {
		r.Schema = ReportSchema
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the report to path as JSON.
func (r *Report) WriteFile(path string) error {
	b, err := r.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// ParseReport decodes and schema-checks a report.
func ParseReport(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("telemetry: parse report: %w", err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("telemetry: report schema %q, want %q", r.Schema, ReportSchema)
	}
	return &r, nil
}

// ReadReport loads a report from a file written by WriteFile.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseReport(data)
}
