package obs

import (
	"encoding/json"
	"testing"
)

// TestPhaseJSONRoundTrip pins the phase wire spellings both ways: span
// chains ship inside fleet complete uploads, so every phase must decode
// back to itself and unknown spellings must fail loudly.
func TestPhaseJSONRoundTrip(t *testing.T) {
	for p := PhaseQueueWait; p <= PhaseUpload; p++ {
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("%s: marshal: %v", p, err)
		}
		var got Phase
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("%s: unmarshal %s: %v", p, b, err)
		}
		if got != p {
			t.Errorf("round trip: %s became %s", p, got)
		}
	}
	var p Phase
	if err := json.Unmarshal([]byte(`"launch"`), &p); err == nil {
		t.Error("unknown phase spelling decoded without error")
	}
	if err := json.Unmarshal([]byte(`3`), &p); err == nil {
		t.Error("numeric phase decoded without error")
	}
}
