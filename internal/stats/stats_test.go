package stats

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistBasics(t *testing.T) {
	var h Hist
	for _, v := range []int64{0, 1, 2, 3, 7, 100} {
		h.Add(v)
	}
	if h.N != 6 {
		t.Errorf("N = %d", h.N)
	}
	if h.Max != 100 {
		t.Errorf("Max = %d", h.Max)
	}
	if got := h.Mean(); math.Abs(got-113.0/6) > 1e-9 {
		t.Errorf("Mean = %v", got)
	}
	if h.Percentile(100) != 100 {
		t.Errorf("p100 = %d", h.Percentile(100))
	}
	if p50 := h.Percentile(50); p50 > 3 {
		t.Errorf("p50 = %d", p50)
	}
	var empty Hist
	if empty.Mean() != 0 || empty.Percentile(50) != 0 {
		t.Error("empty hist should report zeros")
	}
}

// TestHistPercentileBounds property: percentiles never exceed the maximum
// observation and are monotone in p.
func TestHistPercentileBounds(t *testing.T) {
	f := func(vals []uint16) bool {
		var h Hist
		for _, v := range vals {
			h.Add(int64(v))
		}
		if h.N == 0 {
			return true
		}
		last := int64(0)
		for _, p := range []float64{10, 50, 90, 99, 100} {
			q := h.Percentile(p)
			if q > h.Max || q < last {
				return false
			}
			last = q
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistNegativeClamped(t *testing.T) {
	var h Hist
	h.Add(-5)
	if h.Max != 0 || h.Sum != 0 {
		t.Errorf("negative not clamped: %+v", h)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.Row("alpha", 1)
	tb.Row("b", 2.5)
	s := tb.String()
	for _, want := range []string{"== demo ==", "name", "alpha", "2.500", "----"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 {
		t.Errorf("expected 5 lines, got %d", len(lines))
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean(2,8) = %v", got)
	}
	if got := GeoMean([]float64{1, 1, 1}); math.Abs(got-1) > 1e-9 {
		t.Errorf("GeoMean(1,1,1) = %v", got)
	}
	// Zeros and negatives are skipped, not poisonous.
	if got := GeoMean([]float64{0, -3, 4}); math.Abs(got-4) > 1e-9 {
		t.Errorf("GeoMean with zeros = %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("Ratio(6,3)")
	}
	if Ratio(1, 0) != 0 {
		t.Error("Ratio by zero must be 0")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"c": 1, "a": 2, "b": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("SortedKeys = %v", got)
	}
}

func TestHistString(t *testing.T) {
	var h Hist
	h.Add(5)
	if s := h.String(); !strings.Contains(s, "n=1") {
		t.Errorf("String = %q", s)
	}
}

func TestHistMerge(t *testing.T) {
	var a, b Hist
	a.Add(0)
	a.Add(3)
	b.Add(100)
	b.Add(1 << 40) // lands in the overflow (last) bucket

	var m Hist
	m.Merge(&a)
	m.Merge(&b)
	if m.N != 4 || m.Sum != a.Sum+b.Sum || m.Max != 1<<40 {
		t.Fatalf("merged = n=%d sum=%d max=%d", m.N, m.Sum, m.Max)
	}
	for i := range m.Buckets {
		if m.Buckets[i] != a.Buckets[i]+b.Buckets[i] {
			t.Errorf("bucket %d: %d != %d+%d", i, m.Buckets[i], a.Buckets[i], b.Buckets[i])
		}
	}
	if m.Buckets[len(m.Buckets)-1] != 1 {
		t.Error("overflow bucket not preserved by Merge")
	}

	// Merging empties and nil is a no-op.
	before := m
	m.Merge(&Hist{})
	m.Merge(nil)
	if m != before {
		t.Error("empty/nil merge changed the histogram")
	}
	var empty Hist
	empty.Merge(&Hist{})
	if empty.N != 0 {
		t.Error("empty+empty merge not empty")
	}
}

func TestHistStringBars(t *testing.T) {
	var h Hist
	for i := 0; i < 8; i++ {
		h.Add(4)
	}
	h.Add(0)
	s := h.String()
	if !strings.Contains(s, "n=9") || !strings.Contains(s, "p50=") {
		t.Errorf("summary line missing: %q", s)
	}
	lines := strings.Split(s, "\n")
	if len(lines) != 3 {
		t.Fatalf("want summary + 2 bucket rows, got %d lines:\n%s", len(lines), s)
	}
	// The fuller bucket must render the longer bar.
	bar := func(line string) int { return strings.Count(line, "#") }
	if bar(lines[1]) >= bar(lines[2]) {
		t.Errorf("bars not proportional:\n%s", s)
	}
	var empty Hist
	if es := empty.String(); strings.Contains(es, "#") || !strings.Contains(es, "n=0") {
		t.Errorf("empty hist rendering: %q", es)
	}
}

func TestHistJSONRoundTrip(t *testing.T) {
	var h Hist
	for _, v := range []int64{0, 1, 5, 5, 300, 1 << 50} {
		h.Add(v)
	}
	data, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	// Derived percentiles must appear on the wire.
	for _, key := range []string{`"p50"`, `"p90"`, `"p99"`, `"mean"`, `"buckets"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("wire form missing %s: %s", key, data)
		}
	}
	var back Hist
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Errorf("round trip: %+v != %+v", back, h)
	}

	// Empty histogram round-trips too.
	var empty, emptyBack Hist
	data, err = json.Marshal(&empty)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &emptyBack); err != nil {
		t.Fatal(err)
	}
	if emptyBack != empty {
		t.Errorf("empty round trip: %+v", emptyBack)
	}
}

func TestTableJSON(t *testing.T) {
	tb := NewTable("demo", "kernel", "ipc")
	tb.Row("vecsum", 1.25)
	data, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Title != "demo" || len(out.Header) != 2 || len(out.Rows) != 1 || out.Rows[0][1] != "1.250" {
		t.Errorf("table JSON = %s", data)
	}
	if data, err = json.Marshal(NewTable("empty", "a")); err != nil || !strings.Contains(string(data), `"rows":[]`) {
		t.Errorf("empty table rows must be [], got %s (err %v)", data, err)
	}
}
