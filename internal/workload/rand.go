package workload

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

func init() {
	register("histogram", "gzip/bzip2 (data-dependent read-modify-write counting)", buildHistogram)
	register("bank", "high-conflict stress (random read-modify-write pairs)", buildBank)
	register("hashmap", "vortex (hashed probe and update)", buildHashmap)
}

// Registers shared by the random-access kernels.
const (
	rIdxP  = 2
	rBase  = 6
	rIdxEnd = 7
)

// lcg emits the in-ISA linear congruential PRNG step mirrored by lcgNext.
// (Used by kernels whose randomness must be computed in-loop, e.g. treewalk.)
func lcg(blk *program.BlockBuilder, x program.Val) program.Val {
	return blk.Op(isa.OpAdd, blk.Op(isa.OpMul, x, blk.Const(lcgMul)), blk.Const(lcgAdd))
}

// buildHistogram increments one of 64 counters per element of a pre-built
// random index array (GUPS-style).  Index loads are independent streaming
// loads, so counter loads race far ahead of older counter stores whose data
// is still being computed — the dependence-speculation stress the paper
// targets.  It is also the worst case for the store-set predictor: every
// dynamic conflict involves the *same* static load/store pair, so the
// predictor merges everything into one set and serialises all counter
// accesses, while DSRE pays only for the true dynamic conflicts.
func buildHistogram(p Params) (*Workload, error) {
	p = p.withDefaults(4096, 4).clampUnroll(8)
	const bins = 64
	iters := roundUp(p.Size, p.Unroll)

	b := program.New("histogram")
	loop := b.NewBlock("loop")
	ip := loop.Read(rIdxP)
	base := loop.Read(rBase)
	end := loop.Read(rIdxEnd)
	one := loop.Const(1)
	three := loop.Const(3)
	for k := 0; k < p.Unroll; k++ {
		bin := loop.Load(ip, int64(8*k))
		addr := loop.Op(isa.OpAdd, base, loop.Op(isa.OpShl, bin, three))
		c := loop.Load(addr, 0)
		loop.Store(addr, 0, loop.Op(isa.OpAdd, c, one))
	}
	ip2 := loop.Op(isa.OpAdd, ip, loop.Const(int64(8*p.Unroll)))
	loop.Write(rIdxP, ip2)
	more := loop.Op(isa.OpTltu, ip2, end)
	loop.BranchIf(more, "loop", "@halt")

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	w := &Workload{Description: fmt.Sprintf("%d random increments over %d bins, unroll %d", iters, bins, p.Unroll), Params: p, Program: prog, Mem: mem.New()}
	seed := p.Seed
	var want [bins]int64
	for i := 0; i < iters; i++ {
		bin := int64(splitmix64(&seed) % bins)
		w.Mem.Write(DataBase2+uint64(8*i), bin, 8)
		want[bin]++
	}
	w.Regs[rIdxP] = DataBase2
	w.Regs[rBase] = DataBase
	w.Regs[rIdxEnd] = DataBase2 + int64(8*iters)
	w.Check = func(regs *[isa.NumRegs]int64, m *mem.Memory) error {
		for i := 0; i < bins; i++ {
			if err := checkU64(m, DataBase+uint64(8*i), want[i], fmt.Sprintf("histogram[%d]", i)); err != nil {
				return err
			}
		}
		return nil
	}
	return w, nil
}

// buildBank performs random transfers between accounts driven by a
// pre-built (from, to) index array: two read-modify-write pairs per
// iteration at uncorrelated addresses.
func buildBank(p Params) (*Workload, error) {
	p = p.withDefaults(4096, 2).clampUnroll(3)
	const accounts = 256
	iters := roundUp(p.Size, p.Unroll)

	b := program.New("bank")
	loop := b.NewBlock("loop")
	ip := loop.Read(rIdxP)
	base := loop.Read(rBase)
	end := loop.Read(rIdxEnd)
	three := loop.Const(3)
	amtMask := loop.Const(255)
	for k := 0; k < p.Unroll; k++ {
		from := loop.Load(ip, int64(16*k))
		to := loop.Load(ip, int64(16*k)+8)
		amt := loop.Op(isa.OpAnd, loop.Op(isa.OpAdd, from, loop.Op(isa.OpMul, to, loop.Const(31))), amtMask)
		fa := loop.Op(isa.OpAdd, base, loop.Op(isa.OpShl, from, three))
		ta := loop.Op(isa.OpAdd, base, loop.Op(isa.OpShl, to, three))
		bf := loop.Load(fa, 0)
		loop.Store(fa, 0, loop.Op(isa.OpSub, bf, amt))
		bt := loop.Load(ta, 0)
		loop.Store(ta, 0, loop.Op(isa.OpAdd, bt, amt))
	}
	ip2 := loop.Op(isa.OpAdd, ip, loop.Const(int64(16*p.Unroll)))
	loop.Write(rIdxP, ip2)
	more := loop.Op(isa.OpTltu, ip2, end)
	loop.BranchIf(more, "loop", "@halt")

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	w := &Workload{Description: fmt.Sprintf("%d random transfers across %d accounts, unroll %d", iters, accounts, p.Unroll), Params: p, Program: prog, Mem: mem.New()}
	seed := p.Seed
	ref := make([]int64, accounts)
	for i := range ref {
		ref[i] = int64(splitmix64(&seed) % 10000)
	}
	for i, v := range ref {
		w.Mem.Write(DataBase+uint64(8*i), v, 8)
	}
	for i := 0; i < iters; i++ {
		from := int64(splitmix64(&seed) % accounts)
		to := int64(splitmix64(&seed) % accounts)
		w.Mem.Write(DataBase2+uint64(16*i), from, 8)
		w.Mem.Write(DataBase2+uint64(16*i)+8, to, 8)
		amt := (from + to*31) & 255
		ref[from] -= amt
		ref[to] += amt
	}
	w.Regs[rIdxP] = DataBase2
	w.Regs[rBase] = DataBase
	w.Regs[rIdxEnd] = DataBase2 + int64(16*iters)
	w.Check = func(regs *[isa.NumRegs]int64, m *mem.Memory) error {
		for i := 0; i < accounts; i++ {
			if err := checkU64(m, DataBase+uint64(8*i), ref[i], fmt.Sprintf("bank[%d]", i)); err != nil {
				return err
			}
		}
		return nil
	}
	return w, nil
}

// buildHashmap probes and updates a direct-mapped hash table of key/value
// pairs, with keys drawn from a pre-built array over a small key space so
// slots are frequently revisited while in flight.  A matching slot
// increments the value, a mismatch evicts it; the selects exercise
// complementary predicated movs under memory speculation.
func buildHashmap(p Params) (*Workload, error) {
	p = p.withDefaults(4096, 2).clampUnroll(4)
	const (
		slots    = 4096
		keySpace = 128
		hashMul  = 2654435761
	)
	iters := roundUp(p.Size, p.Unroll)

	b := program.New("hashmap")
	loop := b.NewBlock("loop")
	ip := loop.Read(rIdxP)
	base := loop.Read(rBase)
	end := loop.Read(rIdxEnd)
	one := loop.Const(1)
	hmul := loop.Const(hashMul)
	smask := loop.Const(slots - 1)
	four := loop.Const(4)
	for k := 0; k < p.Unroll; k++ {
		key := loop.Load(ip, int64(8*k))
		h := loop.Op(isa.OpAnd, loop.Op(isa.OpMul, key, hmul), smask)
		slot := loop.Op(isa.OpAdd, base, loop.Op(isa.OpShl, h, four))
		kv := loop.Load(slot, 0)
		vv := loop.Load(slot, 8)
		match := loop.Op(isa.OpTeq, kv, key)
		newv := loop.Select(match, loop.Op(isa.OpAdd, vv, one), one)
		loop.Store(slot, 0, key)
		loop.Store(slot, 8, newv)
	}
	ip2 := loop.Op(isa.OpAdd, ip, loop.Const(int64(8*p.Unroll)))
	loop.Write(rIdxP, ip2)
	more := loop.Op(isa.OpTltu, ip2, end)
	loop.BranchIf(more, "loop", "@halt")

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	w := &Workload{Description: fmt.Sprintf("%d probes of a %d-slot table over %d keys, unroll %d", iters, slots, keySpace, p.Unroll), Params: p, Program: prog, Mem: mem.New()}
	seed := p.Seed
	type slot struct{ key, val int64 }
	ref := make([]slot, slots)
	for i := 0; i < iters; i++ {
		key := int64(splitmix64(&seed) % keySpace)
		w.Mem.Write(DataBase2+uint64(8*i), key, 8)
		h := uint64(key*hashMul) & (slots - 1)
		if ref[h].key == key {
			ref[h].val++
		} else {
			ref[h] = slot{key: key, val: 1}
		}
	}
	w.Regs[rIdxP] = DataBase2
	w.Regs[rBase] = DataBase
	w.Regs[rIdxEnd] = DataBase2 + int64(8*iters)
	w.Check = func(regs *[isa.NumRegs]int64, m *mem.Memory) error {
		for i := 0; i < slots; i++ {
			a := DataBase + uint64(16*i)
			if err := checkU64(m, a, ref[i].key, fmt.Sprintf("hashmap key[%d]", i)); err != nil {
				return err
			}
			if err := checkU64(m, a+8, ref[i].val, fmt.Sprintf("hashmap val[%d]", i)); err != nil {
				return err
			}
		}
		return nil
	}
	return w, nil
}
