package obs

import (
	"fmt"
	"sync"
	"time"
)

// ProgressSchema identifies the live-progress JSON served at /progress.
const ProgressSchema = "dsre-progress/v1"

// SweepObs bundles the fleet-level observability surfaces for the sweep
// engine: a typed metrics Registry, an optional structured EventSink, an
// optional per-job SpanLog, and the live-progress state the -status HTTP
// endpoint renders.  Every method takes the caller's clock reading — this
// package never reads time itself — and the engine guards every call with
// a single nil check, so a disabled observer is one pointer compare.
type SweepObs struct {
	// Reg is the metrics registry; never nil.  The status server exposes it
	// at /metrics.
	Reg *Registry

	start time.Time
	sink  EventSink
	spans *SpanLog

	mJobs, mOK, mFailed, mHits     *Counter
	mRetries, mPanics, mStoreFails *Counter
	mStoreWrites, mDrains, mGrids  *Counter
	mSimCycles, mStoreCorrupt      *Counter
	gQueued, gRunning, gBusy       *Gauge
	gWorkers                       *Gauge
	hJob, hQueueWait               *Histogram

	mu      sync.Mutex
	workers []workerState
	grids   []*gridState
	rate    *RateWindow
}

type workerState struct {
	busy    bool
	job     string
	sinceNS int64
}

type gridState struct {
	name           string
	total, unique  int
	queued, runs   int // live approximations while running
	done, cached   int
	failed         int
	startNS, endNS int64
	finished       bool
}

// NewSweepObs builds an observer anchored at start (the caller's clock).
// sink and spans may be nil: events and spans are then skipped while
// metrics and live progress stay on.
func NewSweepObs(start time.Time, sink EventSink, spans *SpanLog) *SweepObs {
	return NewSweepObsInto(NewRegistry(), start, sink, spans)
}

// NewSweepObsInto builds an observer whose metrics register into an
// existing registry, so a process hosting several observers (a dsre-serve
// daemon runs a ServeObs next to its engine's SweepObs) exposes one
// /metrics page.  Metric names must be process-unique; registering two
// SweepObs into one registry panics by design.
func NewSweepObsInto(reg *Registry, start time.Time, sink EventSink, spans *SpanLog) *SweepObs {
	o := &SweepObs{
		Reg:   reg,
		start: start,
		sink:  sink,
		spans: spans,
		rate:  NewRateWindow(32),

		mJobs:         reg.Counter("dsre_sweep_jobs_total", "Sweep jobs completed (dedup copies included), any status."),
		mOK:           reg.Counter("dsre_sweep_jobs_ok_total", "Sweep jobs completed successfully."),
		mFailed:       reg.Counter("dsre_sweep_jobs_failed_total", "Sweep jobs that failed after retries."),
		mHits:         reg.Counter("dsre_sweep_cache_hits_total", "Jobs satisfied by the result store or in-sweep dedup."),
		mRetries:      reg.Counter("dsre_sweep_retries_total", "Failed attempts that were retried."),
		mPanics:       reg.Counter("dsre_sweep_panics_total", "Attempts that panicked (isolated to their job)."),
		mStoreWrites:  reg.Counter("dsre_sweep_store_writes_total", "Result objects written to the content-addressed store."),
		mStoreFails:   reg.Counter("dsre_sweep_store_write_failures_total", "Store writes that failed (cache degraded, sweep unaffected)."),
		mDrains:       reg.Counter("dsre_sweep_drains_total", "Sweeps cancelled mid-run that drained in-flight jobs."),
		mGrids:        reg.Counter("dsre_sweep_grids_total", "Engine runs (grids) started."),
		mSimCycles:    reg.Counter("dsre_sim_cycles_total", "Simulated cycles retired by live (non-cached) runs."),
		mStoreCorrupt: reg.Counter("dsre_sweep_store_corrupt_total", "Cached records rejected by payload SHA-256 verification (read as misses)."),
		gQueued:       reg.Gauge("dsre_sweep_jobs_queued", "Jobs waiting for a worker."),
		gRunning:      reg.Gauge("dsre_sweep_jobs_running", "Unique jobs currently executing."),
		gBusy:         reg.Gauge("dsre_sweep_workers_busy", "Workers currently executing a job."),
		gWorkers:      reg.Gauge("dsre_sweep_workers", "Worker pool size."),
		hJob:          reg.Histogram("dsre_sweep_job_seconds", "Wall time of computed (non-cached) jobs.", DurationBounds),
		hQueueWait:    reg.Histogram("dsre_sweep_queue_wait_seconds", "Time from sweep feed start to worker pickup.", DurationBounds),
	}
	return o
}

func (o *SweepObs) rel(t time.Time) int64 { return t.Sub(o.start).Nanoseconds() }

func (o *SweepObs) emit(e Event, now time.Time) {
	if o.sink != nil {
		e.TimeMS = now.UnixMilli()
		o.sink.Emit(e)
	}
}

// AddSimCycles accumulates live simulated cycles (lock-free).
func (o *SweepObs) AddSimCycles(n int64) {
	if n > 0 {
		o.mSimCycles.Add(n)
	}
}

// StoreCorrupt records a cached record rejected by payload verification:
// its own counter plus a store_corrupt event.  The read stays a plain
// cache miss — this is forensics, not control flow.
func (o *SweepObs) StoreCorrupt(hash, detail string, now time.Time) {
	o.mStoreCorrupt.Inc()
	o.emit(Event{Kind: EventStoreCorrupt, Job: hash, Error: firstLine(detail)}, now)
}

// Grid is the handle for one engine Run.
type Grid struct {
	o  *SweepObs
	gs *gridState
}

// GridBegin opens one engine Run of total specs (unique after dedup) on a
// pool of workers, and emits sweep_start.
func (o *SweepObs) GridBegin(total, unique, workers int, now time.Time) *Grid {
	o.mu.Lock()
	gs := &gridState{
		name:    fmt.Sprintf("grid-%d", len(o.grids)+1),
		total:   total,
		unique:  unique,
		queued:  total,
		startNS: o.rel(now),
	}
	o.grids = append(o.grids, gs)
	for len(o.workers) < workers {
		o.workers = append(o.workers, workerState{})
	}
	o.gWorkers.Set(int64(len(o.workers)))
	o.mu.Unlock()

	o.mGrids.Inc()
	o.gQueued.Add(int64(total))
	o.emit(Event{Kind: EventSweepStart, Grid: gs.name, Total: total, Unique: unique, Workers: workers}, now)
	return &Grid{o: o, gs: gs}
}

// Drain records the sweep's context being cancelled: queued jobs are
// abandoned while in-flight ones finish.
func (g *Grid) Drain(cause error, now time.Time) {
	g.o.mDrains.Inc()
	e := Event{Kind: EventDrain, Grid: g.gs.name}
	if cause != nil {
		e.Error = cause.Error()
	}
	g.o.emit(e, now)
}

// End closes the Run with the summary's authoritative totals and emits
// sweep_done.  Live approximations (queued/running) are snapped to zero so
// gauges read clean between runs.
func (g *Grid) End(ok, failed, cacheHits int, now time.Time) {
	o, gs := g.o, g.gs
	o.mu.Lock()
	o.gQueued.Add(int64(-gs.queued))
	gs.queued = 0
	gs.runs = 0
	gs.done = ok + failed
	gs.cached = cacheHits
	gs.failed = failed
	gs.endNS = o.rel(now)
	gs.finished = true
	o.mu.Unlock()
	o.emit(Event{
		Kind: EventSweepDone, Grid: gs.name, Total: gs.total,
		OK: ok, Failed: failed, CacheHits: cacheHits,
		ElapsedMS: (gs.endNS - gs.startNS) / int64(time.Millisecond),
	}, now)
}

// JobObs tracks one unique job from pickup to completion.  It is owned by
// a single worker goroutine: Mark appends to the local span chain without
// locking; the completion path takes the observer's lock.
type JobObs struct {
	o          *SweepObs
	gs         *gridState
	worker     int
	name, hash string
	copies     int
	lastNS     int64
	phases     []PhaseSpan
}

// StartJob marks a worker picking the job up.  The queue-wait span runs
// from the grid's feed start to now; copies is how many specs dedup onto
// this execution.
func (g *Grid) StartJob(worker int, name, hash string, copies int, now time.Time) *JobObs {
	o, gs := g.o, g.gs
	j := &JobObs{o: o, gs: gs, worker: worker, name: name, hash: hash, copies: copies, lastNS: gs.startNS}
	j.Mark(PhaseQueueWait, now)

	o.mu.Lock()
	gs.queued -= copies
	gs.runs++
	if worker >= 0 && worker < len(o.workers) {
		o.workers[worker] = workerState{busy: true, job: name, sinceNS: o.rel(now)}
	}
	o.mu.Unlock()

	o.gQueued.Add(int64(-copies))
	o.gRunning.Add(1)
	o.gBusy.Add(1)
	o.hQueueWait.Observe(float64(j.phases[0].EndNS-j.phases[0].StartNS) / float64(time.Second))
	o.emit(Event{Kind: EventJobStart, Grid: gs.name, Job: hash, Name: name, Worker: worker, Copies: copies}, now)
	return j
}

// Mark closes the current phase at now: the span runs from the end of the
// previous mark, keeping the chain contiguous.
func (j *JobObs) Mark(phase Phase, now time.Time) {
	ns := j.o.rel(now)
	if ns < j.lastNS {
		ns = j.lastNS
	}
	j.phases = append(j.phases, PhaseSpan{Phase: phase, StartNS: j.lastNS, EndNS: ns})
	j.lastNS = ns
}

// Retry closes the failed attempt's run span and records the retry.
func (j *JobObs) Retry(attempt int, cause error, now time.Time) {
	j.Mark(PhaseRun, now)
	j.o.mRetries.Inc()
	e := Event{Kind: EventRetry, Grid: j.gs.name, Job: j.hash, Name: j.name, Worker: j.worker, Attempt: attempt}
	if cause != nil {
		e.Error = firstLine(cause.Error())
	}
	j.o.emit(e, now)
}

// Panic records an attempt that panicked.
func (j *JobObs) Panic(attempt int, cause error, now time.Time) {
	j.o.mPanics.Inc()
	e := Event{Kind: EventPanic, Grid: j.gs.name, Job: j.hash, Name: j.name, Worker: j.worker, Attempt: attempt}
	if cause != nil {
		e.Error = firstLine(cause.Error())
	}
	j.o.emit(e, now)
}

// StoreWrite closes the store-write span and records the write.
func (j *JobObs) StoreWrite(ok bool, now time.Time) {
	j.Mark(PhaseStoreWrite, now)
	if ok {
		j.o.mStoreWrites.Inc()
	} else {
		j.o.mStoreFails.Inc()
	}
	e := Event{Kind: EventStoreWrite, Grid: j.gs.name, Job: j.hash, Name: j.name, Worker: j.worker}
	if !ok {
		e.Status = "failed"
	}
	j.o.emit(e, now)
}

// Done completes the job: status and cacheHit mirror the JobResult, and
// copies-aware accounting keeps every counter reconcilable with the sweep
// manifest's totals (ok, failed, cache_hits) — the obs-smoke CI job pins
// that equality.
func (j *JobObs) Done(status string, cacheHit bool, attempts int, elapsedMS int64, now time.Time) {
	o, gs := j.o, j.gs
	ok := status == "ok"
	hits := 0
	if ok {
		if cacheHit {
			hits = j.copies // store replay covers every copy
		} else {
			hits = j.copies - 1 // dedup copies replay the computation
		}
	}

	o.mu.Lock()
	gs.runs--
	gs.done += j.copies
	if ok {
		gs.cached += hits
	} else {
		gs.failed += j.copies
	}
	if j.worker >= 0 && j.worker < len(o.workers) {
		o.workers[j.worker] = workerState{}
	}
	if ok && !cacheHit {
		o.rate.Observe(now)
	}
	o.mu.Unlock()

	o.mJobs.Add(int64(j.copies))
	if ok {
		o.mOK.Add(int64(j.copies))
	} else {
		o.mFailed.Add(int64(j.copies))
	}
	if hits > 0 {
		o.mHits.Add(int64(hits))
		o.emit(Event{Kind: EventCacheHit, Grid: gs.name, Job: j.hash, Name: j.name,
			Worker: j.worker, CacheHit: cacheHit, Copies: hits}, now)
	}
	if ok && !cacheHit {
		o.hJob.Observe(float64(elapsedMS) / 1e3)
	}
	o.gRunning.Add(-1)
	o.gBusy.Add(-1)
	o.emit(Event{Kind: EventJobDone, Grid: gs.name, Job: j.hash, Name: j.name, Worker: j.worker,
		Attempt: attempts, Status: status, CacheHit: cacheHit, Copies: j.copies, ElapsedMS: elapsedMS}, now)

	if o.spans != nil {
		o.spans.Add(JobSpans{
			Name: j.name, Hash: j.hash, Grid: gs.name, Worker: j.worker,
			Status: status, CacheHit: cacheHit, Phases: j.phases,
		})
	}
}

// WorkerView is one worker's live state.
type WorkerView struct {
	Worker int    `json:"worker"`
	Busy   bool   `json:"busy"`
	Job    string `json:"job,omitempty"`
	BusyMS int64  `json:"busy_ms,omitempty"`
}

// GridView is one grid's live progress.
type GridView struct {
	Grid      string `json:"grid"`
	Total     int    `json:"total"`
	Unique    int    `json:"unique"`
	Queued    int    `json:"queued"`
	Running   int    `json:"running"`
	Done      int    `json:"done"`
	Cached    int    `json:"cached"`
	Failed    int    `json:"failed"`
	Finished  bool   `json:"finished"`
	ElapsedMS int64  `json:"elapsed_ms"`
	EtaMS     int64  `json:"eta_ms,omitempty"`
}

// ProgressView is the live-progress JSON document served at /progress.
type ProgressView struct {
	Schema     string       `json:"schema"`
	UptimeMS   int64        `json:"uptime_ms"`
	RatePerSec float64      `json:"rate_per_sec,omitempty"`
	Workers    []WorkerView `json:"workers"`
	Grids      []GridView   `json:"grids"`
}

// Progress renders the live fleet view: per-grid queued/running/done/
// cached counts, worker occupancy, and an ETA extrapolated from the
// rolling completion-rate window.
func (o *SweepObs) Progress(now time.Time) ProgressView {
	o.mu.Lock()
	defer o.mu.Unlock()
	nowNS := o.rel(now)
	v := ProgressView{Schema: ProgressSchema, UptimeMS: nowNS / int64(time.Millisecond)}
	rate, haveRate := o.rate.Rate(now)
	if haveRate {
		v.RatePerSec = rate
	}
	for i := range o.workers {
		wv := WorkerView{Worker: i, Busy: o.workers[i].busy, Job: o.workers[i].job}
		if wv.Busy {
			wv.BusyMS = (nowNS - o.workers[i].sinceNS) / int64(time.Millisecond)
		}
		v.Workers = append(v.Workers, wv)
	}
	for _, gs := range o.grids {
		gv := GridView{
			Grid: gs.name, Total: gs.total, Unique: gs.unique,
			Queued: gs.queued, Running: gs.runs,
			Done: gs.done, Cached: gs.cached, Failed: gs.failed,
			Finished: gs.finished,
		}
		endNS := gs.endNS
		if !gs.finished {
			endNS = nowNS
		}
		gv.ElapsedMS = (endNS - gs.startNS) / int64(time.Millisecond)
		if !gs.finished && haveRate && rate > 0 {
			remaining := gs.queued + gs.runs
			gv.EtaMS = int64(float64(remaining) / rate * 1e3)
		}
		v.Grids = append(v.Grids, gv)
	}
	return v
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
