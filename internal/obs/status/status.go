// Package status serves the fleet observability surfaces over HTTP: the
// metrics registry in Prometheus text format at /metrics, a liveness probe
// at /healthz, the live-progress JSON at /progress, and net/http/pprof
// under /debug/pprof/.  It lives outside internal/obs proper because a
// server needs goroutines and the wall clock, which dsre-lint's
// determinism analyzer bans from the audited obs package.
package status

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Options configures the endpoints.
type Options struct {
	// Registry backs /metrics; nil serves 404 there.
	Registry *obs.Registry
	// Progress returns the live-progress document for /progress (typically
	// SweepObs.Progress bound to the wall clock); nil serves 404 there.
	Progress func() obs.ProgressView
	// Start is the process start time reported by /healthz (zero means the
	// moment the handler was built).
	Start time.Time
}

// healthView is the /healthz JSON document: liveness plus the version
// identity operators use to spot skewed processes.  It mirrors the
// dsre-serve-health/v1 shape served by the daemon.
type healthView struct {
	Schema      string `json:"schema"`
	Status      string `json:"status"`
	SimVersion  string `json:"sim_version"`
	GoVersion   string `json:"go_version"`
	StartTimeMS int64  `json:"start_time_ms"`
	UptimeMS    int64  `json:"uptime_ms"`
}

// Server is a live status listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr immediately — a bad address fails the caller, not a
// background goroutine — and serves until Close.
func Serve(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("status: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(opts), ReadHeaderTimeout: 10 * time.Second}}
	go func() {
		// http.Serve returns ErrServerClosed-ish errors on Close; the
		// listener owns the lifecycle, so there is nothing to report.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound address (resolves ":0" for tests).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }

// Handler builds the status mux (exported so tests can drive it without a
// socket).
func Handler(opts Options) http.Handler {
	mux := http.NewServeMux()
	start := opts.Start
	if start.IsZero() {
		start = time.Now()
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(healthView{
			Schema: "dsre-serve-health/v1", Status: "ok",
			SimVersion: sim.Version, GoVersion: runtime.Version(),
			StartTimeMS: start.UnixMilli(),
			UptimeMS:    time.Since(start).Milliseconds(),
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if opts.Registry == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = opts.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		if opts.Progress == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(opts.Progress())
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "dsre status endpoints:")
		fmt.Fprintln(w, "  /metrics      Prometheus text exposition")
		fmt.Fprintln(w, "  /healthz      liveness probe")
		fmt.Fprintln(w, "  /progress     live sweep progress (dsre-progress/v1)")
		fmt.Fprintln(w, "  /debug/pprof  Go runtime profiles")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
