//go:build dsre_assert

package sim

import (
	"fmt"
	"strings"
	"testing"
)

// TestAssertNegativeDelayPanics proves the dsre_assert checks are live in
// tagged builds: scheduling a message into the past must panic instead of
// silently clamping to "now".
func TestAssertNegativeDelayPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("sendAfter(-1) did not panic under -tags dsre_assert")
		}
		if !strings.Contains(fmt.Sprint(r), "negative injection delay") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	var mc Machine // zero-value injq is a valid empty schedule queue
	mc.sendAfter(-1, 0, 0, message{})
}
