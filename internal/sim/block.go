package sim

import (
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/isa"
)

// instState is the dynamic state of one instruction slot in a mapped block:
// a DSRE reservation station.  The hot per-instruction state lives in the
// owning blockInst's structure-of-arrays fields instead: operand slots in
// the flat ops array (stride isa.NumSlots) and the needExec/queued flags in
// the need/queued bitmaps, so the scheduler and delivery paths touch dense
// cache lines rather than striding over this struct.
type instState struct {
	// inflight counts executions currently in the ALU pipeline; commit-only
	// emission must wait for quiescence or it would certify a stale output.
	inflight int
	// fired counts executions (re-executions are fired > 1).
	fired int64
	// lastOut and outTag describe the most recent output broadcast.
	lastOut   int64
	outTag    core.Tag
	execValid bool

	// committedSent marks that the final (committed) output was emitted.
	committedSent bool
	// nullTag is the newest predicate tag for which a store-null was sent.
	nullTag      core.Tag
	nullSent     bool
	nullCommSent bool
	// storeCommitCounted dedups this store's contribution to the block's
	// committed-store count.
	storeCommitCounted bool
	// sentAddrCom/sentDataCom dedup partial store-commit messages.
	sentAddrCom bool
	sentDataCom bool
	// Value prediction state (loads only): the value speculatively
	// broadcast at map time, and a training dedup flag.
	vpValid   bool
	vpTrained bool
	vpValue   int64
}

// slot returns instruction i's operand slot s in the block's flat SoA
// operand buffer.
func (b *blockInst) slot(i int, s isa.Slot) *core.OperandSlot {
	return &b.ops[i*int(isa.NumSlots)+int(s)]
}

// storeCommitFlags reports whether the commit wave has reached a store's
// address and data operands (the predicate, when present, gates both).
func (b *blockInst) storeCommitFlags(i int, in *isa.Inst) (addrCom, dataCom bool) {
	predOK := in.Pred == isa.PredNone || b.slot(i, isa.SlotP).Committed
	return predOK && b.slot(i, isa.SlotA).Committed, predOK && b.slot(i, isa.SlotB).Committed
}

// inputsCommitted reports whether every operand slot instruction i waits
// on holds a committed value.
func (b *blockInst) inputsCommitted(i int, in *isa.Inst) bool {
	for s := isa.SlotA; s < isa.NumSlots; s++ {
		if in.NeedsSlot(s) && !b.slot(i, s).Committed {
			return false
		}
	}
	return true
}

// operandsPresent reports whether every needed slot of instruction i holds
// a value.
func (b *blockInst) operandsPresent(i int, in *isa.Inst) bool {
	for s := isa.SlotA; s < isa.NumSlots; s++ {
		if in.NeedsSlot(s) && !b.slot(i, s).Present {
			return false
		}
	}
	return true
}

// predEnabled reports instruction i's predicate check: ok is false while
// the predicate has not arrived.
func (b *blockInst) predEnabled(i int, in *isa.Inst) (enabled, ok bool) {
	if in.Pred == isa.PredNone {
		return true, true
	}
	p := b.slot(i, isa.SlotP)
	if !p.Present {
		return false, false
	}
	truth := p.Value != 0
	return (in.Pred == isa.PredTrue) == truth, true
}

// writeState is one register write slot of a mapped block, physically
// homed at a register tile.
type writeState struct {
	slot    core.OperandSlot
	counted bool // contributed to writesCommitted
}

// blockInst is one in-flight dynamic block.
type blockInst struct {
	seq     int64
	blockID int
	bdef    *isa.Block
	frame   int32
	gen     uint32

	insts  []instState
	writes []writeState

	// ops is the block's operand buffer in structure-of-arrays form: the
	// isa.NumSlots operand slots of instruction i live at
	// ops[i*NumSlots : (i+1)*NumSlots] (see slot).
	ops []core.OperandSlot
	// need marks instructions that must (re-)execute: an operand changed
	// since the last execution, or they have never executed.
	need bitset.Mask128
	// queued marks instructions resident in a tile ready mask.
	queued bitset.Mask128

	// branch is the block's control outcome (value = next block ID),
	// written by whichever branch instruction fires.
	branch        core.OperandSlot
	branchCounted bool

	// readBind maps each register read slot to the producing older block's
	// sequence number, or -1 for the architectural register file.
	readBind []int64
	// regRead maps register number -> read slot index, for producer pushes.
	regRead map[uint8]int

	writesCommitted int
	storesCommitted int
	numStores       int
	predictedNext   int   // what fetch predicted would follow (for stats)
	mapCycle        int64 // cycle the block was mapped, for residency spans
}

// outputsCommitted reports whether the block's architectural outputs are
// all final: branch, register writes and stores (or their null tokens).
func (b *blockInst) outputsCommitted() bool {
	return b.branch.Committed &&
		b.writesCommitted == len(b.writes) &&
		b.storesCommitted == b.numStores
}
