package sim

import "repro/internal/account"

// Sample is one telemetry observation window: the machine's dynamic state
// at a cycle boundary plus windowed rate counters since the previous
// sample.  The ring-buffered collector lives in internal/telemetry; the
// machine only produces Samples so the hot path stays a single nil check
// when sampling is disabled.
type Sample struct {
	// Cycle is the cycle at the end of the window; Window is the number of
	// cycles the windowed counters cover.
	Cycle  int64 `json:"cycle"`
	Window int64 `json:"window"`

	// IPC is committed executions per cycle over the window.
	IPC float64 `json:"ipc"`
	// CommittedBlocks counts blocks retired in the window.
	CommittedBlocks int64 `json:"committed_blocks"`

	// Instantaneous occupancies at sample time.
	InFlightBlocks int `json:"in_flight_blocks"` // mapped, uncommitted blocks
	WindowInsts    int `json:"window_insts"`     // instruction slots resident (ROB equivalent)
	LSQOccupancy   int `json:"lsq_occupancy"`    // resident load/store entries
	NoCPending     int `json:"noc_pending"`      // operand-mesh messages in flight

	// Windowed speculation counters.
	Waves   int64 `json:"waves"`
	Reexecs int64 `json:"reexecs"`
	Flushes int64 `json:"flushes"`

	// Windowed cache miss rates (0 when the window had no accesses).
	L1DMissRate float64 `json:"l1d_miss_rate"`
	L2MissRate  float64 `json:"l2_miss_rate"`

	// CPI is the windowed cycle-accounting delta (all-zero when accounting
	// is off); windowed buckets sum to the window's cycle count × slots.
	CPI account.CPIStack `json:"cpi"`
}

// SampleSink receives telemetry samples as the machine produces them
// (implemented by telemetry.Sampler).
type SampleSink interface {
	Sample(Sample)
}

// sampleOrigin snapshots the cumulative counters at a window start so the
// next sample can report deltas.
type sampleOrigin struct {
	cycle              int64
	committedExecs     int64
	committedBlocks    int64
	waves              int64
	reexecs            int64
	flushes            int64
	l1dHits, l1dMisses int64
	l2Hits, l2Misses   int64
	acct               account.CPIStack
}

func (mc *Machine) sampleOriginNow() sampleOrigin {
	o := sampleOrigin{
		cycle:           mc.cycle,
		committedExecs:  mc.stats.CommittedExecs,
		committedBlocks: mc.committed,
		waves:           mc.wave.Waves,
		reexecs:         mc.stats.Reexecs,
		flushes:         mc.stats.Flushes,
		l1dHits:         mc.hier.L1D.Stats.Hits,
		l1dMisses:       mc.hier.L1D.Stats.Misses,
		l2Hits:          mc.hier.L2.Stats.Hits,
		l2Misses:        mc.hier.L2.Stats.Misses,
	}
	if mc.acct != nil {
		o.acct = mc.acct.stack
	}
	return o
}

// SetSampler attaches a telemetry sink sampled every `every` cycles; a nil
// sink or non-positive interval detaches.  Sampling costs one comparison
// per cycle when attached and one nil check when not.
func (mc *Machine) SetSampler(every int64, sink SampleSink) {
	if sink == nil || every < 1 {
		mc.sampleSink = nil
		return
	}
	mc.sampleSink = sink
	mc.sampleEvery = every
	mc.sampleAt = mc.cycle + every
	mc.sampleBase = mc.sampleOriginNow()
}

// rate returns misses/(hits+misses), or 0 for an empty window.
func rate(misses, hits int64) float64 {
	if misses+hits == 0 {
		return 0
	}
	return float64(misses) / float64(misses+hits)
}

// takeSample closes the current window, emits it to the sink, and opens the
// next one.  Called from step() at window boundaries and from Run() for the
// final partial window.
func (mc *Machine) takeSample() {
	base := mc.sampleBase
	now := mc.sampleOriginNow()
	win := now.cycle - base.cycle
	mc.sampleAt = mc.cycle + mc.sampleEvery
	mc.sampleBase = now
	if win <= 0 {
		return
	}
	insts := 0
	for _, b := range mc.window {
		insts += len(b.insts)
	}
	s := Sample{
		Cycle:           mc.cycle,
		Window:          win,
		IPC:             float64(now.committedExecs-base.committedExecs) / float64(win),
		CommittedBlocks: now.committedBlocks - base.committedBlocks,
		InFlightBlocks:  len(mc.window),
		WindowInsts:     insts,
		LSQOccupancy:    mc.q.Occupancy(),
		NoCPending:      mc.net.Pending(),
		Waves:           now.waves - base.waves,
		Reexecs:         now.reexecs - base.reexecs,
		Flushes:         now.flushes - base.flushes,
		L1DMissRate:     rate(now.l1dMisses-base.l1dMisses, now.l1dHits-base.l1dHits),
		L2MissRate:      rate(now.l2Misses-base.l2Misses, now.l2Hits-base.l2Hits),
		CPI:             now.acct.Sub(base.acct),
	}
	mc.lastSample = s
	mc.haveSample = true
	mc.sampleSink.Sample(s)
}
