package program

import (
	"strings"
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// buildCountdown builds a two-block program: count r1 down to zero, then
// store the number of iterations at addr 0x100 and halt.
func buildCountdown(t *testing.T, n int64) *isa.Program {
	t.Helper()
	b := New("countdown")
	loop := b.NewBlock("loop")
	v := loop.Read(1)
	cnt := loop.Read(2)
	v2 := loop.Op(isa.OpSub, v, loop.Const(1))
	cnt2 := loop.Op(isa.OpAdd, cnt, loop.Const(1))
	loop.Write(1, v2)
	loop.Write(2, cnt2)
	more := loop.Op(isa.OpTgt, v2, loop.Const(0))
	loop.BranchIf(more, "loop", "done")

	done := b.NewBlock("done")
	c := done.Read(2)
	done.Store(done.Const(0x100), 0, c)
	done.Halt()

	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuilderCountdown(t *testing.T) {
	p := buildCountdown(t, 5)
	var regs [isa.NumRegs]int64
	regs[1] = 5
	res, err := emu.Run(p, &regs, mem.New(), emu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Mem.Read(0x100, 8); got != 5 {
		t.Errorf("iterations = %d, want 5", got)
	}
	if res.Blocks != 6 {
		t.Errorf("blocks = %d, want 6", res.Blocks)
	}
}

// TestFanoutExpansion checks that a value with many consumers is spread
// through a mov tree and the program still computes correctly.
func TestFanoutExpansion(t *testing.T) {
	b := New("fanout")
	blk := b.NewBlock("only")
	v := blk.Read(1)
	// 20 consumers of v: sum must be 20*v.
	sum := blk.Const(0)
	for i := 0; i < 20; i++ {
		sum = blk.Op(isa.OpAdd, sum, v)
	}
	blk.Write(2, sum)
	blk.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	movs := 0
	for _, in := range p.Blocks[0].Insts {
		if in.Op == isa.OpMov {
			movs++
		}
	}
	if movs == 0 {
		t.Error("expected mov fanout tree for 20 consumers")
	}
	// No producer may exceed the target limit.
	for i, in := range p.Blocks[0].Insts {
		if len(in.Targets) > isa.MaxTargets {
			t.Errorf("i%d has %d targets", i, len(in.Targets))
		}
	}
	for _, r := range p.Blocks[0].Reads {
		if len(r.Targets) > isa.MaxTargets {
			t.Errorf("read r%d has %d targets", r.Reg, len(r.Targets))
		}
	}

	var regs [isa.NumRegs]int64
	regs[1] = 7
	res, err := emu.Run(p, &regs, mem.New(), emu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regs[2] != 140 {
		t.Errorf("r2 = %d, want 140", res.Regs[2])
	}
}

// TestSelect checks both arms of the select pattern.
func TestSelect(t *testing.T) {
	for _, c := range []struct{ p, want int64 }{{1, 111}, {0, 222}, {-5, 111}} {
		b := New("select")
		blk := b.NewBlock("only")
		pr := blk.Read(1)
		v := blk.Select(pr, blk.Const(111), blk.Const(222))
		blk.Write(2, v)
		blk.Halt()
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		var regs [isa.NumRegs]int64
		regs[1] = c.p
		res, err := emu.Run(p, &regs, mem.New(), emu.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Regs[2] != c.want {
			t.Errorf("select(%d) = %d, want %d", c.p, res.Regs[2], c.want)
		}
	}
}

// TestPredicatedStore checks StoreIf in both the firing and nullified arms.
func TestPredicatedStore(t *testing.T) {
	for _, c := range []struct{ p, want int64 }{{1, 99}, {0, 0}} {
		b := New("predst")
		blk := b.NewBlock("only")
		pr := blk.Read(1)
		blk.StoreIf(pr, true, blk.Const(0x200), 0, blk.Const(99))
		blk.Halt()
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		var regs [isa.NumRegs]int64
		regs[1] = c.p
		res, err := emu.Run(p, &regs, mem.New(), emu.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Mem.Read(0x200, 8); got != c.want {
			t.Errorf("pred %d: mem = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestIndirectBranch(t *testing.T) {
	b := New("indirect")
	first := b.NewBlock("first")
	tgt := first.Read(1)
	first.BranchInd(tgt)

	second := b.NewBlock("second")
	second.Write(2, second.Const(42))
	second.Halt()

	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var regs [isa.NumRegs]int64
	regs[1] = 1 // block ID of "second"
	res, err := emu.Run(p, &regs, mem.New(), emu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regs[2] != 42 {
		t.Errorf("r2 = %d, want 42", res.Regs[2])
	}
}

func TestBuildErrors(t *testing.T) {
	t.Run("unknown label", func(t *testing.T) {
		b := New("bad")
		blk := b.NewBlock("x")
		blk.Branch("nowhere")
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "unknown label") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("duplicate label", func(t *testing.T) {
		b := New("bad")
		b.NewBlock("x").Halt()
		b.NewBlock("x").Halt()
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("no blocks", func(t *testing.T) {
		if _, err := New("empty").Build(); err == nil {
			t.Error("expected error")
		}
	})
	t.Run("too many mem ops", func(t *testing.T) {
		b := New("bad")
		blk := b.NewBlock("x")
		base := blk.Read(1)
		for i := 0; i < isa.MaxMemOps+1; i++ {
			blk.Store(base, int64(8*i), base)
		}
		blk.Halt()
		if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "memory operations") {
			t.Errorf("err = %v", err)
		}
	})
}

func TestValidateRejectsCorruption(t *testing.T) {
	fresh := func() *isa.Program { return buildCountdown(t, 1) }

	t.Run("backward target", func(t *testing.T) {
		p := fresh()
		for i := range p.Blocks[0].Insts {
			in := &p.Blocks[0].Insts[i]
			if len(in.Targets) > 0 && in.Targets[0].Kind == isa.TargetInst {
				in.Targets[0].Index = 0
			}
		}
		if err := Validate(p); err == nil {
			t.Error("expected validation failure")
		}
	})
	t.Run("no branch", func(t *testing.T) {
		p := fresh()
		insts := p.Blocks[1].Insts
		kept := insts[:0]
		for _, in := range insts {
			if !in.Op.IsBranch() {
				kept = append(kept, in)
			}
		}
		p.Blocks[1].Insts = kept
		if err := Validate(p); err == nil {
			t.Error("expected validation failure")
		}
	})
	t.Run("predicated load", func(t *testing.T) {
		p := fresh()
		blk := p.Blocks[1]
		for i := range blk.Insts {
			if blk.Insts[i].Op.IsStore() {
				blk.Insts[i].Op = isa.OpLd
				blk.Insts[i].Pred = isa.PredTrue
			}
		}
		if err := Validate(p); err == nil {
			t.Error("expected validation failure")
		}
	})
	t.Run("lsid gap", func(t *testing.T) {
		p := fresh()
		blk := p.Blocks[1]
		for i := range blk.Insts {
			if blk.Insts[i].Op.IsMem() {
				blk.Insts[i].LSID = 5
			}
		}
		if err := Validate(p); err == nil {
			t.Error("expected validation failure")
		}
	})
	t.Run("branch out of range", func(t *testing.T) {
		p := fresh()
		blk := p.Blocks[0]
		for i := range blk.Insts {
			if blk.Insts[i].Op == isa.OpBro && blk.Insts[i].Imm >= 0 {
				blk.Insts[i].Imm = 99
			}
		}
		if err := Validate(p); err == nil {
			t.Error("expected validation failure")
		}
	})
}

func TestDisassembly(t *testing.T) {
	p := buildCountdown(t, 1)
	s := p.String()
	for _, want := range []string{"program", "block 0", "block 1", "read r1", "bro", "st"} {
		if !strings.Contains(s, want) {
			t.Errorf("disassembly missing %q:\n%s", want, s)
		}
	}
}
