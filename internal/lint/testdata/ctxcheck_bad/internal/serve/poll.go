// Package serve loops without observing cancellation: the ctxcheck
// fixture.
package serve

import (
	"context"
	"time"
)

// Poll spins on a channel and a sleep with no way to stop it: finding.
func Poll(ready chan struct{}) {
	for {
		<-ready
		time.Sleep(time.Millisecond)
	}
}

// Drain ranges a channel that shutdown never closes: finding.
func Drain(ch chan int) int {
	total := 0
	for v := range ch {
		total += v
	}
	return total
}

// Wait observes ctx.Done alongside the work channel: clean.
func Wait(ctx context.Context, tick <-chan struct{}) {
	for {
		select {
		case <-tick:
		case <-ctx.Done():
			return
		}
	}
}
