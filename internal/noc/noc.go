// Package noc models the operand network of a TRIPS-like EDGE processor: a
// 2-D mesh with dimension-order (X-then-Y) routing, a configurable per-hop
// latency, and per-link bandwidth with FIFO queueing.
//
// The network is generic over its payload so it carries operand messages,
// commit-wave tokens, memory traffic and control messages without knowing
// their contents.  Links preserve FIFO order, but messages taking different
// routes may be reordered — the DSRE protocol's wave tags are what make that
// safe, and the simulator's tests rely on it.
//
// Ticking is activity-tracked: an index of routers with resident flits
// (non-empty out or in-transit queues) lets Tick visit only live routers,
// in ascending node order so results are bit-identical to the dense scan
// (Config.DenseTick restores the dense scan for differential testing).
package noc

import (
	"fmt"
	"math/bits"
)

// Dir is a mesh link direction.
type dir int

const (
	dirE dir = iota
	dirW
	dirN
	dirS
	numDirs
)

// Config describes the mesh.
type Config struct {
	Width  int
	Height int
	// HopLatency is the per-hop transit time in cycles (>= 1).
	HopLatency int
	// LinkBandwidth is the number of messages one link accepts per cycle.
	LinkBandwidth int
	// LocalLatency is the delivery delay for messages whose source and
	// destination coincide (same-tile bypass); >= 1.
	LocalLatency int
	// DenseTick makes Tick scan every router instead of only the active
	// ones — the reference path the active-index bookkeeping is verified
	// against (sim.Config.SlowTick selects it).
	DenseTick bool
}

// Stats counts network activity.
type Stats struct {
	Messages  int64 // injected
	Delivered int64
	Hops      int64 // link traversals
	QueueWait int64 // cycles messages spent waiting for link bandwidth
}

type flit[T any] struct {
	msg      T
	dst      int
	enqueued int64 // cycle it entered the current queue, for QueueWait
}

type transit[T any] struct {
	flit     flit[T]
	arriveAt int64
}

type router[T any] struct {
	out [numDirs][]flit[T]
	// inTransit holds flits this router has transmitted that have not yet
	// reached the neighbouring router.
	inTransit [numDirs][]transit[T]
	// resident counts flits across out and inTransit; the active index
	// tracks resident > 0.
	resident int
}

// Network is the mesh.  Deliver is invoked during Tick for every message
// reaching its destination's local port.
type Network[T any] struct {
	cfg     Config
	routers []router[T]
	local   []transit[T] // src==dst messages awaiting local delivery
	// localSpare is the detached buffer Tick swaps with local, so local
	// delivery with stragglers does not reallocate every cycle.
	localSpare []transit[T]
	deliver    func(now int64, node int, msg T)
	pending    int
	// active is a bitmask over routers with resident flits, iterated in
	// ascending node order to match the dense scan exactly.
	active []uint64
	Stats  Stats
}

// New builds a mesh network.  deliver must not call back into Send
// synchronously for the same cycle's delivery (enqueueing is fine).
func New[T any](cfg Config, deliver func(now int64, node int, msg T)) (*Network[T], error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("noc: %dx%d mesh", cfg.Width, cfg.Height)
	}
	if cfg.HopLatency < 1 {
		return nil, fmt.Errorf("noc: hop latency %d < 1", cfg.HopLatency)
	}
	if cfg.LinkBandwidth < 1 {
		return nil, fmt.Errorf("noc: link bandwidth %d < 1", cfg.LinkBandwidth)
	}
	if cfg.LocalLatency < 1 {
		return nil, fmt.Errorf("noc: local latency %d < 1", cfg.LocalLatency)
	}
	n := cfg.Width * cfg.Height
	return &Network[T]{
		cfg:     cfg,
		routers: make([]router[T], n),
		active:  make([]uint64, (n+63)/64),
		deliver: deliver,
	}, nil
}

// Node converts mesh coordinates to a node index.
func (n *Network[T]) Node(x, y int) int { return y*n.cfg.Width + x }

// Coords converts a node index back to mesh coordinates.
func (n *Network[T]) Coords(node int) (x, y int) {
	return node % n.cfg.Width, node / n.cfg.Width
}

// Distance returns the Manhattan distance between two nodes.
func (n *Network[T]) Distance(a, b int) int {
	ax, ay := n.Coords(a)
	bx, by := n.Coords(b)
	return abs(ax-bx) + abs(ay-by)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// addResident and subResident maintain the active-router index.
func (n *Network[T]) addResident(node int) {
	r := &n.routers[node]
	if r.resident == 0 {
		n.active[node>>6] |= 1 << (uint(node) & 63)
	}
	r.resident++
}

func (n *Network[T]) subResident(node int) {
	r := &n.routers[node]
	r.resident--
	if r.resident == 0 {
		n.active[node>>6] &^= 1 << (uint(node) & 63)
	}
}

// Send injects a message at src destined for dst.
func (n *Network[T]) Send(now int64, src, dst int, msg T) {
	n.Stats.Messages++
	n.pending++
	if src == dst {
		n.local = append(n.local, transit[T]{
			flit:     flit[T]{msg: msg, dst: dst},
			arriveAt: now + int64(n.cfg.LocalLatency),
		})
		return
	}
	d := n.route(src, dst)
	n.routers[src].out[d] = append(n.routers[src].out[d], flit[T]{msg: msg, dst: dst, enqueued: now})
	n.addResident(src)
}

// route picks the next direction from node toward dst (X first, then Y).
func (n *Network[T]) route(node, dst int) dir {
	x, y := n.Coords(node)
	dx, dy := n.Coords(dst)
	switch {
	case dx > x:
		return dirE
	case dx < x:
		return dirW
	case dy > y:
		return dirN
	default:
		return dirS
	}
}

// neighbor returns the node on the other end of a link.
func (n *Network[T]) neighbor(node int, d dir) int {
	x, y := n.Coords(node)
	switch d {
	case dirE:
		x++
	case dirW:
		x--
	case dirN:
		y++
	case dirS:
		y--
	}
	return n.Node(x, y)
}

// Tick advances the network one cycle: arrivals are processed (delivered or
// forwarded), then each link transmits up to its bandwidth.  It reports
// whether anything moved — false means the cycle was a provable no-op (all
// resident flits, if any, are still in transit toward a future cycle).
func (n *Network[T]) Tick(now int64) bool {
	moved := false

	// Local deliveries.  The deliver callback may Send again (including to
	// the same node), so the pending list is detached before iterating —
	// a compact-in-place filter would silently drop messages enqueued
	// during delivery.  The detached buffer is recycled via localSpare.
	if len(n.local) > 0 {
		pending := n.local
		n.local = n.localSpare[:0]
		for i := range pending {
			t := &pending[i]
			if t.arriveAt <= now {
				n.Stats.Delivered++
				n.pending--
				n.deliver(now, t.flit.dst, t.flit.msg)
				moved = true
			} else {
				n.local = append(n.local, *t)
			}
		}
		n.localSpare = pending[:0]
	}

	// Arrivals at the far end of each link, then transmissions bounded by
	// link bandwidth.  Arrival forwarding only appends to out queues (never
	// to inTransit), and transmission only moves flits within one router,
	// so visiting routers in ascending order — dense or via the index —
	// processes exactly the same flits in the same order.
	if n.cfg.DenseTick {
		for node := range n.routers {
			if n.tickArrivals(now, node) {
				moved = true
			}
		}
		for node := range n.routers {
			if n.tickTransmit(now, node) {
				moved = true
			}
		}
		return moved
	}
	for w, word := range n.active {
		// The word is snapshotted: arrivals may activate routers ahead of
		// the scan, but a freshly activated router has an empty inTransit,
		// so skipping it matches the dense scan's no-op visit.
		for word != 0 {
			node := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if n.tickArrivals(now, node) {
				moved = true
			}
		}
	}
	for w, word := range n.active {
		// Transmission never touches other routers, and routers activated
		// by the arrival phase hold only out-queue flits enqueued *this*
		// cycle — the dense scan would visit them, find enqueued == now
		// flits, and transmit them.  So the transmit phase must see bits
		// set during the arrival phase: the live mask is re-read here, and
		// within a word the snapshot is safe because tickTransmit never
		// sets or clears any bit (resident counts are unchanged).
		for word != 0 {
			node := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if n.tickTransmit(now, node) {
				moved = true
			}
		}
	}
	return moved
}

// tickArrivals processes one router's due in-transit flits: delivery at the
// destination, or forwarding into the next router's out queue.
func (n *Network[T]) tickArrivals(now int64, node int) bool {
	r := &n.routers[node]
	moved := false
	for d := dir(0); d < numDirs; d++ {
		ts := r.inTransit[d]
		if len(ts) == 0 {
			continue
		}
		// Flits are large (the payload is an operand message); iterate by
		// pointer and compact in place so kept flits are only moved when a
		// removal ahead of them opened a gap.  Forwarding and delivery only
		// append to out queues and the local list, never to any inTransit,
		// so ts stays valid throughout.
		keep := 0
		for i := range ts {
			t := &ts[i]
			if t.arriveAt > now {
				if keep != i {
					ts[keep] = *t
				}
				keep++
				continue
			}
			moved = true
			n.subResident(node)
			at := n.neighbor(node, d)
			if at == t.flit.dst {
				n.Stats.Delivered++
				n.pending--
				n.deliver(now, at, t.flit.msg)
				continue
			}
			nd := n.route(at, t.flit.dst)
			t.flit.enqueued = now
			n.routers[at].out[nd] = append(n.routers[at].out[nd], t.flit)
			n.addResident(at)
		}
		r.inTransit[d] = ts[:keep]
	}
	return moved
}

// tickTransmit moves up to LinkBandwidth flits per out queue onto the link.
func (n *Network[T]) tickTransmit(now int64, node int) bool {
	r := &n.routers[node]
	moved := false
	for d := dir(0); d < numDirs; d++ {
		q := r.out[d]
		if len(q) == 0 {
			continue
		}
		moved = true
		k := n.cfg.LinkBandwidth
		if k > len(q) {
			k = len(q)
		}
		arriveAt := now + int64(n.cfg.HopLatency)
		for i := 0; i < k; i++ {
			n.Stats.Hops++
			n.Stats.QueueWait += now - q[i].enqueued
			r.inTransit[d] = append(r.inTransit[d], transit[T]{flit: q[i], arriveAt: arriveAt})
		}
		m := copy(q, q[k:])
		r.out[d] = q[:m]
	}
	return moved
}

// NextEvent returns the earliest cycle >= now at which Tick would move
// anything: now itself if any out queue holds a flit (it transmits this
// cycle), otherwise the earliest in-transit or local arrival.  With nothing
// pending it returns Never.
func (n *Network[T]) NextEvent(now int64) int64 {
	if n.pending == 0 {
		return Never
	}
	next := Never
	for _, t := range n.local {
		if t.arriveAt < next {
			next = t.arriveAt
		}
	}
	for w, word := range n.active {
		for word != 0 {
			node := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			r := &n.routers[node]
			for d := dir(0); d < numDirs; d++ {
				if len(r.out[d]) > 0 {
					return now
				}
				for _, t := range r.inTransit[d] {
					if t.arriveAt < next {
						next = t.arriveAt
					}
				}
			}
		}
	}
	if next < now {
		next = now
	}
	return next
}

// Never is NextEvent's "no pending event" sentinel, far beyond any cycle
// budget.
const Never = int64(1) << 62

// Pending returns the number of messages in flight (injected, not yet
// delivered); zero means the network is quiet.
func (n *Network[T]) Pending() int { return n.pending }
