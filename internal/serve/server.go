package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/explain"
	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// maxSubmitBytes bounds a submit request body.
const maxSubmitBytes = 16 << 20

// maxShippedChains / maxShippedPhases bound the worker span chains the
// daemon ingests per completed job (a chain per engine attempt is normal;
// anything past these limits is silently truncated).
const (
	maxShippedChains = 16
	maxShippedPhases = 256
)

// Config assembles a Server.
type Config struct {
	// Store is the shared content-addressed result cache (required).
	Store sweep.Store
	// Obs is the daemon observer (required; share its registry with the
	// engine's SweepObs for a single /metrics page).
	Obs *obs.ServeObs
	// Engine executes jobs locally; nil runs a fleet-only daemon (every
	// job waits for a remote worker).
	Engine *sweep.Engine
	// EngineObs, when set, nests the engine's live progress in /progress.
	EngineObs *obs.SweepObs

	// LeaseTTL bounds fleet-lease heartbeat gaps (default 10s).
	LeaseTTL time.Duration
	// MaxAttempts bounds lease grants per job (default 3).
	MaxAttempts int
	// BatchMax bounds the local dispatcher's batch size (default 8).
	BatchMax int
	// BatchLinger is how long the dispatcher waits after the first queued
	// job for more to coalesce into one engine.Run (default 25ms).
	BatchLinger time.Duration

	// QuotaRate/QuotaBurst give each tenant a token bucket over submitted
	// specs; zero rate disables quotas.
	QuotaRate  float64
	QuotaBurst float64

	// ManifestDir, when set, receives one dsre-sweep-manifest/v1 file per
	// sweep at drain time (<dir>/<sweep-id>.json).
	ManifestDir string

	// Sink, when set, receives the per-request http_request/slow_request
	// events (share the daemon's JSONL sink with Obs).
	Sink obs.EventSink
	// SlowRequest is the latency threshold past which a request emits a
	// dedicated slow_request event (0 disables).
	SlowRequest time.Duration
	// TraceSeed seeds the trace/span ID minter (0 derives it from the
	// clock at New; tests pin it for reproducible IDs).
	TraceSeed uint64

	// Now is the clock (tests inject; nil means time.Now).
	Now func() time.Time
}

// Server is the dsre-serve daemon core: queue, quotas, local dispatcher,
// lease janitor and the dsre-serve/v1 HTTP surface.  Build with New, wire
// Handler into an http.Server, call Start, and Drain on shutdown.
type Server struct {
	cfg       Config
	q         *Queue
	quotas    *Quotas
	mux       *http.ServeMux
	red       *tracing.RED
	startTime time.Time

	draining  atomic.Bool
	drainCh   chan struct{} // closed when drain begins: dispatcher stops leasing
	stopCh    chan struct{} // closed when the janitor should exit
	drainOnce sync.Once
	abandoned int

	runCtx     context.Context // local engine runs; hard-cancelled at the drain deadline
	hardCancel context.CancelFunc

	dispatchDone chan struct{}
	janitorDone  chan struct{}
	started      atomic.Bool
}

// New validates the config and builds the daemon core (Start launches its
// goroutines).
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("serve: config needs a Store")
	}
	if cfg.Obs == nil {
		return nil, fmt.Errorf("serve: config needs an Obs")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = 8
	}
	if cfg.BatchLinger < 0 {
		cfg.BatchLinger = 0
	} else if cfg.BatchLinger == 0 {
		cfg.BatchLinger = 25 * time.Millisecond
	}
	seed := cfg.TraceSeed
	if seed == 0 {
		seed = uint64(cfg.Now().UnixNano())
	}
	minter := tracing.NewMinter(seed)
	s := &Server{
		cfg:          cfg,
		q:            NewQueue(cfg.Obs, cfg.LeaseTTL, cfg.MaxAttempts, minter),
		quotas:       NewQuotas(cfg.QuotaRate, cfg.QuotaBurst),
		red:          tracing.NewRED(cfg.Obs.Reg, cfg.Sink, minter, cfg.Now, cfg.SlowRequest),
		startTime:    cfg.Now(),
		drainCh:      make(chan struct{}),
		stopCh:       make(chan struct{}),
		dispatchDone: make(chan struct{}),
		janitorDone:  make(chan struct{}),
	}
	s.runCtx, s.hardCancel = context.WithCancel(context.Background())
	s.mux = s.routes()
	return s, nil
}

// Queue exposes the job table (tests and the drain path).
func (s *Server) Queue() *Queue { return s.q }

func (s *Server) now() time.Time { return s.cfg.Now() }

// Start launches the lease janitor and (when an engine is configured) the
// local batch dispatcher.
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	go s.janitor()
	if s.cfg.Engine != nil {
		go s.dispatch()
	} else {
		close(s.dispatchDone)
	}
}

// janitor expires fleet leases whose heartbeats stopped.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	period := s.q.leaseTTL / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.q.ExpireLeases(s.now(), false)
		case <-s.stopCh:
			return
		}
	}
}

// dispatch is the local execution loop: wait for queued work, linger
// briefly so bursts coalesce, lease a batch under non-expiring leases and
// run it through the engine.  On drain it finishes the batch in flight,
// releases anything the engine abandoned, and exits.
func (s *Server) dispatch() {
	defer close(s.dispatchDone)
	for {
		if !s.waitWork() {
			return
		}
		if s.cfg.BatchLinger > 0 {
			t := time.NewTimer(s.cfg.BatchLinger)
			select {
			case <-t.C:
			case <-s.drainCh:
				t.Stop()
				return
			}
		}
		batch := s.q.LeaseBatch("local", s.cfg.BatchMax, true, s.now())
		if len(batch) == 0 {
			continue
		}
		specs := make([]sweep.JobSpec, len(batch))
		for i := range batch {
			specs[i] = batch[i].Spec
		}
		sum, _ := s.cfg.Engine.Run(s.runCtx, specs)
		for i := range sum.Jobs {
			r := sum.Jobs[i]
			if r.Status == sweep.StatusFailed && s.runCtx.Err() != nil && strings.HasPrefix(r.Error, "not run:") {
				// The drain deadline cancelled the run before this job
				// started; put it back uncharged.
				s.q.Release(batch[i].Lease, s.now())
				continue
			}
			s.q.Complete(batch[i].Lease, "local", batch[i].Hash, r, false, s.now())
		}
	}
}

// waitWork blocks until the queue has leasable work; false means drain.
func (s *Server) waitWork() bool {
	for {
		if s.draining.Load() {
			return false
		}
		if s.q.QueuedLen() > 0 {
			return true
		}
		select {
		case <-s.q.Wake():
		case <-s.drainCh:
			return false
		}
	}
}

// Drain gracefully shuts the daemon down: refuse new submits and leases,
// let in-flight work finish (local batch and outstanding fleet leases) up
// to timeout, force-expire whatever remains, flush every sweep's manifest
// and emit the structured drain event.  It returns how many queued jobs
// were abandoned.  Idempotent; later calls return the first result.
func (s *Server) Drain(reason string, timeout time.Duration) int {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
		deadline := time.Now().Add(timeout)

		// Local batch in flight: give it the full window, then cancel hard.
		select {
		case <-s.dispatchDone:
		case <-time.After(time.Until(deadline)):
			s.hardCancel()
			<-s.dispatchDone
		}

		// Outstanding fleet leases: wait for uploads, then force-expire.
		//lint:ctxcheck — bounded by the drain deadline in the loop condition, so it cannot outlive the drain window
		for s.q.FleetLeases() > 0 && time.Now().Before(deadline) {
			time.Sleep(20 * time.Millisecond)
		}
		s.q.ExpireLeases(s.now(), true)

		close(s.stopCh)
		<-s.janitorDone

		s.abandoned = s.q.QueuedLen()
		s.flushManifests()
		s.cfg.Obs.Drain(reason, s.abandoned, s.now())
	})
	return s.abandoned
}

// flushManifests writes one manifest per sweep into ManifestDir.
func (s *Server) flushManifests() {
	if s.cfg.ManifestDir == "" {
		return
	}
	if err := os.MkdirAll(s.cfg.ManifestDir, 0o755); err != nil {
		return
	}
	for _, id := range s.q.SweepIDs() {
		m, _, ok := s.q.Manifest(id)
		if !ok {
			continue
		}
		_ = m.WriteFile(filepath.Join(s.cfg.ManifestDir, id+".json"))
	}
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// routes wires the HTTP surface.  Every /v1 route and /progress runs
// under the RED middleware (request counters, latency histograms, trace
// propagation, request logs); /metrics, /healthz, /debug/pprof and the
// index stay bare so scrapes and probes never perturb the request
// metrics they report.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	wrap := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.red.Wrap(pattern, h))
	}
	wrap("POST /v1/sweeps", s.handleSubmit)
	wrap("GET /v1/sweeps", s.handleSweepList)
	wrap("GET /v1/sweeps/{id}", s.handleSweep)
	wrap("GET /v1/sweeps/{id}/manifest", s.handleManifest)
	wrap("GET /v1/sweeps/{id}/trace", s.handleTrace)
	wrap("GET /v1/artifacts/{hash}", s.handleArtifactGet)
	wrap("PUT /v1/artifacts/{hash}", s.handleArtifactPut)
	wrap("GET /v1/artifacts/{hash}/report", s.handleReport)
	wrap("GET /v1/artifacts/{hash}/explain", s.handleExplain)
	wrap("POST /v1/fleet/lease", s.handleLease)
	wrap("POST /v1/fleet/heartbeat", s.handleHeartbeat)
	wrap("POST /v1/fleet/complete", s.handleComplete)
	wrap("GET /progress", s.handleProgress)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /{$}", s.handleIndex)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError renders the dsre-serve-error/v1 envelope, stamping the
// request's trace ID so a client-side error report can be matched to the
// daemon's request logs.
func writeError(w http.ResponseWriter, r *http.Request, status int, code, format string, args ...any) {
	var trace string
	if tc, ok := tracing.FromContext(r.Context()); ok {
		trace = tc.Trace.String()
	}
	writeJSON(w, status, ErrorResponse{
		Schema: ErrorSchema, Code: code, Message: fmt.Sprintf(format, args...), Trace: trace,
	})
}

func decodeJSON(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, limit))
	if err := dec.Decode(v); err != nil {
		writeError(w, r, http.StatusBadRequest, ErrCodeBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, r, http.StatusServiceUnavailable, ErrCodeDraining, "daemon is draining")
		return
	}
	tenant := r.Header.Get("X-DSRE-Tenant")
	if tenant == "" {
		tenant = "anonymous"
	}
	var req SubmitRequest
	if !decodeJSON(w, r, maxSubmitBytes, &req) {
		return
	}
	var specs []sweep.JobSpec
	if req.Grid != nil {
		expanded, err := req.Grid.Expand()
		if err != nil && len(req.Specs) == 0 {
			writeError(w, r, http.StatusBadRequest, ErrCodeBadRequest, "%v", err)
			return
		}
		specs = append(specs, expanded...)
	}
	specs = append(specs, req.Specs...)
	if len(specs) == 0 {
		writeError(w, r, http.StatusBadRequest, ErrCodeBadRequest, "submit names no specs")
		return
	}
	now := s.now()
	if ok, retry := s.quotas.Allow(tenant, len(specs), now); !ok {
		s.cfg.Obs.QuotaRejected(tenant, now)
		w.Header().Set("Retry-After", strconv.Itoa(int(retry/time.Second)+1))
		writeError(w, r, http.StatusTooManyRequests, ErrCodeOverQuota, "tenant %q over quota, retry in %s", tenant, retry.Round(time.Millisecond))
		return
	}

	// Canonicalise, validate and hash outside the queue lock; probe the
	// store so repeat grids resolve to instant hits without queueing.
	hashes := make([]string, len(specs))
	hits := map[string]bool{}
	for i, spec := range specs {
		h, err := spec.Hash()
		if err == nil {
			err = spec.Validate()
		}
		if err != nil {
			writeError(w, r, http.StatusBadRequest, ErrCodeBadRequest, "spec %d (%s): %v", i, spec.Name(), err)
			return
		}
		if canon, cerr := spec.Canonical(); cerr == nil {
			specs[i] = canon
		}
		hashes[i] = h
		if _, seen := hits[h]; !seen {
			rec, gerr := s.cfg.Store.Get(h)
			hits[h] = gerr == nil && rec != nil
		}
	}

	// The sweep adopts the submit request's trace so the daemon's request
	// log, the sweep document and every job span share one trace ID.
	var trace tracing.TraceID
	if tc, ok := tracing.FromContext(r.Context()); ok {
		trace = tc.Trace
	}
	id := s.q.Submit(tenant, specs, hashes, hits, trace, now)
	v, _ := s.q.View(id, true)
	writeJSON(w, http.StatusCreated, v)
}

func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	list := SweepListView{Schema: SweepSchema}
	for _, id := range s.q.SweepIDs() {
		if v, ok := s.q.View(id, false); ok {
			list.Sweeps = append(list.Sweeps, v)
		}
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	v, ok := s.q.View(r.PathValue("id"), true)
	if !ok {
		writeError(w, r, http.StatusNotFound, ErrCodeNotFound, "no sweep %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	m, finished, ok := s.q.Manifest(id)
	if !ok {
		writeError(w, r, http.StatusNotFound, ErrCodeNotFound, "no sweep %q", id)
		return
	}
	if !finished {
		writeError(w, r, http.StatusConflict, ErrCodeConflict, "sweep %s is still running", id)
		return
	}
	writeJSON(w, http.StatusOK, m)
}

// handleTrace serves the stitched multi-process Chrome trace for one
// sweep: daemon-side lease lanes plus every worker-side span chain that
// shares the sweep's trace ID.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	trace, ok := s.q.Trace(id)
	if !ok {
		writeError(w, r, http.StatusNotFound, ErrCodeNotFound, "no sweep %q", id)
		return
	}
	spans := s.cfg.Obs.Spans()
	if spans == nil {
		writeError(w, r, http.StatusConflict, ErrCodeConflict, "span collection is disabled on this daemon")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = tracing.WriteStitched(w, trace.String(), spans.Jobs())
}

func (s *Server) handleArtifactGet(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	rec, err := s.cfg.Store.Get(hash)
	if err != nil || rec == nil {
		writeError(w, r, http.StatusNotFound, ErrCodeNotFound, "no artifact %s", hash)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleArtifactPut(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	var rec sweep.Record
	if !decodeJSON(w, r, maxRecordBytes, &rec) {
		return
	}
	if code, ecode, msg := s.checkRecord(&rec, hash); code != 0 {
		writeError(w, r, code, ecode, "%s", msg)
		return
	}
	if err := s.cfg.Store.Put(&rec); err != nil {
		writeError(w, r, http.StatusInternalServerError, ErrCodeInternal, "store put: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"stored": true})
}

// checkRecord verifies an uploaded record's addressing, version keying and
// payload integrity.  Returns (0, "", "") when acceptable; otherwise the
// HTTP status, the error envelope code and the message.
func (s *Server) checkRecord(rec *sweep.Record, hash string) (int, string, string) {
	if rec.Report == nil {
		return http.StatusBadRequest, ErrCodeBadRequest, "record has no report payload"
	}
	if rec.Hash != hash {
		return http.StatusBadRequest, ErrCodeBadRequest, fmt.Sprintf("record hash %s does not match address %s", rec.Hash, hash)
	}
	if rec.SimVersion != "" && rec.SimVersion != sim.Version {
		return http.StatusConflict, ErrCodeVersionSkew, fmt.Sprintf("record sim version %q, daemon runs %q (version-skewed worker)", rec.SimVersion, sim.Version)
	}
	if err := rec.VerifyPayload(); err != nil {
		return http.StatusBadRequest, ErrCodeBadRequest, fmt.Sprintf("payload verification failed: %v", err)
	}
	return 0, "", ""
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	rec, err := s.cfg.Store.Get(hash)
	if err != nil || rec == nil {
		writeError(w, r, http.StatusNotFound, ErrCodeNotFound, "no artifact %s", hash)
		return
	}
	writeJSON(w, http.StatusOK, rec.Report)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	rec, err := s.cfg.Store.Get(hash)
	if err != nil || rec == nil {
		writeError(w, r, http.StatusNotFound, ErrCodeNotFound, "no artifact %s", hash)
		return
	}
	top := 10
	if t := r.URL.Query().Get("top"); t != "" {
		if n, err := strconv.Atoi(t); err == nil {
			top = n
		}
	}
	doc := explain.Doc{
		Schema: explain.Schema,
		Runs:   []explain.RunView{explain.View(rec.Spec.Name(), rec.Report, top)},
	}
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeJSON(w, r, 1<<20, &req) {
		return
	}
	if req.Worker == "" {
		writeError(w, r, http.StatusBadRequest, ErrCodeBadRequest, "lease request names no worker")
		return
	}
	if s.draining.Load() {
		w.Header().Set("X-DSRE-Draining", "1")
		w.WriteHeader(http.StatusNoContent)
		return
	}
	lj, ok := s.q.Lease(req.Worker, false, s.now())
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	// The grant carries the job's trace context both in the body and as a
	// traceparent header so the worker can thread it through its own spans.
	tracing.Context{Trace: lj.Trace, Span: lj.Span}.SetHeader(w.Header())
	writeJSON(w, http.StatusOK, LeaseResponse{
		Schema: LeaseSchema, Lease: lj.Lease, Hash: lj.Hash, Name: lj.Name,
		Trace: lj.Trace.String(), Span: lj.Span.String(),
		Attempt: lj.Attempt, TTLMS: s.q.leaseTTL.Milliseconds(), Spec: lj.Spec,
	})
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeJSON(w, r, 1<<20, &req) {
		return
	}
	ttl, err := s.q.Heartbeat(req.Lease, s.now())
	if err != nil {
		writeError(w, r, http.StatusGone, ErrCodeLeaseGone, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, HeartbeatResponse{Schema: LeaseSchema, TTLMS: ttl.Milliseconds()})
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decodeJSON(w, r, maxRecordBytes, &req) {
		return
	}
	if req.Hash == "" {
		writeError(w, r, http.StatusBadRequest, ErrCodeBadRequest, "complete names no job hash")
		return
	}
	res := sweep.JobResult{
		Hash: req.Hash, Status: req.Status,
		Elapsed: req.ElapsedMS, Error: req.Error,
	}
	if req.Status == sweep.StatusOK {
		if req.Record == nil {
			writeError(w, r, http.StatusBadRequest, ErrCodeBadRequest, "ok completion carries no record")
			return
		}
		if code, ecode, msg := s.checkRecord(req.Record, req.Hash); code != 0 {
			writeError(w, r, code, ecode, "%s", msg)
			return
		}
		// Persist before acknowledging: once the worker hears "accepted",
		// the payload must be durable.  First write wins in the store, so a
		// racing duplicate is dropped there and again in the queue.
		if err := s.cfg.Store.Put(req.Record); err != nil {
			writeError(w, r, http.StatusInternalServerError, ErrCodeInternal, "store put: %v", err)
			return
		}
		res.Report = req.Record.Report
	} else if req.Status != sweep.StatusFailed {
		writeError(w, r, http.StatusBadRequest, ErrCodeBadRequest, "status %q is neither %q nor %q", req.Status, sweep.StatusOK, sweep.StatusFailed)
		return
	}
	accepted, duplicate, state, err := s.q.Complete(req.Lease, req.Worker, req.Hash, res, true, s.now())
	if err != nil {
		writeError(w, r, http.StatusNotFound, ErrCodeLeaseGone, "%v", err)
		return
	}
	// Ingest the worker's shipped span chains once the upload is accepted,
	// with the origin pinned to the authenticated-by-lease worker ID (never
	// trust the chain's own Origin field).  Bounded so a misbehaving worker
	// cannot balloon the daemon's span log.
	if len(req.Spans) > 0 {
		chains := req.Spans
		if len(chains) > maxShippedChains {
			chains = chains[:maxShippedChains]
		}
		for i := range chains {
			chains[i].Origin = req.Worker
			if len(chains[i].Phases) > maxShippedPhases {
				chains[i].Phases = chains[i].Phases[:maxShippedPhases]
			}
		}
		s.cfg.Obs.WorkerSpans(chains)
	}
	writeJSON(w, http.StatusOK, CompleteResponse{
		Schema: CompleteSchema, Accepted: accepted, Duplicate: duplicate, State: state.String(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.cfg.Obs.Reg.WritePrometheus(w)
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	now := s.now()
	v := s.cfg.Obs.Progress(now)
	if s.cfg.EngineObs != nil {
		ev := s.cfg.EngineObs.Progress(now)
		v.Engine = &ev
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	now := s.now()
	writeJSON(w, http.StatusOK, HealthView{
		Schema: HealthSchema, Status: status,
		SimVersion: sim.Version, GoVersion: runtime.Version(),
		StartTimeMS: s.startTime.UnixMilli(),
		UptimeMS:    now.Sub(s.startTime).Milliseconds(),
	})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "dsre-serve/v1 endpoints:")
	fmt.Fprintln(w, "  POST /v1/sweeps                     submit a grid (X-DSRE-Tenant header)")
	fmt.Fprintln(w, "  GET  /v1/sweeps                     list sweeps")
	fmt.Fprintln(w, "  GET  /v1/sweeps/{id}                sweep status (dsre-serve-sweep/v1)")
	fmt.Fprintln(w, "  GET  /v1/sweeps/{id}/manifest       manifest once finished (409 before)")
	fmt.Fprintln(w, "  GET  /v1/sweeps/{id}/trace          stitched cross-process Chrome trace")
	fmt.Fprintln(w, "  GET  /v1/artifacts/{hash}           cached result record")
	fmt.Fprintln(w, "  PUT  /v1/artifacts/{hash}           upload a sealed record")
	fmt.Fprintln(w, "  GET  /v1/artifacts/{hash}/report    dsre-report/v1 payload")
	fmt.Fprintln(w, "  GET  /v1/artifacts/{hash}/explain   dsre-explain/v1 view")
	fmt.Fprintln(w, "  POST /v1/fleet/lease|heartbeat|complete   worker protocol")
	fmt.Fprintln(w, "  GET  /metrics /progress /healthz /debug/pprof")
}
