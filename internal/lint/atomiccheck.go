package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

const atomiccheckName = "atomiccheck"

// atomiccheck enforces, module-wide, that a field is either atomic or it is
// not:
//
//   - any struct field whose address is passed to a sync/atomic function
//     (atomic.AddInt64(&s.n, 1), ...) must never be read or written with a
//     plain load/store anywhere in the module — one racy access makes the
//     atomic ones pointless;
//   - fields of the typed atomic kinds (atomic.Int64, atomic.Bool, ...)
//     must only be used through their methods or by address: copying the
//     value out smuggles a plain load past the type system.
//
// A //lint:atomiccheck escape with a justification suppresses a finding.
func atomiccheck(p *pass) {
	// Pass 1: find every field object whose address reaches sync/atomic.
	atomicFields := map[*types.Var]bool{}
	sanctioned := map[*ast.SelectorExpr]bool{}
	for _, pkg := range p.mod.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicPkgCall(p.mod.Info, call) {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if obj := fieldObj(p.mod.Info, sel); obj != nil {
						atomicFields[obj] = true
						sanctioned[sel] = true
					}
				}
				return true
			})
		}
	}

	// Pass 2: every other access to those fields, and every by-value use of
	// a typed-atomic field, is a diagnostic.
	for _, pkg := range p.mod.Pkgs {
		for _, f := range pkg.Files {
			anns := p.annotationsFor(f, "atomiccheck")
			// parents[child] is the innermost enclosing node.
			parents := map[ast.Node]ast.Node{}
			var stack []ast.Node
			ast.Inspect(f, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				if len(stack) > 0 {
					parents[n] = stack[len(stack)-1]
				}
				stack = append(stack, n)
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := fieldObj(p.mod.Info, sel)
				if obj == nil {
					return true
				}
				if atomicFields[obj] && !sanctioned[sel] {
					if !suppressed(anns, p.mod.Position(sel.Pos()).Line) {
						p.reportf(atomiccheckName, sel.Pos(),
							"plain access to %s, which is elsewhere accessed via sync/atomic — use the atomic API for every load and store",
							fieldDisplay(p.mod.Info, sel))
					}
					return true
				}
				if isTypedAtomic(obj.Type()) && copiesAtomicValue(parents, sel) {
					if !suppressed(anns, p.mod.Position(sel.Pos()).Line) {
						p.reportf(atomiccheckName, sel.Pos(),
							"%s has atomic type %s but is used by value here — call its methods (or take its address) instead of copying it",
							fieldDisplay(p.mod.Info, sel), obj.Type().String())
					}
				}
				return true
			})
		}
	}
}

// fieldDisplay names a selected field as Owner.field for diagnostics.
func fieldDisplay(info *types.Info, sel *ast.SelectorExpr) string {
	if s, ok := info.Selections[sel]; ok {
		t := s.Recv()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + sel.Sel.Name
		}
	}
	return sel.Sel.Name
}

// isAtomicPkgCall matches atomic.Fn(...) calls of package sync/atomic.
func isAtomicPkgCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// fieldObj resolves a selector to the struct field it names, or nil.
func fieldObj(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	obj, _ := s.Obj().(*types.Var)
	return obj
}

// isTypedAtomic reports the sync/atomic value types (Int64, Bool, ...).
func isTypedAtomic(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync/atomic"
}

// copiesAtomicValue reports whether the selector is used as a plain value:
// anything but a method access (x.done.Load()) or an address-of (&x.done).
func copiesAtomicValue(parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	switch parent := parents[sel].(type) {
	case *ast.SelectorExpr:
		if parent.X == sel {
			return false // receiver of a method (or field) access
		}
	case *ast.UnaryExpr:
		if parent.Op == token.AND && parent.X == sel {
			return false
		}
	}
	return true
}
