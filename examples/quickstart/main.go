// Quickstart: simulate one workload under the paper's DSRE protocol and
// under the store-set + flush baseline, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	baseline, err := repro.Run(repro.Config{Workload: "histogram", Scheme: "storeset+flush"})
	if err != nil {
		log.Fatal(err)
	}
	dsre, err := repro.Run(repro.Config{Workload: "histogram", Scheme: "dsre"})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("histogram kernel (data-dependent read-modify-write counting)")
	fmt.Printf("  store-set + flush : IPC %.3f  (%d violations, %d flushes)\n",
		baseline.IPC, baseline.Violations, baseline.Flushes)
	fmt.Printf("  DSRE              : IPC %.3f  (%d violations, %d selective corrections, 0 flushes)\n",
		dsre.IPC, dsre.Violations, dsre.Corrections)
	fmt.Printf("  speedup           : %.2fx\n", dsre.IPC/baseline.IPC)
	fmt.Println()
	fmt.Println("Both runs were verified against the architectural emulator: the")
	fmt.Println("final registers and memory are identical, so selective re-execution")
	fmt.Println("recovered every mis-speculation correctly.")
}
