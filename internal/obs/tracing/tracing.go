// Package tracing is the fleet's zero-dependency distributed-trace layer:
// a W3C-traceparent-style context (128-bit trace ID, 64-bit span ID)
// propagated on every HTTP hop of dsre-serve, a deterministic ID minter,
// HTTP RED instrumentation for the daemon's endpoints, and the stitcher
// that folds daemon-side and worker-side span chains into one
// multi-process Chrome trace.
//
// Like internal/obs, the package is audited by dsre-lint's determinism
// analyzer: it never reads a clock (the RED middleware takes an injected
// Now), never spawns goroutines, and mints IDs by hashing a caller-seeded
// counter instead of reading entropy, so tests can pin exact trace IDs.
package tracing

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync/atomic"
)

// Header is the propagation header, following the W3C trace-context
// spelling: "00-<32 hex trace id>-<16 hex span id>-01".
const Header = "traceparent"

// TraceID identifies one request tree (one submitted sweep): 128 bits.
type TraceID [16]byte

// SpanID identifies one unit of work inside a trace (one lease attempt):
// 64 bits.
type SpanID [8]byte

// IsZero reports an unset trace ID (all-zero is invalid per spec).
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String returns the 32-char lowercase hex spelling.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports an unset span ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String returns the 16-char lowercase hex spelling.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseTraceID parses a 32-char hex trace ID.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 2*len(t) {
		return TraceID{}, fmt.Errorf("tracing: trace id %q: want %d hex chars", s, 2*len(t))
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("tracing: trace id %q: %v", s, err)
	}
	return t, nil
}

// ParseSpanID parses a 16-char hex span ID.
func ParseSpanID(s string) (SpanID, error) {
	var sp SpanID
	if len(s) != 2*len(sp) {
		return SpanID{}, fmt.Errorf("tracing: span id %q: want %d hex chars", s, 2*len(sp))
	}
	if _, err := hex.Decode(sp[:], []byte(s)); err != nil {
		return SpanID{}, fmt.Errorf("tracing: span id %q: %v", s, err)
	}
	return sp, nil
}

// Context is one hop's trace coordinates.
type Context struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether both IDs are set.
func (c Context) Valid() bool { return !c.Trace.IsZero() && !c.Span.IsZero() }

// String renders the traceparent header value.
func (c Context) String() string {
	return "00-" + c.Trace.String() + "-" + c.Span.String() + "-01"
}

// Parse inverts String.  Any version byte is accepted (forward
// compatibility, as the spec requires); trailing fields beyond the flags
// are ignored.
func Parse(s string) (Context, error) {
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return Context{}, fmt.Errorf("tracing: malformed traceparent %q", s)
	}
	if len(s) > 55 && s[55] != '-' {
		return Context{}, fmt.Errorf("tracing: malformed traceparent %q", s)
	}
	trace, err := ParseTraceID(s[3:35])
	if err != nil {
		return Context{}, err
	}
	span, err := ParseSpanID(s[36:52])
	if err != nil {
		return Context{}, err
	}
	c := Context{Trace: trace, Span: span}
	if !c.Valid() {
		return Context{}, fmt.Errorf("tracing: traceparent %q has zero ids", s)
	}
	return c, nil
}

// FromHeader extracts a valid context from an HTTP header set.
func FromHeader(h http.Header) (Context, bool) {
	v := h.Get(Header)
	if v == "" {
		return Context{}, false
	}
	c, err := Parse(v)
	if err != nil {
		return Context{}, false
	}
	return c, true
}

// SetHeader stamps the context onto an HTTP header set.
func (c Context) SetHeader(h http.Header) {
	h.Set(Header, c.String())
}

type ctxKey struct{}

// WithContext attaches a trace context to a request context.
func WithContext(ctx context.Context, c Context) context.Context {
	return context.WithValue(ctx, ctxKey{}, c)
}

// FromContext recovers the trace context the RED middleware attached.
func FromContext(ctx context.Context) (Context, bool) {
	c, ok := ctx.Value(ctxKey{}).(Context)
	return c, ok
}

// Minter mints trace and span IDs by hashing a caller-provided seed with a
// strictly increasing sequence: no clock, no entropy pool, so the audited
// packages stay deterministic and tests seeded identically mint identical
// IDs.  Distinct processes pass distinct seeds (the daemon uses its start
// instant) to keep fleets collision-free.
type Minter struct {
	seed [32]byte
	seq  atomic.Uint64
}

// NewMinter builds a minter over a seed.
func NewMinter(seed uint64) *Minter {
	m := &Minter{}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], seed)
	m.seed = sha256.Sum256(b[:])
	return m
}

func (m *Minter) next(kind byte) [32]byte {
	var buf [41]byte
	copy(buf[:32], m.seed[:])
	buf[32] = kind
	binary.BigEndian.PutUint64(buf[33:], m.seq.Add(1))
	return sha256.Sum256(buf[:])
}

// NextTrace mints a fresh non-zero trace ID.
func (m *Minter) NextTrace() TraceID {
	var t TraceID
	h := m.next('t')
	copy(t[:], h[:])
	return t
}

// NextSpan mints a fresh non-zero span ID.
func (m *Minter) NextSpan() SpanID {
	var s SpanID
	h := m.next('s')
	copy(s[:], h[:])
	return s
}
