//go:build !dsre_assert

package sim

// assertsEnabled is off by default; `-tags dsre_assert` flips it on and
// the checks guarded by it stop being dead code.
const assertsEnabled = false
