package telemetry_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/account"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

func sample(cycle int64) sim.Sample {
	return sim.Sample{
		Cycle: cycle, Window: 100, IPC: float64(cycle) / 1000,
		CommittedBlocks: 2, InFlightBlocks: 4, WindowInsts: 512,
		LSQOccupancy: 48, NoCPending: 7, Waves: 1, Reexecs: 3,
		L1DMissRate: 0.125, L2MissRate: 0.5,
		CPI: account.CPIStack{Commit: 60, Wave: 15, Fetch: 20, NoC: 5},
	}
}

func TestSamplerRing(t *testing.T) {
	s := telemetry.NewSampler(4)
	for c := int64(1); c <= 10; c++ {
		s.Sample(sample(c * 100))
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if s.Overwritten() != 6 {
		t.Errorf("Overwritten = %d, want 6", s.Overwritten())
	}
	got := s.Samples()
	for i, want := range []int64{700, 800, 900, 1000} {
		if got[i].Cycle != want {
			t.Errorf("sample %d cycle = %d, want %d", i, got[i].Cycle, want)
		}
	}
	last, ok := s.Last()
	if !ok || last.Cycle != 1000 {
		t.Errorf("Last = %+v ok=%v, want cycle 1000", last, ok)
	}
	s.Reset()
	if s.Len() != 0 || s.Overwritten() != 0 {
		t.Errorf("after Reset: Len=%d Overwritten=%d", s.Len(), s.Overwritten())
	}
	if _, ok := s.Last(); ok {
		t.Error("Last ok after Reset")
	}
}

func TestSamplerCSV(t *testing.T) {
	s := telemetry.NewSampler(0)
	s.Sample(sample(100))
	s.Sample(sample(200))
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want header + 2 rows:\n%s", len(lines), buf.String())
	}
	cols := strings.Split(lines[0], ",")
	for _, row := range lines[1:] {
		if got := len(strings.Split(row, ",")); got != len(cols) {
			t.Errorf("row has %d columns, header has %d", got, len(cols))
		}
	}
	if !strings.HasPrefix(lines[1], "100,100,0.100000") {
		t.Errorf("first row = %q", lines[1])
	}
}

// syntheticCollector builds a small, fully deterministic trace collection
// exercising every event and span kind.
func syntheticCollector() *trace.Collector {
	c := &trace.Collector{}
	c.Record(10, trace.KindExec, 0, 3, 0)
	c.Record(12, trace.KindCorrection, 0, 5, 7)
	c.Record(14, trace.KindReexec, 0, 6, 7)
	c.Record(18, trace.KindReexec, 1, 2, 7)
	c.Record(25, trace.KindBlockCommit, 0, 0, 0)
	c.Record(30, trace.KindBlockSquash, 2, 0, 0)
	c.RecordSpan(trace.SpanFetch, 0, 4, 0, 0, 9)
	c.RecordSpan(trace.SpanBlock, 0, 4, 0, 9, 25)
	c.RecordSpan(trace.SpanBlock, 2, 6, 1, 20, 30)
	c.RecordSpan(trace.SpanExec, 0, 3, 0, 9, 10)
	return c
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	err := telemetry.WriteChromeTrace(&buf, syntheticCollector(), []sim.Sample{sample(100)})
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrometrace.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace diverged from golden file (re-run with -update if intended)\ngot:  %s\nwant: %s",
			buf.Bytes(), want)
	}
	// The golden bytes must themselves be valid catapult JSON.
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("golden output is not JSON: %v", err)
	}
	if len(out.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
}

func TestChromeTraceFromRun(t *testing.T) {
	res, err := repro.Run(repro.Config{
		Workload: "vecsum", Scheme: "dsre", Size: 256,
		Trace: true, SampleEvery: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace.Spans) == 0 {
		t.Fatal("run recorded no stage spans")
	}
	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, res.Trace, res.Samples); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("exported trace is not JSON: %v", err)
	}
	phases := map[string]int{}
	for _, e := range out.TraceEvents {
		for _, k := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := e[k]; !ok {
				t.Fatalf("event missing %q: %v", k, e)
			}
		}
		ph := e["ph"].(string)
		phases[ph]++
		if ph != "M" {
			if _, ok := e["ts"]; !ok {
				t.Fatalf("non-metadata event missing ts: %v", e)
			}
		}
	}
	for _, ph := range []string{"X", "C", "M"} {
		if phases[ph] == 0 {
			t.Errorf("no %q-phase events in exported trace (phases: %v)", ph, phases)
		}
	}
}

func TestReportRoundTrip(t *testing.T) {
	res, err := repro.Run(repro.Config{
		Workload: "histogram", Scheme: "dsre", Size: 512, SampleEvery: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	data, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := telemetry.ParseReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Errorf("report did not round-trip:\n before %+v\n after  %+v", rep, back)
	}
	if back.Stats.WaveSizeHist.N != res.Sim.WaveSizeHist.N ||
		back.Stats.WaveSizeHist.Sum != res.Sim.WaveSizeHist.Sum {
		t.Errorf("wave histogram lost in round-trip: %+v vs %+v",
			back.Stats.WaveSizeHist, res.Sim.WaveSizeHist)
	}
}

// TestReportMatchesRunCounters verifies that the JSON report dsre-sim's
// -json flag writes agrees with the counters the CLI prints (both come
// from the same Result).
func TestReportMatchesRunCounters(t *testing.T) {
	res, err := repro.Run(repro.Config{
		Workload: "histogram", Scheme: "dsre", Size: 512, SampleEvery: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.json")
	if err := res.Report().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	rep, err := telemetry.ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name      string
		got, want int64
	}{
		{"cycles", rep.Cycles, res.Cycles},
		{"insts", rep.Insts, res.Insts},
		{"blocks", rep.Blocks, res.Blocks},
		{"violations", rep.Violations, res.Violations},
		{"flushes", rep.Flushes, res.Flushes},
		{"corrections", rep.Corrections, res.Corrections},
		{"reexecs", rep.Reexecs, res.Reexecs},
		{"waves", rep.Waves, res.Waves},
		{"stats.cycles", rep.Stats.Cycles, res.Sim.Cycles},
		{"stats.executed", rep.Stats.Executed, res.Sim.Executed},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s: report %d, run %d", c.name, c.got, c.want)
		}
	}
	if rep.IPC != res.IPC {
		t.Errorf("ipc: report %v, run %v", rep.IPC, res.IPC)
	}
	if len(rep.Samples) == 0 {
		t.Error("report carried no telemetry samples")
	}
}

func TestRunSamplesWindows(t *testing.T) {
	res, err := repro.Run(repro.Config{
		Workload: "vecsum", Scheme: "dsre", Size: 512, SampleEvery: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) == 0 {
		t.Fatal("no sample windows")
	}
	var committed, reexecs int64
	var cpi account.CPIStack
	prev := int64(0)
	for i, s := range res.Samples {
		if s.Cycle <= prev {
			t.Fatalf("sample %d cycle %d not increasing (prev %d)", i, s.Cycle, prev)
		}
		if s.Window <= 0 {
			t.Fatalf("sample %d window %d", i, s.Window)
		}
		// Verified runs always account, so each window's CPI buckets must
		// conserve the window's slot budget exactly.
		if tot, want := s.CPI.Total(), s.Window*account.SlotsPerCycle; tot != want {
			t.Fatalf("sample %d CPI window total %d, want %d", i, tot, want)
		}
		prev = s.Cycle
		committed += s.CommittedBlocks
		reexecs += s.Reexecs
		for b := account.Bucket(0); b < account.NumBuckets; b++ {
			cpi.Add(b, s.CPI.Get(b))
		}
	}
	// Windowed deltas must sum back to the run totals (the final partial
	// window flush guarantees full coverage).
	if committed != res.Blocks {
		t.Errorf("sum of windowed commits = %d, run committed %d", committed, res.Blocks)
	}
	if reexecs != res.Reexecs {
		t.Errorf("sum of windowed reexecs = %d, run total %d", reexecs, res.Reexecs)
	}
	if cpi != res.Sim.Acct {
		t.Errorf("sum of windowed CPI stacks = %+v, run stack %+v", cpi, res.Sim.Acct)
	}
}

// TestStampWall pins the host-throughput stamp: the rate is cycles over
// wall, and a non-positive wall (cached replay, clock step) leaves both
// fields unset instead of dividing by zero.
func TestStampWall(t *testing.T) {
	r := &telemetry.Report{Cycles: 2_000_000}
	r.StampWall(0)
	if r.SimWallMS != 0 || r.McyclesPerSec != 0 {
		t.Errorf("zero wall stamped: wall=%v rate=%v", r.SimWallMS, r.McyclesPerSec)
	}
	r.StampWall(500 * time.Millisecond)
	if r.SimWallMS != 500 {
		t.Errorf("SimWallMS = %v, want 500", r.SimWallMS)
	}
	if r.McyclesPerSec < 3.99 || r.McyclesPerSec > 4.01 {
		t.Errorf("McyclesPerSec = %v, want 4", r.McyclesPerSec)
	}
}
