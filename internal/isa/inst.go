package isa

import (
	"fmt"
	"strings"
)

// Architectural limits, modelled on the TRIPS prototype.
const (
	MaxInsts  = 128 // instructions per block
	MaxReads  = 32  // register read slots per block
	MaxWrites = 32  // register write slots per block
	MaxMemOps = 32  // load/store IDs per block
	NumRegs   = 64  // architectural registers
	MaxTargets = 2  // dataflow targets per instruction; wider fanout uses mov trees
)

// Slot identifies which operand of a consumer a target feeds.
type Slot uint8

// Operand slots.
const (
	SlotA Slot = iota // left data operand
	SlotB             // right data operand
	SlotP             // predicate operand
	NumSlots
)

// String returns "a", "b" or "p".
func (s Slot) String() string {
	switch s {
	case SlotA:
		return "a"
	case SlotB:
		return "b"
	case SlotP:
		return "p"
	}
	return fmt.Sprintf("slot(%d)", uint8(s))
}

// TargetKind distinguishes the namespaces a target can point into.
type TargetKind uint8

// Target kinds.
const (
	TargetInst  TargetKind = iota // operand slot of another instruction
	TargetWrite                   // register write slot of the block
)

// Target names one consumer of an instruction's result.
type Target struct {
	Kind  TargetKind
	Index uint8 // instruction index or write-slot index
	Slot  Slot  // operand slot (TargetInst only)
}

// String renders a target as, e.g., "i12.a" or "w3".
func (t Target) String() string {
	if t.Kind == TargetWrite {
		return fmt.Sprintf("w%d", t.Index)
	}
	return fmt.Sprintf("i%d.%s", t.Index, t.Slot)
}

// PredMode describes an instruction's predication.
type PredMode uint8

// Predication modes.  A predicated instruction waits for a value in its
// predicate slot and executes only when the value's truth matches the mode;
// otherwise it is nullified: it produces nothing to dataflow targets, and
// memory/branch operations signal a null completion to the LSQ/control tile.
const (
	PredNone  PredMode = iota // unpredicated
	PredTrue                  // execute when predicate != 0
	PredFalse                 // execute when predicate == 0
)

// String returns "", "_t" or "_f" (assembler suffix style).
func (p PredMode) String() string {
	switch p {
	case PredNone:
		return ""
	case PredTrue:
		return "_t"
	case PredFalse:
		return "_f"
	default:
		return ""
	}
}

// NoLSID marks non-memory instructions.
const NoLSID = -1

// Inst is one EDGE instruction.  Instructions carry their consumers
// explicitly (Targets); they have no source-register fields because operands
// arrive over the operand network from producers, register read slots, or
// the LSQ (for loads).
type Inst struct {
	Op   Opcode
	Pred PredMode
	Imm  int64 // constant for OpMovi, address offset for memory ops, static block target for OpBro
	LSID int8  // load/store ID giving the sequential memory order within the block; NoLSID otherwise

	Targets []Target
}

// NeedsSlot reports whether the instruction waits on the given operand slot.
func (in *Inst) NeedsSlot(s Slot) bool {
	switch s {
	case SlotA:
		return in.Op.NumDataOperands() >= 1
	case SlotB:
		return in.Op.NumDataOperands() >= 2
	case SlotP:
		return in.Pred != PredNone
	}
	return false
}

// NumInputs returns the total number of operand slots the instruction waits
// on, including the predicate slot.
func (in *Inst) NumInputs() int {
	n := in.Op.NumDataOperands()
	if in.Pred != PredNone {
		n++
	}
	return n
}

// String renders the instruction in a readable assembler-like form.
func (in *Inst) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s%s", in.Op, in.Pred)
	if in.Op == OpMovi || in.Op == OpBro || in.Op.IsMem() {
		fmt.Fprintf(&b, " #%d", in.Imm)
	}
	if in.LSID != NoLSID {
		fmt.Fprintf(&b, " [lsid %d]", in.LSID)
	}
	if len(in.Targets) > 0 {
		parts := make([]string, len(in.Targets))
		for i, t := range in.Targets {
			parts[i] = t.String()
		}
		fmt.Fprintf(&b, " -> %s", strings.Join(parts, ","))
	}
	return b.String()
}

// RegRead is a block register-read slot: at block map time the value of Reg
// is fetched (from an older in-flight block's write or the architectural
// file) and injected into the dataflow graph at Targets.
type RegRead struct {
	Reg     uint8
	Targets []Target
}

// String renders the read slot.
func (r RegRead) String() string {
	parts := make([]string, len(r.Targets))
	for i, t := range r.Targets {
		parts[i] = t.String()
	}
	return fmt.Sprintf("read r%d -> %s", r.Reg, strings.Join(parts, ","))
}

// RegWrite is a block register-write slot: exactly one instruction fires
// into it per dynamic execution, and the value becomes the architectural
// value of Reg when the block commits.
type RegWrite struct {
	Reg uint8
}

// String renders the write slot.
func (w RegWrite) String() string { return fmt.Sprintf("write r%d", w.Reg) }
