package main

import (
	"bytes"
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
	"testing"
)

func fixture(name string) string {
	return filepath.Join("..", "..", "internal", "lint", "testdata", name)
}

// TestViolationFixturesExitNonZero: every *_bad fixture module must fail
// the lint.
func TestViolationFixturesExitNonZero(t *testing.T) {
	for _, name := range []string{"determinism_bad", "confighash_bad", "statscoverage_bad", "exhaustive_bad"} {
		t.Run(name, func(t *testing.T) {
			var out bytes.Buffer
			code := run([]string{"-C", fixture(name), "./..."}, &out, io.Discard)
			if code != 1 {
				t.Fatalf("exit code = %d, want 1; output:\n%s", code, out.String())
			}
			if out.Len() == 0 {
				t.Fatalf("no diagnostics printed")
			}
		})
	}
}

// TestShippedTreeIsClean: dsre-lint ./... exits 0 on the repository itself.
func TestShippedTreeIsClean(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-C", filepath.Join("..", ".."), "./..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
}

// TestJSONMode: -json emits parseable dsre-lint/v1 with the diagnostics.
func TestJSONMode(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-C", fixture("exhaustive_bad"), "-json", "./..."}, &out, io.Discard)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	var payload struct {
		Schema string `json:"schema"`
		Diags  []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(out.Bytes(), &payload); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, out.String())
	}
	if payload.Schema != Schema {
		t.Fatalf("schema = %q, want %q", payload.Schema, Schema)
	}
	if len(payload.Diags) != 1 || payload.Diags[0].Analyzer != "exhaustive" ||
		!strings.Contains(payload.Diags[0].Message, "msgBranch") {
		t.Fatalf("unexpected diagnostics: %+v", payload.Diags)
	}
}

// TestBadPatternRejected: only whole-module patterns are meaningful.
func TestBadPatternRejected(t *testing.T) {
	code := run([]string{"./internal/sim"}, io.Discard, io.Discard)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}
