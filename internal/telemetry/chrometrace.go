package telemetry

import (
	"fmt"
	"io"

	"repro/internal/sim"
	"repro/internal/trace"
)

// The exporter maps simulator activity onto the Chrome trace-event
// (catapult) JSON format, loadable in chrome://tracing or ui.perfetto.dev.
// One simulated cycle is rendered as one microsecond.  Lanes:
//
//	pid 0 "pipeline"  — fetch spans (tid 0) and block residency spans,
//	                    one lane per frame slot (tid 1..frameLanes)
//	pid 1 "waves"     — derived recovery-wave lifetime spans plus
//	                    correction/re-execution instants
//	pid 2 "tiles"     — individual ALU execution spans
//	pid 3 "counters"  — sampler time series as counter tracks
const (
	pidPipeline = 0
	pidWaves    = 1
	pidTiles    = 2
	pidCounters = 3

	frameLanes = 8  // block-residency lanes (seq mod frameLanes)
	waveLanes  = 16 // wave lanes (ordinal mod waveLanes)
	tileLanes  = 32 // exec lanes (instruction index mod tileLanes)
)

// chromeEvent is one trace-event object.  Fields follow the catapult
// trace-event format spec.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// WriteChromeTrace converts a trace collection (events plus stage spans)
// and an optional sample series into catapult JSON via a TraceBuilder.
// Either input may be nil.  Output is deterministic for a given input:
// events are emitted in recording order and waves in first-correction
// order, so golden-file tests are stable.
func WriteChromeTrace(w io.Writer, c *trace.Collector, samples []sim.Sample) error {
	b := NewTraceBuilder()
	b.SetMeta("source", "dsre")
	b.SetMeta("time_unit", "1 cycle = 1us")

	b.Process(pidPipeline, "pipeline")
	b.Process(pidWaves, "waves")
	b.Process(pidTiles, "tiles")
	b.Process(pidCounters, "counters")

	// Wave lifetimes are derived from the event stream: a wave starts at
	// its correction injection and ends at the last re-execution carrying
	// its tag.
	type waveSpan struct {
		tag        uint64
		seq        int64
		start, end int64
		reexecs    int
	}
	var waves []*waveSpan
	waveByTag := map[uint64]*waveSpan{}

	if c != nil {
		for _, e := range c.Events {
			switch e.Kind {
			case trace.KindCorrection:
				if _, ok := waveByTag[e.Tag]; !ok {
					ws := &waveSpan{tag: e.Tag, seq: e.Seq, start: e.Cycle, end: e.Cycle}
					waveByTag[e.Tag] = ws
					waves = append(waves, ws)
				}
				b.Instant(pidWaves, int(e.Tag%waveLanes),
					fmt.Sprintf("correction b%d.i%d", e.Seq, e.Idx), "wave", "p", e.Cycle)
			case trace.KindReexec:
				if ws, ok := waveByTag[e.Tag]; ok {
					ws.reexecs++
					if e.Cycle > ws.end {
						ws.end = e.Cycle
					}
				}
			case trace.KindBlockCommit:
				b.Instant(pidPipeline, 1+int(e.Seq%frameLanes),
					fmt.Sprintf("commit b%d", e.Seq), "commit", "t", e.Cycle)
			case trace.KindBlockSquash:
				b.Instant(pidPipeline, 1+int(e.Seq%frameLanes),
					fmt.Sprintf("squash b%d", e.Seq), "squash", "t", e.Cycle)
			}
		}

		for _, sp := range c.Spans {
			switch sp.Kind {
			case trace.SpanFetch:
				b.Span(pidPipeline, 0,
					fmt.Sprintf("fetch b%d (block %d)", sp.Seq, sp.Idx), "fetch",
					sp.Start, sp.End-sp.Start,
					map[string]any{"seq": sp.Seq, "block": sp.Idx})
			case trace.SpanBlock:
				name := fmt.Sprintf("b%d (block %d)", sp.Seq, sp.Idx)
				cat := "block"
				if sp.Tag == 1 {
					name += " SQUASHED"
					cat = "block-squashed"
				}
				b.Span(pidPipeline, 1+int(sp.Seq%frameLanes), name, cat,
					sp.Start, sp.End-sp.Start,
					map[string]any{"seq": sp.Seq, "block": sp.Idx, "squashed": sp.Tag == 1})
			case trace.SpanExec:
				b.Span(pidTiles, sp.Idx%tileLanes,
					fmt.Sprintf("b%d.i%d", sp.Seq, sp.Idx), "exec",
					sp.Start, sp.End-sp.Start,
					map[string]any{"tag": sp.Tag})
			case trace.SpanWave:
				// Pre-derived wave spans (synthetic collections).
				waveEvent(b, sp.Tag, sp.Seq, sp.Start, sp.End, int(sp.Idx), len(waves))
			}
		}
	}

	for i, ws := range waves {
		waveEvent(b, ws.tag, ws.seq, ws.start, ws.end, ws.reexecs, i)
	}

	for _, s := range samples {
		b.Counter(pidCounters, 0, "IPC", s.Cycle, map[string]any{"ipc": s.IPC})
		b.Counter(pidCounters, 0, "occupancy", s.Cycle, map[string]any{
			"blocks": s.InFlightBlocks, "lsq": s.LSQOccupancy, "noc": s.NoCPending,
		})
		b.Counter(pidCounters, 0, "speculation", s.Cycle, map[string]any{
			"waves": s.Waves, "reexecs": s.Reexecs, "flushes": s.Flushes,
		})
		b.Counter(pidCounters, 0, "miss-rate", s.Cycle, map[string]any{
			"l1d": s.L1DMissRate, "l2": s.L2MissRate,
		})
		b.Counter(pidCounters, 0, "cpi", s.Cycle, map[string]any{
			"commit": s.CPI.Commit, "wave": s.CPI.Wave, "bpred": s.CPI.BPred,
			"fetch": s.CPI.Fetch, "drain": s.CPI.Drain, "cache_miss": s.CPI.CacheMiss,
			"issue": s.CPI.Issue, "noc": s.CPI.NoC,
		})
	}

	return b.Write(w)
}

// waveEvent renders one recovery-wave lifetime span.
func waveEvent(b *TraceBuilder, tag uint64, seq, start, end int64, reexecs, ordinal int) {
	b.Span(pidWaves, ordinal%waveLanes,
		fmt.Sprintf("wave t%d (b%d)", tag, seq), "wave",
		start, end-start,
		map[string]any{"tag": tag, "origin_block": seq, "reexecs": reexecs})
}
