// Package core implements the primitives of the distributed selective
// re-execution (DSRE) protocol from Desikan et al., ASPLOS 2004:
//
//   - wave tags, which order speculative versions of a value so that
//     multiple speculative waves can traverse the dataflow graph at once;
//   - operand slots with the newest-wins delivery rule that makes an
//     instruction re-fire when a newer speculative value arrives;
//   - commit tokens, the commit wave that trails the speculative waves and
//     certifies values as final;
//   - wave accounting, which attributes re-executed instructions to the
//     mis-speculation that triggered them (evaluation figure E8).
//
// The cycle simulator in internal/sim glues these primitives to tiles, the
// operand network and the load/store queue.
package core

// Tag is a wave tag.  Tag zero is the initial (first-issue) wave; every
// mis-speculation recovery allocates a fresh, strictly larger tag from a
// TagSource, and instruction outputs carry the maximum of their input tags.
// A larger tag therefore always denotes a newer speculative version.
type Tag uint64

// TagSource allocates wave tags.  The zero value is ready to use.
type TagSource struct {
	last Tag
}

// Next returns a fresh tag, strictly larger than every tag allocated so far
// (and, because outputs only max over inputs, larger than every tag in
// flight).
func (s *TagSource) Next() Tag {
	s.last++
	return s.last
}

// Last returns the most recently allocated tag.
func (s *TagSource) Last() Tag { return s.last }

// MaxTag returns the larger of two tags.
func MaxTag(a, b Tag) Tag {
	if a > b {
		return a
	}
	return b
}

// RecoveryScheme selects how the machine recovers from a load-store
// dependence mis-speculation.
type RecoveryScheme int

// Recovery schemes.
const (
	// RecoverFlush squashes the violating load's block and every younger
	// block, then refetches — the conventional pipeline-flush baseline.
	RecoverFlush RecoveryScheme = iota
	// RecoverDSRE injects the corrected load value with a fresh wave tag
	// and lets it propagate selectively through the dataflow graph.
	RecoverDSRE
)

// String names the scheme.
func (r RecoveryScheme) String() string {
	switch r {
	case RecoverFlush:
		return "flush"
	case RecoverDSRE:
		return "dsre"
	}
	return "unknown"
}

// IssuePolicy selects when loads are allowed to issue relative to older
// stores — the dependence predictors the paper compares.
type IssuePolicy int

// Issue policies.
const (
	// IssueConservative defers a load until every older store in the window
	// has executed (all addresses known); it never mis-speculates.
	IssueConservative IssuePolicy = iota
	// IssueAggressive issues a load as soon as its address is ready.
	IssueAggressive
	// IssueStoreSet consults a store-set predictor (Chrysos & Emer): loads
	// predicted dependent wait for their predicted store.
	IssueStoreSet
	// IssueOracle waits exactly for the load's true conflicting store, as
	// identified by a perfect oracle (an emulator pre-pass).
	IssueOracle
)

// String names the policy.
func (p IssuePolicy) String() string {
	switch p {
	case IssueConservative:
		return "conservative"
	case IssueAggressive:
		return "aggressive"
	case IssueStoreSet:
		return "storeset"
	case IssueOracle:
		return "oracle"
	}
	return "unknown"
}
