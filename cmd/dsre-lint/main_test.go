package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

func fixture(name string) string {
	return filepath.Join("..", "..", "internal", "lint", "testdata", name)
}

// TestViolationFixturesExitNonZero: every *_bad fixture module must fail
// the lint.
func TestViolationFixturesExitNonZero(t *testing.T) {
	for _, name := range []string{
		"determinism_bad", "confighash_bad", "statscoverage_bad", "exhaustive_bad",
		"lockcheck_bad", "atomiccheck_bad", "ctxcheck_bad", "annotations_bad", "schemadrift_bad",
	} {
		t.Run(name, func(t *testing.T) {
			var out bytes.Buffer
			code := run([]string{"-C", fixture(name), "./..."}, &out, io.Discard)
			if code != 1 {
				t.Fatalf("exit code = %d, want 1; output:\n%s", code, out.String())
			}
			if out.Len() == 0 {
				t.Fatalf("no diagnostics printed")
			}
		})
	}
}

// TestShippedTreeIsClean: dsre-lint ./... exits 0 on the repository itself.
func TestShippedTreeIsClean(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-C", filepath.Join("..", ".."), "./..."}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
}

// TestJSONMode: -json emits parseable dsre-lint/v1 with the diagnostics.
func TestJSONMode(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-C", fixture("exhaustive_bad"), "-json", "./..."}, &out, io.Discard)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	var payload struct {
		Schema string `json:"schema"`
		Diags  []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(out.Bytes(), &payload); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, out.String())
	}
	if payload.Schema != Schema {
		t.Fatalf("schema = %q, want %q", payload.Schema, Schema)
	}
	if len(payload.Diags) != 1 || payload.Diags[0].Analyzer != "exhaustive" ||
		!strings.Contains(payload.Diags[0].Message, "msgBranch") {
		t.Fatalf("unexpected diagnostics: %+v", payload.Diags)
	}
}

// TestSchemaGoldensFresh: the committed wire-schema goldens match what
// -write-schemas would regenerate from the shipped tree, byte for byte —
// the same check the CI lint job runs with a temp dir and diff -r.
func TestSchemaGoldensFresh(t *testing.T) {
	root := filepath.Join("..", "..")
	mod, err := lint.Load(root)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	schemas, err := lint.Schemas(mod)
	if err != nil {
		t.Fatalf("Schemas: %v", err)
	}
	dir := filepath.Join(root, filepath.FromSlash(lint.DefaultConfig().SchemaDir))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read schema dir: %v", err)
	}
	onDisk := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		onDisk[e.Name()] = true
		want, ok := schemas[e.Name()]
		if !ok {
			t.Errorf("stale golden %s: no package declares these schemas", e.Name())
			continue
		}
		got, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("golden %s is out of date — run dsre-lint -write-schemas", e.Name())
		}
	}
	for name := range schemas {
		if !onDisk[name] {
			t.Errorf("missing golden %s — run dsre-lint -write-schemas", name)
		}
	}
}

// TestWriteSchemas: -write-schemas populates an empty directory and prunes
// goldens whose packages no longer declare schemas.
func TestWriteSchemas(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "internal-gone.json")
	if err := os.WriteFile(stale, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	code := run([]string{"-C", fixture("schemadrift_ok"), "-write-schemas", "-schemas-dir", dir}, &out, io.Discard)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out.String())
	}
	want, err := os.ReadFile(filepath.Join(fixture("schemadrift_ok"), "internal", "lint", "schemas", "internal-api.json"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "internal-api.json"))
	if err != nil {
		t.Fatalf("golden not written: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("written golden differs from fixture golden")
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale golden was not pruned (err=%v)", err)
	}
	if !strings.Contains(out.String(), "removed stale internal-gone.json") {
		t.Fatalf("missing prune notice:\n%s", out.String())
	}
}

// TestFixReport: -fix-report aggregates diagnostics per analyzer/package
// and still exits nonzero on a dirty tree.
func TestFixReport(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-C", fixture("lockcheck_bad"), "-fix-report", "./..."}, &out, io.Discard)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "lockcheck") || !strings.Contains(s, "internal/serve") {
		t.Fatalf("report missing analyzer/package row:\n%s", s)
	}
	if !strings.Contains(s, "5 diagnostics in 1 packages") {
		t.Fatalf("unexpected totals line:\n%s", s)
	}

	// The fixture modules are deliberately missing anchors, so the clean
	// path runs against the shipped tree, where every anchor resolves.
	out.Reset()
	code = run([]string{"-C", filepath.Join("..", ".."), "-fix-report", "./..."}, &out, io.Discard)
	if code != 0 {
		t.Fatalf("shipped tree: exit code = %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "clean (0 diagnostics)") {
		t.Fatalf("shipped tree report:\n%s", out.String())
	}
}

// TestBadPatternRejected: only whole-module patterns are meaningful.
func TestBadPatternRejected(t *testing.T) {
	code := run([]string{"./internal/sim"}, io.Discard, io.Discard)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}
