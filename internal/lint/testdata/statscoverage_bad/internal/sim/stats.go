package sim

import "m/internal/acct"

// Stats has one counter per failure mode.
type Stats struct {
	Cycles  int64
	debug   int64 // want: unexported, invisible to the report
	Scratch int64 `json:"-"` // want: tagged out of the report
	Dead    int64 // want: nothing ever writes it
	// Named sub-structs are part of the report's surface; their counters are
	// written by the declaring package (acct.Counters.Cold never is).  Wire
	// has a custom MarshalJSON, so its raw fields are exempt.
	Subs []acct.Counters
	Wire acct.Wire
}

type Machine struct{ stats Stats }

func (m *Machine) Step() {
	m.stats.Cycles++
	m.stats.debug++
	m.stats.Scratch++
	m.stats.Subs[0].Bump()
	m.stats.Wire = acct.Wire{}
}
