package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"
)

const schemadriftName = "schemadrift"

// schemaConstRE matches versioned wire-format identifiers like
// "dsre-serve-submit/v1".
var schemaConstRE = regexp.MustCompile(`^[A-Za-z0-9._-]+/v[0-9]+$`)

// SchemaGolden is the checked-in wire-shape record of one schema-declaring
// package: its version constants and the JSON-visible shape of every struct
// reachable from its wire roots.  Goldens live under Config.SchemaDir, one
// file per package, regenerated with `dsre-lint -write-schemas`.
type SchemaGolden struct {
	Package   string         `json:"package"`
	Constants []SchemaConst  `json:"constants"`
	Structs   []SchemaStruct `json:"structs"`
}

// SchemaConst is one `X = ".../vN"` declaration.
type SchemaConst struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// SchemaStruct is the field shape of one reachable struct.
type SchemaStruct struct {
	Name   string        `json:"name"` // "relpkg.TypeName"
	Fields []SchemaField `json:"fields"`
}

// SchemaField pins one field's name, json tag and rendered type.
type SchemaField struct {
	Name string `json:"name"`
	JSON string `json:"json,omitempty"` // raw `json:"..."` tag value
	Type string `json:"type"`
}

// schemadrift locates every package declaring a */vN schema constant,
// computes the JSON wire shape of every struct reachable from it, and
// compares against the checked-in goldens: a shape change without a
// regenerated golden (and, when the constants did not move, without a
// version bump) fails the lint.  Stale goldens for packages that no longer
// declare schemas are reported too.
func schemadrift(p *pass) {
	if p.cfg.SchemaDir == "" {
		return
	}
	computed, constPos := computeSchemas(p.mod)
	dir := filepath.Join(p.mod.Root, filepath.FromSlash(p.cfg.SchemaDir))

	names := make([]string, 0, len(computed))
	for name := range computed {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := computed[name]
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			p.reportf(schemadriftName, constPos[want.Package],
				"package %s declares wire schemas but has no golden %s — run `dsre-lint -write-schemas` and commit the result",
				want.Package, p.cfg.SchemaDir+"/"+name)
			continue
		}
		var have SchemaGolden
		if err := json.Unmarshal(data, &have); err != nil {
			p.reportf(schemadriftName, constPos[want.Package],
				"golden %s is not valid JSON (%v) — regenerate with `dsre-lint -write-schemas`", p.cfg.SchemaDir+"/"+name, err)
			continue
		}
		p.diffSchemas(want, &have, name, constPos[want.Package])
	}

	// Goldens with no surviving schema package are stale.
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
				continue
			}
			if _, ok := computed[e.Name()]; !ok {
				p.diags = append(p.diags, Diag{
					File: p.cfg.SchemaDir + "/" + e.Name(), Line: 1, Col: 1,
					Analyzer: schemadriftName,
					Message:  "stale schema golden: no package declares these wire schemas any more — delete it (or run `dsre-lint -write-schemas`)",
				})
			}
		}
	}
}

// diffSchemas reports the precise drift between the computed shape and the
// checked-in golden.
func (p *pass) diffSchemas(want, have *SchemaGolden, file string, pos token.Pos) {
	rerun := "run `dsre-lint -write-schemas` and commit the refreshed golden"
	constsEqual := reflect.DeepEqual(want.Constants, have.Constants)
	if !constsEqual {
		p.reportf(schemadriftName, pos,
			"schema constants of %s changed (golden %s disagrees) — %s", want.Package, file, rerun)
	}
	haveByName := map[string][]SchemaField{}
	for _, s := range have.Structs {
		haveByName[s.Name] = s.Fields
	}
	wantNames := map[string]bool{}
	for _, s := range want.Structs {
		wantNames[s.Name] = true
		hf, ok := haveByName[s.Name]
		if !ok {
			p.reportf(schemadriftName, pos,
				"wire struct %s is new in %s's schema closure — %s", s.Name, want.Package, rerun)
			continue
		}
		if !reflect.DeepEqual(s.Fields, hf) {
			if constsEqual {
				p.reportf(schemadriftName, pos,
					"wire struct %s changed JSON shape but %s's schema constants did not — bump the version constant, then %s",
					s.Name, want.Package, rerun)
			} else {
				p.reportf(schemadriftName, pos,
					"wire struct %s changed JSON shape — %s", s.Name, rerun)
			}
		}
	}
	for _, s := range have.Structs {
		if !wantNames[s.Name] {
			p.reportf(schemadriftName, pos,
				"wire struct %s left %s's schema closure — %s", s.Name, want.Package, rerun)
		}
	}
}

// Schemas computes the wire-schema goldens of the module: filename →
// deterministic JSON content.  cmd/dsre-lint -write-schemas writes these to
// Config.SchemaDir.
func Schemas(m *Module) (map[string][]byte, error) {
	computed, _ := computeSchemas(m)
	out := make(map[string][]byte, len(computed))
	for name, g := range computed {
		data, err := json.MarshalIndent(g, "", "  ")
		if err != nil {
			return nil, fmt.Errorf("lint: marshal schema golden %s: %w", name, err)
		}
		out[name] = append(data, '\n')
	}
	return out, nil
}

// computeSchemas builds the golden for every schema-declaring package, plus
// a representative position per package for diagnostics.
func computeSchemas(m *Module) (map[string]*SchemaGolden, map[string]token.Pos) {
	goldens := map[string]*SchemaGolden{}
	constPos := map[string]token.Pos{}
	for _, pkg := range m.Pkgs {
		consts := schemaConsts(m, pkg)
		if len(consts) == 0 {
			continue
		}
		display := pkg.RelPath
		if display == "" {
			display = "."
		}
		g := &SchemaGolden{Package: display}
		for _, c := range consts {
			g.Constants = append(g.Constants, SchemaConst{Name: c.name, Value: c.value})
			if _, ok := constPos[display]; !ok {
				constPos[display] = c.pos
			}
		}
		sort.Slice(g.Constants, func(i, j int) bool { return g.Constants[i].Name < g.Constants[j].Name })

		closure := map[*types.Named]bool{}
		scope := pkg.Types.Scope()
		rootNames := scope.Names() // sorted
		for _, n := range rootNames {
			tn, ok := scope.Lookup(n).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok || !hasJSONTag(st) {
				continue
			}
			collectStructClosure(m, named, closure)
		}
		var structs []*types.Named
		for n := range closure {
			structs = append(structs, n)
		}
		qual := moduleQualifier(m)
		sort.Slice(structs, func(i, j int) bool {
			return structDisplayName(m, structs[i]) < structDisplayName(m, structs[j])
		})
		for _, named := range structs {
			st := named.Underlying().(*types.Struct)
			ss := SchemaStruct{Name: structDisplayName(m, named)}
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				tag := reflect.StructTag(st.Tag(i)).Get("json")
				ss.Fields = append(ss.Fields, SchemaField{
					Name: f.Name(), JSON: tag, Type: types.TypeString(f.Type(), qual),
				})
			}
			g.Structs = append(g.Structs, ss)
		}
		goldens[schemaFileName(display)] = g
	}
	return goldens, constPos
}

type schemaConst struct {
	name, value string
	pos         token.Pos
}

// schemaConsts finds package-scope string constants whose value looks like
// a versioned wire-format name.
func schemaConsts(m *Module, pkg *Package) []schemaConst {
	var out []schemaConst
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i >= len(vs.Values) {
						continue
					}
					c, ok := m.Info.Defs[name].(*types.Const)
					if !ok || c.Val().Kind() != constant.String {
						continue
					}
					val := constant.StringVal(c.Val())
					if schemaConstRE.MatchString(val) {
						out = append(out, schemaConst{name: name.Name, value: val, pos: name.Pos()})
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// hasJSONTag reports whether any field carries a json struct tag.
func hasJSONTag(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		if reflect.StructTag(st.Tag(i)).Get("json") != "" {
			return true
		}
	}
	return false
}

// collectStructClosure adds named and every module-local named struct its
// fields (transitively) reference.
func collectStructClosure(m *Module, named *types.Named, out map[*types.Named]bool) {
	if out[named] {
		return
	}
	out[named] = true
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		collectReferencedStructs(m, st.Field(i).Type(), out)
	}
}

func collectReferencedStructs(m *Module, t types.Type, out map[*types.Named]bool) {
	switch t := t.(type) {
	case *types.Named:
		if !moduleLocal(m, t) {
			return
		}
		if _, ok := t.Underlying().(*types.Struct); ok {
			collectStructClosure(m, t, out)
		}
	case *types.Pointer:
		collectReferencedStructs(m, t.Elem(), out)
	case *types.Slice:
		collectReferencedStructs(m, t.Elem(), out)
	case *types.Array:
		collectReferencedStructs(m, t.Elem(), out)
	case *types.Map:
		collectReferencedStructs(m, t.Key(), out)
		collectReferencedStructs(m, t.Elem(), out)
	case *types.Chan:
		collectReferencedStructs(m, t.Elem(), out)
	case *types.Struct: // anonymous struct field
		for i := 0; i < t.NumFields(); i++ {
			collectReferencedStructs(m, t.Field(i).Type(), out)
		}
	}
}

func moduleLocal(m *Module, named *types.Named) bool {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == m.Path || strings.HasPrefix(pkg.Path(), m.Path+"/")
}

// moduleQualifier renders module-local packages by their relative path and
// everything else by its import path, independent of the module name.
func moduleQualifier(m *Module) types.Qualifier {
	return func(other *types.Package) string {
		path := other.Path()
		if path == m.Path {
			return "."
		}
		if rest, ok := strings.CutPrefix(path, m.Path+"/"); ok {
			return rest
		}
		return path
	}
}

func structDisplayName(m *Module, named *types.Named) string {
	return moduleQualifier(m)(named.Obj().Pkg()) + "." + named.Obj().Name()
}

// schemaFileName maps a package's display path to its golden filename.
func schemaFileName(display string) string {
	if display == "." {
		return "root.json"
	}
	return strings.ReplaceAll(display, "/", "-") + ".json"
}
