// Package serve violates the concurrency contracts on purpose: the
// lockcheck fixture.
package serve

import "sync"

// Store maps job hashes to results.
type Store struct {
	mu    sync.Mutex
	items map[string]int
	n     int

	hint string // deliberately after the blank line: not guarded
}

// Index orders hashes.
type Index struct {
	mu   sync.Mutex
	keys []string
}

// Put records a result under the lock.
func (s *Store) Put(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items[k] = v
	s.n++
}

// Get reads items without the lock: finding.
func (s *Store) Get(k string) int {
	return s.items[k]
}

// size reads n without the lock and without the *Locked suffix: finding.
func (s *Store) size() int {
	return s.n
}

// Snapshot copies the mutex through its value receiver: finding.
func (s Store) Snapshot() string {
	return s.hint
}

// Stats is a justified escape: the racy read is deliberate.
func (s *Store) Stats() int {
	//lint:lockcheck — approximate count only; torn reads are acceptable for monitoring
	return s.n
}

// Reload re-enters s.mu through refresh while holding it: deadlock.
func (s *Store) Reload() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refresh()
}

func (s *Store) refresh() {
	s.mu.Lock()
	s.items = map[string]int{}
	s.mu.Unlock()
}

// crossed acquires Store.mu then Index.mu.
func crossed(s *Store, ix *Index) {
	s.mu.Lock()
	ix.mu.Lock()
	ix.keys = append(ix.keys, "h")
	ix.mu.Unlock()
	s.n++
	s.mu.Unlock()
}

// reversed acquires the same mutexes in the opposite order: cycle.
func reversed(s *Store, ix *Index) {
	ix.mu.Lock()
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	ix.mu.Unlock()
}
