// Package sim is a miniature simulator exercising every analyzer's clean
// path: seeded randomness, annotated/commutative map iteration, a fully
// JSON-visible Config and Stats, and exhaustive enum switches.
package sim

import (
	"math/rand"
	"sort"
)

type msgKind uint8

const (
	msgData msgKind = iota
	msgCommit
	numMsgKinds // sentinel, not a member
)

// Config is the machine configuration; every field reaches the hash.
type Config struct {
	Width int
	Depth int
}

// Canonical normalises the configuration for hashing.
func (c Config) Canonical() Config {
	if c.Width == 0 {
		c.Width = 4
	}
	return c
}

// Stats counters, all surfaced in the report.
type Stats struct {
	Cycles int64
	Net    struct {
		Messages int64
	}
}

type Machine struct {
	cfg   Config
	stats Stats
	rng   *rand.Rand
	seen  map[int]int64
}

// New builds a machine with an explicitly seeded source.
func New(cfg Config, seed int64) *Machine {
	return &Machine{cfg: cfg.Canonical(), rng: rand.New(rand.NewSource(seed)), seen: map[int]int64{}}
}

// Stats exposes the counters.
func (m *Machine) Stats() Stats { return m.stats }

func (m *Machine) dispatch(k msgKind) {
	switch k {
	case msgData:
		m.stats.Net.Messages++
	case msgCommit:
		m.stats.Cycles++
	}
}

// Total folds the map with a commutative sum: no annotation needed.
func (m *Machine) Total() int64 {
	total := int64(0)
	for _, v := range m.seen {
		total += v
	}
	return total
}

// Keys collects then sorts, which the annotation asserts.
func (m *Machine) Keys() []int {
	keys := make([]int, 0, len(m.seen))
	//lint:ordered — keys are sorted immediately below
	for k := range m.seen {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
