package workload

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

func init() {
	register("listsum", "mcf (pointer-chasing list walk with node updates)", buildListsum)
	register("treewalk", "twolf (binary-tree search with path counters)", buildTreewalk)
}

// Registers used by the pointer kernels.
const (
	rNode = 1
	rSum  = 2
	rKey  = 2 // treewalk reuses the accumulator slot for the search key
	rX    = 3
	rLeft = 4
	rRoot = 6
	rMask = 7
)

// buildListsum walks a linked list of Size nodes laid out in shuffled order,
// summing and doubling each node's value.  Unrolled iterations chase several
// links per block with nil-safe predicated stores: once the walk reaches the
// null terminator, further loads read address zero (which stays zero) and
// stores are nullified.  The load→load chains serialise conservative
// policies that wait on store addresses derived from those loads.
func buildListsum(p Params) (*Workload, error) {
	p = p.withDefaults(4096, 4).clampUnroll(8)
	n := p.Size

	b := program.New("listsum")
	loop := b.NewBlock("loop")
	node := loop.Read(rNode)
	sum := loop.Read(rSum)
	zero := loop.Const(0)
	for k := 0; k < p.Unroll; k++ {
		alive := loop.Op(isa.OpTne, node, zero)
		v := loop.Load(node, 8)
		sum = loop.Op(isa.OpAdd, sum, v)
		loop.StoreIf(alive, true, node, 8, loop.Op(isa.OpAdd, v, v))
		node = loop.Load(node, 0)
	}
	loop.Write(rNode, node)
	loop.Write(rSum, sum)
	more := loop.Op(isa.OpTne, node, zero)
	loop.BranchIf(more, "loop", "done")

	done := b.NewBlock("done")
	res := done.Read(rSum)
	done.Store(done.Const(ResultBase), 0, res)
	done.Halt()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	w := &Workload{Description: fmt.Sprintf("walk of a %d-node shuffled list, unroll %d", n, p.Unroll), Params: p, Program: prog, Mem: mem.New()}
	seed := p.Seed

	// Place node i of the walk at a shuffled physical slot.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := int(splitmix64(&seed) % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	addr := func(i int) int64 {
		if i >= n {
			return 0
		}
		return DataBase + int64(16*perm[i])
	}
	var want int64
	vals := make([]int64, n)
	for i := 0; i < n; i++ {
		vals[i] = int64(splitmix64(&seed) % 100000)
		w.Mem.Write(uint64(addr(i)), addr(i+1), 8)
		w.Mem.Write(uint64(addr(i))+8, vals[i], 8)
		want += vals[i]
	}
	w.Regs[rNode] = addr(0)
	w.Check = func(regs *[isa.NumRegs]int64, m *mem.Memory) error {
		if err := checkU64(m, ResultBase, want, "listsum total"); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if err := checkU64(m, uint64(addr(i))+8, 2*vals[i], fmt.Sprintf("listsum node %d", i)); err != nil {
				return err
			}
		}
		return nil
	}
	return w, nil
}

// treewalk node layout: key@0, left@8, right@16, count@24 (32 bytes).
const (
	tnKey   = 0
	tnLeft  = 8
	tnRight = 16
	tnCount = 24
	tnSize  = 32
)

// buildTreewalk searches a balanced BST of Size (power-of-two-rounded) keys
// for Size/8 random keys, incrementing a visit counter on every node along
// each path.  Paths share prefixes, so counter updates near the root alias
// with later searches' counter loads while both are in flight.
func buildTreewalk(p Params) (*Workload, error) {
	p = p.withDefaults(2048, 1)
	n := nextPow2(p.Size)
	searches := n / 4
	if searches < 8 {
		searches = 8
	}

	b := program.New("treewalk")

	// Entry block: pick the next key, or halt when the search budget is out.
	next := b.NewBlock("next")
	{
		x := next.Read(rX)
		rem := next.Read(rLeft)
		root := next.Read(rRoot)
		mask := next.Read(rMask)
		x2 := lcg(next, x)
		key := next.Op(isa.OpAnd, next.Op(isa.OpShr, x2, next.Const(33)), mask)
		rem2 := next.Op(isa.OpSub, rem, next.Const(1))
		done := next.Op(isa.OpTle, rem2, next.Const(0))
		next.Write(rX, x2)
		next.Write(rLeft, rem2)
		next.Write(rKey, key)
		next.Write(rNode, root)
		next.BranchIf(done, "@halt", "step")
	}

	// Step block: one tree level — bump the visit counter, descend.
	step := b.NewBlock("step")
	{
		node := step.Read(rNode)
		key := step.Read(rKey)
		zero := step.Const(0)
		k := step.Load(node, tnKey)
		c := step.Load(node, tnCount)
		step.Store(node, tnCount, step.Op(isa.OpAdd, c, step.Const(1)))
		l := step.Load(node, tnLeft)
		r := step.Load(node, tnRight)
		goLeft := step.Op(isa.OpTlt, key, k)
		found := step.Op(isa.OpTeq, key, k)
		child := step.Select(goLeft, l, r)
		nxt := step.Select(found, zero, child)
		atEnd := step.Op(isa.OpTeq, nxt, zero)
		step.Write(rNode, nxt)
		step.BranchIf(atEnd, "next", "step")
	}

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	w := &Workload{Description: fmt.Sprintf("%d BST searches over %d keys with path counters", searches, n), Params: p, Program: prog, Mem: mem.New()}
	seed := p.Seed

	// Build a balanced BST over keys 0..n-1 at shuffled physical slots.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := int(splitmix64(&seed) % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	nodeAddr := make([]int64, n) // by key
	slot := 0
	var place func(lo, hi int) int64
	place = func(lo, hi int) int64 {
		if lo > hi {
			return 0
		}
		mid := (lo + hi) / 2
		a := DataBase + int64(tnSize*perm[slot])
		slot++
		nodeAddr[mid] = a
		l := place(lo, mid-1)
		r := place(mid+1, hi)
		w.Mem.Write(uint64(a)+tnKey, int64(mid), 8)
		w.Mem.Write(uint64(a)+tnLeft, l, 8)
		w.Mem.Write(uint64(a)+tnRight, r, 8)
		return a
	}
	root := place(0, n-1)

	w.Regs[rX] = int64(p.Seed)
	w.Regs[rLeft] = int64(searches) + 1
	w.Regs[rRoot] = root
	w.Regs[rMask] = int64(n - 1)

	// Reference walk.
	counts := make(map[int64]int64)
	xr := int64(p.Seed)
	for s := 0; s < searches; s++ {
		xr = lcgNext(xr)
		key := int64(uint64(xr) >> 33 & uint64(n-1))
		a := root
		for a != 0 {
			counts[a]++
			k := int64(uint64(nodeKeyOf(w.Mem, a)))
			if key == k {
				break
			}
			if key < k {
				a = w.Mem.Read(uint64(a)+tnLeft, 8)
			} else {
				a = w.Mem.Read(uint64(a)+tnRight, 8)
			}
		}
	}
	w.Check = func(regs *[isa.NumRegs]int64, m *mem.Memory) error {
		for _, a := range nodeAddr {
			if err := checkU64(m, uint64(a)+tnCount, counts[a], fmt.Sprintf("treewalk count @%#x", a)); err != nil {
				return err
			}
		}
		return nil
	}
	return w, nil
}

func nodeKeyOf(m *mem.Memory, addr int64) int64 { return m.Read(uint64(addr)+tnKey, 8) }

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
