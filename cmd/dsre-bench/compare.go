package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// comparison is one metric matched between a baseline artifact and the
// current run.
type comparison struct {
	Metric    string // e.g. "E2/histogram/dsre IPC" or a headline key
	Base, Cur float64
	Rel       float64 // (cur-base)/base, 0 when base is 0
}

// readArtifact loads a BENCH_<id>.json written by a previous run.
func readArtifact(path string) (*artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if a.Schema != artifactSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, a.Schema, artifactSchema)
	}
	return &a, nil
}

// compareArtifacts matches the baseline's headline metrics and the
// IPC/speedup measurements of its tables against the current run.  Tables
// are matched by title, rows by their non-numeric cells, columns by header
// name; anything present on only one side is skipped — a baseline from an
// older harness still compares on the metrics both share.
func compareArtifacts(base, cur *artifact) []comparison {
	var out []comparison
	keys := make([]string, 0, len(base.Headlines))
	for k := range base.Headlines {
		keys = append(keys, k)
	}
	sort.Strings(keys) //lint:ordered deterministic metric order
	for _, k := range keys {
		cv, ok := cur.Headlines[k]
		if !ok {
			continue
		}
		out = append(out, comp(base.ID+" "+k, base.Headlines[k], cv))
	}
	for _, bt := range base.Tables {
		var ct *stats.Table
		for _, c := range cur.Tables {
			if c.Title == bt.Title {
				ct = c
				break
			}
		}
		if ct == nil {
			continue
		}
		out = append(out, compareTables(base.ID, bt, ct)...)
	}
	return out
}

func compareTables(id string, base, cur *stats.Table) []comparison {
	// Most evaluation tables put IPC under scheme/size column headers, so a
	// performance keyword in the title ("E4: IPC vs window size") marks every
	// numeric column comparable; otherwise only keyword columns are.
	titleOK := comparable(base.Title)
	curByKey := map[string][]string{}
	for _, r := range cur.Rows() {
		curByKey[rowKey(r)] = r
	}
	var out []comparison
	for _, br := range base.Rows() {
		cr, ok := curByKey[rowKey(br)]
		if !ok {
			continue
		}
		for ci, h := range base.Header() {
			if !titleOK && !comparable(h) {
				continue
			}
			cj := -1
			for j, ch := range cur.Header() {
				if ch == h {
					cj = j
					break
				}
			}
			if cj < 0 || ci >= len(br) || cj >= len(cr) {
				continue
			}
			bv, err := strconv.ParseFloat(br[ci], 64)
			if err != nil {
				continue
			}
			cv, err := strconv.ParseFloat(cr[cj], 64)
			if err != nil {
				continue
			}
			out = append(out, comp(fmt.Sprintf("%s/%s %s", id, rowKey(br), h), bv, cv))
		}
	}
	return out
}

// rowKey identifies a row across runs by its non-numeric cells (workload,
// scheme, ...): the numeric cells are the measurements being compared.
func rowKey(row []string) string {
	var parts []string
	for _, c := range row {
		if _, err := strconv.ParseFloat(c, 64); err != nil {
			parts = append(parts, c)
		}
	}
	return strings.Join(parts, "/")
}

// comparable selects the performance metrics worth tracking across runs:
// IPC and derived speedup/oracle-fraction ratios.  Raw counters (cycles,
// violations) shift with any modelling change and would make every
// baseline stale.
func comparable(s string) bool {
	l := strings.ToLower(s)
	return strings.Contains(l, "ipc") || strings.Contains(l, "speedup") || strings.Contains(l, "oracle")
}

func comp(metric string, base, cur float64) comparison {
	c := comparison{Metric: metric, Base: base, Cur: cur}
	if base != 0 {
		c.Rel = (cur - base) / base
	}
	return c
}

// reportComparisons prints every matched metric and returns how many moved
// beyond the tolerance.
func reportComparisons(w io.Writer, comps []comparison, tol float64) int {
	beyond := 0
	for _, c := range comps {
		mark := " "
		if abs(c.Rel) > tol {
			mark = "!"
			beyond++
		}
		fmt.Fprintf(w, "%s %-52s %8.3f -> %8.3f  %+7.2f%%\n", mark, c.Metric, c.Base, c.Cur, 100*c.Rel)
	}
	return beyond
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
