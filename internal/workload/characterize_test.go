package workload

import (
	"testing"

	"repro/internal/emu"
)

// conflictClass records whether a kernel is supposed to exhibit in-window
// store→load dependences — the property the evaluation's kernel-suite
// design rests on.  A kernel drifting out of its class (e.g. after a
// refactor changes its memory layout) silently invalidates the experiments,
// so this test pins the classification.
var conflictClass = map[string]bool{
	"bank":      true,
	"cursor":    true,
	"hashmap":   true,
	"histogram": true,
	"queue":     true,
	"stencil":   true,

	"dotprod":  false,
	"listsum":  false, // node values are visited once; no revisits
	"matmul":   false,
	"sort":     true,  // cross-pass unit-distance conflicts
	"spmv":     false,
	"strmatch": false,
	"treewalk": true, // shared path-prefix counters
	"vecsum":   false,
}

// TestConflictClassification verifies each kernel's dependence profile
// matches its documented class, using the emulator's oracle pre-pass.
func TestConflictClassification(t *testing.T) {
	for _, name := range Names() {
		want, ok := conflictClass[name]
		if !ok {
			t.Errorf("%s: kernel not classified; update conflictClass", name)
			continue
		}
		size := 512
		switch name {
		case "matmul":
			size = 12
		case "sort":
			size = 48
		}
		w := MustBuild(name, Params{Size: size})
		res, err := w.RunEmulator(emu.Options{CollectOracle: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// "Short-distance" dependences (within ~256 dynamic memory ops)
		// are the ones a 1024-instruction window can trip over.
		var short int64
		for i, n := range res.DepDistance {
			if i <= 8 { // 2^8 = 256 memops
				short += n
			}
		}
		frac := float64(short) / float64(res.Loads)
		const threshold = 0.02
		got := frac >= threshold
		if got != want {
			t.Errorf("%s: %.1f%% of loads have short-distance dependences; classified conflict=%v",
				name, 100*frac, want)
		}
	}
}

// TestKernelDescriptions ensures every kernel documents itself.
func TestKernelDescriptions(t *testing.T) {
	for _, name := range Names() {
		w := MustBuild(name, Params{Size: 64})
		if w.Description == "" {
			t.Errorf("%s: empty description", name)
		}
		if w.Analog == "" {
			t.Errorf("%s: empty SPEC analog", name)
		}
		if w.Check == nil {
			t.Errorf("%s: no reference check", name)
		}
	}
}

// TestSeedsChangeData ensures the Seed parameter actually varies workload
// content (guarding against a kernel ignoring it).
func TestSeedsChangeData(t *testing.T) {
	for _, name := range []string{"histogram", "bank", "hashmap", "vecsum", "listsum"} {
		a := MustBuild(name, Params{Size: 128, Seed: 1})
		b := MustBuild(name, Params{Size: 128, Seed: 2})
		if a.Mem.Equal(b.Mem) {
			t.Errorf("%s: different seeds produced identical memory images", name)
		}
	}
}

// TestUnrollChangesBlockSize ensures Unroll has its documented effect.
func TestUnrollChangesBlockSize(t *testing.T) {
	small := MustBuild("vecsum", Params{Size: 128, Unroll: 2})
	big := MustBuild("vecsum", Params{Size: 128, Unroll: 8})
	if len(big.Program.Blocks[0].Insts) <= len(small.Program.Blocks[0].Insts) {
		t.Error("larger unroll did not grow the block")
	}
}
