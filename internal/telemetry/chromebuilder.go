package telemetry

import (
	"encoding/json"
	"io"
)

// TraceBuilder accumulates Chrome trace-event (catapult) JSON for any
// producer that wants to render spans on process/thread lanes — the
// simulator exporter (WriteChromeTrace) and the sweep engine's per-worker
// job-lifecycle trace (internal/obs) both sit on top of it.  Events are
// written in the order the builder receives them, so output is
// deterministic for a given call sequence and golden-file tests stay
// stable.
type TraceBuilder struct {
	trace chromeTrace
}

// NewTraceBuilder returns an empty builder.  Time unit semantics are the
// caller's: ts/dur values are catapult microseconds, whatever the caller
// maps onto them (the simulator renders one cycle as 1us; the sweep trace
// renders wall microseconds).
func NewTraceBuilder() *TraceBuilder {
	return &TraceBuilder{trace: chromeTrace{
		TraceEvents:     []chromeEvent{},
		DisplayTimeUnit: "ms",
	}}
}

// SetMeta records one key in the trace's otherData block.
func (b *TraceBuilder) SetMeta(key, value string) {
	if b.trace.OtherData == nil {
		b.trace.OtherData = map[string]string{}
	}
	b.trace.OtherData[key] = value
}

// Process names a pid lane.
func (b *TraceBuilder) Process(pid int, name string) {
	b.add(chromeEvent{Name: "process_name", Ph: "M", Pid: pid, Args: map[string]any{"name": name}})
}

// Thread names a tid lane within a pid.
func (b *TraceBuilder) Thread(pid, tid int, name string) {
	b.add(chromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": name}})
}

// Span emits one complete ("X") event.  A non-positive duration is clamped
// to 1 so zero-length stages remain visible in the viewer.
func (b *TraceBuilder) Span(pid, tid int, name, cat string, ts, durUS int64, args map[string]any) {
	if durUS <= 0 {
		durUS = 1
	}
	b.add(chromeEvent{Name: name, Cat: cat, Ph: "X", Ts: ts, Dur: durUS, Pid: pid, Tid: tid, Args: args})
}

// Instant emits an instant ("i") event; scope is the catapult "s" field
// ("t" thread, "p" process, "g" global).
func (b *TraceBuilder) Instant(pid, tid int, name, cat, scope string, ts int64) {
	b.add(chromeEvent{Name: name, Cat: cat, Ph: "i", Ts: ts, Pid: pid, Tid: tid, S: scope})
}

// Counter emits one counter ("C") sample carrying a set of series values.
func (b *TraceBuilder) Counter(pid, tid int, name string, ts int64, values map[string]any) {
	b.add(chromeEvent{Name: name, Ph: "C", Ts: ts, Pid: pid, Tid: tid, Args: values})
}

func (b *TraceBuilder) add(e chromeEvent) {
	b.trace.TraceEvents = append(b.trace.TraceEvents, e)
}

// Write encodes the accumulated trace as catapult JSON.
func (b *TraceBuilder) Write(w io.Writer) error {
	return json.NewEncoder(w).Encode(&b.trace)
}
