package program

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// Dot renders a block's dataflow graph in Graphviz format: register reads
// and constants at the top, the instruction DAG in the middle, register
// writes, stores and branches at the bottom.  Predicate edges are dashed;
// memory operations are shaded and annotated with their LSID (their
// sequential memory order).
func Dot(b *isa.Block) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", fmt.Sprintf("block%d_%s", b.ID, b.Name))
	sb.WriteString("  rankdir=TB;\n  node [fontname=\"monospace\" fontsize=10];\n")

	for i, r := range b.Reads {
		fmt.Fprintf(&sb, "  read%d [label=\"read r%d\" shape=invhouse];\n", i, r.Reg)
	}
	for i := range b.Insts {
		in := &b.Insts[i]
		shape, extra := "box", ""
		switch {
		case in.Op.IsMem():
			shape = "box"
			extra = " style=filled fillcolor=lightgrey"
		case in.Op.IsBranch():
			shape = "diamond"
		case in.Op == isa.OpMovi:
			shape = "plaintext"
		}
		label := fmt.Sprintf("i%d %s%s", i, in.Op, in.Pred)
		if in.Op == isa.OpMovi || in.Op == isa.OpBro || in.Op.IsMem() {
			label += fmt.Sprintf(" #%d", in.Imm)
		}
		if in.LSID != isa.NoLSID {
			label += fmt.Sprintf("\\nlsid %d", in.LSID)
		}
		fmt.Fprintf(&sb, "  i%d [label=\"%s\" shape=%s%s];\n", i, label, shape, extra)
	}
	for i, w := range b.Writes {
		fmt.Fprintf(&sb, "  w%d [label=\"write r%d\" shape=house];\n", i, w.Reg)
	}

	edge := func(src string, ts []isa.Target) {
		for _, t := range ts {
			switch t.Kind {
			case isa.TargetWrite:
				fmt.Fprintf(&sb, "  %s -> w%d;\n", src, t.Index)
			case isa.TargetInst:
				style := ""
				if t.Slot == isa.SlotP {
					style = " [style=dashed label=p]"
				} else if t.Slot == isa.SlotB {
					style = " [label=b]"
				}
				fmt.Fprintf(&sb, "  %s -> i%d%s;\n", src, t.Index, style)
			}
		}
	}
	for i, r := range b.Reads {
		edge(fmt.Sprintf("read%d", i), r.Targets)
	}
	for i := range b.Insts {
		edge(fmt.Sprintf("i%d", i), b.Insts[i].Targets)
	}
	sb.WriteString("}\n")
	return sb.String()
}
