package lsq

import (
	"repro/internal/core"
	"repro/internal/predictor"
)

// LoadResult is the outcome of a load issue attempt.
type LoadResult struct {
	Deferred bool
	Reason   DeferReason
	Value    int64
	Tag      core.Tag
	Latency  int
	PC       predictor.PC // static identity, for value-predictor training
}

// LoadTry records a load execution (the address arriving at the LSQ) and
// attempts to issue it under the configured policy.  Re-executions of the
// same load (a new address under DSRE) re-enter here and produce a fresh
// reply.  now is the current cycle, used for MSHR accounting.
func (q *Queue) LoadTry(now int64, k Key, addr uint64, tag core.Tag) LoadResult {
	s, op := q.opSlot(k)
	if s < 0 || q.stores[s].Test(op) {
		return LoadResult{Deferred: true, Reason: DeferNone} // stale message for a squashed block
	}
	f := s*opStride + op
	first := !q.exec[s].Test(op)
	q.exec[s].Set(op)
	q.addr[f] = addr
	if first {
		q.Stats.Loads++
	}
	// Tag of the reply: never older than anything already sent for this
	// load, so consumers accept the newest execution.
	q.tag[f] = core.MaxTag(q.tag[f], tag)
	return q.tryIssue(now, k, s, op)
}

// tryIssue applies the policy and, if permitted, produces the load's value.
func (q *Queue) tryIssue(now int64, k Key, s, op int) LoadResult {
	f := s*opStride + op
	if reason := q.mustDefer(k, s, op); reason != DeferNone {
		if !q.parked[s].Test(op) {
			q.parked[s].Set(op)
			q.deferred = append(q.deferred, k)
		}
		if reason == DeferPolicy {
			q.Stats.DeferredPolicy++
		} else {
			q.Stats.DeferredMSHR++
		}
		return LoadResult{Deferred: true, Reason: reason}
	}
	size := int(q.size[f])
	v, fwd := q.reconstruct(k, q.addr[f], size)
	lat := q.cfg.ForwardLatency
	if fwd == size {
		q.Stats.Forwards++
	} else {
		clat, ok := q.hier.DataAccess(now, q.addr[f], false)
		if !ok {
			// All MSHRs busy: park and retry as time passes.
			if !q.parked[s].Test(op) {
				q.parked[s].Set(op)
				q.deferred = append(q.deferred, k)
			}
			q.mshrWait = true
			q.Stats.DeferredMSHR++
			return LoadResult{Deferred: true, Reason: DeferMSHR}
		}
		if clat > lat {
			lat = clat
		}
		if fwd > 0 {
			q.Stats.PartialForwards++
		}
	}
	q.issued[s].Set(op)
	q.parked[s].Clear(op)
	q.data[f] = v
	// Issuing is one of the conditions certification waits on.
	q.certDirty = true
	return LoadResult{Value: v, Tag: q.tag[f], Latency: lat, PC: q.pc[f]}
}

// GuardLoad marks a flushed violating load: its replayed instance (same
// dynamic key) issues conservatively, guaranteeing forward progress.
func (q *Queue) GuardLoad(k Key) {
	q.guard[k] = true
	q.Stats.GuardedLoads++
}

// mustDefer evaluates the issue policy for a load whose address is known.
func (q *Queue) mustDefer(k Key, s, op int) DeferReason {
	if q.guard[k] && q.anyOlderStoreUnexecuted(k) {
		return DeferPolicy
	}
	switch q.cfg.Policy {
	case core.IssueAggressive:
		return DeferNone
	case core.IssueConservative:
		if q.anyOlderStoreUnexecuted(k) {
			return DeferPolicy
		}
		return DeferNone
	case core.IssueStoreSet, core.IssueOracle:
		f := s*opStride + op
		if !q.waitValid[s].Test(op) || !q.waitFor[f].Valid() {
			return DeferNone
		}
		w := Key{Seq: q.waitFor[f].Seq, LSID: q.waitFor[f].LSID}
		if !w.Less(k) {
			return DeferNone // not actually older; ignore
		}
		ws, wop := q.opSlot(w)
		if ws < 0 || !q.stores[ws].Test(wop) || q.exec[ws].Test(wop) {
			return DeferNone // gone from the window, or already executed
		}
		return DeferPolicy
	}
	return DeferNone
}

// anyOlderStoreUnexecuted reports whether some store older than k in the
// window has not yet executed: one AND-NOT word test per block (the
// bitmap replacement for the old per-entry scan).
func (q *Queue) anyOlderStoreUnexecuted(k Key) bool {
	if q.n == 0 {
		return false
	}
	base := q.seqs[q.head]
	last := k.Seq - base
	if last >= int64(q.n) {
		last = int64(q.n) - 1
	}
	for l := int64(0); l <= last; l++ {
		s := (q.head + int(l)) & q.ringMask()
		pend := q.stores[s] &^ q.exec[s]
		if base+l == k.Seq {
			pend = pend.Below(int(k.LSID))
		}
		if !pend.Empty() {
			return true
		}
	}
	return false
}

// HasReadyWork reports whether the next TakeReady call will re-evaluate
// parked loads (as opposed to returning immediately).  The event-driven
// run loop uses it to classify a cycle as active: a re-evaluation scan can
// issue loads or count deferral retries even when it returns nothing.
func (q *Queue) HasReadyWork() bool {
	return (q.dirty || q.mshrWait) && len(q.deferred) > 0
}

// TakeReady re-evaluates parked loads and returns those that can now issue,
// appending into buf (pass buf[:0] to reuse a scratch buffer; the result
// must be consumed before the next call).  Call once per cycle; it is cheap
// when nothing changed.  Loads parked on a full MSHR file are retried every
// cycle regardless of queue events.
func (q *Queue) TakeReady(now int64, buf []ReadyLoad) []ReadyLoad {
	if !q.HasReadyWork() {
		q.dirty = false
		return buf
	}
	q.dirty = false
	q.mshrWait = false
	out := buf
	kept := q.deferred[:0]
	for _, k := range q.deferred {
		s, op := q.opSlot(k)
		if s < 0 || !q.parked[s].Test(op) {
			continue // squashed or already issued
		}
		r := q.tryIssue(now, k, s, op)
		if r.Deferred {
			kept = append(kept, k)
			continue
		}
		out = append(out, ReadyLoad{Load: k, Addr: q.addr[s*opStride+op], Res: r})
	}
	q.deferred = kept
	return out
}

// LoadInputsCommitted marks that the load's address operands are final (the
// commit wave reached its inputs); the load becomes a certification
// candidate.
func (q *Queue) LoadInputsCommitted(k Key) {
	s, op := q.opSlot(k)
	if s < 0 || q.stores[s].Test(op) || q.inputsCom[s].Test(op) {
		return
	}
	q.inputsCom[s].Set(op)
	q.certCand = append(q.certCand, k)
	q.dirty = true
	q.certDirty = true
}

// CertifiedLoad is a load whose value is final.
type CertifiedLoad struct {
	Load  Key
	Addr  uint64
	Value int64
}

// TakeCertifiable returns loads that are newly certifiable: issued, address
// final, and every older store committed — appending into buf (pass buf[:0]
// to reuse a scratch buffer).  The returned value is asserted equal to the
// load's current value — every store update re-checked younger loads, so a
// mismatch here would be a protocol bug.
func (q *Queue) TakeCertifiable(buf []CertifiedLoad) []CertifiedLoad {
	if len(q.certCand) == 0 || !q.certDirty {
		// Nothing to certify, or nothing relevant changed since the last
		// scan: skipping is behaviour-identical (a yield-less scan moves no
		// statistics) and avoids the O(candidates × stores) walk.
		return buf
	}
	q.certDirty = false
	out := buf
	kept := q.certCand[:0]
	for _, k := range q.certCand {
		s, op := q.opSlot(k)
		if s < 0 {
			continue
		}
		if q.certified[s].Test(op) {
			continue
		}
		f := s*opStride + op
		laddr, lsize := q.addr[f], int(q.size[f])
		if !q.issued[s].Test(op) || !q.olderStoresSafe(k, laddr, lsize) {
			kept = append(kept, k)
			continue
		}
		v, _ := q.reconstruct(k, laddr, lsize)
		if v != q.data[f] {
			panic("lsq: certification value mismatch for " + k.String() + " (missed violation)")
		}
		q.certified[s].Set(op)
		out = append(out, CertifiedLoad{Load: k, Addr: laddr, Value: v})
	}
	q.certCand = kept
	return out
}

// olderStoresSafe reports whether no older store can still change the
// load's value: every older store is either fully committed, or has a
// committed (final) address that provably does not overlap the load.  The
// second case is what keeps the commit wave's memory leg from serialising
// on false dependences: only true aliases wait for store data.
//
// The scan is mask-first: per block, the uncommitted-store candidates are
// one AND-NOT, the "address provably final and live" filter is one more
// word expression, and only candidates surviving both reach the per-bit
// address-overlap check.
func (q *Queue) olderStoresSafe(k Key, laddr uint64, lsize int) bool {
	base := q.seqs[q.head]
	for l := int64(0); ; l++ {
		bseq := base + l
		if bseq > k.Seq || l >= int64(q.n) {
			return true
		}
		s := (q.head + int(l)) & q.ringMask()
		cand := q.stores[s] &^ q.committed[s]
		if bseq == k.Seq {
			cand = cand.Below(int(k.LSID))
		}
		if cand.Empty() {
			continue
		}
		safeAddr := q.addrCom[s] & q.exec[s] &^ q.null[s]
		if !(cand &^ safeAddr).Empty() {
			return false
		}
		fb := s * opStride
		for m := cand; !m.Empty(); {
			i := m.Min()
			m.Clear(i)
			if overlap(q.addr[fb+i], int(q.size[fb+i]), laddr, lsize) {
				return false
			}
		}
	}
}

// Occupancy returns the number of resident entries (for stats).
func (q *Queue) Occupancy() int { return q.occupancy() }

// MarkDirty forces deferred-load re-evaluation on the next TakeReady (used
// by the simulator after events the queue cannot see, e.g. MSHR drain).
func (q *Queue) MarkDirty() { q.dirty = true }
