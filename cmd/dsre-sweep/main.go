// dsre-sweep runs an experiment grid through the sweep engine: every grid
// point becomes a deterministic job (workload, scheme, machine config,
// seed), jobs execute on a bounded worker pool, and results land in a
// content-addressed cache so an interrupted or edited sweep only pays for
// the points that actually changed.
//
// Usage:
//
//	dsre-sweep -grid grid.json                    # declarative cross product
//	dsre-sweep -workloads vecsum,histogram -schemes dsre,oracle -sizes 256
//	dsre-sweep -cache .dsre-cache -jobs 8 -retries 1 -timeout 10m
//	dsre-sweep -cache-url http://daemon:8177 ...   # share a dsre-serve cache
//	dsre-sweep -manifest sweep-manifest.json -reports out/
//	dsre-sweep -resume sweep-manifest.json        # re-run a prior sweep's grid
//
// The -grid JSON is a sweep.Grid: named axes multiply (cross product) and
// an explicit "specs" list appends hand-picked points.  Axis flags given
// alongside -grid are rejected — one source of truth per sweep.
//
// -resume replays the grid recorded in a previous run's manifest.  With
// the same -cache, finished points are cache hits and only unfinished or
// failed points compute; the new manifest supersedes the old one.
//
// Each completed point can be written to -reports as a standalone
// dsre-report/v1 artifact named <workload>-<scheme>-<hash12>.json; the
// manifest records every job's spec, hash, status and timing, and the
// process exits nonzero if any job failed.  SIGINT and SIGTERM cancel
// in-flight jobs but still write the manifest, so a ^C'd (or fleet-
// scheduler-killed) sweep is resumable.
//
// Fleet observability is opt-in: -status :9090 serves /metrics (Prometheus
// text), /healthz, /progress (live JSON) and /debug/pprof; -events
// sweep.events writes a dsre-events/v2 JSONL lifecycle log; -span-trace
// sweep-trace.json exports per-job lifecycle spans as a Chrome trace with
// one lane per worker (open in chrome://tracing or Perfetto).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/status"
	"repro/internal/serve"
	"repro/internal/sweep"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dsre-sweep: "+format+"\n", args...)
	os.Exit(2)
}

// splitList parses a comma-separated flag value, ignoring empty items.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func splitInts(name, s string) []int {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil {
			fatalf("-%s: %q is not an integer", name, f)
		}
		out = append(out, n)
	}
	return out
}

func splitUints(name, s string) []uint64 {
	var out []uint64
	for _, f := range splitList(s) {
		n, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			fatalf("-%s: %q is not an unsigned integer", name, f)
		}
		out = append(out, n)
	}
	return out
}

func main() {
	gridPath := flag.String("grid", "", "grid definition JSON (sweep.Grid); exclusive with axis flags")
	resume := flag.String("resume", "", "re-run the grid recorded in this sweep manifest")

	workloads := flag.String("workloads", "", "comma-separated workload axis")
	schemes := flag.String("schemes", "", "comma-separated scheme axis")
	sizes := flag.String("sizes", "", "comma-separated workload-size axis")
	seeds := flag.String("seeds", "", "comma-separated seed axis")
	frames := flag.String("frames", "", "comma-separated in-flight-block axis")
	hops := flag.String("hop-latencies", "", "comma-separated mesh hop-latency axis")
	sampleEvery := flag.Int("sample-every", 0, "per-point time-series sampling interval (cycles; 0 disables)")

	jobs := flag.Int("jobs", 0, "concurrent simulations (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "per-job wall-clock budget (0 = none)")
	retries := flag.Int("retries", 0, "extra attempts per failed job")
	cache := flag.String("cache", "", "content-addressed result cache directory (empty disables)")
	cacheURL := flag.String("cache-url", "", "dsre-serve daemon whose artifact store backs the cache (exclusive with -cache)")
	manifest := flag.String("manifest", "sweep-manifest.json", "manifest output path (empty disables)")
	reports := flag.String("reports", "", "directory for per-point dsre-report/v1 artifacts (empty disables)")
	quiet := flag.Bool("q", false, "suppress per-job progress on stderr")
	statusAddr := flag.String("status", "", "serve /metrics, /healthz, /progress and /debug/pprof on this address (empty disables)")
	eventsPath := flag.String("events", "", "write a dsre-events/v2 JSONL lifecycle log to this path (empty disables)")
	spanTrace := flag.String("span-trace", "", "write per-job lifecycle spans as a Chrome trace to this path (empty disables)")
	linger := flag.Duration("linger", 0, "keep the -status server up this long after the sweep (lets scrapers collect the final state)")
	flag.Parse()
	if flag.NArg() > 0 {
		fatalf("unexpected arguments %q (axes are flags, not positional)", flag.Args())
	}

	axisFlags := *workloads != "" || *schemes != "" || *sizes != "" ||
		*seeds != "" || *frames != "" || *hops != ""

	// Resolve the grid: a manifest to resume, a grid file, or axis flags.
	var specs []sweep.JobSpec
	switch {
	case *resume != "":
		if *gridPath != "" || axisFlags {
			fatalf("-resume already fixes the grid; drop -grid and axis flags")
		}
		m, err := sweep.ReadManifest(*resume)
		if err != nil {
			var se *sweep.SchemaError
			if errors.As(err, &se) && se.Newer() {
				fatalf("cannot resume: %v", se)
			}
			fatalf("%v", err)
		}
		specs = m.Specs()
	case *gridPath != "":
		if axisFlags {
			fatalf("-grid and axis flags are exclusive; put the axes in the grid file")
		}
		g, err := sweep.ReadGrid(*gridPath)
		if err != nil {
			fatalf("%v", err)
		}
		if specs, err = g.Expand(); err != nil {
			fatalf("%v", err)
		}
	default:
		g := sweep.Grid{
			Workloads:    splitList(*workloads),
			Schemes:      splitList(*schemes),
			Sizes:        splitInts("sizes", *sizes),
			Seeds:        splitUints("seeds", *seeds),
			Frames:       splitInts("frames", *frames),
			HopLatencies: splitInts("hop-latencies", *hops),
			SampleEvery:  *sampleEvery,
		}
		var err error
		if specs, err = g.Expand(); err != nil {
			fatalf("%v (try -workloads ... or -grid grid.json)", err)
		}
	}

	opts := sweep.Options{Workers: *jobs, Timeout: *timeout, Retries: *retries}
	switch {
	case *cache != "" && *cacheURL != "":
		fatalf("-cache and -cache-url are exclusive; pick one store")
	case *cache != "":
		st, err := sweep.OpenStore(*cache)
		if err != nil {
			fatalf("%v", err)
		}
		opts.Store = st
	case *cacheURL != "":
		opts.Store = serve.NewRemoteStore(*cacheURL, nil)
	}
	if !*quiet {
		opts.Progress = sweep.NewReporter(os.Stderr, *jobs)
	}

	// Fleet observability: all three surfaces are opt-in and disabled hooks
	// cost the engine one nil check, so a bare sweep stays byte-identical.
	var sink *obs.JSONLSink
	var eventsFile *os.File
	if *eventsPath != "" {
		f, err := os.Create(*eventsPath)
		if err != nil {
			fatalf("%v", err)
		}
		eventsFile = f
		sink = obs.NewJSONLSink(f)
	}
	var spans *obs.SpanLog
	if *spanTrace != "" {
		spans = obs.NewSpanLog()
	}
	var observer *obs.SweepObs
	if *statusAddr != "" || sink != nil || spans != nil {
		// The sink interface value must be nil when no log was requested;
		// wrapping a nil *JSONLSink would produce a non-nil interface.
		var s obs.EventSink
		if sink != nil {
			s = sink
		}
		observer = obs.NewSweepObs(time.Now(), s, spans)
		opts.Obs = observer
	}
	if *statusAddr != "" {
		srv, err := status.Serve(*statusAddr, status.Options{
			Registry: observer.Reg,
			Progress: func() obs.ProgressView { return observer.Progress(time.Now()) },
		})
		if err != nil {
			fatalf("%v", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "dsre-sweep: status server on http://%s\n", srv.Addr())
	}

	// SIGINT and SIGTERM cancel in-flight jobs; the manifest below still
	// records what finished, so the sweep can be resumed.  SIGTERM matters
	// for fleet schedulers, which never send an interactive interrupt.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	sum, runErr := sweep.New(opts).Run(ctx, specs)
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "dsre-sweep: interrupted: %v\n", runErr)
	}

	if *manifest != "" {
		if err := sweep.NewManifest(sum).WriteFile(*manifest); err != nil {
			fatalf("%v", err)
		}
	}
	if *reports != "" {
		if err := os.MkdirAll(*reports, 0o755); err != nil {
			fatalf("%v", err)
		}
		for _, j := range sum.Jobs {
			if j.Status != sweep.StatusOK || j.Report == nil {
				continue
			}
			name := fmt.Sprintf("%s-%s-%s.json",
				j.Spec.Workload, strings.ReplaceAll(j.Spec.Scheme, "+", "_"), j.Hash[:12])
			if err := j.Report.WriteFile(filepath.Join(*reports, name)); err != nil {
				fatalf("%v", err)
			}
		}
	}

	if spans != nil {
		f, err := os.Create(*spanTrace)
		if err != nil {
			fatalf("%v", err)
		}
		if err := spans.WriteChromeTrace(f); err != nil {
			fatalf("span trace: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("span trace: %v", err)
		}
	}
	if eventsFile != nil {
		if err := sink.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "dsre-sweep: event log degraded: %v\n", err)
		}
		if err := eventsFile.Close(); err != nil {
			fatalf("event log: %v", err)
		}
	}

	// -linger keeps the status server answering after the sweep so a final
	// scrape (CI, a dashboard) sees the terminal counters; a signal ends it
	// early.
	if *linger > 0 && *statusAddr != "" {
		select {
		case <-time.After(*linger):
		case <-ctx.Done():
		}
	}

	if sum.Failed > 0 {
		fmt.Fprintf(os.Stderr, "dsre-sweep: %d/%d jobs failed (first: %v)\n",
			sum.Failed, len(sum.Jobs), sum.FirstError())
		os.Exit(1)
	}
	if runErr != nil {
		os.Exit(1)
	}
}
