package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// ManifestSchema identifies the sweep-manifest wire format.
const ManifestSchema = "dsre-sweep-manifest/v1"

// SchemaError reports a manifest whose schema stamp this build does not
// read.  It is detected before the body is decoded, so a manifest from a
// future dsre-sweep fails with a typed, explainable error instead of a
// shape-dependent unmarshal failure.
type SchemaError struct {
	Path string // file the manifest was read from
	Got  string // schema stamp found
	Want string // schema this build reads
}

func (e *SchemaError) Error() string {
	if e.Newer() {
		return fmt.Sprintf("sweep: manifest %s has schema %q, newer than this build's %q — re-run with the dsre-sweep that wrote it, or upgrade", e.Path, e.Got, e.Want)
	}
	return fmt.Sprintf("sweep: manifest %s schema %q, want %q", e.Path, e.Got, e.Want)
}

// Newer reports whether the stamp names a later version of the manifest
// family this build reads (dsre-sweep-manifest/vN with N greater).
func (e *SchemaError) Newer() bool {
	got, okG := schemaVersion(e.Got)
	want, okW := schemaVersion(e.Want)
	return okG && okW && sameSchemaFamily(e.Got, e.Want) && got > want
}

// schemaVersion parses the trailing "/vN" of a schema stamp.
func schemaVersion(s string) (int, bool) {
	i := strings.LastIndex(s, "/v")
	if i < 0 {
		return 0, false
	}
	n, err := strconv.Atoi(s[i+2:])
	return n, err == nil
}

// sameSchemaFamily compares schema stamps with the "/vN" suffix stripped.
func sameSchemaFamily(a, b string) bool {
	trim := func(s string) string {
		if i := strings.LastIndex(s, "/v"); i >= 0 {
			return s[:i]
		}
		return s
	}
	return trim(a) == trim(b)
}

// Manifest is the machine-readable account of one sweep: every job's spec,
// hash and outcome, without the result payloads (those live in the store,
// addressed by each job's hash).  A manifest is also a runnable grid:
// dsre-sweep -resume replays its specs, so finishing an interrupted or
// partially-failed sweep needs nothing but the manifest and the cache.
type Manifest struct {
	Schema     string      `json:"schema"`
	SimVersion string      `json:"sim_version"`
	Jobs       []JobResult `json:"jobs"`
	Totals     Totals      `json:"totals"`
}

// Totals summarises a manifest's jobs.
type Totals struct {
	Jobs      int   `json:"jobs"`
	OK        int   `json:"ok"`
	Failed    int   `json:"failed"`
	CacheHits int   `json:"cache_hits"`
	ElapsedMS int64 `json:"elapsed_ms"`
}

// NewManifest builds the manifest for a summary.
func NewManifest(sum *Summary) *Manifest {
	return &Manifest{
		Schema:     ManifestSchema,
		SimVersion: sim.Version,
		Jobs:       sum.Jobs,
		Totals: Totals{
			Jobs:      len(sum.Jobs),
			OK:        sum.OK,
			Failed:    sum.Failed,
			CacheHits: sum.CacheHits,
			ElapsedMS: sum.Elapsed.Milliseconds(),
		},
	}
}

// WriteFile writes the manifest as indented JSON.
func (m *Manifest) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("sweep: marshal manifest: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadManifest loads and schema-checks a manifest.  The schema stamp is
// probed before the body decodes: a manifest from a newer (or otherwise
// foreign) schema returns a *SchemaError instead of whatever unmarshal
// failure its changed shape would produce.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var hdr struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &hdr); err != nil {
		return nil, fmt.Errorf("sweep: parse manifest %s: %w", path, err)
	}
	if hdr.Schema != ManifestSchema {
		return nil, &SchemaError{Path: path, Got: hdr.Schema, Want: ManifestSchema}
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("sweep: parse manifest %s: %w", path, err)
	}
	return &m, nil
}

// Specs returns the manifest's grid, in manifest order — the input for a
// resumed sweep.  Completed points replay from the cache; failed or
// never-run points recompute.
func (m *Manifest) Specs() []JobSpec {
	specs := make([]JobSpec, len(m.Jobs))
	for i := range m.Jobs {
		specs[i] = m.Jobs[i].Spec
	}
	return specs
}
