package sweep

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/telemetry"
)

// newObserved builds an observer with an event log and span log attached,
// for wiring into Options.Obs.
func newObserved() (*obs.SweepObs, *bytes.Buffer, *obs.SpanLog) {
	var log bytes.Buffer
	spans := obs.NewSpanLog()
	return obs.NewSweepObs(time.Now(), obs.NewJSONLSink(&log), spans), &log, spans
}

// TestEngineObsReconciles runs a grid with dedup, a cache replay and a
// failure, and pins that the observer's counters and the cache_hit events
// reconcile exactly with the manifest totals — the same equality the
// obs-smoke CI job asserts against the real binary.
func TestEngineObsReconciles(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	specs := []JobSpec{
		{Workload: "vecsum"},
		{Workload: "vecsum", Scheme: "dsre"}, // dedups onto the first
		{Workload: "histogram"},
		{Workload: "matmul"},
	}
	runner := func(ctx context.Context, spec JobSpec) (*telemetry.Report, error) {
		if spec.Workload == "matmul" {
			return nil, errors.New("deterministic failure")
		}
		return fakeReport(spec), nil
	}

	run := func() (*Summary, *obs.SweepObs, []obs.Event) {
		o, log, _ := newObserved()
		eng := New(Options{Workers: 2, Store: st, Runner: runner, Obs: o})
		sum, err := eng.Run(context.Background(), specs)
		if err != nil {
			t.Fatal(err)
		}
		events, err := obs.ReadEvents(bytes.NewReader(log.Bytes()))
		if err != nil {
			t.Fatalf("event log invalid: %v", err)
		}
		return sum, o, events
	}

	check := func(name string, sum *Summary, o *obs.SweepObs, events []obs.Event) {
		t.Helper()
		m := NewManifest(sum)
		s := o.Reg.Snapshot()
		for metric, want := range map[string]int{
			"dsre_sweep_jobs_total":        m.Totals.Jobs,
			"dsre_sweep_jobs_ok_total":     m.Totals.OK,
			"dsre_sweep_jobs_failed_total": m.Totals.Failed,
			"dsre_sweep_cache_hits_total":  m.Totals.CacheHits,
		} {
			if got := s.Counter(metric); got != int64(want) {
				t.Errorf("%s: %s = %d, manifest says %d", name, metric, got, want)
			}
		}
		hitCopies := 0
		for _, e := range events {
			if e.Kind == obs.EventCacheHit {
				hitCopies += e.Copies
			}
		}
		if hitCopies != m.Totals.CacheHits {
			t.Errorf("%s: Σ cache_hit copies = %d, manifest says %d", name, hitCopies, m.Totals.CacheHits)
		}
		var doneTotals *obs.Event
		for i := range events {
			if events[i].Kind == obs.EventSweepDone {
				doneTotals = &events[i]
			}
		}
		if doneTotals == nil {
			t.Fatalf("%s: no sweep_done event", name)
		}
		if doneTotals.OK != m.Totals.OK || doneTotals.Failed != m.Totals.Failed || doneTotals.CacheHits != m.Totals.CacheHits {
			t.Errorf("%s: sweep_done totals %+v disagree with manifest %+v", name, doneTotals, m.Totals)
		}
		// Gauges must read clean after the run.
		for _, g := range []string{"dsre_sweep_jobs_queued", "dsre_sweep_jobs_running", "dsre_sweep_workers_busy"} {
			if got := s.Gauge(g); got != 0 {
				t.Errorf("%s: %s = %d after run, want 0", name, g, got)
			}
		}
	}

	// Cold run: one dedup hit; warm run: store replays cover everything OK.
	sum, o, events := run()
	if sum.OK != 3 || sum.CacheHits != 1 || sum.Failed != 1 {
		t.Fatalf("cold run totals: %+v", sum)
	}
	check("cold", sum, o, events)

	sum, o, events = run()
	if sum.OK != 3 || sum.CacheHits != 3 || sum.Failed != 1 {
		t.Fatalf("warm run totals: %+v", sum)
	}
	check("warm", sum, o, events)
}

// TestEngineSpanDecomposition pins the contiguity invariant the Chrome
// trace relies on: each job's phase chain starts at the grid's feed start,
// every phase begins exactly where the previous ended, and the per-job
// span total telescopes to the job's wall time (first pickup to last mark)
// with no gaps or overlaps.
func TestEngineSpanDecomposition(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o, _, spans := newObserved()
	eng := New(Options{Workers: 2, Store: st, Obs: o,
		Runner: func(ctx context.Context, spec JobSpec) (*telemetry.Report, error) {
			time.Sleep(2 * time.Millisecond)
			return fakeReport(spec), nil
		}})
	specs := []JobSpec{
		{Workload: "vecsum"},
		{Workload: "histogram"},
		{Workload: "matmul"},
	}
	if _, err := eng.Run(context.Background(), specs); err != nil {
		t.Fatal(err)
	}

	jobs := spans.Jobs()
	if len(jobs) != len(specs) {
		t.Fatalf("recorded %d job lifecycles, want %d", len(jobs), len(specs))
	}
	for _, j := range jobs {
		if len(j.Phases) == 0 {
			t.Fatalf("job %s: no phases", j.Name)
		}
		if j.Phases[0].Phase != obs.PhaseQueueWait {
			t.Errorf("job %s: first phase %v, want queue-wait", j.Name, j.Phases[0].Phase)
		}
		var total int64
		for i, ph := range j.Phases {
			if ph.EndNS < ph.StartNS {
				t.Errorf("job %s phase %v: negative span [%d,%d]", j.Name, ph.Phase, ph.StartNS, ph.EndNS)
			}
			if i > 0 && ph.StartNS != j.Phases[i-1].EndNS {
				t.Errorf("job %s: %v starts at %d, previous phase ended at %d — chain must be contiguous",
					j.Name, ph.Phase, ph.StartNS, j.Phases[i-1].EndNS)
			}
			total += ph.EndNS - ph.StartNS
		}
		if wall := j.Phases[len(j.Phases)-1].EndNS - j.Phases[0].StartNS; total != wall {
			t.Errorf("job %s: phase total %dns != wall %dns", j.Name, total, wall)
		}
		// A computed job with a store saw the full decomposition.
		want := []obs.Phase{obs.PhaseQueueWait, obs.PhaseCacheLookup, obs.PhaseRun, obs.PhaseStoreWrite}
		if len(j.Phases) != len(want) {
			t.Errorf("job %s: phases %v, want %v", j.Name, j.Phases, want)
			continue
		}
		for i, ph := range j.Phases {
			if ph.Phase != want[i] {
				t.Errorf("job %s: phase %d = %v, want %v", j.Name, i, ph.Phase, want[i])
			}
		}
	}
}

// TestEngineObsRetryAndPanic pins the retry/panic event stream: a job that
// panics once and fails once under Retries=1 yields one panic event, one
// retry event, and retry metrics equal to attempts-1.
func TestEngineObsRetryAndPanic(t *testing.T) {
	o, log, _ := newObserved()
	var mu sync.Mutex
	attempts := 0
	eng := New(Options{Retries: 1, Obs: o,
		Runner: func(ctx context.Context, spec JobSpec) (*telemetry.Report, error) {
			mu.Lock()
			attempts++
			a := attempts
			mu.Unlock()
			if a == 1 {
				panic("simulated wreck")
			}
			return nil, errors.New("still broken")
		}})
	sum, err := eng.Run(context.Background(), []JobSpec{{Workload: "vecsum"}})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 1 {
		t.Fatalf("summary: %+v", sum)
	}

	s := o.Reg.Snapshot()
	if got := s.Counter("dsre_sweep_retries_total"); got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}
	if got := s.Counter("dsre_sweep_panics_total"); got != 1 {
		t.Errorf("panics = %d, want 1", got)
	}
	events, err := obs.ReadEvents(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[obs.EventKind]int{}
	for _, e := range events {
		kinds[e.Kind]++
		if e.Kind == obs.EventPanic && e.Error != "panic: simulated wreck" {
			t.Errorf("panic event error = %q, want first line of the panic", e.Error)
		}
	}
	if kinds[obs.EventPanic] != 1 || kinds[obs.EventRetry] != 1 {
		t.Errorf("event kinds = %v, want 1 panic and 1 retry", kinds)
	}
}

// TestEngineObsDrain cancels a sweep mid-run and pins the structured drain
// event plus the drain counter.
func TestEngineObsDrain(t *testing.T) {
	o, log, _ := newObserved()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The first (and only started) job cancels the sweep, then keeps its
	// worker busy long enough that the feed loop observes ctx.Done before
	// the worker could accept another job — so exactly one job runs and the
	// rest are deterministically abandoned.
	eng := New(Options{Workers: 1, Obs: o,
		Runner: func(ctx context.Context, spec JobSpec) (*telemetry.Report, error) {
			cancel()
			time.Sleep(50 * time.Millisecond)
			return fakeReport(spec), nil
		}})

	var specs []JobSpec
	for _, frames := range []int{2, 4, 8, 16} {
		specs = append(specs, JobSpec{Workload: "vecsum", Frames: frames})
	}
	sum, err := eng.Run(ctx, specs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	if sum.OK != 1 || sum.Failed != 3 {
		t.Fatalf("drained summary: OK=%d Failed=%d, want 1/3", sum.OK, sum.Failed)
	}

	if got := o.Reg.Snapshot().Counter("dsre_sweep_drains_total"); got != 1 {
		t.Errorf("drains = %d, want 1", got)
	}
	events, err := obs.ReadEvents(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var drain *obs.Event
	for i := range events {
		if events[i].Kind == obs.EventDrain {
			drain = &events[i]
		}
	}
	if drain == nil {
		t.Fatal("no drain event in the log")
	}
	if drain.Error != context.Canceled.Error() {
		t.Errorf("drain cause = %q, want %q", drain.Error, context.Canceled)
	}
}

// TestEngineObsOffMatchesOn pins that attaching an observer changes no
// engine-visible result: same summary, same per-job statuses and hashes.
func TestEngineObsOffMatchesOn(t *testing.T) {
	specs := []JobSpec{
		{Workload: "vecsum"},
		{Workload: "vecsum", Scheme: "dsre"},
		{Workload: "histogram"},
	}
	run := func(o *obs.SweepObs) *Summary {
		var calls sync.Map
		eng := New(Options{Workers: 2, Runner: countingRunner(t, &calls), Obs: o})
		sum, err := eng.Run(context.Background(), specs)
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	observer, _, _ := newObserved()
	off, on := run(nil), run(observer)
	if off.OK != on.OK || off.Failed != on.Failed || off.CacheHits != on.CacheHits {
		t.Fatalf("summaries diverge: off %+v, on %+v", off, on)
	}
	for i := range off.Jobs {
		a, b := off.Jobs[i], on.Jobs[i]
		if a.Status != b.Status || a.Hash != b.Hash || a.CacheHit != b.CacheHit {
			t.Errorf("job %d diverges: off %+v, on %+v", i, a, b)
		}
	}
}

// TestReporterRollingETA pins that the reporter's ETA follows the recent
// completion rate: slow early jobs followed by fast ones must not leave the
// ETA stuck at the cumulative mean.
func TestReporterRollingETA(t *testing.T) {
	var out bytes.Buffer
	r := NewReporter(&out, 1)
	r.begin(40, 0)
	// 35 computed completions recorded "now": the window rate is high, so
	// the remaining 5 jobs extrapolate to a small ETA even though each job
	// claims 10s of compute time (cumulative mean would say ~50s).
	for i := 0; i < 35; i++ {
		r.jobDone(JobResult{Spec: JobSpec{Workload: "vecsum"}, Status: StatusOK, Elapsed: 10_000}, 1)
	}
	r.mu.Lock()
	d, ok := r.etaLocked()
	r.mu.Unlock()
	if !ok {
		t.Fatal("eta unavailable")
	}
	if d > 10*time.Second {
		t.Errorf("eta = %v; rolling-window estimate should beat the 50s cumulative mean", d)
	}
	if !bytes.Contains(out.Bytes(), []byte("eta")) {
		t.Error("progress lines carry no eta")
	}
}

// TestReporterFinishHitRate pins the cache-hit percentage in the summary
// line alongside the counts the older tests grep for.
func TestReporterFinishHitRate(t *testing.T) {
	var out bytes.Buffer
	r := NewReporter(&out, 1)
	r.begin(4, 0)
	sum := &Summary{
		Jobs:      make([]JobResult, 4),
		OK:        3,
		Failed:    1,
		CacheHits: 2,
		Elapsed:   3 * time.Second,
	}
	r.finish(sum)
	line := out.String()
	if want := "3 ok (2 cache hits, 50%), 1 failed"; !bytes.Contains([]byte(line), []byte(want)) {
		t.Errorf("finish line %q missing %q", line, want)
	}
}
