// Package program provides construction and validation of EDGE programs.
//
// The Builder offers an SSA-like API: values are handles returned by
// operations, and consumers name the values they use.  The builder takes
// care of the EDGE-specific bookkeeping that a compiler would perform:
// dataflow target encoding, fanout trees for values with more than
// isa.MaxTargets consumers, load/store ID assignment in program order, and
// the exactly-one-producer discipline for predicated selects and branches.
package program

import (
	"fmt"

	"repro/internal/isa"
)

// HaltLabel is the branch-target label that terminates the program.
const HaltLabel = "@halt"

// Builder accumulates blocks and resolves label references at Build time.
type Builder struct {
	name   string
	blocks []*BlockBuilder
	byName map[string]*BlockBuilder
	errs   []error
}

// New returns an empty program builder.
func New(name string) *Builder {
	return &Builder{name: name, byName: make(map[string]*BlockBuilder)}
}

// NewBlock creates a block with a unique label.  The first block created is
// the program entry.
func (b *Builder) NewBlock(label string) *BlockBuilder {
	if label == HaltLabel {
		b.errs = append(b.errs, fmt.Errorf("block label %q is reserved", label))
	}
	if _, dup := b.byName[label]; dup {
		b.errs = append(b.errs, fmt.Errorf("duplicate block label %q", label))
	}
	bb := &BlockBuilder{
		b:     b,
		label: label,
		id:    len(b.blocks),
		reads: make(map[uint8]Val),
	}
	b.blocks = append(b.blocks, bb)
	b.byName[label] = bb
	return bb
}

// Build resolves labels, expands fanout, assigns LSIDs, validates the
// result, and returns the finished program.
func (b *Builder) Build() (*isa.Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if len(b.blocks) == 0 {
		return nil, fmt.Errorf("program %q has no blocks", b.name)
	}
	p := &isa.Program{Name: b.name, Entry: 0}
	for _, bb := range b.blocks {
		blk, err := bb.finish()
		if err != nil {
			return nil, fmt.Errorf("block %q: %w", bb.label, err)
		}
		p.Blocks = append(p.Blocks, blk)
	}
	if err := Validate(p); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; intended for workload kernels and
// tests where a malformed program is a programming bug.
func (b *Builder) MustBuild() *isa.Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// consRef records one consumer of a node's value: either an operand slot of
// another node, or a register write slot.
type consRef struct {
	n    *node // nil means register write slot wIdx
	slot isa.Slot
	wIdx int
}

type node struct {
	inst      isa.Inst
	label     string // branch target label for OpBro
	consumers []consRef
	fanout    []*node // mov tree created at finish time, parent-first
	index     int     // final instruction index, assigned at finish time
}

// readSlot is a register read plus its consumers.
type readSlot struct {
	reg       uint8
	consumers []consRef
	fanout    []*node
}

// Val is a handle to a value flowing through a block's dataflow graph.
// The zero Val is invalid.
type Val struct {
	bb   *BlockBuilder
	n    *node // nil for register reads
	read int   // read-slot index when n == nil
	ok   bool
}

// BlockBuilder constructs one block.
type BlockBuilder struct {
	b        *Builder
	label    string
	id       int
	nodes    []*node
	readList []*readSlot
	reads    map[uint8]Val
	writes   []uint8
	written  map[uint8]bool
	sealed   bool
}

// Label returns the block's label.
func (bb *BlockBuilder) Label() string { return bb.label }

// ID returns the block's ID in the final program.
func (bb *BlockBuilder) ID() int { return bb.id }

func (bb *BlockBuilder) fail(format string, args ...any) {
	panic(fmt.Sprintf("program builder: block %q: %s", bb.label, fmt.Sprintf(format, args...)))
}

func (bb *BlockBuilder) addNode(in isa.Inst) *node {
	n := &node{inst: in}
	bb.nodes = append(bb.nodes, n)
	return n
}

func (bb *BlockBuilder) use(v Val, n *node, slot isa.Slot) {
	if !v.ok {
		bb.fail("use of invalid Val")
	}
	if v.bb != bb {
		bb.fail("use of Val from block %q", v.bb.label)
	}
	ref := consRef{n: n, slot: slot}
	if v.n != nil {
		v.n.consumers = append(v.n.consumers, ref)
	} else {
		rs := bb.readList[v.read]
		rs.consumers = append(rs.consumers, ref)
	}
}

func (bb *BlockBuilder) val(n *node) Val { return Val{bb: bb, n: n, ok: true} }

// Read returns the value of architectural register reg at block entry.
// Repeated reads of the same register share one read slot.
func (bb *BlockBuilder) Read(reg uint8) Val {
	if reg >= isa.NumRegs {
		bb.fail("register r%d out of range", reg)
	}
	if v, ok := bb.reads[reg]; ok {
		return v
	}
	rs := &readSlot{reg: reg}
	bb.readList = append(bb.readList, rs)
	v := Val{bb: bb, n: nil, read: len(bb.readList) - 1, ok: true}
	bb.reads[reg] = v
	return v
}

// Const materialises an immediate value (OpMovi).
func (bb *BlockBuilder) Const(v int64) Val {
	return bb.val(bb.addNode(isa.Inst{Op: isa.OpMovi, Imm: v, LSID: isa.NoLSID}))
}

// Op applies a two-operand opcode.
func (bb *BlockBuilder) Op(op isa.Opcode, a, b Val) Val {
	if op.NumDataOperands() != 2 || op.IsMem() || op.IsBranch() {
		bb.fail("Op: %s is not a two-operand ALU opcode", op)
	}
	n := bb.addNode(isa.Inst{Op: op, LSID: isa.NoLSID})
	bb.use(a, n, isa.SlotA)
	bb.use(b, n, isa.SlotB)
	return bb.val(n)
}

// Op1 applies a one-operand opcode.
func (bb *BlockBuilder) Op1(op isa.Opcode, a Val) Val {
	if op.NumDataOperands() != 1 || op.IsMem() || op.IsBranch() {
		bb.fail("Op1: %s is not a one-operand ALU opcode", op)
	}
	n := bb.addNode(isa.Inst{Op: op, LSID: isa.NoLSID})
	bb.use(a, n, isa.SlotA)
	return bb.val(n)
}

// OpPred applies a predicated one- or two-operand ALU opcode that executes
// only when pred's truth equals onTrue.  The caller is responsible for the
// exactly-one-producer discipline of any shared consumer slots; Select and
// BranchIf wrap the common safe patterns.
func (bb *BlockBuilder) OpPred(op isa.Opcode, pred Val, onTrue bool, a, b Val) Val {
	nd := op.NumDataOperands()
	if nd == 0 || op.IsMem() || op.IsBranch() {
		bb.fail("OpPred: %s is not a predicable ALU opcode", op)
	}
	n := bb.addNode(isa.Inst{Op: op, Pred: predMode(onTrue), LSID: isa.NoLSID})
	bb.use(pred, n, isa.SlotP)
	bb.use(a, n, isa.SlotA)
	if nd == 2 {
		bb.use(b, n, isa.SlotB)
	}
	return bb.val(n)
}

func predMode(onTrue bool) isa.PredMode {
	if onTrue {
		return isa.PredTrue
	}
	return isa.PredFalse
}

// Select returns ifTrue when pred is non-zero and ifFalse otherwise.  It is
// built from two complementary predicated movs feeding a join mov, so that
// exactly one producer fires into every consumer slot per execution.
func (bb *BlockBuilder) Select(pred, ifTrue, ifFalse Val) Val {
	join := bb.addNode(isa.Inst{Op: isa.OpMov, LSID: isa.NoLSID})
	t := bb.OpPred(isa.OpMov, pred, true, ifTrue, Val{})
	f := bb.OpPred(isa.OpMov, pred, false, ifFalse, Val{})
	// Move the join after its producers so the final index order is a DAG.
	bb.reorderAfter(join, t.n, f.n)
	bb.use(t, join, isa.SlotA)
	bb.use(f, join, isa.SlotA)
	return bb.val(join)
}

// reorderAfter moves n to the end of the node list; it must have been the
// most recently created node before others.
func (bb *BlockBuilder) reorderAfter(n *node, others ...*node) {
	for i, x := range bb.nodes {
		if x == n {
			bb.nodes = append(bb.nodes[:i], bb.nodes[i+1:]...)
			bb.nodes = append(bb.nodes, n)
			return
		}
	}
}

// Load issues an 8-byte load from addr+off.  Loads are unpredicated by ISA
// rule (see the validator); memory order follows creation order.
func (bb *BlockBuilder) Load(addr Val, off int64) Val {
	return bb.load(isa.OpLd, addr, off)
}

// Load1 issues a 1-byte zero-extending load from addr+off.
func (bb *BlockBuilder) Load1(addr Val, off int64) Val {
	return bb.load(isa.OpLd1, addr, off)
}

func (bb *BlockBuilder) load(op isa.Opcode, addr Val, off int64) Val {
	n := bb.addNode(isa.Inst{Op: op, Imm: off})
	bb.use(addr, n, isa.SlotA)
	return bb.val(n)
}

// Store issues an 8-byte store of data to addr+off.
func (bb *BlockBuilder) Store(addr Val, off int64, data Val) {
	bb.store(isa.OpSt, Val{}, isa.PredNone, addr, off, data)
}

// Store1 issues a 1-byte store of data's low byte to addr+off.
func (bb *BlockBuilder) Store1(addr Val, off int64, data Val) {
	bb.store(isa.OpSt1, Val{}, isa.PredNone, addr, off, data)
}

// StoreIf issues a predicated 8-byte store that executes only when pred's
// truth equals onTrue; otherwise the store nullifies (signals completion to
// the LSQ without writing memory).
func (bb *BlockBuilder) StoreIf(pred Val, onTrue bool, addr Val, off int64, data Val) {
	bb.store(isa.OpSt, pred, predMode(onTrue), addr, off, data)
}

// Store1If is the 1-byte variant of StoreIf.
func (bb *BlockBuilder) Store1If(pred Val, onTrue bool, addr Val, off int64, data Val) {
	bb.store(isa.OpSt1, pred, predMode(onTrue), addr, off, data)
}

func (bb *BlockBuilder) store(op isa.Opcode, pred Val, pm isa.PredMode, addr Val, off int64, data Val) {
	n := bb.addNode(isa.Inst{Op: op, Pred: pm, Imm: off})
	if pm != isa.PredNone {
		bb.use(pred, n, isa.SlotP)
	}
	bb.use(addr, n, isa.SlotA)
	bb.use(data, n, isa.SlotB)
}

// Write declares that v becomes the architectural value of reg when the
// block commits.  Each register may be written at most once per block.
func (bb *BlockBuilder) Write(reg uint8, v Val) {
	if reg >= isa.NumRegs {
		bb.fail("register r%d out of range", reg)
	}
	if bb.written == nil {
		bb.written = make(map[uint8]bool)
	}
	if bb.written[reg] {
		bb.fail("register r%d written twice", reg)
	}
	bb.written[reg] = true
	w := len(bb.writes)
	bb.writes = append(bb.writes, reg)
	if !v.ok || v.bb != bb {
		bb.fail("Write of invalid Val")
	}
	ref := consRef{n: nil, wIdx: w}
	if v.n != nil {
		v.n.consumers = append(v.n.consumers, ref)
	} else {
		bb.readList[v.read].consumers = append(bb.readList[v.read].consumers, ref)
	}
}

// Branch ends the block with an unconditional branch to the labelled block
// (or HaltLabel to stop the program).
func (bb *BlockBuilder) Branch(label string) {
	bb.addNode(isa.Inst{Op: isa.OpBro, LSID: isa.NoLSID}).label = label
}

// BranchIf ends the block with a two-way conditional branch: to thenLabel
// when pred is non-zero, else to elseLabel.  Exactly one of the two
// predicated branch instructions fires per execution.
func (bb *BlockBuilder) BranchIf(pred Val, thenLabel, elseLabel string) {
	t := bb.addNode(isa.Inst{Op: isa.OpBro, Pred: isa.PredTrue, LSID: isa.NoLSID})
	t.label = thenLabel
	bb.use(pred, t, isa.SlotP)
	f := bb.addNode(isa.Inst{Op: isa.OpBro, Pred: isa.PredFalse, LSID: isa.NoLSID})
	f.label = elseLabel
	bb.use(pred, f, isa.SlotP)
}

// BranchInd ends the block with an indirect branch to the block whose ID is
// the value of v (HaltTarget stops the program).
func (bb *BlockBuilder) BranchInd(v Val) {
	n := bb.addNode(isa.Inst{Op: isa.OpBri, LSID: isa.NoLSID})
	bb.use(v, n, isa.SlotA)
}

// Halt ends the block by stopping the program.
func (bb *BlockBuilder) Halt() { bb.Branch(HaltLabel) }
