package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/tracing"
	"repro/internal/sweep"
)

// WorkerOptions configures one fleet worker process.
type WorkerOptions struct {
	// BaseURL is the daemon ("http://host:port").
	BaseURL string
	// ID names this worker in leases, events and /progress.
	ID string
	// Engine executes leased specs (required; build it with Store nil —
	// results travel back through the complete upload, and the daemon owns
	// the store).
	Engine *sweep.Engine
	// Concurrency is how many jobs this worker runs at once (default 1).
	Concurrency int
	// Poll is the idle sleep between empty lease polls (default 200ms).
	Poll time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client

	// Spans, when set, must be the SpanLog the Engine's SweepObs records
	// into.  After each run the worker takes the job's span chains out of
	// it, stamps them with the lease's propagated trace/span IDs, and ships
	// them to the daemon inside the complete upload.
	Spans *obs.SpanLog

	// OnLease, when set, runs after each lease grant and before execution.
	// Returning an error makes the worker abandon the lease and stop dead —
	// the crash-injection hook the lease-expiry tests use.
	OnLease func(hash string) error
}

// Worker pulls jobs from a dsre-serve daemon: lease, heartbeat at a third
// of the TTL while running, execute through its own engine, and upload the
// sealed result.  Several workers against one daemon form the fleet; work
// stealing falls out of the pull model (a fast worker simply leases more).
type Worker struct {
	o    WorkerOptions
	done atomic.Int64 // jobs completed (either status)
}

// NewWorker validates options and builds a worker.
func NewWorker(o WorkerOptions) (*Worker, error) {
	if o.BaseURL == "" {
		return nil, fmt.Errorf("serve: worker needs a BaseURL")
	}
	if o.Engine == nil {
		return nil, fmt.Errorf("serve: worker needs an Engine")
	}
	if o.ID == "" {
		return nil, fmt.Errorf("serve: worker needs an ID")
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 1
	}
	if o.Poll <= 0 {
		o.Poll = 200 * time.Millisecond
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	o.BaseURL = strings.TrimRight(o.BaseURL, "/")
	return &Worker{o: o}, nil
}

// Run pulls and executes jobs until ctx cancels (clean exit) or the
// crash-injection hook fires (its error propagates).  Concurrency slots
// run as goroutines inside this call.
func (w *Worker) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	errs := make(chan error, w.o.Concurrency)
	for i := 0; i < w.o.Concurrency; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			errs <- w.loop(ctx, slot)
		}(i)
	}
	wg.Wait()
	close(errs)
	//lint:ctxcheck — errs holds one buffered slot per goroutine and was closed above, so the drain cannot block
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// JobsDone reports how many leased jobs this worker finished (uploaded).
func (w *Worker) JobsDone() int64 { return w.done.Load() }

// loop is one lease-execute-upload slot.
func (w *Worker) loop(ctx context.Context, slot int) error {
	for {
		if ctx.Err() != nil {
			return nil
		}
		lease, status, err := w.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			// The daemon may be restarting or unreachable; poll again.
			if !sleepCtx(ctx, w.o.Poll) {
				return nil
			}
			continue
		}
		if status == http.StatusNoContent {
			if !sleepCtx(ctx, w.o.Poll) {
				return nil
			}
			continue
		}
		if w.o.OnLease != nil {
			if herr := w.o.OnLease(lease.Hash); herr != nil {
				// Simulated crash: abandon the lease (no upload, no
				// heartbeat) and die the way a killed process would.
				return herr
			}
		}
		w.execute(ctx, lease)
	}
}

// execute runs one leased job and uploads the outcome.
func (w *Worker) execute(ctx context.Context, lease *LeaseResponse) {
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		w.heartbeats(ctx, lease, hbStop)
	}()

	sum, _ := w.o.Engine.Run(ctx, []sweep.JobSpec{lease.Spec})
	r := sum.Jobs[0]
	close(hbStop)
	hbWG.Wait()

	if ctx.Err() != nil && r.Status == sweep.StatusFailed && strings.HasPrefix(r.Error, "not run:") {
		// Worker is shutting down before the job ran; let the lease expire
		// so the daemon requeues without burning the attempt on us.
		return
	}

	req := CompleteRequest{
		Schema: CompleteSchema, Worker: w.o.ID, Lease: lease.Lease, Hash: lease.Hash,
		Status: r.Status, Error: r.Error, ElapsedMS: r.Elapsed,
	}
	// Ship the worker-side span chains for this job, stamped with the
	// lease's propagated trace context so the daemon can stitch them into
	// the sweep's cross-process trace.
	if w.o.Spans != nil {
		chains := w.o.Spans.TakeByHash(lease.Hash)
		for i := range chains {
			chains[i].Trace = lease.Trace
			chains[i].Span = lease.Span
			chains[i].Origin = w.o.ID
			chains[i].Attempt = lease.Attempt
		}
		req.Spans = chains
	}
	if r.Status == sweep.StatusOK {
		canon, err := lease.Spec.Canonical()
		if err != nil {
			canon = lease.Spec
		}
		rec := &sweep.Record{Hash: lease.Hash, Spec: canon, Report: r.Report}
		if err := rec.Seal(); err != nil {
			req.Status = sweep.StatusFailed
			req.Error = fmt.Sprintf("seal result: %v", err)
			req.Record = nil
		} else {
			req.Record = rec
		}
	}
	// Upload with bounded retries on a background context: a finished
	// result survives worker shutdown (graceful drain ships it).
	var resp CompleteResponse
	//lint:ctxcheck — bounded to 3 attempts; deliberately ignores ctx so a finished result survives graceful shutdown
	for attempt := 0; attempt < 3; attempt++ {
		code, err := w.postTraced(context.Background(), "/v1/fleet/complete", lease, &req, &resp)
		if err == nil && code/100 == 2 {
			w.done.Add(1)
			return
		}
		if err == nil {
			// A 4xx/409 will not improve on retry.
			return
		}
		time.Sleep(time.Duration(attempt+1) * 100 * time.Millisecond)
	}
}

// heartbeats extends the lease every TTL/3 until stopped.
func (w *Worker) heartbeats(ctx context.Context, lease *LeaseResponse, stop <-chan struct{}) {
	ttl := time.Duration(lease.TTLMS) * time.Millisecond
	period := ttl / 3
	if period <= 0 {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			var resp HeartbeatResponse
			req := HeartbeatRequest{Schema: LeaseSchema, Worker: w.o.ID, Lease: lease.Lease}
			_, _ = w.postTraced(ctx, "/v1/fleet/heartbeat", lease, &req, &resp)
		case <-stop:
			return
		case <-ctx.Done():
			return
		}
	}
}

// lease polls the daemon for one job.  A 204 means no work (or draining).
func (w *Worker) lease(ctx context.Context) (*LeaseResponse, int, error) {
	var resp LeaseResponse
	req := LeaseRequest{Schema: LeaseSchema, Worker: w.o.ID}
	code, err := w.post(ctx, "/v1/fleet/lease", &req, &resp)
	if err != nil {
		return nil, 0, err
	}
	if code == http.StatusNoContent {
		return nil, code, nil
	}
	if code != http.StatusOK {
		return nil, code, fmt.Errorf("serve: lease: HTTP %d", code)
	}
	return &resp, code, nil
}

// DaemonHealth fetches the daemon's /healthz identity document (workers
// log it at join time to surface version skew before the first lease).
func (w *Worker) DaemonHealth(ctx context.Context) (*HealthView, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.o.BaseURL+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := w.o.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var hv HealthView
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&hv); err != nil {
		return nil, fmt.Errorf("serve: healthz: %w", err)
	}
	return &hv, nil
}

// postTraced is post with the lease's trace context propagated as a
// traceparent header, tying fleet-protocol requests into the sweep's
// trace in the daemon's request logs.
func (w *Worker) postTraced(ctx context.Context, path string, lease *LeaseResponse, in, out any) (int, error) {
	var tc tracing.Context
	if t, err := tracing.ParseTraceID(lease.Trace); err == nil {
		tc.Trace = t
	}
	if sp, err := tracing.ParseSpanID(lease.Span); err == nil {
		tc.Span = sp
	}
	return w.postCtx(ctx, path, tc, in, out)
}

// post sends one JSON request and decodes a JSON response (when out is
// non-nil and the response has a body).
func (w *Worker) post(ctx context.Context, path string, in, out any) (int, error) {
	return w.postCtx(ctx, path, tracing.Context{}, in, out)
}

func (w *Worker) postCtx(ctx context.Context, path string, tc tracing.Context, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.o.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tc.Valid() {
		tc.SetHeader(req.Header)
	}
	resp, err := w.o.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode/100 == 2 && resp.StatusCode != http.StatusNoContent {
		if derr := json.NewDecoder(io.LimitReader(resp.Body, maxRecordBytes)).Decode(out); derr != nil {
			return resp.StatusCode, derr
		}
	}
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// sleepCtx sleeps d or until ctx cancels; false means cancelled.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
