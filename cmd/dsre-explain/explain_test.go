package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/account"
	"repro/internal/explain"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// writeReport simulates one run and writes its dsre-report/v1 file.
func writeReport(t *testing.T, dir, name, workload, scheme string) string {
	t.Helper()
	res, err := repro.Run(repro.Config{Workload: workload, Scheme: scheme, Size: 256})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := res.Report().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestExplainText(t *testing.T) {
	dir := t.TempDir()
	path := writeReport(t, dir, "run.json", "histogram", "dsre")
	var out, errb bytes.Buffer
	if rc := run([]string{path}, &out, &errb); rc != 0 {
		t.Fatalf("exit %d, stderr: %s", rc, errb.String())
	}
	text := out.String()
	for _, want := range []string{
		"histogram / dsre", "cpi stack", "commit", "forensics:", "repairs",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// Violating runs should name hot loads and blocks.
	if !strings.Contains(text, "hot loads:") || !strings.Contains(text, "hot blocks:") {
		t.Errorf("histogram/dsre output has no hot loads/blocks:\n%s", text)
	}
}

func TestExplainJSONConserves(t *testing.T) {
	dir := t.TempDir()
	path := writeReport(t, dir, "run.json", "histogram", "dsre")
	var out, errb bytes.Buffer
	if rc := run([]string{"-json", path}, &out, &errb); rc != 0 {
		t.Fatalf("exit %d, stderr: %s", rc, errb.String())
	}
	var doc explain.Doc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if doc.Schema != ExplainSchema {
		t.Errorf("schema = %q, want %q", doc.Schema, ExplainSchema)
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(doc.Runs))
	}
	v := doc.Runs[0]
	if got, want := v.CPI.Total(), v.Cycles*account.SlotsPerCycle; got != want {
		t.Errorf("explained CPI sums to %d, want %d", got, want)
	}
	var pct float64
	for _, s := range v.CPIShare {
		pct += s.Pct
	}
	if pct < 99.9 || pct > 100.1 {
		t.Errorf("CPI shares sum to %.3f%%", pct)
	}
}

func TestExplainDiffExitCodes(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "a.json", "histogram", "dsre")
	b := writeReport(t, dir, "b.json", "vecsum", "dsre")

	var out, errb bytes.Buffer
	if rc := run([]string{"-diff", a, a}, &out, &errb); rc != 0 {
		t.Errorf("identical diff exit %d, want 0; stderr: %s", rc, errb.String())
	}
	out.Reset()
	errb.Reset()
	// Different kernels sit far apart in IPC, well beyond a 0.1% tolerance.
	if rc := run([]string{"-diff", "-tolerance", "0.001", a, b}, &out, &errb); rc != 3 {
		t.Errorf("cross-kernel diff exit %d, want 3; stdout: %s", rc, out.String())
	}
	out.Reset()
	errb.Reset()
	if rc := run([]string{"-diff", "-tolerance", "10", a, b}, &out, &errb); rc != 0 {
		t.Errorf("huge tolerance diff exit %d, want 0; stderr: %s", rc, errb.String())
	}
	if !strings.Contains(out.String(), "IPC") {
		t.Errorf("diff output missing IPC line: %s", out.String())
	}
}

func TestExplainDiffJSON(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "a.json", "vecsum", "dsre")
	var out, errb bytes.Buffer
	if rc := run([]string{"-diff", "-json", a, a}, &out, &errb); rc != 0 {
		t.Fatalf("exit %d, stderr: %s", rc, errb.String())
	}
	var doc explain.Doc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Diff == nil || !doc.Diff.Within || doc.Diff.IPCDelta != 0 {
		t.Errorf("self-diff = %+v", doc.Diff)
	}
}

func TestExplainUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if rc := run(nil, &out, &errb); rc != 2 {
		t.Errorf("no args exit %d, want 2", rc)
	}
	if rc := run([]string{"-diff", "only-one.json"}, &out, &errb); rc != 2 {
		t.Errorf("-diff with one file exit %d, want 2", rc)
	}
	if rc := run([]string{"-manifest", "m.json"}, &out, &errb); rc != 2 {
		t.Errorf("-manifest without -cache exit %d, want 2", rc)
	}
	if rc := run([]string{"does-not-exist.json"}, &out, &errb); rc != 1 {
		t.Errorf("missing report exit %d, want 1", rc)
	}
}

func TestExplainManifestMode(t *testing.T) {
	dir := t.TempDir()
	cache := filepath.Join(dir, "cache")
	st, err := sweep.OpenStore(cache)
	if err != nil {
		t.Fatal(err)
	}
	specs := []sweep.JobSpec{
		{Workload: "histogram", Scheme: "dsre", Size: 256},
		{Workload: "histogram", Scheme: "storeset+flush", Size: 256},
	}
	var jobs []sweep.JobResult
	for _, spec := range specs {
		hash, err := spec.Hash()
		if err != nil {
			t.Fatal(err)
		}
		res, err := repro.Run(spec.Config())
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Put(&sweep.Record{Hash: hash, Spec: spec, Report: res.Report()}); err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, sweep.JobResult{Spec: spec, Hash: hash, Status: sweep.StatusOK})
	}
	m := sweep.NewManifest(&sweep.Summary{Jobs: jobs, OK: len(jobs)})
	mpath := filepath.Join(dir, "manifest.json")
	if err := m.WriteFile(mpath); err != nil {
		t.Fatal(err)
	}

	var out, errb bytes.Buffer
	if rc := run([]string{"-json", "-manifest", mpath, "-cache", cache}, &out, &errb); rc != 0 {
		t.Fatalf("exit %d, stderr: %s", rc, errb.String())
	}
	var doc explain.Doc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runs) != 2 {
		t.Fatalf("explained %d runs, want 2", len(doc.Runs))
	}
	for _, v := range doc.Runs {
		if v.Workload != "histogram" {
			t.Errorf("run workload = %q", v.Workload)
		}
	}
}

// TestReportViewTolerantOfMissingAccounting pins forward compatibility: a
// report written before cycle accounting existed explains without error.
func TestReportViewTolerantOfMissingAccounting(t *testing.T) {
	rep := &telemetry.Report{
		Schema: telemetry.ReportSchema, Workload: "vecsum", Scheme: "dsre",
		Cycles: 100, Insts: 200, IPC: 2,
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "old.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if rc := run([]string{path}, &out, &errb); rc != 0 {
		t.Fatalf("exit %d, stderr: %s", rc, errb.String())
	}
	if !strings.Contains(out.String(), "no cycle accounting") {
		t.Errorf("missing-accounting notice absent:\n%s", out.String())
	}
}
