package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the testdata expect.txt goldens")

// TestGolden pins every diagnostic each fixture module produces.  Fixtures
// named *_bad must produce at least one diagnostic; the clean fixture must
// produce none.
func TestGolden(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			root := filepath.Join("testdata", name)
			mod, err := Load(root)
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			res := Run(mod, DefaultConfig())
			var b strings.Builder
			for _, d := range res.Diags {
				b.WriteString(d.String())
				b.WriteByte('\n')
			}
			got := b.String()
			golden := filepath.Join(root, "expect.txt")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
			if strings.HasSuffix(name, "_bad") && len(res.Diags) == 0 {
				t.Errorf("violation fixture produced no diagnostics")
			}
			if !strings.HasSuffix(name, "_bad") && len(res.Diags) > 0 {
				t.Errorf("clean fixture produced diagnostics:\n%s", got)
			}
		})
	}
}

// TestSelfAudit asserts the shipped tree is lint-clean and that every
// configured anchor resolves (a missing anchor would silently disable the
// check that guards it).
func TestSelfAudit(t *testing.T) {
	mod, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	res := Run(mod, DefaultConfig())
	for _, d := range res.Diags {
		t.Errorf("shipped tree: %s", d)
	}
	for _, m := range res.Missing {
		t.Errorf("anchor %s not found — its checks were silently skipped", m)
	}
}
