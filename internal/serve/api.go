// Package serve turns the sweep engine into a long-running service: a
// daemon that accepts sweep grids over HTTP/JSON (dsre-serve/v1), executes
// them through a shared content-addressed result store, and optionally
// farms unique jobs out to a fleet of worker processes with lease-based
// work stealing.
//
// The daemon owns the queue of unique jobs (content-addressed by spec
// hash, so concurrent submissions of the same point dedup naturally), a
// local batch dispatcher feeding the in-process sweep.Engine, and the
// lease protocol remote workers speak: lease → heartbeat → complete, with
// heartbeat-expiry requeue and first-write-wins upload dedup.  Results
// land in a sweep.Store; RemoteStore re-exports that store to sweep CLIs
// over the same HTTP surface.
package serve

import (
	"encoding/json"
	"fmt"

	"repro/internal/obs"
	"repro/internal/sweep"
)

// Wire-format schema stamps.  Every JSON document the daemon reads or
// writes is stamped so clients and validators can reject drift loudly.
const (
	// SubmitSchema identifies the POST /v1/sweeps request body.
	SubmitSchema = "dsre-serve-submit/v1"
	// SweepSchema identifies a sweep status document.
	SweepSchema = "dsre-serve-sweep/v1"
	// LeaseSchema identifies a fleet lease grant.
	LeaseSchema = "dsre-serve-lease/v1"
	// CompleteSchema identifies a fleet result upload.
	CompleteSchema = "dsre-serve-complete/v1"
	// ErrorSchema identifies an error response body.
	ErrorSchema = "dsre-serve-error/v1"
	// HealthSchema identifies the /healthz liveness document.
	HealthSchema = "dsre-serve-health/v1"
)

// JobState is the queue lifecycle of one unique job.
type JobState uint8

const (
	// JobQueued waits for a lease (local dispatcher or fleet worker).
	JobQueued JobState = iota
	// JobLeased is held by exactly one worker under a live lease.
	JobLeased
	// JobDone holds a successful result (its payload lives in the store).
	JobDone
	// JobFailed exhausted its attempts (or every copy was abandoned).
	JobFailed
)

// String returns the state's wire spelling.
func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobLeased:
		return "leased"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	default:
		return fmt.Sprintf("JobState(%d)", uint8(s))
	}
}

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool { return s == JobDone || s == JobFailed }

// MarshalJSON writes the state as its wire spelling.
func (s JobState) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// SubmitRequest is the POST /v1/sweeps body: a declarative grid, explicit
// specs, or both (the grid expands first, specs append after).
type SubmitRequest struct {
	Schema string          `json:"schema"`
	Grid   *sweep.Grid     `json:"grid,omitempty"`
	Specs  []sweep.JobSpec `json:"specs,omitempty"`
}

// JobView is one spec's live state inside a sweep document, in submission
// order.  CacheHit marks copies satisfied without a fresh execution: store
// replays and dedup copies of an executed point.
type JobView struct {
	Hash     string `json:"hash"`
	Name     string `json:"name"`
	State    string `json:"state"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Error    string `json:"error,omitempty"`
}

// SweepView is the dsre-serve-sweep/v1 status document for one submitted
// sweep.
type SweepView struct {
	Schema   string `json:"schema"`
	Sweep    string `json:"sweep"`
	Tenant   string `json:"tenant"`
	Trace    string `json:"trace,omitempty"` // the sweep's 32-hex trace ID
	Finished bool   `json:"finished"`

	Total     int `json:"total"`      // submitted spec copies
	Unique    int `json:"unique"`     // unique jobs newly enqueued by this submit
	Done      int `json:"done"`       // copies completed ok
	Failed    int `json:"failed"`     // copies failed terminally
	CacheHits int `json:"cache_hits"` // copies satisfied without a fresh execution

	Jobs []JobView `json:"jobs,omitempty"`
}

// SweepListView is the GET /v1/sweeps document.
type SweepListView struct {
	Schema string      `json:"schema"`
	Sweeps []SweepView `json:"sweeps"`
}

// LeaseRequest is the POST /v1/fleet/lease body.
type LeaseRequest struct {
	Schema string `json:"schema"`
	Worker string `json:"worker"`
}

// LeaseResponse grants one job to a worker.  The worker must heartbeat
// before TTLMS elapses or the lease expires and the job requeues.  Trace
// is the enqueueing sweep's trace ID and Span the attempt's span ID (hex);
// the worker stamps both onto the span chains it ships back.
type LeaseResponse struct {
	Schema  string        `json:"schema"`
	Lease   string        `json:"lease"`
	Hash    string        `json:"hash"`
	Name    string        `json:"name"`
	Trace   string        `json:"trace,omitempty"`
	Span    string        `json:"span,omitempty"`
	Attempt int           `json:"attempt"`
	TTLMS   int64         `json:"ttl_ms"`
	Spec    sweep.JobSpec `json:"spec"`
}

// HeartbeatRequest is the POST /v1/fleet/heartbeat body.
type HeartbeatRequest struct {
	Schema string `json:"schema"`
	Worker string `json:"worker"`
	Lease  string `json:"lease"`
}

// HeartbeatResponse extends a live lease.
type HeartbeatResponse struct {
	Schema string `json:"schema"`
	TTLMS  int64  `json:"ttl_ms"`
}

// CompleteRequest is the POST /v1/fleet/complete body: the outcome of one
// leased job.  A successful run carries the sealed result record; the
// daemon verifies its payload hash and version stamps before accepting.
type CompleteRequest struct {
	Schema string `json:"schema"`
	Worker string `json:"worker"`
	Lease  string `json:"lease"`
	Hash   string `json:"hash"`

	Status    string `json:"status"` // sweep.StatusOK or sweep.StatusFailed
	Error     string `json:"error,omitempty"`
	ElapsedMS int64  `json:"elapsed_ms,omitempty"`

	Record *sweep.Record `json:"record,omitempty"`

	// Spans are the worker-side span chains for this job (queue-wait,
	// prepare, run attempts, store upload), stamped with the lease's
	// propagated trace/span IDs.  They travel beside the sealed record —
	// never inside it, which would change the content address — and the
	// daemon stitches them into the sweep's multi-process trace.
	Spans []obs.JobSpans `json:"spans,omitempty"`
}

// CompleteResponse reports what an upload did to the job.  Duplicate means
// first-write-wins dedup dropped the payload (another writer finished
// first); State is the job's state after the upload.
type CompleteResponse struct {
	Schema    string `json:"schema"`
	Accepted  bool   `json:"accepted"`
	Duplicate bool   `json:"duplicate"`
	State     string `json:"state"`
}

// ErrorResponse is every non-2xx JSON body: a stable machine-readable
// code, a human message, and the request's trace ID so a client error
// report can be matched to the daemon's request logs.
type ErrorResponse struct {
	Schema  string `json:"schema"`
	Code    string `json:"code"`
	Message string `json:"message"`
	Trace   string `json:"trace,omitempty"`
}

// Error codes carried by ErrorResponse.Code.
const (
	ErrCodeBadRequest  = "bad_request"
	ErrCodeNotFound    = "not_found"
	ErrCodeOverQuota   = "over_quota"
	ErrCodeDraining    = "draining"
	ErrCodeConflict    = "conflict"
	ErrCodeLeaseGone   = "lease_gone"
	ErrCodeVersionSkew = "version_skew"
	ErrCodeInternal    = "internal"
)

// HealthView is the dsre-serve-health/v1 document served at /healthz:
// liveness plus the version identity fleet operators use to spot skewed
// workers.
type HealthView struct {
	Schema      string `json:"schema"`
	Status      string `json:"status"` // "ok" or "draining"
	SimVersion  string `json:"sim_version"`
	GoVersion   string `json:"go_version"`
	StartTimeMS int64  `json:"start_time_ms"` // unix milliseconds
	UptimeMS    int64  `json:"uptime_ms"`
}
