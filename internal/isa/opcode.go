// Package isa defines the EDGE (Explicit Data Graph Execution) instruction
// set used throughout this repository.
//
// The ISA is modelled on the TRIPS prototype evaluated by Desikan et al. in
// "Scalable selective re-execution for EDGE architectures" (ASPLOS 2004):
// programs are partitioned into blocks of at most MaxInsts instructions that
// are fetched, mapped onto a grid of execution tiles, executed in dataflow
// order, and committed atomically.  Within a block, instructions name their
// consumers directly (targets) instead of writing registers; blocks
// communicate through architectural registers and memory.
package isa

import "fmt"

// Opcode enumerates the operations of the EDGE ISA.
type Opcode uint8

// Opcode values.  The set is deliberately small but complete enough to
// express the workload kernels: integer arithmetic and logic, comparisons
// (which produce 0/1 predicates), moves and constant generation, loads and
// stores of one and eight bytes, and direct/indirect block branches.
const (
	OpNop Opcode = iota

	// Data movement.
	OpMov  // result = A
	OpMovi // result = Imm (no data operands)

	// Arithmetic.
	OpAdd // result = A + B
	OpSub // result = A - B
	OpMul // result = A * B
	OpDiv // result = A / B (signed; division by zero yields 0)
	OpRem // result = A % B (signed; modulo by zero yields 0)
	OpNeg // result = -A

	// Logic and shifts.
	OpAnd // result = A & B
	OpOr  // result = A | B
	OpXor // result = A ^ B
	OpNot // result = ^A
	OpShl // result = A << (B & 63)
	OpShr // result = logical A >> (B & 63)
	OpSra // result = arithmetic A >> (B & 63)

	// Comparisons ("test" ops); result is 1 when the relation holds, else 0.
	OpTeq // A == B
	OpTne // A != B
	OpTlt // A < B   (signed)
	OpTle // A <= B  (signed)
	OpTgt // A > B   (signed)
	OpTge // A >= B  (signed)
	OpTltu // A < B  (unsigned)

	// Memory.  Effective address is A + Imm.  Loads deliver the loaded
	// value to their targets; stores take the value to store in operand B.
	OpLd  // 8-byte load, result = mem[A+Imm]
	OpLd1 // 1-byte load, zero-extended
	OpSt  // 8-byte store, mem[A+Imm] = B
	OpSt1 // 1-byte store, mem[A+Imm] = B & 0xff

	// Control.  Exactly one branch fires per dynamic block execution and
	// names the next block.  OpBro branches to the static block Imm;
	// OpBri branches to the block whose ID is in operand A.  A target of
	// HaltTarget terminates the program.
	OpBro
	OpBri

	numOpcodes
)

// HaltTarget is the branch destination that terminates execution.
const HaltTarget = -1

var opcodeNames = [numOpcodes]string{
	OpNop: "nop", OpMov: "mov", OpMovi: "movi",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpNeg: "neg", OpAnd: "and", OpOr: "or", OpXor: "xor", OpNot: "not",
	OpShl: "shl", OpShr: "shr", OpSra: "sra",
	OpTeq: "teq", OpTne: "tne", OpTlt: "tlt", OpTle: "tle", OpTgt: "tgt",
	OpTge: "tge", OpTltu: "tltu",
	OpLd: "ld", OpLd1: "ld1", OpSt: "st", OpSt1: "st1",
	OpBro: "bro", OpBri: "bri",
}

// String returns the assembler mnemonic for the opcode.
func (op Opcode) String() string {
	if int(op) < len(opcodeNames) && opcodeNames[op] != "" {
		return opcodeNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool { return op < numOpcodes }

// NumDataOperands returns how many data operand slots (A, then B) the opcode
// reads.  The predicate slot is counted separately (see Inst.Pred).
func (op Opcode) NumDataOperands() int {
	switch op {
	case OpNop, OpMovi, OpBro:
		return 0
	case OpMov, OpNeg, OpNot, OpLd, OpLd1, OpBri:
		return 1
	default:
		return 2
	}
}

// IsLoad reports whether the opcode reads memory.
func (op Opcode) IsLoad() bool { return op == OpLd || op == OpLd1 }

// IsStore reports whether the opcode writes memory.
func (op Opcode) IsStore() bool { return op == OpSt || op == OpSt1 }

// IsMem reports whether the opcode accesses memory.
func (op Opcode) IsMem() bool { return op.IsLoad() || op.IsStore() }

// IsBranch reports whether the opcode decides the next block.
func (op Opcode) IsBranch() bool { return op == OpBro || op == OpBri }

// MemSize returns the access width in bytes for memory opcodes, or 0.
func (op Opcode) MemSize() int {
	switch op {
	case OpLd, OpSt:
		return 8
	case OpLd1, OpSt1:
		return 1
	default:
		// Every non-memory opcode: no access width.
		return 0
	}
}

// ProducesValue reports whether the opcode delivers a result to dataflow
// targets.  Stores and branches produce no dataflow value (stores complete
// into the LSQ, branches into the global control tile).
func (op Opcode) ProducesValue() bool {
	return !op.IsStore() && !op.IsBranch() && op != OpNop
}

// Eval computes the architectural result of a non-memory, non-branch opcode.
// It is shared by the architectural emulator and the cycle simulator so the
// two can never diverge on arithmetic semantics.
func Eval(op Opcode, a, b, imm int64) int64 {
	switch op {
	case OpMov:
		return a
	case OpMovi:
		return imm
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpDiv:
		if b == 0 {
			return 0
		}
		return a / b
	case OpRem:
		if b == 0 {
			return 0
		}
		return a % b
	case OpNeg:
		return -a
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpNot:
		return ^a
	case OpShl:
		return a << (uint64(b) & 63)
	case OpShr:
		return int64(uint64(a) >> (uint64(b) & 63))
	case OpSra:
		return a >> (uint64(b) & 63)
	case OpTeq:
		return btoi(a == b)
	case OpTne:
		return btoi(a != b)
	case OpTlt:
		return btoi(a < b)
	case OpTle:
		return btoi(a <= b)
	case OpTgt:
		return btoi(a > b)
	case OpTge:
		return btoi(a >= b)
	case OpTltu:
		return btoi(uint64(a) < uint64(b))
	default:
		// Memory, branch and nop opcodes have no arithmetic result; their
		// semantics live in the LSQ and control-tile paths.
		return 0
	}
}

func btoi(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// ParseOpcode maps an assembler mnemonic back to its opcode.
func ParseOpcode(name string) (Opcode, bool) {
	for op := Opcode(0); op < numOpcodes; op++ {
		if opcodeNames[op] == name {
			return op, true
		}
	}
	return 0, false
}
