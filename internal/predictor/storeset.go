// Package predictor implements the load-store dependence predictors the
// paper compares against: the store-set predictor of Chrysos & Emer (the
// "best dependence predictor proposed to date" referenced in the abstract)
// and the perfect oracle driven by an emulator pre-pass.  The trivial
// conservative and aggressive policies need no state and live in the
// simulator's load-issue logic.
package predictor

import "fmt"

// PC identifies a static instruction: block ID in the high bits, index in
// the low byte.
type PC uint32

// MakePC builds a PC from a block ID and instruction index.
func MakePC(blockID int, instIdx int) PC {
	return PC(uint32(blockID)<<8 | uint32(instIdx)&0xff)
}

// String renders the PC.
func (p PC) String() string { return fmt.Sprintf("b%d.i%d", p>>8, p&0xff) }

// DynRef identifies a dynamic memory operation: the dynamic block sequence
// number and the load/store ID within the block.  NoDynRef means "none".
type DynRef struct {
	Seq  int64
	LSID int8
}

// NoDynRef is the absent reference.
var NoDynRef = DynRef{Seq: -1}

// Valid reports whether the reference names a real operation.
func (r DynRef) Valid() bool { return r.Seq >= 0 }

// Config sizes the store-set predictor.
type Config struct {
	// SSITSize is the number of Store Set ID Table entries (a power of
	// two); both loads and stores index it by hashed PC.
	SSITSize int
	// ClearInterval invalidates the whole SSIT after this many training
	// events, the cyclic-clearing scheme from the store-set paper that
	// bounds the damage of stale dependences.  Zero disables clearing.
	ClearInterval int64
}

// DefaultConfig mirrors the configuration used in the store-set paper
// scaled to this machine: 16K SSIT entries, cleared every million events.
func DefaultConfig() Config {
	return Config{SSITSize: 16384, ClearInterval: 1 << 20}
}

// StoreSet is the Chrysos & Emer store-set dependence predictor: the SSIT
// maps static loads and stores to store-set IDs; the LFST tracks the last
// fetched, not-yet-executed store of each set.  A load whose set has an
// outstanding store waits for that specific store.
//
// Simplification vs. the original: stores within a set are not serialised
// against each other (store-store ordering existed to keep the D-cache
// write order simple, which this LSQ does not need).
type StoreSet struct {
	cfg      Config
	ssit     []int32 // PC hash -> SSID, -1 invalid
	lfst     []DynRef
	events   int64
	nextSSID int32

	// Stats.
	Merges     int64 // violation-driven set assignments
	Clears     int64
	LoadWaits  int64 // loads told to wait
	LoadFrees  int64 // loads told to go
}

// New builds a predictor.
func New(cfg Config) (*StoreSet, error) {
	if cfg.SSITSize <= 0 || cfg.SSITSize&(cfg.SSITSize-1) != 0 {
		return nil, fmt.Errorf("predictor: SSIT size %d is not a power of two", cfg.SSITSize)
	}
	s := &StoreSet{
		cfg:  cfg,
		ssit: make([]int32, cfg.SSITSize),
		lfst: make([]DynRef, cfg.SSITSize),
	}
	s.clear()
	return s, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config) *StoreSet {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *StoreSet) clear() {
	for i := range s.ssit {
		s.ssit[i] = -1
		s.lfst[i] = NoDynRef
	}
	s.nextSSID = 0
}

func (s *StoreSet) index(pc PC) int {
	h := uint32(pc) * 2654435761
	return int(h) & (len(s.ssit) - 1)
}

func (s *StoreSet) tick() {
	s.events++
	if s.cfg.ClearInterval > 0 && s.events%s.cfg.ClearInterval == 0 {
		s.clear()
		s.Clears++
	}
}

// StoreFetched records that a dynamic store instance entered the window.
// Call at block map time for every store in the block.
func (s *StoreSet) StoreFetched(pc PC, ref DynRef) {
	s.tick()
	i := s.index(pc)
	if ssid := s.ssit[i]; ssid >= 0 {
		s.lfst[int(ssid)&(len(s.lfst)-1)] = ref
	}
}

// StoreDone records that a dynamic store instance executed (its address is
// known) or left the window; the set's LFST entry is cleared if it still
// names this instance.
func (s *StoreSet) StoreDone(pc PC, ref DynRef) {
	i := s.index(pc)
	if ssid := s.ssit[i]; ssid >= 0 {
		li := int(ssid) & (len(s.lfst) - 1)
		if s.lfst[li] == ref {
			s.lfst[li] = NoDynRef
		}
	}
}

// LoadDependence returns the dynamic store the load should wait for, or
// NoDynRef if the load may issue immediately.  Call when the load's address
// becomes ready.
func (s *StoreSet) LoadDependence(pc PC) DynRef {
	s.tick()
	i := s.index(pc)
	ssid := s.ssit[i]
	if ssid < 0 {
		s.LoadFrees++
		return NoDynRef
	}
	ref := s.lfst[int(ssid)&(len(s.lfst)-1)]
	if ref.Valid() {
		s.LoadWaits++
	} else {
		s.LoadFrees++
	}
	return ref
}

// Violation trains the predictor on a detected load-store ordering
// violation, merging the load's and store's sets per the store-set
// assignment rules.
func (s *StoreSet) Violation(loadPC, storePC PC) {
	s.tick()
	s.Merges++
	li, si := s.index(loadPC), s.index(storePC)
	ls, ss := s.ssit[li], s.ssit[si]
	switch {
	case ls < 0 && ss < 0:
		ssid := s.nextSSID
		s.nextSSID = (s.nextSSID + 1) & int32(len(s.ssit)-1)
		s.ssit[li], s.ssit[si] = ssid, ssid
	case ls >= 0 && ss < 0:
		s.ssit[si] = ls
	case ls < 0 && ss >= 0:
		s.ssit[li] = ss
	default:
		// Both assigned: the smaller SSID wins (declining-order rule).
		if ls < ss {
			s.ssit[si] = ls
		} else {
			s.ssit[li] = ss
		}
	}
}

// Oracle answers load-issue queries from the perfect-oracle table built by
// an emulator pre-pass: each dynamic load maps to the dynamic store that
// most recently wrote an overlapping byte.
type Oracle struct {
	deps map[DynRef]DynRef
}

// NewOracle wraps a dependence table.
func NewOracle(deps map[DynRef]DynRef) *Oracle { return &Oracle{deps: deps} }

// LoadDependence returns the store the dynamic load must wait for, or
// NoDynRef.
func (o *Oracle) LoadDependence(load DynRef) DynRef {
	if ref, ok := o.deps[load]; ok {
		return ref
	}
	return NoDynRef
}
