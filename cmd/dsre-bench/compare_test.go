package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/stats"
)

// bench builds a small artifact: one table with keyword columns (IPC,
// speedup) plus a raw counter, one keyword-titled table with scheme
// columns, and a headline scalar.
func bench(id string, ipc, speedup float64) *artifact {
	cols := stats.NewTable("counters", "kernel", "IPC", "speedup", "violations")
	cols.Row("histogram", ipc, speedup, 42)
	cols.Row("vecsum", ipc*2, speedup, 7)
	byTitle := stats.NewTable("IPC vs window size", "workload", "scheme", "8")
	byTitle.Row("histogram", "dsre", ipc)
	byTitle.Row("histogram", "oracle", ipc*1.1)
	return &artifact{
		Schema: artifactSchema, ID: id,
		Tables:    []*stats.Table{cols, byTitle},
		Headlines: map[string]float64{"geomean": speedup},
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	a := bench("E2", 1.5, 1.17)
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back artifact
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Tables) != 2 {
		t.Fatalf("tables = %d", len(back.Tables))
	}
	bt := back.Tables[0]
	if bt.Title != "counters" || len(bt.Header()) != 4 || len(bt.Rows()) != 2 {
		t.Errorf("round-trip lost shape: %q %v %v", bt.Title, bt.Header(), bt.Rows())
	}
	if bt.Rows()[0][1] != "1.500" {
		t.Errorf("IPC cell = %q", bt.Rows()[0][1])
	}
}

func TestCompareArtifacts(t *testing.T) {
	base := bench("E2", 1.5, 1.17)
	same := bench("E2", 1.5, 1.17)
	worse := bench("E2", 1.2, 1.02)

	comps := compareArtifacts(base, same)
	// headline + 2 kernels × (IPC, speedup) by column keyword + 2 rows of
	// the keyword-titled table; the violations column is a raw counter in a
	// non-keyword table and must not be compared.
	if len(comps) != 7 {
		t.Fatalf("comparisons = %d, want 7: %+v", len(comps), comps)
	}
	for _, c := range comps {
		if c.Rel != 0 {
			t.Errorf("%s moved on identical artifacts: %+v", c.Metric, c)
		}
		if strings.Contains(c.Metric, "violations") {
			t.Errorf("raw counter compared: %s", c.Metric)
		}
	}

	var buf bytes.Buffer
	if beyond := reportComparisons(&buf, comps, 0.05); beyond != 0 {
		t.Errorf("identical run flagged %d regressions", beyond)
	}

	comps = compareArtifacts(base, worse)
	buf.Reset()
	beyond := reportComparisons(&buf, comps, 0.05)
	if beyond == 0 {
		t.Errorf("20%% IPC drop not flagged:\n%s", buf.String())
	}
	for _, want := range []string{"histogram", "histogram/dsre"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("report does not name %q:\n%s", want, buf.String())
		}
	}
}

func TestCompareSkipsUnsharedMetrics(t *testing.T) {
	base := bench("E2", 1.5, 1.17)
	cur := bench("E2", 1.5, 1.17)
	cur.Headlines = nil
	cur.Tables[0].Row("newkernel", 9.0, 1.0, 0) // only in cur: ignored
	base.Tables = append(base.Tables, stats.NewTable("gone", "x", "IPC"))

	comps := compareArtifacts(base, cur)
	if len(comps) != 6 {
		t.Fatalf("comparisons = %d, want 6 (headline and extras dropped): %+v", len(comps), comps)
	}
}

func TestRowKeySkipsNumericCells(t *testing.T) {
	if got := rowKey([]string{"vecsum", "dsre", "1.500", "42"}); got != "vecsum/dsre" {
		t.Errorf("rowKey = %q", got)
	}
}

func TestLoadBaseline(t *testing.T) {
	dir := t.TempDir()
	a := bench("E2", 1.5, 1.17)
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_E2.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := loadBaseline(dir, "E2")
	if err != nil || got == nil || got.ID != "E2" {
		t.Errorf("directory lookup: %+v, %v", got, err)
	}
	if got, err := loadBaseline(dir, "E4"); err != nil || got != nil {
		t.Errorf("absent experiment: %+v, %v", got, err)
	}
	if got, err := loadBaseline(path, "E2"); err != nil || got == nil {
		t.Errorf("file lookup: %+v, %v", got, err)
	}
	if got, err := loadBaseline(path, "E4"); err != nil || got != nil {
		t.Errorf("file for other experiment: %+v, %v", got, err)
	}
	if _, err := loadBaseline(filepath.Join(dir, "nope"), "E2"); err == nil {
		t.Error("missing baseline path accepted")
	}
	bad := filepath.Join(dir, "BENCH_E9.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"nope/v0","id":"E9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(bad, "E9"); err == nil {
		t.Error("wrong-schema artifact accepted")
	}
}
