package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// RecordSchema identifies the on-disk job-record wire format.
const RecordSchema = "dsre-sweep-record/v1"

// Record is one cached job result: the spec that produced it, the stamps
// that scope its validity, and the dsre-report/v1 payload.
type Record struct {
	Schema     string            `json:"schema"`
	Hash       string            `json:"hash"`
	SimVersion string            `json:"sim_version"`
	Spec       JobSpec           `json:"spec"`
	Report     *telemetry.Report `json:"report"`
}

// Store is a content-addressed on-disk result cache: each record lives at
// <dir>/objects/<hash[:2]>/<hash>.json.  Writes are atomic (temp file +
// rename) and first-write-wins, so concurrent sweeps sharing a cache
// directory are safe and cached payloads are byte-stable.
type Store struct {
	dir string
}

// OpenStore opens (creating if needed) a cache rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("sweep: empty store directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("sweep: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

func (st *Store) objectPath(hash string) string {
	return filepath.Join(st.dir, "objects", hash[:2], hash+".json")
}

// Get loads the record for a hash.  A missing, unreadable, corrupt or
// stale-versioned record is a cache miss (nil, nil), never an error: the
// engine recomputes and overwrites, which is always safe for a
// content-addressed key.
func (st *Store) Get(hash string) (*Record, error) {
	if len(hash) < 2 {
		return nil, fmt.Errorf("sweep: malformed hash %q", hash)
	}
	data, err := os.ReadFile(st.objectPath(hash))
	if err != nil {
		return nil, nil
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, nil
	}
	if rec.Schema != RecordSchema || rec.Hash != hash || rec.SimVersion != sim.Version || rec.Report == nil {
		return nil, nil
	}
	return &rec, nil
}

// Put stores a record under its hash.  An existing object is left
// untouched (its bytes are already the content the hash names), so a
// record once written never changes on disk.
func (st *Store) Put(rec *Record) error {
	if len(rec.Hash) < 2 {
		return fmt.Errorf("sweep: malformed hash %q", rec.Hash)
	}
	rec.Schema = RecordSchema
	rec.SimVersion = sim.Version
	path := st.objectPath(rec.Hash)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("sweep: put %s: %w", rec.Hash, err)
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("sweep: marshal %s: %w", rec.Hash, err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+rec.Hash+".tmp*")
	if err != nil {
		return fmt.Errorf("sweep: put %s: %w", rec.Hash, err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: put %s: %w", rec.Hash, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: put %s: %w", rec.Hash, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: put %s: %w", rec.Hash, err)
	}
	return nil
}

// Len counts the objects in the store (for tests and the CLI's summary).
func (st *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(filepath.Join(st.dir, "objects"), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}
