package sweep

import (
	"bytes"
	"context"
	"errors"
	"os"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/telemetry"
)

// TestStoreByteFlipIsMiss flips one byte of a cached payload on disk and
// pins the integrity contract: the record reads as a miss (never a wrong
// result), the corruption hook fires, and an engine wired to the store
// recomputes the point and emits the structured store_corrupt event.
func TestStoreByteFlipIsMiss(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Workload: "vecsum", Frames: 4}
	h := mustHash(t, spec)
	if err := st.Put(&Record{Hash: h, Spec: spec, Report: fakeReport(spec)}); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte without breaking the JSON framing, so the record
	// still parses and only SHA-256 verification can catch it.
	data, err := os.ReadFile(st.objectPath(h))
	if err != nil {
		t.Fatal(err)
	}
	flipped := bytes.Replace(data, []byte(`"cycles": 100`), []byte(`"cycles": 101`), 1)
	if bytes.Equal(flipped, data) {
		t.Fatal("payload byte to flip not found in record")
	}
	if err := os.WriteFile(st.objectPath(h), flipped, 0o644); err != nil {
		t.Fatal(err)
	}

	var hooked []string
	st.SetOnCorrupt(func(hash, detail string) { hooked = append(hooked, hash+" "+detail) })
	if rec, err := st.Get(h); err != nil || rec != nil {
		t.Errorf("flipped record Get = (%v, %v), want miss", rec, err)
	}
	if len(hooked) != 1 || !strings.Contains(hooked[0], h) {
		t.Errorf("corruption hook calls: %v", hooked)
	}

	// An engine over the corrupt store recomputes and reports the event.
	o, log, _ := newObserved()
	ran := 0
	eng := New(Options{Workers: 1, Store: st, Obs: o, Runner: func(ctx context.Context, s JobSpec) (*telemetry.Report, error) {
		ran++
		return fakeReport(s), nil
	}})
	sum, err := eng.Run(context.Background(), []JobSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if ran != 1 || sum.Jobs[0].CacheHit || sum.Jobs[0].Status != StatusOK {
		t.Errorf("corrupt record not recomputed: ran=%d result=%+v", ran, sum.Jobs[0])
	}
	events, err := obs.ReadEvents(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sawCorrupt := false
	for _, e := range events {
		if e.Kind == obs.EventStoreCorrupt && e.Job == h {
			sawCorrupt = true
		}
	}
	if !sawCorrupt {
		t.Error("no store_corrupt event for the flipped record")
	}
}

// TestManifestSchemaError pins the typed -resume failure: a manifest from
// a newer schema version (or a foreign document) surfaces *SchemaError
// with Newer() telling the two apart, instead of a generic unmarshal
// error.
func TestManifestSchemaError(t *testing.T) {
	dir := t.TempDir()
	write := func(name, schema string) string {
		path := dir + "/" + name
		body := `{"schema": "` + schema + `", "jobs": [], "totals": {}}`
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	_, err := ReadManifest(write("newer.json", "dsre-sweep-manifest/v99"))
	var se *SchemaError
	if !errors.As(err, &se) {
		t.Fatalf("newer manifest: want *SchemaError, got %v", err)
	}
	if !se.Newer() {
		t.Errorf("v99 manifest not detected as newer: %+v", se)
	}
	if !strings.Contains(err.Error(), "newer than this build") {
		t.Errorf("newer-schema message lacks guidance: %v", err)
	}

	_, err = ReadManifest(write("foreign.json", "dsre-report/v1"))
	if !errors.As(err, &se) {
		t.Fatalf("foreign document: want *SchemaError, got %v", err)
	}
	if se.Newer() {
		t.Errorf("same-version foreign schema flagged as newer: %+v", se)
	}

	// The current schema still reads.
	if _, err := ReadManifest(write("ok.json", ManifestSchema)); err != nil {
		t.Errorf("current schema rejected: %v", err)
	}
}
