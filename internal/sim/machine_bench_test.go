package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/workload"
)

// BenchmarkMachine measures whole-machine simulation throughput in
// simulated cycles per wall second.
func BenchmarkMachine(b *testing.B) {
	for _, k := range []string{"histogram", "vecsum"} {
		b.Run(k, func(b *testing.B) {
			w := workload.MustBuild(k, workload.Params{Size: 1024})
			er, _ := emu.Run(w.Program, &w.Regs, w.Mem, emu.Options{})
			var cycles int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig()
				cfg.Policy = core.IssueAggressive
				cfg.Recovery = core.RecoverDSRE
				mc, err := New(cfg, w.Program, &w.Regs, w.Mem, nil, nil)
				if err != nil {
					b.Fatal(err)
				}
				r, err := mc.Run()
				if err != nil {
					b.Fatal(err)
				}
				cycles = r.Stats.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles/run")
			b.ReportMetric(float64(er.Insts), "sim-insts/run")
		})
	}
}
