// Package experiments regenerates every table and figure of the paper's
// evaluation (as reconstructed in DESIGN.md): each function returns the
// rendered table plus structured data so the benchmark harness and the
// dsre-bench tool share one implementation.
//
// Every experiment declares its grid as sweep.JobSpecs and folds the
// resulting reports: the sweep engine (internal/sweep) runs the points on
// a bounded worker pool, shares one program build and golden-model run
// across the schemes of each kernel, and — when Opts.CacheDir is set —
// replays unchanged points from the content-addressed result cache.
//
// The experiment IDs (E1..E16) are indexed in DESIGN.md; EXPERIMENTS.md
// records the measured outcomes next to the paper's claims.
package experiments

import (
	"context"
	"fmt"
	"io"

	"repro"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// Opts scales and parallelises the experiments.
type Opts struct {
	// Quick shrinks workload sizes for fast regression runs; the full sizes
	// are used for the reported numbers.
	Quick bool
	// Jobs bounds concurrent simulations; zero means GOMAXPROCS.
	Jobs int
	// CacheDir enables the content-addressed result cache rooted there, so
	// re-running an experiment after an unrelated edit replays cached
	// points (see internal/sweep).  Empty disables caching.
	CacheDir string
	// Store, when set, overrides CacheDir with an already-opened result
	// store (a local DirStore or a RemoteStore speaking to a dsre-serve
	// daemon); nil falls back to CacheDir.
	Store sweep.Store
	// Progress streams per-job completion lines (dsre-bench passes
	// stderr); nil is silent.
	Progress io.Writer
	// Engine, when set, is used for every experiment — share one via
	// NewEngine so successive experiments reuse memoized workload builds.
	// Nil builds a fresh engine per experiment from the fields above.
	Engine *sweep.Engine
	// Ctx, when set, bounds every sweep (dsre-bench passes its signal
	// context so SIGINT/SIGTERM drain in-flight jobs); nil means Background.
	Ctx context.Context
	// Obs attaches fleet observability (metrics, events, live progress) to
	// the engines NewEngine builds; nil disables every hook.
	Obs *obs.SweepObs
}

// NewEngine builds the sweep engine an Opts describes.  Assign the result
// to Opts.Engine to share workload preparation across experiments.
func NewEngine(o Opts) (*sweep.Engine, error) {
	st := o.Store
	if st == nil && o.CacheDir != "" {
		ds, err := sweep.OpenStore(o.CacheDir)
		if err != nil {
			return nil, err
		}
		st = ds
	}
	var rep *sweep.Reporter
	if o.Progress != nil {
		rep = sweep.NewReporter(o.Progress, o.Jobs)
	}
	return sweep.New(sweep.Options{Workers: o.Jobs, Store: st, Progress: rep, Obs: o.Obs}), nil
}

// engine returns the configured engine, building one when Opts.Engine is
// unset.  It panics on a bad configuration: experiments are a harness, not
// a library surface.
func (o Opts) engine() *sweep.Engine {
	if o.Engine != nil {
		return o.Engine
	}
	eng, err := NewEngine(o)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return eng
}

// results runs a grid through the sweep engine and returns the reports in
// spec order, panicking on any failed point: an experiment that cannot run
// is a broken build, not a measurement.
func (o Opts) results(specs []sweep.JobSpec) []*telemetry.Report {
	ctx := o.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	sum, err := o.engine().Run(ctx, specs)
	if err != nil {
		panic(fmt.Sprintf("experiment sweep failed: %v", err))
	}
	reps, err := sum.Reports()
	if err != nil {
		panic(fmt.Sprintf("experiment run failed: %v", err))
	}
	return reps
}

// sizeFor returns the workload size: kernel defaults normally, reduced
// sizes under Quick (matmul's size is a matrix dimension — cubic work).
func (o Opts) sizeFor(kernel string) int {
	if !o.Quick {
		return 0 // kernel defaults
	}
	switch kernel {
	case "matmul":
		return 16
	case "sort":
		return 64
	case "treewalk":
		return 512
	default:
		return 768
	}
}

// spec is the shorthand for one grid point at the Opts-scaled size.
func (o Opts) spec(kernel, scheme string) sweep.JobSpec {
	return sweep.JobSpec{Workload: kernel, Scheme: scheme, Size: o.sizeFor(kernel)}
}

// Kernels returns the benchmark suite in reporting order.
func Kernels() []string { return repro.Workloads() }

// IDs lists every experiment identifier in reporting order, for CLI
// validation and artifact enumeration.
func IDs() []string {
	return []string{
		"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8",
		"E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16",
	}
}

// run executes one configuration sequentially, panicking on error.  The
// experiments themselves go through the sweep engine; this is the
// sequential reference path, kept for tests that pin sweep results to it.
func run(cfg repro.Config) *repro.Result {
	r, err := repro.Run(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiment run failed: %v", err))
	}
	return r
}

// E1ConfigTable renders the machine-configuration table (paper Table 1).
func E1ConfigTable() *stats.Table {
	c := repro.DefaultMachine()
	t := stats.NewTable("E1: baseline machine configuration",
		"parameter", "value")
	t.Row("execution grid", fmt.Sprintf("%dx%d tiles, 1 issue/tile", c.GridWidth, c.GridHeight))
	t.Row("block size", "128 instructions, 32 loads/stores, 32 reads, 32 writes")
	t.Row("in-flight blocks", fmt.Sprintf("%d (window %d instructions)", c.Frames, c.WindowInsts()))
	t.Row("operand network", fmt.Sprintf("2D mesh, %d-cycle hops, %d msgs/link/cycle", c.HopLatency, c.LinkBandwidth))
	t.Row("L1 D-cache", fmt.Sprintf("%dKB %d-way, %d-cycle hit", c.Hier.L1D.SizeBytes>>10, c.Hier.L1D.Assoc, c.Hier.L1D.HitLatency))
	t.Row("L1 I-cache", fmt.Sprintf("%dKB %d-way, %d-cycle hit", c.Hier.L1I.SizeBytes>>10, c.Hier.L1I.Assoc, c.Hier.L1I.HitLatency))
	t.Row("L2", fmt.Sprintf("%dMB %d-way, %d-cycle hit", c.Hier.L2.SizeBytes>>20, c.Hier.L2.Assoc, c.Hier.L2.HitLatency))
	t.Row("memory", fmt.Sprintf("%d cycles, %d MSHRs", c.Hier.MemLatency, c.Hier.MSHRs))
	t.Row("store-set predictor", fmt.Sprintf("%d-entry SSIT, cyclic clear every %d events", c.StoreSet.SSITSize, c.StoreSet.ClearInterval))
	t.Row("block fetch", fmt.Sprintf("%d cycles + I-cache", c.FetchCycles))
	t.Row("ALU latencies", fmt.Sprintf("int %d, mul %d, div %d", c.ALULatency, c.MulLatency, c.DivLatency))
	return t
}

// ConflictKernels are the workloads with in-window store→load dependences,
// the regime the paper's SPEC-heavy suite emphasised.
var ConflictKernels = map[string]bool{
	"histogram": true, "bank": true, "hashmap": true, "stencil": true, "cursor": true,
}

// SpeedupSummary carries the headline numbers of the main figure.
type SpeedupSummary struct {
	// DSREOverStoreSet is the geometric-mean speedup of aggressive+DSRE
	// over storeset+flush (paper claim: +17%).
	DSREOverStoreSet float64
	// DSREOverStoreSetConflict is the same geomean restricted to the
	// conflict kernels.
	DSREOverStoreSetConflict float64
	// DSREOfOracle is the geometric-mean fraction of oracle performance
	// reached by DSRE (paper claim: 82%).
	DSREOfOracle float64
	// PerWorkloadIPC[scheme][workload] = IPC.
	PerWorkloadIPC map[string]map[string]float64
}

// E2E3Speedup produces the main per-benchmark speedup figure (E2) and the
// oracle-fraction figure (E3): IPC for every scheme, normalised speedups
// over the conservative baseline, and the two headline geomeans.
func E2E3Speedup(o Opts) (*stats.Table, *stats.Table, SpeedupSummary) {
	schemes := repro.Schemes()
	var specs []sweep.JobSpec
	for _, k := range Kernels() {
		for _, s := range schemes {
			specs = append(specs, o.spec(k, s))
		}
	}
	reps := o.results(specs)

	ipc := make(map[string]map[string]float64, len(schemes))
	for _, s := range schemes {
		ipc[s] = make(map[string]float64)
	}
	i := 0
	for _, k := range Kernels() {
		for _, s := range schemes {
			ipc[s][k] = reps[i].IPC
			i++
		}
	}

	t := stats.NewTable("E2: IPC by scheme (speedup over conservative in parens)",
		append([]string{"workload"}, schemes...)...)
	for _, k := range Kernels() {
		row := make([]any, 0, 1+len(schemes))
		row = append(row, k)
		base := ipc["conservative"][k]
		for _, s := range schemes {
			row = append(row, fmt.Sprintf("%.3f (%.2fx)", ipc[s][k], stats.Ratio(ipc[s][k], base)))
		}
		t.Row(row...)
	}

	orc := stats.NewTable("E3: fraction of oracle performance",
		"workload", "storeset+flush", "dsre", "storeset+dsre")
	var vsSS, vsSSConflict, ofOracle []float64
	for _, k := range Kernels() {
		o := ipc["oracle"][k]
		orc.Row(k,
			stats.Ratio(ipc["storeset+flush"][k], o),
			stats.Ratio(ipc["dsre"][k], o),
			stats.Ratio(ipc["storeset+dsre"][k], o))
		vsSS = append(vsSS, stats.Ratio(ipc["dsre"][k], ipc["storeset+flush"][k]))
		if ConflictKernels[k] {
			vsSSConflict = append(vsSSConflict, stats.Ratio(ipc["dsre"][k], ipc["storeset+flush"][k]))
		}
		ofOracle = append(ofOracle, stats.Ratio(ipc["dsre"][k], o))
	}
	sum := SpeedupSummary{
		DSREOverStoreSet:         stats.GeoMean(vsSS),
		DSREOverStoreSetConflict: stats.GeoMean(vsSSConflict),
		DSREOfOracle:             stats.GeoMean(ofOracle),
		PerWorkloadIPC:           ipc,
	}
	orc.Row("geomean", "", sum.DSREOfOracle, "")
	return t, orc, sum
}

// E4WindowScaling produces IPC vs in-flight block count for flush vs DSRE
// recovery — the "scales to windows of thousands of instructions" figure.
func E4WindowScaling(o Opts) *stats.Table {
	frames := []int{2, 4, 8, 16, 32}
	kernels := []string{"histogram", "stencil", "bank"}
	schemes := []string{"storeset+flush", "dsre"}
	var specs []sweep.JobSpec
	for _, k := range kernels {
		for _, s := range schemes {
			for _, f := range frames {
				sp := o.spec(k, s)
				sp.Frames = f
				specs = append(specs, sp)
			}
		}
	}
	reps := o.results(specs)

	t := stats.NewTable("E4: IPC vs window size (frames × 128 insts)",
		"workload", "scheme", "2", "4", "8", "16", "32")
	i := 0
	for _, k := range kernels {
		for _, s := range schemes {
			row := []any{k, s}
			for range frames {
				row = append(row, reps[i].IPC)
				i++
			}
			t.Row(row...)
		}
	}
	return t
}

// E5Misspec produces the mis-speculation statistics table: violation rates
// and the work each recovery scheme throws away or re-does.
func E5Misspec(o Opts) *stats.Table {
	schemes := []string{"aggressive+flush", "dsre"}
	var specs []sweep.JobSpec
	for _, k := range Kernels() {
		for _, s := range schemes {
			specs = append(specs, o.spec(k, s))
		}
	}
	reps := o.results(specs)

	t := stats.NewTable("E5: mis-speculation behaviour (aggressive issue)",
		"workload", "recovery", "violations/1k insts", "flushes", "squashed execs", "corrections", "re-execs", "re-exec/inst %")
	i := 0
	for _, k := range Kernels() {
		for _, s := range schemes {
			r := reps[i]
			i++
			t.Row(k, s,
				1000*float64(r.Violations)/float64(r.Insts),
				r.Flushes, r.Stats.SquashedExecs, r.Corrections, r.Reexecs,
				100*float64(r.Reexecs)/float64(r.Insts))
		}
	}
	return t
}

// E6CommitWave measures the cost of the commit wave sharing the operand
// network: IPC with commit tokens charged vs free.
func E6CommitWave(o Opts) *stats.Table {
	var specs []sweep.JobSpec
	for _, k := range Kernels() {
		specs = append(specs, o.spec(k, "dsre"))
		free := o.spec(k, "dsre")
		free.CommitTokensFree = true
		specs = append(specs, free)
	}
	reps := o.results(specs)

	t := stats.NewTable("E6: commit-wave network cost (DSRE)",
		"workload", "IPC charged", "IPC free", "overhead %")
	for i, k := range Kernels() {
		a, b := reps[2*i], reps[2*i+1]
		t.Row(k, a.IPC, b.IPC, 100*(b.IPC-a.IPC)/a.IPC)
	}
	return t
}

// E7Suppression measures identical-value wave suppression: wave volume and
// IPC with the optimisation on vs off.
func E7Suppression(o Opts) *stats.Table {
	kernels := []string{"stencil", "histogram", "bank", "hashmap", "cursor"}
	var specs []sweep.JobSpec
	for _, k := range kernels {
		specs = append(specs, o.spec(k, "dsre"))
		off := o.spec(k, "dsre")
		off.NoSuppressIdentical = true
		specs = append(specs, off)
	}
	reps := o.results(specs)

	t := stats.NewTable("E7: identical-value suppression (DSRE)",
		"workload", "IPC on", "re-execs on", "IPC off", "re-execs off", "silent stores absorbed")
	for i, k := range kernels {
		a, b := reps[2*i], reps[2*i+1]
		t.Row(k, a.IPC, a.Reexecs, b.IPC, b.Reexecs, a.Stats.LSQ.SilentStoreHits)
	}
	return t
}

// E8WaveSizes characterises recovery waves: instructions re-executed per
// injected wave.
func E8WaveSizes(o Opts) *stats.Table {
	var specs []sweep.JobSpec
	for _, k := range Kernels() {
		specs = append(specs, o.spec(k, "dsre"))
	}
	reps := o.results(specs)

	t := stats.NewTable("E8: wave sizes (instructions re-executed per violation wave)",
		"workload", "waves", "mean", "p50", "p90", "max")
	for i, k := range Kernels() {
		h := reps[i].Stats.WaveSizeHist
		if h.N == 0 {
			t.Row(k, 0, "-", "-", "-", "-")
			continue
		}
		t.Row(k, h.N, h.Mean(), h.Percentile(50), h.Percentile(90), h.Max)
	}
	return t
}

// E9HopLatency measures sensitivity to operand-network hop latency.
func E9HopLatency(o Opts) *stats.Table {
	kernels := []string{"histogram", "vecsum", "treewalk"}
	schemes := []string{"storeset+flush", "dsre"}
	hops := []int{1, 2, 4}
	var specs []sweep.JobSpec
	for _, k := range kernels {
		for _, s := range schemes {
			for _, hop := range hops {
				sp := o.spec(k, s)
				sp.HopLatency = hop
				specs = append(specs, sp)
			}
		}
	}
	reps := o.results(specs)

	t := stats.NewTable("E9: IPC vs mesh hop latency",
		"workload", "scheme", "hop=1", "hop=2", "hop=4")
	i := 0
	for _, k := range kernels {
		for _, s := range schemes {
			row := []any{k, s}
			for range hops {
				row = append(row, reps[i].IPC)
				i++
			}
			t.Row(row...)
		}
	}
	return t
}

// E10StoreSetSize measures store-set capacity sensitivity.
func E10StoreSetSize(o Opts) *stats.Table {
	kernels := []string{"histogram", "hashmap", "stencil"}
	sizes := []int{256, 1024, 4096, 16384}
	var specs []sweep.JobSpec
	for _, k := range kernels {
		for _, n := range sizes {
			sp := o.spec(k, "storeset+dsre")
			sp.StoreSetSize = n
			specs = append(specs, sp)
		}
	}
	reps := o.results(specs)

	t := stats.NewTable("E10: storeset+dsre IPC vs SSIT entries",
		"workload", "256", "1024", "4096", "16384")
	i := 0
	for _, k := range kernels {
		row := []any{k}
		for range sizes {
			row = append(row, reps[i].IPC)
			i++
		}
		t.Row(row...)
	}
	return t
}

// E11BlockPredictors compares next-block predictors: the minimal
// last-target BTB, the two-level (history) exit predictor, and a perfect
// trace — separating control-speculation losses from memory-speculation
// effects.
func E11BlockPredictors(o Opts) *stats.Table {
	kernels := []string{"treewalk", "spmv", "sort", "matmul", "histogram"}
	preds := []string{"last", "twolevel", "perfect"}
	var specs []sweep.JobSpec
	for _, k := range kernels {
		for _, p := range preds {
			sp := o.spec(k, "dsre")
			sp.BlockPredictor = p
			specs = append(specs, sp)
		}
	}
	reps := o.results(specs)

	t := stats.NewTable("E11: IPC by next-block predictor (DSRE)",
		"workload", "last-target", "two-level", "perfect", "squashed blocks (two-level)")
	for i, k := range kernels {
		last, two, perf := reps[3*i], reps[3*i+1], reps[3*i+2]
		t.Row(k, last.IPC, two.IPC, perf.IPC, two.Stats.SquashedBlocks)
	}
	return t
}

// E12WorkBreakdown reports the speculative-work economy of each recovery
// scheme: useful committed executions vs work thrown away by squashes vs
// work re-done by waves — the energy-style argument for selective
// re-execution.
func E12WorkBreakdown(o Opts) *stats.Table {
	schemes := []string{"aggressive+flush", "dsre"}
	var specs []sweep.JobSpec
	for _, k := range Kernels() {
		for _, s := range schemes {
			specs = append(specs, o.spec(k, s))
		}
	}
	reps := o.results(specs)

	t := stats.NewTable("E12: speculative work breakdown (aggressive issue)",
		"workload", "recovery", "useful execs", "squashed execs", "re-execs", "total execs", "overhead %")
	i := 0
	for _, k := range Kernels() {
		for _, s := range schemes {
			r := reps[i]
			i++
			total := r.Stats.Executed
			useful := r.Stats.CommittedExecs
			over := 100 * float64(total-useful) / float64(total)
			t.Row(k, s, useful, r.Stats.SquashedExecs, r.Reexecs, total, over)
		}
	}
	return t
}

// E13Placement compares instruction-to-tile placement policies: operand
// hops saved by chain placement vs issue-balance lost.
func E13Placement(o Opts) *stats.Table {
	kernels := []string{"vecsum", "histogram", "listsum", "matmul", "queue"}
	var specs []sweep.JobSpec
	for _, k := range kernels {
		specs = append(specs, o.spec(k, "dsre"))
		ch := o.spec(k, "dsre")
		ch.Placement = "chain"
		specs = append(specs, ch)
	}
	reps := o.results(specs)

	t := stats.NewTable("E13: instruction placement (DSRE)",
		"workload", "IPC round-robin", "IPC chain", "hops RR", "hops chain")
	for i, k := range kernels {
		rr, ch := reps[2*i], reps[2*i+1]
		t.Row(k, rr.IPC, ch.IPC, rr.Stats.Net.Hops, ch.Stats.Net.Hops)
	}
	return t
}

// E14DTileBanks measures the effect of distributing the LSQ's network
// ports across the D-tile column vs funnelling all memory traffic into a
// single port.
func E14DTileBanks(o Opts) *stats.Table {
	kernels := []string{"histogram", "vecsum", "queue", "matmul"}
	banks := []int{1, 2, 4}
	var specs []sweep.JobSpec
	for _, k := range kernels {
		for _, b := range banks {
			sp := o.spec(k, "dsre")
			sp.DTileBanks = b
			specs = append(specs, sp)
		}
	}
	reps := o.results(specs)

	t := stats.NewTable("E14: D-tile memory ports (DSRE)",
		"workload", "1 bank", "2 banks", "4 banks", "queue-wait 1", "queue-wait 4")
	i := 0
	for _, k := range kernels {
		var ipcs []any
		var qw1, qw4 int64
		ipcs = append(ipcs, k)
		for _, b := range banks {
			r := reps[i]
			i++
			ipcs = append(ipcs, r.IPC)
			if b == 1 {
				qw1 = r.Stats.Net.QueueWait
			}
			if b == 4 {
				qw4 = r.Stats.Net.QueueWait
			}
		}
		ipcs = append(ipcs, qw1, qw4)
		t.Row(ipcs...)
	}
	return t
}

// E15LSQCapacity measures sensitivity to load/store queue size: an
// undersized LSQ throttles the effective window for memory-heavy code (the
// TRIPS LSQ-capacity problem that motivated the authors' later late-binding
// LSQ work).
func E15LSQCapacity(o Opts) *stats.Table {
	kernels := []string{"histogram", "bank", "stencil", "queue"}
	caps := []int{32, 64, 128, 0}
	var specs []sweep.JobSpec
	for _, k := range kernels {
		for _, cap := range caps {
			sp := o.spec(k, "dsre")
			sp.LSQCapacity = cap
			specs = append(specs, sp)
		}
	}
	reps := o.results(specs)

	t := stats.NewTable("E15: IPC vs LSQ capacity (DSRE; window has 256 LSID slots)",
		"workload", "cap 32", "cap 64", "cap 128", "unbounded", "stall cycles @32")
	i := 0
	for _, k := range kernels {
		row := []any{k}
		var stall32 int64
		for _, cap := range caps {
			r := reps[i]
			i++
			row = append(row, r.IPC)
			if cap == 32 {
				stall32 = r.Stats.FetchStallLSQ
			}
		}
		row = append(row, stall32)
		t.Row(row...)
	}
	return t
}

// E16ValuePrediction measures DSRE's second application: stride load-value
// prediction at block map time, with mis-predictions repaired by DSRE waves
// (flushing on every wrong value guess would be absurd — cheap selective
// recovery is what makes value speculation viable at all, the
// generalisation the paper closes with).  On this machine aggressive
// dependence speculation already hides most load latency, so the win shows
// on a machine that does NOT speculate on memory ordering: value prediction
// lets even the conservative policy run ahead.
func E16ValuePrediction(o Opts) *stats.Table {
	kernels := []string{"cursor", "queue", "vecsum", "histogram", "treewalk"}
	var specs []sweep.JobSpec
	for _, k := range kernels {
		d := o.spec(k, "dsre")
		dv := o.spec(k, "dsre")
		dv.ValuePredict = true
		c := o.spec(k, "conservative+dsre")
		cv := o.spec(k, "conservative+dsre")
		cv.ValuePredict = true
		specs = append(specs, d, dv, c, cv)
	}
	reps := o.results(specs)

	t := stats.NewTable("E16: map-time load-value prediction (repair via DSRE waves)",
		"workload", "dsre", "dsre+vp", "conservative", "conservative+vp", "cons gain", "VP hits", "VP corrections")
	for i, k := range kernels {
		d, dv, c, cv := reps[4*i], reps[4*i+1], reps[4*i+2], reps[4*i+3]
		t.Row(k, d.IPC, dv.IPC, c.IPC, cv.IPC,
			fmt.Sprintf("%.2fx", cv.IPC/c.IPC), cv.Stats.VPHits, cv.Stats.VPCorrections)
	}
	return t
}
