package noc

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

type rec struct {
	now  int64
	node int
	msg  int
}

func newTestNet(t *testing.T, cfg Config) (*Network[int], *[]rec) {
	t.Helper()
	var got []rec
	n, err := New[int](cfg, func(now int64, node int, msg int) {
		got = append(got, rec{now, node, msg})
	})
	if err != nil {
		t.Fatal(err)
	}
	// The callback closes over got's address via the returned pointer.
	_ = n
	return n, &got
}

func run(n *Network[int], from, to int64) {
	for c := from; c <= to; c++ {
		n.Tick(c)
	}
}

func TestDeliveryLatencyMatchesDistance(t *testing.T) {
	cfg := Config{Width: 4, Height: 4, HopLatency: 1, LinkBandwidth: 1, LocalLatency: 1}
	n, got := newTestNet(t, cfg)
	src := n.Node(0, 0)
	dst := n.Node(3, 2)
	n.Send(0, src, dst, 7)
	run(n, 0, 20)
	if len(*got) != 1 {
		t.Fatalf("deliveries = %v", *got)
	}
	d := (*got)[0]
	if d.node != dst || d.msg != 7 {
		t.Fatalf("delivery = %+v", d)
	}
	// 5 hops at latency 1; the message transmits on the Tick after Send.
	if want := int64(n.Distance(src, dst)); d.now != want {
		t.Errorf("arrival at %d, want %d", d.now, want)
	}
	if n.Pending() != 0 {
		t.Error("network not quiet")
	}
}

func TestLocalDelivery(t *testing.T) {
	cfg := Config{Width: 2, Height: 2, HopLatency: 1, LinkBandwidth: 1, LocalLatency: 1}
	n, got := newTestNet(t, cfg)
	n.Send(0, 3, 3, 9)
	run(n, 0, 3)
	if len(*got) != 1 || (*got)[0].now != 1 {
		t.Fatalf("got = %v", *got)
	}
}

func TestHopLatencyScales(t *testing.T) {
	for _, hop := range []int{1, 2, 4} {
		cfg := Config{Width: 4, Height: 1, HopLatency: hop, LinkBandwidth: 4, LocalLatency: 1}
		n, got := newTestNet(t, cfg)
		n.Send(0, 0, 3, 1)
		run(n, 0, 50)
		if len(*got) != 1 {
			t.Fatalf("hop=%d: got %v", hop, *got)
		}
		if want := int64(3 * hop); (*got)[0].now != want {
			t.Errorf("hop=%d: arrival %d, want %d", hop, (*got)[0].now, want)
		}
	}
}

func TestFIFOOrderOnSameRoute(t *testing.T) {
	cfg := Config{Width: 4, Height: 1, HopLatency: 1, LinkBandwidth: 1, LocalLatency: 1}
	n, got := newTestNet(t, cfg)
	for i := 0; i < 5; i++ {
		n.Send(0, 0, 3, i)
	}
	run(n, 0, 30)
	if len(*got) != 5 {
		t.Fatalf("got = %v", *got)
	}
	for i, d := range *got {
		if d.msg != i {
			t.Fatalf("out of order: %v", *got)
		}
		if i > 0 && d.now < (*got)[i-1].now {
			t.Fatalf("time went backwards: %v", *got)
		}
	}
}

func TestBandwidthContention(t *testing.T) {
	// 10 messages across one link at bandwidth 1 vs bandwidth 4.
	arrivalSpan := func(bw int) int64 {
		cfg := Config{Width: 2, Height: 1, HopLatency: 1, LinkBandwidth: bw, LocalLatency: 1}
		var last int64
		n, _ := New[int](cfg, func(now int64, node int, msg int) { last = now })
		for i := 0; i < 10; i++ {
			n.Send(0, 0, 1, i)
		}
		for c := int64(0); c <= 40; c++ {
			n.Tick(c)
		}
		if n.Pending() != 0 {
			t.Fatalf("bw=%d: network not drained", bw)
		}
		return last
	}
	if narrow, wide := arrivalSpan(1), arrivalSpan(4); narrow <= wide {
		t.Errorf("bandwidth 1 finished at %d, not slower than bandwidth 4 at %d", narrow, wide)
	}
}

// TestAllPairsDelivery property: any (src, dst) pair delivers exactly once,
// to the right node, within (distance × hop) + slack cycles.
func TestAllPairsDelivery(t *testing.T) {
	cfg := Config{Width: 5, Height: 3, HopLatency: 2, LinkBandwidth: 2, LocalLatency: 1}
	f := func(s, d uint8) bool {
		src := int(s) % (cfg.Width * cfg.Height)
		dst := int(d) % (cfg.Width * cfg.Height)
		var deliveries []rec
		n, _ := New[int](cfg, func(now int64, node int, msg int) {
			deliveries = append(deliveries, rec{now, node, msg})
		})
		n.Send(0, src, dst, 1)
		for c := int64(0); c <= 100; c++ {
			n.Tick(c)
		}
		if len(deliveries) != 1 || deliveries[0].node != dst {
			return false
		}
		wantMax := int64(n.Distance(src, dst)*cfg.HopLatency) + 2
		return deliveries[0].now <= wantMax && n.Pending() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Width: 0, Height: 1, HopLatency: 1, LinkBandwidth: 1, LocalLatency: 1},
		{Width: 1, Height: 1, HopLatency: 0, LinkBandwidth: 1, LocalLatency: 1},
		{Width: 1, Height: 1, HopLatency: 1, LinkBandwidth: 0, LocalLatency: 1},
		{Width: 1, Height: 1, HopLatency: 1, LinkBandwidth: 1, LocalLatency: 0},
	}
	for _, cfg := range bad {
		if _, err := New[int](cfg, func(int64, int, int) {}); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

// TestSendDuringLocalDelivery is the regression test for a lost-message
// bug: a handler that Sends to its own node while a local delivery is being
// processed must not have that message dropped by the pending-list filter.
func TestSendDuringLocalDelivery(t *testing.T) {
	cfg := Config{Width: 2, Height: 2, HopLatency: 1, LinkBandwidth: 1, LocalLatency: 1}
	var got []int
	var n *Network[int]
	n, _ = New[int](cfg, func(now int64, node int, msg int) {
		got = append(got, msg)
		if msg < 3 {
			n.Send(now, node, node, msg+1) // chain of self-sends
		}
	})
	n.Send(0, 2, 2, 0)
	for c := int64(0); c <= 20; c++ {
		n.Tick(c)
	}
	if len(got) != 4 || n.Pending() != 0 {
		t.Fatalf("got %v, pending %d; chained self-sends were lost", got, n.Pending())
	}
}

// BenchmarkMeshThroughput measures steady-state message delivery on the
// default-sized mesh.
func BenchmarkMeshThroughput(b *testing.B) {
	cfg := Config{Width: 5, Height: 5, HopLatency: 1, LinkBandwidth: 4, LocalLatency: 1}
	n, _ := New[int](cfg, func(int64, int, int) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cyc := int64(i)
		n.Send(cyc, i%25, (i*7)%25, i)
		n.Tick(cyc)
	}
	// Drain so Pending doesn't grow unboundedly across -benchtime runs.
	for c := int64(b.N); n.Pending() > 0; c++ {
		n.Tick(c)
	}
}

// BenchmarkMeshSaturated measures per-tick cost with every link loaded:
// each cycle, every node injects one message to the node diagonally across
// the mesh, keeping all routers resident and forcing bandwidth-limited
// transmits, multi-hop forwards, and queue-reclaim — the hot loop the
// simulator's operand traffic drives at full window occupancy.
func BenchmarkMeshSaturated(b *testing.B) {
	cfg := Config{Width: 5, Height: 5, HopLatency: 1, LinkBandwidth: 2, LocalLatency: 1}
	delivered := 0
	n, _ := New[int](cfg, func(int64, int, int) { delivered++ })
	nodes := cfg.Width * cfg.Height
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cyc := int64(i)
		// Top occupancy back up to 4 in-flight messages per node: reversal
		// traffic injects faster than the mesh drains, so without a cap the
		// queues (and the drain below) would grow with b.N.
		for src := 0; src < nodes && n.Pending() < 4*nodes; src++ {
			n.Send(cyc, src, nodes-1-src, src)
		}
		n.Tick(cyc)
	}
	b.StopTimer()
	for c := int64(b.N); n.Pending() > 0; c++ {
		n.Tick(c)
	}
	b.ReportMetric(float64(delivered)/float64(b.N), "msgs/tick")
}

// TestIndexedTickMatchesDense is the active-router index's differential
// property test: under randomized traffic — bursts, quiet gaps, src==dst
// local bypass, repeated sources — the indexed Tick must deliver the same
// messages in the same order at the same cycles as the dense scan, with
// identical Pending() and Stats at every cycle boundary.
func TestIndexedTickMatchesDense(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			Width:         2 + rng.Intn(4),
			Height:        2 + rng.Intn(4),
			HopLatency:    1 + rng.Intn(3),
			LinkBandwidth: 1 + rng.Intn(3),
			LocalLatency:  1 + rng.Intn(2),
		}
		dcfg := cfg
		dcfg.DenseTick = true

		var fastLog, denseLog []rec
		fast, err := New[int](cfg, func(now int64, node int, msg int) {
			fastLog = append(fastLog, rec{now, node, msg})
		})
		if err != nil {
			t.Fatal(err)
		}
		dense, err := New[int](dcfg, func(now int64, node int, msg int) {
			denseLog = append(denseLog, rec{now, node, msg})
		})
		if err != nil {
			t.Fatal(err)
		}

		nodes := cfg.Width * cfg.Height
		msg := 0
		for cycle := int64(0); cycle < 120; cycle++ {
			// Bursty injection: quiet stretches exercise the empty-index
			// path, bursts exercise link contention and multi-activation.
			k := 0
			switch rng.Intn(4) {
			case 0:
				k = rng.Intn(6)
			case 1:
				k = rng.Intn(2)
			}
			for i := 0; i < k; i++ {
				src := rng.Intn(nodes)
				dst := src // src==dst local bypass, deliberately common
				if rng.Intn(3) != 0 {
					dst = rng.Intn(nodes)
				}
				msg++
				fast.Send(cycle, src, dst, msg)
				dense.Send(cycle, src, dst, msg)
			}
			fast.Tick(cycle)
			dense.Tick(cycle)
			if fast.Pending() != dense.Pending() {
				t.Logf("seed %d cycle %d: pending fast=%d dense=%d", seed, cycle, fast.Pending(), dense.Pending())
				return false
			}
			if fast.Stats != dense.Stats {
				t.Logf("seed %d cycle %d: stats fast=%+v dense=%+v", seed, cycle, fast.Stats, dense.Stats)
				return false
			}
		}
		// Drain both networks.
		for cycle := int64(120); fast.Pending() > 0 || dense.Pending() > 0; cycle++ {
			fast.Tick(cycle)
			dense.Tick(cycle)
			if cycle > 10000 {
				t.Logf("seed %d: networks failed to drain", seed)
				return false
			}
		}
		if fast.Stats != dense.Stats {
			t.Logf("seed %d: final stats fast=%+v dense=%+v", seed, fast.Stats, dense.Stats)
			return false
		}
		if !reflect.DeepEqual(fastLog, denseLog) {
			t.Logf("seed %d: delivery logs diverge (fast %d, dense %d deliveries)", seed, len(fastLog), len(denseLog))
			return false
		}
		return true
	}
	qc := &quick.Config{MaxCount: 40}
	if testing.Short() {
		qc.MaxCount = 8
	}
	if err := quick.Check(prop, qc); err != nil {
		t.Error(err)
	}
}

// TestNextEventAgreesWithTick pins NextEvent's contract on random traffic:
// whenever the network is pending, ticking cycles strictly before
// NextEvent's answer moves nothing, and ticking at it moves something.
func TestNextEventAgreesWithTick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := Config{Width: 4, Height: 4, HopLatency: 3, LinkBandwidth: 2, LocalLatency: 2}
	n, _ := newTestNet(t, cfg)
	cycle := int64(0)
	for round := 0; round < 200; round++ {
		for i := rng.Intn(3); i > 0; i-- {
			n.Send(cycle, rng.Intn(16), rng.Intn(16), round)
		}
		if n.Pending() == 0 {
			if got := n.NextEvent(cycle); got != Never {
				t.Fatalf("cycle %d: quiet network reports next event %d", cycle, got)
			}
			cycle++
			continue
		}
		next := n.NextEvent(cycle)
		if next < cycle || next == Never {
			t.Fatalf("cycle %d: pending network reports next event %d", cycle, next)
		}
		for ; cycle < next; cycle++ {
			if n.Tick(cycle) {
				t.Fatalf("cycle %d: movement before predicted next event %d", cycle, next)
			}
		}
		if !n.Tick(next) {
			t.Fatalf("cycle %d: no movement at predicted next event", next)
		}
		cycle = next + 1
	}
}
