package sim

// Version stamps the simulator's modelled semantics.  Bump it whenever a
// change can alter simulation results (timing, protocol, statistics) —
// the sweep engine folds this stamp into its content-addressed cache keys,
// so bumping it is what invalidates every cached experiment point.  Pure
// refactors, new telemetry and faster code that produces identical numbers
// must NOT bump it: that is exactly the case the cache exists for.
const Version = "dsre-sim/v1"
