package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"m/internal/sim"
)

type JobSpec struct {
	Workload string
	Unroll   int // want: never read by a fold method
	Machine  sim.Config
}

// hashPayload drops the machine Config entirely.  want: no sim.Config field
type hashPayload struct {
	Workload string
}

func (s JobSpec) Config() sim.Config { return s.Machine }

func (s JobSpec) Hash() string {
	data, _ := json.Marshal(hashPayload{Workload: s.Workload})
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
