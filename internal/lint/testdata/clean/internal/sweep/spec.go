package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"m/internal/sim"
)

// JobSpec identifies one job; every exported field folds into the hash.
type JobSpec struct {
	Workload string
	Seed     int64
	Machine  sim.Config
}

// hashPayload is the hashed form: it carries the full machine Config.
type hashPayload struct {
	Workload string
	Seed     int64
	Machine  sim.Config
}

// Config resolves the machine configuration for the job.
func (s JobSpec) Config() sim.Config { return s.Machine.Canonical() }

// Hash returns the content address of the job.
func (s JobSpec) Hash() string {
	data, _ := json.Marshal(hashPayload{Workload: s.Workload, Seed: s.Seed, Machine: s.Config()})
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
