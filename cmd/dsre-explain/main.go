// dsre-explain answers "where did the cycles go?" for recorded runs: it
// reads dsre-report/v1 files (or a sweep manifest plus its result cache),
// renders each run's CPI stack and mis-speculation forensics — hottest
// violating loads, their conflicting stores, wave depths and wasted
// re-executions — and diffs two reports bucket by bucket.
//
// Usage:
//
//	dsre-explain run.json [more.json...]
//	dsre-explain -manifest sweep-manifest.json -cache .dsre-cache
//	dsre-explain -diff base.json new.json -tolerance 0.02
//	dsre-explain -json run.json
//
// -json emits a dsre-explain/v1 document instead of text.  Exit status: 0
// on success, 1 on read/parse errors, 2 on usage errors, 3 when -diff
// finds an IPC regression beyond -tolerance.
package main

import "os"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
