package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one type-checked package of the loaded module.
type Package struct {
	// ImportPath is the full import path; RelPath is the path relative to
	// the module root ("" for the root package itself).  Analyzers match
	// packages by RelPath so the same configuration applies to the real
	// module and to the miniature modules under testdata/.
	ImportPath string
	RelPath    string
	Dir        string
	Name       string

	Files     []*ast.File
	Filenames []string // parallel to Files

	Types *types.Package

	checking bool
	imports  []string
}

// Module is a loaded, fully type-checked Go module: every non-test package
// under the root, with one shared FileSet and types.Info.
type Module struct {
	Root string // absolute module root (directory holding go.mod)
	Path string // module path from go.mod

	Fset *token.FileSet
	Info *types.Info

	Pkgs   []*Package // sorted by import path
	byPath map[string]*Package
}

// Lookup returns the package with the given module-relative path ("" is the
// module root package), or nil.
func (m *Module) Lookup(relPath string) *Package {
	ip := m.Path
	if relPath != "" {
		ip = m.Path + "/" + relPath
	}
	return m.byPath[ip]
}

// Position renders a token position with the filename relative to the
// module root (slash-separated), for stable diagnostics and goldens.
func (m *Module) Position(pos token.Pos) token.Position {
	p := m.Fset.Position(pos)
	if rel, err := filepath.Rel(m.Root, p.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		p.Filename = filepath.ToSlash(rel)
	}
	return p
}

// stdImporter is the shared stdlib source importer.  Type-checking the
// standard library from GOROOT source is slow, so every Load in the process
// shares one importer (and its internal package cache) under a lock.
var stdImporter struct {
	sync.Mutex
	imp types.ImporterFrom
}

func stdImport(path, dir string) (*types.Package, error) {
	stdImporter.Lock()
	defer stdImporter.Unlock()
	if stdImporter.imp == nil {
		// The source importer keeps its own FileSet; stdlib positions are
		// never reported, so it need not be the module's.
		imp, ok := importer.ForCompiler(token.NewFileSet(), "source", nil).(types.ImporterFrom)
		if !ok {
			return nil, fmt.Errorf("lint: source importer unavailable")
		}
		stdImporter.imp = imp
	}
	return stdImporter.imp.ImportFrom(path, dir, 0)
}

// modImporter resolves module-internal imports by recursive loading and
// everything else through the stdlib source importer.
type modImporter struct {
	m *Module
}

func (im *modImporter) Import(path string) (*types.Package, error) {
	if path == im.m.Path || strings.HasPrefix(path, im.m.Path+"/") {
		p := im.m.byPath[path]
		if p == nil {
			return nil, fmt.Errorf("lint: import %q: no such package in module %s", path, im.m.Path)
		}
		if err := im.m.check(p); err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return stdImport(path, im.m.Root)
}

// Load parses and type-checks every non-test package of the module rooted
// at root (the directory containing go.mod).  Test files, testdata, vendor
// and hidden directories are skipped; build constraints are evaluated for
// the host platform with no extra tags, exactly as `go build ./...` would.
func Load(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root: root,
		Path: modPath,
		Fset: token.NewFileSet(),
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
		byPath: make(map[string]*Package),
	}
	if err := m.discover(); err != nil {
		return nil, err
	}
	for _, p := range m.Pkgs {
		if err := m.check(p); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w (not a module root?)", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: %s has no module directive", gomod)
}

// discover walks the module tree, parsing every buildable non-test file.
func (m *Module) discover() error {
	err := filepath.WalkDir(m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != m.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			// A nested module is its own world (only testdata modules in
			// practice, which the testdata skip already covers).
			if path != m.Root {
				if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
					return filepath.SkipDir
				}
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		return m.addFile(path)
	})
	if err != nil {
		return err
	}
	for _, p := range m.byPath {
		m.Pkgs = append(m.Pkgs, p)
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].ImportPath < m.Pkgs[j].ImportPath })
	return nil
}

func (m *Module) addFile(path string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if !buildableFile(src) {
		return nil
	}
	f, err := parser.ParseFile(m.Fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return fmt.Errorf("lint: parse: %w", err)
	}
	dir := filepath.Dir(path)
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return err
	}
	rel = filepath.ToSlash(rel)
	ip := m.Path
	if rel != "." {
		ip = m.Path + "/" + rel
	} else {
		rel = ""
	}
	p := m.byPath[ip]
	if p == nil {
		p = &Package{ImportPath: ip, RelPath: rel, Dir: dir, Name: f.Name.Name}
		m.byPath[ip] = p
	}
	if f.Name.Name != p.Name {
		return fmt.Errorf("lint: %s: found packages %s and %s in one directory", dir, p.Name, f.Name.Name)
	}
	p.Files = append(p.Files, f)
	p.Filenames = append(p.Filenames, path)
	for _, imp := range f.Imports {
		if ipath, err := strconv.Unquote(imp.Path.Value); err == nil {
			p.imports = append(p.imports, ipath)
		}
	}
	return nil
}

// buildableFile evaluates a file's //go:build constraint (if any) for the
// host platform with no extra build tags — so e.g. the dsre_assert variants
// resolve the same way they do under plain `go build`.
func buildableFile(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "package ") {
			break
		}
		if !constraint.IsGoBuild(trimmed) {
			continue
		}
		expr, err := constraint.Parse(trimmed)
		if err != nil {
			return true // malformed constraint: let the type checker complain
		}
		return expr.Eval(func(tag string) bool {
			return tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc" ||
				strings.HasPrefix(tag, "go1")
		})
	}
	return true
}

// check type-checks p (and, via the importer, its dependencies).
func (m *Module) check(p *Package) error {
	if p.Types != nil {
		return nil
	}
	if p.checking {
		return fmt.Errorf("lint: import cycle through %s", p.ImportPath)
	}
	p.checking = true
	defer func() { p.checking = false }()

	var errs []error
	conf := types.Config{
		Importer: &modImporter{m: m},
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, err := conf.Check(p.ImportPath, m.Fset, p.Files, m.Info)
	if len(errs) > 0 {
		msgs := make([]string, 0, 3)
		for i, e := range errs {
			if i == 3 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(errs)-3))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return fmt.Errorf("lint: type-check %s: %s", p.ImportPath, strings.Join(msgs, "; "))
	}
	if err != nil {
		return fmt.Errorf("lint: type-check %s: %w", p.ImportPath, err)
	}
	p.Types = tpkg
	return nil
}
