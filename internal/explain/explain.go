// Package explain folds dsre-report/v1 documents into the explained form
// shared by the dsre-explain CLI and the dsre-serve /v1/artifacts/…/explain
// endpoint: IPC, the CPI stack as per-bucket shares, re-execution
// forensics, and per-block hot spots.
package explain

import (
	"sort"
	"strings"

	"repro/internal/account"
	"repro/internal/telemetry"
)

// Schema identifies the dsre-explain JSON document format.
const Schema = "dsre-explain/v1"

// RunView is one explained run.
type RunView struct {
	Source   string `json:"source"`
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	Size     int    `json:"size,omitempty"`

	Cycles int64   `json:"cycles"`
	Insts  int64   `json:"insts"`
	Blocks int64   `json:"blocks"`
	IPC    float64 `json:"ipc"`

	// CPI is the run's cumulative cycle-accounting stack; CPIShare the same
	// stack as per-bucket fractions of the cycle budget.  Both are zero for
	// reports recorded without accounting.
	CPI       account.CPIStack `json:"cpi"`
	CPIShare  []BucketShare    `json:"cpi_share,omitempty"`
	Forensics account.Summary  `json:"forensics"`
	HotBlocks []BlockView      `json:"hot_blocks,omitempty"`
}

// BucketShare is one CPI bucket's share of the cycle budget.
type BucketShare struct {
	Bucket string  `json:"bucket"`
	Slots  int64   `json:"slots"`
	Pct    float64 `json:"pct"`
}

// BlockView aggregates forensic load profiles by static block.
type BlockView struct {
	Block      string `json:"block"`
	Events     int64  `json:"events"`
	Reexecs    int64  `json:"reexecs"`
	SquashCost int64  `json:"squash_cost"`
}

// DiffView compares two explained runs.
type DiffView struct {
	A           string        `json:"a"`
	B           string        `json:"b"`
	IPCA        float64       `json:"ipc_a"`
	IPCB        float64       `json:"ipc_b"`
	IPCDelta    float64       `json:"ipc_delta"`
	IPCDeltaRel float64       `json:"ipc_delta_rel"`
	Tolerance   float64       `json:"tolerance"`
	Within      bool          `json:"within_tolerance"`
	CPIShift    []BucketShift `json:"cpi_shift,omitempty"`
}

// BucketShift is one CPI bucket's share moving between two runs.
type BucketShift struct {
	Bucket string  `json:"bucket"`
	APct   float64 `json:"a_pct"`
	BPct   float64 `json:"b_pct"`
	Delta  float64 `json:"delta_pct"`
}

// Doc is the dsre-explain/v1 document.
type Doc struct {
	Schema string    `json:"schema"`
	Runs   []RunView `json:"runs,omitempty"`
	Diff   *DiffView `json:"diff,omitempty"`
}

// View folds one report into its explained form; top bounds the hot-block
// list (0 keeps everything).
func View(source string, rep *telemetry.Report, top int) RunView {
	v := RunView{
		Source:    source,
		Workload:  rep.Workload,
		Scheme:    rep.Scheme,
		Size:      rep.Size,
		Cycles:    rep.Cycles,
		Insts:     rep.Insts,
		Blocks:    rep.Blocks,
		IPC:       rep.IPC,
		CPI:       rep.Stats.Acct,
		Forensics: rep.Stats.Forensics,
	}
	if total := v.CPI.Total(); total > 0 {
		for b := account.Bucket(0); b < account.NumBuckets; b++ {
			n := v.CPI.Get(b)
			v.CPIShare = append(v.CPIShare, BucketShare{
				Bucket: b.String(),
				Slots:  n,
				Pct:    100 * float64(n) / float64(total),
			})
		}
	}
	v.HotBlocks = HotBlocks(v.Forensics.Loads, top)
	return v
}

// HotBlocks regroups per-load forensics by static block ("b3.i7" → "b3"),
// hottest first; top bounds the list (0 keeps everything).
func HotBlocks(loads []account.LoadProfile, top int) []BlockView {
	var blocks []BlockView
	for _, p := range loads {
		name := p.LoadPC
		if i := strings.IndexByte(name, '.'); i > 0 {
			name = name[:i]
		}
		found := false
		for j := range blocks {
			if blocks[j].Block == name {
				blocks[j].Events += p.Events
				blocks[j].Reexecs += p.Reexecs
				blocks[j].SquashCost += p.SquashCost
				found = true
				break
			}
		}
		if !found {
			blocks = append(blocks, BlockView{
				Block: name, Events: p.Events, Reexecs: p.Reexecs, SquashCost: p.SquashCost,
			})
		}
	}
	sort.SliceStable(blocks, func(a, b int) bool { return blocks[a].Events > blocks[b].Events })
	if top > 0 && len(blocks) > top {
		blocks = blocks[:top]
	}
	return blocks
}

// Diff compares two reports under a relative IPC tolerance.
func Diff(nameA, nameB string, a, b *telemetry.Report, tol float64) DiffView {
	d := DiffView{
		A: nameA, B: nameB,
		IPCA: a.IPC, IPCB: b.IPC,
		IPCDelta:  b.IPC - a.IPC,
		Tolerance: tol,
	}
	if a.IPC != 0 {
		d.IPCDeltaRel = (b.IPC - a.IPC) / a.IPC
	}
	rel := d.IPCDeltaRel
	if rel < 0 {
		rel = -rel
	}
	d.Within = rel <= tol
	ta, tb := a.Stats.Acct.Total(), b.Stats.Acct.Total()
	if ta > 0 && tb > 0 {
		for bk := account.Bucket(0); bk < account.NumBuckets; bk++ {
			ap := 100 * float64(a.Stats.Acct.Get(bk)) / float64(ta)
			bp := 100 * float64(b.Stats.Acct.Get(bk)) / float64(tb)
			if ap == 0 && bp == 0 {
				continue
			}
			d.CPIShift = append(d.CPIShift, BucketShift{
				Bucket: bk.String(), APct: ap, BPct: bp, Delta: bp - ap,
			})
		}
	}
	return d
}
