package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strings"

	"repro/internal/account"
	"repro/internal/explain"
	"repro/internal/serve"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// ExplainSchema identifies the -json output format (see internal/explain).
const ExplainSchema = explain.Schema

// run is the CLI body; main exits with its return value.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dsre-explain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit a dsre-explain/v1 JSON document instead of text")
	top := fs.Int("top", 10, "how many hot loads/blocks/stores to show")
	diff := fs.Bool("diff", false, "compare exactly two reports (base, new)")
	tol := fs.Float64("tolerance", 0, "relative IPC change -diff accepts before exiting 3")
	manifest := fs.String("manifest", "", "sweep manifest to explain (requires -cache or -cache-url)")
	cacheDir := fs.String("cache", "", "sweep result cache directory for -manifest")
	cacheURL := fs.String("cache-url", "", "dsre-serve daemon serving the cache for -manifest (exclusive with -cache)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var runs []explain.RunView
	switch {
	case *manifest != "":
		st, rc := openStore(*cacheDir, *cacheURL, stderr)
		if rc != 0 {
			return rc
		}
		if fs.NArg() != 0 {
			fmt.Fprintln(stderr, "dsre-explain: -manifest takes no report files")
			return 2
		}
		var missing int
		var err error
		runs, missing, err = loadManifestRuns(*manifest, st)
		if err != nil {
			fmt.Fprintf(stderr, "dsre-explain: %v\n", err)
			return 1
		}
		if missing > 0 {
			// Not fatal: the cache may have been pruned or written by an
			// older simulator version; explain what is still there.
			fmt.Fprintf(stderr, "dsre-explain: %d completed jobs missing from cache\n", missing)
		}
	case *diff:
		if fs.NArg() != 2 {
			fmt.Fprintln(stderr, "dsre-explain: -diff needs exactly two report files")
			return 2
		}
		return runDiff(fs.Arg(0), fs.Arg(1), *tol, *jsonOut, stdout, stderr)
	default:
		if fs.NArg() == 0 {
			fmt.Fprintln(stderr, "usage: dsre-explain [-json] [-top N] report.json...")
			fmt.Fprintln(stderr, "       dsre-explain -manifest sweep-manifest.json -cache DIR | -cache-url URL")
			fmt.Fprintln(stderr, "       dsre-explain -diff base.json new.json [-tolerance F]")
			return 2
		}
		for _, path := range fs.Args() {
			rep, err := telemetry.ReadReport(path)
			if err != nil {
				fmt.Fprintf(stderr, "dsre-explain: %v\n", err)
				return 1
			}
			runs = append(runs, explain.View(path, rep, *top))
		}
	}

	if *jsonOut {
		return emitJSON(stdout, stderr, explain.Doc{Schema: explain.Schema, Runs: runs})
	}
	for i := range runs {
		printRun(stdout, &runs[i], *top)
	}
	return 0
}

// openStore resolves the -manifest payload source: a local cache directory
// or a dsre-serve daemon's artifact store.
func openStore(cacheDir, cacheURL string, stderr io.Writer) (sweep.Store, int) {
	switch {
	case cacheDir != "" && cacheURL != "":
		fmt.Fprintln(stderr, "dsre-explain: -cache and -cache-url are exclusive; pick one store")
		return nil, 2
	case cacheDir != "":
		st, err := sweep.OpenStore(cacheDir)
		if err != nil {
			fmt.Fprintf(stderr, "dsre-explain: %v\n", err)
			return nil, 1
		}
		return st, 0
	case cacheURL != "":
		return serve.NewRemoteStore(cacheURL, nil), 0
	default:
		fmt.Fprintln(stderr, "dsre-explain: -manifest requires -cache or -cache-url")
		return nil, 2
	}
}

// loadManifestRuns explains every completed job of a sweep from its store,
// also reporting how many completed jobs had no cached payload.
func loadManifestRuns(path string, st sweep.Store) ([]explain.RunView, int, error) {
	m, err := sweep.ReadManifest(path)
	if err != nil {
		return nil, 0, err
	}
	var runs []explain.RunView
	missing := 0
	for _, j := range m.Jobs {
		if j.Status != sweep.StatusOK {
			continue
		}
		rec, err := st.Get(j.Hash)
		if err != nil {
			return nil, 0, err
		}
		if rec == nil {
			missing++
			continue
		}
		runs = append(runs, explain.View(j.Spec.Name(), rec.Report, 0))
	}
	if len(runs) == 0 {
		return nil, missing, fmt.Errorf("manifest %s: no completed jobs found in the cache", path)
	}
	return runs, missing, nil
}

func printRun(w io.Writer, v *explain.RunView, top int) {
	fmt.Fprintf(w, "== %s / %s", v.Workload, v.Scheme)
	if v.Size > 0 {
		fmt.Fprintf(w, " (size %d)", v.Size)
	}
	fmt.Fprintf(w, " — %s ==\n", v.Source)
	fmt.Fprintf(w, "  IPC %.3f  (%d instructions over %d cycles, %d blocks)\n",
		v.IPC, v.Insts, v.Cycles, v.Blocks)

	if len(v.CPIShare) == 0 {
		fmt.Fprintf(w, "  no cycle accounting in this report (rerun with a current dsre-sim)\n")
	} else {
		fmt.Fprintf(w, "  cpi stack (%d cycles, %d slot/cycle):\n", v.Cycles, account.SlotsPerCycle)
		for _, s := range v.CPIShare {
			if s.Slots == 0 {
				continue
			}
			fmt.Fprintf(w, "    %-9s %10d  %5.1f%%  %s\n", s.Bucket, s.Slots, s.Pct, bar(s.Pct, 30))
		}
	}

	f := &v.Forensics
	fmt.Fprintf(w, "  forensics: %d repairs (%d flush, %d wave, %d vp)  reexecs %d attributed + %d unattributed  wasted %d  squash-equivalent %d  max wave depth %d\n",
		f.Events, f.FlushEvents, f.WaveEvents, f.VPEvents,
		f.WaveReexecs, f.UnattributedReexecs, f.WastedReexecs, f.SquashCost, f.MaxDepth)

	if len(v.HotBlocks) > 0 {
		fmt.Fprintf(w, "  hot blocks:\n")
		for _, b := range v.HotBlocks {
			fmt.Fprintf(w, "    %-6s repairs %-6d reexecs %-6d squash-equivalent %d\n",
				b.Block, b.Events, b.Reexecs, b.SquashCost)
		}
	}
	loads := f.Loads
	if top > 0 && len(loads) > top {
		loads = loads[:top]
	}
	if len(loads) > 0 {
		fmt.Fprintf(w, "  hot loads:\n")
		for _, p := range loads {
			fmt.Fprintf(w, "    %-10s repairs %-5d (flush %d, wave %d, vp %d)  reexecs %-5d wasted %-4d depth %d",
				p.LoadPC, p.Events, p.Flushes, p.Waves, p.VPRepairs, p.Reexecs, p.Wasted, p.MaxDepth)
			if len(p.TopStores) > 0 {
				var st []string
				n := len(p.TopStores)
				if top > 0 && n > top {
					n = top
				}
				for _, s := range p.TopStores[:n] {
					st = append(st, fmt.Sprintf("%s×%d", s.StorePC, s.Count))
				}
				fmt.Fprintf(w, "  stores: %s", strings.Join(st, " "))
			}
			fmt.Fprintln(w)
		}
	}
}

// bar renders pct (0..100) as a proportional ASCII bar of the given width.
func bar(pct float64, width int) string {
	n := int(pct/100*float64(width) + 0.5)
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

func runDiff(pathA, pathB string, tol float64, jsonOut bool, stdout, stderr io.Writer) int {
	a, err := telemetry.ReadReport(pathA)
	if err != nil {
		fmt.Fprintf(stderr, "dsre-explain: %v\n", err)
		return 1
	}
	b, err := telemetry.ReadReport(pathB)
	if err != nil {
		fmt.Fprintf(stderr, "dsre-explain: %v\n", err)
		return 1
	}
	d := explain.Diff(pathA, pathB, a, b, tol)

	if jsonOut {
		if rc := emitJSON(stdout, stderr, explain.Doc{Schema: explain.Schema, Diff: &d}); rc != 0 {
			return rc
		}
	} else {
		fmt.Fprintf(stdout, "IPC %.3f → %.3f (%+.2f%%, tolerance %.2f%%)\n",
			d.IPCA, d.IPCB, 100*d.IPCDeltaRel, 100*tol)
		for _, s := range d.CPIShift {
			fmt.Fprintf(stdout, "  %-9s %5.1f%% → %5.1f%%  (%+.1f pts)\n", s.Bucket, s.APct, s.BPct, s.Delta)
		}
	}
	if !d.Within {
		fmt.Fprintf(stderr, "dsre-explain: IPC moved %+.2f%%, beyond tolerance %.2f%%\n",
			100*d.IPCDeltaRel, 100*tol)
		return 3
	}
	return 0
}

func emitJSON(stdout, stderr io.Writer, doc explain.Doc) int {
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(stderr, "dsre-explain: %v\n", err)
		return 1
	}
	return 0
}
