package core

// OperandSlot is one reservation-station operand slot under the DSRE
// protocol.  Unlike a conventional reservation station, a slot can be
// written many times: each speculative wave that reaches the producing
// instruction re-broadcasts a (value, tag) pair, and the slot keeps the
// newest version.  A slot becomes committed when the trailing commit wave
// delivers the final value.
type OperandSlot struct {
	Present   bool
	Committed bool
	Value     int64
	Tag       Tag
}

// Deliver applies a speculative data message to the slot and reports
// whether the consumer must (re-)execute.
//
// Rules, in order:
//
//   - a committed slot ignores all further data (the commit wave already
//     certified the final value; anything still in flight is stale);
//   - a strictly newer tag always wins;
//   - an equal tag with a *different* value also wins: the same producer
//     can legitimately re-fire with an unchanged maximum input tag when a
//     lower-tagged operand changed, and link-level FIFO ordering guarantees
//     the later message arrives later;
//   - anything else is a stale message from an overtaken wave and is
//     dropped.
//
// When suppressIdentical is set (the identical-value suppression
// optimisation, ablation E7), a newer tag carrying an unchanged value
// updates the slot's tag but reports no re-execution, stopping the wave.
func (s *OperandSlot) Deliver(v int64, tag Tag, suppressIdentical bool) (reexec bool) {
	if s.Committed {
		return false
	}
	if !s.Present {
		s.Present, s.Value, s.Tag = true, v, tag
		return true
	}
	switch {
	case tag > s.Tag:
		same := s.Value == v
		s.Value, s.Tag = v, tag
		if same && suppressIdentical {
			return false
		}
		return true
	case tag == s.Tag && v != s.Value:
		s.Value = v
		return true
	default:
		return false
	}
}

// DeliverCommit applies a commit token carrying the producer's final value.
// The token doubles as a data message: if the slot holds a stale value (or
// nothing), the final value is installed and the consumer must re-execute.
// After this call the slot is committed and ignores further data.
func (s *OperandSlot) DeliverCommit(v int64) (reexec bool) {
	if s.Committed {
		return false
	}
	reexec = !s.Present || s.Value != v
	s.Present, s.Committed, s.Value = true, true, v
	return reexec
}

// Reset clears the slot (used when a frame is squashed and remapped).
func (s *OperandSlot) Reset() { *s = OperandSlot{} }
