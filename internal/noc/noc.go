// Package noc models the operand network of a TRIPS-like EDGE processor: a
// 2-D mesh with dimension-order (X-then-Y) routing, a configurable per-hop
// latency, and per-link bandwidth with FIFO queueing.
//
// The network is generic over its payload so it carries operand messages,
// commit-wave tokens, memory traffic and control messages without knowing
// their contents.  Links preserve FIFO order, but messages taking different
// routes may be reordered — the DSRE protocol's wave tags are what make that
// safe, and the simulator's tests rely on it.
package noc

import "fmt"

// Dir is a mesh link direction.
type dir int

const (
	dirE dir = iota
	dirW
	dirN
	dirS
	numDirs
)

// Config describes the mesh.
type Config struct {
	Width  int
	Height int
	// HopLatency is the per-hop transit time in cycles (>= 1).
	HopLatency int
	// LinkBandwidth is the number of messages one link accepts per cycle.
	LinkBandwidth int
	// LocalLatency is the delivery delay for messages whose source and
	// destination coincide (same-tile bypass); >= 1.
	LocalLatency int
}

// Stats counts network activity.
type Stats struct {
	Messages  int64 // injected
	Delivered int64
	Hops      int64 // link traversals
	QueueWait int64 // cycles messages spent waiting for link bandwidth
}

type flit[T any] struct {
	msg      T
	dst      int
	enqueued int64 // cycle it entered the current queue, for QueueWait
}

type transit[T any] struct {
	flit     flit[T]
	arriveAt int64
}

type router[T any] struct {
	out [numDirs][]flit[T]
	// inTransit holds flits this router has transmitted that have not yet
	// reached the neighbouring router.
	inTransit [numDirs][]transit[T]
}

// Network is the mesh.  Deliver is invoked during Tick for every message
// reaching its destination's local port.
type Network[T any] struct {
	cfg     Config
	routers []router[T]
	local   []transit[T] // src==dst messages awaiting local delivery
	deliver func(now int64, node int, msg T)
	pending int
	Stats   Stats
}

// New builds a mesh network.  deliver must not call back into Send
// synchronously for the same cycle's delivery (enqueueing is fine).
func New[T any](cfg Config, deliver func(now int64, node int, msg T)) (*Network[T], error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("noc: %dx%d mesh", cfg.Width, cfg.Height)
	}
	if cfg.HopLatency < 1 {
		return nil, fmt.Errorf("noc: hop latency %d < 1", cfg.HopLatency)
	}
	if cfg.LinkBandwidth < 1 {
		return nil, fmt.Errorf("noc: link bandwidth %d < 1", cfg.LinkBandwidth)
	}
	if cfg.LocalLatency < 1 {
		return nil, fmt.Errorf("noc: local latency %d < 1", cfg.LocalLatency)
	}
	return &Network[T]{
		cfg:     cfg,
		routers: make([]router[T], cfg.Width*cfg.Height),
		deliver: deliver,
	}, nil
}

// Node converts mesh coordinates to a node index.
func (n *Network[T]) Node(x, y int) int { return y*n.cfg.Width + x }

// Coords converts a node index back to mesh coordinates.
func (n *Network[T]) Coords(node int) (x, y int) {
	return node % n.cfg.Width, node / n.cfg.Width
}

// Distance returns the Manhattan distance between two nodes.
func (n *Network[T]) Distance(a, b int) int {
	ax, ay := n.Coords(a)
	bx, by := n.Coords(b)
	return abs(ax-bx) + abs(ay-by)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Send injects a message at src destined for dst.
func (n *Network[T]) Send(now int64, src, dst int, msg T) {
	n.Stats.Messages++
	n.pending++
	if src == dst {
		n.local = append(n.local, transit[T]{
			flit:     flit[T]{msg: msg, dst: dst},
			arriveAt: now + int64(n.cfg.LocalLatency),
		})
		return
	}
	d := n.route(src, dst)
	n.routers[src].out[d] = append(n.routers[src].out[d], flit[T]{msg: msg, dst: dst, enqueued: now})
}

// route picks the next direction from node toward dst (X first, then Y).
func (n *Network[T]) route(node, dst int) dir {
	x, y := n.Coords(node)
	dx, dy := n.Coords(dst)
	switch {
	case dx > x:
		return dirE
	case dx < x:
		return dirW
	case dy > y:
		return dirN
	default:
		return dirS
	}
}

// neighbor returns the node on the other end of a link.
func (n *Network[T]) neighbor(node int, d dir) int {
	x, y := n.Coords(node)
	switch d {
	case dirE:
		x++
	case dirW:
		x--
	case dirN:
		y++
	case dirS:
		y--
	}
	return n.Node(x, y)
}

// Tick advances the network one cycle: arrivals are processed (delivered or
// forwarded), then each link transmits up to its bandwidth.
func (n *Network[T]) Tick(now int64) {
	// Local deliveries.  The deliver callback may Send again (including to
	// the same node), so the pending list is detached before iterating —
	// a compact-in-place filter would silently drop messages enqueued
	// during delivery.
	pending := n.local
	n.local = nil
	for _, t := range pending {
		if t.arriveAt <= now {
			n.Stats.Delivered++
			n.pending--
			n.deliver(now, t.flit.dst, t.flit.msg)
		} else {
			n.local = append(n.local, t)
		}
	}

	// Arrivals at the far end of each link.
	for node := range n.routers {
		r := &n.routers[node]
		for d := dir(0); d < numDirs; d++ {
			ts := r.inTransit[d]
			if len(ts) == 0 {
				continue
			}
			keep := ts[:0]
			for _, t := range ts {
				if t.arriveAt > now {
					keep = append(keep, t)
					continue
				}
				at := n.neighbor(node, d)
				if at == t.flit.dst {
					n.Stats.Delivered++
					n.pending--
					n.deliver(now, at, t.flit.msg)
					continue
				}
				nd := n.route(at, t.flit.dst)
				t.flit.enqueued = now
				n.routers[at].out[nd] = append(n.routers[at].out[nd], t.flit)
			}
			r.inTransit[d] = keep
		}
	}

	// Transmissions, bounded by link bandwidth.
	for node := range n.routers {
		r := &n.routers[node]
		for d := dir(0); d < numDirs; d++ {
			q := r.out[d]
			if len(q) == 0 {
				continue
			}
			k := n.cfg.LinkBandwidth
			if k > len(q) {
				k = len(q)
			}
			for i := 0; i < k; i++ {
				f := q[i]
				n.Stats.Hops++
				n.Stats.QueueWait += now - f.enqueued
				r.inTransit[d] = append(r.inTransit[d], transit[T]{flit: f, arriveAt: now + int64(n.cfg.HopLatency)})
			}
			m := copy(q, q[k:])
			r.out[d] = q[:m]
		}
	}
}

// Pending returns the number of messages in flight (injected, not yet
// delivered); zero means the network is quiet.
func (n *Network[T]) Pending() int { return n.pending }
