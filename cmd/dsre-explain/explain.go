package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/account"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// ExplainSchema identifies the -json output format.
const ExplainSchema = "dsre-explain/v1"

// runView is one explained run in the -json document.
type runView struct {
	Source   string `json:"source"`
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	Size     int    `json:"size,omitempty"`

	Cycles int64   `json:"cycles"`
	Insts  int64   `json:"insts"`
	Blocks int64   `json:"blocks"`
	IPC    float64 `json:"ipc"`

	// CPI is the run's cumulative cycle-accounting stack; CPIShare the same
	// stack as per-bucket fractions of the cycle budget.  Both are zero for
	// reports recorded without accounting.
	CPI       account.CPIStack `json:"cpi"`
	CPIShare  []bucketShare    `json:"cpi_share,omitempty"`
	Forensics account.Summary  `json:"forensics"`
	HotBlocks []blockView      `json:"hot_blocks,omitempty"`
}

type bucketShare struct {
	Bucket string  `json:"bucket"`
	Slots  int64   `json:"slots"`
	Pct    float64 `json:"pct"`
}

// blockView aggregates forensic load profiles by static block.
type blockView struct {
	Block      string `json:"block"`
	Events     int64  `json:"events"`
	Reexecs    int64  `json:"reexecs"`
	SquashCost int64  `json:"squash_cost"`
}

type diffView struct {
	A           string        `json:"a"`
	B           string        `json:"b"`
	IPCA        float64       `json:"ipc_a"`
	IPCB        float64       `json:"ipc_b"`
	IPCDelta    float64       `json:"ipc_delta"`
	IPCDeltaRel float64       `json:"ipc_delta_rel"`
	Tolerance   float64       `json:"tolerance"`
	Within      bool          `json:"within_tolerance"`
	CPIShift    []bucketShift `json:"cpi_shift,omitempty"`
}

type bucketShift struct {
	Bucket string  `json:"bucket"`
	APct   float64 `json:"a_pct"`
	BPct   float64 `json:"b_pct"`
	Delta  float64 `json:"delta_pct"`
}

type explainDoc struct {
	Schema string    `json:"schema"`
	Runs   []runView `json:"runs,omitempty"`
	Diff   *diffView `json:"diff,omitempty"`
}

// run is the CLI body; main exits with its return value.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dsre-explain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit a dsre-explain/v1 JSON document instead of text")
	top := fs.Int("top", 10, "how many hot loads/blocks/stores to show")
	diff := fs.Bool("diff", false, "compare exactly two reports (base, new)")
	tol := fs.Float64("tolerance", 0, "relative IPC change -diff accepts before exiting 3")
	manifest := fs.String("manifest", "", "sweep manifest to explain (requires -cache)")
	cacheDir := fs.String("cache", "", "sweep result cache directory for -manifest")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var runs []runView
	switch {
	case *manifest != "":
		if *cacheDir == "" {
			fmt.Fprintln(stderr, "dsre-explain: -manifest requires -cache")
			return 2
		}
		if fs.NArg() != 0 {
			fmt.Fprintln(stderr, "dsre-explain: -manifest takes no report files")
			return 2
		}
		var missing int
		var err error
		runs, missing, err = loadManifestRuns(*manifest, *cacheDir)
		if err != nil {
			fmt.Fprintf(stderr, "dsre-explain: %v\n", err)
			return 1
		}
		if missing > 0 {
			// Not fatal: the cache may have been pruned or written by an
			// older simulator version; explain what is still there.
			fmt.Fprintf(stderr, "dsre-explain: %d completed jobs missing from cache %s\n", missing, *cacheDir)
		}
	case *diff:
		if fs.NArg() != 2 {
			fmt.Fprintln(stderr, "dsre-explain: -diff needs exactly two report files")
			return 2
		}
		return runDiff(fs.Arg(0), fs.Arg(1), *tol, *jsonOut, stdout, stderr)
	default:
		if fs.NArg() == 0 {
			fmt.Fprintln(stderr, "usage: dsre-explain [-json] [-top N] report.json...")
			fmt.Fprintln(stderr, "       dsre-explain -manifest sweep-manifest.json -cache DIR")
			fmt.Fprintln(stderr, "       dsre-explain -diff base.json new.json [-tolerance F]")
			return 2
		}
		for _, path := range fs.Args() {
			rep, err := telemetry.ReadReport(path)
			if err != nil {
				fmt.Fprintf(stderr, "dsre-explain: %v\n", err)
				return 1
			}
			runs = append(runs, view(path, rep, *top))
		}
	}

	if *jsonOut {
		return emitJSON(stdout, stderr, explainDoc{Schema: ExplainSchema, Runs: runs})
	}
	for i := range runs {
		printRun(stdout, &runs[i], *top)
	}
	return 0
}

// loadManifestRuns explains every completed job of a sweep from its cache,
// also reporting how many completed jobs had no cached payload.
func loadManifestRuns(path, cacheDir string) ([]runView, int, error) {
	m, err := sweep.ReadManifest(path)
	if err != nil {
		return nil, 0, err
	}
	st, err := sweep.OpenStore(cacheDir)
	if err != nil {
		return nil, 0, err
	}
	var runs []runView
	missing := 0
	for _, j := range m.Jobs {
		if j.Status != sweep.StatusOK {
			continue
		}
		rec, err := st.Get(j.Hash)
		if err != nil {
			return nil, 0, err
		}
		if rec == nil {
			missing++
			continue
		}
		runs = append(runs, view(j.Spec.Name(), rec.Report, 0))
	}
	if len(runs) == 0 {
		return nil, missing, fmt.Errorf("manifest %s: no completed jobs found in cache %s", path, cacheDir)
	}
	return runs, missing, nil
}

// view folds one report into its explained form.
func view(source string, rep *telemetry.Report, top int) runView {
	v := runView{
		Source:    source,
		Workload:  rep.Workload,
		Scheme:    rep.Scheme,
		Size:      rep.Size,
		Cycles:    rep.Cycles,
		Insts:     rep.Insts,
		Blocks:    rep.Blocks,
		IPC:       rep.IPC,
		CPI:       rep.Stats.Acct,
		Forensics: rep.Stats.Forensics,
	}
	if total := v.CPI.Total(); total > 0 {
		for b := account.Bucket(0); b < account.NumBuckets; b++ {
			n := v.CPI.Get(b)
			v.CPIShare = append(v.CPIShare, bucketShare{
				Bucket: b.String(),
				Slots:  n,
				Pct:    100 * float64(n) / float64(total),
			})
		}
	}
	v.HotBlocks = hotBlocks(v.Forensics.Loads, top)
	return v
}

// hotBlocks regroups per-load forensics by static block ("b3.i7" → "b3").
func hotBlocks(loads []account.LoadProfile, top int) []blockView {
	var blocks []blockView
	for _, p := range loads {
		name := p.LoadPC
		if i := strings.IndexByte(name, '.'); i > 0 {
			name = name[:i]
		}
		found := false
		for j := range blocks {
			if blocks[j].Block == name {
				blocks[j].Events += p.Events
				blocks[j].Reexecs += p.Reexecs
				blocks[j].SquashCost += p.SquashCost
				found = true
				break
			}
		}
		if !found {
			blocks = append(blocks, blockView{
				Block: name, Events: p.Events, Reexecs: p.Reexecs, SquashCost: p.SquashCost,
			})
		}
	}
	sort.SliceStable(blocks, func(a, b int) bool { return blocks[a].Events > blocks[b].Events })
	if top > 0 && len(blocks) > top {
		blocks = blocks[:top]
	}
	return blocks
}

func printRun(w io.Writer, v *runView, top int) {
	fmt.Fprintf(w, "== %s / %s", v.Workload, v.Scheme)
	if v.Size > 0 {
		fmt.Fprintf(w, " (size %d)", v.Size)
	}
	fmt.Fprintf(w, " — %s ==\n", v.Source)
	fmt.Fprintf(w, "  IPC %.3f  (%d instructions over %d cycles, %d blocks)\n",
		v.IPC, v.Insts, v.Cycles, v.Blocks)

	if len(v.CPIShare) == 0 {
		fmt.Fprintf(w, "  no cycle accounting in this report (rerun with a current dsre-sim)\n")
	} else {
		fmt.Fprintf(w, "  cpi stack (%d cycles, %d slot/cycle):\n", v.Cycles, account.SlotsPerCycle)
		for _, s := range v.CPIShare {
			if s.Slots == 0 {
				continue
			}
			fmt.Fprintf(w, "    %-9s %10d  %5.1f%%  %s\n", s.Bucket, s.Slots, s.Pct, bar(s.Pct, 30))
		}
	}

	f := &v.Forensics
	fmt.Fprintf(w, "  forensics: %d repairs (%d flush, %d wave, %d vp)  reexecs %d attributed + %d unattributed  wasted %d  squash-equivalent %d  max wave depth %d\n",
		f.Events, f.FlushEvents, f.WaveEvents, f.VPEvents,
		f.WaveReexecs, f.UnattributedReexecs, f.WastedReexecs, f.SquashCost, f.MaxDepth)

	if len(v.HotBlocks) > 0 {
		fmt.Fprintf(w, "  hot blocks:\n")
		for _, b := range v.HotBlocks {
			fmt.Fprintf(w, "    %-6s repairs %-6d reexecs %-6d squash-equivalent %d\n",
				b.Block, b.Events, b.Reexecs, b.SquashCost)
		}
	}
	loads := f.Loads
	if top > 0 && len(loads) > top {
		loads = loads[:top]
	}
	if len(loads) > 0 {
		fmt.Fprintf(w, "  hot loads:\n")
		for _, p := range loads {
			fmt.Fprintf(w, "    %-10s repairs %-5d (flush %d, wave %d, vp %d)  reexecs %-5d wasted %-4d depth %d",
				p.LoadPC, p.Events, p.Flushes, p.Waves, p.VPRepairs, p.Reexecs, p.Wasted, p.MaxDepth)
			if len(p.TopStores) > 0 {
				var st []string
				n := len(p.TopStores)
				if top > 0 && n > top {
					n = top
				}
				for _, s := range p.TopStores[:n] {
					st = append(st, fmt.Sprintf("%s×%d", s.StorePC, s.Count))
				}
				fmt.Fprintf(w, "  stores: %s", strings.Join(st, " "))
			}
			fmt.Fprintln(w)
		}
	}
}

// bar renders pct (0..100) as a proportional ASCII bar of the given width.
func bar(pct float64, width int) string {
	n := int(pct/100*float64(width) + 0.5)
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

func runDiff(pathA, pathB string, tol float64, jsonOut bool, stdout, stderr io.Writer) int {
	a, err := telemetry.ReadReport(pathA)
	if err != nil {
		fmt.Fprintf(stderr, "dsre-explain: %v\n", err)
		return 1
	}
	b, err := telemetry.ReadReport(pathB)
	if err != nil {
		fmt.Fprintf(stderr, "dsre-explain: %v\n", err)
		return 1
	}
	d := diffView{
		A: pathA, B: pathB,
		IPCA: a.IPC, IPCB: b.IPC,
		IPCDelta:  b.IPC - a.IPC,
		Tolerance: tol,
	}
	if a.IPC != 0 {
		d.IPCDeltaRel = (b.IPC - a.IPC) / a.IPC
	}
	d.Within = abs(d.IPCDeltaRel) <= tol
	ta, tb := a.Stats.Acct.Total(), b.Stats.Acct.Total()
	if ta > 0 && tb > 0 {
		for bk := account.Bucket(0); bk < account.NumBuckets; bk++ {
			ap := 100 * float64(a.Stats.Acct.Get(bk)) / float64(ta)
			bp := 100 * float64(b.Stats.Acct.Get(bk)) / float64(tb)
			if ap == 0 && bp == 0 {
				continue
			}
			d.CPIShift = append(d.CPIShift, bucketShift{
				Bucket: bk.String(), APct: ap, BPct: bp, Delta: bp - ap,
			})
		}
	}

	if jsonOut {
		if rc := emitJSON(stdout, stderr, explainDoc{Schema: ExplainSchema, Diff: &d}); rc != 0 {
			return rc
		}
	} else {
		fmt.Fprintf(stdout, "IPC %.3f → %.3f (%+.2f%%, tolerance %.2f%%)\n",
			d.IPCA, d.IPCB, 100*d.IPCDeltaRel, 100*tol)
		for _, s := range d.CPIShift {
			fmt.Fprintf(stdout, "  %-9s %5.1f%% → %5.1f%%  (%+.1f pts)\n", s.Bucket, s.APct, s.BPct, s.Delta)
		}
	}
	if !d.Within {
		fmt.Fprintf(stderr, "dsre-explain: IPC moved %+.2f%%, beyond tolerance %.2f%%\n",
			100*d.IPCDeltaRel, 100*tol)
		return 3
	}
	return 0
}

func emitJSON(stdout, stderr io.Writer, doc explainDoc) int {
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(stderr, "dsre-explain: %v\n", err)
		return 1
	}
	return 0
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
