package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
	"repro/internal/trace"
)

// The exporter maps simulator activity onto the Chrome trace-event
// (catapult) JSON format, loadable in chrome://tracing or ui.perfetto.dev.
// One simulated cycle is rendered as one microsecond.  Lanes:
//
//	pid 0 "pipeline"  — fetch spans (tid 0) and block residency spans,
//	                    one lane per frame slot (tid 1..frameLanes)
//	pid 1 "waves"     — derived recovery-wave lifetime spans plus
//	                    correction/re-execution instants
//	pid 2 "tiles"     — individual ALU execution spans
//	pid 3 "counters"  — sampler time series as counter tracks
const (
	pidPipeline = 0
	pidWaves    = 1
	pidTiles    = 2
	pidCounters = 3

	frameLanes = 8  // block-residency lanes (seq mod frameLanes)
	waveLanes  = 16 // wave lanes (ordinal mod waveLanes)
	tileLanes  = 32 // exec lanes (instruction index mod tileLanes)
)

// chromeEvent is one trace-event object.  Fields follow the catapult
// trace-event format spec.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

func meta(pid int, name string) chromeEvent {
	return chromeEvent{Name: "process_name", Ph: "M", Pid: pid, Args: map[string]any{"name": name}}
}

// WriteChromeTrace converts a trace collection (events plus stage spans)
// and an optional sample series into catapult JSON.  Either input may be
// nil.  Output is deterministic for a given input: events are emitted in
// recording order and waves in first-correction order, so golden-file
// tests are stable.
func WriteChromeTrace(w io.Writer, c *trace.Collector, samples []sim.Sample) error {
	out := chromeTrace{
		TraceEvents:     []chromeEvent{},
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{"source": "dsre", "time_unit": "1 cycle = 1us"},
	}
	add := func(e chromeEvent) { out.TraceEvents = append(out.TraceEvents, e) }

	add(meta(pidPipeline, "pipeline"))
	add(meta(pidWaves, "waves"))
	add(meta(pidTiles, "tiles"))
	add(meta(pidCounters, "counters"))

	// Wave lifetimes are derived from the event stream: a wave starts at
	// its correction injection and ends at the last re-execution carrying
	// its tag.
	type waveSpan struct {
		tag        uint64
		seq        int64
		start, end int64
		reexecs    int
	}
	var waves []*waveSpan
	waveByTag := map[uint64]*waveSpan{}

	if c != nil {
		for _, e := range c.Events {
			switch e.Kind {
			case trace.KindCorrection:
				if _, ok := waveByTag[e.Tag]; !ok {
					ws := &waveSpan{tag: e.Tag, seq: e.Seq, start: e.Cycle, end: e.Cycle}
					waveByTag[e.Tag] = ws
					waves = append(waves, ws)
				}
				add(chromeEvent{
					Name: fmt.Sprintf("correction b%d.i%d", e.Seq, e.Idx), Cat: "wave",
					Ph: "i", Ts: e.Cycle, Pid: pidWaves, Tid: int(e.Tag % waveLanes), S: "p",
				})
			case trace.KindReexec:
				if ws, ok := waveByTag[e.Tag]; ok {
					ws.reexecs++
					if e.Cycle > ws.end {
						ws.end = e.Cycle
					}
				}
			case trace.KindBlockCommit:
				add(chromeEvent{
					Name: fmt.Sprintf("commit b%d", e.Seq), Cat: "commit",
					Ph: "i", Ts: e.Cycle, Pid: pidPipeline, Tid: 1 + int(e.Seq%frameLanes), S: "t",
				})
			case trace.KindBlockSquash:
				add(chromeEvent{
					Name: fmt.Sprintf("squash b%d", e.Seq), Cat: "squash",
					Ph: "i", Ts: e.Cycle, Pid: pidPipeline, Tid: 1 + int(e.Seq%frameLanes), S: "t",
				})
			}
		}

		for _, sp := range c.Spans {
			switch sp.Kind {
			case trace.SpanFetch:
				add(chromeEvent{
					Name: fmt.Sprintf("fetch b%d (block %d)", sp.Seq, sp.Idx), Cat: "fetch",
					Ph: "X", Ts: sp.Start, Dur: dur(sp.Start, sp.End), Pid: pidPipeline, Tid: 0,
					Args: map[string]any{"seq": sp.Seq, "block": sp.Idx},
				})
			case trace.SpanBlock:
				name := fmt.Sprintf("b%d (block %d)", sp.Seq, sp.Idx)
				cat := "block"
				if sp.Tag == 1 {
					name += " SQUASHED"
					cat = "block-squashed"
				}
				add(chromeEvent{
					Name: name, Cat: cat,
					Ph: "X", Ts: sp.Start, Dur: dur(sp.Start, sp.End),
					Pid: pidPipeline, Tid: 1 + int(sp.Seq%frameLanes),
					Args: map[string]any{"seq": sp.Seq, "block": sp.Idx, "squashed": sp.Tag == 1},
				})
			case trace.SpanExec:
				add(chromeEvent{
					Name: fmt.Sprintf("b%d.i%d", sp.Seq, sp.Idx), Cat: "exec",
					Ph: "X", Ts: sp.Start, Dur: dur(sp.Start, sp.End),
					Pid: pidTiles, Tid: sp.Idx % tileLanes,
					Args: map[string]any{"tag": sp.Tag},
				})
			case trace.SpanWave:
				// Pre-derived wave spans (synthetic collections).
				add(waveEvent(sp.Tag, sp.Seq, sp.Start, sp.End, int(sp.Idx), len(waves)))
			}
		}
	}

	for i, ws := range waves {
		add(waveEvent(ws.tag, ws.seq, ws.start, ws.end, ws.reexecs, i))
	}

	for _, s := range samples {
		add(chromeEvent{Name: "IPC", Ph: "C", Ts: s.Cycle, Pid: pidCounters, Tid: 0,
			Args: map[string]any{"ipc": s.IPC}})
		add(chromeEvent{Name: "occupancy", Ph: "C", Ts: s.Cycle, Pid: pidCounters, Tid: 0,
			Args: map[string]any{
				"blocks": s.InFlightBlocks, "lsq": s.LSQOccupancy, "noc": s.NoCPending,
			}})
		add(chromeEvent{Name: "speculation", Ph: "C", Ts: s.Cycle, Pid: pidCounters, Tid: 0,
			Args: map[string]any{"waves": s.Waves, "reexecs": s.Reexecs, "flushes": s.Flushes}})
		add(chromeEvent{Name: "miss-rate", Ph: "C", Ts: s.Cycle, Pid: pidCounters, Tid: 0,
			Args: map[string]any{"l1d": s.L1DMissRate, "l2": s.L2MissRate}})
		add(chromeEvent{Name: "cpi", Ph: "C", Ts: s.Cycle, Pid: pidCounters, Tid: 0,
			Args: map[string]any{
				"commit": s.CPI.Commit, "wave": s.CPI.Wave, "bpred": s.CPI.BPred,
				"fetch": s.CPI.Fetch, "drain": s.CPI.Drain, "cache_miss": s.CPI.CacheMiss,
				"issue": s.CPI.Issue, "noc": s.CPI.NoC,
			}})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}

// waveEvent renders one recovery-wave lifetime span.
func waveEvent(tag uint64, seq, start, end int64, reexecs, ordinal int) chromeEvent {
	return chromeEvent{
		Name: fmt.Sprintf("wave t%d (b%d)", tag, seq), Cat: "wave",
		Ph: "X", Ts: start, Dur: dur(start, end),
		Pid: pidWaves, Tid: ordinal % waveLanes,
		Args: map[string]any{"tag": tag, "origin_block": seq, "reexecs": reexecs},
	}
}

// dur returns a strictly positive duration so zero-length stages remain
// visible in the viewer.
func dur(start, end int64) int64 {
	if end <= start {
		return 1
	}
	return end - start
}
