// Wave visualisation: run a conflict-heavy kernel under DSRE with the
// execution tracer attached and render the speculative waves — when first
// executions, re-executions, corrections, commits and squashes happened.
//
//	go run ./examples/wavevis [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	kernel := "cursor"
	if len(os.Args) > 1 {
		kernel = os.Args[1]
	}
	w, err := workload.Build(kernel, workload.Params{Size: 512})
	if err != nil {
		log.Fatal(err)
	}
	golden, err := w.RunEmulator(emu.Options{})
	if err != nil {
		log.Fatal(err)
	}

	for _, recovery := range []core.RecoveryScheme{core.RecoverDSRE, core.RecoverFlush} {
		cfg := sim.DefaultConfig()
		cfg.Policy = core.IssueAggressive
		cfg.Recovery = recovery
		mc, err := sim.New(cfg, w.Program, &w.Regs, w.Mem, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		col := &trace.Collector{}
		mc.SetTracer(col)
		res, err := mc.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s / aggressive+%s ==  IPC %.3f\n", kernel, recovery,
			float64(golden.Insts)/float64(res.Stats.Cycles))
		fmt.Print(col.Timeline(72))
		if recovery == core.RecoverDSRE {
			fmt.Println()
			fmt.Print(col.WaveReport(8))
		}
		fmt.Println()
	}
	fmt.Println("Reading the timelines: under DSRE, corrections and re-executions")
	fmt.Println("interleave with first executions and commits keep flowing; under")
	fmt.Println("flush, every violation shows up as a squash band and a refetch gap.")
}
