package sim

import (
	"math/bits"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/trace"
)

// enqueueReady sets an instruction's bit in its tile's ready masks if it
// can execute and is not already queued.
func (mc *Machine) enqueueReady(b *blockInst, idx int) {
	if b.queued.Test(idx) || !b.need.Test(idx) {
		return
	}
	in := &b.bdef.Insts[idx]
	if !b.operandsPresent(idx, in) {
		return
	}
	if en, ok := b.predEnabled(idx, in); !ok || !en {
		return
	}
	b.queued.Set(idx)
	tile := mc.instTile(b.blockID, idx)
	t := &mc.tiles[tile]
	slot := int(b.seq) & mc.tileRingMask
	m := &t.ready[slot]
	if m.Empty() {
		t.readyBlocks.Set(slot)
	}
	m.Set(idx)
	t.readyCount++
	mc.markTileActive(tile)
}

// stepTiles advances every tile with resident work and reports whether any
// tile did anything.  Tiles are visited in ascending index order — via the
// active mask normally, densely under SlowTick — so issue arbitration is
// identical either way.  No new tiles activate during the scan (activation
// happens in message handlers and at block map, both outside this phase);
// stepTile only clears its own tile's bit, so the word snapshot is safe.
func (mc *Machine) stepTiles() bool {
	progress := false
	if mc.cfg.SlowTick {
		for ti := range mc.tiles {
			if mc.stepTile(ti) {
				progress = true
			}
		}
		return progress
	}
	for w, word := range mc.tileActive {
		for word != 0 {
			ti := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if mc.stepTile(ti) {
				progress = true
			}
		}
	}
	return progress
}

// stepTile issues at most one instruction on one tile (oldest block first,
// then lowest index) and retires completed executions.  A tile whose queues
// both drain deactivates itself.
func (mc *Machine) stepTile(ti int) bool {
	t := &mc.tiles[ti]
	progress := false

	// Retire completions.
	if len(t.busy) > 0 {
		kept := t.busy[:0]
		for _, j := range t.busy {
			if j.completeAt > mc.cycle {
				kept = append(kept, j)
				continue
			}
			mc.completeExec(j)
			progress = true
		}
		t.busy = kept
	}

	// Issue one ready instruction.  Any queued work counts as progress: the
	// pop (or stale-credit drop) below mutates tile state, so a cycle is
	// only provably idle when every tile's issue stage is empty.
	if t.hasIssueWork() {
		progress = true
		var base int64
		if len(mc.window) > 0 {
			base = mc.window[0].seq
		}
		seq, idx, stale, _ := t.dequeueReady(base, mc.tileRingMask)
		if !stale {
			// Set bits always name live blocks (squash/commit reclaim them
			// eagerly), so the block lookup cannot miss.
			b := mc.blockAt(seq)
			b.queued.Clear(idx)
			// Readiness may have lapsed (e.g. predicate flipped since
			// enqueue).
			in := &b.bdef.Insts[idx]
			switch {
			case !b.need.Test(idx) || !b.operandsPresent(idx, in):
			default:
				if en, ok := b.predEnabled(idx, in); ok && en {
					b.need.Clear(idx)
					b.insts[idx].inflight++
					lat := mc.cfg.opLatency(in.Op)
					t.busy = append(t.busy, aluJob{
						completeAt: mc.cycle + int64(lat),
						frame:      b.frame, gen: b.gen, seq: seq, idx: idx,
					})
					mc.stats.Issued++
				}
			}
		}
	}

	if !t.hasIssueWork() && len(t.busy) == 0 {
		mc.tileActive[ti>>6] &^= 1 << (uint(ti) & 63)
	}
	return progress
}

// tileNext returns the earliest future cycle at which some tile has work to
// do: the minimum busy-job completion across active tiles.  After a null
// step every issue stage is empty (queued work would have been progress),
// so completions are the only pending tile events; a non-empty issue stage
// still forces the conservative answer out of caution.
func (mc *Machine) tileNext() int64 {
	next := int64(1) << 62
	for w, word := range mc.tileActive {
		for word != 0 {
			ti := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			t := &mc.tiles[ti]
			if t.hasIssueWork() {
				return mc.cycle + 1
			}
			for _, j := range t.busy {
				if j.completeAt < next {
					next = j.completeAt
				}
			}
		}
	}
	return next
}

// completeExec finishes one ALU execution: the result is computed from the
// *current* operand slots and broadcast to the instruction's targets.
func (mc *Machine) completeExec(j aluJob) {
	b := mc.blockAt(j.seq)
	if b == nil || b.frame != j.frame || b.gen != j.gen {
		return // squashed while executing
	}
	st := &b.insts[j.idx]
	in := &b.bdef.Insts[j.idx]
	st.inflight--

	// The predicate may have flipped mid-execution; the enqueue triggered
	// by that flip handles re-evaluation, this result is dead.
	if en, ok := b.predEnabled(j.idx, in); !ok || !en {
		return
	}
	if !b.operandsPresent(j.idx, in) {
		return
	}

	a := b.slot(j.idx, isa.SlotA).Value
	bv := b.slot(j.idx, isa.SlotB).Value
	outTag := core.Tag(0)
	for s := isa.SlotA; s < isa.NumSlots; s++ {
		if in.NeedsSlot(s) {
			outTag = core.MaxTag(outTag, b.slot(j.idx, s).Tag)
		}
	}

	st.fired++
	mc.stats.Executed++
	if st.fired > 1 {
		mc.stats.Reexecs++
		mc.wave.Reexecuted(outTag)
		if mc.tracer != nil {
			mc.tracer.Record(mc.cycle, trace.KindReexec, b.seq, j.idx, uint64(outTag))
		}
	} else if mc.tracer != nil {
		mc.tracer.Record(mc.cycle, trace.KindExec, b.seq, j.idx, uint64(outTag))
	}
	if mc.spans != nil {
		lat := int64(mc.cfg.opLatency(in.Op))
		mc.spans.RecordSpan(trace.SpanExec, b.seq, j.idx, uint64(outTag), mc.cycle-lat, mc.cycle)
	}

	committed := b.inputsCommitted(j.idx, in)
	src := mc.tiles[mc.instTile(b.blockID, j.idx)].node

	switch {
	case in.Op.IsLoad():
		addr := uint64(a + in.Imm)
		mc.send(src, mc.memNode(addr), message{
			kind: msgLoadReq, frame: b.frame, gen: b.gen, seq: b.seq,
			idx: uint8(j.idx), lsid: in.LSID, addr: addr, tag: outTag, committed: committed,
		})
		st.lastOut, st.outTag, st.execValid = int64(addr), outTag, true
	case in.Op.IsStore():
		addr := uint64(a + in.Imm)
		addrCom, dataCom := b.storeCommitFlags(j.idx, in)
		mc.send(src, mc.memNode(addr), message{
			kind: msgStoreReq, frame: b.frame, gen: b.gen, seq: b.seq,
			idx: uint8(j.idx), lsid: in.LSID, addr: addr, value: bv, tag: outTag,
			committed: committed, addrCom: addrCom, dataCom: dataCom,
		})
		st.sentAddrCom, st.sentDataCom = addrCom, dataCom
		st.lastOut, st.outTag, st.execValid = int64(addr)^bv, outTag, true
	case in.Op.IsBranch():
		target := in.Imm
		if in.Op == isa.OpBri {
			target = a
		}
		mc.send(src, mc.ctrlNode(), message{
			kind: msgBranch, frame: b.frame, gen: b.gen, seq: b.seq,
			idx: uint8(j.idx), value: target, tag: outTag, committed: committed,
		})
		st.lastOut, st.outTag, st.execValid = target, outTag, true
	default:
		v := isa.Eval(in.Op, a, bv, in.Imm)
		st.lastOut, st.outTag, st.execValid = v, outTag, true
		for _, tgt := range in.Targets {
			mc.routeTarget(b, tgt, v, outTag, committed, src, 0)
		}
	}
	if committed {
		st.committedSent = true
	}
}

// maybeEmitCommitOnly re-emits an instruction's (unchanged) output with the
// committed flag once all its inputs have committed without changing the
// value — the commit wave catching up to a speculative wave that was
// already correct.
func (mc *Machine) maybeEmitCommitOnly(b *blockInst, idx int) {
	st := &b.insts[idx]
	in := &b.bdef.Insts[idx]
	if st.committedSent || !st.execValid || b.need.Test(idx) || st.inflight > 0 {
		return
	}
	if en, ok := b.predEnabled(idx, in); !ok || !en {
		return
	}
	if !b.inputsCommitted(idx, in) {
		return
	}
	st.committedSent = true
	src := mc.tiles[mc.instTile(b.blockID, idx)].node
	switch {
	case in.Op.IsLoad():
		mc.send(src, mc.memNode(uint64(st.lastOut)), message{
			kind: msgLoadReq, frame: b.frame, gen: b.gen, seq: b.seq,
			idx: uint8(idx), lsid: in.LSID, addr: uint64(st.lastOut), tag: st.outTag, committed: true,
		})
	case in.Op.IsStore():
		a := b.slot(idx, isa.SlotA).Value
		d := b.slot(idx, isa.SlotB).Value
		mc.send(src, mc.memNode(uint64(a+in.Imm)), message{
			kind: msgStoreReq, frame: b.frame, gen: b.gen, seq: b.seq,
			idx: uint8(idx), lsid: in.LSID, addr: uint64(a + in.Imm), value: d, tag: st.outTag,
			committed: true, addrCom: true, dataCom: true,
		})
		st.sentAddrCom, st.sentDataCom = true, true
	case in.Op.IsBranch():
		mc.send(src, mc.ctrlNode(), message{
			kind: msgBranch, frame: b.frame, gen: b.gen, seq: b.seq,
			idx: uint8(idx), value: st.lastOut, tag: st.outTag, committed: true,
		})
	default:
		for _, tgt := range in.Targets {
			mc.routeTarget(b, tgt, st.lastOut, st.outTag, true, src, 0)
		}
	}
}

// maybeEmitStorePartial informs the LSQ when the commit wave has reached a
// store's address (or data) operand before the other: a committed,
// non-overlapping store address is what lets younger independent loads
// certify without waiting for this store's data.
func (mc *Machine) maybeEmitStorePartial(b *blockInst, idx int) {
	st := &b.insts[idx]
	in := &b.bdef.Insts[idx]
	if !in.Op.IsStore() || st.committedSent || !st.execValid || b.need.Test(idx) || st.inflight > 0 {
		return
	}
	if en, ok := b.predEnabled(idx, in); !ok || !en {
		return
	}
	addrCom, dataCom := b.storeCommitFlags(idx, in)
	if addrCom == st.sentAddrCom && dataCom == st.sentDataCom {
		return
	}
	st.sentAddrCom, st.sentDataCom = addrCom, dataCom
	a := b.slot(idx, isa.SlotA).Value
	d := b.slot(idx, isa.SlotB).Value
	src := mc.commitSrc(mc.tiles[mc.instTile(b.blockID, idx)].node)
	mc.send(src, mc.memNode(uint64(a+in.Imm)), message{
		kind: msgStoreReq, frame: b.frame, gen: b.gen, seq: b.seq,
		idx: uint8(idx), lsid: in.LSID, addr: uint64(a + in.Imm), value: d, tag: st.outTag,
		committed: addrCom && dataCom, addrCom: addrCom, dataCom: dataCom,
	})
}

// maybeNullify handles a predicated instruction whose predicate resolved to
// the disabling value: stores must tell the LSQ (so dependent loads revert
// and, when the predicate is final, the block's store count can commit).
func (mc *Machine) maybeNullify(b *blockInst, idx int) {
	st := &b.insts[idx]
	in := &b.bdef.Insts[idx]
	if in.Pred == isa.PredNone || !in.Op.IsStore() {
		return
	}
	p := b.slot(idx, isa.SlotP)
	if !p.Present {
		return
	}
	if en, _ := b.predEnabled(idx, in); en {
		return
	}
	// Send at most once per predicate version, plus once for the commit.
	if p.Committed {
		if st.nullCommSent {
			return
		}
		st.nullCommSent = true
	} else {
		if st.nullSent && st.nullTag == p.Tag {
			return
		}
		st.nullSent, st.nullTag = true, p.Tag
	}
	src := mc.tiles[mc.instTile(b.blockID, idx)].node
	mc.send(src, mc.memNode(0), message{
		kind: msgStoreNull, frame: b.frame, gen: b.gen, seq: b.seq,
		idx: uint8(idx), lsid: in.LSID, committed: p.Committed,
	})
}
