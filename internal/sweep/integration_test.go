package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro"
)

// tinyGrid is a real but fast grid: two kernels, three schemes.
func tinyGrid() []JobSpec {
	var specs []JobSpec
	for _, w := range []string{"vecsum", "histogram"} {
		for _, s := range []string{"storeset+flush", "dsre", "oracle"} {
			specs = append(specs, JobSpec{Workload: w, Size: 256, Scheme: s})
		}
	}
	return specs
}

// TestEngineMatchesSequential pins the tentpole invariant: the parallel,
// memoized sweep path produces byte-identical reports to sequential
// repro.Run for every point.
func TestEngineMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	specs := tinyGrid()
	eng := New(Options{Workers: 4})
	sum, err := eng.Run(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	reps, err := sum.Reports()
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range specs {
		seq, err := repro.Run(s.Config())
		if err != nil {
			t.Fatalf("%s: sequential run: %v", s.Name(), err)
		}
		want, err := seq.Report().Marshal()
		if err != nil {
			t.Fatal(err)
		}
		// The engine stamps host wall time onto its reports; it measures the
		// harness, not the machine, and is nondeterministic by nature.
		reps[i].SimWallMS, reps[i].McyclesPerSec = 0, 0
		got, err := reps[i].Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: sweep report diverged from sequential run:\n--- sweep\n%s\n--- sequential\n%s", s.Name(), got, want)
		}
	}
}

// TestEngineRealCacheRoundTrip runs a real grid twice against one store:
// the second run must be pure cache hits with byte-identical payloads.
func TestEngineRealCacheRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	specs := tinyGrid()

	run := func() *Summary {
		eng := New(Options{Workers: 4, Store: st, Timeout: 5 * time.Minute})
		sum, err := eng.Run(context.Background(), specs)
		if err != nil {
			t.Fatal(err)
		}
		if sum.Failed != 0 {
			t.Fatalf("failed jobs: %s", sum.FirstError())
		}
		return sum
	}
	first := run()
	if first.CacheHits != 0 {
		t.Fatalf("first run had %d cache hits in a fresh store", first.CacheHits)
	}
	second := run()
	if second.CacheHits != len(specs) {
		t.Fatalf("second run: %d/%d cache hits", second.CacheHits, len(specs))
	}
	for i := range specs {
		a, _ := json.Marshal(first.Jobs[i].Report)
		b, _ := json.Marshal(second.Jobs[i].Report)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: cached payload differs from computed payload", specs[i].Name())
		}
	}
}

// TestRunContextCancelsSimulation covers the context satellite end to end:
// an already-cancelled context stops a real simulation at a cycle boundary.
func TestRunContextCancelsSimulation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := repro.RunContext(ctx, repro.Config{Workload: "vecsum", Size: 256})
	if err == nil || !strings.Contains(err.Error(), "cancel") {
		t.Fatalf("cancelled RunContext = %v, want cancellation error", err)
	}
}
