package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Grid is the declarative cross-product form of a sweep, the JSON accepted
// by dsre-sweep -grid.  Every listed axis multiplies the grid; an empty
// axis contributes the default (zero) value.  Explicit Specs are appended
// after the expansion, so a grid file can mix a cross product with
// hand-picked extra points.
type Grid struct {
	Workloads []string `json:"workloads,omitempty"`
	Schemes   []string `json:"schemes,omitempty"`
	Sizes     []int    `json:"sizes,omitempty"`
	Unrolls   []int    `json:"unrolls,omitempty"`
	Seeds     []uint64 `json:"seeds,omitempty"`

	Frames              []int    `json:"frames,omitempty"`
	GridWidths          []int    `json:"grid_widths,omitempty"`
	GridHeights         []int    `json:"grid_heights,omitempty"`
	HopLatencies        []int    `json:"hop_latencies,omitempty"`
	LinkBandwidths      []int    `json:"link_bandwidths,omitempty"`
	StoreSetSizes       []int    `json:"store_set_sizes,omitempty"`
	MemLatencies        []int    `json:"mem_latencies,omitempty"`
	DTileBanks          []int    `json:"dtile_banks,omitempty"`
	LSQCapacities       []int    `json:"lsq_capacities,omitempty"`
	BlockPredictors     []string `json:"block_predictors,omitempty"`
	Placements          []string `json:"placements,omitempty"`
	ValuePredict        []bool   `json:"value_predict,omitempty"`
	CommitTokensFree    []bool   `json:"commit_tokens_free,omitempty"`
	NoSuppressIdentical []bool   `json:"no_suppress_identical,omitempty"`

	// SampleEvery applies to every expanded point (not an axis: sampling
	// is an observability knob, not a design-space dimension).
	SampleEvery int `json:"sample_every,omitempty"`

	// Specs are explicit extra points appended after the cross product.
	Specs []JobSpec `json:"specs,omitempty"`
}

// cross multiplies the running spec list by one axis.
func cross[T any](in []JobSpec, vals []T, set func(*JobSpec, T)) []JobSpec {
	if len(vals) == 0 {
		return in
	}
	out := make([]JobSpec, 0, len(in)*len(vals))
	for _, s := range in {
		for _, v := range vals {
			c := s
			set(&c, v)
			out = append(out, c)
		}
	}
	return out
}

// Expand produces the grid's job specs: the full cross product of the
// populated axes (workloads vary slowest, in field order), then the
// explicit Specs.
func (g Grid) Expand() ([]JobSpec, error) {
	if len(g.Workloads) == 0 && len(g.Specs) == 0 {
		return nil, fmt.Errorf("sweep: grid names no workloads and no explicit specs")
	}
	var specs []JobSpec
	if len(g.Workloads) > 0 {
		specs = []JobSpec{{SampleEvery: g.SampleEvery}}
		specs = cross(specs, g.Workloads, func(s *JobSpec, v string) { s.Workload = v })
		specs = cross(specs, g.Schemes, func(s *JobSpec, v string) { s.Scheme = v })
		specs = cross(specs, g.Sizes, func(s *JobSpec, v int) { s.Size = v })
		specs = cross(specs, g.Unrolls, func(s *JobSpec, v int) { s.Unroll = v })
		specs = cross(specs, g.Seeds, func(s *JobSpec, v uint64) { s.Seed = v })
		specs = cross(specs, g.Frames, func(s *JobSpec, v int) { s.Frames = v })
		specs = cross(specs, g.GridWidths, func(s *JobSpec, v int) { s.GridWidth = v })
		specs = cross(specs, g.GridHeights, func(s *JobSpec, v int) { s.GridHeight = v })
		specs = cross(specs, g.HopLatencies, func(s *JobSpec, v int) { s.HopLatency = v })
		specs = cross(specs, g.LinkBandwidths, func(s *JobSpec, v int) { s.LinkBandwidth = v })
		specs = cross(specs, g.StoreSetSizes, func(s *JobSpec, v int) { s.StoreSetSize = v })
		specs = cross(specs, g.MemLatencies, func(s *JobSpec, v int) { s.MemLatency = v })
		specs = cross(specs, g.DTileBanks, func(s *JobSpec, v int) { s.DTileBanks = v })
		specs = cross(specs, g.LSQCapacities, func(s *JobSpec, v int) { s.LSQCapacity = v })
		specs = cross(specs, g.BlockPredictors, func(s *JobSpec, v string) { s.BlockPredictor = v })
		specs = cross(specs, g.Placements, func(s *JobSpec, v string) { s.Placement = v })
		specs = cross(specs, g.ValuePredict, func(s *JobSpec, v bool) { s.ValuePredict = v })
		specs = cross(specs, g.CommitTokensFree, func(s *JobSpec, v bool) { s.CommitTokensFree = v })
		specs = cross(specs, g.NoSuppressIdentical, func(s *JobSpec, v bool) { s.NoSuppressIdentical = v })
	}
	specs = append(specs, g.Specs...)
	return specs, nil
}

// ReadGrid loads a grid definition from a JSON file, rejecting unknown
// fields so a typoed axis name fails loudly instead of silently sweeping
// nothing.
func ReadGrid(path string) (*Grid, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var g Grid
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&g); err != nil {
		return nil, fmt.Errorf("sweep: parse grid %s: %w", path, err)
	}
	return &g, nil
}
