package lsq

import (
	"repro/internal/core"
	"repro/internal/predictor"
)

// LoadResult is the outcome of a load issue attempt.
type LoadResult struct {
	Deferred bool
	Reason   DeferReason
	Value    int64
	Tag      core.Tag
	Latency  int
	PC       predictor.PC // static identity, for value-predictor training
}

// LoadTry records a load execution (the address arriving at the LSQ) and
// attempts to issue it under the configured policy.  Re-executions of the
// same load (a new address under DSRE) re-enter here and produce a fresh
// reply.  now is the current cycle, used for MSHR accounting.
func (q *Queue) LoadTry(now int64, k Key, addr uint64, tag core.Tag) LoadResult {
	e := q.get(k)
	if e == nil || e.isStore {
		return LoadResult{Deferred: true, Reason: DeferNone} // stale message for a squashed block
	}
	first := !e.hasExec
	e.hasExec = true
	e.addr = addr
	if first {
		q.Stats.Loads++
	}
	// Tag of the reply: never older than anything already sent for this
	// load, so consumers accept the newest execution.
	e.tag = core.MaxTag(e.tag, tag)
	return q.tryIssue(now, e)
}

// tryIssue applies the policy and, if permitted, produces the load's value.
func (q *Queue) tryIssue(now int64, e *entry) LoadResult {
	if reason := q.mustDefer(e); reason != DeferNone {
		if !e.deferred {
			e.deferred = true
			q.deferred = append(q.deferred, e.key)
		}
		if reason == DeferPolicy {
			q.Stats.DeferredPolicy++
		} else {
			q.Stats.DeferredMSHR++
		}
		return LoadResult{Deferred: true, Reason: reason}
	}
	v, fwd := q.reconstruct(e.key, e.addr, e.size)
	lat := q.cfg.ForwardLatency
	if fwd == e.size {
		q.Stats.Forwards++
	} else {
		clat, ok := q.hier.DataAccess(now, e.addr, false)
		if !ok {
			// All MSHRs busy: park and retry as time passes.
			if !e.deferred {
				e.deferred = true
				q.deferred = append(q.deferred, e.key)
			}
			q.mshrWait = true
			q.Stats.DeferredMSHR++
			return LoadResult{Deferred: true, Reason: DeferMSHR}
		}
		if clat > lat {
			lat = clat
		}
		if fwd > 0 {
			q.Stats.PartialForwards++
		}
	}
	e.issued = true
	e.deferred = false
	e.data = v
	// Issuing is one of the conditions certification waits on.
	q.certDirty = true
	return LoadResult{Value: v, Tag: e.tag, Latency: lat, PC: e.pc}
}

// GuardLoad marks a flushed violating load: its replayed instance (same
// dynamic key) issues conservatively, guaranteeing forward progress.
func (q *Queue) GuardLoad(k Key) {
	q.guard[k] = true
	q.Stats.GuardedLoads++
}

// mustDefer evaluates the issue policy for a load whose address is known.
func (q *Queue) mustDefer(e *entry) DeferReason {
	if q.guard[e.key] && q.anyOlderStoreUnexecuted(e.key) {
		return DeferPolicy
	}
	switch q.cfg.Policy {
	case core.IssueAggressive:
		return DeferNone
	case core.IssueConservative:
		if q.anyOlderStoreUnexecuted(e.key) {
			return DeferPolicy
		}
		return DeferNone
	case core.IssueStoreSet, core.IssueOracle:
		if !e.waitValid || !e.waitFor.Valid() {
			return DeferNone
		}
		w := Key{Seq: e.waitFor.Seq, LSID: e.waitFor.LSID}
		if !w.Less(e.key) {
			return DeferNone // not actually older; ignore
		}
		s := q.get(w)
		if s == nil || !s.isStore || s.hasExec {
			return DeferNone // gone from the window, or already executed
		}
		return DeferPolicy
	}
	return DeferNone
}

// anyOlderStoreUnexecuted reports whether some store older than k in the
// window has not yet executed.
func (q *Queue) anyOlderStoreUnexecuted(k Key) bool {
	for _, b := range q.blocks {
		if b.seq > k.Seq {
			return false
		}
		for i := range b.ops {
			s := &b.ops[i]
			if !s.isStore || !s.key.Less(k) {
				continue
			}
			if !s.hasExec {
				return true
			}
		}
	}
	return false
}

// HasReadyWork reports whether the next TakeReady call will re-evaluate
// parked loads (as opposed to returning immediately).  The event-driven
// run loop uses it to classify a cycle as active: a re-evaluation scan can
// issue loads or count deferral retries even when it returns nothing.
func (q *Queue) HasReadyWork() bool {
	return (q.dirty || q.mshrWait) && len(q.deferred) > 0
}

// TakeReady re-evaluates parked loads and returns those that can now issue,
// appending into buf (pass buf[:0] to reuse a scratch buffer; the result
// must be consumed before the next call).  Call once per cycle; it is cheap
// when nothing changed.  Loads parked on a full MSHR file are retried every
// cycle regardless of queue events.
func (q *Queue) TakeReady(now int64, buf []ReadyLoad) []ReadyLoad {
	if !q.HasReadyWork() {
		q.dirty = false
		return buf
	}
	q.dirty = false
	q.mshrWait = false
	out := buf
	kept := q.deferred[:0]
	for _, k := range q.deferred {
		e := q.get(k)
		if e == nil || !e.deferred {
			continue // squashed or already issued
		}
		r := q.tryIssue(now, e)
		if r.Deferred {
			kept = append(kept, k)
			continue
		}
		out = append(out, ReadyLoad{Load: k, Addr: e.addr, Res: r})
	}
	q.deferred = kept
	return out
}

// LoadInputsCommitted marks that the load's address operands are final (the
// commit wave reached its inputs); the load becomes a certification
// candidate.
func (q *Queue) LoadInputsCommitted(k Key) {
	e := q.get(k)
	if e == nil || e.isStore || e.inputsCommitted {
		return
	}
	e.inputsCommitted = true
	q.certCand = append(q.certCand, k)
	q.dirty = true
	q.certDirty = true
}

// CertifiedLoad is a load whose value is final.
type CertifiedLoad struct {
	Load  Key
	Addr  uint64
	Value int64
}

// TakeCertifiable returns loads that are newly certifiable: issued, address
// final, and every older store committed — appending into buf (pass buf[:0]
// to reuse a scratch buffer).  The returned value is asserted equal to the
// load's current value — every store update re-checked younger loads, so a
// mismatch here would be a protocol bug.
func (q *Queue) TakeCertifiable(buf []CertifiedLoad) []CertifiedLoad {
	if len(q.certCand) == 0 || !q.certDirty {
		// Nothing to certify, or nothing relevant changed since the last
		// scan: skipping is behaviour-identical (a yield-less scan moves no
		// statistics) and avoids the O(candidates × stores) walk.
		return buf
	}
	q.certDirty = false
	out := buf
	kept := q.certCand[:0]
	for _, k := range q.certCand {
		e := q.get(k)
		if e == nil {
			continue
		}
		if e.certified {
			continue
		}
		if !e.issued || !q.olderStoresSafe(e) {
			kept = append(kept, k)
			continue
		}
		v, _ := q.reconstruct(k, e.addr, e.size)
		if v != e.data {
			panic("lsq: certification value mismatch for " + k.String() + " (missed violation)")
		}
		e.certified = true
		out = append(out, CertifiedLoad{Load: k, Addr: e.addr, Value: v})
	}
	q.certCand = kept
	return out
}

// olderStoresSafe reports whether no older store can still change the
// load's value: every older store is either fully committed, or has a
// committed (final) address that provably does not overlap the load.  The
// second case is what keeps the commit wave's memory leg from serialising
// on false dependences: only true aliases wait for store data.
func (q *Queue) olderStoresSafe(l *entry) bool {
	k := l.key
	for _, b := range q.blocks {
		if b.seq > k.Seq {
			return true
		}
		inOwn := b.seq == k.Seq
		if !inOwn && b.uncommittedStores == 0 {
			continue
		}
		for i := range b.ops {
			s := &b.ops[i]
			if !s.isStore || !s.key.Less(k) {
				if inOwn && !s.key.Less(k) {
					break
				}
				continue
			}
			if s.committed {
				continue
			}
			if s.addrCommitted && s.hasExec && !s.null && !overlap(s.addr, s.size, l.addr, l.size) {
				continue
			}
			return false
		}
	}
	return true
}

// Occupancy returns the number of resident entries (for stats).
func (q *Queue) Occupancy() int { return q.occupancy() }

// MarkDirty forces deferred-load re-evaluation on the next TakeReady (used
// by the simulator after events the queue cannot see, e.g. MSHR drain).
func (q *Queue) MarkDirty() { q.dirty = true }
