package lint

import (
	"path"
	"sort"
)

// SummaryRow is one cell of the -fix-report triage table: how many
// diagnostics one analyzer raised in one package.
type SummaryRow struct {
	Analyzer string
	Package  string
	Count    int
}

// Summarize groups diagnostics by (analyzer, package directory), sorted by
// analyzer then package, for the one-screen triage table.
func Summarize(diags []Diag) []SummaryRow {
	counts := map[SummaryRow]int{}
	for _, d := range diags {
		pkg := path.Dir(d.File)
		if pkg == "." || pkg == "" {
			pkg = "(root)"
		}
		counts[SummaryRow{Analyzer: d.Analyzer, Package: pkg}]++
	}
	rows := make([]SummaryRow, 0, len(counts))
	for k, n := range counts {
		k.Count = n
		rows = append(rows, k)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Analyzer != rows[j].Analyzer {
			return rows[i].Analyzer < rows[j].Analyzer
		}
		return rows[i].Package < rows[j].Package
	})
	return rows
}
