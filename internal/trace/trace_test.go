package trace

import (
	"strings"
	"testing"
)

func TestCollectorRecordsAndCaps(t *testing.T) {
	c := &Collector{Cap: 3}
	for i := 0; i < 5; i++ {
		c.Record(int64(i), KindExec, 0, i, 0)
	}
	if len(c.Events) != 3 || c.Dropped != 2 {
		t.Fatalf("events=%d dropped=%d", len(c.Events), c.Dropped)
	}
}

func TestCounts(t *testing.T) {
	c := &Collector{}
	c.Record(1, KindExec, 0, 0, 0)
	c.Record(2, KindExec, 0, 1, 0)
	c.Record(3, KindReexec, 0, 0, 7)
	got := c.Counts()
	if got[KindExec] != 2 || got[KindReexec] != 1 {
		t.Errorf("counts = %v", got)
	}
}

func TestTimelineRendering(t *testing.T) {
	c := &Collector{}
	for i := int64(0); i < 100; i++ {
		c.Record(i, KindExec, 0, 0, 0)
	}
	c.Record(50, KindCorrection, 1, 2, 9)
	s := c.Timeline(40)
	if !strings.Contains(s, "exec") || !strings.Contains(s, "correction") {
		t.Errorf("timeline missing rows:\n%s", s)
	}
	if !strings.Contains(s, "cycles 0..99") {
		t.Errorf("timeline missing range:\n%s", s)
	}
	// Kinds with no events are omitted.
	if strings.Contains(s, "squash") {
		t.Errorf("empty kind rendered:\n%s", s)
	}
	if (&Collector{}).Timeline(40) != "(no events)\n" {
		t.Error("empty collector rendering")
	}
}

func TestWaveReport(t *testing.T) {
	c := &Collector{}
	c.Record(10, KindCorrection, 3, 5, 1)
	c.Record(11, KindReexec, 3, 6, 1)
	c.Record(12, KindReexec, 3, 7, 1)
	c.Record(20, KindCorrection, 4, 5, 2)
	s := c.WaveReport(10)
	if !strings.Contains(s, "2 recovery waves") {
		t.Errorf("report:\n%s", s)
	}
	if !strings.Contains(s, "re-executions=2") {
		t.Errorf("wave 1 attribution missing:\n%s", s)
	}
	if (&Collector{}).WaveReport(5) != "(no recovery waves)\n" {
		t.Error("empty wave report")
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindExec; k <= KindBlockSquash; k++ {
		if k.String() == "?" {
			t.Errorf("kind %d unnamed", k)
		}
	}
}

func TestSpansRecordAndCap(t *testing.T) {
	c := &Collector{Cap: 2}
	c.RecordSpan(SpanFetch, 0, 4, 0, 0, 9)
	c.RecordSpan(SpanBlock, 0, 4, 0, 9, 25)
	c.RecordSpan(SpanExec, 0, 3, 7, 9, 10)
	if len(c.Spans) != 2 || c.SpansDropped != 1 {
		t.Fatalf("spans=%d dropped=%d", len(c.Spans), c.SpansDropped)
	}
	if c.Spans[0].Kind != SpanFetch || c.Spans[0].End != 9 {
		t.Errorf("span 0 = %+v", c.Spans[0])
	}
}

func TestReset(t *testing.T) {
	c := &Collector{Cap: 2}
	for i := 0; i < 4; i++ {
		c.Record(int64(i), KindExec, 0, i, 0)
		c.RecordSpan(SpanExec, 0, i, 0, int64(i), int64(i+1))
	}
	if c.Dropped == 0 || c.SpansDropped == 0 {
		t.Fatal("expected drops before reset")
	}
	evCap, spCap := cap(c.Events), cap(c.Spans)
	c.Reset()
	if len(c.Events) != 0 || len(c.Spans) != 0 || c.Dropped != 0 || c.SpansDropped != 0 {
		t.Fatalf("after Reset: %+v", c)
	}
	if cap(c.Events) != evCap || cap(c.Spans) != spCap {
		t.Error("Reset reallocated backing arrays")
	}
	// The collector must be fully usable again.
	c.Record(9, KindExec, 1, 0, 0)
	if len(c.Events) != 1 {
		t.Error("record after Reset failed")
	}
}

func TestSpanKindStrings(t *testing.T) {
	for k := SpanFetch; k <= SpanWave; k++ {
		if k.String() == "?" {
			t.Errorf("span kind %d unnamed", k)
		}
	}
}
