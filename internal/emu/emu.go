// Package emu is the architectural emulator for EDGE programs: a simple
// in-order golden model that defines the correct final state every cycle
// simulator run must reproduce, regardless of speculation and recovery
// scheme.
//
// Besides architectural results, the emulator produces two artifacts the
// evaluation needs:
//
//   - the perfect-oracle table: for each dynamic load, the dynamic store
//     (if any) that most recently wrote an overlapping byte.  The Oracle
//     dependence predictor (internal/predictor) is driven by this table,
//     implementing the paper's "perfect oracle directing the issue of
//     loads";
//   - a dynamic profile (instruction mix, store→load dependence distance
//     histogram) used to characterise workloads.
package emu

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
)

// MemRef identifies a dynamic memory operation by the dynamic block sequence
// number it belongs to and its load/store ID within the block.  Block
// sequence numbers count committed blocks from zero, so they are identical
// between the emulator and any correct simulator run.
type MemRef struct {
	BlockSeq int64
	LSID     int8
}

// String renders the reference for diagnostics.
func (r MemRef) String() string { return fmt.Sprintf("b%d.ls%d", r.BlockSeq, r.LSID) }

// Options configures a Run.
type Options struct {
	// MaxBlocks bounds execution; exceeding it is an error (runaway loop).
	// Zero means DefaultMaxBlocks.
	MaxBlocks int64
	// CollectOracle records, for each dynamic load, its most recent
	// conflicting dynamic store.
	CollectOracle bool
	// TraceBlocks records the committed block-ID sequence (for debugging
	// simulator divergence).  Zero disables; otherwise at most TraceBlocks
	// entries are kept.
	TraceBlocks int
	// TraceStores records every dynamic store's final address and data,
	// keyed by MemRef — the golden reference used by simulator tests to
	// validate each drained store at its source.
	TraceStores bool
}

// StoreRecord is one dynamic store in the golden trace.
type StoreRecord struct {
	Addr uint64
	Data int64
	Size int
}

// DefaultMaxBlocks bounds emulation when Options.MaxBlocks is zero.
const DefaultMaxBlocks = 4 << 20

// Result is the outcome of an emulation.
type Result struct {
	Regs   [isa.NumRegs]int64
	Mem    *mem.Memory
	Blocks int64 // committed (executed) blocks
	Insts  int64 // fired instructions, the IPC numerator used everywhere
	Loads  int64
	Stores int64

	// Oracle maps each dynamic load to the dynamic store that most recently
	// wrote an overlapping byte.  Loads with no conflicting store in the
	// run's history are absent.  Populated when Options.CollectOracle.
	Oracle map[MemRef]MemRef

	// DepDistance histograms store→load dependence distances, measured in
	// dynamic memory operations between the store and the dependent load.
	// Bucket i counts distances in [2^i, 2^(i+1)).  Populated when
	// Options.CollectOracle.
	DepDistance [24]int64

	// BlockTrace is the committed block-ID sequence, when requested.
	BlockTrace []int

	// StoreTrace is the golden store trace, when requested.
	StoreTrace map[MemRef]StoreRecord
}

// Run executes the program from the given initial state.  The initial
// registers and memory are not modified; the Result holds copies.
func Run(p *isa.Program, regs *[isa.NumRegs]int64, m *mem.Memory, opt Options) (*Result, error) {
	e := &emulator{
		p:   p,
		m:   m.Clone(),
		opt: opt,
	}
	if regs != nil {
		e.regs = *regs
	}
	if e.opt.MaxBlocks == 0 {
		e.opt.MaxBlocks = DefaultMaxBlocks
	}
	if opt.CollectOracle {
		e.oracle = make(map[MemRef]MemRef)
		e.lastWriter = make(map[uint64]writerInfo)
	}
	if opt.TraceStores {
		e.storeTrace = make(map[MemRef]StoreRecord)
	}
	if err := e.run(); err != nil {
		return nil, err
	}
	res := &Result{
		Regs:   e.regs,
		Mem:    e.m,
		Blocks: e.blocks,
		Insts:  e.insts,
		Loads:  e.loads,
		Stores: e.stores,
		Oracle: e.oracle,
	}
	res.DepDistance = e.depDist
	res.BlockTrace = e.trace
	res.StoreTrace = e.storeTrace
	return res, nil
}

type writerInfo struct {
	ref    MemRef
	memSeq int64 // dynamic memory-op sequence number of the writer
}

type emulator struct {
	p    *isa.Program
	m    *mem.Memory
	regs [isa.NumRegs]int64
	opt  Options

	blocks int64
	insts  int64
	loads  int64
	stores int64
	memSeq int64

	oracle     map[MemRef]MemRef
	storeTrace map[MemRef]StoreRecord
	lastWriter map[uint64]writerInfo
	depDist    [24]int64
	trace      []int
}

func (e *emulator) run() error {
	cur := e.p.Entry
	for {
		if e.blocks >= e.opt.MaxBlocks {
			return fmt.Errorf("emu: block budget %d exhausted at block %d (runaway loop?)", e.opt.MaxBlocks, cur)
		}
		b := e.p.Block(cur)
		if b == nil {
			return fmt.Errorf("emu: branch to nonexistent block %d", cur)
		}
		next, err := e.execBlock(b)
		if err != nil {
			return fmt.Errorf("emu: block %d %q (seq %d): %w", b.ID, b.Name, e.blocks, err)
		}
		if e.opt.TraceBlocks > 0 && len(e.trace) < e.opt.TraceBlocks {
			e.trace = append(e.trace, b.ID)
		}
		e.blocks++
		if next == isa.HaltTarget {
			return nil
		}
		cur = next
	}
}

// operand is one operand slot during a block execution.
type operand struct {
	val     int64
	present bool
	dups    int
}

func (e *emulator) execBlock(b *isa.Block) (next int, err error) {
	seq := e.blocks
	slots := make([][isa.NumSlots]operand, len(b.Insts))
	writes := make([]operand, len(b.Writes))
	var branch operand
	branchTaken := false

	deliver := func(ts []isa.Target, v int64) error {
		for _, t := range ts {
			switch t.Kind {
			case isa.TargetWrite:
				w := &writes[t.Index]
				if w.present {
					return fmt.Errorf("write slot %d received two values", t.Index)
				}
				w.val, w.present = v, true
			case isa.TargetInst:
				s := &slots[t.Index][t.Slot]
				if s.present {
					return fmt.Errorf("operand %s received two values", t)
				}
				s.val, s.present = v, true
			}
		}
		return nil
	}

	for _, r := range b.Reads {
		if err := deliver(r.Targets, e.regs[r.Reg]); err != nil {
			return 0, fmt.Errorf("read r%d: %w", r.Reg, err)
		}
	}

	for i := range b.Insts {
		in := &b.Insts[i]
		get := func(s isa.Slot) (int64, error) {
			o := &slots[i][s]
			if !o.present {
				return 0, fmt.Errorf("i%d (%s): operand %s missing", i, in.Op, s)
			}
			return o.val, nil
		}
		var a, bv, pv int64
		if in.NeedsSlot(isa.SlotA) {
			if a, err = get(isa.SlotA); err != nil {
				return 0, err
			}
		}
		if in.NeedsSlot(isa.SlotB) {
			if bv, err = get(isa.SlotB); err != nil {
				return 0, err
			}
		}
		if in.Pred != isa.PredNone {
			if pv, err = get(isa.SlotP); err != nil {
				return 0, err
			}
			if (in.Pred == isa.PredTrue) != (pv != 0) {
				continue // nullified: fires nothing
			}
		}
		e.insts++
		switch {
		case in.Op.IsLoad():
			addr := uint64(a + in.Imm)
			size := in.Op.MemSize()
			v := e.m.Read(addr, size)
			e.loads++
			if e.oracle != nil {
				e.recordLoad(MemRef{seq, in.LSID}, addr, size)
			}
			e.memSeq++
			if err := deliver(in.Targets, v); err != nil {
				return 0, fmt.Errorf("i%d: %w", i, err)
			}
		case in.Op.IsStore():
			addr := uint64(a + in.Imm)
			size := in.Op.MemSize()
			e.m.Write(addr, bv, size)
			e.stores++
			if e.storeTrace != nil {
				e.storeTrace[MemRef{seq, in.LSID}] = StoreRecord{Addr: addr, Data: bv, Size: size}
			}
			if e.oracle != nil {
				e.recordStore(MemRef{seq, in.LSID}, addr, size)
			}
			e.memSeq++
		case in.Op.IsBranch():
			t := in.Imm
			if in.Op == isa.OpBri {
				t = a
			}
			if branchTaken {
				return 0, fmt.Errorf("i%d: second branch fired", i)
			}
			branchTaken = true
			branch.val = t
		default:
			v := isa.Eval(in.Op, a, bv, in.Imm)
			if err := deliver(in.Targets, v); err != nil {
				return 0, fmt.Errorf("i%d: %w", i, err)
			}
		}
	}

	if !branchTaken {
		return 0, fmt.Errorf("no branch fired")
	}
	for w := range writes {
		if !writes[w].present {
			return 0, fmt.Errorf("write slot %d (r%d) received no value", w, b.Writes[w].Reg)
		}
	}
	for w := range writes {
		e.regs[b.Writes[w].Reg] = writes[w].val
	}
	next = int(branch.val)
	if next != isa.HaltTarget && (next < 0 || next >= len(e.p.Blocks)) {
		return 0, fmt.Errorf("branch to out-of-range block %d", next)
	}
	return next, nil
}

func (e *emulator) recordStore(ref MemRef, addr uint64, size int) {
	wi := writerInfo{ref: ref, memSeq: e.memSeq}
	for i := 0; i < size; i++ {
		e.lastWriter[addr+uint64(i)] = wi
	}
}

func (e *emulator) recordLoad(ref MemRef, addr uint64, size int) {
	var best writerInfo
	found := false
	for i := 0; i < size; i++ {
		if wi, ok := e.lastWriter[addr+uint64(i)]; ok {
			if !found || wi.memSeq > best.memSeq {
				best, found = wi, true
			}
		}
	}
	if !found {
		return
	}
	e.oracle[ref] = best.ref
	d := e.memSeq - best.memSeq
	bucket := 0
	for d > 1 && bucket < len(e.depDist)-1 {
		d >>= 1
		bucket++
	}
	e.depDist[bucket]++
}
