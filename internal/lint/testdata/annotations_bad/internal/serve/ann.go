// Package serve carries broken //lint: annotations: the audit fixture.
package serve

import "time"

// Spin blocks forever; its escape is missing the justification.
func Spin(stop chan struct{}) {
	//lint:ctxcheck
	for {
		<-stop
		time.Sleep(time.Millisecond)
	}
}

// Idle no longer blocks, so its escape is stale.
func Idle() int {
	total := 0
	//lint:ctxcheck — kept for a loop that no longer blocks
	for i := 0; i < 3; i++ {
		total += i
	}
	return total
}

// Typo carries a misspelled annotation name.
func Typo() {
	//lint:lockchek — the name is misspelled
	_ = 0
}
