package sim

import (
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/lsq"
	"repro/internal/predictor"
	"repro/internal/trace"
)

// codeBase is the synthetic address where block code lives for I-cache
// timing purposes (each block occupies 512 bytes: 128 4-byte instructions).
const codeBase = 0x4000_0000

// predictNext returns the predicted successor of the block at seq.
func (mc *Machine) predictNext(seq int64, blockID int) int {
	if pp, ok := mc.bpred.(*perfectPred); ok {
		pp.seq = seq + 1
	}
	return mc.bpred.predict(blockID)
}

// trainPredictor records a block's final branch outcome at commit.
func (mc *Machine) trainPredictor(blockID, actual int) {
	mc.bpred.train(blockID, actual)
}

// fetchTargetNow computes which block should be fetched next, preferring a
// resolved (possibly still speculative) branch outcome of the youngest
// in-flight block over prediction.
func (mc *Machine) fetchTargetNow() (seq int64, blockID int, ok bool) {
	seq = mc.nextSeq
	if len(mc.window) == 0 {
		return seq, mc.resumeID, true
	}
	y := mc.window[len(mc.window)-1]
	if y.seq+1 != seq {
		// The youngest mapped block is not the predecessor of nextSeq only
		// while a fetch is pending; callers check fetch.active first.
		return 0, 0, false
	}
	if y.branch.Present {
		return seq, int(y.branch.Value), true
	}
	return seq, mc.predictNext(y.seq, y.blockID), true
}

// fetchAction classifies what stepFetch did in a cycle.  The run loop keeps
// the last action so an idle-gap fast-forward can replicate it: every
// non-progress action depends only on state that is frozen during a null
// cycle (the window, frame occupancy, LSQ occupancy, and the pure
// next-block prediction), so the same action — including its stall-counter
// increment — would recur on every skipped cycle.
type fetchAction int

const (
	// fetchIdle: nothing to fetch (halted, halt-predicted, or an unresolved
	// garbage indirect target); no state changed, no counter moved.
	fetchIdle fetchAction = iota
	// fetchWaiting: a fetch is in flight and completes at fetch.readyAt.
	fetchWaiting
	// fetchStallFrames: all frames busy; FetchStallFrames was incremented.
	fetchStallFrames
	// fetchStallLSQ: the block's memory ops do not fit the LSQ;
	// FetchStallLSQ was incremented.
	fetchStallLSQ
	// fetchProgress: a block was mapped or a new fetch issued (cache state
	// advanced) — never replicable.
	fetchProgress
)

// stepFetch advances the fetch engine one cycle: complete a pending fetch
// by mapping the block, or start a new fetch if a frame is free.
func (mc *Machine) stepFetch() fetchAction {
	if mc.fetch.active {
		if mc.cycle >= mc.fetch.readyAt {
			if mc.spans != nil {
				mc.spans.RecordSpan(trace.SpanFetch, mc.fetch.seq, mc.fetch.blockID, 0, mc.fetch.startedAt, mc.cycle)
			}
			mc.mapBlock(mc.fetch.seq, mc.fetch.blockID)
			mc.fetch.active = false
			return fetchProgress
		}
		return fetchWaiting
	}
	if mc.done {
		return fetchIdle
	}
	frame := int(mc.nextSeq) % mc.cfg.Frames
	if mc.frameBusy[frame] {
		mc.stats.FetchStallFrames++
		return fetchStallFrames
	}
	seq, blockID, ok := mc.fetchTargetNow()
	if !ok || blockID == isa.HaltTarget {
		return fetchIdle
	}
	if cap := mc.cfg.LSQCapacity; cap > 0 {
		if mc.q.Occupancy()+len(mc.memIdx[blockID]) > cap {
			mc.stats.FetchStallLSQ++
			return fetchStallLSQ
		}
	}
	if blockID < 0 || blockID >= len(mc.prog.Blocks) {
		// A garbage indirect-branch prediction target: wait for resolution.
		return fetchIdle
	}
	lat := mc.hier.InstAccess(codeBase+uint64(blockID)*512) + mc.cfg.FetchCycles
	mc.fetch = pendingFetch{active: true, seq: seq, blockID: blockID, readyAt: mc.cycle + int64(lat), startedAt: mc.cycle}
	mc.stats.FetchedBlocks++
	return fetchProgress
}

// mapBlock allocates a frame and injects the block into the window:
// reservation stations are initialised, memory operations are registered
// with the LSQ, register reads are bound and their values requested, and
// zero-input instructions become ready.
func (mc *Machine) mapBlock(seq int64, blockID int) {
	bdef := mc.prog.Blocks[blockID]
	frame := int(seq) % mc.cfg.Frames
	mc.frameGens[frame]++
	mc.frameBusy[frame] = true

	b := mc.takeBlock()
	*b = blockInst{
		seq:      seq,
		blockID:  blockID,
		bdef:     bdef,
		frame:    int32(frame),
		gen:      mc.frameGens[frame],
		insts:    resliceCleared(b.insts, len(bdef.Insts)),
		writes:   resliceCleared(b.writes, len(bdef.Writes)),
		ops:      resliceCleared(b.ops, len(bdef.Insts)*int(isa.NumSlots)),
		readBind: b.readBind, // sized below, every element assigned
		regRead:  b.regRead,
		mapCycle: mc.cycle,
	}
	if b.regRead == nil {
		b.regRead = make(map[uint8]int, len(bdef.Reads))
	} else {
		clear(b.regRead)
	}
	mc.window = append(mc.window, b)
	mc.nextSeq = seq + 1
	mc.stats.MappedBlocks++

	// Register memory operations with the LSQ (which copies them into its
	// own entries, so the staging buffer is reusable).
	ops := mc.opsBuf[:0]
	for _, idx := range mc.memIdx[blockID] {
		in := &bdef.Insts[idx]
		ops = append(ops, lsq.OpInfo{
			LSID:    in.LSID,
			IsStore: in.Op.IsStore(),
			Size:    in.Op.MemSize(),
			PC:      predictor.MakePC(blockID, idx),
		})
		if in.Op.IsStore() {
			b.numStores++
		}
	}
	mc.q.RegisterBlock(seq, ops)
	mc.opsBuf = ops

	// Zero-input instructions (constants, unpredicated branches) are ready
	// immediately.
	for i := range bdef.Insts {
		if bdef.Insts[i].NumInputs() == 0 {
			b.need.Set(i)
			mc.enqueueReady(b, i)
		}
	}

	// Map-time load-value prediction: a confident stride prediction is
	// injected into the consumers immediately, before the load's address
	// chain has even started — the full load-to-use latency is hidden and
	// a wrong guess is repaired by a DSRE wave when the real value arrives.
	if mc.vp != nil {
		for _, idx := range mc.memIdx[blockID] {
			in := &bdef.Insts[idx]
			if !in.Op.IsLoad() {
				continue
			}
			if pv, ok := mc.vp.Predict(predictor.MakePC(blockID, idx)); ok {
				st := &b.insts[idx]
				st.vpValid, st.vpValue = true, pv
				mc.stats.VPIssued++
				src := mc.tiles[mc.instTile(blockID, idx)].node
				for _, t := range in.Targets {
					mc.routeTarget(b, t, pv, 0, false, src, 1)
				}
			}
		}
	}

	// Bind register reads to the youngest older in-flight writer, or the
	// architectural file, and request initial values.
	if cap(b.readBind) < len(bdef.Reads) {
		b.readBind = make([]int64, len(bdef.Reads))
	} else {
		b.readBind = b.readBind[:len(bdef.Reads)]
	}
	for r := range bdef.Reads {
		reg := bdef.Reads[r].Reg
		b.regRead[reg] = r
		b.readBind[r] = -1
		for i := len(mc.window) - 2; i >= 0; i-- {
			p := mc.window[i]
			if p.bdef.WritesReg(reg) {
				b.readBind[r] = p.seq
				break
			}
		}
		if b.readBind[r] < 0 {
			// Architectural value: final by construction.
			mc.pushRead(b, r, mc.arch[reg], 0, true, mc.cfg.RegReadLatency, mc.regNode(reg))
			continue
		}
		// Pull whatever the producer's write slot already holds.
		p := mc.blockAt(b.readBind[r])
		w := writeIndex(p.bdef, reg)
		ws := &p.writes[w]
		if ws.slot.Present {
			mc.pushRead(b, r, ws.slot.Value, ws.slot.Tag, ws.slot.Committed, mc.cfg.RegReadLatency, mc.regNode(reg))
		}
	}
}

// writeIndex finds the write slot index of reg in a block definition.
func writeIndex(bdef *isa.Block, reg uint8) int {
	for i, w := range bdef.Writes {
		if w.Reg == reg {
			return i
		}
	}
	panic("sim: writeIndex: block does not write register")
}

// pushRead relays a register value from the register tile to a read slot's
// dataflow targets.  delay models the register-file access before network
// injection.
func (mc *Machine) pushRead(b *blockInst, readIdx int, v int64, tag core.Tag, committed bool, delay, src int) {
	rd := &b.bdef.Reads[readIdx]
	for _, t := range rd.Targets {
		mc.routeTarget(b, t, v, tag, committed, src, delay)
	}
}

// routeTarget sends a produced value to one dataflow target (an operand
// slot or a register write slot).
func (mc *Machine) routeTarget(b *blockInst, t isa.Target, v int64, tag core.Tag, committed bool, src int, delay int) {
	switch t.Kind {
	case isa.TargetWrite:
		reg := b.bdef.Writes[t.Index].Reg
		mc.sendAfter(delay, src, mc.regNode(reg), message{
			kind: msgWrite, frame: b.frame, gen: b.gen, seq: b.seq,
			idx: t.Index, value: v, tag: tag, committed: committed,
		})
	case isa.TargetInst:
		dst := mc.tiles[mc.instTile(b.blockID, int(t.Index))].node
		mc.sendAfter(delay, src, dst, message{
			kind: msgOperand, frame: b.frame, gen: b.gen, seq: b.seq,
			idx: t.Index, slot: uint8(t.Slot), value: v, tag: tag, committed: committed,
		})
	}
}
