package sim

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/mem"
)

// Result is the outcome of a simulated run.
type Result struct {
	Regs   [isa.NumRegs]int64
	Mem    *mem.Memory
	Blocks int64
	Stats  Stats
}

// ctxCheckInterval is how often RunContext polls its context, in cycles.
// A power of two so the hot loop pays one AND plus a rarely-taken branch;
// at simulator speeds a few thousand cycles resolve in well under a
// millisecond, so cancellation still lands at what a caller perceives as
// "a cycle boundary, immediately".
const ctxCheckInterval = 4096

// Run simulates to completion (the committed halt branch) and returns the
// final architectural state and statistics.
func (mc *Machine) Run() (*Result, error) {
	return mc.RunContext(context.Background())
}

// RunContext is Run under a context: a sweep timeout or Ctrl-C cancels the
// simulation at a cycle boundary, returning the context's error.  The
// context is polled every ctxCheckInterval cycles (never in the per-cycle
// hot path), and not at all for contexts that cannot be cancelled.
func (mc *Machine) RunContext(ctx context.Context) (*Result, error) {
	maxCycles := mc.cfg.maxCycles()
	deadlock := mc.cfg.deadlockCycles()
	cancellable := ctx != nil && ctx.Done() != nil
	for !mc.done {
		if mc.err != nil {
			return nil, fmt.Errorf("cycle %d: %w", mc.cycle, mc.err)
		}
		if mc.cycle >= maxCycles {
			return nil, fmt.Errorf("sim: cycle budget %d exhausted (%d blocks committed)", maxCycles, mc.committed)
		}
		if mc.cycle-mc.lastCommitCycle > deadlock {
			return nil, fmt.Errorf("sim: no commit for %d cycles at cycle %d — protocol deadlock\n%s",
				deadlock, mc.cycle, mc.debugDump())
		}
		if cancellable && mc.cycle&(ctxCheckInterval-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("sim: cancelled at cycle %d: %w", mc.cycle, err)
			}
		}
		mc.step()
	}
	// Flush the final (partial) telemetry window so short runs still
	// produce at least one sample.
	if mc.sampleSink != nil && mc.cycle > mc.sampleBase.cycle {
		mc.takeSample()
	}
	mc.snapshotStats()
	return &Result{Regs: mc.arch, Mem: mc.mem, Blocks: mc.committed, Stats: mc.stats}, nil
}

// step advances the machine one cycle.
func (mc *Machine) step() {
	// Structure-latency completions (cache replies, recovery broadcasts)
	// inject into the network first.
	if inj, ok := mc.delayed[mc.cycle]; ok {
		delete(mc.delayed, mc.cycle)
		for _, i := range inj {
			mc.send(i.src, i.dst, i.msg)
		}
	}

	// Network: arrivals dispatch to the handlers.
	mc.net.Tick(mc.cycle)

	// LSQ: deferred loads whose policy wait resolved, and loads whose
	// values became certifiable (the memory leg of the commit wave).
	for _, rl := range mc.q.TakeReady(mc.cycle) {
		b := mc.blockAt(rl.Load.Seq)
		if b == nil {
			continue
		}
		idx := mc.memIdx[b.blockID][rl.Load.LSID]
		mc.emitLoadResult(b, idx, rl.Addr, rl.Res)
	}
	for _, c := range mc.q.TakeCertifiable() {
		b := mc.blockAt(c.Load.Seq)
		if b == nil {
			continue
		}
		idx := mc.memIdx[b.blockID][c.Load.LSID]
		mc.broadcastLoadReply(b, idx, c.Addr, c.Value, 0, mc.cfg.ForwardLatency, true)
	}

	mc.stepTiles()
	mc.stepFetch()
	mc.stepCommit()
	// Sample before accounting this cycle's slot so a window ending at
	// cycle c covers exactly the accounted cycles (base, c]: windowed CPI
	// buckets then sum to Window × SlotsPerCycle with no boundary skew.
	if mc.sampleSink != nil && mc.cycle >= mc.sampleAt {
		mc.takeSample()
	}
	if mc.acct != nil {
		mc.accountCycle()
	}
	mc.cycle++
}

// debugDump renders the stuck machine for deadlock diagnostics.  The
// sampler's partial window is flushed first so the telemetry line below
// reflects the moment of the dump, and the flight recorder (when
// accounting is on) appends the last recorded cycles.
func (mc *Machine) debugDump() string {
	if mc.sampleSink != nil && mc.cycle > mc.sampleBase.cycle {
		mc.takeSample()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "window (%d blocks):\n", len(mc.window))
	for _, blk := range mc.window {
		fmt.Fprintf(&b, "  seq=%d block=%d %q branch{p=%v c=%v v=%d} writes=%d/%d stores=%d/%d\n",
			blk.seq, blk.blockID, blk.bdef.Name,
			blk.branch.Present, blk.branch.Committed, blk.branch.Value,
			blk.writesCommitted, len(blk.writes), blk.storesCommitted, blk.numStores)
		for i := range blk.insts {
			st := &blk.insts[i]
			in := &blk.bdef.Insts[i]
			if st.committedSent {
				continue
			}
			var slots []string
			for s := isa.SlotA; s < isa.NumSlots; s++ {
				if in.NeedsSlot(s) {
					sl := &st.slots[s]
					slots = append(slots, fmt.Sprintf("%s{p=%v c=%v v=%d t=%d}", s, sl.Present, sl.Committed, sl.Value, sl.Tag))
				}
			}
			fmt.Fprintf(&b, "    i%-3d %-24s fired=%d need=%v q=%v ev=%v %s\n",
				i, in.String(), st.fired, st.needExec, st.queued, st.execValid, strings.Join(slots, " "))
		}
	}
	fmt.Fprintf(&b, "fetch active=%v seq=%d id=%d  nextSeq=%d resume=%d net pending=%d\n",
		mc.fetch.active, mc.fetch.seq, mc.fetch.blockID, mc.nextSeq, mc.resumeID, mc.net.Pending())
	if mc.haveSample {
		s := mc.lastSample
		fmt.Fprintf(&b, "telemetry last window: cycle=%d win=%d ipc=%.3f committed=%d inflight=%d lsq=%d noc=%d waves=%d reexecs=%d flushes=%d l1d=%.3f l2=%.3f\n",
			s.Cycle, s.Window, s.IPC, s.CommittedBlocks, s.InFlightBlocks,
			s.LSQOccupancy, s.NoCPending, s.Waves, s.Reexecs, s.Flushes,
			s.L1DMissRate, s.L2MissRate)
	}
	if mc.acct != nil {
		fmt.Fprintf(&b, "cycle accounting: %s\n", mc.acct.stack.String())
		b.WriteString(mc.acct.flight.Dump())
	}
	return b.String()
}

// Cycle returns the current cycle (for tests and tools).
func (mc *Machine) Cycle() int64 { return mc.cycle }
