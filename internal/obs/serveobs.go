package obs

import (
	"sync"
	"time"
)

// ServeProgressSchema identifies the daemon live-progress JSON served at
// /progress by dsre-serve.
const ServeProgressSchema = "dsre-serve-progress/v1"

// ServeObs is the observability surface of a dsre-serve daemon: typed
// metrics for the job queue, lease protocol and upload path; submit/lease/
// requeue/upload lifecycle events; per-fleet-job spans (queue-wait →
// remote-run → upload) on one Chrome-trace lane per worker; and the live
// state behind /progress.  Like SweepObs it never reads a clock — every
// hook takes the caller's time — and never spawns goroutines, so it stays
// inside the determinism-audited obs package.
//
// The queue calls every hook while holding its own lock; ServeObs takes
// its lock second and never calls back into the queue, so the order is
// acyclic.  Lease-gauge accounting is exact by protocol: every granted
// lease is closed by exactly one of JobDone (lease attached),
// UploadDuplicate (lease attached) or LeaseExpired; callers pass an empty
// lease when the lease already ended (a late upload from a crashed
// worker).
type ServeObs struct {
	// Reg is the registry the metrics live in (shared with the daemon's
	// engine SweepObs so the daemon exposes one /metrics page).
	Reg *Registry

	start    time.Time
	sink     EventSink
	spans    *SpanLog
	laneBase int // first Chrome-trace lane for fleet peers

	mSubmits, mSubmitSpecs, mQuotaRej *Counter
	mCacheHits, mQueued               *Counter
	mLeases, mHeartbeats, mExpiries   *Counter
	mRequeues, mUploads, mUploadDup   *Counter
	mDone, mFailed, mExecutions       *Counter
	mDrains                           *Counter
	gQueue, gLeased, gPeers, gSweeps  *Gauge
	hQueueWait, hRemoteRun            *Histogram

	mu       sync.Mutex
	draining bool
	peers    map[string]*peerState
	order    []string
	sweeps   []*serveSweepState
	leases   map[string]*fleetSpan
}

type peerState struct {
	lane         int
	leased       int
	done, failed int
	lastSeenNS   int64
}

type serveSweepState struct {
	id, tenant     string
	total, unique  int
	done, cached   int
	failed         int
	startNS, endNS int64
	finished       bool
}

// fleetSpan accumulates one fleet job's daemon-side phase chain.
type fleetSpan struct {
	peer        string
	name, hash  string
	trace, span string // propagated trace-context IDs (hex)
	attempt     int
	leasedNS    int64
	lastNS      int64
	phases      []PhaseSpan
}

// NewServeObs builds a daemon observer registering into reg, anchored at
// start.  sink and spans may be nil.  laneBase is the first Chrome-trace
// worker lane fleet peers render on (pass the local engine's worker count
// so daemon-local and fleet lanes never collide).
func NewServeObs(reg *Registry, start time.Time, sink EventSink, spans *SpanLog, laneBase int) *ServeObs {
	o := &ServeObs{
		Reg:      reg,
		start:    start,
		sink:     sink,
		spans:    spans,
		laneBase: laneBase,
		peers:    map[string]*peerState{},
		leases:   map[string]*fleetSpan{},

		mSubmits:     reg.Counter("dsre_serve_submits_total", "Sweep grids submitted to the daemon."),
		mSubmitSpecs: reg.Counter("dsre_serve_submit_specs_total", "Job specs submitted (before dedup)."),
		mQuotaRej:    reg.Counter("dsre_serve_quota_rejections_total", "Submits rejected by per-tenant token-bucket quota."),
		mCacheHits:   reg.Counter("dsre_serve_cache_hits_total", "Submitted specs satisfied without a new execution (store hits and dedup copies)."),
		mQueued:      reg.Counter("dsre_serve_jobs_queued_total", "Unique jobs enqueued for execution."),
		mLeases:      reg.Counter("dsre_serve_leases_total", "Job leases granted to workers."),
		mHeartbeats:  reg.Counter("dsre_serve_heartbeats_total", "Lease heartbeats received."),
		mExpiries:    reg.Counter("dsre_serve_lease_expiries_total", "Leases expired by missed heartbeats."),
		mRequeues:    reg.Counter("dsre_serve_requeues_total", "Jobs returned to the queue for another attempt."),
		mUploads:     reg.Counter("dsre_serve_uploads_total", "Fleet result uploads accepted."),
		mUploadDup:   reg.Counter("dsre_serve_upload_duplicates_total", "Uploads dropped by first-write-wins dedup."),
		mDone:        reg.Counter("dsre_serve_jobs_done_total", "Unique jobs completed successfully."),
		mFailed:      reg.Counter("dsre_serve_jobs_failed_total", "Unique jobs that failed terminally."),
		mExecutions:  reg.Counter("dsre_serve_executions_total", "Unique jobs completed by a live (non-cached) run."),
		mDrains:      reg.Counter("dsre_serve_drains_total", "Daemon drains (SIGTERM graceful shutdowns)."),
		gQueue:       reg.Gauge("dsre_serve_queue_depth", "Unique jobs waiting for a lease."),
		gLeased:      reg.Gauge("dsre_serve_jobs_leased", "Leases currently outstanding."),
		gPeers:       reg.Gauge("dsre_serve_workers", "Distinct workers that have leased or heartbeated."),
		gSweeps:      reg.Gauge("dsre_serve_sweeps_open", "Submitted sweeps not yet finished."),
		hQueueWait:   reg.Histogram("dsre_serve_queue_wait_seconds", "Time from enqueue to lease grant.", DurationBounds),
		hRemoteRun:   reg.Histogram("dsre_serve_remote_run_seconds", "Time from lease grant to result upload.", DurationBounds),
	}
	return o
}

func (o *ServeObs) rel(t time.Time) int64 { return t.Sub(o.start).Nanoseconds() }

// Spans exposes the daemon's span log (the /v1/sweeps/{id}/trace endpoint
// stitches from it); nil when span collection is off.
func (o *ServeObs) Spans() *SpanLog { return o.spans }

// Rel converts a caller clock reading into the observer's relative
// nanosecond timeline (the queue stamps enqueue times with it).
func (o *ServeObs) Rel(t time.Time) int64 { return o.rel(t) }

func (o *ServeObs) emit(e Event, now time.Time) {
	if o.sink != nil {
		e.TimeMS = now.UnixMilli()
		o.sink.Emit(e)
	}
}

// peerLocked returns (creating if needed) the live state for a worker
// name.  Callers hold o.mu.
func (o *ServeObs) peerLocked(name string) *peerState {
	p, ok := o.peers[name]
	if !ok {
		p = &peerState{lane: o.laneBase + len(o.order)}
		o.peers[name] = p
		o.order = append(o.order, name)
		o.gPeers.Set(int64(len(o.order)))
	}
	return p
}

// SweepSubmitted records one accepted grid: total specs, unique new jobs,
// how many specs were satisfied immediately (store hits + in-submit dedup
// copies), and the sweep's hex trace ID.
func (o *ServeObs) SweepSubmitted(id, tenant, trace string, total, unique, cached int, now time.Time) {
	o.mu.Lock()
	o.sweeps = append(o.sweeps, &serveSweepState{
		id: id, tenant: tenant, total: total, unique: unique,
		cached: cached, done: cached, startNS: o.rel(now),
	})
	o.mu.Unlock()
	o.mSubmits.Inc()
	o.mSubmitSpecs.Add(int64(total))
	if cached > 0 {
		o.mCacheHits.Add(int64(cached))
	}
	o.gSweeps.Add(1)
	o.emit(Event{Kind: EventSubmit, Sweep: id, Tenant: tenant, Trace: trace, Total: total, Unique: unique, CacheHits: cached}, now)
}

// SweepProgress advances one sweep's live counters by done/cached/failed
// spec copies; finished closes it.
func (o *ServeObs) SweepProgress(id string, done, cached, failed int, finished bool, now time.Time) {
	o.mu.Lock()
	for _, s := range o.sweeps {
		if s.id != id {
			continue
		}
		s.done += done
		s.cached += cached
		s.failed += failed
		if finished && !s.finished {
			s.finished = true
			s.endNS = o.rel(now)
			o.gSweeps.Add(-1)
		}
		break
	}
	o.mu.Unlock()
	if cached > 0 {
		o.mCacheHits.Add(int64(cached))
	}
}

// QuotaRejected records a submit bounced by a tenant's token bucket.
func (o *ServeObs) QuotaRejected(tenant string, now time.Time) {
	o.mQuotaRej.Inc()
	o.emit(Event{Kind: EventSubmit, Tenant: tenant, Status: "quota_rejected"}, now)
}

// JobQueued records one unique job entering the queue.
func (o *ServeObs) JobQueued() {
	o.mQueued.Inc()
	o.gQueue.Add(1)
}

// JobDequeued reverses JobQueued's gauge when a job leaves the queue by
// any path other than a lease grant (a late upload from a crashed worker
// completed it while it sat requeued).
func (o *ServeObs) JobDequeued() {
	o.gQueue.Add(-1)
}

// Lease records a worker leasing one job.  enqueuedNS is the queue's
// relative enqueue stamp (from Rel) anchoring the queue-wait span; trace
// and span are the lease attempt's propagated trace-context IDs (hex,
// empty when tracing is off).
func (o *ServeObs) Lease(peer, hash, name, lease, trace, span string, attempt int, enqueuedNS int64, now time.Time) {
	ns := o.rel(now)
	o.mu.Lock()
	p := o.peerLocked(peer)
	p.leased++
	p.lastSeenNS = ns
	fs := &fleetSpan{peer: peer, name: name, hash: hash, trace: trace, span: span, attempt: attempt, lastNS: enqueuedNS}
	fs.mark(PhaseQueueWait, ns)
	fs.leasedNS = ns
	o.leases[lease] = fs
	o.mu.Unlock()
	o.mLeases.Inc()
	o.gQueue.Add(-1)
	o.gLeased.Add(1)
	o.hQueueWait.Observe(float64(ns-enqueuedNS) / float64(time.Second))
	o.emit(Event{Kind: EventLease, Job: hash, Name: name, Peer: peer, Lease: lease, Trace: trace, Span: span, Attempt: attempt}, now)
}

// Heartbeat records a lease heartbeat.
func (o *ServeObs) Heartbeat(peer string, now time.Time) {
	o.mu.Lock()
	o.peerLocked(peer).lastSeenNS = o.rel(now)
	o.mu.Unlock()
	o.mHeartbeats.Inc()
}

// LeaseExpired closes a lease whose heartbeats stopped.  The queue follows
// up with JobRequeued or JobDone(failed, no lease).  The abandoned
// attempt's daemon-side chain is recorded in the span log with status
// "abandoned", so a stitched trace shows the lost attempt next to the
// retry that succeeded.
func (o *ServeObs) LeaseExpired(peer, hash, name, lease string, now time.Time) {
	ns := o.rel(now)
	var trace string
	o.mu.Lock()
	p, ok := o.peers[peer]
	if ok && p.leased > 0 {
		p.leased--
	}
	if fs := o.leases[lease]; fs != nil {
		trace = fs.trace
		fs.mark(PhaseRemoteRun, ns)
		if o.spans != nil && ok {
			o.spans.Add(JobSpans{
				Name: fs.name, Hash: fs.hash, Grid: "serve", Worker: p.lane,
				Status: "abandoned", Trace: fs.trace, Span: fs.span,
				Origin: "daemon", Peer: fs.peer, Attempt: fs.attempt, Phases: fs.phases,
			})
		}
	}
	delete(o.leases, lease)
	o.mu.Unlock()
	o.mExpiries.Inc()
	o.gLeased.Add(-1)
	o.emit(Event{Kind: EventLeaseExpired, Job: hash, Name: name, Peer: peer, Lease: lease, Trace: trace}, now)
}

// JobRequeued records a job returned to the queue for another attempt.
// When the requeue is caused by an upload reporting a failed run, the
// uploader's still-valid lease closes here (pass it); an expiry-driven
// requeue already closed its lease in LeaseExpired (pass "").
func (o *ServeObs) JobRequeued(peer, hash, name, lease string, attempt int, now time.Time) {
	o.mu.Lock()
	if lease != "" {
		if p, ok := o.peers[peer]; ok && p.leased > 0 {
			p.leased--
		}
		delete(o.leases, lease)
	}
	o.mu.Unlock()
	if lease != "" {
		o.gLeased.Add(-1)
	}
	o.mRequeues.Inc()
	o.gQueue.Add(1)
	o.emit(Event{Kind: EventRequeue, Job: hash, Name: name, Peer: peer, Lease: lease, Attempt: attempt}, now)
}

// UploadDuplicate records an upload dropped by first-write-wins dedup: the
// job was already completed by another writer, so nothing changes state.
// lease is the uploader's still-valid lease (closed here), or empty when
// it already expired.
func (o *ServeObs) UploadDuplicate(peer, hash, name, lease string, now time.Time) {
	ns := o.rel(now)
	o.mu.Lock()
	if lease != "" {
		p, ok := o.peers[peer]
		if ok && p.leased > 0 {
			p.leased--
		}
		if fs := o.leases[lease]; fs != nil {
			fs.mark(PhaseRemoteRun, ns)
			fs.mark(PhaseUpload, ns)
			if o.spans != nil && ok {
				o.spans.Add(JobSpans{
					Name: fs.name, Hash: fs.hash, Grid: "serve", Worker: p.lane,
					Status: "duplicate", Trace: fs.trace, Span: fs.span,
					Origin: "daemon", Peer: fs.peer, Attempt: fs.attempt, Phases: fs.phases,
				})
			}
		}
		delete(o.leases, lease)
	}
	o.mu.Unlock()
	if lease != "" {
		o.gLeased.Add(-1)
	}
	o.mUploadDup.Inc()
	o.emit(Event{Kind: EventUpload, Job: hash, Name: name, Peer: peer, Lease: lease, Status: "duplicate"}, now)
}

// JobDone closes one unique job: peer is the completing worker ("local"
// for daemon-batched jobs), lease its still-valid lease (empty when the
// lease already expired — a late upload that still won first-write-wins),
// status mirrors the job result, cacheHit marks a store replay, and
// upload marks a fleet upload versus a local completion.
func (o *ServeObs) JobDone(peer, hash, name, lease, status string, cacheHit, upload bool, elapsedMS int64, now time.Time) {
	ns := o.rel(now)
	ok := status == "ok"

	o.mu.Lock()
	p := o.peerLocked(peer)
	if lease != "" && p.leased > 0 {
		p.leased--
	}
	p.lastSeenNS = ns
	if ok {
		p.done++
	} else {
		p.failed++
	}
	var fs *fleetSpan
	if lease != "" {
		fs = o.leases[lease]
		delete(o.leases, lease)
	}
	if fs != nil {
		fs.mark(PhaseRemoteRun, ns)
		fs.mark(PhaseUpload, ns)
		o.hRemoteRun.Observe(float64(ns-fs.leasedNS) / float64(time.Second))
		if o.spans != nil {
			o.spans.Add(JobSpans{
				Name: fs.name, Hash: fs.hash, Grid: "serve", Worker: p.lane,
				Status: status, CacheHit: cacheHit, Trace: fs.trace, Span: fs.span,
				Origin: "daemon", Peer: fs.peer, Attempt: fs.attempt, Phases: fs.phases,
			})
		}
	}
	o.mu.Unlock()

	if lease != "" {
		o.gLeased.Add(-1)
	}
	if ok {
		o.mDone.Inc()
		if !cacheHit {
			o.mExecutions.Inc()
		}
	} else {
		o.mFailed.Inc()
	}
	if upload {
		o.mUploads.Inc()
		o.emit(Event{Kind: EventUpload, Job: hash, Name: name, Peer: peer, Lease: lease,
			Status: status, CacheHit: cacheHit, ElapsedMS: elapsedMS}, now)
	}
}

// WorkerSpans ingests span chains a fleet worker shipped with its result
// upload.  The server stamps Origin with the authenticated worker name
// before calling; chains land in the same log the daemon-side chains use,
// so one stitched trace covers both processes.
func (o *ServeObs) WorkerSpans(chains []JobSpans) {
	if o.spans == nil {
		return
	}
	for _, c := range chains {
		o.spans.Add(c)
	}
}

// Drain records the daemon draining: in-flight jobs finished, manifests
// flushed, queued jobs abandoned.
func (o *ServeObs) Drain(reason string, queuedAbandoned int, now time.Time) {
	o.mu.Lock()
	o.draining = true
	o.mu.Unlock()
	o.mDrains.Inc()
	o.emit(Event{Kind: EventServeDrain, Error: reason, Total: queuedAbandoned}, now)
}

func (fs *fleetSpan) mark(p Phase, ns int64) {
	if ns < fs.lastNS {
		ns = fs.lastNS
	}
	fs.phases = append(fs.phases, PhaseSpan{Phase: p, StartNS: fs.lastNS, EndNS: ns})
	fs.lastNS = ns
}

// ServeTotals is the counter fold of the daemon progress document.
type ServeTotals struct {
	Sweeps           int64 `json:"sweeps"`
	Specs            int64 `json:"specs"`
	UniqueJobs       int64 `json:"unique_jobs"`
	Queued           int64 `json:"queued"`
	Leased           int64 `json:"leased"`
	Done             int64 `json:"done"`
	Failed           int64 `json:"failed"`
	CacheHits        int64 `json:"cache_hits"`
	Executions       int64 `json:"executions"`
	Uploads          int64 `json:"uploads"`
	UploadDuplicates int64 `json:"upload_duplicates"`
	Requeues         int64 `json:"requeues"`
	LeaseExpiries    int64 `json:"lease_expiries"`
	QuotaRejections  int64 `json:"quota_rejections"`
}

// ServePeerView is one worker's live state.
type ServePeerView struct {
	Peer       string `json:"peer"`
	Leased     int    `json:"leased"`
	Done       int    `json:"done"`
	Failed     int    `json:"failed"`
	LastSeenMS int64  `json:"last_seen_ms"`
}

// ServeSweepView is one submitted sweep's live progress.
type ServeSweepView struct {
	Sweep     string `json:"sweep"`
	Tenant    string `json:"tenant"`
	Total     int    `json:"total"`
	Unique    int    `json:"unique"`
	Done      int    `json:"done"`
	Cached    int    `json:"cached"`
	Failed    int    `json:"failed"`
	Finished  bool   `json:"finished"`
	ElapsedMS int64  `json:"elapsed_ms"`
}

// ServeProgressView is the dsre-serve-progress/v1 document.  Engine nests
// the daemon's local sweep-engine progress when local execution is on.
type ServeProgressView struct {
	Schema   string           `json:"schema"`
	UptimeMS int64            `json:"uptime_ms"`
	Draining bool             `json:"draining"`
	Totals   ServeTotals      `json:"totals"`
	Workers  []ServePeerView  `json:"workers"`
	Sweeps   []ServeSweepView `json:"sweeps"`
	Engine   *ProgressView    `json:"engine,omitempty"`
}

// Progress renders the daemon's live view.  Workers list in first-contact
// order; sweeps in submission order.
func (o *ServeObs) Progress(now time.Time) ServeProgressView {
	nowNS := o.rel(now)
	v := ServeProgressView{
		Schema:   ServeProgressSchema,
		UptimeMS: nowNS / int64(time.Millisecond),
		Totals: ServeTotals{
			Sweeps:           o.mSubmits.Value(),
			Specs:            o.mSubmitSpecs.Value(),
			UniqueJobs:       o.mQueued.Value(),
			Queued:           o.gQueue.Value(),
			Leased:           o.gLeased.Value(),
			Done:             o.mDone.Value(),
			Failed:           o.mFailed.Value(),
			CacheHits:        o.mCacheHits.Value(),
			Executions:       o.mExecutions.Value(),
			Uploads:          o.mUploads.Value(),
			UploadDuplicates: o.mUploadDup.Value(),
			Requeues:         o.mRequeues.Value(),
			LeaseExpiries:    o.mExpiries.Value(),
			QuotaRejections:  o.mQuotaRej.Value(),
		},
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	v.Draining = o.draining
	for _, name := range o.order {
		p := o.peers[name]
		v.Workers = append(v.Workers, ServePeerView{
			Peer: name, Leased: p.leased, Done: p.done, Failed: p.failed,
			LastSeenMS: p.lastSeenNS / int64(time.Millisecond),
		})
	}
	for _, s := range o.sweeps {
		sv := ServeSweepView{
			Sweep: s.id, Tenant: s.tenant, Total: s.total, Unique: s.unique,
			Done: s.done, Cached: s.cached, Failed: s.failed, Finished: s.finished,
		}
		endNS := s.endNS
		if !s.finished {
			endNS = nowNS
		}
		sv.ElapsedMS = (endNS - s.startNS) / int64(time.Millisecond)
		v.Sweeps = append(v.Sweeps, sv)
	}
	return v
}
