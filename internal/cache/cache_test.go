package cache

import "testing"

func TestHitAfterFill(t *testing.T) {
	c := MustNew(Config{SizeBytes: 1024, Assoc: 2, LineBytes: 64, HitLatency: 2})
	if r := c.Access(0x100, false); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := c.Access(0x100, false); !r.Hit {
		t.Fatal("second access missed")
	}
	if r := c.Access(0x13f, false); !r.Hit {
		t.Fatal("same-line access missed")
	}
	if r := c.Access(0x140, false); r.Hit {
		t.Fatal("next-line access hit")
	}
	if c.Stats.Hits != 2 || c.Stats.Misses != 2 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2 ways, 64B lines, 256B total => 2 sets.  Three lines mapping to the
	// same set: the least recently used is evicted.
	c := MustNew(Config{SizeBytes: 256, Assoc: 2, LineBytes: 64, HitLatency: 1})
	a, b, d := uint64(0x000), uint64(0x100), uint64(0x200) // same set (bit 6 = 0)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a most recent
	c.Access(d, false) // evicts b
	if !c.Probe(a) {
		t.Error("a evicted despite being MRU")
	}
	if c.Probe(b) {
		t.Error("b survived despite being LRU")
	}
	if !c.Probe(d) {
		t.Error("d not resident")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := MustNew(Config{SizeBytes: 128, Assoc: 1, LineBytes: 64, HitLatency: 1})
	c.Access(0x000, true) // dirty
	r := c.Access(0x080, false)
	if !r.VictimDirty {
		t.Error("dirty eviction not reported")
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats.Writebacks)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 1024, Assoc: 2, LineBytes: 48, HitLatency: 1}, // non-pow2 line
		{SizeBytes: 1024, Assoc: 0, LineBytes: 64, HitLatency: 1},
		{SizeBytes: 100, Assoc: 3, LineBytes: 64, HitLatency: 1},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h, err := NewHierarchy(DefaultHierConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Cold: L1 miss, L2 miss, memory.
	lat1, ok := h.DataAccess(0, 0x1000, false)
	if !ok {
		t.Fatal("MSHR rejected first access")
	}
	// Warm: L1 hit.
	lat2, ok := h.DataAccess(200, 0x1000, false)
	if !ok || lat2 >= lat1 {
		t.Fatalf("warm %d vs cold %d", lat2, lat1)
	}
	if lat1 < 100 {
		t.Errorf("cold latency %d below DRAM latency", lat1)
	}
	if lat2 != h.L1D.HitLatency() {
		t.Errorf("warm latency %d, want %d", lat2, h.L1D.HitLatency())
	}
}

func TestMSHRLimit(t *testing.T) {
	cfg := DefaultHierConfig()
	cfg.MSHRs = 2
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.DataAccess(0, 0x10000, false); !ok {
		t.Fatal("miss 1 rejected")
	}
	if _, ok := h.DataAccess(0, 0x20000, false); !ok {
		t.Fatal("miss 2 rejected")
	}
	if _, ok := h.DataAccess(0, 0x30000, false); ok {
		t.Fatal("miss 3 accepted with 2 MSHRs")
	}
	if h.MSHRStalls != 1 {
		t.Errorf("MSHRStalls = %d", h.MSHRStalls)
	}
	// After the misses complete, capacity frees up.
	if _, ok := h.DataAccess(10000, 0x30000, false); !ok {
		t.Fatal("miss rejected after inflight drained")
	}
}

func TestInstAccess(t *testing.T) {
	h, err := NewHierarchy(DefaultHierConfig())
	if err != nil {
		t.Fatal(err)
	}
	cold := h.InstAccess(0x4000)
	warm := h.InstAccess(0x4000)
	if warm >= cold {
		t.Errorf("warm %d vs cold %d", warm, cold)
	}
	if warm != h.L1I.HitLatency() {
		t.Errorf("warm latency %d", warm)
	}
}

func TestMissRate(t *testing.T) {
	c := MustNew(Config{SizeBytes: 128, Assoc: 1, LineBytes: 64, HitLatency: 1})
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty stats miss rate")
	}
	c.Access(0, false)
	c.Access(0, false)
	if got := c.Stats.MissRate(); got != 0.5 {
		t.Errorf("miss rate = %v", got)
	}
}
