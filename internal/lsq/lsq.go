// Package lsq implements the load/store queue of the simulated EDGE
// machine: the structure that gives dataflow execution conventional
// sequential memory semantics (the central difficulty the paper's abstract
// calls out versus single-assignment dataflow machines).
//
// Responsibilities:
//
//   - total memory order: dynamic memory operations are ordered by
//     (block sequence, load/store ID);
//   - store→load forwarding with byte-granularity reconstruction: a load's
//     value is assembled byte-by-byte from the youngest older executed
//     store covering each byte, falling back to committed memory;
//   - load issue policy: conservative, aggressive, store-set-predicted or
//     oracle-directed deferral of loads (the policies the paper compares);
//   - violation detection: whenever a store executes, re-executes with a
//     changed address/data, or nullifies, every younger issued load whose
//     reconstructed value changes is reported for recovery (flush or DSRE);
//   - the memory leg of the commit wave: a load certifies (may send commit
//     tokens) only when its address is final and every older store is
//     committed.
//
// Layout: the queue is a structure-of-arrays window.  Blocks occupy a
// power-of-two ring of slots in ascending-sequence order (sequences are
// contiguous: the simulator registers every mapped block and removes them
// only by committing the head or squashing a suffix), so a block lookup is
// "seq − base" arithmetic, never a map.  Per-op dynamic state lives in one
// bitset.Mask32 per block per predicate (declared-store, executed, null,
// committed, issued, ...) plus flat stride-32 arrays for the word-sized
// fields (addr, data, tag, ...).  Certification and alias search walk only
// set bits (bits.TrailingZeros under the hood) instead of scanning every
// entry, and the policy predicate "any older store unexecuted" collapses
// to one AND-NOT word test per block.
package lsq

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/predictor"
)

// opStride is the per-block op-array stride: the ISA's LSID space.
const opStride = isa.MaxMemOps

// Key orders dynamic memory operations: block sequence first, then LSID.
type Key struct {
	Seq  int64
	LSID int8
}

// Less reports whether k is older than o in memory order.
func (k Key) Less(o Key) bool {
	if k.Seq != o.Seq {
		return k.Seq < o.Seq
	}
	return k.LSID < o.LSID
}

// String renders the key.
func (k Key) String() string { return fmt.Sprintf("b%d.ls%d", k.Seq, k.LSID) }

// OpInfo declares one memory operation at block map time.
type OpInfo struct {
	LSID    int8
	IsStore bool
	Size    int
	PC      predictor.PC
}

// Violation reports a load whose previously returned value is stale.
type Violation struct {
	Load    Key
	Addr    uint64 // the load's address (for D-tile bank routing)
	Value   int64  // corrected value
	Tag     core.Tag
	LoadPC  predictor.PC
	StorePC predictor.PC
	// StoreTag is the wave tag the conflicting store executed under (zero
	// if it ran un-speculatively), so forensics can chain wave depths.
	StoreTag core.Tag
}

// ReadyLoad is a load whose value is (now) available.
type ReadyLoad struct {
	Load Key
	Addr uint64
	Res  LoadResult
}

// DeferReason says why a load could not issue, for statistics.
type DeferReason int

// Deferral reasons.
const (
	DeferNone DeferReason = iota
	DeferPolicy
	DeferMSHR
)

// Stats counts LSQ events.
type Stats struct {
	Loads           int64
	Stores          int64
	Forwards        int64 // loads fully satisfied by forwarding
	PartialForwards int64 // loads mixing store bytes and memory bytes
	Violations      int64
	SilentStoreHits int64 // store updates that changed no load's value
	DeferredPolicy  int64
	DeferredMSHR    int64
	GuardedLoads    int64
	PeakOccupancy   int
}

// Config parameterises the queue.
type Config struct {
	Policy core.IssuePolicy
	// ForwardLatency is the store→load forwarding latency in cycles.
	ForwardLatency int
	// ViolationLatency is the delay before a corrected value is
	// re-broadcast after a violation is detected.
	ViolationLatency int
}

// Queue is the load/store queue.
type Queue struct {
	cfg    Config
	mem    *mem.Memory
	hier   *cache.Hierarchy
	tags   *core.TagSource
	ss     *predictor.StoreSet
	oracle *predictor.Oracle

	// Block window: a power-of-two ring of block slots in ascending-
	// sequence order.  head is the physical slot of the oldest block, n
	// the live count; the block with sequence s lives at physical slot
	// (head + (s − seqs[head])) & (cap−1).  Drain advances head (O(1));
	// squash truncates n.
	head int
	n    int

	// Per-block state, indexed by physical slot.
	seqs []int64
	nops []uint8

	// Per-block LSID occupancy masks — the bitmaps certification and alias
	// search walk.  stores is fixed at registration; the rest track the
	// old per-entry booleans bit for bit.
	stores    []bitset.Mask32 // declared store ops
	exec      []bitset.Mask32 // executed at least once
	null      []bitset.Mask32 // predicated off (stores)
	committed []bitset.Mask32 // store output final
	addrCom   []bitset.Mask32 // store address operand committed
	dataCom   []bitset.Mask32 // store data operand committed
	issued    []bitset.Mask32 // load produced a value
	certified []bitset.Mask32 // load certified (value final)
	inputsCom []bitset.Mask32 // load address operands committed
	parked    []bitset.Mask32 // load on the deferred list
	waitValid []bitset.Mask32 // waitFor captured at registration

	// Flat per-op fields, stride opStride, indexed slot*opStride + LSID.
	addr    []uint64
	data    []int64 // store data, or the load's last returned value
	tag     []core.Tag
	size    []uint8
	pc      []predictor.PC
	waitFor []predictor.DynRef

	resident int // ops across blocks (occupancy is read every cycle)

	deferred []Key // parked loads, re-evaluated when dirty
	dirty    bool
	mshrWait bool // some load parked on MSHR pressure; retry every cycle

	// certDirty gates TakeCertifiable's scan: a parked certification
	// candidate can only become certifiable when a store commits, executes,
	// nullifies or leaves the window, a load issues, or a new candidate
	// arrives — every such mutation sets it.  A scan that yields nothing has
	// no side effects, so skipping it while the flag is clear is
	// behaviour-identical and avoids a rescan per cycle.
	certDirty bool

	// guard holds dynamic loads that violated and were flushed: their
	// refetched instances (same key) replay conservatively, which is what
	// keeps flush recovery livelock-free when a load conflicts with a
	// store in its own block.
	guard map[Key]bool

	certCand []Key // loads awaiting certification

	// ValidateDrain, when set (tests), is called for every drained store
	// with its final address and data; an error aborts the run loudly.
	ValidateDrain func(k Key, addr uint64, data int64, size int) error

	Stats Stats
}

// New builds a queue.  mem holds committed state; hier provides data-side
// timing; tags allocates violation wave tags; ss and oracle may be nil when
// the policy does not use them.
func New(cfg Config, m *mem.Memory, hier *cache.Hierarchy, tags *core.TagSource, ss *predictor.StoreSet, oracle *predictor.Oracle) *Queue {
	if cfg.ForwardLatency <= 0 {
		cfg.ForwardLatency = 1
	}
	if cfg.ViolationLatency <= 0 {
		cfg.ViolationLatency = 1
	}
	q := &Queue{
		cfg:    cfg,
		mem:    m,
		hier:   hier,
		tags:   tags,
		ss:     ss,
		oracle: oracle,
		guard:  make(map[Key]bool),
	}
	q.grow(16)
	return q
}

// grow (re)allocates the block ring with capacity c (a power of two),
// relocating live blocks so the oldest lands at slot 0.
func (q *Queue) grow(c int) {
	old := *q
	q.seqs = make([]int64, c)
	q.nops = make([]uint8, c)
	masks := make([]bitset.Mask32, 11*c)
	q.stores, masks = masks[:c:c], masks[c:]
	q.exec, masks = masks[:c:c], masks[c:]
	q.null, masks = masks[:c:c], masks[c:]
	q.committed, masks = masks[:c:c], masks[c:]
	q.addrCom, masks = masks[:c:c], masks[c:]
	q.dataCom, masks = masks[:c:c], masks[c:]
	q.issued, masks = masks[:c:c], masks[c:]
	q.certified, masks = masks[:c:c], masks[c:]
	q.inputsCom, masks = masks[:c:c], masks[c:]
	q.parked, masks = masks[:c:c], masks[c:]
	q.waitValid = masks[:c:c]
	q.addr = make([]uint64, c*opStride)
	q.data = make([]int64, c*opStride)
	q.tag = make([]core.Tag, c*opStride)
	q.size = make([]uint8, c*opStride)
	q.pc = make([]predictor.PC, c*opStride)
	q.waitFor = make([]predictor.DynRef, c*opStride)
	for l := 0; l < old.n; l++ {
		s := (old.head + l) & (len(old.seqs) - 1)
		q.seqs[l] = old.seqs[s]
		q.nops[l] = old.nops[s]
		q.stores[l] = old.stores[s]
		q.exec[l] = old.exec[s]
		q.null[l] = old.null[s]
		q.committed[l] = old.committed[s]
		q.addrCom[l] = old.addrCom[s]
		q.dataCom[l] = old.dataCom[s]
		q.issued[l] = old.issued[s]
		q.certified[l] = old.certified[s]
		q.inputsCom[l] = old.inputsCom[s]
		q.parked[l] = old.parked[s]
		q.waitValid[l] = old.waitValid[s]
		copy(q.addr[l*opStride:(l+1)*opStride], old.addr[s*opStride:(s+1)*opStride])
		copy(q.data[l*opStride:(l+1)*opStride], old.data[s*opStride:(s+1)*opStride])
		copy(q.tag[l*opStride:(l+1)*opStride], old.tag[s*opStride:(s+1)*opStride])
		copy(q.size[l*opStride:(l+1)*opStride], old.size[s*opStride:(s+1)*opStride])
		copy(q.pc[l*opStride:(l+1)*opStride], old.pc[s*opStride:(s+1)*opStride])
		copy(q.waitFor[l*opStride:(l+1)*opStride], old.waitFor[s*opStride:(s+1)*opStride])
	}
	q.head = 0
}

// ringMask indexes the block ring.
func (q *Queue) ringMask() int { return len(q.seqs) - 1 }

// slot returns the physical block slot holding seq, or -1 when seq is not
// resident (drained, squashed, or never registered).
func (q *Queue) slot(seq int64) int {
	if q.n == 0 {
		return -1
	}
	i := seq - q.seqs[q.head]
	if i < 0 || i >= int64(q.n) {
		return -1
	}
	return (q.head + int(i)) & q.ringMask()
}

// opSlot resolves a key to its block slot and op index, or (-1, 0) when the
// key names no resident op.
func (q *Queue) opSlot(k Key) (slot, op int) {
	s := q.slot(k.Seq)
	if s < 0 || int(k.LSID) >= int(q.nops[s]) {
		return -1, 0
	}
	return s, int(k.LSID)
}

// RegisterBlock reserves entries for a block's memory operations at map
// time.  Blocks must be registered in ascending, contiguous sequence order
// (the simulator maps every block through here, so "seq − base" indexing
// holds by construction).
func (q *Queue) RegisterBlock(seq int64, ops []OpInfo) {
	if q.n > 0 {
		last := q.seqs[(q.head+q.n-1)&q.ringMask()]
		if last >= seq {
			panic(fmt.Sprintf("lsq: block %d registered after %d", seq, last))
		}
		if seq != last+1 {
			panic(fmt.Sprintf("lsq: block %d not contiguous after %d", seq, last))
		}
	}
	if q.n == len(q.seqs) {
		q.grow(2 * len(q.seqs))
	}
	s := (q.head + q.n) & q.ringMask()
	q.n++
	q.seqs[s] = seq
	q.nops[s] = uint8(len(ops))
	q.stores[s], q.exec[s], q.null[s] = 0, 0, 0
	q.committed[s], q.addrCom[s], q.dataCom[s] = 0, 0, 0
	q.issued[s], q.certified[s], q.inputsCom[s] = 0, 0, 0
	q.parked[s], q.waitValid[s] = 0, 0
	base := s * opStride
	end := base + len(ops)
	clear(q.addr[base:end])
	clear(q.data[base:end])
	clear(q.tag[base:end])
	for i, op := range ops {
		if int(op.LSID) != i {
			panic(fmt.Sprintf("lsq: block %d ops not dense at %d", seq, i))
		}
		q.size[base+i] = uint8(op.Size)
		q.pc[base+i] = op.PC
		ref := predictor.DynRef{Seq: seq, LSID: op.LSID}
		// Dependence capture happens here, in LSID (dispatch) order, so a
		// load's LFST lookup sees exactly the stores older than it — the
		// in-order dispatch semantics of the store-set design.
		switch {
		case op.IsStore:
			q.stores[s].Set(i)
			if q.ss != nil {
				q.ss.StoreFetched(op.PC, ref)
			}
		case q.cfg.Policy == core.IssueStoreSet && q.ss != nil:
			q.waitFor[base+i] = q.ss.LoadDependence(op.PC)
			q.waitValid[s].Set(i)
		case q.cfg.Policy == core.IssueOracle && q.oracle != nil:
			q.waitFor[base+i] = q.oracle.LoadDependence(ref)
			q.waitValid[s].Set(i)
		}
	}
	q.resident += len(ops)
	if q.resident > q.Stats.PeakOccupancy {
		q.Stats.PeakOccupancy = q.resident
	}
}

func (q *Queue) occupancy() int { return q.resident }

// SquashFrom removes every block with sequence >= seq.
func (q *Queue) SquashFrom(seq int64) {
	if q.n > 0 {
		cut := seq - q.seqs[q.head]
		if cut < 0 {
			cut = 0
		}
		for l := int(cut); l < q.n; l++ {
			q.resident -= int(q.nops[(q.head+l)&q.ringMask()])
		}
		if int64(q.n) > cut {
			q.n = int(cut)
		}
	}
	q.filterKeys(&q.deferred, seq)
	q.filterKeys(&q.certCand, seq)
	q.dirty = true
	q.certDirty = true
}

func (q *Queue) filterKeys(keys *[]Key, fromSeq int64) {
	kept := (*keys)[:0]
	for _, k := range *keys {
		if k.Seq < fromSeq {
			kept = append(kept, k)
		}
	}
	*keys = kept
}

// overlap reports whether [a, a+as) and [b, b+bs) intersect.
func overlap(a uint64, as int, b uint64, bs int) bool {
	return a < b+uint64(bs) && b < a+uint64(as)
}
