package program

import (
	"fmt"

	"repro/internal/isa"
)

// Validate checks the structural invariants every EDGE program must satisfy
// before it can be emulated or simulated.  Programs produced by the Builder
// always pass; Validate exists so that hand-constructed or mutated programs
// (fuzzers, property tests) are checked by the same rules.
//
// Enforced invariants:
//
//   - resource limits: instructions, reads, writes and memory ops per block;
//   - every target points at a valid consumer slot with a strictly higher
//     instruction index (the block dataflow graph is a DAG in index order);
//   - load/store IDs are unique, dense from zero, and increase with
//     instruction index (program memory order equals index order, the
//     compiler discipline this reproduction assumes — see DESIGN.md);
//   - loads are unpredicated (a nullified load would leave its consumers
//     without a producer);
//   - every operand slot that an instruction waits on has at least one
//     static producer, and unpredicated slots have exactly one;
//   - every register write slot has at least one producer;
//   - every block has at least one branch, and static branch targets exist;
//   - register numbers are in range.
func Validate(p *isa.Program) error {
	if len(p.Blocks) == 0 {
		return fmt.Errorf("program has no blocks")
	}
	if p.Entry < 0 || p.Entry >= len(p.Blocks) {
		return fmt.Errorf("entry block %d out of range", p.Entry)
	}
	for i, b := range p.Blocks {
		if b.ID != i {
			return fmt.Errorf("block %d has ID %d", i, b.ID)
		}
		if err := validateBlock(p, b); err != nil {
			return fmt.Errorf("block %d %q: %w", b.ID, b.Name, err)
		}
	}
	return nil
}

func validateBlock(p *isa.Program, b *isa.Block) error {
	if len(b.Insts) == 0 {
		return fmt.Errorf("empty block")
	}
	if len(b.Insts) > isa.MaxInsts {
		return fmt.Errorf("%d instructions exceeds limit %d", len(b.Insts), isa.MaxInsts)
	}
	if len(b.Reads) > isa.MaxReads {
		return fmt.Errorf("%d reads exceeds limit %d", len(b.Reads), isa.MaxReads)
	}
	if len(b.Writes) > isa.MaxWrites {
		return fmt.Errorf("%d writes exceeds limit %d", len(b.Writes), isa.MaxWrites)
	}

	// producers[i][slot] counts static producers of each operand slot;
	// writeProducers counts producers of each write slot.
	type slotCount [isa.NumSlots]int
	producers := make([]slotCount, len(b.Insts))
	writeProducers := make([]int, len(b.Writes))

	checkTargets := func(srcIdx int, targets []isa.Target) error {
		if len(targets) > isa.MaxTargets {
			return fmt.Errorf("%d targets exceeds limit %d", len(targets), isa.MaxTargets)
		}
		for _, t := range targets {
			switch t.Kind {
			case isa.TargetWrite:
				if int(t.Index) >= len(b.Writes) {
					return fmt.Errorf("target %s: no such write slot", t)
				}
				writeProducers[t.Index]++
			case isa.TargetInst:
				if int(t.Index) >= len(b.Insts) {
					return fmt.Errorf("target %s: no such instruction", t)
				}
				if srcIdx >= 0 && int(t.Index) <= srcIdx {
					return fmt.Errorf("target %s from i%d is not a forward edge", t, srcIdx)
				}
				c := &b.Insts[t.Index]
				if !c.NeedsSlot(t.Slot) {
					return fmt.Errorf("target %s: %s does not read slot %s", t, c.Op, t.Slot)
				}
				producers[t.Index][t.Slot]++
			default:
				return fmt.Errorf("target with unknown kind %d", t.Kind)
			}
		}
		return nil
	}

	for _, r := range b.Reads {
		if r.Reg >= isa.NumRegs {
			return fmt.Errorf("read of register r%d out of range", r.Reg)
		}
		if err := checkTargets(-1, r.Targets); err != nil {
			return fmt.Errorf("read r%d: %w", r.Reg, err)
		}
	}

	branches := 0
	lastLSID := int8(-1)
	seenLSID := make(map[int8]bool)
	for i := range b.Insts {
		in := &b.Insts[i]
		if !in.Op.Valid() || in.Op == isa.OpNop {
			return fmt.Errorf("i%d: invalid opcode %s", i, in.Op)
		}
		if err := checkTargets(i, in.Targets); err != nil {
			return fmt.Errorf("i%d: %w", i, err)
		}
		switch {
		case in.Op.IsMem():
			if in.LSID == isa.NoLSID || in.LSID < 0 || int(in.LSID) >= isa.MaxMemOps {
				return fmt.Errorf("i%d: memory op with invalid LSID %d", i, in.LSID)
			}
			if seenLSID[in.LSID] {
				return fmt.Errorf("i%d: duplicate LSID %d", i, in.LSID)
			}
			seenLSID[in.LSID] = true
			if in.LSID <= lastLSID {
				return fmt.Errorf("i%d: LSID %d not increasing with instruction index", i, in.LSID)
			}
			if in.LSID != lastLSID+1 {
				return fmt.Errorf("i%d: LSID %d leaves a gap after %d", i, in.LSID, lastLSID)
			}
			lastLSID = in.LSID
			if in.Op.IsLoad() && in.Pred != isa.PredNone {
				return fmt.Errorf("i%d: predicated load", i)
			}
		default:
			if in.LSID != isa.NoLSID {
				return fmt.Errorf("i%d: non-memory op with LSID %d", i, in.LSID)
			}
		}
		if in.Op.IsBranch() {
			branches++
			if len(in.Targets) != 0 {
				return fmt.Errorf("i%d: branch with dataflow targets", i)
			}
			if in.Op == isa.OpBro {
				if in.Imm != isa.HaltTarget && (in.Imm < 0 || int(in.Imm) >= len(p.Blocks)) {
					return fmt.Errorf("i%d: branch to nonexistent block %d", i, in.Imm)
				}
			}
		} else if in.Op.ProducesValue() && len(in.Targets) == 0 && !in.Op.IsLoad() {
			// A value produced for nobody is almost certainly a builder bug;
			// loads are exempt because a load may be issued purely for its
			// memory-ordering side effects in stress kernels.
			return fmt.Errorf("i%d: %s produces a value but has no targets", i, in.Op)
		}
	}
	if branches == 0 {
		return fmt.Errorf("block has no branch")
	}

	for i := range b.Insts {
		in := &b.Insts[i]
		for s := isa.SlotA; s < isa.NumSlots; s++ {
			n := producers[i][s]
			switch {
			case !in.NeedsSlot(s) && n > 0:
				return fmt.Errorf("i%d: slot %s has %d producers but is not read", i, s, n)
			case in.NeedsSlot(s) && n == 0:
				return fmt.Errorf("i%d: slot %s has no producer", i, s)
			case in.NeedsSlot(s) && n > 1 && in.Pred == isa.PredNone && s != isa.SlotA:
				// Multiple static producers are only legal for slots fed by
				// complementary predicated producers (select joins use SlotA,
				// and predicated consumers may merge on any slot).  This is a
				// heuristic static check; the emulator enforces the dynamic
				// exactly-one-fires rule exactly.
			}
		}
	}
	for w, n := range writeProducers {
		if n == 0 {
			return fmt.Errorf("write slot %d (r%d) has no producer", w, b.Writes[w].Reg)
		}
	}
	for _, w := range b.Writes {
		if w.Reg >= isa.NumRegs {
			return fmt.Errorf("write of register r%d out of range", w.Reg)
		}
	}
	return nil
}
