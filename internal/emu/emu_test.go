package emu

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

// buildLoop returns a program that runs `st mem[0x100+8i] = i` for
// i = n-1 .. 0 and halts, leaving the loop counter in r1.
func buildLoop(t *testing.T) *isa.Program {
	t.Helper()
	b := program.New("loop")
	blk := b.NewBlock("loop")
	i := blk.Read(1)
	i2 := blk.Op(isa.OpSub, i, blk.Const(1))
	addr := blk.Op(isa.OpAdd, blk.Const(0x100), blk.Op(isa.OpShl, i2, blk.Const(3)))
	blk.Store(addr, 0, i2)
	blk.Write(1, i2)
	more := blk.Op(isa.OpTgt, i2, blk.Const(0))
	blk.BranchIf(more, "loop", "@halt")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunLoop(t *testing.T) {
	p := buildLoop(t)
	var regs [isa.NumRegs]int64
	regs[1] = 8
	res, err := Run(p, &regs, mem.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 8 || res.Regs[1] != 0 {
		t.Fatalf("blocks=%d r1=%d", res.Blocks, res.Regs[1])
	}
	for i := int64(0); i < 8; i++ {
		if got := res.Mem.Read(0x100+uint64(8*i), 8); got != i {
			t.Errorf("mem[%d] = %d", i, got)
		}
	}
	if res.Stores != 8 || res.Loads != 0 {
		t.Errorf("stores=%d loads=%d", res.Stores, res.Loads)
	}
}

func TestInputsNotMutated(t *testing.T) {
	p := buildLoop(t)
	var regs [isa.NumRegs]int64
	regs[1] = 4
	m := mem.New()
	m.Write(0x900, 42, 8)
	if _, err := Run(p, &regs, m, Options{}); err != nil {
		t.Fatal(err)
	}
	if regs[1] != 4 {
		t.Error("input registers mutated")
	}
	if m.Read(0x100, 8) != 0 {
		t.Error("input memory mutated")
	}
}

func TestFuelLimit(t *testing.T) {
	b := program.New("forever")
	blk := b.NewBlock("spin")
	blk.Write(1, blk.Const(1))
	blk.Branch("spin")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(p, nil, mem.New(), Options{MaxBlocks: 100})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v", err)
	}
}

func TestOracleAndStoreTrace(t *testing.T) {
	// Block: store to X, load from X — a within-block dependence.
	b := program.New("dep")
	blk := b.NewBlock("only")
	base := blk.Const(0x100)
	blk.Store(base, 0, blk.Const(7))
	v := blk.Load(base, 0)
	blk.Write(1, v)
	blk.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, nil, mem.New(), Options{CollectOracle: true, TraceStores: true, TraceBlocks: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regs[1] != 7 {
		t.Fatalf("r1 = %d", res.Regs[1])
	}
	dep, ok := res.Oracle[MemRef{0, 1}]
	if !ok || dep != (MemRef{0, 0}) {
		t.Errorf("oracle = %v (ok=%v)", dep, ok)
	}
	rec, ok := res.StoreTrace[MemRef{0, 0}]
	if !ok || rec.Addr != 0x100 || rec.Data != 7 || rec.Size != 8 {
		t.Errorf("store trace = %+v (ok=%v)", rec, ok)
	}
	if len(res.BlockTrace) != 1 || res.BlockTrace[0] != 0 {
		t.Errorf("block trace = %v", res.BlockTrace)
	}
	if res.DepDistance[0] == 0 {
		t.Error("dependence distance histogram empty")
	}
}

func TestExactlyOneFiresViolation(t *testing.T) {
	// Hand-corrupt a program so a slot receives two values: the emulator
	// must reject it (dynamic exactly-one-producer rule).
	b := program.New("bad")
	blk := b.NewBlock("only")
	x := blk.Read(1)
	y := blk.Op(isa.OpAdd, x, x)
	blk.Write(2, y)
	blk.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate the add's write target so w0 receives two values.
	for i := range p.Blocks[0].Insts {
		in := &p.Blocks[0].Insts[i]
		if in.Op == isa.OpAdd && len(in.Targets) == 1 {
			in.Targets = append(in.Targets, in.Targets[0])
		}
	}
	if _, err := Run(p, nil, mem.New(), Options{}); err == nil ||
		!strings.Contains(err.Error(), "two values") {
		t.Fatalf("err = %v", err)
	}
}

func TestBranchOutOfRange(t *testing.T) {
	b := program.New("bad")
	blk := b.NewBlock("only")
	tgt := blk.Read(1)
	blk.BranchInd(tgt)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var regs [isa.NumRegs]int64
	regs[1] = 99
	if _, err := Run(p, &regs, mem.New(), Options{}); err == nil ||
		!strings.Contains(err.Error(), "out-of-range") {
		t.Fatalf("err = %v", err)
	}
}

func TestMemRefString(t *testing.T) {
	if got := (MemRef{BlockSeq: 3, LSID: 2}).String(); got != "b3.ls2" {
		t.Errorf("String = %q", got)
	}
}

// BenchmarkEmulation measures golden-model throughput in instructions per
// second on a loop-heavy program.
func BenchmarkEmulation(b *testing.B) {
	bld := program.New("bench")
	blk := bld.NewBlock("loop")
	i := blk.Read(1)
	acc := blk.Read(2)
	for k := 0; k < 16; k++ {
		acc = blk.Op(isa.OpAdd, acc, blk.Const(int64(k)))
	}
	i2 := blk.Op(isa.OpSub, i, blk.Const(1))
	blk.Write(1, i2)
	blk.Write(2, acc)
	more := blk.Op(isa.OpTgt, i2, blk.Const(0))
	blk.BranchIf(more, "loop", "@halt")
	p, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	var regs [isa.NumRegs]int64
	regs[1] = 1000
	m := mem.New()
	b.ResetTimer()
	var insts int64
	for n := 0; n < b.N; n++ {
		res, err := Run(p, &regs, m, Options{})
		if err != nil {
			b.Fatal(err)
		}
		insts = res.Insts
	}
	b.ReportMetric(float64(insts), "insts/run")
}
