package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"
)

const confighashName = "confighash"

// confighash guards the sweep engine's content-addressed cache key.  The
// key is SHA-256 over the canonical JSON encoding of the job spec and the
// full machine Config, so a knob escapes the hash in exactly three ways:
// the field doesn't survive JSON (unexported, `json:"-"`, unencodable),
// the sweep hash payload stops carrying the Config, or a JobSpec field is
// never folded into the payload.  All three poison cached results.
func confighash(p *pass) {
	simPkg := p.mod.Lookup(p.cfg.SimPkg)
	if simPkg == nil {
		p.missingAnchor("package " + p.cfg.SimPkg)
		return
	}
	cfgNamed := lookupNamed(simPkg, p.cfg.ConfigType)
	if cfgNamed == nil {
		p.missingAnchor(p.cfg.SimPkg + "." + p.cfg.ConfigType)
		return
	}
	p.checkJSONStruct(confighashName, "the sweep cache hash", p.cfg.ConfigType, cfgNamed, nil)
	p.checkCanonical(cfgNamed)
	p.checkHashPayload(cfgNamed)
	p.checkSpecFold()
}

// lookupNamed resolves a (possibly unexported) package-scope type name.
func lookupNamed(pkg *Package, name string) *types.Named {
	obj := pkg.Types.Scope().Lookup(name)
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := types.Unalias(tn.Type()).(*types.Named)
	if !ok {
		return nil
	}
	return named
}

// hasMethod reports whether t (or *t) has a method with the given name.
func hasMethod(t types.Type, name string) bool {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, nil, name)
	_, ok := obj.(*types.Func)
	return ok
}

// checkJSONStruct reports every field of the named struct (recursively
// through anonymous structs and module-declared named structs without a
// custom marshaller) that would not survive encoding/json — and therefore
// would silently vanish from `sink` (a hash input or a report payload).
func (p *pass) checkJSONStruct(analyzer, sink, display string, named *types.Named, seen map[*types.Named]bool) {
	if seen == nil {
		seen = map[*types.Named]bool{}
	}
	if seen[named] {
		return
	}
	seen[named] = true
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	p.checkJSONFields(analyzer, sink, display, st, seen)
}

func (p *pass) checkJSONFields(analyzer, sink, display string, st *types.Struct, seen map[*types.Named]bool) {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		fname := display + "." + f.Name()
		if !f.Exported() {
			p.reportf(analyzer, f.Pos(),
				"field %s is unexported — encoding/json drops it, so it never reaches %s", fname, sink)
			continue
		}
		if tag := reflect.StructTag(st.Tag(i)).Get("json"); tag == "-" {
			p.reportf(analyzer, f.Pos(),
				"field %s is tagged json:\"-\" — it never reaches %s", fname, sink)
			continue
		}
		ft := f.Type()
		if ptr, ok := types.Unalias(ft).(*types.Pointer); ok {
			ft = ptr.Elem()
		}
		switch u := ft.Underlying().(type) {
		case *types.Signature, *types.Chan:
			p.reportf(analyzer, f.Pos(),
				"field %s has type %s, which encoding/json cannot encode — it never reaches %s",
				fname, types.TypeString(f.Type(), types.RelativeTo(f.Pkg())), sink)
		case *types.Struct:
			if fn, ok := types.Unalias(ft).(*types.Named); ok {
				if p.moduleDeclared(fn) && !hasMethod(fn, "MarshalJSON") {
					p.checkJSONStruct(analyzer, sink, fname, fn, seen)
				}
			} else {
				// Anonymous inline struct: its fields marshal in place.
				p.checkJSONFields(analyzer, sink, fname, u, seen)
			}
		}
	}
}

// moduleDeclared reports whether the named type is declared inside the
// module under audit (stdlib types are assumed to marshal sensibly).
func (p *pass) moduleDeclared(named *types.Named) bool {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == p.mod.Path || strings.HasPrefix(pkg.Path(), p.mod.Path+"/")
}

// checkCanonical requires a value-receiver Canonical() method returning the
// Config type itself — the normalisation step the hash is computed over.
func (p *pass) checkCanonical(cfgNamed *types.Named) {
	for i := 0; i < cfgNamed.NumMethods(); i++ {
		m := cfgNamed.Method(i)
		if m.Name() != p.cfg.CanonicalMethod {
			continue
		}
		sig := m.Type().(*types.Signature)
		if _, isPtr := sig.Recv().Type().(*types.Pointer); isPtr {
			p.reportf(confighashName, m.Pos(),
				"%s.%s must use a value receiver so hashing cannot mutate the caller's Config",
				p.cfg.ConfigType, p.cfg.CanonicalMethod)
			return
		}
		if sig.Params().Len() != 0 || sig.Results().Len() != 1 ||
			!types.Identical(sig.Results().At(0).Type(), cfgNamed) {
			p.reportf(confighashName, m.Pos(),
				"%s.%s must have signature func() %s to act as the hash normaliser",
				p.cfg.ConfigType, p.cfg.CanonicalMethod, p.cfg.ConfigType)
		}
		return
	}
	p.reportf(confighashName, cfgNamed.Obj().Pos(),
		"%s has no %s() method — the sweep cache key needs a canonical form to hash",
		p.cfg.ConfigType, p.cfg.CanonicalMethod)
}

// checkHashPayload requires the sweep hash payload to carry a field of the
// machine Config type: drop it and every machine knob leaves the cache key.
func (p *pass) checkHashPayload(cfgNamed *types.Named) {
	sweepPkg := p.mod.Lookup(p.cfg.SweepPkg)
	if sweepPkg == nil {
		p.missingAnchor("package " + p.cfg.SweepPkg)
		return
	}
	payload := lookupNamed(sweepPkg, p.cfg.HashPayloadType)
	if payload == nil {
		p.missingAnchor(p.cfg.SweepPkg + "." + p.cfg.HashPayloadType)
		return
	}
	st, ok := payload.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		if types.Identical(st.Field(i).Type(), cfgNamed) {
			return
		}
	}
	p.reportf(confighashName, payload.Obj().Pos(),
		"%s has no field of type %s.%s — the machine configuration would not reach the cache key",
		p.cfg.HashPayloadType, p.cfg.SimPkg, p.cfg.ConfigType)
}

// checkSpecFold requires every exported JobSpec field to be read by at
// least one of the fold methods (Config/Hash/Canonical): a spec knob that
// none of them touches cannot influence the cache key.
func (p *pass) checkSpecFold() {
	sweepPkg := p.mod.Lookup(p.cfg.SweepPkg)
	if sweepPkg == nil {
		return // already recorded by checkHashPayload
	}
	spec := lookupNamed(sweepPkg, p.cfg.SpecType)
	if spec == nil {
		p.missingAnchor(p.cfg.SweepPkg + "." + p.cfg.SpecType)
		return
	}
	st, ok := spec.Underlying().(*types.Struct)
	if !ok {
		return
	}
	fields := map[*types.Var]bool{} // field object -> folded?
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Exported() {
			fields[f] = false
		}
	}
	foldNames := map[string]bool{}
	for _, n := range p.cfg.SpecFoldMethods {
		foldNames[n] = true
	}
	for _, f := range sweepPkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !foldNames[fd.Name.Name] {
				continue
			}
			if recvTypeName(fd) != p.cfg.SpecType {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s, ok := p.mod.Info.Selections[sel]
				if !ok {
					return true
				}
				if v, ok := s.Obj().(*types.Var); ok {
					if _, tracked := fields[v]; tracked {
						fields[v] = true
					}
				}
				return true
			})
		}
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if folded, tracked := fields[f]; tracked && !folded {
			p.reportf(confighashName, f.Pos(),
				"exported field %s.%s is not read by %s — the knob never reaches the cache hash",
				p.cfg.SpecType, f.Name(), strings.Join(p.cfg.SpecFoldMethods, "/"))
		}
	}
}

// recvTypeName returns the bare receiver type name of a method decl.
func recvTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) != 1 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
