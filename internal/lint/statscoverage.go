package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

const statscoverageName = "statscoverage"

// statscoverage keeps every sim.Stats counter observable: each field must
// survive JSON into the dsre-report/v1 payload, the telemetry Report must
// carry the Stats struct wholesale, and the simulator must actually write
// each counter (a field nothing touches is a measurement that silently
// reads zero forever).
func statscoverage(p *pass) {
	simPkg := p.mod.Lookup(p.cfg.SimPkg)
	if simPkg == nil {
		return // recorded by confighash
	}
	stats := lookupNamed(simPkg, p.cfg.StatsType)
	if stats == nil {
		p.missingAnchor(p.cfg.SimPkg + "." + p.cfg.StatsType)
		return
	}
	p.checkJSONStruct(statscoverageName, "the dsre-report/v1 run report", p.cfg.StatsType, stats, nil)
	p.checkReportCarriesStats(stats)
	p.checkStatsReferenced(simPkg, stats)
}

// checkReportCarriesStats requires the telemetry report to hold a field of
// type sim.Stats, so new counters flow into reports without wiring.
func (p *pass) checkReportCarriesStats(stats *types.Named) {
	telPkg := p.mod.Lookup(p.cfg.TelemetryPkg)
	if telPkg == nil {
		p.missingAnchor("package " + p.cfg.TelemetryPkg)
		return
	}
	report := lookupNamed(telPkg, p.cfg.ReportType)
	if report == nil {
		p.missingAnchor(p.cfg.TelemetryPkg + "." + p.cfg.ReportType)
		return
	}
	st, ok := report.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if ptr, ok := types.Unalias(ft).(*types.Pointer); ok {
			ft = ptr.Elem()
		}
		if types.Identical(ft, stats) {
			return
		}
	}
	p.reportf(statscoverageName, report.Obj().Pos(),
		"%s has no field of type %s.%s — simulator counters would not reach the run report",
		p.cfg.ReportType, p.cfg.SimPkg, p.cfg.StatsType)
}

// checkStatsReferenced flags Stats fields that no non-test file of the
// packages owning them ever selects.  Tracking recurses through anonymous
// sub-structs and through named struct types this module declares without a
// custom MarshalJSON (unwrapping pointers, slices and arrays along the way):
// account.CPIStack rides inside Stats, so its counters are part of the
// report's surface, but they are written by internal/account — each
// recursed type's declaring package joins the write scan.
func (p *pass) checkStatsReferenced(simPkg *Package, stats *types.Named) {
	tracked := map[*types.Var]bool{}
	owner := map[*types.Var]string{}
	scan := map[*Package]bool{simPkg: true}
	seen := map[*types.Named]bool{}
	var collectType func(name string, t types.Type)
	collectStruct := func(name string, st *types.Struct) {
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			tracked[f] = false
			owner[f] = name
			collectType(name+"."+f.Name(), f.Type())
		}
	}
	collectType = func(name string, t types.Type) {
		switch tt := types.Unalias(t).(type) {
		case *types.Pointer:
			collectType(name, tt.Elem())
		case *types.Slice:
			collectType(name, tt.Elem())
		case *types.Array:
			collectType(name, tt.Elem())
		case *types.Struct:
			// Anonymous sub-struct: its fields marshal in place and belong
			// to whichever package declared the enclosing struct.
			collectStruct(name, tt)
		case *types.Named:
			// A custom MarshalJSON owns its wire format (stats.Hist), so its
			// raw fields are not the report's shape; types from outside the
			// module are assumed to maintain themselves.
			if seen[tt] || !p.moduleDeclared(tt) || hasMethod(tt, "MarshalJSON") {
				return
			}
			seen[tt] = true
			st, ok := tt.Underlying().(*types.Struct)
			if !ok {
				return
			}
			if declPkg := p.declaringPackage(tt); declPkg != nil {
				scan[declPkg] = true
			}
			collectStruct(tt.Obj().Name(), st)
		}
	}
	st, ok := stats.Underlying().(*types.Struct)
	if !ok {
		return
	}
	collectStruct(p.cfg.StatsType, st)
	for pkg := range scan {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var obj types.Object
				switch n := n.(type) {
				case *ast.SelectorExpr:
					if s, ok := p.mod.Info.Selections[n]; ok {
						obj = s.Obj()
					}
				case *ast.Ident:
					// Composite-literal keys (Stats{Cycles: ...}) resolve through
					// Uses, not Selections.
					obj = p.mod.Info.Uses[n]
				}
				if v, ok := obj.(*types.Var); ok {
					if _, t := tracked[v]; t {
						tracked[v] = true
					}
				}
				return true
			})
		}
	}
	var dead []*types.Var
	for v, used := range tracked {
		if !used {
			dead = append(dead, v)
		}
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i].Pos() < dead[j].Pos() })
	for _, v := range dead {
		p.reportf(statscoverageName, v.Pos(),
			"%s field %s is never written by the simulator — the report would carry a counter that always reads zero",
			owner[v], v.Name())
	}
}

// declaringPackage maps a module-declared named type back to the loaded
// Package that declares it.
func (p *pass) declaringPackage(named *types.Named) *Package {
	tp := named.Obj().Pkg()
	if tp == nil {
		return nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(tp.Path(), p.mod.Path), "/")
	if tp.Path() == p.mod.Path {
		rel = ""
	}
	return p.mod.Lookup(rel)
}
