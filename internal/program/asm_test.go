package program_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/workload"
)

// TestAsmRoundTripAllWorkloads: disassemble every kernel program and parse
// it back; the result must be structurally identical and emulate to the
// same architectural state.
func TestAsmRoundTripAllWorkloads(t *testing.T) {
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			size := 32
			if name == "matmul" {
				size = 8
			}
			w := workload.MustBuild(name, workload.Params{Size: size})
			text := w.Program.String()
			parsed, err := program.Parse(text)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if !reflect.DeepEqual(normalize(parsed), normalize(w.Program)) {
				t.Fatal("round-trip is not structurally identical")
			}
			a, err := emu.Run(w.Program, &w.Regs, w.Mem, emu.Options{})
			if err != nil {
				t.Fatal(err)
			}
			b, err := emu.Run(parsed, &w.Regs, w.Mem, emu.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if a.Regs != b.Regs || !a.Mem.Equal(b.Mem) || a.Insts != b.Insts {
				t.Fatal("round-tripped program emulates differently")
			}
		})
	}
}

// normalize clears representation-only differences (nil vs empty slices).
func normalize(p *isa.Program) *isa.Program {
	q := &isa.Program{Name: p.Name, Entry: p.Entry}
	for _, b := range p.Blocks {
		nb := &isa.Block{ID: b.ID, Name: b.Name}
		for _, r := range b.Reads {
			ts := append([]isa.Target{}, r.Targets...)
			nb.Reads = append(nb.Reads, isa.RegRead{Reg: r.Reg, Targets: ts})
		}
		for _, in := range b.Insts {
			ni := in
			ni.Targets = append([]isa.Target{}, in.Targets...)
			nb.Insts = append(nb.Insts, ni)
		}
		nb.Writes = append([]isa.RegWrite{}, b.Writes...)
		q.Blocks = append(q.Blocks, nb)
	}
	return q
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, wantErr string }{
		{"garbage", "wibble", "unrecognised"},
		{"bad opcode", "block 0 \"x\"\n  i0 zorp", "unknown opcode"},
		{"out of order inst", "block 0 \"x\"\n  i1 movi #1 -> w0", "out of order"},
		{"bad target", "block 0 \"x\"\n  i0 movi #1 -> q7", "bad target"},
		{"bad slot", "block 0 \"x\"\n  i0 movi #1 -> i1.z", "bad slot"},
		{"bad register", "block 0 \"x\"\n  R0 read r99 -> i0.a", "bad register"},
		{"inst outside block", "i0 movi #1 -> w0", "outside a block"},
		{"invalid program", "block 0 \"x\"\n  i0 movi #1 -> w0", "write slot"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := program.Parse(c.src)
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, c.wantErr)
			}
		})
	}
}

func TestParseHandComposed(t *testing.T) {
	src := `
program "tiny": 1 blocks, entry 0
// a comment
block 0 "only"
  R0 read r1 -> i1.a
  i0 movi #5 -> i1.b
  i1 add -> w0
  i2 bro #-1
  W0 write r2
`
	p, err := program.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var regs [isa.NumRegs]int64
	regs[1] = 10
	res, err := emu.Run(p, &regs, mem.New(), emu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Regs[2] != 15 {
		t.Fatalf("r2 = %d, want 15", res.Regs[2])
	}
}

func TestDotOutput(t *testing.T) {
	w := workload.MustBuild("stencil", workload.Params{Size: 16})
	s := program.Dot(w.Program.Blocks[0])
	for _, want := range []string{"digraph", "read r", "shape=diamond", "lsid", "->"} {
		if !strings.Contains(s, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
}
