package lsq

import (
	"repro/internal/core"
	"repro/internal/predictor"
)

// StoreUpdate records a store execution (or re-execution under DSRE: the
// same store arriving again with a possibly different address or data) and
// returns the violations it exposes: younger issued loads whose
// reconstructed value changed.  tag is the wave tag the store executed
// under (zero when un-speculative); violations it exposes carry it as
// StoreTag so forensics can chain wave depths.
func (q *Queue) StoreUpdate(k Key, addr uint64, data int64, tag core.Tag, addrCom, dataCom bool) []Violation {
	e := q.get(k)
	if e == nil || !e.isStore {
		return nil // stale message for a squashed block
	}
	first := !e.hasExec
	oldAddr, oldSize, wasLive := e.addr, e.size, e.hasExec && !e.null
	e.hasExec = true
	e.null = false
	e.addr = addr
	e.data = data
	e.tag = tag
	if addrCom && !e.addrCommitted {
		e.addrCommitted = true
	}
	if dataCom && !e.dataCommitted {
		e.dataCommitted = true
	}
	if e.addrCommitted && e.dataCommitted {
		q.markStoreCommitted(e)
	}
	if first {
		q.Stats.Stores++
		if q.ss != nil {
			q.ss.StoreDone(e.pc, predictor.DynRef{Seq: k.Seq, LSID: k.LSID})
		}
	}
	q.dirty = true
	q.certDirty = true

	// Affected range: where the store's bytes used to land plus where they
	// land now.
	var vs []Violation
	vs = q.recheckLoads(k, addr, e.size, vs)
	if wasLive && (oldAddr != addr || oldSize != e.size) {
		vs = q.recheckLoads(k, oldAddr, oldSize, vs)
	}
	if len(vs) == 0 && !first {
		q.Stats.SilentStoreHits++
	}
	return vs
}

// StoreNullify records that a predicated store resolved to not execute.
// Loads that had forwarded from a previous (mis-speculated) execution of
// this store must be re-checked.
func (q *Queue) StoreNullify(k Key) []Violation {
	e := q.get(k)
	if e == nil || !e.isStore {
		return nil
	}
	first := !e.hasExec
	oldAddr, oldSize, wasLive := e.addr, e.size, e.hasExec && !e.null
	e.hasExec = true
	e.null = true
	if first {
		q.Stats.Stores++
		if q.ss != nil {
			q.ss.StoreDone(e.pc, predictor.DynRef{Seq: k.Seq, LSID: k.LSID})
		}
	}
	q.dirty = true
	q.certDirty = true
	if wasLive {
		return q.recheckLoads(k, oldAddr, oldSize, nil)
	}
	return nil
}

// recheckLoads re-reconstructs every younger issued load overlapping
// [addr, addr+size) and emits violations for those whose value changed.
func (q *Queue) recheckLoads(store Key, addr uint64, size int, vs []Violation) []Violation {
	if size == 0 {
		return vs
	}
	se := q.get(store)
	storePC, storeTag := se.pc, se.tag
	for _, b := range q.blocks {
		if b.seq < store.Seq {
			continue
		}
		for i := range b.ops {
			l := &b.ops[i]
			if l.isStore || !l.issued || !store.Less(l.key) {
				continue
			}
			if !overlap(l.addr, l.size, addr, size) {
				continue
			}
			v, _ := q.reconstruct(l.key, l.addr, l.size)
			if v == l.data {
				continue
			}
			if l.certified {
				panic("lsq: certified load " + l.key.String() + " violated by store " + store.String() + " (unsound certification)")
			}
			l.data = v
			l.tag = q.tags.Next()
			q.Stats.Violations++
			if q.ss != nil {
				q.ss.Violation(l.pc, storePC)
			}
			vs = append(vs, Violation{
				Load:     l.key,
				Addr:     l.addr,
				Value:    v,
				Tag:      l.tag,
				LoadPC:   l.pc,
				StorePC:  storePC,
				StoreTag: storeTag,
			})
		}
	}
	return vs
}

// reconstruct assembles the value a load at key sees: for each byte, the
// youngest older live store covering it wins; uncovered bytes come from
// committed memory.  forwarded is the number of bytes supplied by stores.
func (q *Queue) reconstruct(k Key, addr uint64, size int) (val int64, forwarded int) {
	var bytes [8]byte
	var have [8]bool
	remaining := size

	// Walk blocks youngest-to-oldest up to the load's block.
	for bi := len(q.blocks) - 1; bi >= 0 && remaining > 0; bi-- {
		b := q.blocks[bi]
		if b.seq > k.Seq {
			continue
		}
		for si := len(b.ops) - 1; si >= 0 && remaining > 0; si-- {
			s := &b.ops[si]
			if !s.isStore || !s.hasExec || s.null || !s.key.Less(k) {
				continue
			}
			if !overlap(addr, size, s.addr, s.size) {
				continue
			}
			for i := 0; i < size; i++ {
				if have[i] {
					continue
				}
				ba := addr + uint64(i)
				if ba >= s.addr && ba < s.addr+uint64(s.size) {
					bytes[i] = byte(uint64(s.data) >> (8 * (ba - s.addr)))
					have[i] = true
					remaining--
				}
			}
		}
	}
	var v uint64
	for i := 0; i < size; i++ {
		bv := bytes[i]
		if !have[i] {
			bv = q.mem.ByteAt(addr + uint64(i))
		}
		v |= uint64(bv) << (8 * i)
	}
	return int64(v), size - remaining
}

// StoreCommitted marks a store's output final (its operand inputs are
// committed and it has executed with them, or it is committed-null).  This
// is the memory leg of the commit wave: younger loads may certify once all
// their older stores are committed.
func (q *Queue) StoreCommitted(k Key) {
	e := q.get(k)
	if e == nil || !e.isStore {
		return
	}
	q.markStoreCommitted(e)
}

func (q *Queue) markStoreCommitted(e *entry) {
	if e.committed {
		return
	}
	e.committed = true
	e.addrCommitted = true
	e.dataCommitted = true
	if b := q.bySeq[e.key.Seq]; b != nil {
		b.uncommittedStores--
	}
	q.dirty = true
	q.certDirty = true
}

// Drain applies the oldest block's stores to committed memory in LSID
// order, removes the block's entries, and returns the number of memory
// writes performed (for cache-drain accounting by the caller).
func (q *Queue) Drain(seq int64) int {
	b := q.bySeq[seq]
	if b == nil {
		return 0
	}
	if len(q.blocks) == 0 || q.blocks[0].seq != seq {
		panic("lsq: drain of non-oldest block")
	}
	writes := 0
	for i := range b.ops {
		s := &b.ops[i]
		if !s.isStore || s.null {
			continue
		}
		if !s.hasExec {
			panic("lsq: drain of unexecuted store " + s.key.String())
		}
		if q.ValidateDrain != nil {
			if err := q.ValidateDrain(s.key, s.addr, s.data, s.size); err != nil {
				panic(err)
			}
		}
		q.mem.Write(s.addr, s.data, s.size)
		if q.hier != nil {
			q.hier.L1D.Access(s.addr, true)
		}
		writes++
	}
	for k := range q.guard {
		if k.Seq <= seq {
			delete(q.guard, k)
		}
	}
	delete(q.bySeq, seq)
	// Compact in place: reslicing away the head would leak the backing
	// array's capacity and make the steady-state append reallocate.
	m := copy(q.blocks, q.blocks[1:])
	q.blocks[m] = nil
	q.blocks = q.blocks[:m]
	q.resident -= len(b.ops)
	q.releaseBlockOps(b)
	q.dirty = true
	q.certDirty = true
	return writes
}
