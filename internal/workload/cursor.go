package workload

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

func init() {
	register("cursor", "gcc/perlbmk (global pointer advanced through memory)", buildCursor)
}

// buildCursor walks an array through a cursor that lives in memory: every
// iteration loads the cursor, dereferences it, advances it and stores it
// back.  Each cursor load truly depends on the previous iteration's cursor
// store (distance of two memory operations, same static instruction pair),
// the access pattern compilers produce for global iterator variables.
// Aggressive issue mis-speculates on almost every iteration; flush recovery
// discards the window each time, while DSRE repairs just the cursor chain.
// mem[ResultBase] = sum of elements; the cursor cell ends past the array.
func buildCursor(p Params) (*Workload, error) {
	p = p.withDefaults(4096, 2).clampUnroll(8)
	n := roundUp(p.Size, p.Unroll)
	const cursorCell = DataBase3 // the in-memory cursor

	b := program.New("cursor")
	loop := b.NewBlock("loop")
	sum := loop.Read(rAcc)
	curp := loop.Const(cursorCell)
	end := loop.Read(rEnd)
	eight := loop.Const(8)
	cursor := loop.Load(curp, 0)
	for k := 0; k < p.Unroll; k++ {
		v := loop.Load(cursor, int64(8*k))
		sum = loop.Op(isa.OpAdd, sum, v)
	}
	next := loop.Op(isa.OpAdd, cursor, loop.Op(isa.OpMul, eight, loop.Const(int64(p.Unroll))))
	loop.Store(curp, 0, next)
	loop.Write(rAcc, sum)
	more := loop.Op(isa.OpTltu, next, end)
	loop.BranchIf(more, "loop", "done")

	done := b.NewBlock("done")
	res := done.Read(rAcc)
	done.Store(done.Const(ResultBase), 0, res)
	done.Halt()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	w := &Workload{Description: fmt.Sprintf("in-memory cursor walk over %d elements, unroll %d", n, p.Unroll), Params: p, Program: prog, Mem: mem.New()}
	seed := p.Seed
	var want int64
	for i := 0; i < n; i++ {
		v := int64(splitmix64(&seed) % 100000)
		w.Mem.Write(DataBase+uint64(8*i), v, 8)
		want += v
	}
	w.Mem.Write(cursorCell, DataBase, 8)
	w.Regs[rEnd] = DataBase + int64(8*n)
	w.Check = func(regs *[isa.NumRegs]int64, m *mem.Memory) error {
		if err := checkU64(m, ResultBase, want, "cursor sum"); err != nil {
			return err
		}
		return checkU64(m, cursorCell, DataBase+int64(8*n), "cursor final position")
	}
	return w, nil
}
