package status

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func testOptions() Options {
	reg := obs.NewRegistry()
	reg.Counter("dsre_test_total", "test counter").Add(3)
	return Options{
		Registry: reg,
		Progress: func() obs.ProgressView {
			return obs.ProgressView{Schema: obs.ProgressSchema, UptimeMS: 5}
		},
	}
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	srv := httptest.NewServer(Handler(testOptions()))
	defer srv.Close()

	if code, body := get(t, srv, "/healthz"); code != http.StatusOK ||
		!strings.Contains(body, `"status": "ok"`) ||
		!strings.Contains(body, `"sim_version"`) ||
		!strings.Contains(body, `"go_version"`) ||
		!strings.Contains(body, `"start_time_ms"`) {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get(t, srv, "/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "# TYPE dsre_test_total counter") ||
		!strings.Contains(body, "dsre_test_total 3") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body := get(t, srv, "/progress"); code != http.StatusOK ||
		!strings.Contains(body, `"schema": "dsre-progress/v1"`) {
		t.Errorf("/progress = %d %q", code, body)
	}
	if code, body := get(t, srv, "/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("/ = %d %q", code, body)
	}
	if code, _ := get(t, srv, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
	if code, _ := get(t, srv, "/no/such/page"); code != http.StatusNotFound {
		t.Errorf("unknown path = %d, want 404", code)
	}
}

func TestHandlerNilSurfaces(t *testing.T) {
	srv := httptest.NewServer(Handler(Options{}))
	defer srv.Close()
	if code, _ := get(t, srv, "/metrics"); code != http.StatusNotFound {
		t.Errorf("nil registry /metrics = %d, want 404", code)
	}
	if code, _ := get(t, srv, "/progress"); code != http.StatusNotFound {
		t.Errorf("nil progress /progress = %d, want 404", code)
	}
	if code, _ := get(t, srv, "/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", code)
	}
}

// TestServeLifecycle pins the real listener path: bind on :0, resolve the
// address, answer a request, refuse bad addresses synchronously.
func TestServeLifecycle(t *testing.T) {
	s, err := Serve("127.0.0.1:0", testOptions())
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer s.Close()

	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + s.Addr() + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}

	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if _, err := Serve("256.0.0.1:bad", Options{}); err == nil {
		t.Error("Serve accepted an unusable address")
	}
}
