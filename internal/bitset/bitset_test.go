package bitset

import (
	"math/rand"
	"testing"
)

func TestMask32(t *testing.T) {
	var m Mask32
	if !m.Empty() || m.Min() != -1 || m.Max() != -1 || m.Count() != 0 {
		t.Fatalf("zero mask: %v %d %d %d", m.Empty(), m.Min(), m.Max(), m.Count())
	}
	m.Set(0)
	m.Set(31)
	m.Set(7)
	if m.Empty() || m.Count() != 3 || m.Min() != 0 || m.Max() != 31 {
		t.Fatalf("after sets: count=%d min=%d max=%d", m.Count(), m.Min(), m.Max())
	}
	if !m.Test(7) || m.Test(8) {
		t.Fatal("Test wrong")
	}
	if got := m.Below(8); got != 0b1000_0001 {
		t.Fatalf("Below(8) = %#b", got)
	}
	if got := m.Below(0); got != 0 {
		t.Fatalf("Below(0) = %#b", got)
	}
	if got := m.Above(7); got != 1<<31 {
		t.Fatalf("Above(7) = %#b", got)
	}
	if got := m.Above(31); got != 0 {
		t.Fatalf("Above(31) = %#b", got)
	}
	m.Clear(0)
	if m.Min() != 7 {
		t.Fatalf("min after clear = %d", m.Min())
	}
}

func TestMask128Boundaries(t *testing.T) {
	var m Mask128
	if !m.Empty() || m.Min() != -1 {
		t.Fatal("zero mask not empty")
	}
	// Single bit at every word-boundary position.
	for _, i := range []int{0, 1, 63, 64, 65, 127} {
		m.Reset()
		m.Set(i)
		if m.Min() != i || m.Count() != 1 || !m.Test(i) {
			t.Fatalf("single bit %d: min=%d count=%d", i, m.Min(), m.Count())
		}
		m.Clear(i)
		if !m.Empty() {
			t.Fatalf("bit %d did not clear", i)
		}
	}
	// Full mask: 128 in-flight instructions in one block.
	for i := 0; i < 128; i++ {
		m.Set(i)
	}
	if m.Count() != 128 {
		t.Fatalf("full mask count = %d", m.Count())
	}
	for i := 0; i < 128; i++ {
		if m.Min() != i {
			t.Fatalf("drain at %d: min = %d", i, m.Min())
		}
		m.Clear(i)
	}
	if !m.Empty() {
		t.Fatal("full mask did not drain")
	}
	// Min must prefer word 0 over word 1.
	m.Reset()
	m.Set(100)
	m.Set(63)
	if m.Min() != 63 {
		t.Fatalf("cross-word min = %d", m.Min())
	}
}

func TestRingFirstFromSingleWord(t *testing.T) {
	r := NewRing(8) // rounds up to 64
	if r.Size() != 64 {
		t.Fatalf("size = %d", r.Size())
	}
	if r.FirstFrom(0) != -1 || !r.Empty() {
		t.Fatal("empty ring")
	}
	r.Set(5)
	r.Set(60)
	for start, want := range map[int]int{0: 5, 5: 5, 6: 60, 60: 60, 61: 5, 63: 5} {
		if got := r.FirstFrom(start); got != want {
			t.Errorf("FirstFrom(%d) = %d, want %d", start, got, want)
		}
	}
	r.Clear(5)
	if got := r.FirstFrom(61); got != 60 {
		t.Errorf("wrap to only bit: FirstFrom(61) = %d, want 60", got)
	}
	if r.Count() != 1 {
		t.Fatalf("count = %d", r.Count())
	}
}

func TestRingFirstFromMultiWord(t *testing.T) {
	r := NewRing(100) // rounds up to 128, two words
	if r.Size() != 128 {
		t.Fatalf("size = %d", r.Size())
	}
	r.Set(70)
	for start, want := range map[int]int{0: 70, 70: 70, 71: 70, 127: 70} {
		if got := r.FirstFrom(start); got != want {
			t.Errorf("FirstFrom(%d) = %d, want %d", start, got, want)
		}
	}
	r.Set(3)
	if got := r.FirstFrom(71); got != 3 {
		t.Errorf("wrap across words: FirstFrom(71) = %d, want 3", got)
	}
	if got := r.FirstFrom(4); got != 70 {
		t.Errorf("FirstFrom(4) = %d, want 70", got)
	}
	r.Clear(70)
	r.Clear(3)
	if got := r.FirstFrom(90); got != -1 {
		t.Errorf("emptied ring FirstFrom = %d", got)
	}
}

// TestRingFirstFromExhaustive cross-checks FirstFrom against a naive cyclic
// scan for random occupancies over both the one-word and multi-word paths.
func TestRingFirstFromExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, size := range []int{64, 128, 256} {
		r := NewRing(size)
		for trial := 0; trial < 200; trial++ {
			// Random occupancy, including empty and near-full.
			want := make([]bool, size)
			n := rng.Intn(size + 1)
			for i := range r.words {
				r.words[i] = 0
			}
			for k := 0; k < n; k++ {
				i := rng.Intn(size)
				r.Set(i)
				want[i] = true
			}
			for start := 0; start < size; start++ {
				naive := -1
				for k := 0; k < size; k++ {
					if want[(start+k)%size] {
						naive = (start + k) % size
						break
					}
				}
				if got := r.FirstFrom(start); got != naive {
					t.Fatalf("size %d trial %d: FirstFrom(%d) = %d, want %d",
						size, trial, start, got, naive)
				}
			}
		}
	}
}
