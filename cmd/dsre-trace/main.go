// dsre-trace inspects EDGE programs: it disassembles a workload's blocks
// and profiles its dynamic behaviour on the architectural emulator
// (instruction mix, store→load dependence distances, block trace).
//
// Usage:
//
//	dsre-trace -workload stencil            # disassembly + profile
//	dsre-trace -workload bank -disasm=false # profile only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/emu"
	"repro/internal/program"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	name := flag.String("workload", "", "kernel to inspect")
	check := flag.String("check", "", "parse and validate an EDGE assembly file, then exit")
	save := flag.String("save", "", "write the workload's program as EDGE assembly to this file")
	size := flag.Int("size", 0, "workload size (0 = default)")
	unroll := flag.Int("unroll", 0, "unroll factor (0 = default)")
	seed := flag.Uint64("seed", 0, "workload seed")
	disasm := flag.Bool("disasm", true, "print block disassembly")
	dot := flag.Bool("dot", false, "emit Graphviz dataflow graphs instead of text")
	trace := flag.Int("trace", 0, "print the first N committed block IDs")
	jsonOut := flag.String("json", "", "write the dynamic profile as machine-readable JSON to this file")
	flag.Parse()

	if *check != "" {
		src, err := os.ReadFile(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsre-trace:", err)
			os.Exit(1)
		}
		p, err := program.Parse(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsre-trace:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: OK — %d blocks, %d instructions\n", *check, len(p.Blocks), p.StaticInsts())
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "dsre-trace: -workload required; have", workload.Names())
		os.Exit(2)
	}
	w, err := workload.Build(*name, workload.Params{Size: *size, Unroll: *unroll, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsre-trace:", err)
		os.Exit(1)
	}

	if *save != "" {
		if err := os.WriteFile(*save, []byte(w.Program.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dsre-trace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *save)
		return
	}
	if *dot {
		for _, blk := range w.Program.Blocks {
			fmt.Print(program.Dot(blk))
		}
		return
	}
	fmt.Printf("workload %s — %s\n", w.Name, w.Description)
	fmt.Printf("analog: %s\n\n", w.Analog)
	if *disasm {
		fmt.Print(w.Program.String())
		fmt.Println()
	}

	res, err := w.RunEmulator(emu.Options{CollectOracle: true, TraceBlocks: *trace})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsre-trace: emulate:", err)
		os.Exit(1)
	}

	t := stats.NewTable("dynamic profile", "metric", "value")
	t.Row("blocks", res.Blocks)
	t.Row("instructions", res.Insts)
	t.Row("insts/block", float64(res.Insts)/float64(res.Blocks))
	t.Row("loads", res.Loads)
	t.Row("stores", res.Stores)
	t.Row("loads with in-window deps (est)", len(res.Oracle))
	fmt.Println(t)

	fmt.Println("store→load dependence distance histogram (dynamic memory ops):")
	total := int64(0)
	for _, n := range res.DepDistance {
		total += n
	}
	if total == 0 {
		fmt.Println("  (no store→load dependences)")
	}
	for i, n := range res.DepDistance {
		if n == 0 {
			continue
		}
		lo := 1 << uint(i)
		if i == 0 {
			lo = 0
		}
		fmt.Printf("  distance %6d+ : %8d (%.1f%%)\n", lo, n, 100*float64(n)/float64(total))
	}

	if *trace > 0 {
		fmt.Printf("\nfirst %d committed blocks: %v\n", len(res.BlockTrace), res.BlockTrace)
	}
	if *jsonOut != "" {
		profile := struct {
			Schema      string  `json:"schema"`
			Workload    string  `json:"workload"`
			Blocks      int64   `json:"blocks"`
			Insts       int64   `json:"insts"`
			InstsBlock  float64 `json:"insts_per_block"`
			Loads       int64   `json:"loads"`
			Stores      int64   `json:"stores"`
			OracleDeps  int     `json:"loads_with_in_window_deps"`
			DepDistance []int64 `json:"dep_distance_hist"`
		}{
			Schema: "dsre-profile/v1", Workload: w.Name,
			Blocks: res.Blocks, Insts: res.Insts,
			InstsBlock: float64(res.Insts) / float64(res.Blocks),
			Loads:      res.Loads, Stores: res.Stores,
			OracleDeps: len(res.Oracle), DepDistance: res.DepDistance[:],
		}
		data, err := json.MarshalIndent(&profile, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsre-trace:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dsre-trace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote profile to %s\n", *jsonOut)
	}
	if err := w.Check(&res.Regs, res.Mem); err != nil {
		fmt.Fprintln(os.Stderr, "dsre-trace: reference check FAILED:", err)
		os.Exit(1)
	}
	fmt.Println("\nreference check: OK")
}
