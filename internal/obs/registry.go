// Package obs is the fleet-level observability layer: a zero-dependency
// typed metrics registry with Prometheus text exposition, a structured
// job-lifecycle event log (dsre-events/v2), per-job lifecycle spans with a
// per-worker Chrome-trace export, and the live-progress state behind the
// CLIs' -status HTTP endpoint (internal/obs/status).
//
// The package is deterministic-when-off by construction and is audited by
// dsre-lint's determinism analyzer: it never reads the wall clock (every
// hook takes the caller's time.Time), never spawns goroutines (the HTTP
// server lives in the internal/obs/status subpackage, outside the audited
// set), and never iterates maps with order-dependent effects.  Consumers
// (the sweep engine) keep every hook behind a single nil check, so a
// disabled observer costs one pointer compare and zero allocations.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric with atomic updates.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter; negative deltas panic (counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("obs: counter %s decremented by %d", c.name, n))
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the metric name.
func (c *Counter) Name() string { return c.name }

// Gauge is a metric that can go up and down, with atomic updates.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add shifts the gauge by a (possibly negative) delta.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the metric name.
func (g *Gauge) Name() string { return g.name }

// Histogram is a fixed-bound cumulative histogram.  Bounds are upper
// bucket bounds in ascending order; an implicit +Inf bucket catches the
// tail.  Observations and the running sum are atomic, so concurrent
// workers can observe without a lock.
type Histogram struct {
	name, help string
	bounds     []float64
	counts     []atomic.Int64 // len(bounds)+1; last is +Inf
	sumBits    atomic.Uint64  // math.Float64bits of the running sum
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Name returns the metric name.
func (h *Histogram) Name() string { return h.name }

// DurationBounds are the default bucket bounds (seconds) for job-latency
// histograms: 1ms up to 5 minutes, roughly ×2.5 per step.
var DurationBounds = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}

// CounterVec is a family of counters sharing one name, distinguished by a
// fixed label set (the RED per-route request counters).  Children are
// created on first use and live forever; label cardinality is
// programmer-bounded (routes × status classes), never request-derived.
type CounterVec struct {
	name, help string
	labels     []string

	mu       sync.Mutex
	children map[string]*Counter
}

// With returns the child counter for one ordered label-value tuple,
// creating it on first use.  Arity mismatches panic.
func (v *CounterVec) With(values ...string) *Counter {
	key := labelString(v.name, v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		c = &Counter{name: v.name + "{" + key + "}", help: v.help}
		v.children[key] = c
	}
	return c
}

// childKeys returns the label keys in sorted order (deterministic render).
func (v *CounterVec) childKeys() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children { //lint:ordered — keys are sorted immediately below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// HistogramVec is a family of fixed-bound histograms sharing one name and
// bucket layout, distinguished by a fixed label set (the RED per-route
// latency histograms).
type HistogramVec struct {
	name, help string
	labels     []string
	bounds     []float64

	mu       sync.Mutex
	children map[string]*Histogram
}

// With returns the child histogram for one ordered label-value tuple,
// creating it on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := labelString(v.name, v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[key]
	if !ok {
		h = &Histogram{name: v.name, help: v.help, bounds: append([]float64(nil), v.bounds...)}
		h.counts = make([]atomic.Int64, len(v.bounds)+1)
		v.children[key] = h
	}
	return h
}

func (v *HistogramVec) childKeys() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children { //lint:ordered — keys are sorted immediately below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// labelString renders one ordered label tuple as `k1="v1",k2="v2"`, label
// names in declaration order, values escaped for the text exposition.
func labelString(name string, labels, values []string) string {
	if len(values) != len(labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", name, len(labels), len(values)))
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Snapshot is a point-in-time copy of every registered metric, sorted by
// name within each kind, so consumers (the progress JSON, tests) see a
// stable, race-free view.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// CounterValue is one counter's snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one gauge's snapshot.
type GaugeValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramValue is one histogram's snapshot; Counts are per-bucket (not
// cumulative) with the +Inf bucket last.
type HistogramValue struct {
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Counter returns the named counter from a snapshot, or 0.
func (s Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the named gauge from a snapshot, or 0.
func (s Snapshot) Gauge(name string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// Registry holds typed metrics and renders them in Prometheus text
// exposition format.  Registration takes a lock; updates on the returned
// handles are lock-free atomics.
type Registry struct {
	mu          sync.Mutex
	names       map[string]bool
	counters    []*Counter
	gauges      []*Gauge
	hists       []*Histogram
	counterVecs []*CounterVec
	histVecs    []*HistogramVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

func (r *Registry) registerLocked(name string) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if r.names[name] {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	r.names[name] = true
}

// Counter registers and returns a new counter.  Duplicate or malformed
// names panic: metric registration is programmer-controlled.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.registerLocked(name)
	c := &Counter{name: name, help: help}
	r.counters = append(r.counters, c)
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.registerLocked(name)
	g := &Gauge{name: name, help: help}
	r.gauges = append(r.gauges, g)
	return g
}

// Histogram registers and returns a new histogram with the given ascending
// upper bucket bounds (a trailing +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending at %v", name, bounds[i]))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.registerLocked(name)
	h := &Histogram{name: name, help: help, bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	r.hists = append(r.hists, h)
	return h
}

// CounterVec registers and returns a labelled counter family.  The family
// name reserves the registry slot; children render as name{labels}.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: counter vec %q needs at least one label", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.registerLocked(name)
	v := &CounterVec{name: name, help: help, labels: append([]string(nil), labels...), children: map[string]*Counter{}}
	r.counterVecs = append(r.counterVecs, v)
	return v
}

// HistogramVec registers and returns a labelled histogram family sharing
// one ascending bucket layout.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram vec %q needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram vec %q bounds not ascending at %v", name, bounds[i]))
		}
	}
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: histogram vec %q needs at least one label", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.registerLocked(name)
	v := &HistogramVec{
		name: name, help: help,
		labels: append([]string(nil), labels...), bounds: append([]float64(nil), bounds...),
		children: map[string]*Histogram{},
	}
	r.histVecs = append(r.histVecs, v)
	return v
}

// Snapshot copies every metric's current value, each kind sorted by name.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := append([]*Counter(nil), r.counters...)
	gauges := append([]*Gauge(nil), r.gauges...)
	hists := append([]*Histogram(nil), r.hists...)
	counterVecs := append([]*CounterVec(nil), r.counterVecs...)
	histVecs := append([]*HistogramVec(nil), r.histVecs...)
	r.mu.Unlock()

	for _, v := range counterVecs {
		for _, key := range v.childKeys() {
			v.mu.Lock()
			c := v.children[key]
			v.mu.Unlock()
			counters = append(counters, c)
		}
	}

	var s Snapshot
	for _, c := range counters {
		s.Counters = append(s.Counters, CounterValue{Name: c.name, Value: c.Value()})
	}
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: g.name, Value: g.Value()})
	}
	type namedHist struct {
		name string
		h    *Histogram
	}
	all := make([]namedHist, 0, len(hists))
	for _, h := range hists {
		all = append(all, namedHist{name: h.name, h: h})
	}
	for _, v := range histVecs {
		for _, key := range v.childKeys() {
			v.mu.Lock()
			h := v.children[key]
			v.mu.Unlock()
			all = append(all, namedHist{name: v.name + "{" + key + "}", h: h})
		}
	}
	for _, nh := range all {
		h := nh.h
		hv := HistogramValue{Name: nh.name, Bounds: append([]float64(nil), h.bounds...)}
		for i := range h.counts {
			n := h.counts[i].Load()
			hv.Counts = append(hv.Counts, n)
			hv.Count += n
		}
		hv.Sum = math.Float64frombits(h.sumBits.Load())
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4), all metrics sorted by name, so scrapes and
// golden tests are deterministic for a given set of values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	type entry struct {
		name, help, kind string
		c                *Counter
		g                *Gauge
		h                *Histogram
		cv               *CounterVec
		hv               *HistogramVec
	}
	entries := make([]entry, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.counterVecs)+len(r.histVecs))
	for _, c := range r.counters {
		entries = append(entries, entry{name: c.name, help: c.help, kind: "counter", c: c})
	}
	for _, g := range r.gauges {
		entries = append(entries, entry{name: g.name, help: g.help, kind: "gauge", g: g})
	}
	for _, h := range r.hists {
		entries = append(entries, entry{name: h.name, help: h.help, kind: "histogram", h: h})
	}
	for _, v := range r.counterVecs {
		entries = append(entries, entry{name: v.name, help: v.help, kind: "counter", cv: v})
	}
	for _, v := range r.histVecs {
		entries = append(entries, entry{name: v.name, help: v.help, kind: "histogram", hv: v})
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	for _, e := range entries {
		if e.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, escapeHelp(e.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.kind); err != nil {
			return err
		}
		var err error
		switch {
		case e.c != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", e.name, e.c.Value())
		case e.g != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", e.name, e.g.Value())
		case e.h != nil:
			err = writeHistogram(w, e.h)
		case e.cv != nil:
			err = writeCounterVec(w, e.cv)
		case e.hv != nil:
			err = writeHistogramVec(w, e.hv)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeCounterVec(w io.Writer, v *CounterVec) error {
	for _, key := range v.childKeys() {
		v.mu.Lock()
		c := v.children[key]
		v.mu.Unlock()
		if _, err := fmt.Fprintf(w, "%s{%s} %d\n", v.name, key, c.Value()); err != nil {
			return err
		}
	}
	return nil
}

func writeHistogramVec(w io.Writer, v *HistogramVec) error {
	for _, key := range v.childKeys() {
		v.mu.Lock()
		h := v.children[key]
		v.mu.Unlock()
		cum := int64(0)
		for i := range h.counts {
			cum += h.counts[i].Load()
			le := "+Inf"
			if i < len(h.bounds) {
				le = formatFloat(h.bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", v.name, key, le, cum); err != nil {
				return err
			}
		}
		sum := math.Float64frombits(h.sumBits.Load())
		if _, err := fmt.Fprintf(w, "%s_sum{%s} %s\n", v.name, key, formatFloat(sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count{%s} %d\n", v.name, key, cum); err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, h *Histogram) error {
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, le, cum); err != nil {
			return err
		}
	}
	sum := math.Float64frombits(h.sumBits.Load())
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", h.name, formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", h.name, cum)
	return err
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// validMetricName enforces the Prometheus metric-name charset:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
