package account

import (
	"sort"

	"repro/internal/core"
	"repro/internal/predictor"
)

// EventKind classifies one audited mis-speculation repair.
type EventKind uint8

const (
	// EventFlush: the violation was repaired by a pipeline flush.
	EventFlush EventKind = iota
	// EventWave: the violation was repaired in place by a DSRE
	// re-execution wave.
	EventWave
	// EventVP: a mispredicted load value was repaired by a correction wave.
	EventVP
)

func (k EventKind) String() string {
	switch k {
	case EventFlush:
		return "flush"
	case EventWave:
		return "wave"
	case EventVP:
		return "vp"
	}
	return "?"
}

// dynLoad identifies one dynamic load instance (block sequence number +
// load/store ID within the block), so repeated repairs of the same load can
// be detected.
type dynLoad struct {
	seq  int64
	lsid int
}

// event is one audited repair.  cost is the number of executions the repair
// discarded (flush) or would have discarded under flush recovery
// (squash-equivalent, for waves).
type event struct {
	kind       EventKind
	loadPC     predictor.PC
	storePC    predictor.PC
	tag        core.Tag
	depth      int32
	cost       int64
	superseded bool
}

// Forensics is the always-on violation audit log: one event per repaired
// violation (or value-prediction correction), plus the wave-depth chain
// (a wave triggered by a store that itself ran under wave T has depth
// depth(T)+1) and re-violation tracking (a later repair of the same dynamic
// load marks the earlier event superseded — its re-executions were wasted).
type Forensics struct {
	events []event
	last   map[dynLoad]int32
	depth  map[core.Tag]int32
}

func NewForensics() *Forensics {
	return &Forensics{
		last:  make(map[dynLoad]int32),
		depth: make(map[core.Tag]int32),
	}
}

// Record logs one repair.  seq/lsid name the dynamic load, loadPC/storePC
// the static violation pair (storePC is zero for value-prediction events),
// tag the repair wave, parent the conflicting store's wave tag (zero if the
// store ran un-speculatively), and cost the discarded or squash-equivalent
// execution count.
func (f *Forensics) Record(kind EventKind, seq int64, lsid int, loadPC, storePC predictor.PC, tag, parent core.Tag, cost int64) {
	d := f.depth[parent] + 1
	if tag != 0 {
		f.depth[tag] = d
	}
	dl := dynLoad{seq: seq, lsid: lsid}
	if prev, ok := f.last[dl]; ok {
		f.events[prev].superseded = true
	}
	f.last[dl] = int32(len(f.events))
	f.events = append(f.events, event{
		kind: kind, loadPC: loadPC, storePC: storePC,
		tag: tag, depth: d, cost: cost,
	})
}

// Events returns the number of audited repairs.
func (f *Forensics) Events() int { return len(f.events) }

// StoreCount is one conflicting-store entry of a load profile.
type StoreCount struct {
	StorePC string `json:"store_pc"`
	Count   int64  `json:"count"`
}

// LoadProfile aggregates the audit log for one static load PC, hottest
// first in Summary.Loads.
type LoadProfile struct {
	LoadPC     string       `json:"load_pc"`
	Events     int64        `json:"events"`
	Flushes    int64        `json:"flushes"`
	Waves      int64        `json:"waves"`
	VPRepairs  int64        `json:"vp_repairs"`
	Reexecs    int64        `json:"reexecs"`
	SquashCost int64        `json:"squash_cost"`
	Wasted     int64        `json:"wasted"`
	MaxDepth   int64        `json:"max_depth"`
	TopStores  []StoreCount `json:"top_stores,omitempty"`
}

// Summary is the aggregated audit log, embedded in sim.Stats (and thus in
// dsre-report/v1).  The counters tie exactly to the Stats totals:
// FlushEvents+WaveEvents == LSQ.Violations, VPEvents == VPCorrections, and
// WaveReexecs+UnattributedReexecs == Reexecs.
type Summary struct {
	Events              int64         `json:"events"`
	FlushEvents         int64         `json:"flush_events"`
	WaveEvents          int64         `json:"wave_events"`
	VPEvents            int64         `json:"vp_events"`
	WaveReexecs         int64         `json:"wave_reexecs"`
	UnattributedReexecs int64         `json:"unattributed_reexecs"`
	WastedReexecs       int64         `json:"wasted_reexecs"`
	SquashCost          int64         `json:"squash_cost"`
	MaxDepth            int64         `json:"max_depth"`
	Loads               []LoadProfile `json:"loads,omitempty"`
}

// Summarize folds the audit log into per-PC profiles.  waveSize reports the
// re-executions attributed to a wave tag (core.WaveStats.WaveSize);
// totalReexecs is the machine's total re-execution counter, so the summary
// can expose the re-executions no audited wave accounts for.  top caps the
// Loads list and each TopStores list (<= 0 means unlimited).
func (f *Forensics) Summarize(waveSize func(core.Tag) int64, totalReexecs int64, top int) Summary {
	s := Summary{Events: int64(len(f.events))}
	// Aggregate in first-seen order: the event log is a slice, so the
	// profile order is deterministic without sorting keys.
	idx := make(map[predictor.PC]int)
	var profiles []*LoadProfile
	var stores [][]StoreCount // parallel to profiles
	for i := range f.events {
		ev := &f.events[i]
		pi, ok := idx[ev.loadPC]
		if !ok {
			pi = len(profiles)
			idx[ev.loadPC] = pi
			profiles = append(profiles, &LoadProfile{LoadPC: ev.loadPC.String()})
			stores = append(stores, nil)
		}
		p := profiles[pi]
		p.Events++
		p.SquashCost += ev.cost
		s.SquashCost += ev.cost
		if int64(ev.depth) > p.MaxDepth {
			p.MaxDepth = int64(ev.depth)
		}
		if int64(ev.depth) > s.MaxDepth {
			s.MaxDepth = int64(ev.depth)
		}
		var re int64
		switch ev.kind {
		case EventFlush:
			s.FlushEvents++
			p.Flushes++
		case EventWave:
			s.WaveEvents++
			p.Waves++
			re = waveSize(ev.tag)
		case EventVP:
			s.VPEvents++
			p.VPRepairs++
			re = waveSize(ev.tag)
		}
		s.WaveReexecs += re
		p.Reexecs += re
		if ev.superseded {
			s.WastedReexecs += re
			p.Wasted += re
		}
		if ev.storePC != 0 {
			spc := ev.storePC.String()
			sc := stores[pi]
			found := false
			for j := range sc {
				if sc[j].StorePC == spc {
					sc[j].Count++
					found = true
					break
				}
			}
			if !found {
				sc = append(sc, StoreCount{StorePC: spc, Count: 1})
			}
			stores[pi] = sc
		}
	}
	s.UnattributedReexecs = totalReexecs - s.WaveReexecs
	// Hottest loads first; ties keep first-seen (dynamic) order.
	ordered := make([]LoadProfile, len(profiles))
	for i, p := range profiles {
		sc := stores[i]
		sort.SliceStable(sc, func(a, b int) bool { return sc[a].Count > sc[b].Count })
		if top > 0 && len(sc) > top {
			sc = sc[:top]
		}
		p.TopStores = sc
		ordered[i] = *p
	}
	sort.SliceStable(ordered, func(a, b int) bool { return ordered[a].Events > ordered[b].Events })
	if top > 0 && len(ordered) > top {
		ordered = ordered[:top]
	}
	if len(ordered) > 0 {
		s.Loads = ordered
	}
	return s
}
