package sim

import (
	"testing"

	"repro/internal/isa"
)

func TestLastTargetPred(t *testing.T) {
	p := newLastTargetPred()
	if got := p.predict(5); got != 5 {
		t.Errorf("untrained predict = %d, want self-loop 5", got)
	}
	p.train(5, 9)
	if got := p.predict(5); got != 9 {
		t.Errorf("trained predict = %d, want 9", got)
	}
	p.train(5, 5)
	if got := p.predict(5); got != 5 {
		t.Errorf("retrained predict = %d, want 5", got)
	}
}

func TestTwoLevelLearnsAlternation(t *testing.T) {
	p := newTwoLevelPred(10)
	// Block 0 alternates its successor: 0,0,0,1, 0,0,0,1, ... (a 4-periodic
	// inner/outer loop exit).  With history the pattern becomes learnable.
	pattern := []int{0, 0, 0, 1}
	// Train for several periods.
	for round := 0; round < 16; round++ {
		for _, next := range pattern {
			p.train(0, next)
		}
	}
	// Now predictions must follow the pattern.
	correct := 0
	for round := 0; round < 4; round++ {
		for _, next := range pattern {
			if p.predict(0) == next {
				correct++
			}
			p.train(0, next)
		}
	}
	if correct < 14 { // 16 predictions, allow slack for table collisions
		t.Errorf("two-level predicted %d/16 of a period-4 pattern", correct)
	}
}

func TestPerfectPredFollowsTrace(t *testing.T) {
	p := &perfectPred{trace: []int{3, 1, 4, 1}}
	p.seq = 2
	if got := p.predict(99); got != 4 {
		t.Errorf("predict at seq 2 = %d, want 4", got)
	}
	p.seq = 10
	if got := p.predict(99); got != isa.HaltTarget {
		t.Errorf("predict past trace = %d, want halt", got)
	}
}

func TestNewBlockPredValidation(t *testing.T) {
	if _, err := newBlockPred(PredTwoLevel, 0, nil); err == nil {
		t.Error("zero-bit two-level accepted")
	}
	if _, err := newBlockPred(PredPerfect, 12, nil); err == nil {
		t.Error("perfect predictor without trace accepted")
	}
	if _, err := newBlockPred(BlockPredKind(99), 12, nil); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestPlacementRoundRobinDeterministic(t *testing.T) {
	b := &isa.Block{ID: 0, Name: "x", Insts: make([]isa.Inst, 40)}
	for i := range b.Insts {
		b.Insts[i] = isa.Inst{Op: isa.OpMovi, LSID: isa.NoLSID}
	}
	p := &isa.Program{Blocks: []*isa.Block{b}}
	place, err := computePlacement(PlaceRoundRobin, p, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i, tile := range place[0] {
		if tile != i%16 {
			t.Fatalf("inst %d on tile %d", i, tile)
		}
	}
	if _, err := computePlacement(PlacementKind(42), p, 16); err == nil {
		t.Error("unknown placement accepted")
	}
}

func TestKindStrings(t *testing.T) {
	if PredLastTarget.String() == "unknown" || PredTwoLevel.String() == "unknown" || PredPerfect.String() == "unknown" {
		t.Error("predictor kind names")
	}
	if PlaceRoundRobin.String() == "unknown" || PlaceChain.String() == "unknown" {
		t.Error("placement kind names")
	}
}
