// Package acct declares counters that ride inside sim.Stats wholesale; the
// writes happen here, not in the sim package, so coverage must scan the
// declaring package too.
package acct

// Counters is embedded in sim.Stats as a named field.
type Counters struct {
	Hits int64
	Cold int64 // want: nothing ever writes it, in any package
}

// Bump is the only writer of Hits.
func (c *Counters) Bump() { c.Hits++ }

// Wire owns its JSON shape, so its raw fields are exempt from coverage.
type Wire struct {
	hidden int64
}

func (w Wire) MarshalJSON() ([]byte, error) { return []byte(`{}`), nil }
