// Package noc models the operand network of a TRIPS-like EDGE processor: a
// 2-D mesh with dimension-order (X-then-Y) routing, a configurable per-hop
// latency, and per-link bandwidth with FIFO queueing.
//
// The network is generic over its payload so it carries operand messages,
// commit-wave tokens, memory traffic and control messages without knowing
// their contents.  Links preserve FIFO order, but messages taking different
// routes may be reordered — the DSRE protocol's wave tags are what make that
// safe, and the simulator's tests rely on it.
//
// Ticking is activity-tracked: an index of routers with resident flits
// (non-empty link queues) lets Tick visit only live routers,
// in ascending node order so results are bit-identical to the dense scan
// (Config.DenseTick restores the dense scan for differential testing).
package noc

import (
	"fmt"
	"math/bits"
)

// Dir is a mesh link direction.
type dir int

const (
	dirE dir = iota
	dirW
	dirN
	dirS
	numDirs
)

// Config describes the mesh.
type Config struct {
	Width  int
	Height int
	// HopLatency is the per-hop transit time in cycles (>= 1).
	HopLatency int
	// LinkBandwidth is the number of messages one link accepts per cycle.
	LinkBandwidth int
	// LocalLatency is the delivery delay for messages whose source and
	// destination coincide (same-tile bypass); >= 1.
	LocalLatency int
	// DenseTick makes Tick scan every router instead of only the active
	// ones — the reference path the active-index bookkeeping is verified
	// against (sim.Config.SlowTick selects it).
	DenseTick bool
}

// Stats counts network activity.
type Stats struct {
	Messages  int64 // injected
	Delivered int64
	Hops      int64 // link traversals
	QueueWait int64 // cycles messages spent waiting for link bandwidth
}

// flit is one in-flight message's pooled payload: the message plus its
// routing header.  Flits live in the network's pool and are written once at
// injection and read once at delivery; the link queues move 24-byte entry
// indices between hops, never the payload.
type flit[T any] struct {
	msg T
	dst int32
	// dstX/dstY are dst's mesh coordinates, resolved once at injection so
	// per-hop routing is pure compares (no divisions).
	dstX, dstY int16
}

// entry is one link-queue (or local-queue) element: a pool index plus the
// timing the queue tracks.  This is what per-hop forwarding copies.
type entry struct {
	idx      int32
	enqueued int64 // cycle it entered the current queue, for QueueWait
	arriveAt int64
}

// link is one outgoing mesh link's FIFO, with two watermarks instead of two
// queues: entries in [head, sent) are on the wire (arriveAt stamped),
// entries in [sent, len) await link bandwidth, and entries before head have
// been consumed and are reclaimed when the queue drains (or by occasional
// compaction).  Transmission is therefore a pure in-place stamp — only an
// entry is copied per hop, into the next router's queue.
type link struct {
	q          []entry
	head, sent int
}

type router struct {
	links [numDirs]link
	// resident counts unconsumed flits across the links; the active index
	// tracks resident > 0.
	resident int
	// wireMask/waitMask mark directions whose wire region [head, sent) /
	// awaiting region [sent, len) is non-empty, so the tick phases probe
	// only occupied links instead of all five headers.
	wireMask, waitMask uint8
	// neigh[d] is the static far end of link d (node index and mesh
	// coordinates); node is -1 on mesh edges, where routing never sends.
	neigh [numDirs]neighborInfo
}

// neighborInfo is one precomputed link endpoint.
type neighborInfo struct {
	node int32
	x, y int16
}

// Network is the mesh.  Deliver is invoked during Tick for every message
// reaching its destination's local port.
type Network[T any] struct {
	cfg     Config
	routers []router
	// flits is the payload pool; free lists its reusable slots.  Both reach
	// a high-water mark and stay allocation-free in steady state.
	flits []flit[T]
	free  []int32
	local []entry // src==dst messages awaiting local delivery
	// localSpare is the detached buffer Tick swaps with local, so local
	// delivery with stragglers does not reallocate every cycle.
	localSpare []entry
	deliver    func(now int64, node int, msg T)
	pending    int
	// active is a bitmask over routers with resident flits, iterated in
	// ascending node order to match the dense scan exactly.
	active []uint64
	Stats  Stats
}

// New builds a mesh network.  deliver must not call back into Send
// synchronously for the same cycle's delivery (enqueueing is fine).
func New[T any](cfg Config, deliver func(now int64, node int, msg T)) (*Network[T], error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("noc: %dx%d mesh", cfg.Width, cfg.Height)
	}
	if cfg.HopLatency < 1 {
		return nil, fmt.Errorf("noc: hop latency %d < 1", cfg.HopLatency)
	}
	if cfg.LinkBandwidth < 1 {
		return nil, fmt.Errorf("noc: link bandwidth %d < 1", cfg.LinkBandwidth)
	}
	if cfg.LocalLatency < 1 {
		return nil, fmt.Errorf("noc: local latency %d < 1", cfg.LocalLatency)
	}
	nn := cfg.Width * cfg.Height
	n := &Network[T]{
		cfg:     cfg,
		routers: make([]router, nn),
		active:  make([]uint64, (nn+63)/64),
		deliver: deliver,
	}
	for node := range n.routers {
		x, y := n.Coords(node)
		for d := dir(0); d < numDirs; d++ {
			nx, ny := x, y
			switch d {
			case dirE:
				nx++
			case dirW:
				nx--
			case dirN:
				ny++
			case dirS:
				ny--
			}
			nb := &n.routers[node].neigh[d]
			if nx < 0 || nx >= cfg.Width || ny < 0 || ny >= cfg.Height {
				nb.node = -1
				continue
			}
			nb.node, nb.x, nb.y = int32(n.Node(nx, ny)), int16(nx), int16(ny)
		}
	}
	return n, nil
}

// Node converts mesh coordinates to a node index.
func (n *Network[T]) Node(x, y int) int { return y*n.cfg.Width + x }

// Coords converts a node index back to mesh coordinates.
func (n *Network[T]) Coords(node int) (x, y int) {
	return node % n.cfg.Width, node / n.cfg.Width
}

// Distance returns the Manhattan distance between two nodes.
func (n *Network[T]) Distance(a, b int) int {
	ax, ay := n.Coords(a)
	bx, by := n.Coords(b)
	return abs(ax-bx) + abs(ay-by)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// addResident maintains the active-router index (the invariant: a node's
// active bit is set iff its resident count is positive).  tickArrivals
// adjusts counts in batch form inline.
func (n *Network[T]) addResident(node int) {
	r := &n.routers[node]
	if r.resident == 0 {
		n.active[node>>6] |= 1 << (uint(node) & 63)
	}
	r.resident++
}

// alloc places a flit in the pool and returns its slot.
func (n *Network[T]) alloc(f flit[T]) int32 {
	if k := len(n.free); k > 0 {
		i := n.free[k-1]
		n.free = n.free[:k-1]
		n.flits[i] = f
		return i
	}
	n.flits = append(n.flits, f)
	return int32(len(n.flits) - 1)
}

// Send injects a message at src destined for dst.
func (n *Network[T]) Send(now int64, src, dst int, msg T) {
	n.Stats.Messages++
	n.pending++
	dx, dy := n.Coords(dst)
	i := n.alloc(flit[T]{msg: msg, dst: int32(dst), dstX: int16(dx), dstY: int16(dy)})
	if src == dst {
		n.local = append(n.local, entry{idx: i, arriveAt: now + int64(n.cfg.LocalLatency)})
		return
	}
	x, y := n.Coords(src)
	d := routeXY(x, y, dx, dy)
	sr := &n.routers[src]
	sr.links[d].q = append(sr.links[d].q, entry{idx: i, enqueued: now})
	sr.waitMask |= 1 << d
	n.addResident(src)
}

// routeXY picks the next direction from (x, y) toward (dx, dy) — dimension-
// ordered: X first, then Y.  Pure compares; the destination coordinates ride
// in the flit so per-hop routing never divides.
func routeXY(x, y, dx, dy int) dir {
	switch {
	case dx > x:
		return dirE
	case dx < x:
		return dirW
	case dy > y:
		return dirN
	default:
		return dirS
	}
}

// Tick advances the network one cycle: arrivals are processed (delivered or
// forwarded), then each link transmits up to its bandwidth.  It reports
// whether anything moved — false means the cycle was a provable no-op (all
// resident flits, if any, are still in transit toward a future cycle).
func (n *Network[T]) Tick(now int64) bool {
	moved := false

	// Local deliveries.  The deliver callback may Send again (including to
	// the same node), so the pending list is detached before iterating —
	// a compact-in-place filter would silently drop messages enqueued
	// during delivery.  The detached buffer is recycled via localSpare.
	if len(n.local) > 0 {
		pending := n.local
		n.local = n.localSpare[:0]
		for i := range pending {
			t := pending[i]
			if t.arriveAt <= now {
				n.Stats.Delivered++
				n.pending--
				// The msg argument is copied out of the pool before the
				// callback runs; the slot is freed after, so a reentrant
				// Send cannot clobber it.
				n.deliver(now, int(n.flits[t.idx].dst), n.flits[t.idx].msg)
				n.free = append(n.free, t.idx)
				moved = true
			} else {
				n.local = append(n.local, t)
			}
		}
		n.localSpare = pending[:0]
	}

	// Arrivals at the far end of each link, then transmissions bounded by
	// link bandwidth.  Arrival forwarding only appends to the awaiting
	// region of link queues (never to the wire region it is scanning), and
	// transmission only stamps flits within one router, so visiting routers
	// in ascending order — dense or via the index — processes exactly the
	// same flits in the same order.
	if n.cfg.DenseTick {
		for node := range n.routers {
			if n.tickArrivals(now, node) {
				moved = true
			}
		}
		for node := range n.routers {
			if n.tickTransmit(now, node) {
				moved = true
			}
		}
		return moved
	}
	for w, word := range n.active {
		// The word is snapshotted: arrivals may activate routers ahead of
		// the scan, but a freshly activated router has an empty wire
		// region, so skipping it matches the dense scan's no-op visit.
		for word != 0 {
			node := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if n.tickArrivals(now, node) {
				moved = true
			}
		}
	}
	for w, word := range n.active {
		// Transmission never touches other routers, and routers activated
		// by the arrival phase hold only awaiting flits enqueued *this*
		// cycle — the dense scan would visit them, find enqueued == now
		// flits, and transmit them.  So the transmit phase must see bits
		// set during the arrival phase: the live mask is re-read here, and
		// within a word the snapshot is safe because tickTransmit never
		// sets or clears any bit (resident counts are unchanged).
		for word != 0 {
			node := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if n.tickTransmit(now, node) {
				moved = true
			}
		}
	}
	return moved
}

// tickArrivals processes one router's due on-the-wire flits: delivery at
// the destination, or forwarding into the next router's link queue.
//
// The wire region [head, sent) is sorted by arriveAt — tickTransmit stamps
// now + HopLatency, and simulated time never decreases — so the due flits
// are a prefix.  The whole prefix is processed as one batch: the link's
// far-end node, its coordinates, and the neighbour router pointer are
// resolved once per queue, consumption is a head-index advance (no
// compaction copy), and the resident count is adjusted once.
func (n *Network[T]) tickArrivals(now int64, node int) bool {
	r := &n.routers[node]
	moved := false
	// The deliver callback may Send from this node, but an injection lands
	// in an awaiting region (waitMask), never on the wire — the snapshot of
	// wireMask covers exactly the links this phase must probe.
	for wm := r.wireMask; wm != 0; wm &= wm - 1 {
		d := dir(bits.TrailingZeros8(wm))
		l := &r.links[d]
		// Snapshot: the deliver callback may Send onto this same link,
		// growing l.q; entries in [head, sent) are immutable across that.
		ts := l.q
		if ts[l.head].arriveAt > now {
			continue
		}
		due := l.sent
		for i := l.head + 1; i < l.sent; i++ {
			if ts[i].arriveAt > now {
				due = i
				break
			}
		}
		moved = true
		nb := r.neigh[d]
		at := int(nb.node)
		atx, aty := int(nb.x), int(nb.y)
		ar := &n.routers[at]
		// Forwarding appends land in the neighbour's awaiting region
		// [sent, len), which this phase never reads — the transmit phase
		// puts them on the wire, exactly as the dense reference would.
		for i := l.head; i < due; i++ {
			t := ts[i]
			// The pool pointer is re-read per flit: a delivery's reentrant
			// Send may grow n.flits.
			fl := &n.flits[t.idx]
			if at == int(fl.dst) {
				n.Stats.Delivered++
				n.pending--
				// msg is copied into the argument before the callback runs;
				// the slot is freed after, so a reentrant Send cannot
				// clobber it.
				n.deliver(now, at, fl.msg)
				n.free = append(n.free, t.idx)
				continue
			}
			nd := routeXY(atx, aty, int(fl.dstX), int(fl.dstY))
			if ar.resident == 0 {
				n.active[at>>6] |= 1 << (uint(at) & 63)
			}
			ar.resident++
			ar.waitMask |= 1 << nd
			al := &ar.links[nd]
			al.q = append(al.q, entry{idx: t.idx, enqueued: now})
		}
		// Batched resident accounting: the deliver callback may have Sent new
		// flits from this node mid-batch, so the count can stay positive.
		k := due - l.head
		l.head = due
		if l.head == l.sent {
			r.wireMask &^= 1 << d
		}
		r.resident -= k
		if r.resident == 0 {
			n.active[node>>6] &^= 1 << (uint(node) & 63)
		}
		// Reclaim consumed entries: reset when drained, else compact once
		// the dead prefix dominates (amortised O(1) per flit).
		if l.head == len(l.q) {
			l.q, l.head, l.sent = l.q[:0], 0, 0
		} else if l.head >= 32 && 2*l.head >= len(l.q) {
			m := copy(l.q, l.q[l.head:])
			l.q = l.q[:m]
			l.sent -= l.head
			l.head = 0
		}
	}
	return moved
}

// tickTransmit puts up to LinkBandwidth awaiting flits per link onto the
// wire: a pure in-place arriveAt stamp plus a watermark advance — no flit
// is copied.  arriveAt is the same for the whole batch, and now never
// decreases, so the wire region stays sorted — the invariant tickArrivals'
// prefix batching and NextEvent's head read rely on.
func (n *Network[T]) tickTransmit(now int64, node int) bool {
	r := &n.routers[node]
	moved := false
	for wm := r.waitMask; wm != 0; wm &= wm - 1 {
		d := dir(bits.TrailingZeros8(wm))
		l := &r.links[d]
		waiting := len(l.q) - l.sent
		moved = true
		k := n.cfg.LinkBandwidth
		if k > waiting {
			k = waiting
		}
		arriveAt := now + int64(n.cfg.HopLatency)
		n.Stats.Hops += int64(k)
		for i := l.sent; i < l.sent+k; i++ {
			n.Stats.QueueWait += now - l.q[i].enqueued
			l.q[i].arriveAt = arriveAt
		}
		l.sent += k
		r.wireMask |= 1 << d
		if l.sent == len(l.q) {
			r.waitMask &^= 1 << d
		}
	}
	return moved
}

// NextEvent returns the earliest cycle >= now at which Tick would move
// anything: now itself if any link holds an awaiting flit (it transmits this
// cycle), otherwise the earliest in-transit or local arrival.  With nothing
// pending it returns Never.
func (n *Network[T]) NextEvent(now int64) int64 {
	if n.pending == 0 {
		return Never
	}
	next := Never
	for _, t := range n.local {
		if t.arriveAt < next {
			next = t.arriveAt
		}
	}
	for w, word := range n.active {
		for word != 0 {
			node := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			r := &n.routers[node]
			if r.waitMask != 0 {
				return now
			}
			for wm := r.wireMask; wm != 0; wm &= wm - 1 {
				l := &r.links[bits.TrailingZeros8(wm)]
				// Wire region sorted by arriveAt: the head is the earliest.
				if t := l.q[l.head].arriveAt; t < next {
					next = t
				}
			}
		}
	}
	if next < now {
		next = now
	}
	return next
}

// Never is NextEvent's "no pending event" sentinel, far beyond any cycle
// budget.
const Never = int64(1) << 62

// Pending returns the number of messages in flight (injected, not yet
// delivered); zero means the network is quiet.
func (n *Network[T]) Pending() int { return n.pending }
