// Package stats provides the counters, histograms and table rendering shared
// by the simulator, the command-line tools and the benchmark harness.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
)

// Hist is a power-of-two-bucketed histogram of non-negative values.
// Bucket i counts values in [2^i, 2^(i+1)); bucket 0 counts 0 and 1.
type Hist struct {
	Buckets [32]int64
	N       int64
	Sum     int64
	Max     int64
}

// Add records one observation.
func (h *Hist) Add(v int64) {
	if v < 0 {
		v = 0
	}
	h.N++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	b := 0
	for x := v; x > 1 && b < len(h.Buckets)-1; x >>= 1 {
		b++
	}
	h.Buckets[b]++
}

// Mean returns the average observation, or 0 with no data.
func (h *Hist) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Percentile returns an upper bound for the p-th percentile (p in [0,100]),
// using bucket upper edges.
func (h *Hist) Percentile(p float64) int64 {
	if h.N == 0 {
		return 0
	}
	target := int64(math.Ceil(float64(h.N) * p / 100))
	if target <= 0 {
		target = 1
	}
	var seen int64
	for i, c := range h.Buckets {
		seen += c
		if seen >= target {
			edge := int64(1)
			if i > 0 {
				edge = (1 << uint(i+1)) - 1
			}
			if edge > h.Max {
				edge = h.Max
			}
			return edge
		}
	}
	return h.Max
}

// Merge accumulates another histogram into h (bucket-wise addition).  The
// other histogram is unchanged; merging an empty or nil histogram is a no-op.
func (h *Hist) Merge(other *Hist) {
	if other == nil || other.N == 0 {
		return
	}
	for i, c := range other.Buckets {
		h.Buckets[i] += c
	}
	h.N += other.N
	h.Sum += other.Sum
	if other.Max > h.Max {
		h.Max = other.Max
	}
}

// bucketBounds returns the inclusive value range of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 1
	}
	return 1 << uint(i), (1 << uint(i+1)) - 1
}

// String renders a summary line followed by one bar per non-empty bucket.
func (h *Hist) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d mean=%.1f max=%d p50=%d p90=%d p99=%d",
		h.N, h.Mean(), h.Max, h.Percentile(50), h.Percentile(90), h.Percentile(99))
	peak := int64(0)
	for _, c := range h.Buckets {
		if c > peak {
			peak = c
		}
	}
	const barWidth = 40
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		bar := 1 + int((c-1)*int64(barWidth-1)/peak)
		fmt.Fprintf(&sb, "\n  [%8d..%-8d] %10d %s", lo, hi, c, strings.Repeat("#", bar))
	}
	return sb.String()
}

// histJSON is the wire form of Hist: raw moments plus derived percentiles
// (emitted for consumers, ignored on decode) and the non-empty buckets by
// their lower edge.
type histJSON struct {
	N       int64        `json:"n"`
	Sum     int64        `json:"sum"`
	Max     int64        `json:"max"`
	Mean    float64      `json:"mean"`
	P50     int64        `json:"p50"`
	P90     int64        `json:"p90"`
	P99     int64        `json:"p99"`
	Buckets []histBucket `json:"buckets,omitempty"`
}

type histBucket struct {
	Lo    int64 `json:"lo"`
	Count int64 `json:"count"`
}

// MarshalJSON emits the histogram with derived percentiles and sparse
// buckets, keyed by each bucket's lower edge.
func (h *Hist) MarshalJSON() ([]byte, error) {
	out := histJSON{
		N: h.N, Sum: h.Sum, Max: h.Max, Mean: h.Mean(),
		P50: h.Percentile(50), P90: h.Percentile(90), P99: h.Percentile(99),
	}
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		lo, _ := bucketBounds(i)
		out.Buckets = append(out.Buckets, histBucket{Lo: lo, Count: c})
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores the raw histogram state; derived fields in the
// input are ignored and recomputed on demand.
func (h *Hist) UnmarshalJSON(data []byte) error {
	var in histJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*h = Hist{N: in.N, Sum: in.Sum, Max: in.Max}
	for _, b := range in.Buckets {
		i := 0
		if b.Lo > 1 {
			i = bits.Len64(uint64(b.Lo)) - 1
		}
		if i >= len(h.Buckets) {
			i = len(h.Buckets) - 1
		}
		h.Buckets[i] += b.Count
	}
	return nil
}

// Table accumulates rows and renders them with aligned columns, in the
// style of the tables in an ASPLOS evaluation section.
type Table struct {
	Title   string
	header  []string
	rows    [][]string
	numeric []bool
}

// NewTable creates a table with the given column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// Row appends a row; cells are rendered with %v, and float64 cells with
// three significant decimals.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return sb.String()
}

// MarshalJSON emits the table as {title, header, rows} so benchmark
// artifacts carry the same data machine-readably as the rendered text.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := t.rows
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}{t.Title, t.header, rows})
}

// UnmarshalJSON restores a table written by MarshalJSON, so benchmark
// artifacts can be reloaded and compared against a baseline run.
func (t *Table) UnmarshalJSON(data []byte) error {
	var v struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	t.Title, t.header, t.rows = v.Title, v.Header, v.Rows
	return nil
}

// Header returns the column headers.
func (t *Table) Header() []string { return t.header }

// Rows returns the rendered cell strings, one slice per row.
func (t *Table) Rows() [][]string { return t.rows }

// GeoMean returns the geometric mean of positive values; zero or negative
// inputs are skipped (matching how speedup figures treat missing bars).
func GeoMean(vals []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Ratio returns a/b, or 0 when b is zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// SortedKeys returns the keys of a string-keyed map in sorted order.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
