package sched

import (
	"math/rand"
	"sort"
	"testing"
)

// TestFIFOWithinCycle pins the determinism contract: events at the same
// cycle pop in insertion order.
func TestFIFOWithinCycle(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 100; i++ {
		q.Push(7, i)
	}
	for i := 0; i < 100; i++ {
		at, v := q.Pop()
		if at != 7 || v != i {
			t.Fatalf("pop %d: got (at=%d, v=%d), want (7, %d)", i, at, v, i)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty after draining: %d", q.Len())
	}
}

// TestOrdering property-checks the full contract against a reference sort:
// ascending cycle, insertion order within a cycle.
func TestOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var q Queue[int]
		type ev struct {
			at  int64
			ins int
		}
		n := 1 + r.Intn(200)
		evs := make([]ev, n)
		for i := range evs {
			evs[i] = ev{at: int64(r.Intn(20)), ins: i}
			q.Push(evs[i].at, evs[i].ins)
		}
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
		for i, want := range evs {
			if q.Len() == 0 {
				t.Fatalf("trial %d: queue empty at %d/%d", trial, i, n)
			}
			if q.MinAt() != want.at {
				t.Fatalf("trial %d pop %d: MinAt %d, want %d", trial, i, q.MinAt(), want.at)
			}
			at, v := q.Pop()
			if at != want.at || v != want.ins {
				t.Fatalf("trial %d pop %d: got (%d, %d), want (%d, %d)", trial, i, at, v, want.at, want.ins)
			}
		}
	}
}

// TestInterleavedPushPop exercises pops between pushes (the simulator's
// actual access pattern: drain due events, schedule new ones).
func TestInterleavedPushPop(t *testing.T) {
	var q Queue[int64]
	r := rand.New(rand.NewSource(2))
	now := int64(0)
	live := 0
	for step := 0; step < 2000; step++ {
		for q.Len() > 0 && q.MinAt() <= now {
			at, v := q.Pop()
			live--
			if at != v {
				t.Fatalf("payload %d popped at %d", v, at)
			}
			if at > now {
				t.Fatalf("pop at %d before its cycle (now %d)", at, now)
			}
		}
		for i := 0; i < r.Intn(4); i++ {
			at := now + 1 + int64(r.Intn(10))
			q.Push(at, at)
			live++
		}
		now++
	}
	if q.Len() != live {
		t.Fatalf("length drift: Len %d, live %d", q.Len(), live)
	}
}

// TestSteadyStateAllocs pins zero allocations once the backing array has
// reached its high-water mark.
func TestSteadyStateAllocs(t *testing.T) {
	var q Queue[int]
	// Warm to high-water mark.
	for i := 0; i < 64; i++ {
		q.Push(int64(i), i)
	}
	for q.Len() > 0 {
		q.Pop()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			q.Push(int64(i%8), i)
		}
		for q.Len() > 0 {
			q.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Push/Pop allocates: %.1f allocs/run", allocs)
	}
}

// TestReset pins that Reset empties without losing the backing array and
// the queue remains usable.
func TestReset(t *testing.T) {
	var q Queue[string]
	q.Push(3, "a")
	q.Push(1, "b")
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("Len after Reset: %d", q.Len())
	}
	q.Push(2, "c")
	if at, v := q.Pop(); at != 2 || v != "c" {
		t.Fatalf("pop after Reset: (%d, %q)", at, v)
	}
}
