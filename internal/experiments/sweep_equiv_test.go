package experiments

import (
	"context"
	"fmt"
	"testing"

	"repro"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// sequentialEngine executes every point one at a time through plain
// repro.Run — no worker pool, no workload memoization, no cache.  It is
// the reference the sweep path is pinned against.
func sequentialEngine() *sweep.Engine {
	return sweep.New(sweep.Options{
		Workers: 1,
		Runner: func(ctx context.Context, spec sweep.JobSpec) (*telemetry.Report, error) {
			r, err := repro.RunContext(ctx, spec.Config())
			if err != nil {
				return nil, err
			}
			return r.Report(), nil
		},
	})
}

// allTables renders every experiment (E1 is a static config table and
// needs no engine) and the E2/E3 headline summary under one Opts.
func allTables(o Opts) map[string]string {
	m := make(map[string]string)
	t2, t3, sum := E2E3Speedup(o)
	m["E2"] = t2.String()
	m["E3"] = t3.String()
	m["E2E3-summary"] = fmt.Sprintf("%.6f %.6f %.6f",
		sum.DSREOverStoreSet, sum.DSREOverStoreSetConflict, sum.DSREOfOracle)
	m["E4"] = E4WindowScaling(o).String()
	m["E5"] = E5Misspec(o).String()
	m["E6"] = E6CommitWave(o).String()
	m["E7"] = E7Suppression(o).String()
	m["E8"] = E8WaveSizes(o).String()
	m["E9"] = E9HopLatency(o).String()
	m["E10"] = E10StoreSetSize(o).String()
	m["E11"] = E11BlockPredictors(o).String()
	m["E12"] = E12WorkBreakdown(o).String()
	m["E13"] = E13Placement(o).String()
	m["E14"] = E14DTileBanks(o).String()
	m["E15"] = E15LSQCapacity(o).String()
	m["E16"] = E16ValuePrediction(o).String()
	return m
}

// TestSweepMatchesSequential pins every experiment's tables to the
// sequential reference path: running the grids through the parallel,
// memoized sweep engine must change nothing — same tables, same stats.
func TestSweepMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick experiment suite twice")
	}
	eng, err := NewEngine(Opts{})
	if err != nil {
		t.Fatal(err)
	}
	swept := allTables(Opts{Quick: true, Engine: eng})
	sequential := allTables(Opts{Quick: true, Engine: sequentialEngine()})
	for id, want := range sequential {
		if got := swept[id]; got != want {
			t.Errorf("%s: sweep-engine result diverged from sequential run:\n--- sweep\n%s\n--- sequential\n%s", id, got, want)
		}
	}
}
