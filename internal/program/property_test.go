package program

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// TestFanoutProperty: a value consumed by n consumers (any n the block can
// hold) still reaches all of them through whatever mov tree the builder
// inserts, and the tree respects the target limit and the DAG rule.
func TestFanoutProperty(t *testing.T) {
	f := func(raw uint8) bool {
		n := 1 + int(raw)%40
		b := New("fanout")
		blk := b.NewBlock("x")
		v := blk.Read(1)
		sum := blk.Const(0)
		for i := 0; i < n; i++ {
			sum = blk.Op(isa.OpAdd, sum, v)
		}
		blk.Write(2, sum)
		blk.Halt()
		p, err := b.Build()
		if err != nil {
			return false
		}
		var regs [isa.NumRegs]int64
		regs[1] = 3
		res, err := emu.Run(p, &regs, mem.New(), emu.Options{})
		if err != nil {
			return false
		}
		return res.Regs[2] == int64(3*n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSelectChainsProperty: randomly nested selects evaluate like Go's
// conditional expression.
func TestSelectChainsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		depth := 1 + r.Intn(5)
		conds := make([]int64, depth)
		for i := range conds {
			conds[i] = int64(r.Intn(2))
		}

		b := New("selects")
		blk := b.NewBlock("x")
		// Registers 10.. hold the condition values.
		want := int64(1000) // innermost else
		v := blk.Const(1000)
		for i := 0; i < depth; i++ {
			c := blk.Read(uint8(10 + i))
			taken := blk.Const(int64(i))
			v = blk.Select(blk.Op(isa.OpTne, c, blk.Const(0)), taken, v)
			if conds[i] != 0 {
				want = int64(i)
			}
		}
		blk.Write(2, v)
		blk.Halt()
		p, err := b.Build()
		if err != nil {
			return false
		}
		var regs [isa.NumRegs]int64
		for i, c := range conds {
			regs[10+i] = c
		}
		res, err := emu.Run(p, &regs, mem.New(), emu.Options{})
		if err != nil {
			return false
		}
		return res.Regs[2] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestArithChainsProperty: random straight-line arithmetic agrees between
// the builder+emulator and direct Go evaluation.
func TestArithChainsProperty(t *testing.T) {
	ops := []isa.Opcode{isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpAnd, isa.OpOr, isa.OpXor}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := New("arith")
		blk := b.NewBlock("x")
		goVals := []int64{r.Int63n(1 << 20), r.Int63n(1 << 20)}
		edgeVals := []interface{}{blk.Read(1), blk.Read(2)}
		n := 3 + r.Intn(12)
		for i := 0; i < n; i++ {
			op := ops[r.Intn(len(ops))]
			ai, bi := r.Intn(len(goVals)), r.Intn(len(goVals))
			edgeVals = append(edgeVals, blk.Op(op, edgeVals[ai].(Val), edgeVals[bi].(Val)))
			goVals = append(goVals, isa.Eval(op, goVals[ai], goVals[bi], 0))
		}
		last := edgeVals[len(edgeVals)-1].(Val)
		blk.Write(3, last)
		// Consume every intermediate so no value is dead.
		acc := edgeVals[0].(Val)
		for _, v := range edgeVals[1:] {
			acc = blk.Op(isa.OpXor, acc, v.(Val))
		}
		blk.Write(4, acc)
		blk.Halt()
		p, err := b.Build()
		if err != nil {
			return false
		}
		var regs [isa.NumRegs]int64
		regs[1], regs[2] = goVals[0], goVals[1]
		res, err := emu.Run(p, &regs, mem.New(), emu.Options{})
		if err != nil {
			return false
		}
		return res.Regs[3] == goVals[len(goVals)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
