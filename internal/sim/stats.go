package sim

import (
	"fmt"
	"strings"

	"repro/internal/account"
	"repro/internal/stats"
)

// Stats aggregates everything the evaluation reports.
type Stats struct {
	Cycles          int64
	CommittedBlocks int64
	MappedBlocks    int64
	FetchedBlocks   int64
	SquashedBlocks  int64

	Issued         int64 // instructions issued to ALUs
	Executed       int64 // executions completed (including re-executions)
	Reexecs        int64 // executions beyond the first per instance
	CommittedExecs int64 // instructions that had fired in committed blocks
	SquashedExecs  int64 // executions thrown away by squashes

	Flushes          int64 // violation-triggered pipeline flushes
	DSRECorrections  int64 // violation-triggered selective corrections
	BranchSquashes   int64
	StaleMsgs        int64
	DrainedStores    int64
	FetchStallFrames int64
	FetchStallLSQ    int64
	VPIssued         int64 // value-predicted loads delivered at map time
	VPHits           int64 // predictions confirmed by the actual value
	VPCorrections    int64 // mis-predictions repaired by waves

	// Wave characterisation (DSRE only).
	WaveCount    int64
	WaveReexecs  int64
	WaveSizeHist stats.Hist

	// Cycle accounting + forensics (populated when EnableAccounting was
	// called; zero otherwise).  Acct obeys the conservation invariant
	// Acct.Total() == Cycles × account.SlotsPerCycle, checked under the
	// dsre_assert tag.
	Acct      account.CPIStack
	Forensics account.Summary

	// Substrate stats, snapshot at end of run.
	Net struct {
		Messages, Delivered, Hops, QueueWait int64
	}
	L1DMissRate float64
	L2MissRate  float64
	LSQ         struct {
		Loads, Stores, Forwards, PartialForwards int64
		Violations, SilentStoreHits              int64
		DeferredPolicy, DeferredMSHR             int64
		PeakOccupancy                            int
	}
	StoreSet struct {
		Merges, Clears, LoadWaits, LoadFrees int64
	}
}

// String renders a compact multi-line summary.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d blocks=%d (mapped %d, squashed %d)\n",
		s.Cycles, s.CommittedBlocks, s.MappedBlocks, s.SquashedBlocks)
	fmt.Fprintf(&b, "exec=%d reexec=%d committedExec=%d squashedExec=%d\n",
		s.Executed, s.Reexecs, s.CommittedExecs, s.SquashedExecs)
	fmt.Fprintf(&b, "violations=%d flushes=%d corrections=%d branchSquashes=%d\n",
		s.LSQ.Violations, s.Flushes, s.DSRECorrections, s.BranchSquashes)
	fmt.Fprintf(&b, "loads=%d stores=%d forwards=%d deferredPolicy=%d\n",
		s.LSQ.Loads, s.LSQ.Stores, s.LSQ.Forwards, s.LSQ.DeferredPolicy)
	fmt.Fprintf(&b, "net: msgs=%d hops=%d queueWait=%d  L1D miss=%.3f L2 miss=%.3f\n",
		s.Net.Messages, s.Net.Hops, s.Net.QueueWait, s.L1DMissRate, s.L2MissRate)
	if s.WaveCount > 0 {
		fmt.Fprintf(&b, "waves=%d meanSize=%.2f\n", s.WaveCount,
			float64(s.WaveReexecs)/float64(s.WaveCount))
	}
	if s.Acct.Total() > 0 {
		fmt.Fprintf(&b, "cpi stack: %s\n", s.Acct.String())
	}
	return b.String()
}

// snapshotStats copies substrate counters into the run's Stats.
func (mc *Machine) snapshotStats() {
	mc.stats.Cycles = mc.cycle
	mc.stats.CommittedBlocks = mc.committed
	ns := mc.net.Stats
	mc.stats.Net.Messages = ns.Messages
	mc.stats.Net.Delivered = ns.Delivered
	mc.stats.Net.Hops = ns.Hops
	mc.stats.Net.QueueWait = ns.QueueWait
	mc.stats.L1DMissRate = mc.hier.L1D.Stats.MissRate()
	mc.stats.L2MissRate = mc.hier.L2.Stats.MissRate()
	qs := mc.q.Stats
	mc.stats.LSQ.Loads = qs.Loads
	mc.stats.LSQ.Stores = qs.Stores
	mc.stats.LSQ.Forwards = qs.Forwards
	mc.stats.LSQ.PartialForwards = qs.PartialForwards
	mc.stats.LSQ.Violations = qs.Violations
	mc.stats.LSQ.SilentStoreHits = qs.SilentStoreHits
	mc.stats.LSQ.DeferredPolicy = qs.DeferredPolicy
	mc.stats.LSQ.DeferredMSHR = qs.DeferredMSHR
	mc.stats.LSQ.PeakOccupancy = qs.PeakOccupancy
	if mc.ss != nil {
		mc.stats.StoreSet.Merges = mc.ss.Merges
		mc.stats.StoreSet.Clears = mc.ss.Clears
		mc.stats.StoreSet.LoadWaits = mc.ss.LoadWaits
		mc.stats.StoreSet.LoadFrees = mc.ss.LoadFrees
	}
	mc.stats.WaveCount = mc.wave.Waves
	mc.stats.WaveReexecs = mc.wave.Reexecs
	mc.stats.WaveSizeHist = *mc.wave.SizeHist()
	if mc.acct != nil {
		mc.stats.Acct = mc.acct.stack
		mc.stats.Forensics = mc.acct.forensics.Summarize(mc.wave.WaveSize, mc.stats.Reexecs, acctTopLoads)
		if assertsEnabled {
			want := (mc.cycle - mc.acct.startCycle) * account.SlotsPerCycle
			if total := mc.stats.Acct.Total(); total != want {
				mc.failAssert("cycle accounting leak: buckets sum to %d, want %d (cycles %d × %d slots)",
					total, want, mc.cycle-mc.acct.startCycle, account.SlotsPerCycle)
			}
		}
	}
}

// acctTopLoads caps the per-PC load profiles carried in Stats (and thus in
// every dsre-report/v1); the full audit totals are unaffected by the cap.
const acctTopLoads = 16
