// dsre-load drives a dsre-serve daemon the way a fleet of impatient users
// would and verifies the service-level invariants: N concurrent clients
// submit the same grid for several rounds, every sweep must finish with
// zero failed jobs, no job may execute more than once (content-addressed
// dedup), no upload may be dropped as a duplicate in a crash-free run, and
// warm rounds must hit the cache at or above a threshold rate.
//
//	dsre-load -url http://127.0.0.1:8177 -grid grid.json -clients 4 -rounds 2
//
// Exit codes: 0 all checks pass, 1 an invariant failed, 2 usage or
// communication error.  CI runs it against a daemon plus two workers as
// the serve-smoke acceptance gate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sweep"
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dsre-load: "+format+"\n", args...)
	os.Exit(2)
}

// defaultGrid is the built-in tiny grid used when -grid is absent: a few
// fast points with duplicate spellings so dedup is exercised by default.
var defaultGrid = sweep.Grid{
	Workloads: []string{"vecsum"},
	Schemes:   []string{"dsre", "oracle"},
	Sizes:     []int{64},
}

type client struct {
	base string
	http *http.Client
}

func (c *client) submit(tenant string, grid *sweep.Grid) (*serve.SweepView, error) {
	body, err := json.Marshal(serve.SubmitRequest{Schema: serve.SubmitSchema, Grid: grid})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, c.base+"/v1/sweeps", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-DSRE-Tenant", tenant)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if resp.StatusCode != http.StatusCreated {
		// Prefer the structured dsre-serve-error/v1 envelope: the code is
		// stable and the trace ID lets an operator grep the daemon's logs.
		var env serve.ErrorResponse
		if jerr := json.Unmarshal(data, &env); jerr == nil && env.Schema == serve.ErrorSchema && env.Code != "" {
			return nil, fmt.Errorf("submit: HTTP %d %s: %s (trace %s)", resp.StatusCode, env.Code, env.Message, env.Trace)
		}
		return nil, fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	var v serve.SweepView
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, fmt.Errorf("submit: %w", err)
	}
	return &v, nil
}

func (c *client) sweep(id string) (*serve.SweepView, error) {
	var v serve.SweepView
	if err := c.getJSON("/v1/sweeps/"+id, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

func (c *client) progress() (*obs.ServeProgressView, error) {
	var v obs.ServeProgressView
	if err := c.getJSON("/progress", &v); err != nil {
		return nil, err
	}
	return &v, nil
}

func (c *client) getJSON(path string, v any) error {
	resp, err := c.http.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("GET %s: HTTP %d", path, resp.StatusCode)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(v)
}

func main() {
	url := flag.String("url", "http://127.0.0.1:8177", "daemon base URL")
	gridPath := flag.String("grid", "", "grid JSON to submit (default: built-in tiny grid)")
	clients := flag.Int("clients", 4, "concurrent submitting clients per round")
	rounds := flag.Int("rounds", 2, "submission rounds (round 1 is cold, the rest warm)")
	tenant := flag.String("tenant", "load", "tenant name prefix (each client appends its index)")
	warmRate := flag.Float64("warm-hit-rate", 0.9, "minimum cache-hit rate required of warm rounds")
	poll := flag.Duration("poll", 100*time.Millisecond, "sweep status poll interval")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall deadline")
	flag.Parse()
	if flag.NArg() > 0 {
		fatalf("unexpected arguments %q", flag.Args())
	}

	grid := defaultGrid
	if *gridPath != "" {
		g, err := sweep.ReadGrid(*gridPath)
		if err != nil {
			fatalf("%v", err)
		}
		grid = *g
	}
	specs, err := grid.Expand()
	if err != nil {
		fatalf("%v", err)
	}

	c := &client{base: strings.TrimRight(*url, "/"), http: &http.Client{Timeout: 30 * time.Second}}
	deadline := time.Now().Add(*timeout)
	start := time.Now()

	type roundStat struct {
		sweeps  []*serve.SweepView
		elapsed time.Duration
	}
	var stats []roundStat
	var latencies []time.Duration // per-sweep submit-to-done wall time
	failures := 0
	fail := func(format string, args ...any) {
		failures++
		fmt.Fprintf(os.Stderr, "dsre-load: FAIL: "+format+"\n", args...)
	}

	for round := 1; round <= *rounds; round++ {
		roundStart := time.Now()
		ids := make([]string, *clients)
		submitted := make([]time.Time, *clients)
		errsCh := make(chan error, *clients)
		var wg sync.WaitGroup
		for i := 0; i < *clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				submitted[i] = time.Now()
				v, err := c.submit(fmt.Sprintf("%s-%d", *tenant, i), &grid)
				if err != nil {
					errsCh <- err
					return
				}
				ids[i] = v.Sweep
				if v.Trace == "" {
					errsCh <- fmt.Errorf("sweep %s: submit response carries no trace ID", v.Sweep)
				}
			}(i)
		}
		wg.Wait()
		close(errsCh)
		for err := range errsCh {
			fatalf("round %d: %v", round, err)
		}

		// Poll every sweep of the round to completion.
		views := make([]*serve.SweepView, *clients)
		for i, id := range ids {
			for {
				if time.Now().After(deadline) {
					fatalf("round %d: timeout waiting for sweep %s", round, id)
				}
				v, err := c.sweep(id)
				if err != nil {
					fatalf("round %d: %v", round, err)
				}
				if v.Finished {
					views[i] = v
					latencies = append(latencies, time.Since(submitted[i]))
					break
				}
				time.Sleep(*poll)
			}
		}
		stats = append(stats, roundStat{sweeps: views, elapsed: time.Since(roundStart)})
	}

	// Invariants per sweep: nothing lost (all finished, done == total,
	// zero failed), and warm rounds nearly all cache hits.
	for r, st := range stats {
		for _, v := range st.sweeps {
			if v.Total != len(specs) {
				fail("sweep %s: total %d, submitted %d", v.Sweep, v.Total, len(specs))
			}
			if v.Done != v.Total || v.Failed != 0 {
				fail("sweep %s: done %d failed %d of %d (lost jobs)", v.Sweep, v.Done, v.Failed, v.Total)
			}
			if r > 0 {
				rate := float64(v.CacheHits) / float64(v.Total)
				if rate < *warmRate {
					fail("sweep %s (warm round %d): cache-hit rate %.2f < %.2f", v.Sweep, r+1, rate, *warmRate)
				}
			}
		}
	}

	// Fleet-level invariants from /progress: every unique job completed,
	// no duplicate executions (executions never exceeds unique jobs) and
	// no dropped uploads in a crash-free run.
	prog, err := c.progress()
	if err != nil {
		fatalf("%v", err)
	}
	t := prog.Totals
	if t.Failed != 0 {
		fail("progress: %d unique jobs failed", t.Failed)
	}
	if t.Done != t.UniqueJobs {
		fail("progress: %d unique jobs done of %d queued (lost jobs)", t.Done, t.UniqueJobs)
	}
	if t.Executions > t.UniqueJobs {
		fail("progress: %d executions for %d unique jobs (duplicated work)", t.Executions, t.UniqueJobs)
	}
	if t.UploadDuplicates != 0 {
		fail("progress: %d duplicate uploads in a crash-free run", t.UploadDuplicates)
	}
	if t.Queued != 0 || t.Leased != 0 {
		fail("progress: queue not drained (queued %d, leased %d)", t.Queued, t.Leased)
	}

	total := time.Since(start)
	specsDone := *clients * *rounds * len(specs)
	fmt.Printf("dsre-load: %d rounds x %d clients x %d specs = %d specs in %s (%.1f specs/s)\n",
		*rounds, *clients, len(specs), specsDone, total.Round(time.Millisecond),
		float64(specsDone)/total.Seconds())
	for r, st := range stats {
		hits, tot := 0, 0
		for _, v := range st.sweeps {
			hits += v.CacheHits
			tot += v.Total
		}
		kind := "cold"
		if r > 0 {
			kind = "warm"
		}
		fmt.Printf("  round %d (%s): %s, cache-hit rate %.2f (%d/%d)\n",
			r+1, kind, st.elapsed.Round(time.Millisecond), float64(hits)/float64(tot), hits, tot)
	}
	fmt.Printf("  fleet: %d unique executions, %d cache hits, %d uploads, %d requeues, %d lease expiries\n",
		t.Executions, t.CacheHits, t.Uploads, t.Requeues, t.LeaseExpiries)
	fmt.Printf("  latency (submit to done, %d sweeps): p50 %s  p95 %s  p99 %s\n",
		len(latencies),
		percentile(latencies, 50).Round(time.Millisecond),
		percentile(latencies, 95).Round(time.Millisecond),
		percentile(latencies, 99).Round(time.Millisecond))

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "dsre-load: %d invariant(s) failed\n", failures)
		os.Exit(1)
	}
	fmt.Println("dsre-load: all invariants hold")
}

// percentile returns the nearest-rank p-th percentile of ds (0 when empty).
func percentile(ds []time.Duration, p int) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := (p*len(sorted) + 99) / 100 // ceil(p/100 * n), nearest-rank
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
