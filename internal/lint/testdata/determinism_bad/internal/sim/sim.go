package sim

import (
	"math/rand"
	"time"
)

type Machine struct {
	counts map[int]int64
	order  []int
	start  time.Time
}

func (m *Machine) Step() {
	m.start = time.Now() // want: wall-clock read

	if rand.Intn(2) == 0 { // want: global unseeded source
		m.order = append(m.order, 0)
	}

	go func() { // want: goroutine spawn
		m.counts[0]++
	}()

	for k := range m.counts { // want: appends in map order to escaping state
		m.order = append(m.order, k)
	}

	total := int64(0)
	for _, v := range m.counts { // commutative sum: allowed
		total += v
	}
	m.counts[0] = total

	//lint:ordered — suppressed for the fixture
	for k := range m.counts {
		m.order = append(m.order, k)
	}
}
