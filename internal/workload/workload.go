// Package workload provides the benchmark kernels used throughout the
// evaluation.  The TRIPS paper ran SPEC CPU2000 binaries compiled by the
// TRIPS compiler; neither is available, so each kernel here is a hand-built
// EDGE program that reproduces the memory behaviour of one SPEC class
// (pointer chasing, streaming, hashing, in-place stencils, ...).  The
// store→load aliasing rate and dependence distance — the properties that
// drive dependence-speculation results — are first-class parameters.
//
// Every workload carries a Go-side reference check (Check) so that the
// architectural emulator itself is validated against straight-line Go, and
// the cycle simulator is validated against the emulator.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/mem"
)

// Standard memory-layout bases shared by the kernels.
const (
	ResultBase = 0x8000    // kernels store their final scalars here
	DataBase   = 0x100000  // first input/working array
	DataBase2  = 0x400000  // second array
	DataBase3  = 0x800000  // third array
)

// Params scales a workload.
type Params struct {
	// Size is the element count / iteration scale.  Zero selects the
	// kernel's default, chosen to commit a few thousand blocks.
	Size int
	// Unroll is the number of logical iterations per EDGE block for kernels
	// that support unrolling.  Zero selects the kernel default.  Larger
	// blocks mean larger instruction windows at the same in-flight block
	// count, matching how the TRIPS compiler built hyperblocks.
	Unroll int
	// Seed drives all pseudo-random data and access patterns.  Zero means 1.
	Seed uint64
}

func (p Params) withDefaults(size, unroll int) Params {
	if p.Size == 0 {
		p.Size = size
	}
	if p.Unroll == 0 {
		p.Unroll = unroll
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// clampUnroll caps the unroll factor at the largest value for which the
// kernel's block fits the isa.MaxInsts limit after fanout expansion.
func (p Params) clampUnroll(max int) Params {
	if p.Unroll > max {
		p.Unroll = max
	}
	return p
}

// Workload is a ready-to-run kernel: program plus initial machine state.
type Workload struct {
	Name        string
	Analog      string // which SPEC-2000 class the kernel stands in for
	Description string
	Params      Params
	Program     *isa.Program
	Regs        [isa.NumRegs]int64
	Mem         *mem.Memory

	// Check validates the final architectural state against a straight-line
	// Go implementation of the kernel.
	Check func(regs *[isa.NumRegs]int64, m *mem.Memory) error
}

// RunEmulator runs the architectural emulator on the workload's initial
// state, returning the golden result (and, per opt, the oracle table,
// block trace or store trace).
func (w *Workload) RunEmulator(opt emu.Options) (*emu.Result, error) {
	return emu.Run(w.Program, &w.Regs, w.Mem, opt)
}

// Builder constructs a workload from parameters.
type Builder func(Params) (*Workload, error)

type entry struct {
	build  Builder
	analog string
}

var registry = map[string]entry{}

func register(name, analog string, b Builder) {
	if _, dup := registry[name]; dup {
		panic("workload: duplicate registration of " + name)
	}
	registry[name] = entry{build: b, analog: analog}
}

// Names returns the registered workload names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Analog returns the SPEC-class analog string for a workload name.
func Analog(name string) string { return registry[name].analog }

// Build constructs the named workload.
func Build(name string, p Params) (*Workload, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown kernel %q (have %v)", name, Names())
	}
	w, err := e.build(p)
	if err != nil {
		return nil, fmt.Errorf("workload %q: %w", name, err)
	}
	w.Name = name
	w.Analog = e.analog
	return w, nil
}

// MustBuild is Build that panics on error, for tests and benches.
func MustBuild(name string, p Params) *Workload {
	w, err := Build(name, p)
	if err != nil {
		panic(err)
	}
	return w
}

// splitmix64 is the PRNG used for all data initialisation.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// LCG constants mirrored by the in-ISA PRNG used by random-access kernels.
const (
	lcgMul = 6364136223846793005
	lcgAdd = 1442695040888963407
)

func lcgNext(x int64) int64 { return x*lcgMul + lcgAdd }

// checkU64 compares one 8-byte memory word against an expected value.
func checkU64(m *mem.Memory, addr uint64, want int64, what string) error {
	if got := m.Read(addr, 8); got != want {
		return fmt.Errorf("%s: mem[%#x] = %d, want %d", what, addr, got, want)
	}
	return nil
}

