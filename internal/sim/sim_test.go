package sim

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/emu"
	"repro/internal/lsq"
	"repro/internal/workload"
)

// runBoth runs a workload through the emulator and the simulator and
// asserts identical final architectural state, then returns both results.
func runBoth(t *testing.T, w *workload.Workload, cfg Config) (*emu.Result, *Result) {
	t.Helper()
	opts := emu.Options{CollectOracle: cfg.Policy == core.IssueOracle, TraceStores: true}
	if cfg.PerfectBlockPred {
		opts.TraceBlocks = 1 << 30
	}
	er, err := emu.Run(w.Program, &w.Regs, w.Mem, opts)
	if err != nil {
		t.Fatalf("emulate: %v", err)
	}
	mc, err := New(cfg, w.Program, &w.Regs, w.Mem, er.Oracle, er.BlockTrace)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	// Validate every drained store against the golden trace: protocol bugs
	// surface at the first wrong store, not as an end-state diff.
	mc.q.ValidateDrain = func(k lsq.Key, addr uint64, data int64, size int) error {
		rec, ok := er.StoreTrace[emu.MemRef{BlockSeq: k.Seq, LSID: k.LSID}]
		if !ok {
			return fmt.Errorf("drain of %v: no golden store", k)
		}
		if rec.Addr != addr || rec.Data != data || rec.Size != size {
			return fmt.Errorf("drain of %v: addr=%#x data=%d size=%d, golden addr=%#x data=%d size=%d",
				k, addr, data, size, rec.Addr, rec.Data, rec.Size)
		}
		return nil
	}
	sr, err := mc.Run()
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if sr.Blocks != er.Blocks {
		t.Fatalf("committed %d blocks, emulator %d", sr.Blocks, er.Blocks)
	}
	if sr.Regs != er.Regs {
		for i := range sr.Regs {
			if sr.Regs[i] != er.Regs[i] {
				t.Errorf("r%d = %d, emulator %d", i, sr.Regs[i], er.Regs[i])
			}
		}
		t.Fatal("architectural registers diverged")
	}
	if !sr.Mem.Equal(er.Mem) {
		addr, _ := sr.Mem.FirstDiff(er.Mem)
		t.Fatalf("memory diverged at %#x: sim=%d emu=%d",
			addr, sr.Mem.Read(addr, 8), er.Mem.Read(addr, 8))
	}
	if err := w.Check(&sr.Regs, sr.Mem); err != nil {
		t.Fatalf("workload check: %v", err)
	}
	return er, sr
}

// smallParams keeps the correctness matrix fast; matmul is cubic in Size.
func smallParams(name string) workload.Params {
	switch name {
	case "matmul":
		return workload.Params{Size: 12}
	case "treewalk":
		return workload.Params{Size: 128}
	default:
		return workload.Params{Size: 64}
	}
}

// TestSmokeVecsum is the first-light test: a tiny streaming kernel under
// the default configuration.
func TestSmokeVecsum(t *testing.T) {
	w := workload.MustBuild("vecsum", smallParams("vecsum"))
	er, sr := runBoth(t, w, DefaultConfig())
	t.Logf("emu blocks=%d insts=%d; sim cycles=%d", er.Blocks, er.Insts, sr.Stats.Cycles)
	if sr.Stats.Cycles <= 0 {
		t.Fatal("no cycles elapsed")
	}
}

// TestAllKernelsAllSchemes is the core correctness matrix: every kernel ×
// every (policy, recovery) pair must match the emulator exactly.
func TestAllKernelsAllSchemes(t *testing.T) {
	type scheme struct {
		policy   core.IssuePolicy
		recovery core.RecoveryScheme
	}
	schemes := []scheme{
		{core.IssueConservative, core.RecoverFlush},
		{core.IssueAggressive, core.RecoverFlush},
		{core.IssueAggressive, core.RecoverDSRE},
		{core.IssueStoreSet, core.RecoverFlush},
		{core.IssueStoreSet, core.RecoverDSRE},
		{core.IssueOracle, core.RecoverDSRE},
	}
	for _, name := range workload.Names() {
		for _, s := range schemes {
			s := s
			t.Run(name+"/"+s.policy.String()+"+"+s.recovery.String(), func(t *testing.T) {
				w := workload.MustBuild(name, smallParams(name))
				cfg := DefaultConfig()
				cfg.Policy = s.policy
				cfg.Recovery = s.recovery
				runBoth(t, w, cfg)
			})
		}
	}
}
